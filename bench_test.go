// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index), plus micro-benchmarks of the
// core operations behind the paper's complexity claims (O(1) per-arrival
// processing for POLAR/POLAR-OP versus search-based baselines).
//
// The macro benchmarks run entire experiments, so they default to a small
// population scale; set FTOA_BENCH_SCALE (e.g. 0.3 or 1.0 for paper scale)
// to rescale them. Matching sizes are attached as custom metrics so `go
// test -bench` output doubles as a results table.
package ftoa_test

import (
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"ftoa"
	"ftoa/internal/experiments"
	"ftoa/internal/flow"
	"ftoa/internal/mathx"
	"ftoa/internal/sim"
)

// benchScale returns the population scale for macro benchmarks.
func benchScale() float64 {
	if v := os.Getenv("FTOA_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.02
}

// benchExperiment runs one registered experiment per iteration and reports
// the POLAR-OP and OPT matching sizes of the middle row as metrics.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentOpts(b, id, experiments.Options{Scale: benchScale()})
}

// benchExperimentOpts is benchExperiment with explicit options, so the
// parallel variants can pin a worker-pool size.
func benchExperimentOpts(b *testing.B, id string, opts experiments.Options) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res *experiments.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = runner(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(res.Rows) > 0 {
		mid := res.Rows[len(res.Rows)/2]
		if m, ok := mid.ByAlgo[experiments.AlgoPOLAROP]; ok {
			b.ReportMetric(float64(m.MatchingSize), "polar-op-matched")
		}
		if m, ok := mid.ByAlgo[experiments.AlgoOPT]; ok {
			b.ReportMetric(float64(m.MatchingSize), "opt-matched")
		}
		if m, ok := mid.ByAlgo[experiments.AlgoSimpleGreedy]; ok {
			b.ReportMetric(float64(m.MatchingSize), "greedy-matched")
		}
	}
}

// Figure 4: synthetic sweeps over |W|, |R|, Dr and grid resolution.
func BenchmarkFig4VaryW(b *testing.B)        { benchExperiment(b, "fig4-w") }
func BenchmarkFig4VaryR(b *testing.B)        { benchExperiment(b, "fig4-r") }
func BenchmarkFig4VaryDeadline(b *testing.B) { benchExperiment(b, "fig4-dr") }
func BenchmarkFig4VaryGrid(b *testing.B)     { benchExperiment(b, "fig4-g") }

// Figure 5: time slots, scalability, and the two city traces.
func BenchmarkFig5VarySlots(b *testing.B)   { benchExperiment(b, "fig5-t") }
func BenchmarkFig5Scalability(b *testing.B) { benchExperiment(b, "fig5-scale") }
func BenchmarkFig5Beijing(b *testing.B)     { benchExperiment(b, "fig5-bj") }
func BenchmarkFig5Hangzhou(b *testing.B)    { benchExperiment(b, "fig5-hz") }

// BenchmarkFig5ScalabilityParallel is BenchmarkFig5Scalability with the
// experiment worker pool sized to GOMAXPROCS: sweep rows and the
// algorithms within each row replay concurrently on private engine
// clones. Compare against the sequential benchmark in the same build to
// measure the harness speedup on a multi-core runner (matching sizes are
// bit-identical either way; memory series are omitted in parallel mode).
func BenchmarkFig5ScalabilityParallel(b *testing.B) {
	benchExperimentOpts(b, "fig5-scale", experiments.Options{Scale: benchScale(), Parallelism: -1})
}

// Figure 6: temporal and spatial distribution sweeps.
func BenchmarkFig6VaryMu(b *testing.B)    { benchExperiment(b, "fig6-mu") }
func BenchmarkFig6VarySigma(b *testing.B) { benchExperiment(b, "fig6-sigma") }
func BenchmarkFig6VaryMean(b *testing.B)  { benchExperiment(b, "fig6-mean") }
func BenchmarkFig6VaryCov(b *testing.B)   { benchExperiment(b, "fig6-cov") }

// Table 5: the prediction method comparison.
func BenchmarkTable5Prediction(b *testing.B) { benchExperiment(b, "table5") }

// Ablation: empirical competitive ratios for Theorems 1-2.
func BenchmarkCompetitiveRatio(b *testing.B) { benchExperiment(b, "ratio") }

// benchSetup prepares a default synthetic instance plus its guide at the
// benchmark scale.
func benchSetup(b *testing.B) (*ftoa.Instance, *ftoa.Guide) {
	b.Helper()
	cfg := ftoa.DefaultSynthetic()
	n := int(20000 * benchScale())
	if n < 500 {
		n = 500
	}
	cfg.NumWorkers, cfg.NumTasks = n, n
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	side := 50
	if benchScale() < 1 {
		side = int(50 * benchScale())
		if side < 8 {
			side = 8
		}
	}
	grid := ftoa.NewGrid(cfg.Bounds(), side, side)
	slots := ftoa.NewSlotting(cfg.Horizon, 48)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
	}, wc, tc)
	if err != nil {
		b.Fatal(err)
	}
	return in, g
}

// BenchmarkGuideBuild measures Algorithm 1: constructing the offline guide
// from predicted counts (the paper's offline preprocessing).
func BenchmarkGuideBuild(b *testing.B) {
	cfg := ftoa.DefaultSynthetic()
	n := int(20000 * benchScale())
	if n < 500 {
		n = 500
	}
	cfg.NumWorkers, cfg.NumTasks = n, n
	side := int(50 * benchScale())
	if side < 8 {
		side = 8
	}
	grid := ftoa.NewGrid(cfg.Bounds(), side, side)
	slots := ftoa.NewSlotting(cfg.Horizon, 48)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	gcfg := ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftoa.BuildGuide(gcfg, wc, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReplay measures one full replay of an online algorithm, reporting
// per-arrival latency — the paper's O(1) claim made visible.
func benchReplay(b *testing.B, mk func(*ftoa.Guide) ftoa.Algorithm) {
	in, g := benchSetup(b)
	eng := ftoa.NewEngine(in, ftoa.AssumeGuide)
	arrivals := float64(len(in.Workers) + len(in.Tasks))
	var matched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched = eng.Run(mk(g)).Matching.Size()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arrivals, "ns/arrival")
	b.ReportMetric(float64(matched), "matched")
}

func BenchmarkPOLARReplay(b *testing.B) {
	benchReplay(b, func(g *ftoa.Guide) ftoa.Algorithm { return ftoa.NewPOLAR(g) })
}

func BenchmarkPOLAROPReplay(b *testing.B) {
	benchReplay(b, func(g *ftoa.Guide) ftoa.Algorithm { return ftoa.NewPOLAROP(g) })
}

func BenchmarkSimpleGreedyReplay(b *testing.B) {
	benchReplay(b, func(*ftoa.Guide) ftoa.Algorithm { return ftoa.NewSimpleGreedy() })
}

func BenchmarkGRReplay(b *testing.B) {
	benchReplay(b, func(*ftoa.Guide) ftoa.Algorithm { return ftoa.NewGR(0.25) })
}

// BenchmarkOPT measures the clairvoyant matching used as the paper's upper
// bound.
func BenchmarkOPT(b *testing.B) {
	in, _ := benchSetup(b)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		size = ftoa.OPT(in, ftoa.OPTOptions{MaxCandidates: 64}).Size()
	}
	b.StopTimer()
	b.ReportMetric(float64(size), "matched")
}

// BenchmarkStrictReplay measures the honest-platform validation mode
// (simulated movement plus deadline rechecks) against the paper counting.
func BenchmarkStrictReplay(b *testing.B) {
	in, g := benchSetup(b)
	eng := sim.NewEngine(in, sim.Strict)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		size = eng.Run(ftoa.NewPOLAROP(g)).Matching.Size()
	}
	b.StopTimer()
	b.ReportMetric(float64(size), "matched")
}

// BenchmarkHopcroftKarp measures the bipartite-matching substrate at a
// representative density.
func BenchmarkHopcroftKarp(b *testing.B) {
	rng := mathx.NewRNG(9)
	const nl, nr, deg = 2000, 2000, 8
	adj := make([][]int32, nl)
	for u := range adj {
		for k := 0; k < deg; k++ {
			adj[u] = append(adj[u], int32(rng.Intn(nr)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, size := flow.HopcroftKarp(nl, nr, adj)
		if size == 0 {
			b.Fatal("empty matching")
		}
	}
}

// BenchmarkMinCostGuide is the ablation for the paper's note that a
// min-cost max-flow yields a travel-cost-minimising guide of the same
// cardinality.
func BenchmarkMinCostGuide(b *testing.B) {
	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 2000, 2000
	grid := ftoa.NewGrid(cfg.Bounds(), 16, 16)
	slots := ftoa.NewSlotting(cfg.Horizon, 48)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	gcfg := ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
		MinCost:        true,
	}
	b.ResetTimer()
	var travel float64
	for i := 0; i < b.N; i++ {
		g, err := ftoa.BuildGuide(gcfg, wc, tc)
		if err != nil {
			b.Fatal(err)
		}
		travel = g.TravelCost
	}
	b.StopTimer()
	b.ReportMetric(travel, "travel-cost")
}

// benchStream measures pushing a recorded arrival stream through the
// open-world session API directly — AddWorker/AddTask per arrival, no
// replay engine — reporting per-arrival latency. This is the acceptance
// gate that the streaming redesign keeps the paper's O(1) claim intact.
func benchStream(b *testing.B, mk func(*ftoa.Guide) ftoa.Algorithm) {
	in, g := benchSetup(b)
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     ftoa.AssumeGuide,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: ftoa.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	events := in.Events()
	sess := m.NewSession(mk(g))
	arrivals := float64(len(events))
	var matched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Reset(mk(g))
		for _, ev := range events {
			var err error
			switch ev.Kind {
			case ftoa.WorkerArrival:
				_, err = sess.AddWorker(in.Workers[ev.Index])
			case ftoa.TaskArrival:
				_, err = sess.AddTask(in.Tasks[ev.Index])
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		sess.Finish()
		matched = sess.Matching().Size()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arrivals, "ns/arrival")
	b.ReportMetric(float64(matched), "matched")
}

// benchStreamRetired is benchStream with generational retirement on: the
// session retires its arenas 24 times per replayed day (the serving-layer
// cadence), so the reported ns/arrival includes the amortized compaction
// and remap cost. Gate: must stay within 2x of the plain Stream numbers.
func benchStreamRetired(b *testing.B, mk func(*ftoa.Guide) ftoa.Algorithm) {
	in, g := benchSetup(b)
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     ftoa.AssumeGuide,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: ftoa.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	events := in.Events()
	every := in.Horizon / 24
	sess := m.NewSession(mk(g))
	arrivals := float64(len(events))
	var evbuf []ftoa.SessionEvent
	var matched, retired int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Reset(mk(g))
		lastRetire := 0.0
		for _, ev := range events {
			var err error
			switch ev.Kind {
			case ftoa.WorkerArrival:
				_, err = sess.AddWorker(in.Workers[ev.Index])
			case ftoa.TaskArrival:
				_, err = sess.AddTask(in.Tasks[ev.Index])
			}
			if err != nil {
				b.Fatal(err)
			}
			if now := sess.Now(); now >= lastRetire+every {
				evbuf = sess.DrainEvents(evbuf[:0])
				sess.CompactEvents()
				w, t := sess.Retire(now)
				retired += w + t
				lastRetire = now
			}
		}
		sess.Finish()
		matched = sess.Matches()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arrivals, "ns/arrival")
	b.ReportMetric(float64(matched), "matched")
	b.ReportMetric(float64(retired)/float64(b.N), "retired")
}

func BenchmarkPOLARStream(b *testing.B) {
	benchStream(b, func(g *ftoa.Guide) ftoa.Algorithm { return ftoa.NewPOLAR(g) })
}

func BenchmarkPOLAROPStream(b *testing.B) {
	benchStream(b, func(g *ftoa.Guide) ftoa.Algorithm { return ftoa.NewPOLAROP(g) })
}

func BenchmarkSimpleGreedyStream(b *testing.B) {
	benchStream(b, func(*ftoa.Guide) ftoa.Algorithm { return ftoa.NewSimpleGreedy() })
}

func BenchmarkPOLARStreamRetired(b *testing.B) {
	benchStreamRetired(b, func(g *ftoa.Guide) ftoa.Algorithm { return ftoa.NewPOLAR(g) })
}

func BenchmarkPOLAROPStreamRetired(b *testing.B) {
	benchStreamRetired(b, func(g *ftoa.Guide) ftoa.Algorithm { return ftoa.NewPOLAROP(g) })
}

// BenchmarkSessionLongLived is the long-lived serving soak: ONE Strict
// session (never Reset, never Finished) absorbs the same synthetic day
// per iteration, timestamps shifted by the horizon each round, retiring
// on the deadline-window cadence. With retirement the per-round cost and
// the live arenas are flat no matter how many rounds have gone before —
// the bounded-memory claim as a benchmark; the companion test
// TestSessionLongLivedSoak asserts the live-arena bound, and allocs/op
// (reported per round) measures the steady-state allocation rate.
func BenchmarkSessionLongLived(b *testing.B) {
	cfg := ftoa.DefaultSynthetic()
	n := int(20000 * benchScale())
	if n < 400 {
		n = 400
	}
	cfg.NumWorkers, cfg.NumTasks = n, n
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	events := in.Events()
	window := cfg.WorkerPatience
	if cfg.TaskExpiry > window {
		window = cfg.TaskExpiry
	}
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     ftoa.Strict,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
	})
	if err != nil {
		b.Fatal(err)
	}
	sess := m.NewSession(ftoa.NewSimpleGreedy())
	arrivals := float64(len(events))
	var evbuf []ftoa.SessionEvent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shift := float64(i) * in.Horizon
		lastRetire := sess.Now()
		for _, ev := range events {
			var err error
			switch ev.Kind {
			case ftoa.WorkerArrival:
				w := in.Workers[ev.Index]
				w.Arrive = ev.Time + shift
				_, err = sess.AddWorker(w)
			case ftoa.TaskArrival:
				t := in.Tasks[ev.Index]
				t.Release = ev.Time + shift
				_, err = sess.AddTask(t)
			}
			if err != nil {
				b.Fatal(err)
			}
			if now := sess.Now(); now >= lastRetire+window {
				evbuf = sess.DrainEvents(evbuf[:0])
				sess.CompactEvents()
				sess.Retire(now)
				lastRetire = now
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arrivals, "ns/arrival")
	b.ReportMetric(float64(sess.NumWorkers()+sess.NumTasks()), "live-arena")
	b.ReportMetric(float64(sess.AdmittedWorkers()+sess.AdmittedTasks()), "admitted")
	b.ReportMetric(float64(sess.Matches()), "matched")
}

// benchRouterStream measures the sharded serving layer end to end: one
// recorded day routed by location through a cols x rows ShardRouter
// (admission -> shard lock -> session -> event sequencing), reporting
// per-arrival latency. Compare against BenchmarkSimpleGreedyStream to see
// the routing + sequencing overhead, and 1x1 vs 4x4 to see how per-shard
// population shrinkage pays for it. A positive halo additionally mirrors
// border admissions into reachable neighbor shards (ghost admissions +
// claim arbitration), recovering the cross-border matched size the
// disjoint grid loses — the matched metric quantifies the trade.
func benchRouterStream(b *testing.B, cols, rows int, halo float64) {
	benchRouterStreamWAL(b, cols, rows, halo, nil)
}

// benchRouterStreamWAL is benchRouterStream with an optional per-
// iteration WAL factory (generations are write-once, so every
// iteration logs into a fresh directory). The ns/arrival delta against
// the nil-WAL twin is the durability overhead; CI gates the buffered-
// mode delta at 2x.
func benchRouterStreamWAL(b *testing.B, cols, rows int, halo float64, mkWAL func(i int) *ftoa.WALOptions) {
	in, _ := benchSetup(b)
	events := in.Events()
	arrivals := float64(len(events))
	var matched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Construction and final close are untimed in both the WAL'd and
		// plain variants: the gated number is per-arrival serving cost,
		// not the one-off cost of creating (or fsyncing shut) a
		// generation's segment files.
		b.StopTimer()
		var walOpts *ftoa.WALOptions
		if mkWAL != nil {
			walOpts = mkWAL(i)
		}
		router, err := ftoa.NewShardRouter(ftoa.ShardConfig{
			Matcher: ftoa.MatcherConfig{
				Mode:     ftoa.AssumeGuide,
				Velocity: in.Velocity,
				Bounds:   in.Bounds,
				Hints: ftoa.Hints{
					ExpectedWorkers: len(in.Workers),
					ExpectedTasks:   len(in.Tasks),
					Horizon:         in.Horizon,
				},
			},
			Cols:         cols,
			Rows:         rows,
			Halo:         halo,
			NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
			WAL:          walOpts,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, ev := range events {
			switch ev.Kind {
			case ftoa.WorkerArrival:
				_, _, err = router.AddWorker(in.Workers[ev.Index])
			case ftoa.TaskArrival:
				_, _, err = router.AddTask(in.Tasks[ev.Index])
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		router.Finish()
		b.StopTimer()
		matched = 0
		for _, st := range router.StatsAll(nil) {
			matched += st.Matches
		}
		if walOpts != nil {
			if err := router.WALClose(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arrivals, "ns/arrival")
	b.ReportMetric(float64(matched), "matched")
}

func BenchmarkShardRouter1x1Stream(b *testing.B) { benchRouterStream(b, 1, 1, 0) }
func BenchmarkShardRouter4x4Stream(b *testing.B) { benchRouterStream(b, 4, 4, 0) }

// BenchmarkShardRouterHalo4x4 is the halo-on twin of the 4x4 stream
// bench: the matched metric must recover the unsharded size (the quality
// gate asserts >=90%) and ns/arrival prices the ghost mirroring + claim
// arbitration. The width is a quarter of the feasibility bound
// (velocity x Dr): nearest-neighbor matching commits far inside the
// worst-case reach, so the fractional halo captures ~99% of the border
// matches at a fraction of the mirroring cost — the full bound recovers
// the last match but degenerates toward whole-area replication when the
// halo rivals the cell size (see the README trade-off table).
func BenchmarkShardRouterHalo4x4(b *testing.B) {
	cfg := ftoa.DefaultSynthetic()
	benchRouterStream(b, 4, 4, ftoa.HaloForWindow(cfg.Velocity, cfg.TaskExpiry)/4)
}

// benchWAL builds a fresh per-iteration WAL directory factory at the
// given fsync policy.
func benchWAL(b *testing.B, policy ftoa.WALSyncPolicy) func(i int) *ftoa.WALOptions {
	b.Helper()
	root := b.TempDir()
	return func(i int) *ftoa.WALOptions {
		return &ftoa.WALOptions{Dir: filepath.Join(root, strconv.Itoa(i)), Policy: policy}
	}
}

// The WAL'd twins of the router stream benches: buffered group commit
// (the default SyncInterval policy — what a durable deployment runs) on
// real files. CI gates BenchmarkShardRouter4x4WALStream at 2x the
// ns/arrival of BenchmarkShardRouter4x4Stream; SyncAlways prices a full
// fsync per arrival and is reported for reference, not gated.
func BenchmarkShardRouter1x1WALStream(b *testing.B) {
	benchRouterStreamWAL(b, 1, 1, 0, benchWAL(b, ftoa.WALSyncInterval))
}

func BenchmarkShardRouter4x4WALStream(b *testing.B) {
	benchRouterStreamWAL(b, 4, 4, 0, benchWAL(b, ftoa.WALSyncInterval))
}

func BenchmarkShardRouterHalo4x4WALStream(b *testing.B) {
	cfg := ftoa.DefaultSynthetic()
	benchRouterStreamWAL(b, 4, 4, ftoa.HaloForWindow(cfg.Velocity, cfg.TaskExpiry)/4,
		benchWAL(b, ftoa.WALSyncInterval))
}

func BenchmarkShardRouter4x4WALSyncAlways(b *testing.B) {
	benchRouterStreamWAL(b, 4, 4, 0, benchWAL(b, ftoa.WALSyncAlways))
}

// BenchmarkWALRecover measures boot-time replay: one logged day (4x4,
// buffered) recovered back into a router, reporting per-event replay
// latency — the price of a crash restart.
func BenchmarkWALRecover(b *testing.B) {
	in, _ := benchSetup(b)
	events := in.Events()
	cfg := ftoa.ShardConfig{
		Matcher: ftoa.MatcherConfig{
			Mode:     ftoa.AssumeGuide,
			Velocity: in.Velocity,
			Bounds:   in.Bounds,
			Hints: ftoa.Hints{
				ExpectedWorkers: len(in.Workers),
				ExpectedTasks:   len(in.Tasks),
				Horizon:         in.Horizon,
			},
		},
		Cols:         4,
		Rows:         4,
		NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
		WAL:          &ftoa.WALOptions{Dir: filepath.Join(b.TempDir(), "wal")},
	}
	router, err := ftoa.NewShardRouter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, ev := range events {
		switch ev.Kind {
		case ftoa.WorkerArrival:
			_, _, err = router.AddWorker(in.Workers[ev.Index])
		case ftoa.TaskArrival:
			_, _, err = router.AddTask(in.Tasks[ev.Index])
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := router.WALClose(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, info, err := ftoa.RecoverShardRouter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Recovered || info.Events == 0 {
			b.Fatalf("recovered nothing: %+v", info)
		}
		b.StopTimer()
		// Each recovery opens (and must discard) a next-generation log.
		if err := rec.WALClose(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/arrival")
}

// benchEventFanout prices shared-broadcast event delivery: one day of
// admissions drives a 4x4 router while nsubs broadcast subscriptions
// (ShardRouter.Subscribe) consume the merged stream concurrently, and
// the clock only stops once every subscriber has drained every emitted
// event — so ns/event is the full per-event cost of emission PLUS
// delivery to all subscribers, not just the admission path. Because the
// ring is fed once at emission and subscriber reads are slice copies,
// fan-out is O(events), not O(events x subscribers x shards): CI gates
// the 16-subscriber ns/event at 2x the 1-subscriber figure (the
// per-subscriber merge-on-read design it replaces scales ~16x). The
// other half of the criterion — idle subscribers add zero steady-state
// per-tick work — is pinned by TestRouterBroadcastWaitWake (a
// quiescent router publishes nothing and wakes no one).
func benchEventFanout(b *testing.B, nsubs int) {
	in, _ := benchSetup(b)
	events := in.Events()
	var emitted uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		router, err := ftoa.NewShardRouter(ftoa.ShardConfig{
			Matcher: ftoa.MatcherConfig{
				Mode:     ftoa.AssumeGuide,
				Velocity: in.Velocity,
				Bounds:   in.Bounds,
				Hints: ftoa.Hints{
					ExpectedWorkers: len(in.Workers),
					ExpectedTasks:   len(in.Tasks),
					Horizon:         in.Horizon,
				},
			},
			Cols:         4,
			Rows:         4,
			NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
		})
		if err != nil {
			b.Fatal(err)
		}
		prodDone := make(chan struct{})
		var consumers sync.WaitGroup
		for s := 0; s < nsubs; s++ {
			// Subscribe before any admission runs so the ring anchors at
			// seq 0 and the bench prices steady-state ring delivery; the
			// merge-on-read fallback has its own tests.
			sub := router.Subscribe(0)
			consumers.Add(1)
			go func() {
				defer consumers.Done()
				defer sub.Close()
				var buf []ftoa.ShardEvent
				for {
					buf, _, _ = sub.Next(1024, buf[:0])
					if len(buf) > 0 {
						continue
					}
					select {
					case <-prodDone:
						if sub.Cursor() >= router.Cursor() {
							return
						}
					default:
					}
					sub.Wait(time.Millisecond, nil)
				}
			}()
		}
		b.StartTimer()
		for _, ev := range events {
			switch ev.Kind {
			case ftoa.WorkerArrival:
				_, _, err = router.AddWorker(in.Workers[ev.Index])
			case ftoa.TaskArrival:
				_, _, err = router.AddTask(in.Tasks[ev.Index])
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		router.Finish()
		close(prodDone)
		consumers.Wait()
		b.StopTimer()
		emitted += router.Cursor()
		b.StartTimer()
	}
	b.StopTimer()
	if emitted == 0 {
		b.Fatal("no events emitted")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(emitted), "ns/event")
	b.ReportMetric(float64(emitted)/float64(b.N), "events")
}

func BenchmarkEventFanout1Subscribers(b *testing.B)  { benchEventFanout(b, 1) }
func BenchmarkEventFanout16Subscribers(b *testing.B) { benchEventFanout(b, 16) }
