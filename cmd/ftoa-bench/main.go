// Command ftoa-bench reproduces the paper's experiments. Run with -list to
// see experiment ids, -exp to run one, -all for everything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ftoa/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Float64("scale", 1.0, "population scale factor (1.0 = paper scale)")
		mode     = flag.String("mode", "assume-guide", "validation mode: assume-guide (paper counting) or strict (simulated movement, rechecked deadlines)")
		skipOPT  = flag.Bool("skip-opt", false, "omit the OPT series")
		seed     = flag.Uint64("seed", 0, "workload seed offset")
		parallel = flag.Int("parallel", 0, "worker pool size for sweep rows and per-row algorithms (0 = sequential, -1 = GOMAXPROCS); parallel runs report Memory as 0")
		timing   = flag.String("timing", "", "write per-experiment wall-clock timings as JSON to this file (- for stdout; the result tables then move to stderr so stdout stays machine-readable)")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, SkipOPT: *skipOPT, Seed: *seed, Parallelism: *parallel}
	switch *mode {
	case "strict":
		opts.Strict = true
	case "assume-guide":
		opts.Strict = false
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var ids []string
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		if _, ok := experiments.Lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	default:
		flag.Usage()
		os.Exit(2)
	}

	tables := os.Stdout
	if *timing == "-" {
		// Keep stdout pure JSON so `ftoa-bench -timing - | jq .` works.
		tables = os.Stderr
	}
	timings, err := experiments.Run(ids, opts, tables)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *timing != "" {
		if err := writeTimings(*timing, timings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeTimings emits the machine-readable per-experiment timing JSON that
// future runs can diff for a perf trajectory.
func writeTimings(path string, timings []experiments.Timing) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(timings)
}
