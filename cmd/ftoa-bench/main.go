// Command ftoa-bench reproduces the paper's experiments. Run with -list to
// see experiment ids, -exp to run one, -all for everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftoa/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.Float64("scale", 1.0, "population scale factor (1.0 = paper scale)")
		mode    = flag.String("mode", "assume-guide", "validation mode: assume-guide (paper counting) or strict (simulated movement, rechecked deadlines)")
		skipOPT = flag.Bool("skip-opt", false, "omit the OPT series")
		seed    = flag.Uint64("seed", 0, "workload seed offset")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, SkipOPT: *skipOPT, Seed: *seed}
	switch *mode {
	case "strict":
		opts.Strict = true
	case "assume-guide":
		opts.Strict = false
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *all:
		if err := experiments.All(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *exp != "":
		runner, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		res, err := runner(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
