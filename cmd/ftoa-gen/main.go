// Command ftoa-gen emits FTOA workloads as CSV for external tooling:
// either one synthetic instance (Table 4 parameterisation) or a multi-day
// city trace's realized day plus its per-cell count history.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"ftoa"
)

func main() {
	var (
		kind   = flag.String("kind", "synthetic", "workload kind: synthetic or city")
		city   = flag.String("city", "beijing", "city template: beijing or hangzhou")
		n      = flag.Int("n", 20000, "objects per side (synthetic) or per day (city)")
		days   = flag.Int("days", 7, "city history days")
		day    = flag.Int("day", -1, "city day to realize (-1 = last)")
		dr     = flag.Float64("dr", 2.0, "task deadline in slot units")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "-", "output file (- = stdout)")
		counts = flag.Bool("counts", false, "emit the city per-cell count history instead of arrivals")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	switch *kind {
	case "synthetic":
		cfg := ftoa.DefaultSynthetic()
		cfg.NumWorkers = *n
		cfg.NumTasks = *n
		cfg.TaskExpiry = *dr
		cfg.Seed = *seed
		in, err := cfg.Generate()
		if err != nil {
			fail(err)
		}
		writeInstance(cw, in)
	case "city":
		var c ftoa.City
		switch *city {
		case "beijing":
			c = ftoa.Beijing()
		case "hangzhou":
			c = ftoa.Hangzhou()
		default:
			fail(fmt.Errorf("unknown city %q", *city))
		}
		c.WorkersPerDay = *n
		c.TasksPerDay = *n
		c.Days = *days
		c.Seed = *seed
		tr, err := c.Generate()
		if err != nil {
			fail(err)
		}
		if *counts {
			writeCounts(cw, tr, c)
			return
		}
		d := *day
		if d < 0 {
			d = c.Days - 1
		}
		in, err := tr.Instance(d, *dr)
		if err != nil {
			fail(err)
		}
		writeInstance(cw, in)
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
}

// writeInstance emits one row per object: kind,id,x,y,time,deadline.
func writeInstance(cw *csv.Writer, in *ftoa.Instance) {
	check(cw.Write([]string{"kind", "id", "x", "y", "time", "window"}))
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for i := range in.Workers {
		wk := &in.Workers[i]
		check(cw.Write([]string{"worker", strconv.Itoa(wk.ID), f(wk.Loc.X), f(wk.Loc.Y), f(wk.Arrive), f(wk.Patience)}))
	}
	for i := range in.Tasks {
		t := &in.Tasks[i]
		check(cw.Write([]string{"task", strconv.Itoa(t.ID), f(t.Loc.X), f(t.Loc.Y), f(t.Release), f(t.Expiry)}))
	}
}

// writeCounts emits the history tensor: day,slot,area,workers,tasks,weather.
func writeCounts(cw *csv.Writer, tr *ftoa.Trace, c ftoa.City) {
	check(cw.Write([]string{"day", "slot", "area", "workers", "tasks", "weather"}))
	areas := tr.Grid.NumCells()
	for d := 0; d < c.Days; d++ {
		for s := 0; s < c.SlotsPerDay; s++ {
			for a := 0; a < areas; a++ {
				check(cw.Write([]string{
					strconv.Itoa(d), strconv.Itoa(s), strconv.Itoa(a),
					strconv.Itoa(tr.WorkerCounts[d][s*areas+a]),
					strconv.Itoa(tr.TaskCounts[d][s*areas+a]),
					strconv.FormatFloat(tr.Weather[d][s], 'f', 4, 64),
				}))
			}
		}
	}
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
