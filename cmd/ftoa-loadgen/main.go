// Command ftoa-loadgen drives an ftoa-serve wire listener (-listen-wire)
// with batched admissions over TCP and reports an honest end-to-end
// number: how many admissions per second the server actually
// acknowledged, and how long acknowledgment took (p50/p90/p99 batch
// round-trip), measured from the client side of a real socket.
//
// Arrivals are synthesized (-pattern uniform or hotspot, deterministic
// under -seed) or replayed from an ftoa-gen instance CSV (-trace): the
// trace supplies locations and windows, the server stamps arrival times
// with its own clock — replaying yesterday's timestamps into a live
// clock would violate admission monotonicity.
//
// The report is machine-readable JSON on stdout (or -out). "rps" counts
// every acknowledged request — including BUSY rejections, which are the
// server's backpressure working as designed — while "admitted_rps"
// counts only successful admissions; CI gates on proto_errors == 0 and
// an rps floor. Latency percentiles are over batch round-trips: with
// batching, that IS the admission latency every request in the batch
// experienced.
//
// Per-entry BUSY refusals are retried up to -busy-retries times after
// sleeping the server's Retry-After hint; "retried" counts the
// re-submissions and "gave_up" the entries still BUSY when retries ran
// out. Every attempt counts toward "requests", so requests ==
// admitted + busy + errors always holds.
//
// Fault-tolerance harness: -resilient swaps each connection's client
// for a wire.Retrier (reconnect + idempotent resend), -chaos interposes
// an internal/netfault proxy injecting latency, resets, stalls and
// partitions, and -verify subscribes to the merged event stream and
// checks the exactly-once invariant — every acknowledged admission
// appears in the stream exactly once, nothing else does. See
// docs/chaos.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ftoa"
	"ftoa/internal/netfault"
	"ftoa/internal/wire"
)

type genConfig struct {
	addr        string
	conns       int
	rate        float64 // total admissions/sec across conns; 0 = unthrottled
	duration    time.Duration
	batch       int
	pattern     string        // uniform or hotspot
	drift       time.Duration // hotspot relocation interval; 0 = fixed center
	start       time.Time     // run start, the drift phase clock's zero
	bounds      [4]float64
	seed        int64
	workersFrac float64
	patience    float64
	expiry      float64
	trace       []ftoa.Event // replay instead of synthesis when non-empty
	traceIn     *ftoa.Instance

	// busyRetries bounds per-entry BUSY re-submissions (0 disables); each
	// retry sleeps the server's Retry-After hint first.
	busyRetries int
	// resilient swaps each connection's client for a wire.Retrier:
	// reconnect with backoff, idempotent resend, per-request deadlines.
	resilient      bool
	requestTimeout time.Duration
	// chaos interposes an internal/netfault proxy between the
	// connections and addr; chaosSeed makes its fault schedule
	// reproducible.
	chaos     bool
	chaosSeed int64
	// verify subscribes to the merged event stream and checks the
	// exactly-once invariant after the load completes.
	verify        bool
	verifyTimeout time.Duration
	// subscribers opens N event-stream subscriptions alongside the
	// admission load and reports delivery lag and throughput.
	subscribers int

	// dialAddr is what connections actually dial: addr, or the chaos
	// proxy in front of it. Set by run.
	dialAddr string
}

// chaosReport is the netfault proxy's accounting, embedded in the report.
type chaosReport struct {
	Conns      uint64 `json:"conns"`
	DialErrors uint64 `json:"dial_errors"`
	Resets     uint64 `json:"resets"`
	Stalls     uint64 `json:"stalls"`
	Partitions uint64 `json:"partitions"`
	BytesIn    uint64 `json:"bytes_in"`
	BytesOut   uint64 `json:"bytes_out"`
}

// verifyReport scores the exactly-once invariant: every acknowledged
// admission appears in the merged event stream exactly once (as a match
// endpoint or an expiry), and nothing unacknowledged appears at all.
type verifyReport struct {
	Acked      uint64 `json:"acked"`       // distinct acknowledged admissions
	AckedDup   uint64 `json:"acked_dup"`   // same endpoint acknowledged twice (client/server bug)
	Observed   uint64 `json:"observed"`    // acked endpoints seen terminal in the stream
	Duplicates uint64 `json:"duplicates"`  // endpoints terminal more than once
	Missing    uint64 `json:"missing"`     // acked endpoints never seen terminal
	Unexpected uint64 `json:"unexpected"`  // terminal endpoints never acked (double admission)
	EventsGone uint64 `json:"events_gone"` // retention overran the subscription
	Complete   bool   `json:"complete"`    // all of the above clean
}

// subscriberReport aggregates the -subscribers fan-out: every
// subscriber receives the full merged stream, so "events" is deliveries
// summed across subscriptions (count × stream length when gap-free) and
// "events_per_sec" the aggregate delivery rate. "gaps" counts seq
// discontinuities not explained by an EventsGone restart — the stream
// is dense, so any gap is lost delivery. Lag percentiles are per-event
// end-to-end: server emission clock to client receipt, against a server
// clock estimated once over an Advance round-trip.
type subscriberReport struct {
	Count        int     `json:"count"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Gaps         uint64  `json:"gaps"`
	EventsGone   uint64  `json:"events_gone"`
	LagP50Ms     float64 `json:"lag_p50_ms"`
	LagP99Ms     float64 `json:"lag_p99_ms"`
}

type report struct {
	Addr        string  `json:"addr"`
	Pattern     string  `json:"pattern"`
	DriftS      float64 `json:"hotspot_drift_s,omitempty"`
	Conns       int     `json:"conns"`
	Batch       int     `json:"batch"`
	TargetRate  float64 `json:"target_rate"`
	DurationS   float64 `json:"duration_s"`
	Requests    uint64  `json:"requests"`
	Admitted    uint64  `json:"admitted"`
	Busy        uint64  `json:"busy"`
	Errors      uint64  `json:"errors"`
	Retried     uint64  `json:"retried"`
	GaveUp      uint64  `json:"gave_up"`
	ProtoErrors uint64  `json:"proto_errors"`
	Reconnects  uint64  `json:"reconnects"`
	Resends     uint64  `json:"resends"`
	RPS         float64 `json:"rps"`
	AdmittedRPS float64 `json:"admitted_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`

	Chaos       *chaosReport      `json:"chaos,omitempty"`
	Verify      *verifyReport     `json:"verify,omitempty"`
	Subscribers *subscriberReport `json:"subscribers,omitempty"`
}

// endpoint identifies one admitted object by its receipt; with the
// server running -retire 0 (no handle reuse) it is unique for the run.
type endpoint struct {
	worker       bool
	shard, local uint32
}

// batcher is the slice of client surface runConn needs; wire.Client and
// wire.Retrier both satisfy it.
type batcher interface {
	Do([]wire.Request) ([]wire.Result, error)
}

// connTally is one connection's contribution, merged after the run.
type connTally struct {
	requests   uint64
	admitted   uint64
	busy       uint64
	errors     uint64
	retried    uint64
	gaveUp     uint64
	protoErr   uint64
	reconnects uint64
	resends    uint64
	rttMs      []float64  // one sample per batch round-trip
	acked      []endpoint // acknowledged admission receipts (verify mode)
}

// absorb tallies one reply's results and returns the indices that came
// back BUSY plus the largest Retry-After hint among them (capped at 2s).
func (t *connTally) absorb(cfg *genConfig, res []wire.Result) (busy []int, wait time.Duration) {
	t.requests += uint64(len(res))
	for i := range res {
		switch res[i].Status {
		case wire.StatusOK:
			t.admitted++
			if cfg.verify && (res[i].Kind == wire.ReqAddWorker || res[i].Kind == wire.ReqAddTask) {
				t.acked = append(t.acked, endpoint{
					worker: res[i].Kind == wire.ReqAddWorker,
					shard:  res[i].Shard,
					local:  res[i].Local,
				})
			}
		case wire.StatusBusy:
			t.busy++
			busy = append(busy, i)
			if d := time.Duration(res[i].RetryAfter * float64(time.Second)); d > wait {
				wait = d
			}
		default:
			t.errors++
		}
	}
	if wait > 2*time.Second {
		wait = 2 * time.Second
	}
	return busy, wait
}

// hotspotCenter returns the hotspot's center for one drift phase: a
// deterministic function of (seed, phase) alone, so every connection —
// and every rerun with the same -seed — sees the same relocation
// schedule, placed so the ±5% square stays inside the bounds. Phase -1
// (drift disabled) is the historical fixed central hotspot.
func hotspotCenter(cfg *genConfig, phase int) (cx, cy float64) {
	x0, y0 := cfg.bounds[0], cfg.bounds[1]
	w, h := cfg.bounds[2]-x0, cfg.bounds[3]-y0
	if phase < 0 {
		return x0 + w/2, y0 + h/2
	}
	// A dedicated generator per phase keeps the schedule independent of
	// the per-connection request streams.
	rng := rand.New(rand.NewSource(cfg.seed*1000003 + int64(phase)))
	return x0 + w*(0.05+0.9*rng.Float64()), y0 + h*(0.05+0.9*rng.Float64())
}

// synthesize fills reqs with n fresh arrivals from the configured
// pattern. Hotspot sends 80% of arrivals into a square covering 10% of
// each dimension — the skew that makes one shard's ring the bottleneck
// while its neighbors idle. With -hotspot-drift the square relocates to
// a new deterministic spot every drift interval, the moving rush an
// adaptive topology has to chase.
func synthesize(cfg *genConfig, rng *rand.Rand, reqs []wire.Request, n int) []wire.Request {
	x0, y0, x1, y1 := cfg.bounds[0], cfg.bounds[1], cfg.bounds[2], cfg.bounds[3]
	w, h := x1-x0, y1-y0
	phase := -1
	if cfg.drift > 0 {
		phase = int(time.Since(cfg.start) / cfg.drift)
	}
	cx, cy := hotspotCenter(cfg, phase)
	for i := 0; i < n; i++ {
		var x, y float64
		if cfg.pattern == "hotspot" && rng.Float64() < 0.8 {
			x = cx + (rng.Float64()-0.5)*w*0.1
			y = cy + (rng.Float64()-0.5)*h*0.1
		} else {
			x = x0 + rng.Float64()*w
			y = y0 + rng.Float64()*h
		}
		rq := wire.Request{X: x, Y: y, At: math.NaN()}
		if rng.Float64() < cfg.workersFrac {
			rq.Kind = wire.ReqAddWorker
			rq.Window = cfg.patience
		} else {
			rq.Kind = wire.ReqAddTask
			rq.Window = cfg.expiry
		}
		reqs = append(reqs, rq)
	}
	return reqs
}

// traceBatch converts trace events [lo, hi) into admission requests;
// locations and windows come from the instance, arrival stamping is the
// server's (see the package comment).
func traceBatch(in *ftoa.Instance, evs []ftoa.Event, reqs []wire.Request) []wire.Request {
	for _, ev := range evs {
		rq := wire.Request{At: math.NaN()}
		if ev.Kind == ftoa.WorkerArrival {
			w := &in.Workers[ev.Index]
			rq.Kind = wire.ReqAddWorker
			rq.X, rq.Y, rq.Window = w.Loc.X, w.Loc.Y, w.Patience
		} else {
			t := &in.Tasks[ev.Index]
			rq.Kind = wire.ReqAddTask
			rq.X, rq.Y, rq.Window = t.Loc.X, t.Loc.Y, t.Expiry
		}
		reqs = append(reqs, rq)
	}
	return reqs
}

// send delivers one batch and tallies the acknowledged results,
// honoring per-entry BUSY Retry-After hints with up to cfg.busyRetries
// re-submissions. A retried entry keeps its idempotency seq — BUSY is
// never recorded in the server's dedup window, so the re-submission is
// a fresh attempt, while an OK/Err outcome re-sent by a Retrier replays.
// Returns false when the connection died (the tally is final).
func send(cfg *genConfig, cl batcher, reqs []wire.Request, tally *connTally) bool {
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		res, err := cl.Do(reqs)
		if err != nil {
			tally.protoErr++
			return false
		}
		tally.rttMs = append(tally.rttMs, float64(time.Since(t0))/float64(time.Millisecond))
		busy, wait := tally.absorb(cfg, res)
		if len(busy) == 0 || attempt >= cfg.busyRetries {
			tally.gaveUp += uint64(len(busy))
			return true
		}
		if wait > 0 {
			time.Sleep(wait)
		}
		retry := make([]wire.Request, len(busy))
		for i, j := range busy {
			retry[i] = reqs[j]
		}
		tally.retried += uint64(len(retry))
		reqs = retry
	}
}

// runConn is one connection's send loop: build a batch, send, tally the
// acknowledged results, pace to the per-connection rate. Trace mode
// walks this connection's stride of the event list to exhaustion;
// synthesis runs until the deadline.
func runConn(cfg *genConfig, id int, deadline time.Time, tally *connTally) {
	var cl batcher
	if cfg.resilient {
		r := wire.NewRetrier(wire.RetryConfig{
			Addr:           cfg.dialAddr,
			RequestTimeout: cfg.requestTimeout,
			// The tally wants every batch resolved, so never fail fast:
			// Do blocks through reconnects until the server answers.
			BreakerThreshold: -1,
		})
		defer r.Close()
		defer func() {
			tally.reconnects += r.Reconnects()
			tally.resends += r.Resends()
		}()
		if _, err := r.WaitConnect(10 * time.Second); err != nil {
			tally.protoErr++
			return
		}
		cl = r
	} else {
		c, err := wire.Dial(cfg.dialAddr)
		if err != nil {
			tally.protoErr++
			return
		}
		defer c.Close()
		cl = c
	}
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	var interval time.Duration
	if cfg.rate > 0 {
		perConn := cfg.rate / float64(cfg.conns)
		interval = time.Duration(float64(cfg.batch) / perConn * float64(time.Second))
	}
	next := time.Now()

	// This connection's stride of the trace (empty in synthesis mode).
	var mine []ftoa.Event
	for i := id; i < len(cfg.trace); i += cfg.conns {
		mine = append(mine, cfg.trace[i])
	}
	traceAt := 0

	reqs := make([]wire.Request, 0, cfg.batch)
	for {
		reqs = reqs[:0]
		if cfg.trace != nil {
			if traceAt >= len(mine) {
				return
			}
			hi := traceAt + cfg.batch
			if hi > len(mine) {
				hi = len(mine)
			}
			reqs = traceBatch(cfg.traceIn, mine[traceAt:hi], reqs)
			traceAt = hi
		} else {
			if !time.Now().Before(deadline) {
				return
			}
			reqs = synthesize(cfg, rng, reqs, cfg.batch)
		}

		if !send(cfg, cl, reqs, tally) {
			return
		}

		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
}

// verifier subscribes to the merged event stream — through the same
// faulty path as the load, exercising resumable subscription — and
// records every terminal endpoint it mentions: a match consumes its
// worker and task, an expiry consumes its one object.
type verifier struct {
	r    *wire.Retrier
	mu   sync.Mutex
	seen map[endpoint]int
	gone uint64
}

func newVerifier(cfg *genConfig) *verifier {
	v := &verifier{seen: make(map[endpoint]int)}
	v.r = wire.NewRetrier(wire.RetryConfig{
		Addr:             cfg.dialAddr,
		RequestTimeout:   cfg.requestTimeout,
		BreakerThreshold: -1,
		Subscribe:        true,
		SubscribeSince:   0, // the stream's origin: every terminal event of the run
		OnEvents: func(_ uint64, evs []wire.Event) {
			v.mu.Lock()
			for i := range evs {
				if evs[i].Worker >= 0 {
					v.seen[endpoint{true, uint32(evs[i].WorkerShard), uint32(evs[i].Worker)}]++
				}
				if evs[i].Task >= 0 {
					v.seen[endpoint{false, uint32(evs[i].TaskShard), uint32(evs[i].Task)}]++
				}
			}
			v.mu.Unlock()
		},
		OnGone: func(uint64) {
			v.mu.Lock()
			v.gone++
			v.mu.Unlock()
		},
	})
	return v
}

// missing counts acked endpoints not yet seen terminal.
func (v *verifier) missing(acked map[endpoint]int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for ep := range acked {
		if v.seen[ep] == 0 {
			n++
		}
	}
	return n
}

// settle drives the server clock forward until every acknowledged
// admission has reached its terminal event (matched or expired) or
// patience runs out, then scores the exactly-once invariant.
func (v *verifier) settle(acked map[endpoint]int, ackedDup uint64, timeout time.Duration) *verifyReport {
	deadline := time.Now().Add(timeout)
	for v.missing(acked) > 0 && time.Now().Before(deadline) {
		// Advance is idempotent by nature (the server moves to its own
		// clock) and drives expiries for objects that will never match.
		v.r.Do([]wire.Request{{Kind: wire.ReqAdvance}})
		time.Sleep(100 * time.Millisecond)
	}
	// One last drain window so events emitted by the final advance land.
	time.Sleep(300 * time.Millisecond)
	v.r.Close()
	v.mu.Lock()
	defer v.mu.Unlock()
	rep := &verifyReport{Acked: uint64(len(acked)), AckedDup: ackedDup, EventsGone: v.gone}
	for ep, n := range v.seen {
		if n > 1 {
			rep.Duplicates++
		}
		if _, ok := acked[ep]; ok {
			rep.Observed++
		} else {
			rep.Unexpected++
		}
	}
	rep.Missing = rep.Acked - rep.Observed
	rep.Complete = rep.Missing == 0 && rep.Duplicates == 0 && rep.Unexpected == 0 &&
		rep.AckedDup == 0 && rep.EventsGone == 0
	return rep
}

// subscriber is one event-stream consumer riding alongside the
// admission load: it subscribes from the live head through a resilient
// client (reconnects resume from the cursor, so continuity is
// preserved through faults) and scores every pushed event for seq
// continuity and end-to-end delivery lag — server emission time to
// client receipt, against a server clock estimated once over an
// Advance round-trip (the estimate's error is bounded by half that
// RTT, far below the delivery lags worth gating on).
type subscriber struct {
	r        *wire.Retrier
	mu       sync.Mutex
	events   uint64
	gaps     uint64
	gone     uint64
	lagMs    []float64
	expect   uint64
	synced   bool
	clockOK  bool
	serverAt float64   // server clock at ref
	ref      time.Time // local receipt of the clock sample
}

func newSubscriber(cfg *genConfig) *subscriber {
	s := &subscriber{}
	s.r = wire.NewRetrier(wire.RetryConfig{
		Addr:             cfg.dialAddr,
		RequestTimeout:   cfg.requestTimeout,
		BreakerThreshold: -1,
		Subscribe:        true,
		SubscribeSince:   wire.SinceNow,
		OnEvents:         s.onEvents,
		OnGone: func(uint64) {
			s.mu.Lock()
			s.gone++
			// A retention overrun restarts the cursor; the jump it causes
			// is accounted under events_gone, not as a delivery gap.
			s.synced = false
			s.mu.Unlock()
		},
	})
	return s
}

// syncClock samples the server clock once; must run before the load so
// lag measurements cover the whole run.
func (s *subscriber) syncClock() error {
	if _, err := s.r.WaitConnect(10 * time.Second); err != nil {
		return err
	}
	t0 := time.Now()
	res, err := s.r.Do([]wire.Request{{Kind: wire.ReqAdvance}})
	if err != nil {
		return err
	}
	rtt := time.Since(t0)
	if len(res) == 1 && res[0].Status == wire.StatusOK {
		s.mu.Lock()
		s.serverAt = res[0].Time + rtt.Seconds()/2
		s.ref = t0.Add(rtt / 2)
		s.clockOK = true
		s.mu.Unlock()
	}
	return nil
}

// onEvents runs on the client's reader goroutine for every pushed
// frame: the receipt timestamp is taken once per frame (the whole frame
// arrived together).
func (s *subscriber) onEvents(_ uint64, evs []wire.Event) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range evs {
		ev := &evs[i]
		if s.synced && ev.Seq != s.expect {
			s.gaps++
		}
		s.expect = ev.Seq + 1
		s.synced = true
		s.events++
		if s.clockOK {
			lag := (s.serverAt + now.Sub(s.ref).Seconds()) - ev.Time
			if lag < 0 {
				lag = 0
			}
			s.lagMs = append(s.lagMs, lag*1000)
		}
	}
}

// run executes the load and assembles the report.
func run(cfg *genConfig) *report {
	cfg.dialAddr = cfg.addr
	var proxy *netfault.Proxy
	if cfg.chaos {
		var err error
		proxy, err = netfault.New(netfault.SoakProfile(cfg.addr, cfg.chaosSeed))
		if err != nil {
			log.Fatalf("ftoa-loadgen: chaos proxy: %v", err)
		}
		defer proxy.Close()
		cfg.dialAddr = proxy.Addr().String()
		log.Printf("ftoa-loadgen: chaos proxy on %s -> %s (seed %d)", cfg.dialAddr, cfg.addr, cfg.chaosSeed)
	}
	var ver *verifier
	if cfg.verify {
		ver = newVerifier(cfg)
	}
	subs := make([]*subscriber, cfg.subscribers)
	for i := range subs {
		subs[i] = newSubscriber(cfg)
		if err := subs[i].syncClock(); err != nil {
			log.Fatalf("ftoa-loadgen: subscriber %d: %v", i, err)
		}
	}
	tallies := make([]connTally, cfg.conns)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	cfg.start = start
	var wg sync.WaitGroup
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(cfg, i, deadline, &tallies[i])
		}(i)
	}
	wg.Wait()
	if len(subs) > 0 {
		// Settle window: pushes for the last admissions are in flight;
		// delivery is notification-driven, so a short drain suffices.
		time.Sleep(500 * time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()

	rep := &report{
		Addr:       cfg.addr,
		Pattern:    cfg.pattern,
		DriftS:     cfg.drift.Seconds(),
		Conns:      cfg.conns,
		Batch:      cfg.batch,
		TargetRate: cfg.rate,
		DurationS:  elapsed,
	}
	var rtts []float64
	acked := make(map[endpoint]int)
	var ackedDup uint64
	for i := range tallies {
		t := &tallies[i]
		rep.Requests += t.requests
		rep.Admitted += t.admitted
		rep.Busy += t.busy
		rep.Errors += t.errors
		rep.Retried += t.retried
		rep.GaveUp += t.gaveUp
		rep.ProtoErrors += t.protoErr
		rep.Reconnects += t.reconnects
		rep.Resends += t.resends
		rtts = append(rtts, t.rttMs...)
		for _, ep := range t.acked {
			if acked[ep]++; acked[ep] > 1 {
				ackedDup++
			}
		}
	}
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed
		rep.AdmittedRPS = float64(rep.Admitted) / elapsed
	}
	sort.Float64s(rtts)
	rep.P50Ms = percentile(rtts, 0.50)
	rep.P90Ms = percentile(rtts, 0.90)
	rep.P99Ms = percentile(rtts, 0.99)
	if len(subs) > 0 {
		sr := &subscriberReport{Count: len(subs)}
		var lags []float64
		for _, sb := range subs {
			sb.r.Close()
			sb.mu.Lock()
			sr.Events += sb.events
			sr.Gaps += sb.gaps
			sr.EventsGone += sb.gone
			lags = append(lags, sb.lagMs...)
			sb.mu.Unlock()
			rep.Reconnects += sb.r.Reconnects()
		}
		if elapsed > 0 {
			sr.EventsPerSec = float64(sr.Events) / elapsed
		}
		sort.Float64s(lags)
		sr.LagP50Ms = percentile(lags, 0.50)
		sr.LagP99Ms = percentile(lags, 0.99)
		rep.Subscribers = sr
	}
	if ver != nil {
		rep.Verify = ver.settle(acked, ackedDup, cfg.verifyTimeout)
		rep.Reconnects += ver.r.Reconnects()
	}
	if proxy != nil {
		st := proxy.Stats()
		rep.Chaos = &chaosReport{
			Conns:      st.Conns,
			DialErrors: st.DialErrors,
			Resets:     st.Resets,
			Stalls:     st.Stalls,
			Partitions: st.Partitions,
			BytesIn:    st.BytesIn,
			BytesOut:   st.BytesOut,
		}
	}
	return rep
}

// percentile over a sorted sample (nearest-rank); zero when empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "ftoa-serve wire address (-listen-wire)")
	conns := flag.Int("conns", 4, "concurrent wire connections")
	rate := flag.Float64("rate", 0, "target total admissions per second across all connections (0 = unthrottled)")
	duration := flag.Duration("duration", 10*time.Second, "synthesis run length (-trace runs to exhaustion instead)")
	batch := flag.Int("batch", 64, "admissions per wire batch")
	pattern := flag.String("pattern", "uniform", "synthetic arrival pattern: uniform or hotspot (80% of arrivals in a square covering 10% of each dimension)")
	hotspotDrift := flag.Duration("hotspot-drift", 0, "relocate the hotspot to a new spot every interval (0 = fixed central hotspot); the schedule is a deterministic function of -seed alone")
	boundsStr := flag.String("bounds", "0,0,100,100", "service area as x0,y0,x1,y1 (must match the server's)")
	seed := flag.Int64("seed", 1, "synthesis seed; runs are deterministic per (seed, conns, batch)")
	workersFrac := flag.Float64("workers-frac", 0.5, "fraction of synthetic arrivals that are workers")
	patience := flag.Float64("patience", 300, "synthetic worker patience (seconds)")
	expiry := flag.Float64("expiry", 60, "synthetic task expiry (seconds)")
	velocity := flag.Float64("velocity", 1, "worker velocity for -trace parsing")
	tracePath := flag.String("trace", "", "replay this ftoa-gen instance CSV instead of synthesizing")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	busyRetries := flag.Int("busy-retries", 3, "re-submit BUSY entries up to this many times, sleeping the server's Retry-After hint first (0 disables)")
	resilient := flag.Bool("resilient", false, "use the reconnecting idempotent client (wire.Retrier) instead of a bare connection")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-batch deadline for -resilient clients")
	chaos := flag.Bool("chaos", false, "interpose an internal/netfault proxy (latency, resets, stalls, partitions) between the connections and -addr")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault schedule seed for -chaos (0 = use -seed)")
	verify := flag.Bool("verify", false, "subscribe to the event stream and check the exactly-once invariant after the load; exits nonzero if violated")
	verifyTimeout := flag.Duration("verify-timeout", 60*time.Second, "how long -verify drives the server clock waiting for every acked admission to reach a terminal event")
	subscribers := flag.Int("subscribers", 0, "open N event-stream subscriptions alongside the load and report delivery lag p50/p99, events/sec and gap counts")
	flag.Parse()

	cfg := &genConfig{
		addr:           *addr,
		conns:          *conns,
		rate:           *rate,
		duration:       *duration,
		batch:          *batch,
		pattern:        *pattern,
		drift:          *hotspotDrift,
		seed:           *seed,
		workersFrac:    *workersFrac,
		patience:       *patience,
		expiry:         *expiry,
		busyRetries:    *busyRetries,
		resilient:      *resilient,
		requestTimeout: *requestTimeout,
		chaos:          *chaos,
		chaosSeed:      *chaosSeed,
		verify:         *verify,
		verifyTimeout:  *verifyTimeout,
		subscribers:    *subscribers,
	}
	if cfg.subscribers < 0 {
		log.Fatalf("ftoa-loadgen: -subscribers must be >= 0")
	}
	if cfg.chaosSeed == 0 {
		cfg.chaosSeed = cfg.seed
	}
	if cfg.busyRetries < 0 {
		log.Fatalf("ftoa-loadgen: -busy-retries must be >= 0")
	}
	if cfg.conns <= 0 || cfg.batch <= 0 || cfg.batch > wire.MaxBatch {
		log.Fatalf("ftoa-loadgen: need conns > 0 and 0 < batch <= %d", wire.MaxBatch)
	}
	if cfg.pattern != "uniform" && cfg.pattern != "hotspot" {
		log.Fatalf("ftoa-loadgen: unknown -pattern %q", cfg.pattern)
	}
	if cfg.drift < 0 || (cfg.drift > 0 && cfg.pattern != "hotspot") {
		log.Fatalf("ftoa-loadgen: -hotspot-drift needs -pattern hotspot and a non-negative interval")
	}
	parts := strings.Split(*boundsStr, ",")
	if len(parts) != 4 {
		log.Fatalf("ftoa-loadgen: bad -bounds %q: want x0,y0,x1,y1", *boundsStr)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &cfg.bounds[i]); err != nil {
			log.Fatalf("ftoa-loadgen: bad -bounds component %q: %v", p, err)
		}
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		in, err := ftoa.LoadInstanceCSV(f, *velocity)
		f.Close()
		if err != nil {
			log.Fatalf("ftoa-loadgen: %s: %v", *tracePath, err)
		}
		cfg.traceIn = in
		cfg.trace = in.Events()
	}

	rep := run(cfg)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	if rep.ProtoErrors > 0 {
		log.Fatalf("ftoa-loadgen: %d connection(s) died on protocol errors", rep.ProtoErrors)
	}
	if rep.Verify != nil && !rep.Verify.Complete {
		log.Fatalf("ftoa-loadgen: exactly-once verification failed: %+v", *rep.Verify)
	}
}
