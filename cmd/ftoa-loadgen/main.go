// Command ftoa-loadgen drives an ftoa-serve wire listener (-listen-wire)
// with batched admissions over TCP and reports an honest end-to-end
// number: how many admissions per second the server actually
// acknowledged, and how long acknowledgment took (p50/p90/p99 batch
// round-trip), measured from the client side of a real socket.
//
// Arrivals are synthesized (-pattern uniform or hotspot, deterministic
// under -seed) or replayed from an ftoa-gen instance CSV (-trace): the
// trace supplies locations and windows, the server stamps arrival times
// with its own clock — replaying yesterday's timestamps into a live
// clock would violate admission monotonicity.
//
// The report is machine-readable JSON on stdout (or -out). "rps" counts
// every acknowledged request — including BUSY rejections, which are the
// server's backpressure working as designed — while "admitted_rps"
// counts only successful admissions; CI gates on proto_errors == 0 and
// an rps floor. Latency percentiles are over batch round-trips: with
// batching, that IS the admission latency every request in the batch
// experienced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ftoa"
	"ftoa/internal/wire"
)

type genConfig struct {
	addr        string
	conns       int
	rate        float64 // total admissions/sec across conns; 0 = unthrottled
	duration    time.Duration
	batch       int
	pattern     string        // uniform or hotspot
	drift       time.Duration // hotspot relocation interval; 0 = fixed center
	start       time.Time     // run start, the drift phase clock's zero
	bounds      [4]float64
	seed        int64
	workersFrac float64
	patience    float64
	expiry      float64
	trace       []ftoa.Event // replay instead of synthesis when non-empty
	traceIn     *ftoa.Instance
}

type report struct {
	Addr        string  `json:"addr"`
	Pattern     string  `json:"pattern"`
	DriftS      float64 `json:"hotspot_drift_s,omitempty"`
	Conns       int     `json:"conns"`
	Batch       int     `json:"batch"`
	TargetRate  float64 `json:"target_rate"`
	DurationS   float64 `json:"duration_s"`
	Requests    uint64  `json:"requests"`
	Admitted    uint64  `json:"admitted"`
	Busy        uint64  `json:"busy"`
	Errors      uint64  `json:"errors"`
	ProtoErrors uint64  `json:"proto_errors"`
	RPS         float64 `json:"rps"`
	AdmittedRPS float64 `json:"admitted_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// connTally is one connection's contribution, merged after the run.
type connTally struct {
	requests uint64
	admitted uint64
	busy     uint64
	errors   uint64
	protoErr uint64
	rttMs    []float64 // one sample per batch round-trip
}

// hotspotCenter returns the hotspot's center for one drift phase: a
// deterministic function of (seed, phase) alone, so every connection —
// and every rerun with the same -seed — sees the same relocation
// schedule, placed so the ±5% square stays inside the bounds. Phase -1
// (drift disabled) is the historical fixed central hotspot.
func hotspotCenter(cfg *genConfig, phase int) (cx, cy float64) {
	x0, y0 := cfg.bounds[0], cfg.bounds[1]
	w, h := cfg.bounds[2]-x0, cfg.bounds[3]-y0
	if phase < 0 {
		return x0 + w/2, y0 + h/2
	}
	// A dedicated generator per phase keeps the schedule independent of
	// the per-connection request streams.
	rng := rand.New(rand.NewSource(cfg.seed*1000003 + int64(phase)))
	return x0 + w*(0.05+0.9*rng.Float64()), y0 + h*(0.05+0.9*rng.Float64())
}

// synthesize fills reqs with n fresh arrivals from the configured
// pattern. Hotspot sends 80% of arrivals into a square covering 10% of
// each dimension — the skew that makes one shard's ring the bottleneck
// while its neighbors idle. With -hotspot-drift the square relocates to
// a new deterministic spot every drift interval, the moving rush an
// adaptive topology has to chase.
func synthesize(cfg *genConfig, rng *rand.Rand, reqs []wire.Request, n int) []wire.Request {
	x0, y0, x1, y1 := cfg.bounds[0], cfg.bounds[1], cfg.bounds[2], cfg.bounds[3]
	w, h := x1-x0, y1-y0
	phase := -1
	if cfg.drift > 0 {
		phase = int(time.Since(cfg.start) / cfg.drift)
	}
	cx, cy := hotspotCenter(cfg, phase)
	for i := 0; i < n; i++ {
		var x, y float64
		if cfg.pattern == "hotspot" && rng.Float64() < 0.8 {
			x = cx + (rng.Float64()-0.5)*w*0.1
			y = cy + (rng.Float64()-0.5)*h*0.1
		} else {
			x = x0 + rng.Float64()*w
			y = y0 + rng.Float64()*h
		}
		rq := wire.Request{X: x, Y: y, At: math.NaN()}
		if rng.Float64() < cfg.workersFrac {
			rq.Kind = wire.ReqAddWorker
			rq.Window = cfg.patience
		} else {
			rq.Kind = wire.ReqAddTask
			rq.Window = cfg.expiry
		}
		reqs = append(reqs, rq)
	}
	return reqs
}

// traceBatch converts trace events [lo, hi) into admission requests;
// locations and windows come from the instance, arrival stamping is the
// server's (see the package comment).
func traceBatch(in *ftoa.Instance, evs []ftoa.Event, reqs []wire.Request) []wire.Request {
	for _, ev := range evs {
		rq := wire.Request{At: math.NaN()}
		if ev.Kind == ftoa.WorkerArrival {
			w := &in.Workers[ev.Index]
			rq.Kind = wire.ReqAddWorker
			rq.X, rq.Y, rq.Window = w.Loc.X, w.Loc.Y, w.Patience
		} else {
			t := &in.Tasks[ev.Index]
			rq.Kind = wire.ReqAddTask
			rq.X, rq.Y, rq.Window = t.Loc.X, t.Loc.Y, t.Expiry
		}
		reqs = append(reqs, rq)
	}
	return reqs
}

// runConn is one connection's send loop: build a batch, send, tally the
// acknowledged results, pace to the per-connection rate. Trace mode
// walks this connection's stride of the event list to exhaustion;
// synthesis runs until the deadline.
func runConn(cfg *genConfig, id int, deadline time.Time, tally *connTally) {
	cl, err := wire.Dial(cfg.addr)
	if err != nil {
		tally.protoErr++
		return
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	var interval time.Duration
	if cfg.rate > 0 {
		perConn := cfg.rate / float64(cfg.conns)
		interval = time.Duration(float64(cfg.batch) / perConn * float64(time.Second))
	}
	next := time.Now()

	// This connection's stride of the trace (empty in synthesis mode).
	var mine []ftoa.Event
	for i := id; i < len(cfg.trace); i += cfg.conns {
		mine = append(mine, cfg.trace[i])
	}
	traceAt := 0

	reqs := make([]wire.Request, 0, cfg.batch)
	for {
		reqs = reqs[:0]
		if cfg.trace != nil {
			if traceAt >= len(mine) {
				return
			}
			hi := traceAt + cfg.batch
			if hi > len(mine) {
				hi = len(mine)
			}
			reqs = traceBatch(cfg.traceIn, mine[traceAt:hi], reqs)
			traceAt = hi
		} else {
			if !time.Now().Before(deadline) {
				return
			}
			reqs = synthesize(cfg, rng, reqs, cfg.batch)
		}

		t0 := time.Now()
		res, err := cl.Do(reqs)
		if err != nil {
			tally.protoErr++
			return
		}
		tally.rttMs = append(tally.rttMs, float64(time.Since(t0))/float64(time.Millisecond))
		tally.requests += uint64(len(res))
		for i := range res {
			switch res[i].Status {
			case wire.StatusOK:
				tally.admitted++
			case wire.StatusBusy:
				tally.busy++
			default:
				tally.errors++
			}
		}

		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
}

// run executes the load and assembles the report.
func run(cfg *genConfig) *report {
	tallies := make([]connTally, cfg.conns)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	cfg.start = start
	var wg sync.WaitGroup
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(cfg, i, deadline, &tallies[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &report{
		Addr:       cfg.addr,
		Pattern:    cfg.pattern,
		DriftS:     cfg.drift.Seconds(),
		Conns:      cfg.conns,
		Batch:      cfg.batch,
		TargetRate: cfg.rate,
		DurationS:  elapsed,
	}
	var rtts []float64
	for i := range tallies {
		t := &tallies[i]
		rep.Requests += t.requests
		rep.Admitted += t.admitted
		rep.Busy += t.busy
		rep.Errors += t.errors
		rep.ProtoErrors += t.protoErr
		rtts = append(rtts, t.rttMs...)
	}
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed
		rep.AdmittedRPS = float64(rep.Admitted) / elapsed
	}
	sort.Float64s(rtts)
	rep.P50Ms = percentile(rtts, 0.50)
	rep.P90Ms = percentile(rtts, 0.90)
	rep.P99Ms = percentile(rtts, 0.99)
	return rep
}

// percentile over a sorted sample (nearest-rank); zero when empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "ftoa-serve wire address (-listen-wire)")
	conns := flag.Int("conns", 4, "concurrent wire connections")
	rate := flag.Float64("rate", 0, "target total admissions per second across all connections (0 = unthrottled)")
	duration := flag.Duration("duration", 10*time.Second, "synthesis run length (-trace runs to exhaustion instead)")
	batch := flag.Int("batch", 64, "admissions per wire batch")
	pattern := flag.String("pattern", "uniform", "synthetic arrival pattern: uniform or hotspot (80% of arrivals in a square covering 10% of each dimension)")
	hotspotDrift := flag.Duration("hotspot-drift", 0, "relocate the hotspot to a new spot every interval (0 = fixed central hotspot); the schedule is a deterministic function of -seed alone")
	boundsStr := flag.String("bounds", "0,0,100,100", "service area as x0,y0,x1,y1 (must match the server's)")
	seed := flag.Int64("seed", 1, "synthesis seed; runs are deterministic per (seed, conns, batch)")
	workersFrac := flag.Float64("workers-frac", 0.5, "fraction of synthetic arrivals that are workers")
	patience := flag.Float64("patience", 300, "synthetic worker patience (seconds)")
	expiry := flag.Float64("expiry", 60, "synthetic task expiry (seconds)")
	velocity := flag.Float64("velocity", 1, "worker velocity for -trace parsing")
	tracePath := flag.String("trace", "", "replay this ftoa-gen instance CSV instead of synthesizing")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()

	cfg := &genConfig{
		addr:        *addr,
		conns:       *conns,
		rate:        *rate,
		duration:    *duration,
		batch:       *batch,
		pattern:     *pattern,
		drift:       *hotspotDrift,
		seed:        *seed,
		workersFrac: *workersFrac,
		patience:    *patience,
		expiry:      *expiry,
	}
	if cfg.conns <= 0 || cfg.batch <= 0 || cfg.batch > wire.MaxBatch {
		log.Fatalf("ftoa-loadgen: need conns > 0 and 0 < batch <= %d", wire.MaxBatch)
	}
	if cfg.pattern != "uniform" && cfg.pattern != "hotspot" {
		log.Fatalf("ftoa-loadgen: unknown -pattern %q", cfg.pattern)
	}
	if cfg.drift < 0 || (cfg.drift > 0 && cfg.pattern != "hotspot") {
		log.Fatalf("ftoa-loadgen: -hotspot-drift needs -pattern hotspot and a non-negative interval")
	}
	parts := strings.Split(*boundsStr, ",")
	if len(parts) != 4 {
		log.Fatalf("ftoa-loadgen: bad -bounds %q: want x0,y0,x1,y1", *boundsStr)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &cfg.bounds[i]); err != nil {
			log.Fatalf("ftoa-loadgen: bad -bounds component %q: %v", p, err)
		}
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		in, err := ftoa.LoadInstanceCSV(f, *velocity)
		f.Close()
		if err != nil {
			log.Fatalf("ftoa-loadgen: %s: %v", *tracePath, err)
		}
		cfg.traceIn = in
		cfg.trace = in.Events()
	}

	rep := run(cfg)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	if rep.ProtoErrors > 0 {
		log.Fatalf("ftoa-loadgen: %d connection(s) died on protocol errors", rep.ProtoErrors)
	}
}
