package main

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftoa"
	"ftoa/internal/wire"
)

// makeInstance builds a trivial instance for trace-replay tests.
func makeInstance(nw, nt int) *ftoa.Instance {
	in := &ftoa.Instance{Velocity: 1}
	for i := 0; i < nw; i++ {
		in.Workers = append(in.Workers,
			ftoa.Worker{ID: i, Loc: ftoa.Pt(float64(i%90), 50), Arrive: float64(i), Patience: 300})
	}
	for i := 0; i < nt; i++ {
		in.Tasks = append(in.Tasks,
			ftoa.Task{ID: i, Loc: ftoa.Pt(float64(i%90), 51), Release: float64(i), Expiry: 60})
	}
	return in
}

// stubServer answers every batch over real TCP: admissions get OK except
// every busyEvery-th request (1-indexed) which gets BUSY, so tally
// accounting is checkable exactly.
func stubServer(t *testing.T, busyEvery int) (addr string, served *atomic.Uint64, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served = new(atomic.Uint64)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				cn := wire.NewConn(c)
				if _, err := wire.ServerHandshake(cn, 1, 0); err != nil {
					return
				}
				var reqs []wire.Request
				for {
					p, err := cn.ReadFrame()
					if err != nil || len(p) == 0 || p[0] != wire.MsgBatch {
						return
					}
					id, rs, err := wire.DecodeBatch(p, reqs[:0])
					if err != nil {
						return
					}
					reqs = rs
					results := make([]wire.Result, len(rs))
					for i, rq := range rs {
						n := int(served.Add(1))
						results[i] = wire.Result{Kind: rq.Kind, Status: wire.StatusOK}
						if busyEvery > 0 && n%busyEvery == 0 {
							results[i] = wire.Result{Kind: rq.Kind, Status: wire.StatusBusy, RetryAfter: 0.1}
						}
					}
					if cn.WriteFrame(wire.AppendBatchReply(nil, id, results)) != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), served, func() { ln.Close() }
}

func TestRunReportAccounting(t *testing.T) {
	addr, served, stop := stubServer(t, 5)
	defer stop()
	cfg := &genConfig{
		addr:        addr,
		conns:       3,
		duration:    300 * time.Millisecond,
		batch:       16,
		pattern:     "uniform",
		bounds:      [4]float64{0, 0, 100, 100},
		seed:        7,
		workersFrac: 0.5,
		patience:    300,
		expiry:      60,
	}
	rep := run(cfg)
	if rep.ProtoErrors != 0 {
		t.Fatalf("proto errors = %d: %+v", rep.ProtoErrors, rep)
	}
	if rep.Requests == 0 || rep.Requests != served.Load() {
		t.Fatalf("requests = %d, server served %d", rep.Requests, served.Load())
	}
	if rep.Admitted+rep.Busy != rep.Requests || rep.Errors != 0 {
		t.Fatalf("tallies don't add up: %+v", rep)
	}
	// The stub marks exactly every 5th request BUSY.
	if want := rep.Requests / 5; rep.Busy != want {
		t.Fatalf("busy = %d, want %d of %d", rep.Busy, want, rep.Requests)
	}
	if rep.RPS <= 0 || rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("degenerate rates/latencies: %+v", rep)
	}
}

func TestRunTraceReplayExact(t *testing.T) {
	addr, served, stop := stubServer(t, 0)
	defer stop()
	cfg := &genConfig{
		addr:   addr,
		conns:  2,
		batch:  8,
		bounds: [4]float64{0, 0, 100, 100},
	}
	// A tiny instance: every arrival must be sent exactly once even when
	// the count doesn't divide evenly across conns and batches.
	in := makeInstance(37, 23)
	cfg.traceIn = in
	cfg.trace = in.Events()
	rep := run(cfg)
	if want := uint64(37 + 23); rep.Requests != want || served.Load() != want {
		t.Fatalf("requests = %d (server %d), want %d", rep.Requests, served.Load(), want)
	}
	if rep.ProtoErrors != 0 || rep.Admitted != rep.Requests {
		t.Fatalf("trace replay tallies: %+v", rep)
	}
}

func TestSynthesizePatterns(t *testing.T) {
	cfg := &genConfig{
		pattern:     "uniform",
		bounds:      [4]float64{10, 20, 110, 220},
		workersFrac: 0.5,
		patience:    300,
		expiry:      60,
	}
	const n = 4000
	rng := rand.New(rand.NewSource(1))
	reqs := synthesize(cfg, rng, nil, n)
	var workers int
	for _, rq := range reqs {
		if rq.X < 10 || rq.X > 110 || rq.Y < 20 || rq.Y > 220 {
			t.Fatalf("arrival outside bounds: %+v", rq)
		}
		if !math.IsNaN(rq.At) {
			t.Fatalf("synthetic arrival not server-stamped: %+v", rq)
		}
		switch rq.Kind {
		case wire.ReqAddWorker:
			workers++
			if rq.Window != 300 {
				t.Fatalf("worker window = %g", rq.Window)
			}
		case wire.ReqAddTask:
			if rq.Window != 60 {
				t.Fatalf("task window = %g", rq.Window)
			}
		default:
			t.Fatalf("unexpected kind %d", rq.Kind)
		}
	}
	if workers < n/3 || workers > 2*n/3 {
		t.Fatalf("workers = %d of %d, want near half", workers, n)
	}

	// Hotspot: the central 10%x10% square holds ~80% of arrivals (vs ~1%
	// under uniform).
	cfg.pattern = "hotspot"
	reqs = synthesize(cfg, rand.New(rand.NewSource(2)), nil, n)
	var hot int
	for _, rq := range reqs {
		if rq.X >= 55 && rq.X <= 65 && rq.Y >= 109 && rq.Y <= 131 {
			hot++
		}
	}
	if frac := float64(hot) / n; frac < 0.7 {
		t.Fatalf("hotspot fraction = %.2f, want ~0.8", frac)
	}

	// Determinism: same seed, same stream.
	a := synthesize(cfg, rand.New(rand.NewSource(3)), nil, 100)
	b := synthesize(cfg, rand.New(rand.NewSource(3)), nil, 100)
	for i := range a {
		if a[i].X != b[i].X || a[i].Y != b[i].Y || a[i].Kind != b[i].Kind {
			t.Fatalf("seeded synthesis diverged at %d", i)
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 0.5); p != 5 {
		t.Fatalf("p50 = %g", p)
	}
	if p := percentile(s, 0.99); p != 10 {
		t.Fatalf("p99 = %g", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %g", p)
	}
}

// eventStubServer is stubServer plus the event side of the protocol:
// every admission synthesizes one stream event (dense seqs, stamped
// with the stub's clock) pushed to every subscribed connection, and
// Advance answers with the clock — enough surface for the -subscribers
// lag/continuity accounting to be checked exactly.
func eventStubServer(t *testing.T) (addr string, admitted *atomic.Uint64, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	admitted = new(atomic.Uint64)
	var seq atomic.Uint64
	type subConn struct {
		cn *wire.Conn
		mu *sync.Mutex
	}
	var smu sync.Mutex
	var subs []subConn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				cn := wire.NewConn(c)
				wmu := &sync.Mutex{}
				if _, err := wire.ServerHandshake(cn, 1, 0); err != nil {
					return
				}
				var reqs []wire.Request
				for {
					p, err := cn.ReadFrame()
					if err != nil || len(p) == 0 {
						return
					}
					switch p[0] {
					case wire.MsgSubscribe:
						smu.Lock()
						subs = append(subs, subConn{cn, wmu})
						smu.Unlock()
					case wire.MsgBatch:
						id, rs, err := wire.DecodeBatch(p, reqs[:0])
						if err != nil {
							return
						}
						reqs = rs
						results := make([]wire.Result, len(rs))
						var evs []wire.Event
						for i, rq := range rs {
							results[i] = wire.Result{Kind: rq.Kind, Status: wire.StatusOK, Time: now()}
							if rq.Kind == wire.ReqAddWorker || rq.Kind == wire.ReqAddTask {
								admitted.Add(1)
								evs = append(evs, wire.Event{
									Seq: seq.Add(1) - 1, Kind: 0,
									Worker: -1, Task: -1, WorkerShard: -1, TaskShard: -1,
									Time: now(),
								})
							}
						}
						wmu.Lock()
						werr := cn.WriteFrame(wire.AppendBatchReply(nil, id, results))
						wmu.Unlock()
						if werr != nil {
							return
						}
						if len(evs) > 0 {
							frame := wire.AppendEvents(nil, evs[len(evs)-1].Seq+1, evs)
							smu.Lock()
							targets := append([]subConn(nil), subs...)
							smu.Unlock()
							for _, sc := range targets {
								sc.mu.Lock()
								sc.cn.WriteFrame(frame)
								sc.mu.Unlock()
							}
						}
					default:
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), admitted, func() { ln.Close() }
}

// TestRunSubscriberReport: -subscribers opens live subscriptions whose
// deliveries are scored for continuity and lag in the JSON report —
// every subscriber sees every event exactly once, gap-free.
func TestRunSubscriberReport(t *testing.T) {
	addr, admitted, stop := eventStubServer(t)
	defer stop()
	cfg := &genConfig{
		addr:        addr,
		conns:       1,
		duration:    300 * time.Millisecond,
		batch:       16,
		pattern:     "uniform",
		bounds:      [4]float64{0, 0, 100, 100},
		seed:        7,
		workersFrac: 0.5,
		patience:    300,
		expiry:      60,
		subscribers: 2,
	}
	rep := run(cfg)
	if rep.ProtoErrors != 0 {
		t.Fatalf("proto errors = %d: %+v", rep.ProtoErrors, rep)
	}
	sr := rep.Subscribers
	if sr == nil || sr.Count != 2 {
		t.Fatalf("subscribers report = %+v, want count 2", sr)
	}
	if want := 2 * admitted.Load(); sr.Events != want {
		t.Fatalf("subscriber deliveries = %d, want %d (2 subscribers x %d events)",
			sr.Events, want, admitted.Load())
	}
	if sr.Gaps != 0 || sr.EventsGone != 0 {
		t.Fatalf("gaps/gone = %d/%d, want clean streams: %+v", sr.Gaps, sr.EventsGone, sr)
	}
	if sr.EventsPerSec <= 0 {
		t.Fatalf("events_per_sec = %v, want positive", sr.EventsPerSec)
	}
	if sr.LagP99Ms < sr.LagP50Ms || sr.LagP99Ms > 5000 {
		t.Fatalf("degenerate lag percentiles: p50 %v p99 %v", sr.LagP50Ms, sr.LagP99Ms)
	}
}
