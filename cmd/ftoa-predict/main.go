// Command ftoa-predict runs the Table 5 prediction comparison at a chosen
// scale: it generates both city traces, fits the seven spatiotemporal
// predictors, and prints RMSLE and ER on held-out days.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftoa/internal/experiments"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.2, "population scale factor (1.0 = paper scale)")
		seed  = flag.Uint64("seed", 0, "workload seed offset")
	)
	flag.Parse()

	res, err := experiments.PredictionTable(experiments.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
}
