// In-process chaos soak: the full wire path — resilient clients, the
// hardened listener and its dedup windows — behind an adversarial
// network (internal/netfault: latency, resets, stalls, partitions). The
// gate is the exactly-once invariant: every acknowledged admission
// appears in the merged event stream exactly once (matched or expired),
// nothing unacknowledged appears, and none of the injected faults count
// as protocol errors.
package main

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"ftoa/internal/netfault"
	"ftoa/internal/wire"
)

// chaosEndpoint identifies one admitted object by its receipt; with
// retirement disabled (defaultTestConfig) handles are never reused, so
// it is unique for the run.
type chaosEndpoint struct {
	worker       bool
	shard, local uint32
}

func TestChaosSoakExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	cfg := defaultTestConfig()
	cfg.shards = [2]int{2, 2}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := manualClock(srv)
	set(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := newWireServer(srv, ln, 50*time.Millisecond, wireOptions{})
	srv.wire = ws
	t.Cleanup(ws.close)

	proxy, err := netfault.New(netfault.Config{
		Target:         ln.Addr().String(),
		Seed:           42,
		LatencyMin:     time.Millisecond,
		LatencyMax:     5 * time.Millisecond,
		ResetEvery:     250 * time.Millisecond,
		StallEvery:     200 * time.Millisecond,
		StallFor:       40 * time.Millisecond,
		PartitionEvery: time.Second,
		PartitionFor:   120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	addr := proxy.Addr().String()

	// The verifier subscription rides the same chaotic path, exercising
	// cursor resumption across resets.
	var vmu sync.Mutex
	seen := make(map[chaosEndpoint]int)
	var gone int
	sub := wire.NewRetrier(wire.RetryConfig{
		Addr:             addr,
		RequestTimeout:   2 * time.Second,
		BackoffBase:      5 * time.Millisecond,
		BreakerThreshold: -1,
		Subscribe:        true,
		SubscribeSince:   0,
		OnEvents: func(_ uint64, evs []wire.Event) {
			vmu.Lock()
			for i := range evs {
				if evs[i].Worker >= 0 {
					seen[chaosEndpoint{true, uint32(evs[i].WorkerShard), uint32(evs[i].Worker)}]++
				}
				if evs[i].Task >= 0 {
					seen[chaosEndpoint{false, uint32(evs[i].TaskShard), uint32(evs[i].Task)}]++
				}
			}
			vmu.Unlock()
		},
		OnGone: func(uint64) {
			vmu.Lock()
			gone++
			vmu.Unlock()
		},
	})
	t.Cleanup(sub.Close)

	// Load: resilient clients admitting through the proxy, paced so the
	// run outlives several reset/stall/partition cycles.
	const (
		clients    = 4
		batches    = 12
		batchSize  = 16
		totalAdmit = clients * batches * batchSize
	)
	ackedCh := make(chan []chaosEndpoint, clients)
	var totalReconnects, totalResends uint64
	var rmu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := wire.NewRetrier(wire.RetryConfig{
				Addr:             addr,
				RequestTimeout:   2 * time.Second,
				BackoffBase:      5 * time.Millisecond,
				BreakerThreshold: -1,
			})
			defer func() {
				rmu.Lock()
				totalReconnects += r.Reconnects()
				totalResends += r.Resends()
				rmu.Unlock()
				r.Close()
			}()
			rng := rand.New(rand.NewSource(int64(c)))
			var acked []chaosEndpoint
			for b := 0; b < batches; b++ {
				reqs := make([]wire.Request, batchSize)
				for i := range reqs {
					reqs[i] = wire.Request{
						Kind:   wire.ReqAddWorker,
						X:      rng.Float64() * 100,
						Y:      rng.Float64() * 100,
						At:     nan(),
						Window: 5,
					}
					if i%2 == 1 {
						reqs[i].Kind = wire.ReqAddTask
					}
				}
				res, err := r.Do(reqs)
				if err != nil {
					t.Errorf("client %d batch %d: %v", c, b, err)
					return
				}
				for i := range res {
					switch res[i].Status {
					case wire.StatusOK:
						acked = append(acked, chaosEndpoint{
							worker: res[i].Kind == wire.ReqAddWorker,
							shard:  res[i].Shard,
							local:  res[i].Local,
						})
					case wire.StatusBusy:
						// Backpressure, not a fault; the entry was never
						// admitted and must not appear in the stream.
					default:
						t.Errorf("client %d admission error: %+v", c, res[i])
					}
				}
				time.Sleep(20 * time.Millisecond)
			}
			ackedCh <- acked
		}(c)
	}
	wg.Wait()
	close(ackedCh)
	acked := make(map[chaosEndpoint]int)
	for batch := range ackedCh {
		for _, ep := range batch {
			if acked[ep]++; acked[ep] > 1 {
				t.Errorf("endpoint %+v acknowledged twice", ep)
			}
		}
	}
	if len(acked) == 0 {
		t.Fatal("no admission survived the chaos — the soak exercised nothing")
	}

	// Expire everything unmatched (window 5s, clock jumps to 100) and
	// drive advances through the chaotic path until the stream has shown
	// every acked endpoint a terminal event.
	set(100)
	missing := func() int {
		vmu.Lock()
		defer vmu.Unlock()
		n := 0
		for ep := range acked {
			if seen[ep] == 0 {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(60 * time.Second)
	for missing() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d of %d acked endpoints never reached a terminal event", missing(), len(acked))
		}
		if _, err := sub.Do([]wire.Request{{Kind: wire.ReqAdvance}}); err != nil {
			t.Fatalf("advance through chaos: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// A short drain so stragglers (duplicates would be stragglers too)
	// reach the verifier before scoring.
	time.Sleep(300 * time.Millisecond)

	vmu.Lock()
	defer vmu.Unlock()
	for ep, n := range seen {
		if n != 1 {
			t.Errorf("endpoint %+v terminal %d times, want exactly once", ep, n)
		}
		if acked[ep] == 0 {
			t.Errorf("endpoint %+v terminal but never acknowledged (a lost-ack resend re-executed)", ep)
		}
	}
	if gone != 0 {
		t.Errorf("subscription overran retention %d times", gone)
	}
	if ws.protoErr.Load() != 0 {
		t.Errorf("injected network faults counted as %d protocol errors", ws.protoErr.Load())
	}
	rmu.Lock()
	recon, resend := totalReconnects, totalResends
	rmu.Unlock()
	recon += sub.Reconnects()
	if recon == 0 {
		t.Errorf("no client ever reconnected: the chaos schedule (resets every ~250ms over a %d-admission run) never bit", totalAdmit)
	}
	t.Logf("chaos soak: %d acked, %d stream endpoints, %d reconnects, %d resends, %d deduped, stats %+v",
		len(acked), len(seen), recon, resend, ws.deduped.Load(), proxy.Stats())
}
