// Command ftoa-serve exposes an open-world ftoa matching session over
// HTTP/JSON: workers and tasks are admitted as they POST in, the matching
// algorithm runs on every arrival, and committed pairs are reported back.
// It is the minimal proof that the streaming Matcher API serves live
// traffic rather than replayed instances.
//
//	POST /workers          {"x":10,"y":10,"patience":300} -> {"worker":0,"time":1.5}
//	POST /tasks            {"x":11,"y":10,"expiry":60}    -> {"task":0,"time":2.1}
//	GET  /matches          -> {"matches":[{"worker":0,"task":0,"time":2.1}],"count":1}
//	GET  /matches?since=N  -> matches committed after the first N (poll cursor)
//	GET  /stats            -> {"workers":1,"tasks":1,"matches":1,"now":3.0}
//	GET  /healthz          -> ok
//
// Times are seconds since the server started; arrivals are stamped on
// admission. The session is single-writer, so the server serialises all
// access behind one mutex — sharding sessions per region/tenant is the
// scaling story, not concurrent writes to one session.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ftoa"
)

type config struct {
	algorithm string
	window    float64
	mode      string
	velocity  float64
	bounds    [4]float64
	tick      time.Duration
}

// server owns one matching session and serialises HTTP access to it.
type server struct {
	mu   sync.Mutex
	sess *ftoa.Session
	// clock returns the session-time value of "now" (seconds since the
	// server started); tests substitute a manual clock.
	clock func() float64

	// matches accumulates every committed pair drained so far, so GET
	// /matches is a cheap snapshot rather than a session walk. The history
	// is append-only for the server's lifetime (the session retains the
	// full matching anyway); pollers should pass ?since=N so responses
	// stay proportional to new commits, not to the total history.
	matches []matchJSON
	scratch []ftoa.Match
}

type matchJSON struct {
	Worker int     `json:"worker"`
	Task   int     `json:"task"`
	Time   float64 `json:"time"`
}

type workerReq struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Patience float64 `json:"patience"`
}

type taskReq struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Expiry float64 `json:"expiry"`
}

func newServer(cfg config) (*server, error) {
	var mode ftoa.Mode
	switch cfg.mode {
	case "strict":
		mode = ftoa.Strict
	case "assume-guide":
		mode = ftoa.AssumeGuide
	default:
		return nil, fmt.Errorf("unknown mode %q (want strict or assume-guide)", cfg.mode)
	}
	if cfg.tick <= 0 {
		return nil, fmt.Errorf("tick must be positive, got %v", cfg.tick)
	}
	var alg ftoa.Algorithm
	switch cfg.algorithm {
	case "greedy":
		alg = ftoa.NewSimpleGreedy()
	case "gr":
		if cfg.window <= 0 {
			return nil, fmt.Errorf("gr window must be positive, got %v", cfg.window)
		}
		alg = ftoa.NewGR(cfg.window)
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want greedy or gr)", cfg.algorithm)
	}
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     mode,
		Velocity: cfg.velocity,
		Bounds:   ftoa.NewRect(cfg.bounds[0], cfg.bounds[1], cfg.bounds[2], cfg.bounds[3]),
	})
	if err != nil {
		return nil, err
	}
	started := time.Now()
	return &server{
		sess:  m.NewSession(alg),
		clock: func() float64 { return time.Since(started).Seconds() },
	}, nil
}

// now is the session clock value for the current instant.
func (s *server) now() float64 { return s.clock() }

// advance drives session timers from wall time; it is the live analogue of
// the replay loop's event clock and is what makes batch algorithms (GR)
// flush between arrivals. Callers hold s.mu.
func (s *server) advanceLocked() { s.sess.Advance(s.now()) }

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/workers", s.handleWorkers)
	mux.HandleFunc("/tasks", s.handleTasks)
	mux.HandleFunc("/matches", s.handleMatches)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req workerReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Patience <= 0 {
		writeError(w, http.StatusBadRequest, "patience must be positive")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	h, err := s.sess.AddWorker(ftoa.Worker{ID: s.sess.NumWorkers(), Loc: ftoa.Pt(req.X, req.Y), Arrive: now, Patience: req.Patience})
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"worker": h, "time": now})
}

func (s *server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req taskReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Expiry <= 0 {
		writeError(w, http.StatusBadRequest, "expiry must be positive")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	h, err := s.sess.AddTask(ftoa.Task{ID: s.sess.NumTasks(), Loc: ftoa.Pt(req.X, req.Y), Release: now, Expiry: req.Expiry})
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"task": h, "time": now})
}

func (s *server) handleMatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "since must be a non-negative integer")
			return
		}
		since = n
	}
	s.mu.Lock()
	s.advanceLocked()
	s.scratch = s.sess.Drain(s.scratch[:0])
	for _, m := range s.scratch {
		s.matches = append(s.matches, matchJSON{Worker: m.Worker, Task: m.Task, Time: m.Time})
	}
	// O(1) snapshot: the prefix of the append-only history is immutable,
	// so a full-capacity reslice is safe to encode outside the lock and
	// keeps lock hold time flat as the history grows.
	total := len(s.matches)
	out := s.matches[:total:total]
	s.mu.Unlock()
	if since > total {
		since = total
	}
	out = out[since:]
	if out == nil {
		out = []matchJSON{} // encode an empty history as [], not null
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out, "count": total})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	s.advanceLocked()
	stats := map[string]any{
		"workers":   s.sess.NumWorkers(),
		"tasks":     s.sess.NumTasks(),
		"matches":   s.sess.Matching().Size(),
		"attempted": s.sess.Attempted(),
		"rejected":  s.sess.Rejected(),
		"now":       s.sess.Now(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

// tickLoop advances the session clock periodically so timer-driven
// algorithms make progress during arrival lulls.
func (s *server) tickLoop(interval time.Duration) {
	for range time.Tick(interval) {
		s.mu.Lock()
		s.advanceLocked()
		s.mu.Unlock()
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	alg := flag.String("alg", "greedy", "matching algorithm: greedy or gr")
	window := flag.Float64("window", 1.0, "gr batch window in seconds")
	mode := flag.String("mode", "strict", "validation mode: strict or assume-guide")
	velocity := flag.Float64("velocity", 1.0, "worker velocity (units per second)")
	boundsStr := flag.String("bounds", "0,0,100,100", "service area as x0,y0,x1,y1")
	tick := flag.Duration("tick", 250*time.Millisecond, "timer advance interval")
	flag.Parse()

	cfg := config{algorithm: *alg, window: *window, mode: *mode, velocity: *velocity, tick: *tick}
	parts := strings.Split(*boundsStr, ",")
	if len(parts) != 4 {
		log.Fatalf("bad -bounds %q: want x0,y0,x1,y1", *boundsStr)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &cfg.bounds[i]); err != nil {
			log.Fatalf("bad -bounds component %q: %v", p, err)
		}
	}

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	go srv.tickLoop(cfg.tick)
	log.Printf("ftoa-serve: %s matching on %s (mode=%s velocity=%g bounds=%s)",
		cfg.algorithm, *addr, cfg.mode, cfg.velocity, *boundsStr)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}
