// Command ftoa-serve exposes sharded open-world ftoa matching over
// HTTP/JSON: the service area is partitioned into a -shards NxM grid of
// independent sessions, workers and tasks are routed by location as they
// POST in, the matching algorithm runs on every arrival, and the merged
// lifecycle event stream — commits AND the deadline expiries of objects
// that leave unserved — is served back behind a sequence cursor.
//
//	POST /workers          {"x":10,"y":10,"patience":300} -> {"worker":0,"shard":0,"time":1.5}
//	POST /tasks            {"x":11,"y":10,"expiry":60}    -> {"task":0,"shard":0,"time":2.1}
//	GET  /events?since=N   -> {"events":[{"seq":0,"shard":0,"kind":"match","worker":0,"task":0,"time":2.1}],"next":1}
//	GET  /matches          -> {"matches":[{"worker":0,"task":0,"shard":0,"time":2.1}],"count":1}
//	GET  /matches?since=N  -> matches committed after the first N (poll cursor)
//	GET  /stats            -> global aggregates plus a per-shard breakdown
//	GET  /healthz          -> ok
//
// Event kinds are "match", "worker-expired" and "task-expired"; expiries
// carry -1 on the uninvolved side. Both histories are retention-bounded
// (-retention): a cursor pointing below the eviction boundary gets 410
// Gone and must restart from the "next" cursor of a fresh poll.
//
// Guided algorithms are servable: -alg polar|polarop|hybrid with -guide
// pointing at a per-cell count history CSV (the format ftoa-gen -counts
// emits). The server trains HP-MSI (the paper's Table 5 winner) on all
// days but the last and builds the offline guide from its forecasts. By
// default (-guide-anchor wallclock) the guide covers a full week — one
// forecast per weekday — and slot selection is anchored to the wall-clock
// day-of-week and time-of-day at boot, wrapping weekly, so multi-day
// deployments keep loading the right per-slot guide; -guide-anchor
// uptime restores the legacy single-day guide over the first -horizon
// seconds of uptime.
//
// Times are seconds since the server started; arrivals are stamped on
// admission. Each shard's session is single-writer behind its own lock,
// so disjoint regions admit concurrently — sharding, not concurrent
// writes to one session, is the scaling story. The match history is kept
// in per-shard buffers merged at read time, so committing a match never
// crosses a server-global lock either. With -halo set, arrivals near a
// region border are additionally mirrored into the neighboring sessions
// they could feasibly match in (and retracted the moment their original
// is spoken for), recovering the cross-border matches disjoint regions
// lose; /stats breaks the ghost traffic out per shard.
//
// Memory is bounded for arbitrarily long uptimes: besides the
// retention-bounded histories, every shard retires its session arenas on
// the -retire interval (on by default), compacting away matched and
// expired objects and keeping the per-shard footprint proportional to
// the live population. Handles reported at admission are therefore only
// stable until the object dies; the /stats breakdown reports both
// lifetime (workers/tasks) and live (live_workers/live_tasks) counts.
//
// With -wal set the server is durable: every shard appends its
// admissions, withdrawals and match outcomes to a per-shard
// write-ahead log (fsync policy per -wal-sync) and replays it at boot,
// reconstructing the exact pre-crash state — same matched set, same
// event stream, same deadlines. While replay runs the port is already
// bound but every request (including /healthz) answers 503
// "recovering"; SIGTERM/SIGINT drains in-flight requests and flushes
// the log before exiting. -admit-queue bounds each shard's admission
// backlog, shedding excess arrivals with 503 + Retry-After; /stats
// reports the shed counts and the WAL status.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ftoa"
	"ftoa/internal/wire"
)

type config struct {
	algorithm string
	window    float64
	mode      string
	velocity  float64
	bounds    [4]float64
	tick      time.Duration
	shards    [2]int // cols, rows
	retention int
	retire    time.Duration // per-shard arena retirement interval; 0 disables
	// halo is the cross-shard matching reach window in seconds: border
	// arrivals within velocity×halo of a neighboring region are mirrored
	// into it as ghosts and arbitrated so no object matches twice. Zero
	// keeps regions disjoint (the pre-halo hyperlocal behavior).
	halo float64

	// Guide pipeline (polar/polarop/hybrid only).
	guidePath     string // counts CSV; "" = no guide
	guideGrid     [2]int // cols, rows; 0,0 = infer a square grid
	guideDow0     int    // weekday (0-6) of the history's first day
	horizon       float64
	guidePatience float64
	guideExpiry   float64
	// Durability (off unless walDir is set): every shard records its
	// admissions, withdrawals and match outcomes in an append-only log
	// under walDir and replays it at boot, so a crashed or killed server
	// restarts with its matched set, event stream and deadlines intact.
	walDir          string
	walSync         string        // always, interval or none
	walSyncInterval time.Duration // group-commit window for walSync=interval; 0 = default

	// admitQueue bounds the per-shard admission backlog: when more than
	// this many POSTs are simultaneously in flight against one shard,
	// further arrivals to it are shed with 503 + Retry-After instead of
	// convoying on the shard lock. 0 disables shedding.
	admitQueue int

	// ring and batch size the shared per-shard admission rings every
	// arrival — HTTP POST or wire batch — goes through (shard.Admitter).
	// Zero picks the admitter defaults (1024 / 256).
	ring, batch int

	// Adaptive topology (-rebalance): when enabled a supervisor watches
	// per-region arrival-rate EWMAs and splits hot regions into a finer
	// sub-grid / merges cold sibling quads back, migrating live state and
	// WAL-logging each change as a topology epoch (docs/rebalance.md).
	rebalance     bool
	rebalSplit    float64       // split threshold, arrivals/sec per region
	rebalMerge    float64       // merge floor, combined arrivals/sec per sibling quad
	rebalDepth    int           // max quarterings per base cell
	rebalCooldown time.Duration // min time between topology changes
	rebalTau      time.Duration // arrival-rate EWMA time constant
	// rebalForecast feeds the supervisor an HP-MSI demand forecast built
	// from the -guide count history, so it can split ahead of a predicted
	// rush instead of trailing the measured EWMA.
	rebalForecast bool

	// guideAnchor selects how uptime seconds map into guide slots:
	// "uptime" (the legacy behavior) assumes the first -horizon seconds
	// of uptime are the served day, clamping to the last slot forever
	// after; "wallclock" builds a 7-day week guide (one forecast per
	// weekday) and anchors slot selection to the wall-clock time of day
	// at boot, wrapping weekly, so multi-day deployments keep loading the
	// right per-slot guide.
	guideAnchor string
	// anchorOffset is the precomputed seconds-into-week (scaled to the
	// served day length -horizon) of the boot instant; see
	// wallclockOffset. Only meaningful with guideAnchor == "wallclock".
	anchorOffset float64
}

// server owns the shard router and a bounded match-history view of its
// merged event stream.
type server struct {
	router *ftoa.ShardRouter
	// clock returns the session-time value of "now" (seconds since the
	// server started); tests substitute a manual clock.
	clock func() float64
	// minAdvance throttles the read-path advance: a GET only walks all
	// shard locks when the clock moved at least this far (half the tick
	// interval) since the last walk, so polling traffic cannot convoy
	// the whole grid. lastAdvance holds the float64 bits of the clock
	// value of the last walk.
	minAdvance  float64
	lastAdvance atomic.Uint64

	// matchLog is the retention-bounded match-history view behind GET
	// /matches: fed synchronously and losslessly by the router's OnEvent
	// hook (so it never misses a commit even when the polled event log
	// wraps), buffered per shard so recording a match contends only on
	// the emitting shard — the admission hot path never crosses a
	// server-global lock. Cursor semantics are count-based as before:
	// "count" reports the lifetime total, cursors below the eviction
	// boundary get 410.
	matchLog *ftoa.MatchLog

	// admitter is the shared batched admission front: every arrival —
	// HTTP POST or wire batch entry — is enqueued to a per-shard MPSC
	// ring and admitted by that ring's single drainer, so producers never
	// touch a shard lock and backpressure (a full ring, or a router
	// mid-rebalance) is an immediate BUSY refusal. The server owns its
	// lifecycle: main closes it after the listeners drain and before the
	// WAL closes.
	admitter *ftoa.ShardAdmitter

	// rebal, when non-nil, is the adaptive-topology supervisor; it is
	// ticked only from tickLoop (it is single-goroutine).
	rebal *ftoa.RebalanceSupervisor

	// Overload shedding: inflight counts the POSTs currently holding (or
	// queued on) each lane's admission path; arrivals beyond admitLimit
	// are shed with 503 + Retry-After and counted in shed for /stats.
	// admitLimit 0 disables shedding. Both arrays are indexed by LANE —
	// shard id modulo the initial region count — because a rebalance can
	// grow the region count while these arrays (like the admitter's
	// rings) stay fixed; on a static topology lane == shard.
	admitLimit int
	inflight   []atomic.Int32
	shed       []atomic.Uint64

	// walled reports whether the router is WAL-backed; recovery holds
	// the boot replay summary (nil when walled is false).
	walled   bool
	recovery *ftoa.ShardRecoveryInfo

	// wire is the binary-protocol listener (-listen-wire), nil when
	// disabled; kept here so /stats can report its counters.
	wire *wireServer
}

// maxEventsPage caps one GET /events or GET /matches response; pollers
// page via "next".
const maxEventsPage = 10000

// maxEventsWait caps the ?wait= long-poll window on GET /events so a
// stuck client cannot pin a handler indefinitely; clients wanting a
// longer watch re-issue the poll (their cursor makes that gap-free).
const maxEventsWait = 30 * time.Second

type matchJSON struct {
	Worker int `json:"worker"`
	Task   int `json:"task"`
	// Shard is the shard whose session committed the pair; worker_shard
	// and task_shard are the endpoints' owner shards, which differ from
	// it for cross-border (halo) matches.
	Shard       int     `json:"shard"`
	WorkerShard int     `json:"worker_shard"`
	TaskShard   int     `json:"task_shard"`
	Time        float64 `json:"time"`
}

type eventJSON struct {
	Seq         uint64  `json:"seq"`
	Shard       int     `json:"shard"`
	Kind        string  `json:"kind"`
	Worker      int     `json:"worker"`
	Task        int     `json:"task"`
	WorkerShard int     `json:"worker_shard"`
	TaskShard   int     `json:"task_shard"`
	Time        float64 `json:"time"`
}

type workerReq struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Patience float64 `json:"patience"`
}

type taskReq struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Expiry float64 `json:"expiry"`
}

// buildAlgorithm resolves the -alg flag into a per-shard factory, loading
// and training the guide pipeline when the algorithm needs one.
func buildAlgorithm(cfg config) (func() ftoa.Algorithm, error) {
	switch cfg.algorithm {
	case "greedy":
		return func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() }, nil
	case "gr":
		if cfg.window <= 0 {
			return nil, fmt.Errorf("gr window must be positive, got %v", cfg.window)
		}
		return func() ftoa.Algorithm { return ftoa.NewGR(cfg.window) }, nil
	case "polar", "polarop", "hybrid":
		if cfg.guidePath == "" {
			return nil, fmt.Errorf("algorithm %q needs -guide counts.csv", cfg.algorithm)
		}
		f, err := os.Open(cfg.guidePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := guideFromCounts(f, cfg)
		if err != nil {
			return nil, fmt.Errorf("building guide from %s: %w", cfg.guidePath, err)
		}
		// The guide is read-only: one instance is shared by every
		// shard's algorithm.
		switch cfg.algorithm {
		case "polar":
			return func() ftoa.Algorithm { return ftoa.NewPOLAR(g) }, nil
		case "polarop":
			return func() ftoa.Algorithm { return ftoa.NewPOLAROP(g) }, nil
		default:
			return func() ftoa.Algorithm { return ftoa.NewHybrid(g) }, nil
		}
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want greedy, gr, polar, polarop or hybrid)", cfg.algorithm)
	}
}

// guideFromCounts runs the paper's offline pipeline over a recorded count
// history: load the per-(day, slot, area) CSV, train HP-MSI on every day
// but the last, and build the guide (Algorithm 1) over the server's
// bounds. With -guide-anchor uptime the guide covers one forecast day
// mapped onto the first -horizon seconds of uptime; with wallclock it
// covers a full week — one forecast per weekday, each weekday served by
// the latest history day with that weekday — addressed by an anchored,
// weekly-wrapping slotting so any uptime instant resolves to the right
// wall-clock (day-of-week, time-of-day) slot.
func guideFromCounts(r io.Reader, cfg config) (*ftoa.Guide, error) {
	days, slots, areas, wCounts, tCounts, weather, err := ftoa.LoadCountsCSV(r)
	if err != nil {
		return nil, err
	}
	if days < 3 {
		return nil, fmt.Errorf("count history has %d day(s); need >= 3 (HP-MSI trains on all but the last, forecasts the last)", days)
	}
	cols, rows := cfg.guideGrid[0], cfg.guideGrid[1]
	if cols == 0 && rows == 0 {
		side := int(math.Round(math.Sqrt(float64(areas))))
		if side*side != areas {
			return nil, fmt.Errorf("%d areas is not square; pass -guide-grid CxR", areas)
		}
		cols, rows = side, side
	}
	if cols*rows != areas {
		return nil, fmt.Errorf("-guide-grid %dx%d does not match the history's %d areas", cols, rows, areas)
	}
	// Day-of-week labels feed HP-MSI's weekday seasonality; -guide-dow0
	// anchors the history's first day so a trace starting mid-week is
	// not silently rotated.
	dow := make([]int, days)
	for i := range dow {
		dow[i] = (cfg.guideDow0 + i) % 7
	}
	// Fit one predictor per side (training excludes the last day), then
	// predict whichever history days the anchor mode needs.
	fit := func(counts []int) (*ftoa.Series, ftoa.Predictor, error) {
		s, err := ftoa.NewSeries(days, slots, areas, counts, weather, dow)
		if err != nil {
			return nil, nil, err
		}
		p := ftoa.NewHPMSI()
		if err := p.Fit(s, days-1); err != nil {
			return nil, nil, err
		}
		return s, p, nil
	}
	wSeries, wPredictor, err := fit(wCounts)
	if err != nil {
		return nil, err
	}
	tSeries, tPredictor, err := fit(tCounts)
	if err != nil {
		return nil, err
	}

	var wPred, tPred []int
	var slotting *ftoa.Slotting
	switch cfg.guideAnchor {
	case "", "uptime":
		wPred = ftoa.ToCounts(ftoa.PredictDay(wPredictor, wSeries, days-1))
		tPred = ftoa.ToCounts(ftoa.PredictDay(tPredictor, tSeries, days-1))
		slotting = ftoa.NewSlotting(cfg.horizon, slots)
	case "wallclock":
		src := weekdaySources(dow)
		wPred = make([]int, 0, 7*slots*areas)
		tPred = make([]int, 0, 7*slots*areas)
		for d := 0; d < 7; d++ {
			wPred = append(wPred, ftoa.ToCounts(ftoa.PredictDay(wPredictor, wSeries, src[d]))...)
			tPred = append(tPred, ftoa.ToCounts(ftoa.PredictDay(tPredictor, tSeries, src[d]))...)
		}
		slotting = ftoa.NewAnchoredSlotting(7*cfg.horizon, 7*slots, cfg.anchorOffset)
	default:
		return nil, fmt.Errorf("unknown -guide-anchor %q (want wallclock or uptime)", cfg.guideAnchor)
	}
	bounds := ftoa.NewRect(cfg.bounds[0], cfg.bounds[1], cfg.bounds[2], cfg.bounds[3])
	return ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:            ftoa.NewGrid(bounds, cols, rows),
		Slots:           slotting,
		Velocity:        cfg.velocity,
		WorkerPatience:  cfg.guidePatience,
		TaskExpiry:      cfg.guideExpiry,
		MaxEdgesPerCell: 128,
		RepSlack:        slotting.Width() / 2,
	}, wPred, tPred)
}

// weekdaySources maps each weekday 0-6 (Sunday-anchored, like
// time.Weekday) to the history day whose pattern should serve it: the
// latest history day with that weekday, falling back to the overall last
// day for weekdays a short history never saw.
func weekdaySources(dow []int) [7]int {
	var src [7]int
	for d := range src {
		src[d] = len(dow) - 1
	}
	for i, w := range dow {
		src[w] = i // ascending i: the latest occurrence wins
	}
	return src
}

// forecastFromCounts builds the rebalance supervisor's demand forecaster
// from the -guide count history: train HP-MSI exactly as the guide
// pipeline does, convert the predicted per-(slot, area) worker+task
// counts into arrival rates, and answer a per-region demand query by
// overlapping the region rect with the forecast grid at the slot the
// queried instant falls into (same -guide-anchor rules as the guide).
// The supervisor takes max(measured EWMA, forecast), so a predicted rush
// can trigger a split before the measured rate catches up.
func forecastFromCounts(r io.Reader, cfg config) (func(ftoa.Rect, float64) float64, error) {
	days, slots, areas, wCounts, tCounts, weather, err := ftoa.LoadCountsCSV(r)
	if err != nil {
		return nil, err
	}
	if days < 3 {
		return nil, fmt.Errorf("count history has %d day(s); need >= 3 (HP-MSI trains on all but the last, forecasts the last)", days)
	}
	cols, rows := cfg.guideGrid[0], cfg.guideGrid[1]
	if cols == 0 && rows == 0 {
		side := int(math.Round(math.Sqrt(float64(areas))))
		if side*side != areas {
			return nil, fmt.Errorf("%d areas is not square; pass -guide-grid CxR", areas)
		}
		cols, rows = side, side
	}
	if cols*rows != areas {
		return nil, fmt.Errorf("-guide-grid %dx%d does not match the history's %d areas", cols, rows, areas)
	}
	dow := make([]int, days)
	for i := range dow {
		dow[i] = (cfg.guideDow0 + i) % 7
	}
	fit := func(counts []int) (*ftoa.Series, ftoa.Predictor, error) {
		s, err := ftoa.NewSeries(days, slots, areas, counts, weather, dow)
		if err != nil {
			return nil, nil, err
		}
		p := ftoa.NewHPMSI()
		if err := p.Fit(s, days-1); err != nil {
			return nil, nil, err
		}
		return s, p, nil
	}
	wSeries, wPredictor, err := fit(wCounts)
	if err != nil {
		return nil, err
	}
	tSeries, tPredictor, err := fit(tCounts)
	if err != nil {
		return nil, err
	}

	var wPred, tPred []int
	var period float64
	var nslots int
	var offset float64
	wallclock := false
	switch cfg.guideAnchor {
	case "", "uptime":
		wPred = ftoa.ToCounts(ftoa.PredictDay(wPredictor, wSeries, days-1))
		tPred = ftoa.ToCounts(ftoa.PredictDay(tPredictor, tSeries, days-1))
		period, nslots = cfg.horizon, slots
	case "wallclock":
		src := weekdaySources(dow)
		wPred = make([]int, 0, 7*slots*areas)
		tPred = make([]int, 0, 7*slots*areas)
		for d := 0; d < 7; d++ {
			wPred = append(wPred, ftoa.ToCounts(ftoa.PredictDay(wPredictor, wSeries, src[d]))...)
			tPred = append(tPred, ftoa.ToCounts(ftoa.PredictDay(tPredictor, tSeries, src[d]))...)
		}
		period, nslots = 7*cfg.horizon, 7*slots
		offset, wallclock = cfg.anchorOffset, true
	default:
		return nil, fmt.Errorf("unknown -guide-anchor %q (want wallclock or uptime)", cfg.guideAnchor)
	}
	width := period / float64(nslots)
	// Per-(slot, cell) arrival rate: counts are per slot, so rate is
	// count over slot width, workers and tasks combined — the same
	// arrivals-per-second unit as the router's EWMA.
	rate := make([]float64, nslots*areas)
	for i := range rate {
		rate[i] = float64(wPred[i]+tPred[i]) / width
	}
	bounds := ftoa.NewRect(cfg.bounds[0], cfg.bounds[1], cfg.bounds[2], cfg.bounds[3])
	grid := ftoa.NewGrid(bounds, cols, rows)
	return func(region ftoa.Rect, now float64) float64 {
		t := now + offset
		if wallclock {
			t = math.Mod(t, period)
			if t < 0 {
				t += period
			}
		}
		idx := int(t / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nslots {
			idx = nslots - 1 // uptime anchoring clamps to the last slot
		}
		var sum float64
		for c := 0; c < areas; c++ {
			cr := grid.CellRect(c)
			ov := rectOverlap(region, cr)
			if ov <= 0 {
				continue
			}
			if a := cr.Width() * cr.Height(); a > 0 {
				sum += rate[idx*areas+c] * ov / a
			}
		}
		return sum
	}, nil
}

// rectOverlap is the intersection area of two rects.
func rectOverlap(a, b ftoa.Rect) float64 {
	w := min(a.MaxX, b.MaxX) - max(a.MinX, b.MinX)
	h := min(a.MaxY, b.MaxY) - max(a.MinY, b.MinY)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// wallclockOffset returns the seconds-into-week of t, scaled so one day
// spans dayLen seconds of the guide timeline (-horizon is the served day
// length; with the default 86400 the scale is 1:1). The day fraction is
// read off the wall-clock components — not elapsed-since-midnight, which
// over- or undershoots by the shifted hour on DST transition days.
func wallclockOffset(t time.Time, dayLen float64) float64 {
	secs := float64(t.Hour()*3600+t.Minute()*60+t.Second()) + float64(t.Nanosecond())/1e9
	return (float64(t.Weekday()) + secs/86400) * dayLen
}

func newServer(cfg config) (*server, error) {
	var mode ftoa.Mode
	switch cfg.mode {
	case "strict":
		mode = ftoa.Strict
	case "assume-guide":
		mode = ftoa.AssumeGuide
	default:
		return nil, fmt.Errorf("unknown mode %q (want strict or assume-guide)", cfg.mode)
	}
	if cfg.tick <= 0 {
		return nil, fmt.Errorf("tick must be positive, got %v", cfg.tick)
	}
	if cfg.retention <= 0 {
		return nil, fmt.Errorf("retention must be positive, got %d", cfg.retention)
	}
	if cfg.horizon <= 0 {
		return nil, fmt.Errorf("horizon must be positive, got %v", cfg.horizon)
	}
	if cfg.retire < 0 {
		return nil, fmt.Errorf("retire interval must be non-negative, got %v", cfg.retire)
	}
	if cfg.halo < 0 {
		return nil, fmt.Errorf("halo window must be non-negative, got %v", cfg.halo)
	}
	switch cfg.guideAnchor {
	case "", "uptime":
	case "wallclock":
		// The anchor is derived here, next to the validation, so every
		// construction path — not just flag parsing — maps uptime onto
		// the boot instant's day-of-week and time-of-day.
		cfg.anchorOffset = wallclockOffset(time.Now(), cfg.horizon)
	default:
		return nil, fmt.Errorf("unknown guide anchor %q (want wallclock or uptime)", cfg.guideAnchor)
	}
	if cfg.admitQueue < 0 {
		return nil, fmt.Errorf("admit queue bound must be non-negative, got %d", cfg.admitQueue)
	}
	var walPolicy ftoa.WALSyncPolicy
	switch cfg.walSync {
	case "", "interval":
		walPolicy = ftoa.WALSyncInterval
	case "always":
		walPolicy = ftoa.WALSyncAlways
	case "none":
		walPolicy = ftoa.WALSyncNone
	default:
		return nil, fmt.Errorf("unknown WAL sync policy %q (want always, interval or none)", cfg.walSync)
	}
	mk, err := buildAlgorithm(cfg)
	if err != nil {
		return nil, err
	}
	started := time.Now()
	s := &server{
		clock:      func() float64 { return time.Since(started).Seconds() },
		minAdvance: cfg.tick.Seconds() / 2,
		matchLog:   ftoa.NewMatchLog(cfg.shards[0]*cfg.shards[1], cfg.retention),
		admitLimit: cfg.admitQueue,
		inflight:   make([]atomic.Int32, cfg.shards[0]*cfg.shards[1]),
		shed:       make([]atomic.Uint64, cfg.shards[0]*cfg.shards[1]),
	}
	s.lastAdvance.Store(math.Float64bits(math.Inf(-1)))
	shardCfg := ftoa.ShardConfig{
		Matcher: ftoa.MatcherConfig{
			Mode:     mode,
			Velocity: cfg.velocity,
			Bounds:   ftoa.NewRect(cfg.bounds[0], cfg.bounds[1], cfg.bounds[2], cfg.bounds[3]),
		},
		Cols: cfg.shards[0],
		Rows: cfg.shards[1],
		// -halo is a reach window in seconds; the router wants a distance.
		Halo:           ftoa.HaloForWindow(cfg.velocity, cfg.halo),
		NewAlgorithm:   mk,
		Retention:      cfg.retention,
		RetireInterval: cfg.retire.Seconds(),
		OnEvent:        s.matchLog.Record,
	}
	if cfg.walDir == "" {
		s.router, err = ftoa.NewShardRouter(shardCfg)
		if err != nil {
			return nil, err
		}
	} else {
		shardCfg.WAL = &ftoa.WALOptions{Dir: cfg.walDir, Policy: walPolicy, Interval: cfg.walSyncInterval}
		// Replaying the log re-fires the OnEvent hook for every recovered
		// commit, so the /matches history comes back along with the router.
		s.router, s.recovery, err = ftoa.RecoverShardRouter(shardCfg)
		if err != nil {
			return nil, err
		}
		s.walled = true
		if off := s.recovery.MaxClock; off > 0 && !math.IsInf(off, 0) {
			// Session time must stay monotone across the restart: resume the
			// clock where the dead process left it, so recovered deadlines
			// (admission time + patience/expiry) keep their meaning instead
			// of all expiring relative to a rewound zero.
			s.clock = func() float64 { return off + time.Since(started).Seconds() }
		}
	}
	s.admitter = ftoa.NewShardAdmitter(s.router, ftoa.ShardAdmitterConfig{Ring: cfg.ring, Batch: cfg.batch})
	if cfg.rebalance {
		rcfg := ftoa.RebalanceConfig{
			SplitRate: cfg.rebalSplit,
			MergeRate: cfg.rebalMerge,
			MaxDepth:  cfg.rebalDepth,
			Cooldown:  cfg.rebalCooldown.Seconds(),
			Tau:       cfg.rebalTau.Seconds(),
		}
		if cfg.rebalForecast {
			if cfg.guidePath == "" {
				return nil, fmt.Errorf("-rebalance-forecast needs -guide counts.csv to train the demand predictor")
			}
			f, err := os.Open(cfg.guidePath)
			if err != nil {
				return nil, err
			}
			rcfg.Forecast, err = forecastFromCounts(f, cfg)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("building demand forecast from %s: %w", cfg.guidePath, err)
			}
		}
		if s.rebal, err = ftoa.NewRebalanceSupervisor(s.router, rcfg); err != nil {
			return nil, err
		}
	} else if cfg.rebalForecast {
		return nil, fmt.Errorf("-rebalance-forecast needs -rebalance")
	}
	return s, nil
}

// close stops the admission drainers, draining their rings; producers
// (the HTTP and wire listeners) must be stopped first, and the router's
// WAL closed after, so every acknowledged admission becomes durable.
func (s *server) close() { s.admitter.Close() }

// now is the session clock value for the current instant.
func (s *server) now() float64 { return s.clock() }

// advance drives every shard's timers and expiries from wall time; it is
// the live analogue of the replay loop's event clock and what makes batch
// algorithms (GR) flush — and deadlines expire — between arrivals. It is
// throttled to minAdvance of clock movement (the tick loop already bounds
// staleness to one tick); the CAS dedups walkers racing for the same
// clock window, though two walks may still overlap across windows —
// safe, since Router.Advance is concurrent-safe and monotone per shard.
func (s *server) advance() {
	now := s.now()
	last := s.lastAdvance.Load()
	if now-math.Float64frombits(last) < s.minAdvance {
		return
	}
	if !s.lastAdvance.CompareAndSwap(last, math.Float64bits(now)) {
		return // a concurrent request is already walking the shards
	}
	s.router.Advance(now)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/workers", s.handleWorkers)
	mux.HandleFunc("/tasks", s.handleTasks)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/matches", s.handleMatches)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// lane maps a (possibly rebalance-grown) shard id onto the fixed
// inflight/shed arrays; on a static topology lane == shard.
func (s *server) lane(shard int) int { return shard % len(s.inflight) }

// admitSlot reserves an admission slot against lane's bounded queue;
// the caller must release it with s.inflight[lane].Add(-1) once the
// admission resolves. A false return means the lane is over its
// backlog bound and the arrival was counted as shed.
func (s *server) admitSlot(lane int) bool {
	n := s.inflight[lane].Add(1)
	if s.admitLimit > 0 && int(n) > s.admitLimit {
		s.inflight[lane].Add(-1)
		s.shed[lane].Add(1)
		return false
	}
	return true
}

// shedReply is the overload response: 503 with a jittered Retry-After
// hint (1 or 2 seconds — the header's resolution) so a crowd of shed
// clients does not re-arrive in the same tick.
func (s *server) shedReply(w http.ResponseWriter, lane int) {
	w.Header().Set("Retry-After", strconv.Itoa(1+rand.IntN(2)))
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("shard %d admission queue full, retry later", lane))
}

func (s *server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req workerReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Patience <= 0 {
		writeError(w, http.StatusBadRequest, "patience must be positive")
		return
	}
	pt := ftoa.Pt(req.X, req.Y)
	lane := s.lane(s.router.ShardOf(pt))
	if !s.admitSlot(lane) {
		s.shedReply(w, lane)
		return
	}
	defer s.inflight[lane].Add(-1)
	// The admission goes through the shared per-shard ring: the drainer
	// reports the admission time the shard session actually stamped (the
	// clock read here, clamped monotone under the shard lock), so the
	// response always agrees with the session's deadlines even when
	// concurrent POSTs race the clock forward. A refused enqueue — full
	// ring, or the router quiescing for a rebalance — is the same 503 +
	// Retry-After surface as a full backlog.
	var res ftoa.ShardAdmitResult
	var wg sync.WaitGroup
	if !s.admitter.AddWorker(ftoa.Worker{Loc: pt, Arrive: s.now(), Patience: req.Patience}, &res, &wg) {
		s.shed[lane].Add(1)
		s.shedReply(w, lane)
		return
	}
	wg.Wait()
	if res.Err != nil {
		writeError(w, http.StatusConflict, res.Err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"worker": res.H.Local, "shard": res.H.Shard, "time": res.Admitted})
}

func (s *server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req taskReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Expiry <= 0 {
		writeError(w, http.StatusBadRequest, "expiry must be positive")
		return
	}
	pt := ftoa.Pt(req.X, req.Y)
	lane := s.lane(s.router.ShardOf(pt))
	if !s.admitSlot(lane) {
		s.shedReply(w, lane)
		return
	}
	defer s.inflight[lane].Add(-1)
	var res ftoa.ShardAdmitResult
	var wg sync.WaitGroup
	if !s.admitter.AddTask(ftoa.Task{Loc: pt, Release: s.now(), Expiry: req.Expiry}, &res, &wg) {
		s.shed[lane].Add(1)
		s.shedReply(w, lane)
		return
	}
	wg.Wait()
	if res.Err != nil {
		writeError(w, http.StatusConflict, res.Err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"task": res.H.Local, "shard": res.H.Shard, "time": res.Admitted})
}

// parseSince reads a non-negative integer cursor. present reports whether
// the parameter was supplied (an absent cursor means "from the oldest
// retained", never 410); ok is false after an error response has been
// written.
func parseSince(w http.ResponseWriter, r *http.Request) (since uint64, present, ok bool) {
	v := r.URL.Query().Get("since")
	if v == "" {
		return 0, false, true
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "since must be a non-negative integer")
		return 0, true, false
	}
	return n, true, true
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	since, present, ok := parseSince(w, r)
	if !ok {
		return
	}
	// Page size: bounded so a cold cursor over a full multi-shard backlog
	// cannot serialize shards x retention events into one response; the
	// returned "next" cursor pages through the rest gap-free. Clients may
	// lower it with ?limit=N.
	limit := maxEventsPage
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		if n < limit {
			limit = n
		}
	}
	// wait=DURATION long-polls: when the cursor is at the head, hold the
	// request on a broadcast subscription (the same primitive as the wire
	// pusher — no server-side poll loop) until an event arrives or the
	// window elapses, then answer normally. Only meaningful with an
	// explicit since cursor; capped so a stuck client cannot pin a
	// handler for long.
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "wait must be a non-negative duration (e.g. 5s)")
			return
		}
		if d > maxEventsWait {
			d = maxEventsWait
		}
		wait = d
	}
	s.advance()
	var evs []ftoa.ShardEvent
	var next uint64
	var err error
	if present {
		if wait > 0 && since >= s.router.Cursor() {
			// At the head with nothing to deliver: park on the broadcast
			// until an emission (or the client giving up) wakes us, then
			// serve the page below exactly as an immediate poll would.
			sub := s.router.Subscribe(since)
			sub.Wait(wait, r.Context().Done())
			sub.Close()
		}
		evs, next, err = s.router.EventsLimit(since, limit, nil)
	} else {
		// The bare form serves "whatever is retained" atomically — it
		// can never race retention into a 410.
		evs, next = s.router.EventsFromOldest(limit, nil)
	}
	if err != nil {
		// The cursor points below the retention boundary: the client
		// restarts from the oldest still-readable cursor, losing only
		// the genuinely evicted events.
		writeJSON(w, http.StatusGone, map[string]any{
			"error": err.Error(),
			"next":  s.router.OldestCursor(),
		})
		return
	}
	out := make([]eventJSON, len(evs))
	for i, ev := range evs {
		out[i] = eventJSON{
			Seq:         ev.Seq,
			Shard:       ev.Shard,
			Kind:        ev.Kind.String(),
			Worker:      ev.Worker,
			Task:        ev.Task,
			WorkerShard: ev.WorkerShard,
			TaskShard:   ev.TaskShard,
			Time:        ev.Time,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": out, "next": next})
}

func (s *server) handleMatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	since, present, ok := parseSince(w, r)
	if !ok {
		return
	}
	// Pages are bounded like /events: an uncapped read would copy and
	// sort the whole retained window (shards x retention entries) per
	// poll. Clients follow "next"; ?limit=N lowers the cap.
	limit := maxEventsPage
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		if n < limit {
			limit = n
		}
	}
	s.advance()
	var (
		entries []ftoa.MatchEntry
		next    uint64
		err     error
	)
	if present {
		if total := s.matchLog.Count(); since > total {
			since = total
		}
		entries, next, err = s.matchLog.Matches(since, limit, nil)
	} else {
		// The bare snapshot form returns the retained window, never 410.
		entries, next = s.matchLog.MatchesFromOldest(limit, nil)
	}
	if err != nil {
		// Like /events, hand back the oldest still-readable cursor so
		// the client loses only the genuinely evicted matches.
		writeJSON(w, http.StatusGone, map[string]any{
			"error": fmt.Sprintf("matches before %d evicted (retention window)", s.matchLog.Oldest()),
			"count": s.matchLog.Count(),
			"next":  s.matchLog.Oldest(),
		})
		return
	}
	out := make([]matchJSON, len(entries)) // [] (not null) when empty
	for i, e := range entries {
		out[i] = matchJSON{
			Worker:      e.Worker,
			Task:        e.Task,
			Shard:       e.Shard,
			WorkerShard: e.WorkerShard,
			TaskShard:   e.TaskShard,
			Time:        e.Time,
		}
	}
	// "count" is the lifetime total; "next" is the gap-free poll cursor
	// (use it rather than count: a match committing concurrently with
	// this read may be sequenced but not yet merged).
	writeJSON(w, http.StatusOK, map[string]any{"matches": out, "count": s.matchLog.Count(), "next": next})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.advance()
	type shardJSON struct {
		Shard          int     `json:"shard"`
		Workers        int     `json:"workers"`
		Tasks          int     `json:"tasks"`
		LiveWorkers    int     `json:"live_workers"`
		LiveTasks      int     `json:"live_tasks"`
		Matches        int     `json:"matches"`
		ExpiredWorkers int     `json:"expired_workers"`
		ExpiredTasks   int     `json:"expired_tasks"`
		Attempted      int     `json:"attempted"`
		Rejected       int     `json:"rejected"`
		Now            float64 `json:"now"`
		// Halo (cross-shard) metrics; all zero with -halo 0. Ghosts are
		// mirrored copies admitted into this shard; withdrawn counts the
		// copies retracted after their original matched or expired
		// elsewhere; claims_lost the commits this shard lost to the
		// cross-shard arbitration; border_matches the commits won here
		// involving a mirrored endpoint.
		GhostWorkers     int `json:"ghost_workers"`
		GhostTasks       int `json:"ghost_tasks"`
		WithdrawnWorkers int `json:"withdrawn_workers"`
		WithdrawnTasks   int `json:"withdrawn_tasks"`
		ClaimsLost       int `json:"claims_lost"`
		BorderMatches    int `json:"border_matches"`
		// Shed counts the arrivals this shard's LANE rejected with 503
		// because its bounded admission queue (-admit-queue) was full;
		// after a rebalance grows the region count past the lane count,
		// the lane's count is reported under every shard sharing it.
		Shed uint64 `json:"shed"`
		// ArrivalRate is the shard's admission-rate EWMA in arrivals per
		// second — the demand signal the rebalance supervisor splits and
		// merges on. Zero until the first two samples.
		ArrivalRate float64 `json:"arrival_rate"`
	}
	// One StatsAll snapshot: per-shard reads would race a concurrent
	// topology swap (the shard count can change between iterations).
	stats := s.router.StatsAll(nil)
	shards := make([]shardJSON, len(stats))
	var workers, tasks, liveW, liveT, matches, expW, expT, attempted, rejected int
	var ghostW, ghostT, wdW, wdT, claimsLost, borderMatches int
	var shedTotal uint64
	now := 0.0
	for i := range shards {
		st := stats[i]
		// A session that has never been advanced reports -Inf (the
		// unset-clock sentinel), which JSON cannot encode; server time
		// starts at 0, so clamp there.
		if math.IsInf(st.Now, -1) {
			st.Now = 0
		}
		shards[i] = shardJSON{
			Shard:            st.Shard,
			Workers:          st.Workers,
			Tasks:            st.Tasks,
			LiveWorkers:      st.LiveWorkers,
			LiveTasks:        st.LiveTasks,
			Matches:          st.Matches,
			ExpiredWorkers:   st.ExpiredWorkers,
			ExpiredTasks:     st.ExpiredTasks,
			Attempted:        st.Attempted,
			Rejected:         st.Rejected,
			Now:              st.Now,
			GhostWorkers:     st.GhostWorkers,
			GhostTasks:       st.GhostTasks,
			WithdrawnWorkers: st.WithdrawnWorkers,
			WithdrawnTasks:   st.WithdrawnTasks,
			ClaimsLost:       st.ClaimsLost,
			BorderMatches:    st.BorderMatches,
			Shed:             s.shed[s.lane(i)].Load(),
			ArrivalRate:      st.ArrivalRate,
		}
		workers += st.Workers
		tasks += st.Tasks
		liveW += st.LiveWorkers
		liveT += st.LiveTasks
		matches += st.Matches
		expW += st.ExpiredWorkers
		expT += st.ExpiredTasks
		attempted += st.Attempted
		rejected += st.Rejected
		ghostW += st.GhostWorkers
		ghostT += st.GhostTasks
		wdW += st.WithdrawnWorkers
		wdT += st.WithdrawnTasks
		claimsLost += st.ClaimsLost
		borderMatches += st.BorderMatches
		if st.Now > now {
			now = st.Now
		}
	}
	// Shed totals come from the lane array directly — summing the
	// per-shard field would double-count lanes shared by several regions.
	for i := range s.shed {
		shedTotal += s.shed[i].Load()
	}
	// WAL status: sticky append errors surface here (and only here) so an
	// operator polling /stats notices a durability failure while the
	// in-memory router keeps serving.
	walStatus := map[string]any{"enabled": s.walled}
	if s.walled {
		walStatus["generation"] = s.router.WALGeneration()
		walStatus["recovered"] = s.recovery.Recovered
		walStatus["recovered_events"] = s.recovery.Events
		walStatus["recovered_matches"] = s.recovery.Matches
		walStatus["torn_bytes"] = s.recovery.TornBytes
		if err := s.router.WALErr(); err != nil {
			walStatus["error"] = err.Error()
		}
	}
	wireStatus := map[string]any{"enabled": false}
	if s.wire != nil {
		wireStatus = s.wire.statsJSON()
	}
	// Event delivery status: the shared broadcast ring every subscriber
	// (wire pushers, /events long-polls) is served from. "fallbacks"
	// counts subscriber reads that fell behind the ring and paged through
	// the merge-on-read path; "evicted_subs" the wire subscribers dropped
	// for not draining their stream.
	bst := s.router.BroadcastStats()
	var evictedSubs uint64
	if s.wire != nil {
		evictedSubs = s.wire.evicted.Load()
	}
	eventsStatus := map[string]any{
		"subscribers":   bst.Subscribers,
		"ring_depth":    bst.Depth,
		"ring_capacity": bst.Capacity,
		"published":     bst.Published,
		"dropped":       bst.Dropped,
		"fallbacks":     bst.Fallbacks,
		"wakeups":       bst.Wakeups,
		"evicted_subs":  evictedSubs,
	}
	// Topology status: the current (possibly rebalanced) region layout.
	// The string is "CxR" for the uniform base grid, "CxR+n" after n
	// quadtree splits; see docs/rebalance.md.
	topoStatus := map[string]any{
		"adaptive":   s.rebal != nil,
		"version":    s.router.TopologyVersion(),
		"topology":   s.router.Topology().String(),
		"regions":    len(stats),
		"rebalances": s.router.Rebalances(),
		"migrating":  s.router.Migrating(),
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":           workers,
		"tasks":             tasks,
		"live_workers":      liveW,
		"live_tasks":        liveT,
		"matches":           matches,
		"expired_workers":   expW,
		"expired_tasks":     expT,
		"attempted":         attempted,
		"rejected":          rejected,
		"ghost_workers":     ghostW,
		"ghost_tasks":       ghostT,
		"withdrawn_workers": wdW,
		"withdrawn_tasks":   wdT,
		"claims_lost":       claimsLost,
		"border_matches":    borderMatches,
		"shed":              shedTotal,
		"wal":               walStatus,
		"wire":              wireStatus,
		"events":            eventsStatus,
		"topology":          topoStatus,
		"now":               now,
		"shards":            shards,
	})
}

// tickLoop advances the shard clocks periodically so timer-driven
// algorithms make progress — and deadlines expire — during arrival
// lulls; stop ends it so shutdown doesn't race a final advance against
// the WAL close. It is also the rebalance supervisor's single driving
// goroutine: each tick samples the arrival-rate EWMAs and applies at
// most one topology change.
func (s *server) tickLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.advance()
			if s.rebal != nil {
				switch info, err := s.rebal.Tick(s.now()); {
				case err != nil:
					log.Printf("ftoa-serve: rebalance: %v", err)
				case info != nil:
					log.Printf("ftoa-serve: rebalance v%d: %s -> %s (%d regions, migrated %d workers + %d tasks, WAL gen %d)",
						info.Version, info.From, info.To, info.Regions,
						info.MigratedWorkers, info.MigratedTasks, info.WALGeneration)
				}
			}
		case <-stop:
			return
		}
	}
}

// haloBootReport renders the boot-time halo geometry summary: one line
// per shard with its region size and effective halo fraction — the
// ghost admissions mirrored in from the halo band around the region,
// relative to the region's own traffic share — preceded by a warning
// for every shard whose region the halo reach window rivals. At
// 2*halo >= the region's smaller dimension the halo bands cover the
// entire region: every admission there is mirrored somewhere, and
// sharding degenerates toward replicated broadcast.
func haloBootReport(p *ftoa.ShardPlacement) []string {
	n := p.NumRegions()
	halo := p.Halo()
	if halo <= 0 || n <= 1 {
		return nil
	}
	var lines []string
	var total float64
	for i := 0; i < n; i++ {
		r := p.Region(i)
		total += r.Width() * r.Height()
	}
	for i := 0; i < n; i++ {
		r := p.Region(i)
		if 2*halo >= min(r.Width(), r.Height()) {
			lines = append(lines, fmt.Sprintf(
				"ftoa-serve: WARNING: halo reach %g rivals shard %d region %gx%g (2*halo >= min dimension): the halo bands cover the whole region, so nearly every admission is mirrored; use fewer shards or a smaller -halo",
				halo, i, r.Width(), r.Height()))
		}
	}
	for i := 0; i < n; i++ {
		r := p.Region(i)
		area := r.Width() * r.Height()
		ghost := 0.0
		if area > 0 {
			ghost = p.HintShare(i)*total/area - 1
		}
		lines = append(lines, fmt.Sprintf(
			"ftoa-serve: shard %d region %gx%g halo reach %g: effective halo fraction %.1f%% (ghost admissions over own share)",
			i, r.Width(), r.Height(), halo, 100*ghost))
	}
	return lines
}

// bootGate is what the listener serves while the process is still
// replaying its WAL: the port is bound (and /healthz answering) the
// moment the process starts, but every request gets 503 until ready
// swaps in the real handler. Readiness is therefore observable — a
// deployment can distinguish "recovering" from "dead" — without
// delaying the bind past a long replay.
type bootGate struct {
	h atomic.Value // holds handlerBox (atomic.Value wants one concrete type)
}

type handlerBox struct{ h http.Handler }

func newBootGate() *bootGate {
	g := &bootGate{}
	g.h.Store(handlerBox{http.HandlerFunc(recovering)})
	return g
}

func (g *bootGate) ready(h http.Handler) { g.h.Store(handlerBox{h}) }

func (g *bootGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.h.Load().(handlerBox).h.ServeHTTP(w, r)
}

func recovering(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	if r.URL.Path == "/healthz" {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "recovering: WAL replay in progress")
}

// parsePair parses "NxM" into two positive integers.
func parsePair(s, flagName string) ([2]int, error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return [2]int{}, fmt.Errorf("bad %s %q: want NxM", flagName, s)
	}
	var out [2]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return [2]int{}, fmt.Errorf("bad %s component %q: want a positive integer", flagName, p)
		}
		out[i] = n
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	alg := flag.String("alg", "greedy", "matching algorithm: greedy, gr, polar, polarop or hybrid")
	window := flag.Float64("window", 1.0, "gr batch window in seconds")
	mode := flag.String("mode", "strict", "validation mode: strict or assume-guide")
	velocity := flag.Float64("velocity", 1.0, "worker velocity (units per second)")
	boundsStr := flag.String("bounds", "0,0,100,100", "service area as x0,y0,x1,y1")
	tick := flag.Duration("tick", 250*time.Millisecond, "timer advance interval")
	shards := flag.String("shards", "1x1", "shard grid as NxM (regions served independently)")
	halo := flag.Float64("halo", 0, "cross-shard matching reach window in seconds: border arrivals within velocity*halo of a neighbor region are mirrored there so cross-border pairs match (typically the task expiry window; 0 keeps regions disjoint)")
	retention := flag.Int("retention", 1<<16, "events/matches retained per shard history before eviction")
	retire := flag.Duration("retire", time.Minute, "per-shard arena retirement interval; matched and expired objects are compacted away, bounding memory by the live population (0 disables)")
	guide := flag.String("guide", "", "per-cell count history CSV (ftoa-gen -counts format) for guided algorithms")
	guideGrid := flag.String("guide-grid", "", "guide grid as CxR (default: infer a square from the history)")
	guideDow0 := flag.Int("guide-dow0", 0, "weekday (0-6) of the count history's first day, anchoring HP-MSI's weekday feature")
	horizon := flag.Float64("horizon", 86400, "guide horizon in seconds (the served day length)")
	guidePatience := flag.Float64("guide-patience", 300, "worker patience Dw assumed by the guide (seconds)")
	guideExpiry := flag.Float64("guide-expiry", 60, "task expiry Dr assumed by the guide (seconds)")
	guideAnchor := flag.String("guide-anchor", "wallclock", "guide slot anchoring: wallclock (7-day week guide keyed to wall-clock day-of-week and time-of-day) or uptime (legacy: the first -horizon seconds of uptime are the served day)")
	walDir := flag.String("wal", "", "write-ahead log directory; arrivals and match outcomes are made durable per shard and replayed at boot, so a killed server restarts with its state intact (empty disables durability)")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: always (fsync per operation), interval (group commit on -wal-sync-interval) or none (OS page cache only)")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "group-commit window for -wal-sync interval (0 = 50ms default)")
	admitQueue := flag.Int("admit-queue", 0, "per-shard admission backlog bound; arrivals beyond it are shed with 503 + Retry-After (0 disables shedding)")
	listenWire := flag.String("listen-wire", "", "binary wire-protocol listen address for batched admission over TCP (empty disables); see docs/wire.md")
	wireMaxConns := flag.Int("wire-max-conns", 256, "max concurrent wire connections; excess dials are closed at the door (the resilient client retries with backoff)")
	wireIdle := flag.Duration("wire-idle", 5*time.Minute, "wire per-connection idle (read) deadline; a silent peer is dropped after this long")
	wireWriteTimeout := flag.Duration("wire-write-timeout", 10*time.Second, "wire per-frame write deadline; a subscriber that cannot drain its event stream this fast is evicted")
	wireDedupWindow := flag.Int("wire-dedup-window", wire.DefaultDedupWindow, "idempotency seqs remembered per wire client; a batch re-sent within the window replays its original receipts")
	wireDedupClients := flag.Int("wire-dedup-clients", wire.DefaultDedupCap, "wire client idempotency windows retained (LRU-evicted beyond this)")
	admitRing := flag.Int("admit-ring", 1024, "per-shard admission ring capacity shared by HTTP and wire arrivals; a full ring answers 503/BUSY (backpressure bound)")
	admitBatch := flag.Int("admit-batch", 256, "max ring admissions drained per shard lock acquisition")
	rebalance := flag.Bool("rebalance", false, "adapt the shard topology online: split regions whose arrival rate exceeds -rebalance-split into a finer sub-grid and merge cold sibling quads back, migrating live state (see docs/rebalance.md)")
	rebalSplit := flag.Float64("rebalance-split", 200, "per-region arrival rate (admissions/sec) above which the region is split")
	rebalMerge := flag.Float64("rebalance-merge", 0, "combined arrival rate below which four sibling sub-regions merge back (0 disables merging; must be <= split/4)")
	rebalDepth := flag.Int("rebalance-depth", 2, "max quarterings per base grid cell (clamped to 6)")
	rebalCooldown := flag.Duration("rebalance-cooldown", 10*time.Second, "minimum interval between topology changes")
	rebalTau := flag.Duration("rebalance-tau", 5*time.Second, "arrival-rate EWMA time constant (larger = smoother, slower to react)")
	rebalForecast := flag.Bool("rebalance-forecast", false, "also forecast per-region demand with HP-MSI trained on the -guide count history, splitting ahead of predicted rushes")
	flag.Parse()

	cfg := config{
		algorithm:       *alg,
		window:          *window,
		mode:            *mode,
		velocity:        *velocity,
		tick:            *tick,
		retention:       *retention,
		retire:          *retire,
		halo:            *halo,
		walDir:          *walDir,
		walSync:         *walSync,
		walSyncInterval: *walSyncInterval,
		admitQueue:      *admitQueue,
		ring:            *admitRing,
		batch:           *admitBatch,
		rebalance:       *rebalance,
		rebalSplit:      *rebalSplit,
		rebalMerge:      *rebalMerge,
		rebalDepth:      *rebalDepth,
		rebalCooldown:   *rebalCooldown,
		rebalTau:        *rebalTau,
		rebalForecast:   *rebalForecast,
		guidePath:       *guide,
		guideDow0:       ((*guideDow0)%7 + 7) % 7,
		horizon:         *horizon,
		guidePatience:   *guidePatience,
		guideExpiry:     *guideExpiry,
		guideAnchor:     *guideAnchor,
	}
	parts := strings.Split(*boundsStr, ",")
	if len(parts) != 4 {
		log.Fatalf("bad -bounds %q: want x0,y0,x1,y1", *boundsStr)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &cfg.bounds[i]); err != nil {
			log.Fatalf("bad -bounds component %q: %v", p, err)
		}
	}
	var err error
	if cfg.shards, err = parsePair(*shards, "-shards"); err != nil {
		log.Fatal(err)
	}
	if *guideGrid != "" {
		if cfg.guideGrid, err = parsePair(*guideGrid, "-guide-grid"); err != nil {
			log.Fatal(err)
		}
	}

	// Bind before building the server: WAL replay can take a while on a
	// long history, and the gate makes that visible as 503 "recovering"
	// instead of a connection refused.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	gate := newBootGate()
	// Header and idle deadlines shed peers that dial and stall (the wire
	// listener applies the analogous bounds itself); request handlers stay
	// un-deadlined — admission latency is bounded by the ring, not a timer.
	hs := &http.Server{
		Handler:           gate,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if ri := srv.recovery; ri != nil && ri.Recovered {
		log.Printf("ftoa-serve: recovered %d events (%d matches) from %d WAL segment(s), %d torn byte(s) truncated; resuming at t=%.3f generation %d",
			ri.Events, ri.Matches, ri.Segments, ri.TornBytes, ri.MaxClock, ri.Generation)
	}
	for _, line := range haloBootReport(srv.router.Placement()) {
		log.Print(line)
	}
	// Start the wire listener before the gate opens so /stats never races
	// the field write; recovery already completed in newServer, so ring
	// admissions observe the replayed state.
	if *listenWire != "" {
		wln, err := net.Listen("tcp", *listenWire)
		if err != nil {
			log.Fatal(err)
		}
		srv.wire = newWireServer(srv, wln, cfg.tick, wireOptions{
			maxConns:     *wireMaxConns,
			idleTimeout:  *wireIdle,
			writeTimeout: *wireWriteTimeout,
			dedupWindow:  *wireDedupWindow,
			dedupClients: *wireDedupClients,
		})
		log.Printf("ftoa-serve: wire protocol v%d on %s (ring=%d batch=%d max-conns=%d dedup=%d/%d)",
			wire.Version, wln.Addr(), *admitRing, *admitBatch, *wireMaxConns, *wireDedupWindow, *wireDedupClients)
	}
	stopTick := make(chan struct{})
	go srv.tickLoop(cfg.tick, stopTick)
	gate.ready(srv.handler())
	log.Printf("ftoa-serve: %s matching on %s (mode=%s velocity=%g bounds=%s shards=%s halo=%gs retire=%s wal=%q rebalance=%v)",
		cfg.algorithm, ln.Addr(), cfg.mode, cfg.velocity, *boundsStr, *shards, cfg.halo, cfg.retire, cfg.walDir, cfg.rebalance)
	if cfg.rebalance {
		log.Printf("ftoa-serve: adaptive topology: split > %g/s, merge < %g/s, depth <= %d, cooldown %s, tau %s, forecast=%v",
			cfg.rebalSplit, cfg.rebalMerge, cfg.rebalDepth, cfg.rebalCooldown, cfg.rebalTau, cfg.rebalForecast)
	}

	// Graceful shutdown: stop admitting, drain in-flight requests, then
	// flush and close the WAL so the final acknowledged operations are
	// durable before the process exits.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("ftoa-serve: %v: draining", got)
	}
	close(stopTick)
	// Producers first: dropping the wire connections and draining the
	// HTTP server stops everyone enqueueing to the admission rings.
	if srv.wire != nil {
		srv.wire.close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("ftoa-serve: shutdown: %v", err)
	}
	// Then the rings: close drains every enqueued admission into its
	// shard so acknowledged arrivals reach the WAL before it closes.
	srv.close()
	if err := srv.router.WALClose(); err != nil {
		log.Fatalf("ftoa-serve: WAL close: %v", err)
	}
	log.Print("ftoa-serve: drained, WAL closed")
}
