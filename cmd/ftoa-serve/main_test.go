package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func defaultTestConfig() config {
	return config{
		algorithm: "greedy",
		window:    1,
		mode:      "strict",
		velocity:  1,
		bounds:    [4]float64{0, 0, 100, 100},
		tick:      time.Second, // tests drive the clock themselves
		shards:    [2]int{1, 1},
		retention: 1 << 16,
		horizon:   86400,
	}
}

func postJSON(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %v", url, resp.StatusCode, out)
	}
	return out
}

func getJSONStatus(t *testing.T, url string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	out, status := getJSONStatus(t, url)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %v", url, status, out)
	}
	return out
}

// manualClock swaps the server's wall clock for an atomic the test sets.
func manualClock(srv *server) func(float64) {
	var now atomic.Uint64
	srv.clock = func() float64 { return math.Float64frombits(now.Load()) }
	return func(v float64) { now.Store(math.Float64bits(v)) }
}

// TestServeEndToEnd is the smoke test CI runs: post a worker and a nearby
// task, and the committed match must come back on /matches.
func TestServeEndToEnd(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	w := postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`)
	if w["worker"].(float64) != 0 || w["shard"].(float64) != 0 {
		t.Fatalf("first worker = %v, want handle 0 on shard 0", w)
	}
	r := postJSON(t, ts.URL+"/tasks", `{"x":11,"y":10,"expiry":60}`)
	if r["task"].(float64) != 0 {
		t.Fatalf("first task handle = %v, want 0", r["task"])
	}

	m := getJSON(t, ts.URL+"/matches")
	if m["count"].(float64) != 1 {
		t.Fatalf("matches = %v, want exactly one", m)
	}
	pair := m["matches"].([]any)[0].(map[string]any)
	if pair["worker"].(float64) != 0 || pair["task"].(float64) != 0 || pair["shard"].(float64) != 0 {
		t.Fatalf("unexpected pair %v", pair)
	}

	stats := getJSON(t, ts.URL+"/stats")
	if stats["workers"].(float64) != 1 || stats["tasks"].(float64) != 1 || stats["matches"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

// TestServeEventsLifecycle: the /events stream surfaces the match AND the
// expiry of an unserved worker, with a working since cursor.
func TestServeEventsLifecycle(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	setNow := manualClock(srv)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	setNow(1)
	postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`) // matched below
	postJSON(t, ts.URL+"/workers", `{"x":90,"y":90,"patience":2}`)   // expires at 3
	setNow(2)
	postJSON(t, ts.URL+"/tasks", `{"x":11,"y":10,"expiry":60}`)

	ev := getJSON(t, ts.URL+"/events")
	events := ev["events"].([]any)
	if len(events) != 1 {
		t.Fatalf("events = %v, want just the match", ev)
	}
	first := events[0].(map[string]any)
	if first["kind"].(string) != "match" || first["worker"].(float64) != 0 || first["task"].(float64) != 0 {
		t.Fatalf("first event = %v, want the (0,0) match", first)
	}
	next := int(ev["next"].(float64))

	// Advance past worker 1's deadline: the expiry must appear after the
	// cursor, tagged with -1 on the task side.
	setNow(10)
	ev = getJSON(t, fmt.Sprintf("%s/events?since=%d", ts.URL, next))
	events = ev["events"].([]any)
	if len(events) != 1 {
		t.Fatalf("events since %d = %v, want just the expiry", next, ev)
	}
	exp := events[0].(map[string]any)
	if exp["kind"].(string) != "worker-expired" || exp["worker"].(float64) != 1 || exp["task"].(float64) != -1 {
		t.Fatalf("expiry event = %v", exp)
	}
	if exp["time"].(float64) != 3 {
		t.Fatalf("expiry at t=%v, want 3 (arrival 1 + patience 2)", exp["time"])
	}

	stats := getJSON(t, ts.URL+"/stats")
	if stats["expired_workers"].(float64) != 1 {
		t.Fatalf("stats = %v, want 1 expired worker", stats)
	}
}

// TestServeSharded: a 2x1 grid routes admissions by location, matches
// stay region-local, and /stats breaks them out per shard.
func TestServeSharded(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.shards = [2]int{2, 1}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Left half -> shard 0, right half -> shard 1.
	w0 := postJSON(t, ts.URL+"/workers", `{"x":10,"y":50,"patience":300}`)
	if w0["shard"].(float64) != 0 {
		t.Fatalf("left worker on shard %v, want 0", w0["shard"])
	}
	w1 := postJSON(t, ts.URL+"/workers", `{"x":90,"y":50,"patience":300}`)
	if w1["shard"].(float64) != 1 {
		t.Fatalf("right worker on shard %v, want 1", w1["shard"])
	}
	if w1["worker"].(float64) != 0 {
		t.Fatalf("right worker handle %v, want shard-local 0", w1["worker"])
	}
	postJSON(t, ts.URL+"/tasks", `{"x":11,"y":50,"expiry":60}`)
	postJSON(t, ts.URL+"/tasks", `{"x":89,"y":50,"expiry":60}`)

	stats := getJSON(t, ts.URL+"/stats")
	if stats["matches"].(float64) != 2 {
		t.Fatalf("stats = %v, want 2 matches", stats)
	}
	shards := stats["shards"].([]any)
	if len(shards) != 2 {
		t.Fatalf("shards = %v, want 2", shards)
	}
	for i, raw := range shards {
		sh := raw.(map[string]any)
		if sh["workers"].(float64) != 1 || sh["tasks"].(float64) != 1 || sh["matches"].(float64) != 1 {
			t.Fatalf("shard %d stats = %v, want one of each", i, sh)
		}
	}

	m := getJSON(t, ts.URL+"/matches")
	if m["count"].(float64) != 2 {
		t.Fatalf("matches = %v, want 2 across shards", m)
	}
}

// TestServeGRBatches tasks until the window timer flushes them, using a
// manual clock so the window boundary is crossed deterministically.
func TestServeGRBatches(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.algorithm = "gr"
	cfg.window = 10
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setNow := manualClock(srv)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	setNow(1)
	postJSON(t, ts.URL+"/workers", `{"x":50,"y":50,"patience":300}`)
	setNow(2)
	postJSON(t, ts.URL+"/tasks", `{"x":50,"y":51,"expiry":120}`)
	// Still inside the first batch window: nothing committed yet.
	if m := getJSON(t, ts.URL+"/matches"); m["count"].(float64) != 0 {
		t.Fatalf("GR matched inside the window: %v", m)
	}
	// Cross the window boundary: GET /matches advances the clock, firing
	// the batch flush before draining.
	setNow(11)
	if m := getJSON(t, ts.URL+"/matches"); m["count"].(float64) != 1 {
		t.Fatalf("GR matches = %v, want 1 after window flush", m)
	}
}

func TestServeValidation(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for _, tc := range []struct{ url, body string }{
		{"/workers", `{"x":1,"y":1,"patience":-5}`},
		{"/workers", `{"x":1,"y":1}`},
		{"/tasks", `{"x":1,"y":1,"expiry":0}`},
		{"/workers", `{"x":1,"unknown":2,"patience":3}`},
		{"/tasks", `not json`},
	} {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", tc.url, tc.body, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/workers"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /workers: status %d, want 405", resp.StatusCode)
		}
	}
	for _, url := range []string{"/events?since=-1", "/matches?since=-1", "/events?since=x"} {
		if _, status := getJSONStatus(t, ts.URL+url); status != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", url, status)
		}
	}
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	bad := defaultTestConfig()
	bad.algorithm = "polar" // guided: not servable without -guide
	if _, err := newServer(bad); err == nil {
		t.Error("guided algorithm without -guide accepted")
	}
	bad = defaultTestConfig()
	bad.algorithm = "tgoa"
	if _, err := newServer(bad); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad = defaultTestConfig()
	bad.mode = "lenient"
	if _, err := newServer(bad); err == nil {
		t.Error("unknown mode accepted")
	}
	bad = defaultTestConfig()
	bad.velocity = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero velocity accepted")
	}
	bad = defaultTestConfig()
	bad.shards = [2]int{0, 3}
	if _, err := newServer(bad); err == nil {
		t.Error("zero shard dimension accepted")
	}
	bad = defaultTestConfig()
	bad.retention = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero retention accepted")
	}
}

func TestNewServerRejectsBadTiming(t *testing.T) {
	bad := defaultTestConfig()
	bad.tick = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero tick accepted (would dead-block the tick loop)")
	}
	bad = defaultTestConfig()
	bad.algorithm = "gr"
	bad.window = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero gr window accepted (NewGR would panic)")
	}
}

// TestServeMatchesSinceCursor: ?since=N returns only matches committed
// after the first N, while count always reports the full history size.
func TestServeMatchesSinceCursor(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`)
	postJSON(t, ts.URL+"/tasks", `{"x":10,"y":11,"expiry":60}`)
	postJSON(t, ts.URL+"/workers", `{"x":40,"y":40,"patience":300}`)
	postJSON(t, ts.URL+"/tasks", `{"x":40,"y":41,"expiry":60}`)

	full := getJSON(t, ts.URL+"/matches")
	if full["count"].(float64) != 2 || len(full["matches"].([]any)) != 2 {
		t.Fatalf("full history = %v", full)
	}
	tail := getJSON(t, ts.URL+"/matches?since=1")
	if tail["count"].(float64) != 2 || len(tail["matches"].([]any)) != 1 {
		t.Fatalf("since=1 = %v, want count 2 with 1 returned match", tail)
	}
	if m := tail["matches"].([]any)[0].(map[string]any); m["worker"].(float64) != 1 {
		t.Fatalf("since=1 returned %v, want the second match", m)
	}
	// A cursor past the end returns an empty list, not an error.
	if past := getJSON(t, ts.URL+"/matches?since=99"); len(past["matches"].([]any)) != 0 {
		t.Fatalf("since=99 = %v, want empty", past)
	}
}

// TestServeMatchRetention: the match history is a bounded window — old
// cursors get 410 Gone while count still reports the lifetime total.
func TestServeMatchRetention(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.retention = 2
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/workers", fmt.Sprintf(`{"x":%d,"y":10,"patience":300}`, 10+20*i))
		postJSON(t, ts.URL+"/tasks", fmt.Sprintf(`{"x":%d,"y":11,"expiry":60}`, 10+20*i))
	}

	// 4 matches committed, window keeps the last 2 (base = 2).
	recent := getJSON(t, ts.URL+"/matches?since=2")
	if recent["count"].(float64) != 4 || len(recent["matches"].([]any)) != 2 {
		t.Fatalf("since=2 = %v, want count 4 with the last 2", recent)
	}
	if m := recent["matches"].([]any)[0].(map[string]any); m["worker"].(float64) != 2 {
		t.Fatalf("window start = %v, want worker 2", m)
	}
	// The bare snapshot form keeps working after eviction: it returns the
	// retained window, never 410.
	bare := getJSON(t, ts.URL+"/matches")
	if bare["count"].(float64) != 4 || len(bare["matches"].([]any)) != 2 {
		t.Fatalf("bare /matches after eviction = %v, want the retained window", bare)
	}
	out, status := getJSONStatus(t, ts.URL+"/matches?since=1")
	if status != http.StatusGone {
		t.Fatalf("since=1 after eviction: status %d (%v), want 410", status, out)
	}
	if out["count"].(float64) != 4 {
		t.Fatalf("410 body = %v, want lifetime count 4", out)
	}
	if out["next"].(float64) != 2 {
		t.Fatalf("410 recovery cursor = %v, want the window base 2", out["next"])
	}
}

// TestServeEventsRetention: the router event log is bounded too; a stale
// /events cursor gets 410 Gone plus a fresh cursor to restart from.
func TestServeEventsRetention(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.retention = 2
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/workers", fmt.Sprintf(`{"x":%d,"y":10,"patience":300}`, 10+20*i))
		postJSON(t, ts.URL+"/tasks", fmt.Sprintf(`{"x":%d,"y":11,"expiry":60}`, 10+20*i))
	}
	out, status := getJSONStatus(t, ts.URL+"/events?since=0")
	if status != http.StatusGone {
		t.Fatalf("stale events cursor: status %d (%v), want 410", status, out)
	}
	// The recovery cursor is the eviction boundary, not the stream head:
	// restarting there loses only the genuinely evicted events and
	// returns everything still retained.
	next := uint64(out["next"].(float64))
	if next != 2 {
		t.Fatalf("recovery cursor = %d, want the eviction boundary 2", next)
	}
	ev := getJSON(t, fmt.Sprintf("%s/events?since=%d", ts.URL, next))
	events := ev["events"].([]any)
	if len(events) != 2 {
		t.Fatalf("restarted cursor %d = %v, want the 2 retained events", next, ev)
	}
	if seq := events[0].(map[string]any)["seq"].(float64); seq != 2 {
		t.Fatalf("first retained event seq = %v, want 2", seq)
	}
	// The bare form starts at the oldest retained cursor — never 410.
	bare := getJSON(t, ts.URL+"/events")
	if len(bare["events"].([]any)) != 2 {
		t.Fatalf("bare /events after eviction = %v, want the 2 retained", bare)
	}
}

// countsCSV builds a small per-cell count history (3 days, 2 slots, 2x2
// areas) in the ftoa-gen -counts format.
func countsCSV() string {
	var sb strings.Builder
	sb.WriteString("day,slot,area,workers,tasks,weather\n")
	for day := 0; day < 3; day++ {
		for slot := 0; slot < 2; slot++ {
			for area := 0; area < 4; area++ {
				fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,0.5\n", day, slot, area, 3+area, 3+area)
			}
		}
	}
	return sb.String()
}

// TestGuideFromCounts: the offline pipeline (counts -> HP-MSI forecast ->
// guide) runs end to end from the CSV format ftoa-gen emits.
func TestGuideFromCounts(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.horizon = 100
	g, err := guideFromCounts(strings.NewReader(countsCSV()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalWorkers() == 0 || g.TotalTasks() == 0 {
		t.Fatalf("degenerate guide: %d workers, %d tasks predicted", g.TotalWorkers(), g.TotalTasks())
	}

	// One day of history is not trainable.
	oneDay := "day,slot,area,workers,tasks,weather\n"
	for slot := 0; slot < 2; slot++ {
		for area := 0; area < 4; area++ {
			oneDay += fmt.Sprintf("0,%d,%d,1,1,0\n", slot, area)
		}
	}
	if _, err := guideFromCounts(strings.NewReader(oneDay), cfg); err == nil {
		t.Error("single-day history accepted")
	}
	// A non-square area count needs -guide-grid.
	bad := cfg
	bad.guideGrid = [2]int{3, 1}
	if _, err := guideFromCounts(strings.NewReader(countsCSV()), bad); err == nil {
		t.Error("mismatched -guide-grid accepted")
	}
}

// TestServeGuidedAlgorithm boots a sharded guided server from a counts
// history and requires a live match end to end. Hybrid is the asserted
// algorithm (its greedy fallback guarantees co-located feasible pairs
// commit regardless of where the guide's pair layout routed the cells);
// polar and polarop must at least construct from the same pipeline.
func TestServeGuidedAlgorithm(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/counts.csv"
	if err := os.WriteFile(path, []byte(countsCSV()), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := defaultTestConfig()
	cfg.guidePath = path
	cfg.horizon = 1000
	cfg.mode = "assume-guide" // guided counting semantics
	cfg.shards = [2]int{2, 2}

	for _, alg := range []string{"polar", "polarop"} {
		c := cfg
		c.algorithm = alg
		if _, err := newServer(c); err != nil {
			t.Fatalf("%s server from counts history: %v", alg, err)
		}
	}

	cfg.algorithm = "hybrid"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for i := 0; i < 8; i++ {
		postJSON(t, ts.URL+"/workers", `{"x":20,"y":20,"patience":500}`)
		postJSON(t, ts.URL+"/tasks", `{"x":21,"y":20,"expiry":500}`)
	}
	stats := getJSON(t, ts.URL+"/stats")
	if stats["matches"].(float64) == 0 {
		t.Fatalf("guided server committed nothing: %v", stats)
	}
}

// TestServeRetirement: with -retire on, a long-lived server's shard
// arenas stay bounded by the live population while the lifetime stats
// and the match history keep counting.
func TestServeRetirement(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.retire = 10 * time.Second
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setNow := manualClock(srv)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	clock := 0.0
	for wave := 0; wave < 8; wave++ {
		setNow(clock)
		// A matching pair plus a worker that will expire unserved.
		postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":2}`)
		postJSON(t, ts.URL+"/tasks", `{"x":10,"y":10,"expiry":2}`)
		postJSON(t, ts.URL+"/workers", `{"x":90,"y":90,"patience":2}`)
		clock += 15 // one retire interval per wave
		setNow(clock)
		srv.router.Advance(clock)
	}

	stats := getJSON(t, ts.URL+"/stats")
	if stats["workers"].(float64) != 16 || stats["tasks"].(float64) != 8 {
		t.Fatalf("lifetime stats = %v, want 16 workers / 8 tasks", stats)
	}
	if live := stats["live_workers"].(float64) + stats["live_tasks"].(float64); live != 0 {
		t.Fatalf("live arenas = %v, want 0 after every wave died and retired", live)
	}
	if stats["matches"].(float64) != 8 || stats["expired_workers"].(float64) != 8 {
		t.Fatalf("stats = %v, want 8 matches and 8 expired workers", stats)
	}
	// The bounded match history still serves the full window.
	m := getJSON(t, ts.URL+"/matches")
	if m["count"].(float64) != 8 || len(m["matches"].([]any)) != 8 {
		t.Fatalf("matches = %v, want all 8 retained", m)
	}
	// And the next cursor pages cleanly.
	tail := getJSON(t, ts.URL+"/matches?since=6")
	if len(tail["matches"].([]any)) != 2 || tail["next"].(float64) != 8 {
		t.Fatalf("matches?since=6 = %v, want the last 2 and next=8", tail)
	}
}

// TestServeHaloCrossShardMatch: with -halo set, a worker just left of a
// region border serves a task just right of it — the match disjoint
// sharding misses — and /stats reports the ghost traffic.
func TestServeHaloCrossShardMatch(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.shards = [2]int{2, 1}
	cfg.halo = 60 // seconds of reach at velocity 1 -> 60 units
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Owner shards differ; the pair is 2 units apart across the border.
	w := postJSON(t, ts.URL+"/workers", `{"x":49,"y":50,"patience":300}`)
	if w["shard"].(float64) != 0 {
		t.Fatalf("worker on shard %v, want 0", w["shard"])
	}
	tk := postJSON(t, ts.URL+"/tasks", `{"x":51,"y":50,"expiry":60}`)
	if tk["shard"].(float64) != 1 {
		t.Fatalf("task on shard %v, want 1", tk["shard"])
	}

	stats := getJSON(t, ts.URL+"/stats")
	if stats["matches"].(float64) != 1 {
		t.Fatalf("stats = %v, want the cross-border match", stats)
	}
	if stats["ghost_workers"].(float64)+stats["ghost_tasks"].(float64) == 0 {
		t.Fatalf("stats = %v, want ghost admissions", stats)
	}
	if stats["border_matches"].(float64) != 1 {
		t.Fatalf("stats = %v, want 1 border match", stats)
	}

	// The merged stream reports the pair once, under owner identities.
	evs := getJSON(t, ts.URL+"/events")
	events := evs["events"].([]any)
	if len(events) != 1 {
		t.Fatalf("events = %v, want exactly one", events)
	}
	ev := events[0].(map[string]any)
	if ev["kind"].(string) != "match" {
		t.Fatalf("event = %v, want a match", ev)
	}
	if ev["worker_shard"].(float64) != 0 || ev["task_shard"].(float64) != 1 {
		t.Fatalf("event = %v, want worker_shard 0 / task_shard 1", ev)
	}
	m := getJSON(t, ts.URL+"/matches")
	entries := m["matches"].([]any)
	if len(entries) != 1 {
		t.Fatalf("matches = %v, want one", m)
	}
	me := entries[0].(map[string]any)
	if me["worker_shard"].(float64) != 0 || me["task_shard"].(float64) != 1 {
		t.Fatalf("match = %v, want worker_shard 0 / task_shard 1", me)
	}

	// A disjoint server misses the same pair.
	cfg.halo = 0
	srv2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	postJSON(t, ts2.URL+"/workers", `{"x":49,"y":50,"patience":300}`)
	postJSON(t, ts2.URL+"/tasks", `{"x":51,"y":50,"expiry":60}`)
	if st := getJSON(t, ts2.URL+"/stats"); st["matches"].(float64) != 0 {
		t.Fatalf("disjoint stats = %v, want 0 matches", st)
	}
}

// TestGuideFromCountsWallclock: the wall-clock anchor builds a week-long
// guide (7x the slots) whose slotting wraps by day-of-week and
// time-of-day from the anchor offset instead of clamping at the horizon.
func TestGuideFromCountsWallclock(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.horizon = 100 // served day length; 2 slots of 50 per day
	cfg.guideAnchor = "wallclock"
	// Boot mid-Wednesday: weekday 3, 60% through the day.
	cfg.anchorOffset = (3 + 0.6) * cfg.horizon
	g, err := guideFromCounts(strings.NewReader(countsCSV()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	slots := g.Cfg.Slots
	if slots.Count != 7*2 || slots.Horizon != 7*cfg.horizon {
		t.Fatalf("week slotting = %d slots over %v, want 14 over 700", slots.Count, slots.Horizon)
	}
	// Uptime 0 is Wednesday 60% -> day 3, second half -> slot 3*2+1.
	if got := slots.SlotOf(0); got != 7 {
		t.Fatalf("SlotOf(0) = %d, want 7 (Wednesday afternoon)", got)
	}
	// 40 units later the day rolls into Thursday morning.
	if got := slots.SlotOf(40); got != 8 {
		t.Fatalf("SlotOf(40) = %d, want 8 (Thursday morning)", got)
	}
	// A full week of uptime wraps back to the boot slot instead of
	// clamping at the last.
	if got := slots.SlotOf(7 * cfg.horizon); got != 7 {
		t.Fatalf("SlotOf(one week) = %d, want 7 again", got)
	}
	if g.TotalWorkers() == 0 || g.TotalTasks() == 0 {
		t.Fatalf("degenerate week guide: %d/%d predicted", g.TotalWorkers(), g.TotalTasks())
	}

	// An unknown anchor is rejected by guide construction and by the
	// server's own validation.
	bad := cfg
	bad.guideAnchor = "lunar"
	if _, err := guideFromCounts(strings.NewReader(countsCSV()), bad); err == nil {
		t.Error("unknown guide anchor accepted by guideFromCounts")
	}
	srvCfg := defaultTestConfig()
	srvCfg.guideAnchor = "lunar"
	if _, err := newServer(srvCfg); err == nil {
		t.Error("unknown guide anchor accepted by newServer")
	}
}

// TestWeekdaySources: every weekday resolves to its latest history day,
// with the overall last day covering weekdays a short history missed.
func TestWeekdaySources(t *testing.T) {
	// 3-day history starting on a Saturday (6): days are 6, 0, 1.
	src := weekdaySources([]int{6, 0, 1})
	want := [7]int{1, 2, 2, 2, 2, 2, 0}
	if src != want {
		t.Fatalf("weekdaySources = %v, want %v", src, want)
	}
	// 9-day history starting Monday wraps: the second Monday (day 7)
	// shadows the first (day 0).
	src = weekdaySources([]int{1, 2, 3, 4, 5, 6, 0, 1, 2})
	want = [7]int{6, 7, 8, 2, 3, 4, 5}
	if src != want {
		t.Fatalf("weekdaySources = %v, want %v", src, want)
	}
}

// TestServeWALRestart: a WAL-backed server killed without ceremony (the
// handles simply abandoned) restarts with its matched set, match
// history and clock intact, and keeps serving.
func TestServeWALRestart(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.shards = [2]int{2, 1}
	cfg.walDir = t.TempDir() + "/wal"
	cfg.walSync = "always"

	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`)
	postJSON(t, ts.URL+"/tasks", `{"x":11,"y":10,"expiry":60}`)
	postJSON(t, ts.URL+"/workers", `{"x":90,"y":10,"patience":300}`) // unmatched, survives
	before := getJSON(t, ts.URL+"/stats")
	if before["matches"].(float64) != 1 {
		t.Fatalf("pre-crash stats = %v, want 1 match", before)
	}
	if wal := before["wal"].(map[string]any); wal["enabled"] != true || wal["recovered"] != false {
		t.Fatalf("pre-crash wal status = %v", wal)
	}
	ts.Close()
	// Kill: no WALClose, no flush. -wal-sync always made every
	// acknowledged admission durable already.

	srv2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.router.WALClose()
	if !srv2.recovery.Recovered || srv2.recovery.Matches != 1 {
		t.Fatalf("recovery = %+v, want a recovered match", srv2.recovery)
	}
	if now := srv2.now(); now < srv2.recovery.MaxClock {
		t.Fatalf("recovered clock %v rewound below the replayed %v", now, srv2.recovery.MaxClock)
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	after := getJSON(t, ts2.URL+"/stats")
	if after["matches"].(float64) != 1 || after["workers"].(float64) != 2 {
		t.Fatalf("post-recovery stats = %v, want the pre-crash population", after)
	}
	wal := after["wal"].(map[string]any)
	if wal["recovered"] != true || wal["generation"].(float64) != 2 || wal["recovered_matches"].(float64) != 1 {
		t.Fatalf("post-recovery wal status = %v", wal)
	}
	// The match history view was rebuilt from the replay, not lost.
	m := getJSON(t, ts2.URL+"/matches")
	if m["count"].(float64) != 1 {
		t.Fatalf("post-recovery matches = %v, want the recovered commit", m)
	}
	// And the recovered server still matches: the surviving worker at
	// (90,10) serves a new task.
	postJSON(t, ts2.URL+"/tasks", `{"x":89,"y":10,"expiry":60}`)
	if st := getJSON(t, ts2.URL+"/stats"); st["matches"].(float64) != 2 {
		t.Fatalf("recovered server won't match: %v", st)
	}
}

// TestServeWALConfigValidation: bad durability flags are rejected up
// front, and a fresh server refuses a foreign WAL fingerprint.
func TestServeWALConfigValidation(t *testing.T) {
	bad := defaultTestConfig()
	bad.walSync = "eventually"
	if _, err := newServer(bad); err == nil {
		t.Error("unknown -wal-sync accepted")
	}
	bad = defaultTestConfig()
	bad.admitQueue = -1
	if _, err := newServer(bad); err == nil {
		t.Error("negative -admit-queue accepted")
	}

	// A log written under one topology must not replay under another.
	cfg := defaultTestConfig()
	cfg.walDir = t.TempDir() + "/wal"
	cfg.walSync = "always"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.router.WALClose()
	cfg.shards = [2]int{2, 2}
	if _, err := newServer(cfg); err == nil {
		t.Error("recovery across a shard-topology change accepted")
	}
}

// TestServeShedding: with -admit-queue set, a shard over its inflight
// bound sheds arrivals with 503 + Retry-After, counts them in /stats,
// and recovers once the backlog drains.
func TestServeShedding(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.shards = [2]int{2, 1}
	cfg.admitQueue = 1
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Saturate shard 0's queue (as a stuck in-flight admission would).
	srv.inflight[0].Add(1)
	resp, err := http.Post(ts.URL+"/workers", "application/json",
		strings.NewReader(`{"x":10,"y":50,"patience":300}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated shard: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The other shard is unaffected.
	postJSON(t, ts.URL+"/workers", `{"x":90,"y":50,"patience":300}`)
	stats := getJSON(t, ts.URL+"/stats")
	if stats["shed"].(float64) != 1 {
		t.Fatalf("stats = %v, want 1 shed", stats)
	}
	if sh := stats["shards"].([]any)[0].(map[string]any); sh["shed"].(float64) != 1 {
		t.Fatalf("shard 0 stats = %v, want the shed there", sh)
	}
	// Drain the backlog: admissions flow again.
	srv.inflight[0].Add(-1)
	postJSON(t, ts.URL+"/workers", `{"x":10,"y":50,"patience":300}`)
	if st := getJSON(t, ts.URL+"/stats"); st["workers"].(float64) != 2 {
		t.Fatalf("post-drain stats = %v, want 2 admitted workers", st)
	}
}

// TestServeBootGate: the gate answers 503 "recovering" (on /healthz
// too) until the real handler is swapped in.
func TestServeBootGate(t *testing.T) {
	gate := newBootGate()
	ts := httptest.NewServer(gate)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("gated /healthz: status %d, want 503 with Retry-After", resp.StatusCode)
	}
	if out, status := getJSONStatus(t, ts.URL+"/stats"); status != http.StatusServiceUnavailable {
		t.Fatalf("gated /stats: status %d (%v), want 503", status, out)
	}

	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	gate.ready(srv.handler())
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /healthz: status %d, want 200", resp.StatusCode)
	}
}

// TestServeCrashRestartSoak (env-gated; CI's crash-recovery soak job
// sets FTOA_SOAK=1) kills and restarts a WAL-backed server repeatedly,
// checking every generation recovers the previous one's full state.
func TestServeCrashRestartSoak(t *testing.T) {
	if os.Getenv("FTOA_SOAK") == "" {
		t.Skip("set FTOA_SOAK=1 to run the crash/restart soak")
	}
	cfg := defaultTestConfig()
	cfg.shards = [2]int{2, 2}
	cfg.halo = 30
	cfg.walDir = t.TempDir() + "/wal"
	cfg.walSync = "always"

	prevMatches, prevWorkers := 0.0, 0.0
	for round := 0; round < 6; round++ {
		srv, err := newServer(cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round > 0 && !srv.recovery.Recovered {
			t.Fatalf("round %d recovered nothing", round)
		}
		ts := httptest.NewServer(srv.handler())
		st := getJSON(t, ts.URL+"/stats")
		if st["matches"].(float64) != prevMatches || st["workers"].(float64) != prevWorkers {
			t.Fatalf("round %d recovered %v matches / %v workers, want %v / %v",
				round, st["matches"], st["workers"], prevMatches, prevWorkers)
		}
		// A wave of arrivals, some crossing the halo border at x=50.
		for i := 0; i < 8; i++ {
			x := 44 + (i*7)%13
			postJSON(t, ts.URL+"/workers", fmt.Sprintf(`{"x":%d,"y":%d,"patience":600}`, x, 20+i*7))
			postJSON(t, ts.URL+"/tasks", fmt.Sprintf(`{"x":%d,"y":%d,"expiry":600}`, x+2, 20+i*7))
		}
		st = getJSON(t, ts.URL+"/stats")
		if wal := st["wal"].(map[string]any); wal["error"] != nil {
			t.Fatalf("round %d WAL error: %v", round, wal["error"])
		}
		prevMatches, prevWorkers = st["matches"].(float64), st["workers"].(float64)
		ts.Close() // kill: the router and its WAL handles are abandoned
	}
	if prevMatches == 0 {
		t.Fatal("soak committed nothing")
	}
}

// TestServeSheddingExactAccounting is the overload-shedding regression
// guard: under a concurrent burst against a saturated shard, every
// rejection carries a well-formed Retry-After (RFC 7231 delta-seconds)
// and the /stats shed counters equal the number of 503s the clients
// actually observed — no lost or double counts.
func TestServeSheddingExactAccounting(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.admitQueue = 1
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Hold the only admission slot so the burst below is shed in full.
	srv.inflight[0].Add(1)
	const burst = 24
	var wg sync.WaitGroup
	var rejected atomic.Uint64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/workers", "application/json",
				strings.NewReader(fmt.Sprintf(`{"x":%d,"y":50,"patience":300}`, i%90)))
			if err != nil {
				t.Errorf("post %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("post %d: status %d, want 503", i, resp.StatusCode)
				return
			}
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 0 {
				t.Errorf("post %d: malformed Retry-After %q", i, ra)
				return
			}
			rejected.Add(1)
		}(i)
	}
	wg.Wait()
	if rejected.Load() != burst {
		t.Fatalf("rejected %d of %d (errors above)", rejected.Load(), burst)
	}
	st := getJSON(t, ts.URL+"/stats")
	if got := st["shed"].(float64); got != burst {
		t.Fatalf("stats shed = %v, want exactly %d", got, burst)
	}
	if sh := st["shards"].([]any)[0].(map[string]any); sh["shed"].(float64) != burst {
		t.Fatalf("shard shed = %v, want exactly %d", sh["shed"], burst)
	}
	if st["workers"].(float64) != 0 {
		t.Fatalf("workers = %v, want 0 (everything shed)", st["workers"])
	}
	// Release the slot: accounting stays frozen while admissions resume.
	srv.inflight[0].Add(-1)
	postJSON(t, ts.URL+"/workers", `{"x":10,"y":50,"patience":300}`)
	st = getJSON(t, ts.URL+"/stats")
	if st["shed"].(float64) != burst || st["workers"].(float64) != 1 {
		t.Fatalf("post-drain stats = shed %v workers %v, want %d / 1",
			st["shed"], st["workers"], burst)
	}
}

// TestHaloBootReport: the boot summary warns exactly when the halo reach
// window rivals the shard region size, and always reports the effective
// halo fraction per shard.
func TestHaloBootReport(t *testing.T) {
	build := func(haloSecs float64) *server {
		cfg := defaultTestConfig()
		cfg.shards = [2]int{2, 2} // 50x50 regions over 100x100
		cfg.halo = haloSecs       // velocity 1: reach == seconds
		srv, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	if lines := haloBootReport(build(0).router.Placement()); lines != nil {
		t.Fatalf("halo 0 reported %v, want nothing", lines)
	}

	// Modest halo: 2*5 < 50, so fractions only, no warning.
	lines := haloBootReport(build(5).router.Placement())
	if len(lines) != 4 {
		t.Fatalf("halo 5: %d lines, want 4 per-shard fractions: %v", len(lines), lines)
	}
	for _, l := range lines {
		if strings.Contains(l, "WARNING") {
			t.Fatalf("halo 5 warned: %q", l)
		}
		if !strings.Contains(l, "effective halo fraction") {
			t.Fatalf("missing fraction in %q", l)
		}
	}

	// Oversized halo: 2*30 >= 50 — every shard warned, fractions still
	// reported.
	lines = haloBootReport(build(30).router.Placement())
	var warns, fracs int
	for _, l := range lines {
		if strings.Contains(l, "WARNING") {
			warns++
		}
		if strings.Contains(l, "effective halo fraction") {
			fracs++
		}
	}
	if warns != 4 || fracs != 4 {
		t.Fatalf("halo 30: %d warnings / %d fractions, want 4 / 4: %v", warns, fracs, lines)
	}
}

// TestServeEventsLongPoll: GET /events?wait=D parks on the broadcast
// subscription — an idle stream holds the request for the window and
// returns empty; a concurrent admission releases it immediately with the
// new event. The /stats "events" section reflects the delivery plumbing.
func TestServeEventsLongPoll(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	if _, status := getJSONStatus(t, ts.URL+"/events?since=0&wait=banana"); status != http.StatusBadRequest {
		t.Fatalf("bad wait accepted: status %d", status)
	}

	// Idle: the poll holds for the window, then answers empty.
	start := time.Now()
	out := getJSON(t, ts.URL+"/events?since=0&wait=150ms")
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("idle long-poll returned after %v, want ~150ms hold", d)
	}
	if evs := out["events"].([]any); len(evs) != 0 || out["next"].(float64) != 0 {
		t.Fatalf("idle long-poll = %v, want empty at cursor 0", out)
	}

	// Hot: an admission during the hold releases the poll with the event.
	type result struct {
		out     map[string]any
		elapsed time.Duration
	}
	done := make(chan result, 1)
	go func() {
		s := time.Now()
		out := getJSON(t, ts.URL+"/events?since=0&wait=10s")
		done <- result{out, time.Since(s)}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`)
	postJSON(t, ts.URL+"/tasks", `{"x":11,"y":10,"expiry":60}`)
	select {
	case res := <-done:
		if res.elapsed > 5*time.Second {
			t.Fatalf("long-poll did not release on the event (took %v)", res.elapsed)
		}
		evs := res.out["events"].([]any)
		if len(evs) != 1 || evs[0].(map[string]any)["kind"].(string) != "match" {
			t.Fatalf("long-poll result = %v, want the one match", res.out)
		}
		if res.out["next"].(float64) != 1 {
			t.Fatalf("long-poll next = %v, want 1", res.out["next"])
		}
	case <-time.After(8 * time.Second):
		t.Fatal("long-poll stuck despite an admission")
	}

	stats := getJSON(t, ts.URL+"/stats")
	events, ok := stats["events"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing events section: %v", stats)
	}
	for _, k := range []string{"subscribers", "ring_depth", "ring_capacity", "published", "fallbacks", "evicted_subs", "wakeups"} {
		if _, ok := events[k]; !ok {
			t.Fatalf("stats events section missing %q: %v", k, events)
		}
	}
	if events["ring_capacity"].(float64) <= 0 {
		t.Fatalf("ring_capacity = %v, want positive", events["ring_capacity"])
	}
	if events["published"].(float64) < 1 {
		t.Fatalf("published = %v, want the long-polled match counted", events["published"])
	}
}
