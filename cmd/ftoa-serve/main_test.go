package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func defaultTestConfig() config {
	return config{
		algorithm: "greedy",
		window:    1,
		mode:      "strict",
		velocity:  1,
		bounds:    [4]float64{0, 0, 100, 100},
		tick:      time.Second, // tests drive the clock themselves
	}
}

func postJSON(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %v", url, resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeEndToEnd is the smoke test CI runs: post a worker and a nearby
// task, and the committed match must come back on /matches.
func TestServeEndToEnd(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	w := postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`)
	if w["worker"].(float64) != 0 {
		t.Fatalf("first worker handle = %v, want 0", w["worker"])
	}
	r := postJSON(t, ts.URL+"/tasks", `{"x":11,"y":10,"expiry":60}`)
	if r["task"].(float64) != 0 {
		t.Fatalf("first task handle = %v, want 0", r["task"])
	}

	m := getJSON(t, ts.URL+"/matches")
	if m["count"].(float64) != 1 {
		t.Fatalf("matches = %v, want exactly one", m)
	}
	pair := m["matches"].([]any)[0].(map[string]any)
	if pair["worker"].(float64) != 0 || pair["task"].(float64) != 0 {
		t.Fatalf("unexpected pair %v", pair)
	}

	stats := getJSON(t, ts.URL+"/stats")
	if stats["workers"].(float64) != 1 || stats["tasks"].(float64) != 1 || stats["matches"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

// TestServeGRBatches tasks until the window timer flushes them, using a
// manual clock so the window boundary is crossed deterministically.
func TestServeGRBatches(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.algorithm = "gr"
	cfg.window = 10
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The handler goroutines read the clock concurrently with the test's
	// advances, so the manual clock must be atomic.
	var now atomic.Uint64
	setNow := func(v float64) { now.Store(math.Float64bits(v)) }
	srv.clock = func() float64 { return math.Float64frombits(now.Load()) }
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	setNow(1)
	postJSON(t, ts.URL+"/workers", `{"x":50,"y":50,"patience":300}`)
	setNow(2)
	postJSON(t, ts.URL+"/tasks", `{"x":50,"y":51,"expiry":120}`)
	// Still inside the first batch window: nothing committed yet.
	if m := getJSON(t, ts.URL+"/matches"); m["count"].(float64) != 0 {
		t.Fatalf("GR matched inside the window: %v", m)
	}
	// Cross the window boundary: GET /matches advances the clock, firing
	// the batch flush before draining.
	setNow(11)
	if m := getJSON(t, ts.URL+"/matches"); m["count"].(float64) != 1 {
		t.Fatalf("GR matches = %v, want 1 after window flush", m)
	}
}

func TestServeValidation(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for _, tc := range []struct{ url, body string }{
		{"/workers", `{"x":1,"y":1,"patience":-5}`},
		{"/workers", `{"x":1,"y":1}`},
		{"/tasks", `{"x":1,"y":1,"expiry":0}`},
		{"/workers", `{"x":1,"unknown":2,"patience":3}`},
		{"/tasks", `not json`},
	} {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", tc.url, tc.body, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/workers"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /workers: status %d, want 405", resp.StatusCode)
		}
	}
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	bad := defaultTestConfig()
	bad.algorithm = "polar" // needs a guide; not servable without one
	if _, err := newServer(bad); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad = defaultTestConfig()
	bad.mode = "lenient"
	if _, err := newServer(bad); err == nil {
		t.Error("unknown mode accepted")
	}
	bad = defaultTestConfig()
	bad.velocity = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero velocity accepted")
	}
}

func TestNewServerRejectsBadTiming(t *testing.T) {
	bad := defaultTestConfig()
	bad.tick = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero tick accepted (would dead-block the tick loop)")
	}
	bad = defaultTestConfig()
	bad.algorithm = "gr"
	bad.window = 0
	if _, err := newServer(bad); err == nil {
		t.Error("zero gr window accepted (NewGR would panic)")
	}
}

// TestServeMatchesSinceCursor: ?since=N returns only matches committed
// after the first N, while count always reports the full history size.
func TestServeMatchesSinceCursor(t *testing.T) {
	srv, err := newServer(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/workers", `{"x":10,"y":10,"patience":300}`)
	postJSON(t, ts.URL+"/tasks", `{"x":10,"y":11,"expiry":60}`)
	postJSON(t, ts.URL+"/workers", `{"x":40,"y":40,"patience":300}`)
	postJSON(t, ts.URL+"/tasks", `{"x":40,"y":41,"expiry":60}`)

	full := getJSON(t, ts.URL+"/matches")
	if full["count"].(float64) != 2 || len(full["matches"].([]any)) != 2 {
		t.Fatalf("full history = %v", full)
	}
	tail := getJSON(t, ts.URL+"/matches?since=1")
	if tail["count"].(float64) != 2 || len(tail["matches"].([]any)) != 1 {
		t.Fatalf("since=1 = %v, want count 2 with 1 returned match", tail)
	}
	if m := tail["matches"].([]any)[0].(map[string]any); m["worker"].(float64) != 1 {
		t.Fatalf("since=1 returned %v, want the second match", m)
	}
	// A cursor past the end returns an empty list, not an error.
	if past := getJSON(t, ts.URL+"/matches?since=99"); len(past["matches"].([]any)) != 0 {
		t.Fatalf("since=99 = %v, want empty", past)
	}
	if resp, err := http.Get(ts.URL + "/matches?since=-1"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("since=-1: status %d, want 400", resp.StatusCode)
		}
	}
}
