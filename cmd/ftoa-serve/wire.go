// Wire listener: the binary serving surface behind -listen-wire. Batches
// of arrivals come in as framed wire messages (internal/wire), are fed
// through the router's per-shard MPSC admission rings (shard.Admitter) —
// so decoding connections never touch a shard lock — and each batch is
// answered after all of its admissions drained, so an acknowledged
// arrival is in its shard (and, on a durable server, WAL-recorded).
// Subscribed connections get the merged event stream pushed as it grows.
//
// Backpressure is end-to-end: a full ring surfaces as a per-entry BUSY
// result with a jittered retry-after hint (counted in /stats under
// "wire"), never as blocking the decode loop.
//
// The listener assumes an adversarial network: connections carry read
// (idle), write and handshake deadlines, the connection count is
// bounded, a subscriber too slow to drain its event stream is evicted,
// a panic in one connection's handler kills only that connection, and
// effectful requests are deduplicated per client id (wire.DedupTable)
// so a batch re-sent after a lost ack replays the original receipts.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ftoa"
	"ftoa/internal/wire"
)

// wireEventPage bounds one Events push frame; a subscriber behind a large
// backlog pages through it in consecutive frames.
const wireEventPage = 1024

// wireOptions are the hardening knobs (zeros pick the defaults noted).
type wireOptions struct {
	maxConns     int           // connection bound (default 256)
	idleTimeout  time.Duration // per-read deadline after handshake (default 5m)
	writeTimeout time.Duration // per-frame write deadline (default 10s)
	dedupWindow  int           // seqs remembered per client (wire default)
	dedupClients int           // client windows retained (wire default)
}

func (o wireOptions) withDefaults() wireOptions {
	if o.maxConns <= 0 {
		o.maxConns = 256
	}
	if o.idleTimeout <= 0 {
		o.idleTimeout = 5 * time.Minute
	}
	if o.writeTimeout <= 0 {
		o.writeTimeout = 10 * time.Second
	}
	return o
}

// wireServer owns the wire listener and its connections; admissions go
// through the server's shared rings (server.admitter). One goroutine
// accepts; each connection gets a reader goroutine (batches on a
// connection are processed in order — pipelining is across connections)
// plus, once subscribed, an event pusher.
type wireServer struct {
	s     *server
	ln    net.Listener
	opts  wireOptions
	retry float64 // BUSY retry-after hint, seconds (one tick, pre-jitter)
	dedup *wire.DedupTable

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	batches  atomic.Uint64
	requests atomic.Uint64
	busy     atomic.Uint64 // BUSY results returned (ring backpressure)
	deduped  atomic.Uint64 // effectful requests answered from the dedup window
	protoErr atomic.Uint64 // framing/decode violations that dropped a conn
	refused  atomic.Uint64 // conns dropped at the door (max-conns, client table full)
	evicted  atomic.Uint64 // subscribers dropped for not draining their stream
	panics   atomic.Uint64 // handler panics contained to their connection
	subs     atomic.Int64  // live event subscriptions
}

func newWireServer(s *server, ln net.Listener, tick time.Duration, opts wireOptions) *wireServer {
	opts = opts.withDefaults()
	ws := &wireServer{
		s:     s,
		ln:    ln,
		opts:  opts,
		retry: tick.Seconds(),
		dedup: wire.NewDedupTable(opts.dedupWindow, opts.dedupClients),
		conns: make(map[net.Conn]struct{}),
	}
	ws.wg.Add(1)
	go ws.acceptLoop()
	return ws
}

// close stops accepting, drops every connection and waits the handlers
// out. The shared admission rings are the server's (server.close drains
// them); call this first so wire producers are gone by then.
func (ws *wireServer) close() {
	ws.mu.Lock()
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	ws.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	ws.wg.Wait()
}

func (ws *wireServer) acceptLoop() {
	defer ws.wg.Done()
	for {
		c, err := ws.ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			log.Printf("ftoa-serve: wire accept: %v", err)
			return
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			c.Close()
			return
		}
		if len(ws.conns) >= ws.opts.maxConns {
			ws.mu.Unlock()
			// Shed at the door without an Error frame: a silent close is a
			// transient refusal the resilient client retries with backoff,
			// while an Error frame would read as a permanent rejection.
			ws.refused.Add(1)
			c.Close()
			continue
		}
		ws.conns[c] = struct{}{}
		ws.wg.Add(1)
		ws.mu.Unlock()
		go ws.handleConn(c)
	}
}

func (ws *wireServer) dropConn(c net.Conn) {
	ws.mu.Lock()
	delete(ws.conns, c)
	ws.mu.Unlock()
	c.Close()
}

func (ws *wireServer) handleConn(c net.Conn) {
	defer ws.wg.Done()
	defer ws.dropConn(c)
	defer ws.recoverPanic(c)
	cn := wire.NewConn(c)
	cn.WriteTimeout = ws.opts.writeTimeout
	// A peer that dials and never completes the handshake is shed on a
	// short deadline; the idle budget applies only to handshaken clients.
	cn.ReadTimeout = 10 * time.Second
	if cn.ReadTimeout > ws.opts.idleTimeout {
		cn.ReadTimeout = ws.opts.idleTimeout
	}
	clientID, err := wire.ServerHandshake(cn, uint32(ws.s.router.NumShards()), ws.s.now())
	if err != nil {
		ws.noteProtoErr(err)
		return
	}
	cn.ReadTimeout = ws.opts.idleTimeout
	win, err := ws.dedup.Acquire(clientID)
	if err != nil {
		// Table exhausted by active clients: transient, shed silently
		// (see the max-conns refusal above for why no Error frame).
		ws.refused.Add(1)
		return
	}
	var pushStop chan struct{}
	defer func() {
		if pushStop != nil {
			close(pushStop)
		}
	}()
	var reqs []wire.Request
	for {
		p, err := cn.ReadFrame()
		if err != nil {
			ws.noteProtoErr(err)
			return
		}
		switch {
		case len(p) == 0:
			ws.protoFail(cn, "empty frame")
			return
		case p[0] == wire.MsgBatch:
			if reqs, err = ws.handleBatch(cn, win, p, reqs[:0]); err != nil {
				ws.protoFail(cn, err.Error())
				return
			}
		case p[0] == wire.MsgSubscribe:
			since, err := wire.DecodeSubscribe(p)
			if err != nil {
				ws.protoFail(cn, err.Error())
				return
			}
			if pushStop != nil {
				ws.protoFail(cn, "duplicate Subscribe")
				return
			}
			pushStop = make(chan struct{})
			ws.subs.Add(1)
			ws.wg.Add(1)
			go ws.pushEvents(c, cn, since, pushStop)
		default:
			ws.protoFail(cn, fmt.Sprintf("unexpected message 0x%02x", p[0]))
			return
		}
	}
}

// recoverPanic contains a handler panic to its connection: the process
// and every other connection keep serving.
func (ws *wireServer) recoverPanic(c net.Conn) {
	if r := recover(); r != nil {
		ws.panics.Add(1)
		log.Printf("ftoa-serve: wire conn %v panic: %v", c.RemoteAddr(), r)
	}
}

// noteProtoErr counts protocol violations; clean disconnects, peer
// resets, deadline expiries (idle/slow-subscriber shedding) and the
// server tearing the socket down are expected under an adversarial
// network, not protocol errors.
func (ws *wireServer) noteProtoErr(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return
	}
	ws.mu.Lock()
	closed := ws.closed
	ws.mu.Unlock()
	if closed {
		return
	}
	ws.protoErr.Add(1)
}

// protoFail counts the violation and sends the fatal Error frame.
func (ws *wireServer) protoFail(cn *wire.Conn, msg string) {
	ws.protoErr.Add(1)
	cn.WriteError(msg)
}

// retryAfter jitters the BUSY hint across [0.5, 1.5) ticks so a crowd
// of refused clients does not re-arrive in the same tick.
func (ws *wireServer) retryAfter() float64 {
	return ws.retry * (0.5 + rand.Float64())
}

// handleBatch decodes one batch, resolves each effectful request against
// the client's dedup window, runs the remainder in two phases —
// admissions enqueued to the rings and awaited, then advances and
// withdrawals in batch order — and writes the positional reply. The
// window is held across the whole batch, serializing this client's
// batches across connections: a batch re-sent on a fresh connection
// while the original is still executing on a dying one waits, then
// replays the recorded receipts. The returned slice is the request
// scratch buffer, recycled across batches.
func (ws *wireServer) handleBatch(cn *wire.Conn, win *wire.ClientWindow, p []byte, scratch []wire.Request) ([]wire.Request, error) {
	id, reqs, err := wire.DecodeBatch(p, scratch)
	if err != nil {
		return reqs, err
	}
	ws.batches.Add(1)
	ws.requests.Add(uint64(len(reqs)))
	results := make([]wire.Result, len(reqs))
	admRes := make([]ftoa.ShardAdmitResult, len(reqs))
	pending := make([]bool, len(reqs))
	fresh := make([]bool, len(reqs)) // executes this batch; Record afterwards
	var wg sync.WaitGroup
	now := ws.s.now()

	win.Lock()
	defer win.Unlock()

	// Phase 0: idempotency. A re-sent op is answered from the window; an
	// op older than the window retains is refused (its outcome is
	// unknowable); only fresh seqs proceed to execution.
	for i := range reqs {
		rq := &reqs[i]
		results[i].Kind = rq.Kind
		if !wire.Effectful(rq.Kind) {
			fresh[i] = true
			continue
		}
		rec, state := win.Lookup(rq.Seq)
		switch state {
		case wire.DedupNew:
			fresh[i] = true
		case wire.DedupHit:
			ws.deduped.Add(1)
			results[i] = rec
		case wire.DedupOverrun:
			results[i].Status = wire.StatusErr
			results[i].Msg = "idempotency window overrun: outcome of this seq is unknown"
		case wire.DedupInvalid:
			results[i].Status = wire.StatusErr
			results[i].Msg = "idempotency seq must be nonzero"
		}
	}

	// Phase 1: enqueue every fresh admission. The loop never blocks on a
	// shard lock — a full ring is an immediate BUSY result.
	for i := range reqs {
		rq := &reqs[i]
		if !fresh[i] {
			continue
		}
		switch rq.Kind {
		case wire.ReqAddWorker, wire.ReqAddTask:
			if rq.Window <= 0 || math.IsNaN(rq.Window) {
				results[i].Status = wire.StatusErr
				results[i].Msg = "window (patience/expiry) must be positive"
				fresh[i] = false
				continue
			}
			at := rq.At
			if math.IsNaN(at) {
				at = now // client asked for server-stamped arrival
			}
			var ok bool
			if rq.Kind == wire.ReqAddWorker {
				ok = ws.s.admitter.AddWorker(ftoa.Worker{Loc: ftoa.Pt(rq.X, rq.Y), Arrive: at, Patience: rq.Window}, &admRes[i], &wg)
			} else {
				ok = ws.s.admitter.AddTask(ftoa.Task{Loc: ftoa.Pt(rq.X, rq.Y), Release: at, Expiry: rq.Window}, &admRes[i], &wg)
			}
			if !ok {
				ws.busy.Add(1)
				results[i].Status = wire.StatusBusy
				results[i].RetryAfter = ws.retryAfter()
				fresh[i] = false // BUSY is retryable: never recorded
				continue
			}
			pending[i] = true
		case wire.ReqAdvance, wire.ReqWithdrawWorker, wire.ReqWithdrawTask:
			// Phase 2.
		default:
			return reqs, fmt.Errorf("unknown request kind 0x%02x", rq.Kind)
		}
	}
	wg.Wait()

	// Phase 2: collect admission outcomes, then apply clock advances and
	// withdrawals in batch order — after the admissions, so a batch that
	// admits and immediately withdraws observes its own admissions.
	for i := range reqs {
		rq := &reqs[i]
		if !fresh[i] {
			continue
		}
		switch rq.Kind {
		case wire.ReqAddWorker, wire.ReqAddTask:
			if !pending[i] {
				continue
			}
			if err := admRes[i].Err; err != nil {
				results[i].Status = wire.StatusErr
				results[i].Msg = err.Error()
			} else {
				results[i].Status = wire.StatusOK
				results[i].Shard = uint32(admRes[i].H.Shard)
				results[i].Local = uint32(admRes[i].H.Local)
				results[i].Epoch = admRes[i].Epoch
				results[i].Time = admRes[i].Admitted
			}
			win.Record(rq.Seq, results[i])
		case wire.ReqAdvance:
			// The server advances to its OWN clock: wire clients cannot
			// move time (and so cannot expire other clients' objects).
			ws.s.advance()
			results[i].Status = wire.StatusOK
			results[i].Time = ws.s.now()
		case wire.ReqWithdrawWorker, wire.ReqWithdrawTask:
			h := ftoa.ShardHandle{Shard: int(rq.Shard), Local: int(rq.Local)}
			var applied bool
			var err error
			if rq.Kind == wire.ReqWithdrawWorker {
				applied, err = ws.s.router.WithdrawWorker(h, rq.Epoch)
			} else {
				applied, err = ws.s.router.WithdrawTask(h, rq.Epoch)
			}
			if err != nil {
				results[i].Status = wire.StatusErr
				results[i].Msg = err.Error()
			} else {
				results[i].Status = wire.StatusOK
				results[i].Applied = applied
			}
			win.Record(rq.Seq, results[i])
		}
	}
	return reqs, cn.WriteFrame(wire.AppendBatchReply(nil, id, results))
}

// wirePushSafety bounds how long an idle pusher sleeps between wakeup
// checks. Delivery is notification-driven (the broadcast wakes the
// pusher the moment its shard publishes), so this is not a poll
// interval — it only bounds recovery from a hypothetically missed
// wakeup and keeps the stop check live. An idle subscriber costs one
// timer tick and two atomic loads per second.
const wirePushSafety = time.Second

// pushEvents streams the merged event log to one subscribed connection,
// push-based: a broadcast subscription (shard.Broadcast) delivers
// retained events as a ring copy and wakes the pusher on emission, so a
// hot stream is pushed immediately and an idle one does no per-tick
// merge work. A subscriber behind the ring tail pages its backlog
// through the merge-on-read fallback inside Next; retention overruns
// surface as EventsGone (the client restarts from the reported cursor,
// losing only genuinely evicted events). A write that overruns the
// write deadline means the subscriber is not draining: the connection
// is dropped (the resilient client reconnects and resumes from its
// cursor).
func (ws *wireServer) pushEvents(c net.Conn, cn *wire.Conn, cursor uint64, stop <-chan struct{}) {
	defer ws.wg.Done()
	defer ws.subs.Add(-1)
	defer ws.recoverPanic(c)
	evict := func(err error) {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			ws.evicted.Add(1)
		}
		ws.dropConn(c) // wake the reader goroutine too
	}
	if cursor == wire.SinceNow {
		cursor = ws.s.router.Cursor()
	}
	sub := ws.s.router.Subscribe(cursor)
	defer sub.Close()
	var buf []ftoa.ShardEvent
	evs := make([]wire.Event, 0, wireEventPage)
	var frame []byte
	for {
		select {
		case <-stop:
			return
		default:
		}
		var err error
		buf, _, err = sub.Next(wireEventPage, buf[:0])
		if err != nil {
			oldest := ws.s.router.OldestCursor()
			if werr := cn.WriteFrame(wire.AppendEventsGone(frame[:0], oldest)); werr != nil {
				evict(werr)
				return
			}
			sub.Seek(oldest)
			continue
		}
		if len(buf) == 0 {
			sub.Wait(wirePushSafety, stop)
			continue
		}
		evs = evs[:0]
		for i := range buf {
			ev := &buf[i]
			evs = append(evs, wire.Event{
				Seq:         ev.Seq,
				Shard:       int32(ev.Shard),
				Kind:        byte(ev.Kind),
				Worker:      int32(ev.Worker),
				Task:        int32(ev.Task),
				Time:        ev.Time,
				WorkerShard: int32(ev.WorkerShard),
				TaskShard:   int32(ev.TaskShard),
			})
		}
		frame = wire.AppendEvents(frame[:0], sub.Cursor(), evs)
		if err := cn.WriteFrame(frame); err != nil {
			evict(err)
			return
		}
	}
}

// statsJSON is the "wire" section of GET /stats.
func (ws *wireServer) statsJSON() map[string]any {
	return map[string]any{
		"enabled":         true,
		"batches":         ws.batches.Load(),
		"requests":        ws.requests.Load(),
		"busy":            ws.busy.Load(),
		"deduped":         ws.deduped.Load(),
		"ring_refusals":   ws.s.admitter.BusyTotal(),
		"protocol_errors": ws.protoErr.Load(),
		"refused_conns":   ws.refused.Load(),
		"evicted_subs":    ws.evicted.Load(),
		"panics":          ws.panics.Load(),
		"clients":         ws.dedup.Clients(),
		"subscriptions":   ws.subs.Load(),
	}
}
