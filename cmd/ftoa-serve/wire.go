// Wire listener: the binary serving surface behind -listen-wire. Batches
// of arrivals come in as framed wire messages (internal/wire), are fed
// through the router's per-shard MPSC admission rings (shard.Admitter) —
// so decoding connections never touch a shard lock — and each batch is
// answered after all of its admissions drained, so an acknowledged
// arrival is in its shard (and, on a durable server, WAL-recorded).
// Subscribed connections get the merged event stream pushed as it grows.
//
// Backpressure is end-to-end: a full ring surfaces as a per-entry BUSY
// result with a retry-after hint (counted in /stats under "wire"), never
// as blocking the decode loop.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ftoa"
	"ftoa/internal/wire"
)

// wireEventPage bounds one Events push frame; a subscriber behind a large
// backlog pages through it in consecutive frames.
const wireEventPage = 1024

// wireServer owns the wire listener and its connections; admissions go
// through the server's shared rings (server.admitter). One goroutine
// accepts; each connection gets a reader goroutine (batches on a
// connection are processed in order — pipelining is across connections)
// plus, once subscribed, an event pusher.
type wireServer struct {
	s     *server
	ln    net.Listener
	retry float64       // BUSY retry-after hint, seconds (one tick)
	push  time.Duration // event pusher poll interval

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	batches  atomic.Uint64
	requests atomic.Uint64
	busy     atomic.Uint64 // BUSY results returned (ring backpressure)
	protoErr atomic.Uint64 // framing/decode violations that dropped a conn
	subs     atomic.Int64  // live event subscriptions
}

func newWireServer(s *server, ln net.Listener, tick time.Duration) *wireServer {
	ws := &wireServer{
		s:     s,
		ln:    ln,
		retry: tick.Seconds(),
		push:  tick / 4,
		conns: make(map[net.Conn]struct{}),
	}
	if ws.push <= 0 {
		ws.push = 50 * time.Millisecond
	}
	ws.wg.Add(1)
	go ws.acceptLoop()
	return ws
}

// close stops accepting, drops every connection and waits the handlers
// out. The shared admission rings are the server's (server.close drains
// them); call this first so wire producers are gone by then.
func (ws *wireServer) close() {
	ws.mu.Lock()
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	ws.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	ws.wg.Wait()
}

func (ws *wireServer) acceptLoop() {
	defer ws.wg.Done()
	for {
		c, err := ws.ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			log.Printf("ftoa-serve: wire accept: %v", err)
			return
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			c.Close()
			return
		}
		ws.conns[c] = struct{}{}
		ws.wg.Add(1)
		ws.mu.Unlock()
		go ws.handleConn(c)
	}
}

func (ws *wireServer) dropConn(c net.Conn) {
	ws.mu.Lock()
	delete(ws.conns, c)
	ws.mu.Unlock()
	c.Close()
}

func (ws *wireServer) handleConn(c net.Conn) {
	defer ws.wg.Done()
	defer ws.dropConn(c)
	cn := wire.NewConn(c)
	if err := wire.ServerHandshake(cn, uint32(ws.s.router.NumShards()), ws.s.now()); err != nil {
		ws.noteProtoErr(err)
		return
	}
	var pushStop chan struct{}
	defer func() {
		if pushStop != nil {
			close(pushStop)
		}
	}()
	var reqs []wire.Request
	for {
		p, err := cn.ReadFrame()
		if err != nil {
			ws.noteProtoErr(err)
			return
		}
		switch {
		case len(p) == 0:
			ws.protoFail(cn, "empty frame")
			return
		case p[0] == wire.MsgBatch:
			if reqs, err = ws.handleBatch(cn, p, reqs[:0]); err != nil {
				ws.protoFail(cn, err.Error())
				return
			}
		case p[0] == wire.MsgSubscribe:
			since, err := wire.DecodeSubscribe(p)
			if err != nil {
				ws.protoFail(cn, err.Error())
				return
			}
			if pushStop != nil {
				ws.protoFail(cn, "duplicate Subscribe")
				return
			}
			pushStop = make(chan struct{})
			ws.subs.Add(1)
			ws.wg.Add(1)
			go ws.pushEvents(cn, since, pushStop)
		default:
			ws.protoFail(cn, fmt.Sprintf("unexpected message 0x%02x", p[0]))
			return
		}
	}
}

// noteProtoErr counts protocol violations; clean disconnects and the
// server tearing the socket down are not errors.
func (ws *wireServer) noteProtoErr(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	ws.mu.Lock()
	closed := ws.closed
	ws.mu.Unlock()
	if closed {
		return
	}
	ws.protoErr.Add(1)
}

// protoFail counts the violation and sends the fatal Error frame.
func (ws *wireServer) protoFail(cn *wire.Conn, msg string) {
	ws.protoErr.Add(1)
	cn.WriteError(msg)
}

// handleBatch decodes one batch, runs it in two phases — admissions
// enqueued to the rings and awaited, then advances and withdrawals in
// batch order — and writes the positional reply. The returned slice is
// the request scratch buffer, recycled across batches.
func (ws *wireServer) handleBatch(cn *wire.Conn, p []byte, scratch []wire.Request) ([]wire.Request, error) {
	id, reqs, err := wire.DecodeBatch(p, scratch)
	if err != nil {
		return reqs, err
	}
	ws.batches.Add(1)
	ws.requests.Add(uint64(len(reqs)))
	results := make([]wire.Result, len(reqs))
	admRes := make([]ftoa.ShardAdmitResult, len(reqs))
	pending := make([]bool, len(reqs))
	var wg sync.WaitGroup
	now := ws.s.now()

	// Phase 1: enqueue every admission. The loop never blocks on a shard
	// lock — a full ring is an immediate BUSY result.
	for i := range reqs {
		rq := &reqs[i]
		results[i].Kind = rq.Kind
		switch rq.Kind {
		case wire.ReqAddWorker, wire.ReqAddTask:
			if rq.Window <= 0 || math.IsNaN(rq.Window) {
				results[i].Status = wire.StatusErr
				results[i].Msg = "window (patience/expiry) must be positive"
				continue
			}
			at := rq.At
			if math.IsNaN(at) {
				at = now // client asked for server-stamped arrival
			}
			var ok bool
			if rq.Kind == wire.ReqAddWorker {
				ok = ws.s.admitter.AddWorker(ftoa.Worker{Loc: ftoa.Pt(rq.X, rq.Y), Arrive: at, Patience: rq.Window}, &admRes[i], &wg)
			} else {
				ok = ws.s.admitter.AddTask(ftoa.Task{Loc: ftoa.Pt(rq.X, rq.Y), Release: at, Expiry: rq.Window}, &admRes[i], &wg)
			}
			if !ok {
				ws.busy.Add(1)
				results[i].Status = wire.StatusBusy
				results[i].RetryAfter = ws.retry
				continue
			}
			pending[i] = true
		case wire.ReqAdvance, wire.ReqWithdrawWorker, wire.ReqWithdrawTask:
			// Phase 2.
		default:
			return reqs, fmt.Errorf("unknown request kind 0x%02x", rq.Kind)
		}
	}
	wg.Wait()

	// Phase 2: collect admission outcomes, then apply clock advances and
	// withdrawals in batch order — after the admissions, so a batch that
	// admits and immediately withdraws observes its own admissions.
	for i := range reqs {
		rq := &reqs[i]
		switch rq.Kind {
		case wire.ReqAddWorker, wire.ReqAddTask:
			if !pending[i] {
				continue
			}
			if err := admRes[i].Err; err != nil {
				results[i].Status = wire.StatusErr
				results[i].Msg = err.Error()
				continue
			}
			results[i].Status = wire.StatusOK
			results[i].Shard = uint32(admRes[i].H.Shard)
			results[i].Local = uint32(admRes[i].H.Local)
			results[i].Epoch = admRes[i].Epoch
			results[i].Time = admRes[i].Admitted
		case wire.ReqAdvance:
			// The server advances to its OWN clock: wire clients cannot
			// move time (and so cannot expire other clients' objects).
			ws.s.advance()
			results[i].Status = wire.StatusOK
			results[i].Time = ws.s.now()
		case wire.ReqWithdrawWorker, wire.ReqWithdrawTask:
			h := ftoa.ShardHandle{Shard: int(rq.Shard), Local: int(rq.Local)}
			var applied bool
			var err error
			if rq.Kind == wire.ReqWithdrawWorker {
				applied, err = ws.s.router.WithdrawWorker(h, rq.Epoch)
			} else {
				applied, err = ws.s.router.WithdrawTask(h, rq.Epoch)
			}
			if err != nil {
				results[i].Status = wire.StatusErr
				results[i].Msg = err.Error()
				continue
			}
			results[i].Status = wire.StatusOK
			results[i].Applied = applied
		}
	}
	return reqs, cn.WriteFrame(wire.AppendBatchReply(nil, id, results))
}

// pushEvents streams the merged event log to one subscribed connection:
// poll the cursor API on a short interval, page through any backlog, and
// translate retention overruns into EventsGone (the client restarts from
// the reported cursor, losing only genuinely evicted events).
func (ws *wireServer) pushEvents(cn *wire.Conn, cursor uint64, stop <-chan struct{}) {
	defer ws.wg.Done()
	defer ws.subs.Add(-1)
	if cursor == wire.SinceNow {
		cursor = ws.s.router.Cursor()
	}
	var buf []ftoa.ShardEvent
	evs := make([]wire.Event, 0, wireEventPage)
	var frame []byte
	t := time.NewTicker(ws.push)
	defer t.Stop()
	for {
		for {
			var next uint64
			var err error
			buf, next, err = ws.s.router.EventsLimit(cursor, wireEventPage, buf[:0])
			if err != nil {
				oldest := ws.s.router.OldestCursor()
				if cn.WriteFrame(wire.AppendEventsGone(frame[:0], oldest)) != nil {
					return
				}
				cursor = oldest
				continue
			}
			if len(buf) == 0 {
				cursor = next
				break
			}
			evs = evs[:0]
			for i := range buf {
				ev := &buf[i]
				evs = append(evs, wire.Event{
					Seq:         ev.Seq,
					Shard:       int32(ev.Shard),
					Kind:        byte(ev.Kind),
					Worker:      int32(ev.Worker),
					Task:        int32(ev.Task),
					Time:        ev.Time,
					WorkerShard: int32(ev.WorkerShard),
					TaskShard:   int32(ev.TaskShard),
				})
			}
			frame = wire.AppendEvents(frame[:0], next, evs)
			if cn.WriteFrame(frame) != nil {
				return
			}
			cursor = next
			if len(evs) < wireEventPage {
				break
			}
		}
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// statsJSON is the "wire" section of GET /stats.
func (ws *wireServer) statsJSON() map[string]any {
	return map[string]any{
		"enabled":         true,
		"batches":         ws.batches.Load(),
		"requests":        ws.requests.Load(),
		"busy":            ws.busy.Load(),
		"ring_refusals":   ws.s.admitter.BusyTotal(),
		"protocol_errors": ws.protoErr.Load(),
		"subscriptions":   ws.subs.Load(),
	}
}
