package main

import (
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ftoa/internal/wire"
)

// nan marks an admission as "server-stamped" on the wire.
func nan() float64 { return math.NaN() }

// bootWire starts a server with the wire listener on a loopback port and
// returns it plus the dialed client.
func bootWire(t *testing.T, cfg config) (*server, *wireServer, *wire.Client, func(float64)) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := manualClock(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := newWireServer(srv, ln, 100*time.Millisecond, wireOptions{})
	srv.wire = ws
	t.Cleanup(ws.close)
	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, ws, cl, set
}

// TestWireEndToEnd drives the whole wire surface over a real TCP
// connection: handshake, batched admissions (server-stamped and
// validated), clock advance, withdrawal receipts, and event push.
func TestWireEndToEnd(t *testing.T) {
	_, ws, cl, set := bootWire(t, defaultTestConfig())
	set(0)

	if ack := cl.Hello(); ack.Shards != 1 {
		t.Fatalf("hello ack = %+v, want 1 shard", ack)
	}
	var evMu sync.Mutex
	var pushed []wire.Event
	if err := cl.Subscribe(0, func(next uint64, evs []wire.Event) {
		evMu.Lock()
		pushed = append(pushed, evs...)
		evMu.Unlock()
	}, nil); err != nil {
		t.Fatal(err)
	}

	// One batch: a worker, a matching task (both server-stamped via NaN),
	// and an invalid admission that must fail positionally without
	// touching its neighbors.
	res, err := cl.Do([]wire.Request{
		{Kind: wire.ReqAddWorker, X: 10, Y: 10, At: nan(), Window: 300},
		{Kind: wire.ReqAddTask, X: 11, Y: 10, At: nan(), Window: 60},
		{Kind: wire.ReqAddWorker, X: 20, Y: 20, At: nan(), Window: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusOK || res[0].Time != 0 {
		t.Fatalf("worker result = %+v", res[0])
	}
	if res[1].Status != wire.StatusOK {
		t.Fatalf("task result = %+v", res[1])
	}
	if res[2].Status != wire.StatusErr || !strings.Contains(res[2].Msg, "positive") {
		t.Fatalf("invalid admission result = %+v, want StatusErr", res[2])
	}

	// Advance runs against the server's own clock, never the client's.
	set(5)
	res, err = cl.Do([]wire.Request{{Kind: wire.ReqAdvance}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusOK || res[0].Time != 5 {
		t.Fatalf("advance result = %+v, want time 5", res[0])
	}

	// Withdrawal: admit a lone worker, withdraw by receipt, and check the
	// receipt is single-use and epoch-checked.
	res, err = cl.Do([]wire.Request{{Kind: wire.ReqAddWorker, X: 90, Y: 50, At: nan(), Window: 300}})
	if err != nil {
		t.Fatal(err)
	}
	h := res[0]
	res, err = cl.Do([]wire.Request{
		{Kind: wire.ReqWithdrawWorker, Shard: h.Shard, Local: h.Local, Epoch: h.Epoch},
		{Kind: wire.ReqWithdrawWorker, Shard: h.Shard, Local: h.Local, Epoch: h.Epoch},
		{Kind: wire.ReqWithdrawWorker, Shard: h.Shard, Local: h.Local, Epoch: h.Epoch + 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusOK || !res[0].Applied {
		t.Fatalf("withdraw = %+v, want applied", res[0])
	}
	if res[1].Status != wire.StatusOK || res[1].Applied {
		t.Fatalf("re-withdraw = %+v, want not applied", res[1])
	}
	if res[2].Status != wire.StatusErr || !strings.Contains(res[2].Msg, "epoch") {
		t.Fatalf("stale-epoch withdraw = %+v, want stale-handle error", res[2])
	}

	// The match from the first batch must arrive on the subscription.
	deadline := time.Now().Add(5 * time.Second)
	for {
		evMu.Lock()
		got := len(pushed) > 0 && pushed[0].Worker == 0 && pushed[0].Task == 0
		evMu.Unlock()
		if got {
			break
		}
		if time.Now().After(deadline) {
			evMu.Lock()
			t.Fatalf("no match event pushed; got %+v", pushed)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if b := ws.batches.Load(); b != 4 {
		t.Fatalf("batches = %d, want 4", b)
	}
	if ws.protoErr.Load() != 0 {
		t.Fatalf("protocol errors = %d, want 0", ws.protoErr.Load())
	}
}

// TestWireBusyReply: a refused ring enqueue surfaces to the client as a
// per-entry BUSY result with a retry hint, counted in the wire stats —
// never as an error or a dropped batch.
func TestWireBusyReply(t *testing.T) {
	srv, ws, cl, set := bootWire(t, defaultTestConfig())
	set(0)
	// Closing the admitter makes every enqueue refuse, which is the same
	// surface a full ring produces.
	srv.admitter.Close()
	res, err := cl.Do([]wire.Request{
		{Kind: wire.ReqAddWorker, X: 10, Y: 10, At: nan(), Window: 300},
		{Kind: wire.ReqAdvance},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusBusy || res[0].RetryAfter <= 0 {
		t.Fatalf("refused admission = %+v, want BUSY with retry hint", res[0])
	}
	if res[1].Status != wire.StatusOK {
		t.Fatalf("advance alongside BUSY = %+v, want OK", res[1])
	}
	if got := ws.statsJSON()["busy"].(uint64); got != 1 {
		t.Fatalf("wire busy stat = %d, want 1", got)
	}
}

// TestWireRejectsGarbage: a non-protocol byte stream is counted as a
// protocol error and the connection dropped; the listener survives.
func TestWireRejectsGarbage(t *testing.T) {
	_, ws, cl, _ := bootWire(t, defaultTestConfig())
	raw, err := net.Dial("tcp", ws.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	buf := make([]byte, 256)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := raw.Read(buf); err != nil {
			break // server hung up on the garbage
		}
	}
	raw.Close()
	if ws.protoErr.Load() == 0 {
		t.Fatal("garbage stream not counted as protocol error")
	}
	// The real client still works.
	if _, err := cl.Do([]wire.Request{{Kind: wire.ReqAdvance}}); err != nil {
		t.Fatalf("healthy connection broken by garbage peer: %v", err)
	}
}
