// Command ftoa-sim runs one FTOA simulation with explicit parameters: it
// generates a synthetic instance (Table 4 parameterisation), builds the
// offline guide from the generating distribution's expected counts, and
// replays the instance under a chosen algorithm (or all of them).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftoa"
)

func main() {
	var (
		workers  = flag.Int("workers", 20000, "number of workers |W|")
		tasks    = flag.Int("tasks", 20000, "number of tasks |R|")
		dr       = flag.Float64("dr", 2.0, "task deadline Dr in slot units")
		dw       = flag.Float64("dw", 2.0, "worker patience Dw in slot units")
		gridSide = flag.Int("grid", 50, "prediction grid cells per side")
		slots    = flag.Int("slots", 48, "number of time slots")
		velocity = flag.Float64("velocity", 5, "worker velocity, space units per slot unit")
		space    = flag.Float64("space", 50, "space side length")
		taskMu   = flag.Float64("task-mu", 0.5, "tasks' temporal mean fraction")
		taskMean = flag.Float64("task-mean", 0.5, "tasks' spatial mean fraction")
		seed     = flag.Uint64("seed", 1, "random seed")
		algo     = flag.String("algo", "all", "algorithm: simplegreedy|gr|polar|polar-op|opt|all")
		mode     = flag.String("mode", "assume-guide", "validation: assume-guide or strict")
		grWindow = flag.Float64("gr-window", 0.25, "GR batch window in slot units")
	)
	flag.Parse()

	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers = *workers
	cfg.NumTasks = *tasks
	cfg.TaskExpiry = *dr
	cfg.WorkerPatience = *dw
	cfg.Velocity = *velocity
	cfg.Space = *space
	cfg.TaskTempMu = *taskMu
	cfg.TaskSpatialMean = *taskMean
	cfg.Seed = *seed

	in, err := cfg.Generate()
	if err != nil {
		fail(err)
	}
	grid := ftoa.NewGrid(cfg.Bounds(), *gridSide, *gridSide)
	sl := ftoa.NewSlotting(cfg.Horizon, *slots)
	wc, tc := cfg.ExpectedCounts(grid, sl)
	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:            grid,
		Slots:           sl,
		Velocity:        cfg.Velocity,
		WorkerPatience:  cfg.WorkerPatience,
		TaskExpiry:      cfg.TaskExpiry,
		MaxEdgesPerCell: 128,
		RepSlack:        sl.Width() / 2,
	}, wc, tc)
	if err != nil {
		fail(err)
	}

	m := ftoa.AssumeGuide
	if *mode == "strict" {
		m = ftoa.Strict
	}
	eng := ftoa.NewEngine(in, m)

	run := func(alg ftoa.Algorithm) {
		res := eng.Run(alg)
		fmt.Printf("%-13s matched %6d  time %12v  rejected %d/%d attempts\n",
			res.Algorithm, res.Matching.Size(), res.Elapsed.Round(1000), res.Rejected, res.Attempted)
	}
	want := strings.ToLower(*algo)
	fmt.Printf("instance: |W|=%d |R|=%d Dr=%.2f grid=%dx%d slots=%d mode=%s; guide |E*|=%d\n",
		len(in.Workers), len(in.Tasks), *dr, *gridSide, *gridSide, *slots, m, g.MatchedPairs)
	if want == "simplegreedy" || want == "all" {
		run(ftoa.NewSimpleGreedy())
	}
	if want == "gr" || want == "all" {
		run(ftoa.NewGR(*grWindow))
	}
	if want == "polar" || want == "all" {
		run(ftoa.NewPOLAR(g))
	}
	if want == "polar-op" || want == "all" {
		run(ftoa.NewPOLAROP(g))
	}
	if want == "opt" || want == "all" {
		opt := ftoa.OPT(in, ftoa.OPTOptions{MaxCandidates: 64})
		fmt.Printf("%-13s matched %6d  (offline upper bound)\n", "OPT", opt.Size())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
