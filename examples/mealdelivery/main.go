// Command mealdelivery models an on-wheel meal-ordering service (the
// paper's GrubHub motivation): couriers come online around the lunch and
// dinner peaks near residential areas, while orders spike at restaurant
// districts — and meals have tight delivery windows, so the deadline Dr is
// the decisive parameter. The example sweeps Dr and shows how the
// prediction-guided POLAR-OP keeps matching couriers under deadlines where
// wait-in-place dispatching starves (the Figure 4(c) effect).
package main

import (
	"fmt"
	"os"

	"ftoa"
)

func main() {
	// Couriers cluster near a residential belt (spatial mean 0.3 of the
	// map) while restaurants cluster across town (0.65) — guidance has to
	// bridge the gap before orders expire.
	base := ftoa.DefaultSynthetic()
	base.NumWorkers = 4000
	base.NumTasks = 4000
	base.Space = 30
	base.Velocity = 4 // bikes, slightly slower than taxis
	base.WorkerSpatialMean, base.WorkerSpatialCov = 0.3, 0.2
	base.TaskSpatialMean, base.TaskSpatialCov = 0.65, 0.3
	// Lunch rush: couriers log on just before orders peak.
	base.WorkerTempMu, base.WorkerTempSigma = 0.4, 0.2
	base.TaskTempMu, base.TaskTempSigma = 0.5, 0.2

	grid := ftoa.NewGrid(base.Bounds(), 15, 15)
	slots := ftoa.NewSlotting(base.Horizon, 48)

	fmt.Println("meal delivery: matching couriers to orders under tightening deadlines")
	fmt.Printf("%6s %14s %6s %10s %10s %8s\n", "Dr", "SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")
	for _, dr := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		cfg := base
		cfg.TaskExpiry = dr
		in, err := cfg.Generate()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wc, tc := cfg.ExpectedCounts(grid, slots)
		g, err := ftoa.BuildGuide(ftoa.GuideConfig{
			Grid:           grid,
			Slots:          slots,
			Velocity:       cfg.Velocity,
			WorkerPatience: cfg.WorkerPatience,
			TaskExpiry:     dr,
			RepSlack:       slots.Width() / 2,
		}, wc, tc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng := ftoa.NewEngine(in, ftoa.AssumeGuide)
		greedy := eng.Run(ftoa.NewSimpleGreedy()).Matching.Size()
		gr := eng.Run(ftoa.NewGR(0.25)).Matching.Size()
		polar := eng.Run(ftoa.NewPOLAR(g)).Matching.Size()
		polarOp := eng.Run(ftoa.NewPOLAROP(g)).Matching.Size()
		opt := ftoa.OPT(in, ftoa.OPTOptions{MaxCandidates: 64}).Size()
		fmt.Printf("%6.1f %14d %6d %10d %10d %8d\n", dr, greedy, gr, polar, polarOp, opt)
	}
	fmt.Println("\ntight deadlines (Dr ≤ 1) are where guided couriers matter most:")
	fmt.Println("waiting in place only works once the delivery window is generous.")
}
