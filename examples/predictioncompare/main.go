// Command predictioncompare reproduces the spirit of the paper's Table 5 on
// a generated city history: it fits all seven spatiotemporal prediction
// methods (HA, ARIMA, GBRT, PAQ, LR, NN, HP-MSI) on the training days and
// reports ER and RMSLE on the held-out days, for both the demand (task) and
// supply (worker) series.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftoa"
)

func main() {
	var (
		perDay = flag.Int("per-day", 8000, "objects per day per side")
		days   = flag.Int("days", 28, "history length in days")
		test   = flag.Int("test-days", 3, "held-out evaluation days")
	)
	flag.Parse()

	city := ftoa.Hangzhou()
	city.WorkersPerDay = *perDay
	city.TasksPerDay = *perDay
	city.Days = *days
	city.Cols, city.Rows = 12, 16
	tr, err := city.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	areas := tr.Grid.NumCells()
	trainDays := city.Days - *test

	series := func(counts [][]int) *ftoa.Series {
		var flat []int
		var weather []float64
		for d := 0; d < city.Days; d++ {
			flat = append(flat, counts[d]...)
			weather = append(weather, tr.Weather[d]...)
		}
		s, err := ftoa.NewSeries(city.Days, city.SlotsPerDay, areas, flat, weather, tr.DayOfWeek)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return s
	}
	sides := []struct {
		name string
		s    *ftoa.Series
	}{
		{"demand", series(tr.TaskCounts)},
		{"supply", series(tr.WorkerCounts)},
	}

	predictors := []func() ftoa.Predictor{
		ftoa.NewHA, ftoa.NewARIMA, ftoa.NewGBRT, ftoa.NewPAQ,
		ftoa.NewLR, ftoa.NewNeuralNet, ftoa.NewHPMSI,
	}

	fmt.Printf("city history: %d days × %d slots × %d areas, train on %d days, evaluate on %d\n\n",
		city.Days, city.SlotsPerDay, areas, trainDays, *test)
	fmt.Printf("%-8s", "method")
	for _, side := range sides {
		fmt.Printf("  %8s-RMSLE %8s-ER", side.name, side.name)
	}
	fmt.Println()
	for _, mk := range predictors {
		name := mk().Name()
		fmt.Printf("%-8s", name)
		for _, side := range sides {
			p := mk()
			if err := p.Fit(side.s, trainDays); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			var rmsle, er float64
			for day := trainDays; day < city.Days; day++ {
				actual := make([]float64, city.SlotsPerDay*areas)
				for slot := 0; slot < city.SlotsPerDay; slot++ {
					for a := 0; a < areas; a++ {
						actual[slot*areas+a] = side.s.At(day, slot, a)
					}
				}
				pred := ftoa.PredictDay(p, side.s, day)
				rmsle += ftoa.RMSLE(actual, pred, city.SlotsPerDay, areas)
				er += ftoa.ErrorRate(actual, pred, city.SlotsPerDay, areas)
			}
			fmt.Printf("  %14.3f %11.3f", rmsle/float64(*test), er/float64(*test))
		}
		fmt.Println()
	}
	fmt.Println("\nlower is better for both metrics; the paper selects HP-MSI for its framework.")
}
