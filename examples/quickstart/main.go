// Command quickstart walks through the paper's running example (Section 1,
// Figure 1 / Table 1): seven taxis and six taxi-calling requests on an 8×8
// map. It builds the offline guide from the predicted per-(slot, area)
// counts of Figure 1d and replays the day under every algorithm, printing
// who serves whom.
//
// Expected output: SimpleGreedy matches 1 pair (the paper's Example 2 says
// 2, but the w3→r2 pair it counts is √5 ≈ 2.24 > Dr = 2 minutes away under
// the paper's own Euclidean travel-cost definition), POLAR matches 4
// (Example 5), POLAR-OP matches 6 (Example 6) — the offline optimum.
package main

import (
	"fmt"

	"ftoa"
)

func main() {
	// The instance of Figure 1a / Table 1: locations in a [0,8]² space,
	// times in minutes from 9:00, velocity 1 unit/min, worker patience 30
	// min, task deadline 2 min.
	in := &ftoa.Instance{
		Velocity: 1,
		Bounds:   ftoa.NewRect(0, 0, 8, 8),
		Horizon:  10,
	}
	workers := []struct{ x, y, at float64 }{
		{1, 6, 0}, {1, 8, 1}, {3, 7, 1}, {5, 3, 3}, {4, 1, 3}, {8, 2, 3}, {6, 1, 4},
	}
	for i, w := range workers {
		in.Workers = append(in.Workers, ftoa.Worker{
			ID: i + 1, Loc: ftoa.Pt(w.x, w.y), Arrive: w.at, Patience: 30,
		})
	}
	tasks := []struct{ x, y, at float64 }{
		{3, 6, 0}, {2, 5, 2}, {5, 6, 5}, {6, 5, 6}, {6, 7, 7}, {7, 6, 8},
	}
	for i, r := range tasks {
		in.Tasks = append(in.Tasks, ftoa.Task{
			ID: i + 1, Loc: ftoa.Pt(r.x, r.y), Release: r.at, Expiry: 2,
		})
	}

	// The prediction of Figure 1d: a 2×2 grid over the space and two
	// 5-minute slots. In this grid numbering the paper's Area0 (top-left)
	// is cell 2, Area1 is cell 3, Area2 is cell 0 and Area3 is cell 1.
	grid := ftoa.NewGrid(in.Bounds, 2, 2)
	slots := ftoa.NewSlotting(10, 2)
	areas := grid.NumCells()
	workerCounts := make([]int, slots.Count*areas)
	taskCounts := make([]int, slots.Count*areas)
	workerCounts[0*areas+2] = 2 // slot 0, paper Area0: 2 predicted taxis
	workerCounts[0*areas+1] = 3 // slot 0, paper Area3: 3 predicted taxis
	taskCounts[0*areas+2] = 1   // slot 0, paper Area0: 1 predicted request
	taskCounts[1*areas+3] = 3   // slot 1, paper Area1: 3 predicted requests
	taskCounts[1*areas+0] = 1   // slot 1, paper Area2: 1 predicted request

	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       in.Velocity,
		WorkerPatience: 30,
		TaskExpiry:     2,
	}, workerCounts, taskCounts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("offline guide: %d predicted pairs (Figure 2 computes 5)\n\n", g.MatchedPairs)

	// Replay under the paper's counting (guide pairs assumed feasible).
	eng := ftoa.NewEngine(in, ftoa.AssumeGuide)
	for _, alg := range []ftoa.Algorithm{
		ftoa.NewSimpleGreedy(),
		ftoa.NewPOLAR(g),
		ftoa.NewPOLAROP(g),
	} {
		res := eng.Run(alg)
		fmt.Printf("%-13s matched %d pair(s):", res.Algorithm, res.Matching.Size())
		for _, p := range res.Matching.Pairs {
			fmt.Printf("  w%d→r%d", in.Workers[p.Worker].ID, in.Tasks[p.Task].ID)
		}
		fmt.Println()
	}

	opt := ftoa.OPT(in, ftoa.OPTOptions{})
	fmt.Printf("%-13s matched %d pair(s):", "OPT", opt.Size())
	for _, p := range opt.Pairs {
		fmt.Printf("  w%d→r%d", in.Workers[p.Worker].ID, in.Tasks[p.Task].ID)
	}
	fmt.Println()
}
