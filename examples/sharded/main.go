// Command sharded demonstrates the sharded serving layer: one synthetic
// day of arrivals is routed by location into a 2×2 grid of independent
// SimpleGreedy sessions (the hyperlocal partitioning of real-time spatial
// crowdsourcing frontends), with concurrent producers feeding disjoint
// regions in parallel and one consumer tailing the merged lifecycle event
// stream by cursor — matches and expiries alike.
package main

import (
	"fmt"
	"sync"

	"ftoa"
)

func main() {
	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 400, 400
	in, err := cfg.Generate()
	if err != nil {
		panic(err)
	}

	router, err := ftoa.NewShardRouter(ftoa.ShardConfig{
		Matcher: ftoa.MatcherConfig{
			Mode:     ftoa.Strict,
			Velocity: cfg.Velocity,
			Bounds:   cfg.Bounds(),
			Hints: ftoa.Hints{
				ExpectedWorkers: cfg.NumWorkers,
				ExpectedTasks:   cfg.NumTasks,
				Horizon:         cfg.Horizon,
			},
		},
		Cols:         2,
		Rows:         2,
		NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
	})
	if err != nil {
		panic(err)
	}

	// Producers: the recorded day split across goroutines. Each admission
	// takes only its target region's lock, so disjoint regions run truly
	// in parallel. (Splitting a time-ordered stream across goroutines
	// reorders arrivals slightly; the session clamps them monotone per
	// shard, exactly as a live multi-frontend deployment would.)
	events := in.Events()
	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(events); i += producers {
				ev := events[i]
				switch ev.Kind {
				case ftoa.WorkerArrival:
					if _, _, err := router.AddWorker(in.Workers[ev.Index]); err != nil {
						panic(err)
					}
				case ftoa.TaskArrival:
					if _, _, err := router.AddTask(in.Tasks[ev.Index]); err != nil {
						panic(err)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	router.Finish()

	// Consumer: tail the merged stream from the start.
	var merged []ftoa.ShardEvent
	merged, next, err := router.Events(0, merged)
	if err != nil {
		panic(err)
	}
	counts := map[ftoa.SessionEventKind]int{}
	for _, ev := range merged {
		counts[ev.Kind]++
	}
	fmt.Printf("merged stream: %d events (cursor %d): %d matches, %d worker expiries, %d task expiries\n",
		len(merged), next, counts[ftoa.EventMatch], counts[ftoa.EventWorkerExpired], counts[ftoa.EventTaskExpired])

	for i := 0; i < router.NumShards(); i++ {
		st := router.ShardStats(i)
		fmt.Printf("shard %d %v: %d workers, %d tasks -> %d matched, %d+%d expired\n",
			st.Shard, st.Bounds, st.Workers, st.Tasks, st.Matches, st.ExpiredWorkers, st.ExpiredTasks)
	}
}
