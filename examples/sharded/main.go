// Command sharded demonstrates the sharded serving layer: one synthetic
// day of arrivals is routed by location into a 2×2 grid of independent
// SimpleGreedy sessions (the hyperlocal partitioning of real-time spatial
// crowdsourcing frontends), with concurrent producers feeding disjoint
// regions in parallel and one consumer tailing the merged lifecycle event
// stream by cursor — matches and expiries alike.
//
// The day is served twice: once with disjoint regions (a worker near a
// border cannot serve a reachable task across it) and once with halo
// mirroring on, where border arrivals are ghosted into reachable
// neighbor sessions and cross-shard claims guarantee each object still
// matches at most once — recovering the border matches the disjoint grid
// loses.
package main

import (
	"fmt"
	"sync"

	"ftoa"
)

func main() {
	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 400, 400
	in, err := cfg.Generate()
	if err != nil {
		panic(err)
	}

	for _, halo := range []float64{0, ftoa.HaloForWindow(cfg.Velocity, cfg.TaskExpiry)} {
		matched := serveDay(in, cfg, halo)
		if halo == 0 {
			fmt.Printf("disjoint 2x2: %d matched\n\n", matched)
		} else {
			fmt.Printf("halo %.0f 2x2: %d matched\n", halo, matched)
		}
	}
}

func serveDay(in *ftoa.Instance, cfg ftoa.Synthetic, halo float64) int {
	router, err := ftoa.NewShardRouter(ftoa.ShardConfig{
		Matcher: ftoa.MatcherConfig{
			Mode:     ftoa.Strict,
			Velocity: cfg.Velocity,
			Bounds:   cfg.Bounds(),
			Hints: ftoa.Hints{
				ExpectedWorkers: cfg.NumWorkers,
				ExpectedTasks:   cfg.NumTasks,
				Horizon:         cfg.Horizon,
			},
		},
		Cols:         2,
		Rows:         2,
		Halo:         halo,
		NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
	})
	if err != nil {
		panic(err)
	}

	// Producers: the recorded day split across goroutines. Each admission
	// takes only its target region's lock (plus, for border objects with
	// a halo, the reachable neighbors' locks one at a time), so disjoint
	// regions run truly in parallel. (Splitting a time-ordered stream
	// across goroutines reorders arrivals slightly; the session clamps
	// them monotone per shard, exactly as a live multi-frontend
	// deployment would.)
	events := in.Events()
	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(events); i += producers {
				ev := events[i]
				switch ev.Kind {
				case ftoa.WorkerArrival:
					if _, _, err := router.AddWorker(in.Workers[ev.Index]); err != nil {
						panic(err)
					}
				case ftoa.TaskArrival:
					if _, _, err := router.AddTask(in.Tasks[ev.Index]); err != nil {
						panic(err)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	router.Finish()

	// Consumer: tail the merged stream from the start. Cross-border
	// matches appear exactly once, under each endpoint's owner identity.
	var merged []ftoa.ShardEvent
	merged, next, err := router.Events(0, merged)
	if err != nil {
		panic(err)
	}
	counts := map[ftoa.SessionEventKind]int{}
	crossShard := 0
	for _, ev := range merged {
		counts[ev.Kind]++
		if ev.Kind == ftoa.EventMatch && ev.WorkerShard != ev.TaskShard {
			crossShard++
		}
	}
	fmt.Printf("merged stream: %d events (cursor %d): %d matches (%d cross-shard), %d worker expiries, %d task expiries\n",
		len(merged), next, counts[ftoa.EventMatch], crossShard, counts[ftoa.EventWorkerExpired], counts[ftoa.EventTaskExpired])

	matched := 0
	for i := 0; i < router.NumShards(); i++ {
		st := router.ShardStats(i)
		matched += st.Matches
		fmt.Printf("shard %d %v: %d workers (%d ghosts), %d tasks (%d ghosts) -> %d matched (%d border), %d+%d expired, %d withdrawn\n",
			st.Shard, st.Bounds, st.Workers, st.GhostWorkers, st.Tasks, st.GhostTasks,
			st.Matches, st.BorderMatches, st.ExpiredWorkers, st.ExpiredTasks,
			st.WithdrawnWorkers+st.WithdrawnTasks)
	}
	return matched
}
