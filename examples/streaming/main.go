// Command streaming demonstrates the open-world Matcher API: synthetic
// workers and tasks are pushed live into a session running POLAR-OP — no
// pre-materialised instance, no replay engine — and every lifecycle event
// (commits AND the deadline expiries of objects that leave unserved) is
// printed the moment it fires, from the OnEvent callback.
//
// The arrival stream is sampled from the synthetic generator of the
// paper's Table 4 defaults, scaled down; the offline guide is built from
// the generator's expected per-(slot, area) counts, exactly the
// prediction→guide→online pipeline a live deployment would run at the
// start of each day.
package main

import (
	"fmt"

	"ftoa"
)

func main() {
	// Offline phase: predict per-cell counts for the coming horizon and
	// build the guide POLAR-OP will follow.
	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 300, 300
	grid := ftoa.NewGrid(cfg.Bounds(), 8, 8)
	slots := ftoa.NewSlotting(cfg.Horizon, 12)
	wCounts, tCounts := cfg.ExpectedCounts(grid, slots)
	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
	}, wCounts, tCounts)
	if err != nil {
		panic(err)
	}

	// Online phase: open a session and feed arrivals as they happen. The
	// OnEvent callback fires synchronously inside the AddWorker/AddTask/
	// Advance/Finish call that produced the event.
	committed := 0
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     ftoa.AssumeGuide,
		Velocity: cfg.Velocity,
		Bounds:   cfg.Bounds(),
		Hints:    ftoa.Hints{Horizon: cfg.Horizon},
		OnEvent: func(ev ftoa.SessionEvent) {
			switch ev.Kind {
			case ftoa.EventMatch:
				committed++
				if committed <= 12 || committed%50 == 0 {
					fmt.Printf("t=%6.1f  match #%d: worker %d ↔ task %d\n",
						ev.Time, committed, ev.Worker, ev.Task)
				}
			case ftoa.EventWorkerExpired:
				if ev.Worker%100 == 0 {
					fmt.Printf("t=%6.1f  worker %d left unserved\n", ev.Time, ev.Worker)
				}
			case ftoa.EventTaskExpired:
				if ev.Task%100 == 0 {
					fmt.Printf("t=%6.1f  task %d expired unserved\n", ev.Time, ev.Task)
				}
			}
		},
	})
	if err != nil {
		panic(err)
	}
	sess := m.NewSession(ftoa.NewPOLAROP(g))

	// Stand-in for live traffic: sample one day of arrivals from the
	// generator and push them in time order, as a frontend would.
	in, err := cfg.Generate()
	if err != nil {
		panic(err)
	}
	for _, ev := range in.Events() {
		switch ev.Kind {
		case ftoa.WorkerArrival:
			if _, err := sess.AddWorker(in.Workers[ev.Index]); err != nil {
				panic(err)
			}
		case ftoa.TaskArrival:
			if _, err := sess.AddTask(in.Tasks[ev.Index]); err != nil {
				panic(err)
			}
		}
	}
	sess.Finish()

	fmt.Printf("\nday over at t=%.1f: %d workers, %d tasks admitted, %d pairs committed\n",
		sess.Now(), sess.NumWorkers(), sess.NumTasks(), sess.Matching().Size())
	fmt.Printf("attrition: %d workers and %d tasks passed their deadline unserved\n",
		sess.ExpiredWorkers(), sess.ExpiredTasks())
	stats := sess.Stats()
	fmt.Printf("mean pickup distance %.2f, mean task wait %.2f\n",
		stats.MeanPickupDistance(sess.Matching().Size()),
		stats.MeanTaskWait(sess.Matching().Size()))
}
