// Command taxicalling runs the full two-step framework on a synthetic
// taxi-calling city (the workload standing in for the paper's Didi traces):
// it generates a multi-week history with rush hours, commute asymmetry,
// weekday and weather structure, trains the HP-MSI predictor on the
// history, builds the offline guide from its forecasts for the final day,
// and replays that day under every online algorithm.
//
// Flags shrink or grow the scenario; the default runs a small city in a
// few seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftoa"
)

func main() {
	var (
		perDay = flag.Int("per-day", 6000, "workers and tasks per day")
		days   = flag.Int("days", 21, "history length in days")
		dr     = flag.Float64("dr", 1.0, "task deadline Dr in 15-minute slots")
	)
	flag.Parse()

	city := ftoa.Beijing()
	city.WorkersPerDay = *perDay
	city.TasksPerDay = *perDay
	city.Days = *days
	// A smaller city than the paper's 20×30 grid, with velocity scaled in
	// proportion so relative reach is preserved; per-cell density stays at
	// the paper's ≈0.9 objects per (slot, area) cell.
	city.Cols, city.Rows = 8, 12
	city.Velocity = 2

	fmt.Printf("generating %d days of %s-like history (%d workers, %d tasks per day)...\n",
		city.Days, city.Name, city.WorkersPerDay, city.TasksPerDay)
	tr, err := city.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Train the paper's chosen predictor on all but the last day.
	testDay := city.Days - 1
	areas := tr.Grid.NumCells()
	flatten := func(src [][]int) []int {
		var out []int
		for d := 0; d < city.Days; d++ {
			out = append(out, src[d]...)
		}
		return out
	}
	var weather []float64
	for d := 0; d < city.Days; d++ {
		weather = append(weather, tr.Weather[d]...)
	}
	forecast := func(counts [][]int, label string) []int {
		s, err := ftoa.NewSeries(city.Days, city.SlotsPerDay, areas, flatten(counts), weather, tr.DayOfWeek)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p := ftoa.NewHPMSI()
		if err := p.Fit(s, testDay); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pred := ftoa.PredictDay(p, s, testDay)
		actual := make([]float64, len(pred))
		for i, c := range counts[testDay] {
			actual[i] = float64(c)
		}
		fmt.Printf("HP-MSI %s forecast: ER %.3f, RMSLE %.3f\n", label,
			ftoa.ErrorRate(actual, pred, city.SlotsPerDay, areas),
			ftoa.RMSLE(actual, pred, city.SlotsPerDay, areas))
		return ftoa.ToCounts(pred)
	}
	wPred := forecast(tr.WorkerCounts, "supply")
	tPred := forecast(tr.TaskCounts, "demand")

	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:           tr.Grid,
		Slots:          tr.Slots,
		Velocity:       city.Velocity,
		WorkerPatience: city.WorkerPatience,
		TaskExpiry:     *dr,
		RepSlack:       tr.Slots.Width() / 2,
	}, wPred, tPred)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("offline guide: %d pre-matched pairs\n\n", g.MatchedPairs)

	in, err := tr.Instance(testDay, *dr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("test day: %d taxis, %d requests, Dr = %.2f slots\n\n",
		len(in.Workers), len(in.Tasks), *dr)

	eng := ftoa.NewEngine(in, ftoa.AssumeGuide)
	fmt.Printf("%-13s %10s %12s\n", "algorithm", "matched", "time")
	for _, alg := range []ftoa.Algorithm{
		ftoa.NewSimpleGreedy(),
		ftoa.NewGR(0.25),
		ftoa.NewPOLAR(g),
		ftoa.NewPOLAROP(g),
	} {
		res := eng.Run(alg)
		fmt.Printf("%-13s %10d %12s\n", res.Algorithm, res.Matching.Size(), res.Elapsed.Round(1000))
	}
	opt := ftoa.OPT(in, ftoa.OPTOptions{MaxCandidates: 64})
	fmt.Printf("%-13s %10d %12s\n", "OPT", opt.Size(), "(offline)")
}
