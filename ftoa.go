// Package ftoa is a Go implementation of Flexible Two-sided Online Task
// Assignment in real-time spatial data (Tong et al., PVLDB 10(11), 2017):
// streams of spatially distributed tasks and workers are matched online,
// and idle workers are guided toward locations where tasks are predicted to
// appear, maximising the number of assigned pairs.
//
// The package re-exports the building blocks a platform needs:
//
//   - the problem model (Worker, Task, Instance) and feasibility rules;
//   - the two-step framework: offline per-(time slot, grid area) prediction
//     (package ftoa's Predictor implementations: HA, ARIMA, GBRT, PAQ, LR,
//     NN, HP-MSI) and offline guide generation (BuildGuide, Algorithm 1);
//   - the online algorithms: POLAR (Algorithm 2, competitive ratio ≈ 0.4),
//     POLAR-OP (Algorithm 3, ≈ 0.47, O(1) per arrival), the baselines
//     SimpleGreedy and GR, and the clairvoyant optimum OPT;
//   - the open-world streaming surface (NewMatcher/Session): workers and
//     tasks are admitted at arrival time and matched live, with no
//     pre-materialised instance. The session's output is a typed
//     lifecycle event stream (SessionEvent): commits and the deadline
//     expiries of objects that leave unserved — the model's two-sided
//     attrition made observable;
//   - the sharded serving layer (NewShardRouter): the service area
//     partitioned into a grid of independent sessions, admissions routed
//     by location, per-shard event streams merged behind a global cursor
//     — this is what cmd/ftoa-serve exposes over HTTP;
//   - the replay engine (NewEngine/Run), a thin driver that feeds a
//     recorded instance's arrival stream through the same session API,
//     simulating worker movement and validating matches;
//   - workload generators for the paper's synthetic sweeps and multi-day
//     city traces.
//
// Streaming quick start — push live arrivals into a session and drain
// committed pairs (see examples/streaming for a guided POLAR-OP session):
//
//	m, _ := ftoa.NewMatcher(ftoa.MatcherConfig{
//		Mode:     ftoa.Strict,
//		Velocity: 1,
//		Bounds:   ftoa.NewRect(0, 0, 100, 100),
//	})
//	sess := m.NewSession(ftoa.NewSimpleGreedy())
//	w, _ := sess.AddWorker(ftoa.Worker{Loc: ftoa.Pt(10, 10), Arrive: 0, Patience: 300})
//	r, _ := sess.AddTask(ftoa.Task{Loc: ftoa.Pt(11, 10), Release: 5, Expiry: 60})
//	for _, match := range sess.Drain(nil) {
//		fmt.Println(match.Worker == w, match.Task == r) // true true
//	}
//
// Replay quick start:
//
//	cfg := ftoa.DefaultSynthetic()
//	cfg.NumWorkers, cfg.NumTasks = 5000, 5000
//	instance, _ := cfg.Generate()
//	grid := ftoa.NewGrid(cfg.Bounds(), 25, 25)
//	slots := ftoa.NewSlotting(cfg.Horizon, 48)
//	wCounts, tCounts := cfg.ExpectedCounts(grid, slots)
//	g, _ := ftoa.BuildGuide(ftoa.GuideConfig{
//		Grid: grid, Slots: slots, Velocity: cfg.Velocity,
//		WorkerPatience: cfg.WorkerPatience, TaskExpiry: cfg.TaskExpiry,
//	}, wCounts, tCounts)
//	eng := ftoa.NewEngine(instance, ftoa.AssumeGuide)
//	result := eng.Run(ftoa.NewPOLAROP(g))
//	fmt.Println(result.Matching.Size())
package ftoa

import (
	"io"

	"ftoa/internal/core"
	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/predict"
	"ftoa/internal/shard"
	"ftoa/internal/shard/rebalance"
	"ftoa/internal/shard/wal"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
	"ftoa/internal/workload"
)

// Geometry and discretisation.
type (
	// Point is a location in the 2D plane.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Grid partitions a rectangle into equal cells ("grid areas").
	Grid = geo.Grid
	// Slotting partitions the timeline into equal time slots.
	Slotting = timeslot.Slotting
	// CellKey identifies one (time slot, grid area) prediction cell.
	CellKey = timeslot.CellKey
)

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewRect builds a rectangle from two corner coordinates.
func NewRect(x0, y0, x1, y1 float64) Rect { return geo.NewRect(x0, y0, x1, y1) }

// NewGrid builds a grid over bounds with cols×rows cells.
func NewGrid(bounds Rect, cols, rows int) *Grid { return geo.NewGrid(bounds, cols, rows) }

// NewSlotting partitions [0, horizon) into count slots.
func NewSlotting(horizon float64, count int) *Slotting { return timeslot.New(horizon, count) }

// NewAnchoredSlotting partitions a periodic timeline: SlotOf(t) resolves
// mod(t+offset, horizon), so an ever-growing clock (server uptime) keeps
// mapping to the right recurring slot — the primitive behind wall-clock
// anchored guide slotting in long-lived deployments.
func NewAnchoredSlotting(horizon float64, count int, offset float64) *Slotting {
	return timeslot.NewAnchored(horizon, count, offset)
}

// Problem model (Section 2 of the paper).
type (
	// Worker is a crowdsourcing worker: w = <Lw, Sw, Dw>.
	Worker = model.Worker
	// Task is a spatial task: r = <Lr, Sr, Dr>.
	Task = model.Task
	// Instance bundles one FTOA problem instance.
	Instance = model.Instance
	// Matching is a set of disjoint worker-task pairs.
	Matching = model.Matching
	// Pair is one assigned worker-task pair.
	Pair = model.Pair
	// Event is one arrival in an instance's merged online input sequence
	// (Instance.Events), the stream a replay feeds into a Session.
	Event = model.Event
	// EventKind distinguishes worker from task arrivals.
	EventKind = model.EventKind
)

// Arrival kinds of Event.
const (
	// WorkerArrival is the appearance of a new worker on the platform.
	WorkerArrival = model.WorkerArrival
	// TaskArrival is the release of a new task.
	TaskArrival = model.TaskArrival
)

// Feasible reports whether (w, r) satisfies Definition 4's deadline
// constraint under ideal guidance.
func Feasible(w *Worker, r *Task, velocity float64) bool {
	return model.Feasible(w, r, velocity)
}

// Offline guide generation (Section 4, Algorithm 1).
type (
	// GuideConfig parameterises guide construction.
	GuideConfig = guide.Config
	// Guide is the offline guide Ĝf consulted by POLAR and POLAR-OP.
	Guide = guide.Guide
	// CellPlan is the guide's pair layout for one prediction cell.
	CellPlan = guide.CellPlan
)

// BuildGuide runs Algorithm 1 over predicted per-(slot, area) counts.
func BuildGuide(cfg GuideConfig, workerCounts, taskCounts []int) (*Guide, error) {
	return guide.Build(cfg, workerCounts, taskCounts)
}

// Online assignment (Section 5) and baselines (Section 6.1).
type (
	// Algorithm is an online assignment algorithm driven by a session.
	Algorithm = sim.Algorithm
	// RetirableAlgorithm is an Algorithm whose per-object state survives
	// arena retirement (Session.Retire): its Remap hook rewrites stored
	// handles through the old→new tables. All algorithms in this package
	// implement it.
	RetirableAlgorithm = sim.RetirableAlgorithm
	// WithdrawAwareAlgorithm is an Algorithm that eagerly drops its
	// per-object state when the platform withdraws a handle
	// (Session.WithdrawWorker/WithdrawTask — the retraction behind the
	// shard router's halo ghosts). The hook is an optimisation; platform
	// availability checks already report withdrawn objects dead. All
	// algorithms in this package implement it.
	WithdrawAwareAlgorithm = sim.WithdrawAwareAlgorithm
	// Platform is the session-side API visible to algorithms.
	Platform = sim.Platform
	// Matcher is a configured factory for open-world matching sessions.
	Matcher = sim.Matcher
	// MatcherConfig parameterises a Matcher.
	MatcherConfig = sim.MatcherConfig
	// Session is one live open-world matching session: AddWorker/AddTask
	// admit arrivals, Advance drives timers and expiries, DrainEvents
	// returns the typed lifecycle stream (Drain the match-only view), and
	// Retire compacts away provably dead objects so long-lived sessions
	// stay bounded by their live population.
	Session = sim.Session
	// Match is one committed worker-task pair (session handles).
	Match = sim.Match
	// SessionEvent is one lifecycle event: a commit or a deadline expiry
	// of an unmatched worker/task.
	SessionEvent = sim.SessionEvent
	// SessionEventKind distinguishes lifecycle events.
	SessionEventKind = sim.SessionEventKind
	// Hints carries optional closed-world sizing information.
	Hints = sim.Hints
	// Engine replays recorded instances through the session API.
	Engine = sim.Engine
	// Result summarises one replay.
	Result = sim.Result
	// Mode selects match-validation semantics.
	Mode = sim.Mode
	// EngineOption tunes replay-engine construction.
	EngineOption = sim.EngineOption
	// OPTOptions tunes the offline optimum computation.
	OPTOptions = core.OPTOptions
)

// Validation modes.
const (
	// Strict validates travel feasibility from the worker's simulated
	// position at commit time.
	Strict = sim.Strict
	// AssumeGuide commits any match between two available objects — the
	// paper's analysis counting.
	AssumeGuide = sim.AssumeGuide
)

// Lifecycle event kinds of SessionEvent.
const (
	// EventMatch is a committed worker-task pair.
	EventMatch = sim.EventMatch
	// EventWorkerExpired is a worker whose deadline passed unmatched —
	// it left the platform unserved.
	EventWorkerExpired = sim.EventWorkerExpired
	// EventTaskExpired is a task whose deadline passed unmatched.
	EventTaskExpired = sim.EventTaskExpired
)

// Sharded serving (package shard): one service area as a grid of
// independent sessions with a merged, cursor-addressed event stream.
// With ShardConfig.Halo set, border admissions are mirrored into
// reachable neighbor sessions and arbitrated so cross-border pairs match
// without any object ever committing twice.
type (
	// ShardRouter partitions MatcherConfig.Bounds into a grid of
	// per-region sessions and routes admissions by location.
	ShardRouter = shard.Router
	// ShardConfig parameterises a ShardRouter.
	ShardConfig = shard.Config
	// ShardEvent is a lifecycle event tagged with its shard and a global
	// sequence number.
	ShardEvent = shard.Event
	// ShardHandle names an object admitted through a router.
	ShardHandle = shard.Handle
	// ShardStats snapshots one shard.
	ShardStats = shard.Stats
	// ShardPlacement maps a location to its owner region plus the
	// neighbor regions within the halo that must receive ghost copies.
	ShardPlacement = shard.Placement
	// MatchLog is a retention-bounded, lock-disjoint match view over a
	// ShardRouter's event stream: per-shard buffers fed by the OnEvent
	// hook, merged by ordinal at read time.
	MatchLog = shard.MatchLog
	// MatchEntry is one committed pair in a MatchLog, tagged with its
	// dense global match ordinal.
	MatchEntry = shard.MatchEntry
	// WALOptions parameterises the per-shard write-ahead log: set it as
	// ShardConfig.WAL to make a router durable, and boot through
	// RecoverShardRouter to replay an existing log directory.
	WALOptions = wal.Options
	// WALSyncPolicy selects when appended WAL groups become durable.
	WALSyncPolicy = wal.SyncPolicy
	// ShardRecoveryInfo summarises one RecoverShardRouter call: segment
	// and record counts, torn/dangling bytes truncated from crashed
	// tails, the replayed event and match totals, the highest recovered
	// shard clock, and the log generation the recovered router writes.
	ShardRecoveryInfo = shard.RecoveryInfo
	// ShardAdmitter is the batched MPSC admission front of a
	// ShardRouter: producers enqueue arrivals into per-shard lock-free
	// rings and each shard's single drainer admits timestamp-sorted
	// batches under one lock acquisition, with explicit backpressure
	// (a full ring refuses immediately). The concurrency engine behind
	// ftoa-serve's wire listener.
	ShardAdmitter = shard.Admitter
	// ShardAdmitterConfig sizes a ShardAdmitter (ring capacity and
	// max batch per lock acquisition).
	ShardAdmitterConfig = shard.AdmitterConfig
	// ShardAdmitResult is one ring admission's outcome; H and Epoch
	// form the receipt ShardRouter.WithdrawWorker/WithdrawTask accepts.
	ShardAdmitResult = shard.AdmitResult
	// ShardTopology is a quadtree refinement of the base shard grid:
	// the region layout a ShardRouter routes over, changed online via
	// ShardRouter.Rebalance (usually driven by a RebalanceSupervisor).
	ShardTopology = shard.Topology
	// ShardRebalanceInfo summarises one online topology change.
	ShardRebalanceInfo = shard.RebalanceInfo
	// RebalanceSupervisor watches per-region demand and splits hot
	// regions / merges cold sibling quads via ShardRouter.Rebalance.
	RebalanceSupervisor = rebalance.Supervisor
	// RebalanceConfig holds the supervisor's policy knobs (split and
	// merge thresholds, depth cap, cooldown, EWMA time constant, and an
	// optional demand forecaster).
	RebalanceConfig = rebalance.Config
	// ShardEventSub is one subscriber's cursor into the router's shared
	// event broadcast ring (ShardRouter.Subscribe): Next reads retained
	// events as a lock-light slice copy, transparently falling back to
	// the merge-on-read path when the cursor lags the ring, and Wait
	// blocks until delivery — the push primitive behind the wire event
	// pusher and GET /events long-polling.
	ShardEventSub = shard.EventSub
	// ShardBroadcastStats snapshots the shared event ring
	// (ShardRouter.BroadcastStats): subscriber count, ring depth and
	// capacity, published/dropped totals, fallback-to-merge transitions
	// and wakeups delivered.
	ShardBroadcastStats = shard.BroadcastStats
)

// DefaultShardBroadcastCapacity is the event broadcast ring size used
// when ShardConfig.Broadcast is zero.
const DefaultShardBroadcastCapacity = shard.DefaultBroadcastCapacity

// MaxShardSplitDepth bounds how many times one base grid cell can be
// quartered by rebalancing.
const MaxShardSplitDepth = shard.MaxSplitDepth

// NewRebalanceSupervisor validates cfg and returns a supervisor driving
// r's topology; call Tick from the same single goroutine that advances
// the router's clock.
func NewRebalanceSupervisor(r *ShardRouter, cfg RebalanceConfig) (*RebalanceSupervisor, error) {
	return rebalance.New(r, cfg)
}

// WAL sync policies (see WALOptions.Policy).
const (
	// WALSyncInterval (the default) group-commits on a background flush
	// period: a crash loses at most one interval of acknowledged work.
	WALSyncInterval = wal.SyncInterval
	// WALSyncAlways fsyncs every operation group before acknowledging.
	WALSyncAlways = wal.SyncAlways
	// WALSyncNone only fsyncs on flush/close.
	WALSyncNone = wal.SyncNone
)

// RecoverShardRouter reconstructs a durable ShardRouter from the
// write-ahead log under cfg.WAL.Dir — replaying each shard's admissions,
// withdrawals and recorded arbitration outcomes into a bit-identical
// merged event stream and matched set — and opens a fresh log generation
// for it. An empty directory starts a fresh router. Corrupt tails from a
// crash are truncated, reported in ShardRecoveryInfo, and never refuse
// the boot; a config that does not fingerprint-match the log does.
func RecoverShardRouter(cfg ShardConfig) (*ShardRouter, *ShardRecoveryInfo, error) {
	return shard.Recover(cfg)
}

// RetiredHandle marks a dropped object in the remap tables passed to
// RetirableAlgorithm.Remap and MatcherConfig.OnRetire.
const RetiredHandle = sim.RetiredHandle

// NewMatchLog creates a match view over `shards` regions keeping at least
// the most recent `retention` matches per shard; wire its Record method
// as (part of) ShardConfig.OnEvent.
func NewMatchLog(shards, retention int) *MatchLog { return shard.NewMatchLog(shards, retention) }

// ErrShardCursorEvicted is returned by ShardRouter.Events when the cursor
// points below the retention boundary.
var ErrShardCursorEvicted = shard.ErrEvicted

// ErrStaleShardHandle is returned by ShardRouter.WithdrawWorker and
// WithdrawTask when the receipt's epoch predates the shard's arena epoch
// (a retirement may have remapped the handle).
var ErrStaleShardHandle = shard.ErrStaleHandle

// NewShardAdmitter starts one ring and one drainer goroutine per shard
// of r; Close it before closing the router's WAL so ring-buffered
// admissions become durable.
func NewShardAdmitter(r *ShardRouter, cfg ShardAdmitterConfig) *ShardAdmitter {
	return shard.NewAdmitter(r, cfg)
}

// NewShardRouter builds a sharded serving layer over the streaming
// session API: cfg.Matcher.Bounds is partitioned into a Cols×Rows grid,
// one session (and one algorithm instance) per region, admissions routed
// by location, per-shard event streams merged behind a global cursor.
func NewShardRouter(cfg ShardConfig) (*ShardRouter, error) { return shard.NewRouter(cfg) }

// HaloForWindow derives the natural ShardConfig.Halo width from the
// shared worker velocity and the workload's deadline window (typically
// the task expiry Dr): objects farther apart can never form a feasible
// pair, so a wider halo only adds mirroring cost.
func HaloForWindow(velocity, window float64) float64 { return shard.HaloForWindow(velocity, window) }

// NewMatcher validates cfg and returns a factory for open-world streaming
// sessions: workers and tasks are admitted at arrival time via
// Session.AddWorker/AddTask (returning stable handles), Session.Advance
// drives timers and expiry, and committed pairs surface through the
// OnMatch callback or Session.Drain.
func NewMatcher(cfg MatcherConfig) (*Matcher, error) { return sim.NewMatcher(cfg) }

// NewEngine prepares a replay engine for the instance: a thin driver that
// feeds the recorded arrival stream through the same open-world session
// API live deployments use. Use the returned engine's Clone method to
// replay the same instance concurrently on several goroutines.
func NewEngine(in *Instance, mode Mode, opts ...EngineOption) *Engine {
	return sim.NewEngine(in, mode, opts...)
}

// WithAllocTracking enables per-run heap-allocation measurement
// (Result.AllocBytes) at the cost of two stop-the-world pauses per Run.
func WithAllocTracking() EngineOption { return sim.WithAllocTracking() }

// NewPOLAR creates the POLAR algorithm (Algorithm 2) bound to a guide.
func NewPOLAR(g *Guide) Algorithm { return core.NewPOLAR(g) }

// NewPOLAROP creates the POLAR-OP algorithm (Algorithm 3) bound to a guide.
func NewPOLAROP(g *Guide) Algorithm { return core.NewPOLAROP(g) }

// NewSimpleGreedy creates the nearest-feasible-neighbour baseline.
func NewSimpleGreedy() Algorithm { return core.NewSimpleGreedy() }

// NewGR creates the batch-window baseline with the given window length.
func NewGR(window float64) Algorithm { return core.NewGR(window) }

// NewHybrid creates the POLAR-OP+Greedy extension (beyond the paper):
// guide-first assignment with a nearest-feasible-neighbour fallback on
// guide misses. It weakly dominates both parents; see core.Hybrid.
func NewHybrid(g *Guide) Algorithm { return core.NewHybrid(g) }

// NewTGOA creates the two-sided random-order baseline of Tong et al.
// (ICDE 2016) — the prior state of the art (competitive ratio 0.25) that
// the paper's POLAR-OP nearly doubles. Greedy for the first half of
// arrivals, optimal-matching-guided for the second half.
func NewTGOA() Algorithm { return core.NewTGOA() }

// OPT computes the offline optimal matching (Definition 5's denominator).
func OPT(in *Instance, opts OPTOptions) Matching { return core.OPT(in, opts) }

// Offline prediction (Sections 3.1.1 and 6.3).
type (
	// Predictor is one of the paper's prediction methods.
	Predictor = predict.Predictor
	// Series is a per-(day, slot, area) count history with covariates.
	Series = predict.Series
)

// NewSeries assembles a prediction history; see predict.NewSeries.
func NewSeries(days, slots, areas int, counts []int, weather []float64, dow []int) (*Series, error) {
	return predict.NewSeries(days, slots, areas, counts, weather, dow)
}

// The seven predictors of Table 5.
func NewHA() Predictor        { return predict.NewHA() }
func NewARIMA() Predictor     { return predict.NewARIMA() }
func NewGBRT() Predictor      { return predict.NewGBRT() }
func NewPAQ() Predictor       { return predict.NewPAQ() }
func NewLR() Predictor        { return predict.NewLR() }
func NewNeuralNet() Predictor { return predict.NewNeuralNet() }
func NewHPMSI() Predictor     { return predict.NewHPMSI() }

// PredictDay runs a fitted predictor over every cell of one day.
func PredictDay(p Predictor, s *Series, day int) []float64 { return predict.PredictDay(p, s, day) }

// ToCounts rounds forecasts to the integer counts BuildGuide consumes.
func ToCounts(pred []float64) []int { return predict.ToCounts(pred) }

// ErrorRate is the paper's ER prediction metric.
func ErrorRate(actual, predicted []float64, slots, areas int) float64 {
	return predict.ErrorRate(actual, predicted, slots, areas)
}

// RMSLE is the paper's root mean squared logarithmic error metric.
func RMSLE(actual, predicted []float64, slots, areas int) float64 {
	return predict.RMSLE(actual, predicted, slots, areas)
}

// Workload generation (Section 6.1).
type (
	// Synthetic configures the Table 4 synthetic generator.
	Synthetic = workload.Synthetic
	// City configures the multi-day taxi-calling trace generator.
	City = workload.City
	// Trace is a generated multi-day city history.
	Trace = workload.Trace
)

// DefaultSynthetic returns the bold defaults of Table 4.
func DefaultSynthetic() Synthetic { return workload.DefaultSynthetic() }

// LoadInstanceCSV reads an instance from the CSV format ftoa-gen emits, so
// platforms can replay their own arrival logs; see workload.LoadInstanceCSV.
func LoadInstanceCSV(r io.Reader, velocity float64) (*Instance, error) {
	return workload.LoadInstanceCSV(r, velocity)
}

// LoadCountsCSV reads a count history from the CSV format ftoa-gen -counts
// emits, ready for NewSeries; see workload.LoadCountsCSV.
func LoadCountsCSV(r io.Reader) (days, slots, areas int, workers, tasks []int, weather []float64, err error) {
	return workload.LoadCountsCSV(r)
}

// Beijing returns a city configuration shaped like the paper's Beijing
// dataset (a synthetic substitute; see DESIGN.md §5).
func Beijing() City { return workload.Beijing() }

// Hangzhou returns a city configuration shaped like the paper's Hangzhou
// dataset.
func Hangzhou() City { return workload.Hangzhou() }
