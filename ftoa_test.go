package ftoa_test

import (
	"testing"

	"ftoa"
)

// TestFacadeEndToEnd exercises the complete public API surface the way the
// package documentation advertises it: generate, predict, build a guide,
// replay every algorithm, compare with OPT.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := ftoa.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 1200, 1200
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}

	grid := ftoa.NewGrid(cfg.Bounds(), 12, 12)
	slots := ftoa.NewSlotting(cfg.Horizon, 48)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	g, err := ftoa.BuildGuide(ftoa.GuideConfig{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
	}, wc, tc)
	if err != nil {
		t.Fatal(err)
	}

	eng := ftoa.NewEngine(in, ftoa.AssumeGuide)
	greedy := eng.Run(ftoa.NewSimpleGreedy()).Matching.Size()
	gr := eng.Run(ftoa.NewGR(0.25)).Matching.Size()
	polar := eng.Run(ftoa.NewPOLAR(g)).Matching.Size()
	polarOp := eng.Run(ftoa.NewPOLAROP(g)).Matching.Size()
	opt := ftoa.OPT(in, ftoa.OPTOptions{}).Size()

	if opt == 0 {
		t.Fatal("OPT found nothing; instance generation broken")
	}
	for name, size := range map[string]int{
		"SimpleGreedy": greedy, "GR": gr, "POLAR": polar, "POLAR-OP": polarOp,
	} {
		if size <= 0 {
			t.Errorf("%s matched nothing", name)
		}
	}
	if polarOp < polar {
		t.Errorf("POLAR-OP (%d) below POLAR (%d)", polarOp, polar)
	}
	// On the hotspot-separated default workload, guidance must beat
	// waiting in place (the paper's headline claim).
	if polarOp <= greedy {
		t.Errorf("POLAR-OP (%d) did not beat SimpleGreedy (%d)", polarOp, greedy)
	}
}

// TestFacadePrediction exercises the prediction API surface.
func TestFacadePrediction(t *testing.T) {
	city := ftoa.Beijing()
	city.Days = 8
	city.WorkersPerDay = 600
	city.TasksPerDay = 600
	city.Cols, city.Rows = 5, 7
	city.SlotsPerDay = 24
	tr, err := city.Generate()
	if err != nil {
		t.Fatal(err)
	}
	days := city.Days
	areas := tr.Grid.NumCells()
	counts := make([]int, 0, days*city.SlotsPerDay*areas)
	weather := make([]float64, 0, days*city.SlotsPerDay)
	for d := 0; d < days; d++ {
		counts = append(counts, tr.TaskCounts[d]...)
		weather = append(weather, tr.Weather[d]...)
	}
	s, err := ftoa.NewSeries(days, city.SlotsPerDay, areas, counts, weather, tr.DayOfWeek)
	if err != nil {
		t.Fatal(err)
	}
	p := ftoa.NewHPMSI()
	if err := p.Fit(s, days-1); err != nil {
		t.Fatal(err)
	}
	pred := ftoa.PredictDay(p, s, days-1)
	if len(pred) != city.SlotsPerDay*areas {
		t.Fatalf("prediction length %d", len(pred))
	}
	cnts := ftoa.ToCounts(pred)
	total := 0
	for _, c := range cnts {
		if c < 0 {
			t.Fatal("negative predicted count")
		}
		total += c
	}
	if total == 0 {
		t.Error("prediction totally empty")
	}
	er := ftoa.ErrorRate(pred, pred, city.SlotsPerDay, areas)
	if er != 0 {
		t.Errorf("self-ER = %v", er)
	}
	if ftoa.RMSLE(pred, pred, city.SlotsPerDay, areas) != 0 {
		t.Error("self-RMSLE nonzero")
	}
}

// TestFacadeModel covers the model helpers.
func TestFacadeModel(t *testing.T) {
	w := ftoa.Worker{ID: 1, Loc: ftoa.Pt(0, 0), Arrive: 0, Patience: 10}
	r := ftoa.Task{ID: 1, Loc: ftoa.Pt(3, 4), Release: 1, Expiry: 5}
	if !ftoa.Feasible(&w, &r, 1) {
		t.Error("pair should be feasible (travel 5 ≤ deadline 6)")
	}
	if ftoa.Feasible(&w, &r, 0.5) {
		t.Error("pair should be infeasible at half speed")
	}
	rect := ftoa.NewRect(0, 0, 10, 10)
	grid := ftoa.NewGrid(rect, 5, 5)
	if grid.NumCells() != 25 {
		t.Error("grid cells")
	}
}

// TestFacadeStreaming exercises the open-world surface exactly as the
// package documentation advertises it: a Matcher session fed live
// arrivals, matches surfacing through both OnMatch and Drain.
func TestFacadeStreaming(t *testing.T) {
	var fromCallback []ftoa.Match
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     ftoa.Strict,
		Velocity: 1,
		Bounds:   ftoa.NewRect(0, 0, 100, 100),
		OnMatch:  func(match ftoa.Match) { fromCallback = append(fromCallback, match) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(ftoa.NewSimpleGreedy())
	w, err := sess.AddWorker(ftoa.Worker{Loc: ftoa.Pt(10, 10), Arrive: 0, Patience: 300})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sess.AddTask(ftoa.Task{Loc: ftoa.Pt(11, 10), Release: 5, Expiry: 60})
	if err != nil {
		t.Fatal(err)
	}
	got := sess.Drain(nil)
	if len(got) != 1 || got[0].Worker != w || got[0].Task != r {
		t.Fatalf("Drain = %v, want the (w,r) pair", got)
	}
	if len(fromCallback) != 1 || fromCallback[0] != got[0] {
		t.Fatalf("OnMatch = %v, want %v", fromCallback, got)
	}
	sess.Finish()
	if _, err := sess.AddWorker(ftoa.Worker{Loc: ftoa.Pt(1, 1), Arrive: 9, Patience: 1}); err == nil {
		t.Error("AddWorker after Finish must fail")
	}
}

// TestFacadeLifecycleAndSharding exercises the event-stream and sharded
// serving surface through the facade: typed lifecycle events (commit and
// expiry) from a session, and a 2x2 ShardRouter merging per-region
// streams behind a cursor.
func TestFacadeLifecycleAndSharding(t *testing.T) {
	var kinds []ftoa.SessionEventKind
	m, err := ftoa.NewMatcher(ftoa.MatcherConfig{
		Mode:     ftoa.Strict,
		Velocity: 1,
		Bounds:   ftoa.NewRect(0, 0, 100, 100),
		OnEvent:  func(ev ftoa.SessionEvent) { kinds = append(kinds, ev.Kind) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(ftoa.NewSimpleGreedy())
	if _, err := sess.AddWorker(ftoa.Worker{Loc: ftoa.Pt(10, 10), Arrive: 0, Patience: 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AddTask(ftoa.Task{Loc: ftoa.Pt(11, 10), Release: 5, Expiry: 60}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AddWorker(ftoa.Worker{Loc: ftoa.Pt(90, 90), Arrive: 6, Patience: 1}); err != nil {
		t.Fatal(err)
	}
	sess.Advance(100)
	evs := sess.DrainEvents(nil)
	if len(evs) != 2 || evs[0].Kind != ftoa.EventMatch || evs[1].Kind != ftoa.EventWorkerExpired {
		t.Fatalf("DrainEvents = %v, want a match then a worker expiry", evs)
	}
	if sess.ExpiredWorkers() != 1 {
		t.Fatalf("ExpiredWorkers = %d, want 1", sess.ExpiredWorkers())
	}
	if len(kinds) != 2 {
		t.Fatalf("OnEvent kinds = %v", kinds)
	}

	router, err := ftoa.NewShardRouter(ftoa.ShardConfig{
		Matcher: ftoa.MatcherConfig{
			Mode:     ftoa.Strict,
			Velocity: 1,
			Bounds:   ftoa.NewRect(0, 0, 100, 100),
		},
		Cols:         2,
		Rows:         2,
		NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []ftoa.Point{ftoa.Pt(20, 20), ftoa.Pt(80, 20), ftoa.Pt(20, 80), ftoa.Pt(80, 80)} {
		if _, _, err := router.AddWorker(ftoa.Worker{Loc: q, Arrive: 0, Patience: 300}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := router.AddTask(ftoa.Task{Loc: q.Add(ftoa.Pt(1, 0)), Release: 1, Expiry: 60}); err != nil {
			t.Fatal(err)
		}
	}
	merged, next, err := router.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 4 || next != 4 {
		t.Fatalf("merged = %v next %d, want 4 matches", merged, next)
	}
	shards := map[int]bool{}
	for _, ev := range merged {
		if ev.Kind != ftoa.EventMatch {
			t.Fatalf("unexpected event %v", ev)
		}
		shards[ev.Shard] = true
	}
	if len(shards) != 4 {
		t.Fatalf("matches on shards %v, want all 4 regions", shards)
	}
}
