module ftoa

go 1.24
