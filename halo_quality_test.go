package ftoa_test

import (
	"os"
	"strconv"
	"testing"

	"ftoa"
)

// qualityScale mirrors benchScale for the halo quality gate: scale 0.02
// (the CI default, 500 workers + 500 tasks) unless FTOA_BENCH_SCALE asks
// for more.
func qualityScale() float64 {
	if v := os.Getenv("FTOA_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.02
}

// TestShardHaloQualityGate is the acceptance gate for halo matching at
// the benchmark scale: a 4×4 sharded router with the natural halo width
// must recover at least 90% of the unsharded matched size (the historic
// gap was 79 sharded vs 92 unsharded at scale 0.02), and commit no
// object twice. Same instance shape as BenchmarkShardRouter*Stream.
func TestShardHaloQualityGate(t *testing.T) {
	cfg := ftoa.DefaultSynthetic()
	n := int(20000 * qualityScale())
	if n < 500 {
		n = 500
	}
	cfg.NumWorkers, cfg.NumTasks = n, n
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mcfg := ftoa.MatcherConfig{
		Mode:     ftoa.AssumeGuide,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: ftoa.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	}
	events := in.Events()

	// Unsharded reference.
	m, err := ftoa.NewMatcher(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(ftoa.NewSimpleGreedy())
	for _, ev := range events {
		switch ev.Kind {
		case ftoa.WorkerArrival:
			_, err = sess.AddWorker(in.Workers[ev.Index])
		case ftoa.TaskArrival:
			_, err = sess.AddTask(in.Tasks[ev.Index])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	sess.Finish()
	unsharded := sess.Matches()

	runRouter := func(halo float64) int {
		router, err := ftoa.NewShardRouter(ftoa.ShardConfig{
			Matcher:      mcfg,
			Cols:         4,
			Rows:         4,
			Halo:         halo,
			NewAlgorithm: func() ftoa.Algorithm { return ftoa.NewSimpleGreedy() },
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			switch ev.Kind {
			case ftoa.WorkerArrival:
				_, _, err = router.AddWorker(in.Workers[ev.Index])
			case ftoa.TaskArrival:
				_, _, err = router.AddTask(in.Tasks[ev.Index])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		router.Finish()
		matched := 0
		for _, st := range router.StatsAll(nil) {
			matched += st.Matches
		}
		// The no-double-commit invariant, from the merged stream's home
		// identities (no retirement here, so receipts are stable).
		evs, _, err := router.Events(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		type id struct{ shard, local int }
		seenW, seenT := map[id]bool{}, map[id]bool{}
		streamMatches := 0
		for _, ev := range evs {
			if ev.Kind != ftoa.EventMatch {
				continue
			}
			streamMatches++
			w, tk := id{ev.WorkerShard, ev.Worker}, id{ev.TaskShard, ev.Task}
			if seenW[w] || seenT[tk] {
				t.Fatalf("object committed twice: worker %v / task %v", w, tk)
			}
			seenW[w], seenT[tk] = true, true
		}
		if streamMatches != matched {
			t.Fatalf("stream has %d matches, stats say %d", streamMatches, matched)
		}
		return matched
	}

	disjoint := runRouter(0)
	// A quarter of the feasibility bound: nearest-neighbor matching
	// commits far inside the worst-case reach, so the fractional halo
	// recovers ~99% of the border matches at a fraction of the mirroring
	// cost (BenchmarkShardRouterHalo4x4 uses the same width).
	halo := runRouter(ftoa.HaloForWindow(cfg.Velocity, cfg.TaskExpiry) / 4)
	t.Logf("matched at scale %.2f: unsharded %d, 4x4 disjoint %d, 4x4 halo %d (recovery %.1f%%)",
		qualityScale(), unsharded, disjoint, halo, 100*float64(halo)/float64(unsharded))
	if halo*10 < unsharded*9 {
		t.Fatalf("4x4 halo recovered only %d of %d unsharded matches (< 90%%)", halo, unsharded)
	}
}
