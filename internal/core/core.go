// Package core implements the paper's primary contribution: the
// prediction-oriented online task-assignment algorithms POLAR (Algorithm 2,
// competitive ratio ≈ 0.4) and POLAR-OP (Algorithm 3, ≈ 0.47), together
// with the comparison algorithms of Section 6 — SimpleGreedy, the
// batch-window baseline GR, and the offline optimum OPT.
//
// POLAR and POLAR-OP consult an offline guide (package guide) built from
// predicted per-(time slot, grid area) counts; each arrival is processed in
// O(1) by occupying/associating a guide node and following its
// pre-computed pairing. SimpleGreedy and GR represent the wait-in-place
// online models the paper improves on; OPT is the clairvoyant upper bound.
package core

import (
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/sim"
)

// locateWorker returns the (slot, area) prediction cell of a worker at its
// arrival, under the guide's discretisation.
func locateWorker(g *guide.Guide, w *model.Worker) (slot, area int) {
	return g.Cfg.Slots.SlotOf(w.Arrive), g.Cfg.Grid.CellOf(w.Loc)
}

// locateTask is the task-side analogue of locateWorker.
func locateTask(g *guide.Guide, t *model.Task) (slot, area int) {
	return g.Cfg.Slots.SlotOf(t.Release), g.Cfg.Grid.CellOf(t.Loc)
}

// runCursor walks the matched node indices [0, Matched) of a CellPlan in
// order, yielding for each consumed node its partner cell and partner node
// index. It is what makes per-arrival processing O(1): POLAR consumes
// nodes strictly in order and POLAR-OP cycles through them, so no search
// is ever needed.
type runCursor struct {
	runIdx int
	runPos int32
}

// next returns the partner of the cursor's current node and advances.
// ok is false when the cursor is past the matched prefix (unmatched node).
func (c *runCursor) next(plan *guide.CellPlan) (partnerCell, partnerNode int32, ok bool) {
	if c.runIdx >= len(plan.Runs) {
		return 0, 0, false
	}
	r := plan.Runs[c.runIdx]
	partnerCell = r.Partner
	partnerNode = r.PartnerOffset + c.runPos
	c.runPos++
	if c.runPos >= r.Count {
		c.runIdx++
		c.runPos = 0
	}
	return partnerCell, partnerNode, true
}

// reset rewinds the cursor to node 0 (used by POLAR-OP when its node index
// wraps around the cell's Count).
func (c *runCursor) reset() { c.runIdx, c.runPos = 0, 0 }

// remapHandles rewrites a waiting-handle list through a retirement table
// in place, dropping retired handles and preserving the relative order of
// the survivors. Order preservation is what keeps retirement
// behaviour-neutral for list-scanning algorithms: the dropped handles are
// exactly the ones the algorithm's own availability filtering would have
// compacted away, in the same order, at its next pass.
func remapHandles(hs []int32, m []int32) []int32 {
	k := 0
	for _, h := range hs {
		if n := m[h]; n >= 0 {
			hs[k] = n
			k++
		}
	}
	return hs[:k]
}

// All six online algorithms support arena retirement and cross-shard
// withdrawal (the halo router's retraction primitive).
var (
	_ sim.RetirableAlgorithm = (*POLAR)(nil)
	_ sim.RetirableAlgorithm = (*POLAROP)(nil)
	_ sim.RetirableAlgorithm = (*SimpleGreedy)(nil)
	_ sim.RetirableAlgorithm = (*GR)(nil)
	_ sim.RetirableAlgorithm = (*Hybrid)(nil)
	_ sim.RetirableAlgorithm = (*TGOA)(nil)

	_ sim.WithdrawAwareAlgorithm = (*POLAR)(nil)
	_ sim.WithdrawAwareAlgorithm = (*POLAROP)(nil)
	_ sim.WithdrawAwareAlgorithm = (*SimpleGreedy)(nil)
	_ sim.WithdrawAwareAlgorithm = (*GR)(nil)
	_ sim.WithdrawAwareAlgorithm = (*Hybrid)(nil)
	_ sim.WithdrawAwareAlgorithm = (*TGOA)(nil)
)
