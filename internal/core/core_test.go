package core

import (
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
)

// paperInstance builds the running example of Section 1 (Figure 1/Table 1):
// seven workers, six tasks in an 8×8 space, velocity 1 unit/min, worker
// patience 30 min, task expiry 2 min, over a 10-minute timeline.
func paperInstance() *model.Instance {
	ws := []struct{ x, y, at float64 }{
		{1, 6, 0}, {1, 8, 1}, {3, 7, 1}, {5, 3, 3}, {4, 1, 3}, {8, 2, 3}, {6, 1, 4},
	}
	ts := []struct{ x, y, at float64 }{
		{3, 6, 0}, {2, 5, 2}, {5, 6, 5}, {6, 5, 6}, {6, 7, 7}, {7, 6, 8},
	}
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 8, 8),
		Horizon:  10,
	}
	for i, w := range ws {
		in.Workers = append(in.Workers, model.Worker{
			ID: i + 1, Loc: geo.Pt(w.x, w.y), Arrive: w.at, Patience: 30,
		})
	}
	for i, r := range ts {
		in.Tasks = append(in.Tasks, model.Task{
			ID: i + 1, Loc: geo.Pt(r.x, r.y), Release: r.at, Expiry: 2,
		})
	}
	return in
}

// paperGuide reconstructs the exact offline guide of Figure 2c with
// NewManual. Under this package's grid numbering the paper's Area0
// (top-left) is cell 2, Area1 is cell 3, Area2 is cell 0 and Area3 is
// cell 1.
//
// Pairings (Figure 2c): Ŵ001↔R̂001, Ŵ002↔R̂111, Ŵ031↔R̂112, Ŵ032↔R̂113,
// Ŵ033↔R̂121.
func paperGuide(t *testing.T) *guide.Guide {
	t.Helper()
	cfg := guide.Config{
		Grid:           geo.NewGrid(geo.NewRect(0, 0, 8, 8), 2, 2),
		Slots:          timeslot.New(10, 2),
		Velocity:       1,
		WorkerPatience: 30,
		TaskExpiry:     2,
	}
	workerCells := []guide.CellPlan{
		{ // wc0 = Ŵ00x: slot 0, paper Area0 (= cell 2), two nodes
			Key: timeslot.CellKey{Slot: 0, Area: 2}, Count: 2, Matched: 2,
			Runs: []guide.Run{
				{Offset: 0, Partner: 0, PartnerOffset: 0, Count: 1}, // Ŵ001↔R̂001
				{Offset: 1, Partner: 1, PartnerOffset: 0, Count: 1}, // Ŵ002↔R̂111
			},
		},
		{ // wc1 = Ŵ03x: slot 0, paper Area3 (= cell 1), three nodes
			Key: timeslot.CellKey{Slot: 0, Area: 1}, Count: 3, Matched: 3,
			Runs: []guide.Run{
				{Offset: 0, Partner: 1, PartnerOffset: 1, Count: 2}, // Ŵ031↔R̂112, Ŵ032↔R̂113
				{Offset: 2, Partner: 2, PartnerOffset: 0, Count: 1}, // Ŵ033↔R̂121
			},
		},
	}
	taskCells := []guide.CellPlan{
		{ // tc0 = R̂00x: slot 0, paper Area0
			Key: timeslot.CellKey{Slot: 0, Area: 2}, Count: 1, Matched: 1,
			Runs: []guide.Run{{Offset: 0, Partner: 0, PartnerOffset: 0, Count: 1}},
		},
		{ // tc1 = R̂11x: slot 1, paper Area1 (= cell 3)
			Key: timeslot.CellKey{Slot: 1, Area: 3}, Count: 3, Matched: 3,
			Runs: []guide.Run{
				{Offset: 0, Partner: 0, PartnerOffset: 1, Count: 1},
				{Offset: 1, Partner: 1, PartnerOffset: 0, Count: 2},
			},
		},
		{ // tc2 = R̂12x: slot 1, paper Area2 (= cell 0)
			Key: timeslot.CellKey{Slot: 1, Area: 0}, Count: 1, Matched: 1,
			Runs: []guide.Run{{Offset: 0, Partner: 1, PartnerOffset: 2, Count: 1}},
		},
	}
	g, err := guide.NewManual(cfg, workerCells, taskCells)
	if err != nil {
		t.Fatalf("paper guide rejected: %v", err)
	}
	return g
}

// TestPaperRunningExample reproduces the worked example end to end.
//
// Expected sizes under the paper's own counting (AssumeGuide, which mirrors
// the analysis assumption that guide pairs are feasible in reality):
// SimpleGreedy = 1, POLAR = 4 (Example 5), POLAR-OP = 6 (Example 6),
// OPT = 6 (Example 2).
//
// Note on SimpleGreedy: the paper's Example 2 states matching size 2,
// counting w3→r2 as feasible; the Euclidean distance is √5 ≈ 2.24 > Dr = 2,
// so under the paper's own travel-cost definition (Definition 3) that pair
// is infeasible and greedy matches only w1–r1. We assert the
// geometry-consistent value 1.
func TestPaperRunningExample(t *testing.T) {
	in := paperInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	g := paperGuide(t)

	eng := sim.NewEngine(in, sim.AssumeGuide)

	greedy := eng.Run(NewSimpleGreedy())
	if got := greedy.Matching.Size(); got != 1 {
		t.Errorf("SimpleGreedy = %d, want 1 (paper says 2; see comment)", got)
	}
	if err := greedy.Matching.Validate(in); err != nil {
		t.Errorf("greedy matching invalid: %v", err)
	}

	polar := eng.Run(NewPOLAR(g))
	if got := polar.Matching.Size(); got != 4 {
		t.Errorf("POLAR = %d, want 4 (Example 5)", got)
	}

	polarOp := eng.Run(NewPOLAROP(g))
	if got := polarOp.Matching.Size(); got != 6 {
		t.Errorf("POLAR-OP = %d, want 6 (Example 6)", got)
	}

	opt := OPT(in, OPTOptions{})
	if got := opt.Size(); got != 6 {
		t.Errorf("OPT = %d, want 6 (Example 2)", got)
	}
	if err := opt.Validate(in); err != nil {
		t.Errorf("OPT matching invalid: %v", err)
	}

	gr := eng.Run(NewGR(1))
	if got := gr.Matching.Size(); got > opt.Size() {
		t.Errorf("GR = %d exceeds OPT %d", got, opt.Size())
	}
}

// TestPaperExampleStrict re-runs the guide-based algorithms under Strict
// validation: the discretisation of the guide (slot starts, cell centers)
// makes the w5–r5 pair physically miss its deadline by ~0.35 min, so both
// algorithms lose exactly the matches the paper's assumption papers over.
func TestPaperExampleStrict(t *testing.T) {
	in := paperInstance()
	g := paperGuide(t)
	eng := sim.NewEngine(in, sim.Strict)

	polar := eng.Run(NewPOLAR(g))
	if got := polar.Matching.Size(); got != 3 {
		t.Errorf("strict POLAR = %d, want 3", got)
	}
	if polar.Rejected == 0 {
		t.Error("strict POLAR should have rejected at least one attempt")
	}
	if err := polar.Matching.Validate(in); err != nil {
		t.Errorf("strict POLAR matching invalid: %v", err)
	}

	polarOp := eng.Run(NewPOLAROP(g))
	if got := polarOp.Matching.Size(); got != 4 {
		t.Errorf("strict POLAR-OP = %d, want 4", got)
	}
	if err := polarOp.Matching.Validate(in); err != nil {
		t.Errorf("strict POLAR-OP matching invalid: %v", err)
	}
}

func TestPOLAROPDominatesPOLAROnExample(t *testing.T) {
	in := paperInstance()
	g := paperGuide(t)
	for _, mode := range []sim.Mode{sim.Strict, sim.AssumeGuide} {
		eng := sim.NewEngine(in, mode)
		p := eng.Run(NewPOLAR(g)).Matching.Size()
		op := eng.Run(NewPOLAROP(g)).Matching.Size()
		if op < p {
			t.Errorf("mode %v: POLAR-OP %d < POLAR %d", mode, op, p)
		}
	}
}

func TestOPTExactOnSmallInstances(t *testing.T) {
	// Compare pruned OPT (with and without candidate cap) against a
	// brute-force maximum matching over all feasible pairs.
	in := paperInstance()
	want := bruteForceOPT(in)
	if got := OPT(in, OPTOptions{}).Size(); got != want {
		t.Errorf("OPT = %d, brute force = %d", got, want)
	}
	if got := OPT(in, OPTOptions{MaxCandidates: 3}).Size(); got > want {
		t.Errorf("capped OPT %d exceeds exact %d", got, want)
	}
}

func TestOPTEmpty(t *testing.T) {
	in := &model.Instance{Velocity: 1, Bounds: geo.NewRect(0, 0, 1, 1)}
	if got := OPT(in, OPTOptions{}).Size(); got != 0 {
		t.Errorf("OPT on empty instance = %d", got)
	}
}

func TestGRWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGR(0) should panic")
		}
	}()
	NewGR(0)
}

// TestGRBatchesMatchWithinWindows checks GR on a crafted instance where
// batching succeeds: workers and tasks co-located, generous deadlines.
func TestGRBatchesMatchWithinWindows(t *testing.T) {
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		Horizon:  10,
	}
	for i := 0; i < 5; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID: i, Loc: geo.Pt(float64(i), 0), Arrive: 0.1, Patience: 10,
		})
		in.Tasks = append(in.Tasks, model.Task{
			ID: i, Loc: geo.Pt(float64(i), 0.5), Release: 0.2, Expiry: 5,
		})
	}
	eng := sim.NewEngine(in, sim.Strict)
	res := eng.Run(NewGR(1))
	if got := res.Matching.Size(); got != 5 {
		t.Errorf("GR = %d, want 5", got)
	}
	if err := res.Matching.Validate(in); err != nil {
		t.Error(err)
	}
}

// TestSimpleGreedyPrefersNearest checks the tie between two feasible
// workers goes to the closer one.
func TestSimpleGreedyPrefersNearest(t *testing.T) {
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		Horizon:  10,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Arrive: 0, Patience: 10},
			{ID: 1, Loc: geo.Pt(2, 0), Arrive: 0, Patience: 10},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(3, 0), Release: 1, Expiry: 5},
		},
	}
	eng := sim.NewEngine(in, sim.Strict)
	res := eng.Run(NewSimpleGreedy())
	if res.Matching.Size() != 1 {
		t.Fatalf("size = %d", res.Matching.Size())
	}
	if res.Matching.Pairs[0].Worker != 1 {
		t.Errorf("matched worker %d, want nearest (1)", res.Matching.Pairs[0].Worker)
	}
}

// TestSimpleGreedyWorkerFindsWaitingTask covers the worker-arrival side:
// a task is already waiting when the worker appears.
func TestSimpleGreedyWorkerFindsWaitingTask(t *testing.T) {
	in := &model.Instance{
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		Horizon:  10,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(1, 1), Arrive: 2, Patience: 10},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 2), Release: 0, Expiry: 5},
		},
	}
	eng := sim.NewEngine(in, sim.Strict)
	res := eng.Run(NewSimpleGreedy())
	if res.Matching.Size() != 1 {
		t.Errorf("size = %d, want 1", res.Matching.Size())
	}
}

// bruteForceOPT computes the maximum matching over all feasible pairs with
// Hopcroft–Karp on the full graph — exponential-free but O(W·T) edges, fine
// for tests.
func bruteForceOPT(in *model.Instance) int {
	adj := make([][]int32, len(in.Tasks))
	for t := range in.Tasks {
		for w := range in.Workers {
			if model.Feasible(&in.Workers[w], &in.Tasks[t], in.Velocity) {
				adj[t] = append(adj[t], int32(w))
			}
		}
	}
	size := 0
	matchW := make([]int, len(in.Workers))
	for i := range matchW {
		matchW[i] = -1
	}
	matchT := make([]int, len(in.Tasks))
	for i := range matchT {
		matchT[i] = -1
	}
	var try func(t int, seen []bool) bool
	try = func(t int, seen []bool) bool {
		for _, w := range adj[t] {
			if seen[w] {
				continue
			}
			seen[w] = true
			if matchW[w] == -1 || try(matchW[w], seen) {
				matchW[w] = t
				matchT[t] = int(w)
				return true
			}
		}
		return false
	}
	for t := range in.Tasks {
		seen := make([]bool, len(in.Workers))
		if try(t, seen) {
			size++
		}
	}
	return size
}
