package core

import (
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/mathx"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
	"ftoa/internal/workload"
)

func buildFixture(t *testing.T) (workload.Synthetic, *geo.Grid, *timeslot.Slotting, []int, []int) {
	t.Helper()
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers = 1500
	cfg.NumTasks = 1500
	grid := geo.NewGrid(cfg.Bounds(), 14, 14)
	slots := timeslot.New(cfg.Horizon, 48)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	return cfg, grid, slots, wc, tc
}

func buildGuideFrom(t *testing.T, cfg workload.Synthetic, grid *geo.Grid, slots *timeslot.Slotting, wc, tc []int) *guide.Guide {
	t.Helper()
	g, err := guide.Build(guide.Config{
		Grid:            grid,
		Slots:           slots,
		Velocity:        cfg.Velocity,
		WorkerPatience:  cfg.WorkerPatience,
		TaskExpiry:      cfg.TaskExpiry,
		MaxEdgesPerCell: 128,
		RepSlack:        slots.Width() / 2,
	}, wc, tc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runOn(t *testing.T, cfg workload.Synthetic, g *guide.Guide) (polar, polarOp int) {
	t.Helper()
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(in, sim.AssumeGuide)
	return eng.Run(NewPOLAR(g)).Matching.Size(), eng.Run(NewPOLAROP(g)).Matching.Size()
}

// TestUnderPredictionHurtsPOLARMorethanOP injects 0.5× under-prediction:
// half the actual objects have no node of their type. POLAR (occupy-once)
// must degrade more than POLAR-OP (reusable nodes) — the entire motivation
// for Algorithm 3 ("to deal with the cases where the number of the actual
// tasks/workers exceeds the predicted estimates").
func TestUnderPredictionHurtsPOLARMoreThanOP(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	base := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	pBase, opBase := runOn(t, cfg, base)

	halve := func(xs []int) []int {
		out := make([]int, len(xs))
		for i, v := range xs {
			out[i] = v / 2
		}
		return out
	}
	under := buildGuideFrom(t, cfg, grid, slots, halve(wc), halve(tc))
	pUnder, opUnder := runOn(t, cfg, under)

	if pUnder >= pBase {
		t.Errorf("POLAR did not degrade under 0.5x prediction: %d -> %d", pBase, pUnder)
	}
	// Relative retention: POLAR-OP must keep a larger share of its
	// baseline than POLAR keeps of its own.
	polarLoss := float64(pUnder) / float64(pBase)
	opLoss := float64(opUnder) / float64(opBase)
	if opLoss <= polarLoss {
		t.Errorf("POLAR-OP retention %.3f not above POLAR retention %.3f", opLoss, polarLoss)
	}
}

// TestOverPredictionDegradesGracefully injects 2× over-prediction: phantom
// nodes absorb arrivals and dilute POLAR's pairing, but nothing should
// crash and POLAR-OP should stay within a modest factor of its baseline.
func TestOverPredictionDegradesGracefully(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	base := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	_, opBase := runOn(t, cfg, base)

	double := func(xs []int) []int {
		out := make([]int, len(xs))
		for i, v := range xs {
			out[i] = v * 2
		}
		return out
	}
	over := buildGuideFrom(t, cfg, grid, slots, double(wc), double(tc))
	_, opOver := runOn(t, cfg, over)
	if opOver == 0 {
		t.Fatal("POLAR-OP collapsed entirely under 2x over-prediction")
	}
	if float64(opOver) < 0.3*float64(opBase) {
		t.Errorf("POLAR-OP lost more than 70%% under over-prediction: %d -> %d", opBase, opOver)
	}
}

// TestShuffledPredictionIsWorseThanAccurate destroys the spatial structure
// of the prediction (random permutation of cells within each slot) and
// checks that both algorithms lose matches relative to the accurate guide,
// while the engine still never produces an invalid matching in strict mode.
func TestShuffledPredictionIsWorseThanAccurate(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	base := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	_, opBase := runOn(t, cfg, base)

	rng := mathx.NewRNG(99)
	shuffle := func(xs []int) []int {
		out := append([]int(nil), xs...)
		areas := grid.NumCells()
		for s := 0; s < slots.Count; s++ {
			seg := out[s*areas : (s+1)*areas]
			rng.Shuffle(len(seg), func(i, j int) { seg[i], seg[j] = seg[j], seg[i] })
		}
		return out
	}
	bad := buildGuideFrom(t, cfg, grid, slots, shuffle(wc), shuffle(tc))
	_, opBad := runOn(t, cfg, bad)
	if opBad >= opBase {
		t.Errorf("shuffled prediction did not hurt POLAR-OP: %d vs %d", opBad, opBase)
	}

	// Strict mode with a garbage guide must still yield a valid matching.
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(in, sim.Strict)
	res := eng.Run(NewPOLAROP(bad))
	if err := res.Matching.Validate(in); err != nil {
		t.Errorf("strict matching invalid under shuffled prediction: %v", err)
	}
}

// TestStrictNeverExceedsAssumeGuide: the honest validation can only reject
// matches the paper counting accepts.
func TestStrictNeverExceedsAssumeGuide(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	g := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range map[string]func() sim.Algorithm{
		"POLAR":    func() sim.Algorithm { return NewPOLAR(g) },
		"POLAR-OP": func() sim.Algorithm { return NewPOLAROP(g) },
	} {
		strict := sim.NewEngine(in, sim.Strict).Run(mk()).Matching.Size()
		assume := sim.NewEngine(in, sim.AssumeGuide).Run(mk()).Matching.Size()
		if strict > assume {
			t.Errorf("%s: strict (%d) above assume-guide (%d)", name, strict, assume)
		}
	}
}
