package core

import (
	"ftoa/internal/flow"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// GR is the batch-window baseline of To, Shahabi and Kazemi (ACM TSAS
// 2015), the state-of-the-art dynamic assignment algorithm the paper
// compares against: arrivals are gathered into fixed time windows and a
// maximum matching among the currently available workers and tasks is
// committed at every window boundary. Workers wait in place between
// batches (no relocation).
type GR struct {
	p      sim.Platform
	window float64

	waitingWorkers []int32
	waitingTasks   []int32

	// ix is the per-session candidate index, created at the first flush
	// and Reset between windows so steady-state flushes allocate nothing
	// for spatial lookups. ixSizedFor records the population it was sized
	// for, so a bursty window that dwarfs the estimate triggers a
	// re-grid instead of degenerating to over-full buckets.
	ix         *spatial.Index
	ixSizedFor int
	adj        [][]int32
	cands      []int
	// hk keeps the Hopcroft–Karp scratch (match arrays, BFS levels and
	// queue) alive across batch windows — the same reusable-scratch
	// treatment Dinic received — so steady-state flushes run the matching
	// with zero allocations beyond adjacency growth.
	hk flow.BipartiteMatcher
}

// NewGR creates a GR instance with the given batching window (in the same
// time units as the instance). Window must be positive.
func NewGR(window float64) *GR {
	if window <= 0 {
		panic("core: GR window must be positive")
	}
	return &GR{window: window}
}

// Name implements sim.Algorithm.
func (a *GR) Name() string { return "GR" }

// Init implements sim.Algorithm.
func (a *GR) Init(p sim.Platform) {
	a.p = p
	a.waitingWorkers = a.waitingWorkers[:0]
	a.waitingTasks = a.waitingTasks[:0]
	a.ix = nil // the service area (and bounds) may differ between sessions
	p.Schedule(a.window)
}

// OnWorkerArrival implements sim.Algorithm.
func (a *GR) OnWorkerArrival(w int, now float64) {
	a.waitingWorkers = append(a.waitingWorkers, int32(w))
}

// OnTaskArrival implements sim.Algorithm.
func (a *GR) OnTaskArrival(t int, now float64) {
	a.waitingTasks = append(a.waitingTasks, int32(t))
}

// OnTimer implements sim.TimerAlgorithm: a window boundary.
func (a *GR) OnTimer(now float64) {
	a.flush(now)
	a.p.Schedule(now + a.window)
}

// OnFinish implements sim.Algorithm: match whatever is still pending.
func (a *GR) OnFinish(now float64) {
	a.flush(now)
}

// Remap implements sim.RetirableAlgorithm: the waiting lists are rebased
// in place, dropping retired handles. flush compacts the very same
// entries (a retired object fails its availability check) in the same
// order, so a window flushed after a retirement commits exactly what it
// would have without one — including when the retirement lands between
// Schedule and the pending OnTimer. The batch index is rebuilt from local
// ids every flush and needs no remapping.
func (a *GR) Remap(workers, tasks []int32) {
	a.waitingWorkers = remapHandles(a.waitingWorkers, workers)
	a.waitingTasks = remapHandles(a.waitingTasks, tasks)
}

// OnWorkerWithdraw implements sim.WithdrawAwareAlgorithm. GR keeps no
// per-object state beyond the waiting lists, and flush already compacts
// every entry that fails its availability check — which a withdrawn
// object does — at the next window boundary, so eager removal would only
// duplicate that sweep. Deliberately a no-op.
func (a *GR) OnWorkerWithdraw(w int, now float64) {}

// OnTaskWithdraw is OnWorkerWithdraw for the task side.
func (a *GR) OnTaskWithdraw(t int, now float64) {}

// flush runs a maximum matching over the currently available waiting
// objects and commits it.
func (a *GR) flush(now float64) {
	velocity := a.p.Velocity()

	// Compact away objects that are matched or expired.
	liveW := a.waitingWorkers[:0]
	for _, w := range a.waitingWorkers {
		if a.p.WorkerAvailable(int(w), now) {
			liveW = append(liveW, w)
		}
	}
	a.waitingWorkers = liveW
	liveT := a.waitingTasks[:0]
	for _, t := range a.waitingTasks {
		if a.p.TaskAvailable(int(t), now) {
			liveT = append(liveT, t)
		}
	}
	a.waitingTasks = liveT
	if len(liveW) == 0 || len(liveT) == 0 {
		return
	}

	// Candidate edges via the session-lifetime spatial index over waiting
	// workers, sized for the expected batch population and Reset between
	// windows so steady-state flushes reuse all of its storage. A batch
	// that outgrows the sizing estimate 4× (bursty arrivals) re-grids at
	// the observed population rather than scanning over-full buckets for
	// the rest of the session.
	if a.ix == nil || len(liveW) > 4*a.ixSizedFor {
		expected := len(liveW)
		h := a.p.Hints()
		if h.Horizon > 0 && h.ExpectedWorkers > 0 {
			if e := int(float64(h.ExpectedWorkers) * a.window / h.Horizon); e > expected {
				expected = e
			}
		}
		a.ixSizedFor = expected
		a.ix = spatial.NewIndex(a.p.Bounds(), expected)
	} else {
		a.ix.Reset()
	}
	for li, w := range liveW {
		a.ix.Insert(li, a.p.Worker(int(w)).Loc) // ids are local batch indices
	}
	if cap(a.adj) >= len(liveT) {
		a.adj = a.adj[:len(liveT)]
		for i := range a.adj {
			a.adj[i] = a.adj[i][:0]
		}
	} else {
		a.adj = make([][]int32, len(liveT))
	}
	adj := a.adj
	for ti, t := range liveT {
		task := a.p.Task(int(t))
		budget := task.Deadline() - now
		if budget < 0 {
			continue
		}
		a.cands = a.ix.Within(task.Loc, budget*velocity, a.cands[:0])
		for _, li := range a.cands {
			w := liveW[li]
			worker := a.p.Worker(int(w))
			if model.FeasibleAt(worker, task, worker.Loc, now, velocity) {
				adj[ti] = append(adj[ti], int32(li))
			}
		}
	}

	matchT, _, _ := a.hk.Match(len(liveT), len(liveW), adj)
	for ti, li := range matchT {
		if li < 0 {
			continue
		}
		a.p.TryMatch(int(liveW[li]), int(liveT[ti]), now)
	}
	// Matched objects are filtered out at the next flush via availability.
}
