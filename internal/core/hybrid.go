package core

import (
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// Hybrid is an extension beyond the paper: POLAR-OP with a SimpleGreedy
// fallback. Arrivals are first processed through the offline guide exactly
// like POLAR-OP; when the guide yields nothing — the object's type was not
// predicted, its partner cells hold no usable waiter, or (in strict mode)
// every guide-suggested pair fails the physical feasibility check — the
// object falls back to nearest-feasible-neighbour matching over the pool of
// *all* waiting objects.
//
// The motivation comes from the reproduction itself: with an oracle guide
// POLAR-OP tracks OPT, and its losses under learned predictions are exactly
// the arrivals the guide mishandles. Recovering those greedily preserves
// the O(1)-ish fast path (the fallback search only runs on guide misses)
// and can only add matches, so every competitive-ratio guarantee of
// POLAR-OP carries over.
type Hybrid struct {
	op              *POLAROP
	p               sim.Platform
	fallbackMatches int

	waitingWorkers *spatial.Index
	waitingTasks   *spatial.Index
	// maxTaskBudget is the running max of Dr over admitted tasks; see the
	// SimpleGreedy field of the same name for why the running max prunes
	// exactly the same candidates as the closed-world peek did.
	maxTaskBudget float64
	deadIDs       []int
}

// NewHybrid creates the extension bound to an offline guide.
func NewHybrid(g *guide.Guide) *Hybrid { return &Hybrid{op: NewPOLAROP(g)} }

// Name implements sim.Algorithm.
func (a *Hybrid) Name() string { return "POLAR-OP+G" }

// FallbackMatches reports how many commits came from the greedy fallback
// in the last run — the "guide miss" rate the extension recovers.
func (a *Hybrid) FallbackMatches() int { return a.fallbackMatches }

// Init implements sim.Algorithm.
func (a *Hybrid) Init(p sim.Platform) {
	a.p = p
	a.op.Init(p)
	h := p.Hints()
	a.waitingWorkers = spatial.NewIndex(p.Bounds(), expectedOr(h.ExpectedWorkers, defaultIndexCapacity))
	a.waitingTasks = spatial.NewIndex(p.Bounds(), expectedOr(h.ExpectedTasks, defaultIndexCapacity))
	a.maxTaskBudget = 0
	a.fallbackMatches = 0
}

// OnWorkerArrival implements sim.Algorithm.
func (a *Hybrid) OnWorkerArrival(w int, now float64) {
	a.op.OnWorkerArrival(w, now)
	if workerMatched(a.p, w) {
		return // the guide path matched it
	}
	// Guide miss: try the greedy fallback over all waiting tasks.
	worker := a.p.Worker(w)
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	pos := a.p.WorkerPos(w, now)
	t, _ := a.waitingTasks.Nearest(pos, a.maxTaskBudget*velocity, func(t int) bool {
		if !a.p.TaskAvailable(t, now) {
			a.deadIDs = append(a.deadIDs, t)
			return false
		}
		return model.FeasibleAt(worker, a.p.Task(t), pos, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingTasks.Remove(id)
	}
	if t >= 0 && a.p.TryMatch(w, t, now) {
		a.waitingTasks.Remove(t)
		a.fallbackMatches++
		return
	}
	// Still unmatched: track it for future fallbacks. The guide may have
	// dispatched it; index its initial position and let feasibility checks
	// use live positions.
	a.waitingWorkers.Insert(w, worker.Loc)
}

// OnTaskArrival implements sim.Algorithm.
func (a *Hybrid) OnTaskArrival(t int, now float64) {
	task := a.p.Task(t)
	if task.Expiry > a.maxTaskBudget {
		a.maxTaskBudget = task.Expiry
	}
	a.op.OnTaskArrival(t, now)
	if taskMatched(a.p, t) {
		return
	}
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	w, _ := a.waitingWorkers.Nearest(task.Loc, task.Expiry*velocity*2, func(w int) bool {
		if !a.p.WorkerAvailable(w, now) {
			a.deadIDs = append(a.deadIDs, w)
			return false
		}
		return model.FeasibleAt(a.p.Worker(w), task, a.p.WorkerPos(w, now), now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingWorkers.Remove(id)
	}
	if w >= 0 && a.p.TryMatch(w, t, now) {
		a.waitingWorkers.Remove(w)
		a.fallbackMatches++
		return
	}
	a.waitingTasks.Insert(t, task.Loc)
}

// OnFinish implements sim.Algorithm.
func (a *Hybrid) OnFinish(now float64) { a.op.OnFinish(now) }

// Remap implements sim.RetirableAlgorithm: both halves rebase — the
// guide-path queues via POLAROP's remap and the fallback waiting indexes
// via the spatial re-key.
func (a *Hybrid) Remap(workers, tasks []int32) {
	a.op.Remap(workers, tasks)
	a.waitingWorkers.Remap(workers)
	a.waitingTasks.Remap(tasks)
}

// OnWorkerWithdraw implements sim.WithdrawAwareAlgorithm: both halves
// retract — the guide-path queue entry sentinels via POLAROP's hook and
// the fallback waiting index drops the id.
func (a *Hybrid) OnWorkerWithdraw(w int, now float64) {
	a.op.OnWorkerWithdraw(w, now)
	a.waitingWorkers.Remove(w)
}

// OnTaskWithdraw is OnWorkerWithdraw for the task side.
func (a *Hybrid) OnTaskWithdraw(t int, now float64) {
	a.op.OnTaskWithdraw(t, now)
	a.waitingTasks.Remove(t)
}

// workerMatched and taskMatched probe availability at time 0 as a cheap
// "has a match been committed for this object" signal: at time 0 no
// deadline has passed, so unavailability can only come from the matched
// flag. An object available before the guide-path call and unavailable
// afterwards was matched by it.
func workerMatched(p sim.Platform, w int) bool { return !p.WorkerAvailable(w, 0) }

func taskMatched(p sim.Platform, t int) bool { return !p.TaskAvailable(t, 0) }

var _ sim.Algorithm = (*Hybrid)(nil)
