package core

import (
	"testing"

	"ftoa/internal/sim"
)

// TestHybridDominatesBothParents: on the default workload the hybrid must
// match at least as much as POLAR-OP and as SimpleGreedy — it takes every
// guide match and recovers misses greedily.
func TestHybridDominatesBothParents(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	g := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		eng := sim.NewEngine(in, mode)
		op := eng.Run(NewPOLAROP(g)).Matching.Size()
		greedy := eng.Run(NewSimpleGreedy()).Matching.Size()
		hybridAlg := NewHybrid(g)
		res := eng.Run(hybridAlg)
		hybrid := res.Matching.Size()
		if err := res.Matching.Validate(in); err != nil && mode == sim.Strict {
			t.Errorf("mode %v: invalid hybrid matching: %v", mode, err)
		}
		if hybrid < op {
			t.Errorf("mode %v: hybrid (%d) below POLAR-OP (%d)", mode, hybrid, op)
		}
		// The fallback should contribute something whenever the guide
		// leaves gaps (it does on this workload).
		if hybridAlg.FallbackMatches() == 0 {
			t.Errorf("mode %v: fallback never fired", mode)
		}
		t.Logf("mode %v: greedy=%d polar-op=%d hybrid=%d (fallback %d)",
			mode, greedy, op, hybrid, hybridAlg.FallbackMatches())
	}
}

// TestHybridOnPaperExample: on the running example the hybrid reaches the
// optimum like POLAR-OP (the guide alone already achieves it).
func TestHybridOnPaperExample(t *testing.T) {
	in := paperInstance()
	g := paperGuide(t)
	eng := sim.NewEngine(in, sim.AssumeGuide)
	res := eng.Run(NewHybrid(g))
	if got := res.Matching.Size(); got != 6 {
		t.Errorf("hybrid = %d, want 6", got)
	}
}

// TestHybridWithEmptyGuide degenerates to pure greedy behaviour.
func TestHybridWithEmptyGuide(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	for i := range wc {
		wc[i] = 0
	}
	for i := range tc {
		tc[i] = 0
	}
	g := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(in, sim.Strict)
	hybrid := eng.Run(NewHybrid(g)).Matching.Size()
	greedy := eng.Run(NewSimpleGreedy()).Matching.Size()
	// With no guide at all, the hybrid is greedy with a slightly different
	// radius bound; it must land in the same neighbourhood.
	if hybrid < greedy*9/10 {
		t.Errorf("empty-guide hybrid (%d) far below greedy (%d)", hybrid, greedy)
	}
}
