package core

import (
	"sort"
	"testing"

	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// sixAlgorithms returns fresh instances of every online algorithm, bound
// to a guide built for cfg where one is needed.
func sixAlgorithms(t *testing.T, cfg workload.Synthetic) []struct {
	name string
	mk   func() sim.Algorithm
} {
	t.Helper()
	g := parityGuide(t, cfg)
	return []struct {
		name string
		mk   func() sim.Algorithm
	}{
		{"POLAR", func() sim.Algorithm { return NewPOLAR(g) }},
		{"POLAR-OP", func() sim.Algorithm { return NewPOLAROP(g) }},
		{"SimpleGreedy", func() sim.Algorithm { return NewSimpleGreedy() }},
		{"GR", func() sim.Algorithm { return NewGR(cfg.Horizon / 40) }},
		{"Hybrid", func() sim.Algorithm { return NewHybrid(g) }},
		{"TGOA", func() sim.Algorithm { return NewTGOA() }},
	}
}

func sessionMatcher(t *testing.T, in *model.Instance, mode sim.Mode) *sim.Matcher {
	t.Helper()
	m, err := sim.NewMatcher(sim.MatcherConfig{
		Mode:     mode,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: sim.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func feedInstance(t *testing.T, s *sim.Session, in *model.Instance) {
	t.Helper()
	for _, ev := range in.Events() {
		var err error
		switch ev.Kind {
		case model.WorkerArrival:
			_, err = s.AddWorker(in.Workers[ev.Index])
		case model.TaskArrival:
			_, err = s.AddTask(in.Tasks[ev.Index])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionEdgePathsAllAlgorithms drives every online algorithm through
// the session edge paths a live deployment hits: out-of-order arrivals
// (clamped monotone, never rejected), admissions after Finish (always
// ErrFinished), and Reset reuse (a second identical run on the same
// session matches identically).
func TestSessionEdgePathsAllAlgorithms(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 120, 120
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sixAlgorithms(t, cfg) {
		t.Run(a.name, func(t *testing.T) {
			m := sessionMatcher(t, in, sim.Strict)
			s := m.NewSession(a.mk())

			// Out-of-order arrivals: feed the instance in recorded-index
			// order instead of time order. Every admission must succeed,
			// with past timestamps clamped to the session clock.
			for i := range in.Workers {
				if _, err := s.AddWorker(in.Workers[i]); err != nil {
					t.Fatalf("unordered worker %d: %v", i, err)
				}
			}
			clockAfterWorkers := s.Now()
			for i := range in.Tasks {
				h, err := s.AddTask(in.Tasks[i])
				if err != nil {
					t.Fatalf("unordered task %d: %v", i, err)
				}
				if got := s.Task(h).Release; got < clockAfterWorkers {
					t.Fatalf("task %d admitted at %v, before the clock %v it arrived under", i, got, clockAfterWorkers)
				}
			}
			prev := s.Now()
			for h := 0; h < s.NumWorkers(); h++ {
				if s.Worker(h).Arrive > prev {
					t.Fatalf("worker %d carries arrive %v beyond the final clock %v", h, s.Worker(h).Arrive, prev)
				}
			}

			// Post-Finish admissions: ErrFinished on both sides.
			s.Finish()
			if _, err := s.AddWorker(in.Workers[0]); err != sim.ErrFinished {
				t.Fatalf("AddWorker after Finish: %v, want ErrFinished", err)
			}
			if _, err := s.AddTask(in.Tasks[0]); err != sim.ErrFinished {
				t.Fatalf("AddTask after Finish: %v, want ErrFinished", err)
			}

			// Reset reuse: two identical time-ordered runs on the SAME
			// session (fresh algorithm instances) must match identically.
			s.Reset(a.mk())
			feedInstance(t, s, in)
			s.Finish()
			first := sortedPairs(s.Matching())
			firstExpW, firstExpT := s.ExpiredWorkers(), s.ExpiredTasks()
			if len(first) == 0 {
				t.Fatal("degenerate: no matches after reset")
			}
			s.Reset(a.mk())
			feedInstance(t, s, in)
			s.Finish()
			second := sortedPairs(s.Matching())
			if len(first) != len(second) {
				t.Fatalf("reset run matched %d, want %d", len(second), len(first))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("pair %d differs across Reset: %+v vs %+v", i, first[i], second[i])
				}
			}
			if s.ExpiredWorkers() != firstExpW || s.ExpiredTasks() != firstExpT {
				t.Fatalf("expiries differ across Reset: %d/%d vs %d/%d",
					s.ExpiredWorkers(), s.ExpiredTasks(), firstExpW, firstExpT)
			}
		})
	}
}

// expiryKey identifies one expiry event for set comparison.
type expiryKey struct {
	kind   sim.SessionEventKind
	handle int
	time   float64
}

// TestExpiryEventsMatchOracle is the acceptance gate for the lifecycle
// stream: for every algorithm and both validation modes, the expiry
// events a session emits must exactly equal a brute-force oracle computed
// from deadlines, commit times and the session end:
//
//   - a worker expires iff its deadline D <= end and it was not matched
//     strictly before D (WorkerAvailable's now < deadline boundary);
//   - a task expires iff its deadline D <= end and it was not matched at
//     or before D (TaskAvailable's now <= deadline boundary).
//
// The matching itself must be identical to an event-free session's — the
// expiry machinery is observational only.
func TestExpiryEventsMatchOracle(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 250, 250
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		for _, a := range sixAlgorithms(t, cfg) {
			t.Run(a.name+"/"+mode.String(), func(t *testing.T) {
				s := sessionMatcher(t, in, mode).NewSession(a.mk())
				feedInstance(t, s, in)
				s.Finish()
				end := s.Now()

				events := s.DrainEvents(nil)
				wMatchAt := make(map[int]float64)
				tMatchAt := make(map[int]float64)
				var got []expiryKey
				for _, ev := range events {
					switch ev.Kind {
					case sim.EventMatch:
						wMatchAt[ev.Worker] = ev.Time
						tMatchAt[ev.Task] = ev.Time
					case sim.EventWorkerExpired:
						got = append(got, expiryKey{ev.Kind, ev.Worker, ev.Time})
					case sim.EventTaskExpired:
						got = append(got, expiryKey{ev.Kind, ev.Task, ev.Time})
					}
				}
				if len(wMatchAt) != s.Matching().Size() {
					t.Fatalf("stream has %d matches, session %d", len(wMatchAt), s.Matching().Size())
				}

				var want []expiryKey
				for h := 0; h < s.NumWorkers(); h++ {
					d := s.Worker(h).Deadline()
					if d > end {
						continue
					}
					if mt, ok := wMatchAt[h]; ok && mt < d {
						continue
					}
					want = append(want, expiryKey{sim.EventWorkerExpired, h, d})
				}
				for h := 0; h < s.NumTasks(); h++ {
					d := s.Task(h).Deadline()
					if d > end {
						continue
					}
					if mt, ok := tMatchAt[h]; ok && mt <= d {
						continue
					}
					want = append(want, expiryKey{sim.EventTaskExpired, h, d})
				}
				sortKeys := func(ks []expiryKey) {
					sort.Slice(ks, func(i, j int) bool {
						if ks[i].kind != ks[j].kind {
							return ks[i].kind < ks[j].kind
						}
						return ks[i].handle < ks[j].handle
					})
				}
				sortKeys(got)
				sortKeys(want)
				if len(got) != len(want) {
					t.Fatalf("session emitted %d expiries, oracle says %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("expiry %d = %+v, oracle %+v", i, got[i], want[i])
					}
				}
				if len(want) == 0 {
					t.Fatal("degenerate oracle: no expiries in the workload")
				}
				if s.ExpiredWorkers()+s.ExpiredTasks() != len(want) {
					t.Fatalf("expiry counters %d+%d != %d events",
						s.ExpiredWorkers(), s.ExpiredTasks(), len(want))
				}
			})
		}
	}
}
