package core

import (
	"cmp"
	"slices"

	"ftoa/internal/flow"
	"ftoa/internal/model"
	"ftoa/internal/spatial"
)

// OPTOptions tunes the offline optimum computation.
type OPTOptions struct {
	// MaxCandidates caps the number of feasible workers considered per
	// task. Zero or negative means unlimited (exact OPT, potentially
	// quadratic). Candidate selection is degree-balanced: each task keeps
	// its nearest feasible workers, but workers already referenced by
	// MaxCandidates other tasks are skipped while the task still has
	// alternatives — a one-sided nearest-K cap would concentrate every
	// task in a dense hotspot onto the same few central workers and
	// cripple the matching. See DESIGN.md §3.3.
	MaxCandidates int
}

// OPT computes the offline optimal matching size of Definition 5's
// denominator: the maximum matching over all pairs satisfying the
// Definition 4 predicate, with full knowledge of future arrivals and ideal
// worker pre-movement. The paper computes it with a max-flow over the full
// bipartite graph; this implementation prunes candidate edges with a
// time-bucketed spatial index and runs Hopcroft–Karp.
func OPT(in *model.Instance, opts OPTOptions) model.Matching {
	nw, nt := len(in.Workers), len(in.Tasks)
	if nw == 0 || nt == 0 {
		return model.Matching{}
	}

	// Workers are bucketed by arrival time so a task only probes buckets
	// overlapping its feasibility window Sw ∈ (Sr − Dw, Sr + Dr].
	minArr, maxArr := in.Workers[0].Arrive, in.Workers[0].Arrive
	maxPatience := 0.0
	for i := range in.Workers {
		w := &in.Workers[i]
		if w.Arrive < minArr {
			minArr = w.Arrive
		}
		if w.Arrive > maxArr {
			maxArr = w.Arrive
		}
		if w.Patience > maxPatience {
			maxPatience = w.Patience
		}
	}
	span := maxArr - minArr
	nBuckets := nw / 256
	if nBuckets < 1 {
		nBuckets = 1
	}
	if nBuckets > 256 {
		nBuckets = 256
	}
	if span <= 0 {
		nBuckets = 1
	}
	bucketOf := func(tm float64) int {
		if span <= 0 {
			return 0
		}
		b := int((tm - minArr) / span * float64(nBuckets))
		if b < 0 {
			return 0
		}
		if b >= nBuckets {
			return nBuckets - 1
		}
		return b
	}
	buckets := make([]*spatial.Index, nBuckets)
	counts := make([]int, nBuckets)
	for i := range in.Workers {
		counts[bucketOf(in.Workers[i].Arrive)]++
	}
	for b := range buckets {
		buckets[b] = spatial.NewIndex(in.Bounds, counts[b])
	}
	for i := range in.Workers {
		buckets[bucketOf(in.Workers[i].Arrive)].Insert(i, in.Workers[i].Loc)
	}

	type cand struct {
		w    int32
		dist float64
	}
	adj := make([][]int32, nt)
	var workerDeg []int32
	if opts.MaxCandidates > 0 {
		workerDeg = make([]int32, nw)
	}
	// minKeep edges are kept per task even through saturated workers, so
	// no task is disconnected by the balancing.
	minKeep := 8
	if opts.MaxCandidates > 0 && opts.MaxCandidates < minKeep {
		minKeep = opts.MaxCandidates
	}
	var cands []cand
	var ids []int
	// Tasks are processed in release order (they already are: generators
	// emit them unsorted in general, so sort an index) to keep the degree
	// balancing deterministic and unbiased across the timeline.
	order := make([]int, nt)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if c := cmp.Compare(in.Tasks[a].Release, in.Tasks[b].Release); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	for _, t := range order {
		task := &in.Tasks[t]
		// Feasible workers satisfy Sw ∈ (Sr − Dw, Sr + Dr]; within that
		// window the travel budget is at most Sr + Dr − Sw < Dw + Dr.
		lo := bucketOf(task.Release - maxPatience)
		hi := bucketOf(task.Release + task.Expiry)
		maxRadius := (task.Expiry + maxPatience) * in.Velocity
		cands = cands[:0]
		for b := lo; b <= hi; b++ {
			ids = buckets[b].Within(task.Loc, maxRadius, ids[:0])
			for _, w := range ids {
				worker := &in.Workers[w]
				if model.Feasible(worker, task, in.Velocity) {
					cands = append(cands, cand{w: int32(w), dist: worker.Loc.Dist(task.Loc)})
				}
			}
		}
		if opts.MaxCandidates <= 0 || len(cands) <= opts.MaxCandidates {
			edges := make([]int32, len(cands))
			for i, c := range cands {
				edges[i] = c.w
			}
			adj[t] = edges
			if workerDeg != nil {
				for _, c := range cands {
					workerDeg[c.w]++
				}
			}
			continue
		}
		slices.SortFunc(cands, func(a, b cand) int { return cmp.Compare(a.dist, b.dist) })
		adj[t] = make([]int32, 0, opts.MaxCandidates)
		// First pass: nearest workers with spare degree.
		for _, c := range cands {
			if len(adj[t]) >= opts.MaxCandidates {
				break
			}
			if workerDeg[c.w] >= int32(opts.MaxCandidates) {
				continue
			}
			adj[t] = append(adj[t], c.w)
			workerDeg[c.w]++
		}
		// Second pass: guarantee minimum connectivity through saturated
		// workers if balancing left the task nearly edgeless.
		for _, c := range cands {
			if len(adj[t]) >= minKeep {
				break
			}
			present := false
			for _, w := range adj[t] {
				if w == c.w {
					present = true
					break
				}
			}
			if !present {
				adj[t] = append(adj[t], c.w)
				workerDeg[c.w]++
			}
		}
	}

	matchT, _, _ := flow.HopcroftKarp(nt, nw, adj)
	var m model.Matching
	for t, w := range matchT {
		if w >= 0 {
			m.Add(int(w), t)
		}
	}
	return m
}
