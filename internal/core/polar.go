package core

import (
	"ftoa/internal/guide"
	"ftoa/internal/sim"
)

// POLAR is Algorithm 2: each arriving object occupies at most one node of
// its (slot, area) type in the offline guide; if the occupied node's
// pre-paired partner node is already occupied, the two occupants are
// matched; otherwise a worker is dispatched toward the partner's area and
// a task waits. Objects that find no unoccupied node of their type are
// ignored (the prediction underestimated their cell). Every arrival is
// processed in O(1).
type POLAR struct {
	g *guide.Guide
	p sim.Platform

	wCells []polarCell
	tCells []polarCell
}

// polarCell is the online occupation state of one guide cell.
type polarCell struct {
	occupants []int32 // object index occupying node k, in occupation order
	cursor    runCursor
}

// NewPOLAR creates a POLAR instance bound to an offline guide. The guide
// is read-only and may be shared across runs and algorithms.
func NewPOLAR(g *guide.Guide) *POLAR { return &POLAR{g: g} }

// Name implements sim.Algorithm.
func (a *POLAR) Name() string { return "POLAR" }

// Init implements sim.Algorithm.
func (a *POLAR) Init(p sim.Platform) {
	a.p = p
	a.wCells = make([]polarCell, len(a.g.WorkerCells))
	a.tCells = make([]polarCell, len(a.g.TaskCells))
}

// OnWorkerArrival implements sim.Algorithm.
func (a *POLAR) OnWorkerArrival(w int, now float64) {
	slot, area := locateWorker(a.g, a.p.Worker(w))
	cid := a.g.WorkerCellID(slot, area)
	if cid < 0 {
		return // no node of this type: ignore (Algorithm 2, line 3 failure)
	}
	plan := &a.g.WorkerCells[cid]
	cell := &a.wCells[cid]
	if int32(len(cell.occupants)) >= plan.Count {
		return // all nodes of the type occupied: ignore
	}
	cell.occupants = append(cell.occupants, int32(w))
	partnerCell, partnerNode, matched := cell.cursor.next(plan)
	if !matched {
		return // unmatched guide node: the worker simply waits in place
	}
	tPlan := &a.g.TaskCells[partnerCell]
	tCell := &a.tCells[partnerCell]
	if partnerNode < int32(len(tCell.occupants)) {
		// Partner node already occupied by an actual task: assign. A
		// retired occupant (negative after Remap) was matched or dead, so
		// the TryMatch it stands in for could only ever have been refused.
		if occ := tCell.occupants[partnerNode]; occ >= 0 {
			a.p.TryMatch(w, int(occ), now)
		}
		return
	}
	// Partner task not here yet: dispatch the worker toward its area
	// (staying put when the predicted task is in the worker's own area).
	if tPlan.Key.Area != area {
		a.p.Dispatch(w, a.g.Cfg.Grid.Center(tPlan.Key.Area), now)
	}
}

// OnTaskArrival implements sim.Algorithm.
func (a *POLAR) OnTaskArrival(t int, now float64) {
	slot, area := locateTask(a.g, a.p.Task(t))
	cid := a.g.TaskCellID(slot, area)
	if cid < 0 {
		return
	}
	plan := &a.g.TaskCells[cid]
	cell := &a.tCells[cid]
	if int32(len(cell.occupants)) >= plan.Count {
		return
	}
	cell.occupants = append(cell.occupants, int32(t))
	partnerCell, partnerNode, matched := cell.cursor.next(plan)
	if !matched {
		return // unmatched node: the task waits until its deadline
	}
	wCell := &a.wCells[partnerCell]
	if partnerNode < int32(len(wCell.occupants)) {
		if occ := wCell.occupants[partnerNode]; occ >= 0 {
			a.p.TryMatch(int(occ), t, now)
		}
	}
	// Otherwise the paired worker has not arrived yet; the task waits and
	// will be found by the worker when (if) it arrives.
}

// OnFinish implements sim.Algorithm.
func (a *POLAR) OnFinish(now float64) {}

// Remap implements sim.RetirableAlgorithm. Occupation is positional — a
// cell's k-th occupant answers for guide node k — so retired occupants
// must keep their slot: they are replaced by a negative sentinel rather
// than removed, and the match paths above skip the (always-doomed)
// TryMatch against them. Occupant lists are bounded by the guide's node
// counts, so the sentinels cost no growth.
func (a *POLAR) Remap(workers, tasks []int32) {
	remapOccupants(a.wCells, workers)
	remapOccupants(a.tCells, tasks)
}

// OnWorkerWithdraw implements sim.WithdrawAwareAlgorithm: the withdrawn
// worker's occupied guide node (if any — it occupies at most one, in its
// own (slot, area) cell) gets the same negative sentinel a retirement
// would install, so the partner path skips it without a doomed TryMatch.
func (a *POLAR) OnWorkerWithdraw(w int, now float64) {
	if cid := a.g.WorkerCellID(locateWorker(a.g, a.p.Worker(w))); cid >= 0 {
		withdrawOccupant(&a.wCells[cid], int32(w))
	}
}

// OnTaskWithdraw is OnWorkerWithdraw for the task side.
func (a *POLAR) OnTaskWithdraw(t int, now float64) {
	if cid := a.g.TaskCellID(locateTask(a.g, a.p.Task(t))); cid >= 0 {
		withdrawOccupant(&a.tCells[cid], int32(t))
	}
}

// withdrawOccupant sentinels the handle's node slot in one cell. The scan
// is bounded by the cell's node count; absence is fine (the object never
// occupied a node — its type was full or unpredicted).
func withdrawOccupant(cell *polarCell, h int32) {
	for i, occ := range cell.occupants {
		if occ == h {
			cell.occupants[i] = -1
			return
		}
	}
}

func remapOccupants(cells []polarCell, m []int32) {
	for i := range cells {
		occ := cells[i].occupants
		for j, h := range occ {
			if h >= 0 {
				occ[j] = m[h]
			}
		}
	}
}
