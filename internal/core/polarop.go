package core

import (
	"ftoa/internal/guide"
	"ftoa/internal/sim"
)

// POLAROP is Algorithm 3 (POLAR-OP): like POLAR, but guide nodes are
// *reusable* — an object is only ignored when its (slot, area) type has no
// node at all, which is what lifts the competitive ratio from (1−1/e)² ≈
// 0.4 to ≈ 0.47 and makes the algorithm robust to under-prediction.
//
// Association is pooled at cell level: all nodes of a cell are
// interchangeable (same slot, same area), so an arriving object may be
// matched with any waiting object associated to any of its cell's partner
// cells. This is the behaviour the paper's Example 6 exhibits (task r6,
// associated to a node whose own partner is exhausted, is matched with
// worker w7 waiting under a sibling node), and it weakly dominates
// per-node association. Dispatch targets still follow the per-node pair
// layout cyclically, so workers spread over partner areas proportionally
// to the guide's flow.
type POLAROP struct {
	g *guide.Guide
	p sim.Platform

	wCells []opCell
	tCells []opCell
}

// opCell is the online association state of one guide cell.
type opCell struct {
	nodeIdx int32 // node index the next arrival associates to (mod Count)
	cursor  runCursor
	queue   waitQueue // associated objects not yet matched
}

// waitQueue is a FIFO of object indices. Dead entries (matched elsewhere,
// expired, or retired to a negative sentinel by Remap) are dropped lazily
// during scans, keeping amortised cost O(1).
type waitQueue struct {
	items []int32
	head  int
}

func (q *waitQueue) push(v int32) { q.items = append(q.items, v) }

// scan calls try on each live entry in order until try commits one; dead
// entries encountered on the way are removed. It reports whether a match
// was committed. Negative entries are retired handles: dead by
// construction, removed with exactly the same head-advance/swap dynamics
// a live dead entry gets — which is what keeps the surviving entries'
// order evolution, and therefore the matching, identical to an unretired
// run.
func (q *waitQueue) scan(dead func(int32) bool, try func(int32) bool) bool {
	// Drop dead prefix.
	for q.head < len(q.items) && (q.items[q.head] < 0 || dead(q.items[q.head])) {
		q.head++
	}
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return false
	}
	for i := q.head; i < len(q.items); {
		cand := q.items[i]
		if cand < 0 || dead(cand) {
			q.items[i] = q.items[len(q.items)-1]
			q.items = q.items[:len(q.items)-1]
			continue
		}
		if try(cand) {
			if i == q.head {
				q.head++
			} else {
				q.items[i] = q.items[len(q.items)-1]
				q.items = q.items[:len(q.items)-1]
			}
			return true
		}
		i++
	}
	return false
}

// withdraw sentinels one handle's entry in place (if present), so a
// retracted object stops being a match candidate without waiting for a
// scan to probe its availability.
func (q *waitQueue) withdraw(h int32) {
	for i := q.head; i < len(q.items); i++ {
		if q.items[i] == h {
			q.items[i] = -1
			return
		}
	}
}

// remap rebases the queue across an arena epoch. The consumed prefix is
// reclaimed and the leading run of retired entries is dropped (both are
// order-preserving, mirroring scan's own head advance), bounding the
// queue by its live window; interior retired entries become negative
// sentinels so future scans remove them with unchanged swap dynamics.
func (q *waitQueue) remap(m []int32) {
	items := q.items[q.head:]
	for len(items) > 0 && (items[0] < 0 || m[items[0]] < 0) {
		items = items[1:]
	}
	for i, h := range items {
		if h >= 0 {
			items[i] = m[h]
		}
	}
	n := copy(q.items, items)
	q.items = q.items[:n]
	q.head = 0
}

// NewPOLAROP creates a POLAR-OP instance bound to an offline guide.
func NewPOLAROP(g *guide.Guide) *POLAROP { return &POLAROP{g: g} }

// Name implements sim.Algorithm.
func (a *POLAROP) Name() string { return "POLAR-OP" }

// Init implements sim.Algorithm.
func (a *POLAROP) Init(p sim.Platform) {
	a.p = p
	a.wCells = make([]opCell, len(a.g.WorkerCells))
	a.tCells = make([]opCell, len(a.g.TaskCells))
}

// OnWorkerArrival implements sim.Algorithm.
func (a *POLAROP) OnWorkerArrival(w int, now float64) {
	slot, area := locateWorker(a.g, a.p.Worker(w))
	cid := a.g.WorkerCellID(slot, area)
	if cid < 0 {
		return // no node of this type at all: ignore
	}
	plan := &a.g.WorkerCells[cid]
	cell := &a.wCells[cid]

	// Try to match with a task waiting under one of this cell's partner
	// cells, preferring the partner of the node being associated.
	matched := a.matchFromPartners(plan, cell.cursor.runIdx, a.tCells,
		func(t int32) bool { return !a.p.TaskAvailable(int(t), now) },
		func(t int32) bool { return a.p.TryMatch(w, int(t), now) },
	)
	if matched {
		a.advance(cell, plan)
		return
	}

	// No match: associate, dispatch per the node's pairing, and wait.
	partnerCell, _, hasPartner := a.peekPartner(cell, plan)
	a.advance(cell, plan)
	cell.queue.push(int32(w))
	if hasPartner {
		tPlan := &a.g.TaskCells[partnerCell]
		if tPlan.Key.Area != area {
			a.p.Dispatch(w, a.g.Cfg.Grid.Center(tPlan.Key.Area), now)
		}
	}
}

// OnTaskArrival implements sim.Algorithm.
func (a *POLAROP) OnTaskArrival(t int, now float64) {
	slot, area := locateTask(a.g, a.p.Task(t))
	cid := a.g.TaskCellID(slot, area)
	if cid < 0 {
		return
	}
	plan := &a.g.TaskCells[cid]
	cell := &a.tCells[cid]

	matched := a.matchFromPartners(plan, cell.cursor.runIdx, a.wCells,
		func(w int32) bool { return !a.p.WorkerAvailable(int(w), now) },
		func(w int32) bool { return a.p.TryMatch(int(w), t, now) },
	)
	a.advance(cell, plan)
	if !matched {
		cell.queue.push(int32(t)) // the task waits in place until its deadline
	}
}

// OnFinish implements sim.Algorithm.
func (a *POLAROP) OnFinish(now float64) {}

// Remap implements sim.RetirableAlgorithm: every cell's waiting queue is
// rebased into the new handle space. Node indices and cursors are
// untouched — they track guide positions, not objects.
func (a *POLAROP) Remap(workers, tasks []int32) {
	for i := range a.wCells {
		a.wCells[i].queue.remap(workers)
	}
	for i := range a.tCells {
		a.tCells[i].queue.remap(tasks)
	}
}

// OnWorkerWithdraw implements sim.WithdrawAwareAlgorithm: the withdrawn
// worker's waiting-queue entry (it waits in at most its own cell's queue)
// becomes a negative sentinel, which future scans remove with exactly the
// swap dynamics a lazily discovered dead entry gets. Sentineling instead
// of splicing keeps scan's order evolution untouched.
func (a *POLAROP) OnWorkerWithdraw(w int, now float64) {
	if cid := a.g.WorkerCellID(locateWorker(a.g, a.p.Worker(w))); cid >= 0 {
		a.wCells[cid].queue.withdraw(int32(w))
	}
}

// OnTaskWithdraw is OnWorkerWithdraw for the task side.
func (a *POLAROP) OnTaskWithdraw(t int, now float64) {
	if cid := a.g.TaskCellID(locateTask(a.g, a.p.Task(t))); cid >= 0 {
		a.tCells[cid].queue.withdraw(int32(t))
	}
}

// peekPartner returns the partner of the cell's current node without
// consuming the cursor.
func (a *POLAROP) peekPartner(cell *opCell, plan *guide.CellPlan) (partnerCell, partnerNode int32, ok bool) {
	c := cell.cursor
	return c.next(plan)
}

// advance moves the cell's node index one node forward, wrapping at Count
// so that nodes are reused round-robin (the "associated to Ŵ031's position
// again" of the paper's Example 6). The run cursor tracks the node index
// through the matched prefix.
func (a *POLAROP) advance(cell *opCell, plan *guide.CellPlan) {
	if plan.Count == 0 {
		return
	}
	if cell.nodeIdx < plan.Matched {
		cell.cursor.next(plan)
	}
	cell.nodeIdx++
	if cell.nodeIdx >= plan.Count {
		cell.nodeIdx = 0
		cell.cursor.reset()
	}
}

// matchFromPartners scans the waiting queues of the cell's partner cells,
// starting at the run the cell's cursor is on and wrapping, attempting
// try on each live waiting object until one commits. other is the opposite
// side's cell-state slice.
func (a *POLAROP) matchFromPartners(plan *guide.CellPlan, startRun int, other []opCell, dead func(int32) bool, try func(int32) bool) bool {
	n := len(plan.Runs)
	if n == 0 {
		return false
	}
	if startRun >= n {
		startRun = 0
	}
	prev := int32(-1)
	for k := 0; k < n; k++ {
		run := plan.Runs[(startRun+k)%n]
		if run.Partner == prev {
			continue // consecutive runs to the same partner cell
		}
		prev = run.Partner
		if other[run.Partner].queue.scan(dead, try) {
			return true
		}
	}
	return false
}
