package core

import (
	"testing"
	"testing/quick"

	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/mathx"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
	"ftoa/internal/workload"
)

// TestPipelinePropertiesOnRandomConfigs drives the full pipeline (generate
// → predict → guide → replay all algorithms) on randomly drawn
// configurations and checks the invariants that must hold regardless of
// parameters:
//
//   - every algorithm's output is a valid matching of the instance
//     (disjoint, in-range, Definition-4-feasible) in Strict mode;
//   - no online algorithm exceeds the exact offline optimum;
//   - Strict never matches more than AssumeGuide for the same algorithm;
//   - guide construction is internally consistent (Validate).
func TestPipelinePropertiesOnRandomConfigs(t *testing.T) {
	rng := mathx.NewRNG(31337)
	check := func(seed uint32) bool {
		r := mathx.NewRNG(uint64(seed) ^ rng.Uint64())
		cfg := workload.DefaultSynthetic()
		cfg.Seed = r.Uint64()
		cfg.NumWorkers = 100 + r.Intn(400)
		cfg.NumTasks = 100 + r.Intn(400)
		cfg.TaskExpiry = 0.5 + r.Float64()*3
		cfg.WorkerPatience = 0.5 + r.Float64()*3
		cfg.TaskTempMu = 0.2 + r.Float64()*0.6
		cfg.TaskSpatialMean = 0.2 + r.Float64()*0.6
		cfg.TaskSpatialCov = 0.2 + r.Float64()*0.5
		gridSide := 4 + r.Intn(10)
		slotCount := 8 + r.Intn(56)

		in, err := cfg.Generate()
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		grid := geo.NewGrid(cfg.Bounds(), gridSide, gridSide)
		slots := timeslot.New(cfg.Horizon, slotCount)
		wc, tc := cfg.ExpectedCounts(grid, slots)
		g, err := guide.Build(guide.Config{
			Grid:            grid,
			Slots:           slots,
			Velocity:        cfg.Velocity,
			WorkerPatience:  cfg.WorkerPatience,
			TaskExpiry:      cfg.TaskExpiry,
			MaxEdgesPerCell: 64,
			RepSlack:        slots.Width() / 2,
		}, wc, tc)
		if err != nil {
			t.Logf("guide: %v", err)
			return false
		}
		if err := g.Validate(); err != nil {
			t.Logf("guide validate: %v", err)
			return false
		}

		opt := bruteForceOPT(in)
		grWindow := 0.25 + r.Float64() // drawn once so both modes see the same window
		algos := []struct {
			mk func() sim.Algorithm
			// strictBounded marks algorithms whose Strict-mode matching is
			// provably a subset of their AssumeGuide matching: POLAR's node
			// pairing is fixed 1:1 (a rejected pair never frees capacity
			// for another), and SimpleGreedy makes identical decisions in
			// both modes. Batch and pooled algorithms (GR, POLAR-OP,
			// Hybrid) can resolve per-step ties differently across modes,
			// so only validity and the OPT bound apply to them.
			strictBounded bool
		}{
			{func() sim.Algorithm { return NewSimpleGreedy() }, true},
			{func() sim.Algorithm { return NewGR(grWindow) }, false},
			{func() sim.Algorithm { return NewPOLAR(g) }, true},
			{func() sim.Algorithm { return NewPOLAROP(g) }, false},
			{func() sim.Algorithm { return NewHybrid(g) }, false},
		}
		for _, a := range algos {
			strictEng := sim.NewEngine(in, sim.Strict)
			strictRes := strictEng.Run(a.mk())
			if err := strictRes.Matching.Validate(in); err != nil {
				t.Logf("%s strict invalid: %v", strictRes.Algorithm, err)
				return false
			}
			if strictRes.Matching.Size() > opt {
				t.Logf("%s strict (%d) above exact OPT (%d)", strictRes.Algorithm, strictRes.Matching.Size(), opt)
				return false
			}
			if a.strictBounded {
				assumeEng := sim.NewEngine(in, sim.AssumeGuide)
				assumeRes := assumeEng.Run(a.mk())
				if strictRes.Matching.Size() > assumeRes.Matching.Size() {
					t.Logf("%s strict (%d) above assume-guide (%d)", strictRes.Algorithm,
						strictRes.Matching.Size(), assumeRes.Matching.Size())
					return false
				}
			}
		}
		// Pruned OPT must agree with brute force on these small instances.
		if got := OPT(in, OPTOptions{}).Size(); got != opt {
			t.Logf("pruned OPT %d != brute force %d", got, opt)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOPTMonotoneInDeadline: the offline optimum cannot shrink when every
// task's deadline is extended.
func TestOPTMonotoneInDeadline(t *testing.T) {
	rng := mathx.NewRNG(404)
	for trial := 0; trial < 10; trial++ {
		cfg := workload.DefaultSynthetic()
		cfg.Seed = rng.Uint64()
		cfg.NumWorkers = 400
		cfg.NumTasks = 400
		prev := -1
		for _, dr := range []float64{0.5, 1, 2, 4} {
			cfg.TaskExpiry = dr
			in, err := cfg.Generate()
			if err != nil {
				t.Fatal(err)
			}
			got := OPT(in, OPTOptions{}).Size()
			if got < prev {
				t.Fatalf("trial %d: OPT shrank from %d to %d as Dr grew to %v", trial, prev, got, dr)
			}
			prev = got
		}
	}
}

// TestMatchingsAreDisjointAcrossEquivalentRuns: running the same algorithm
// twice on the same engine yields identical matchings (determinism).
func TestAlgorithmDeterminism(t *testing.T) {
	cfg, grid, slots, wc, tc := buildFixture(t)
	g := buildGuideFrom(t, cfg, grid, slots, wc, tc)
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() sim.Algorithm{
		func() sim.Algorithm { return NewSimpleGreedy() },
		func() sim.Algorithm { return NewGR(0.5) },
		func() sim.Algorithm { return NewPOLAR(g) },
		func() sim.Algorithm { return NewPOLAROP(g) },
		func() sim.Algorithm { return NewHybrid(g) },
	} {
		eng := sim.NewEngine(in, sim.Strict)
		a := eng.Run(mk()).Matching
		b := eng.Run(mk()).Matching
		if a.Size() != b.Size() {
			t.Fatalf("%T: nondeterministic sizes %d vs %d", mk(), a.Size(), b.Size())
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("%T: nondeterministic pair %d", mk(), i)
			}
		}
	}
}
