package core

import (
	"os"
	"sort"
	"strconv"
	"testing"

	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// lifecycleKey identifies one lifecycle event in instance-index space for
// cross-run comparison (handle namespaces differ across epochs, instance
// indexes do not).
type lifecycleKey struct {
	kind sim.SessionEventKind
	w, t int
	time float64
}

func sortedKeys(ks []lifecycleKey) []lifecycleKey {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.w != b.w {
			return a.w < b.w
		}
		if a.t != b.t {
			return a.t < b.t
		}
		return a.time < b.time
	})
	return ks
}

// retiredStreamReplay feeds the instance through a session exactly like
// streamReplay, but retires the arenas every `every` time units of stream
// time, maintaining the handle→instance translation across epochs via the
// OnRetire hook and collecting the full lifecycle stream via OnEvent (the
// lossless path a serving layer uses). It returns the matching and events
// in instance indexes plus the final live arena sizes.
func retiredStreamReplay(t *testing.T, in *model.Instance, mode sim.Mode, alg sim.Algorithm, every float64) (model.Matching, []lifecycleKey, int, int) {
	t.Helper()
	var h2w, h2t []int
	var out model.Matching
	var events []lifecycleKey
	translate := func(m []int32, ids []int) []int {
		k := 0
		for old, nh := range m {
			if nh >= 0 {
				ids[nh] = ids[old] // nh <= old: in-place forward rebase is safe
				k++
			}
		}
		return ids[:k]
	}
	cfg := sim.MatcherConfig{
		Mode:     mode,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: sim.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
		OnEvent: func(ev sim.SessionEvent) {
			k := lifecycleKey{kind: ev.Kind, w: -1, t: -1, time: ev.Time}
			if ev.Worker >= 0 {
				k.w = h2w[ev.Worker]
			}
			if ev.Task >= 0 {
				k.t = h2t[ev.Task]
			}
			events = append(events, k)
			if ev.Kind == sim.EventMatch {
				out.Add(k.w, k.t)
			}
		},
		OnRetire: func(wm, tm []int32) {
			h2w = translate(wm, h2w)
			h2t = translate(tm, h2t)
		},
	}
	m, err := sim.NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(alg)
	lastRetire := 0.0
	for _, ev := range in.Events() {
		if ev.Time >= lastRetire+every {
			sess.Retire(sess.Now())
			lastRetire = ev.Time
		}
		switch ev.Kind {
		case model.WorkerArrival:
			// Handles are dense, so the next handle is len(h2w); the map
			// must be extended before admission because the arrival hook
			// can commit (and report) a match synchronously.
			h2w = append(h2w, ev.Index)
			if _, err := sess.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
		case model.TaskArrival:
			h2t = append(h2t, ev.Index)
			if _, err := sess.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
		}
	}
	sess.Finish()
	sess.Retire(sess.Now())
	return out, events, sess.NumWorkers(), sess.NumTasks()
}

// plainStreamEvents is the reference run: no retirement, full lifecycle
// stream drained at the end (handles are arrival-ordered, translated via
// the static maps).
func plainStreamEvents(t *testing.T, in *model.Instance, mode sim.Mode, alg sim.Algorithm) (model.Matching, []lifecycleKey) {
	t.Helper()
	var h2w, h2t []int
	for _, ev := range in.Events() {
		if ev.Kind == model.WorkerArrival {
			h2w = append(h2w, ev.Index)
		} else {
			h2t = append(h2t, ev.Index)
		}
	}
	sess := sessionMatcher(t, in, mode).NewSession(alg)
	feedInstance(t, sess, in)
	sess.Finish()
	var out model.Matching
	var events []lifecycleKey
	for _, ev := range sess.DrainEvents(nil) {
		k := lifecycleKey{kind: ev.Kind, w: -1, t: -1, time: ev.Time}
		if ev.Worker >= 0 {
			k.w = h2w[ev.Worker]
		}
		if ev.Task >= 0 {
			k.t = h2t[ev.Task]
		}
		events = append(events, k)
		if ev.Kind == sim.EventMatch {
			out.Add(k.w, k.t)
		}
	}
	return out, events
}

// TestRetireReplayParity is the acceptance gate for generational
// retirement: for every algorithm and both validation modes, a run that
// retires its arenas many times mid-stream must commit the bit-identical
// matching AND emit the bit-identical lifecycle event stream (matches and
// expiries, in instance indexes) as an unretired run — whose own expiry
// stream is pinned to the brute-force oracle by
// TestExpiryEventsMatchOracle. Retirement is observational-only by
// construction (it drops provably dead objects); this test is what keeps
// that claim honest across all six algorithms' remap hooks.
func TestRetireReplayParity(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 400, 400
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Retire roughly every 1/12 of the day — frequent enough that dozens
	// of epochs land mid-deadline-window, racing pending expiries and GR's
	// batch timer.
	every := cfg.Horizon / 12
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		for _, a := range sixAlgorithms(t, cfg) {
			t.Run(a.name+"/"+mode.String(), func(t *testing.T) {
				wantM, wantE := plainStreamEvents(t, in, mode, a.mk())
				gotM, gotE, liveW, liveT := retiredStreamReplay(t, in, mode, a.mk(), every)
				if wantM.Size() == 0 {
					t.Fatal("degenerate parity: empty matching")
				}
				if gotM.Size() != wantM.Size() {
					t.Fatalf("retired run matched %d, plain %d", gotM.Size(), wantM.Size())
				}
				gp, wp := sortedPairs(gotM), sortedPairs(wantM)
				for i := range wp {
					if gp[i] != wp[i] {
						t.Fatalf("pair %d differs: retired %+v, plain %+v", i, gp[i], wp[i])
					}
				}
				ge, we := sortedKeys(gotE), sortedKeys(wantE)
				if len(ge) != len(we) {
					t.Fatalf("retired run emitted %d events, plain %d", len(ge), len(we))
				}
				for i := range we {
					if ge[i] != we[i] {
						t.Fatalf("event %d differs: retired %+v, plain %+v", i, ge[i], we[i])
					}
				}
				// Strict mode must actually reclaim: after the final
				// retirement everything matched or expired is gone.
				if mode == sim.Strict && liveW+liveT >= (len(in.Workers)+len(in.Tasks))/2 {
					t.Fatalf("final live arenas %d+%d: retirement reclaimed less than half of %d admissions",
						liveW, liveT, len(in.Workers)+len(in.Tasks))
				}
			})
		}
	}
}

// soakRounds returns how many deadline-window multiples the long-lived
// soak covers (CI raises it via FTOA_SOAK_ROUNDS).
func soakRounds() int {
	if v := os.Getenv("FTOA_SOAK_ROUNDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 12
}

// TestSessionLongLivedSoak is the bounded-memory proof: a single Strict
// session serves the same synthetic day over and over (timestamps
// shifted by the horizon each round, no Finish until the very end,
// retirement on a deadline-window cadence — exactly the shape of a
// long-lived ftoa-serve shard), and after every retirement the live
// arenas must be bounded by the live-object oracle: an unmatched worker
// survives only if it arrived within the last patience window, a task
// within its expiry window. Without Retire the arenas would grow by a
// full population every round.
func TestSessionLongLivedSoak(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	n := int(20000 * 0.02) // the scale-0.02 population of the perf gates
	cfg.NumWorkers, cfg.NumTasks = n, n
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	events := in.Events()
	window := cfg.WorkerPatience
	if cfg.TaskExpiry > window {
		window = cfg.TaskExpiry
	}

	m, err := sim.NewMatcher(sim.MatcherConfig{
		Mode:     sim.Strict,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		// No hints: a live deployment does not know its population.
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(NewSimpleGreedy())

	// Live-object oracle bounds, computed once from the day's shape: how
	// many arrivals fall inside a trailing deadline window anywhere in
	// the day (the maximum over round boundaries is the bound at every
	// retirement point, since rounds repeat identically).
	liveBoundAt := func(now float64) int {
		live := 0
		for i := range in.Workers {
			if in.Workers[i].Arrive > now-cfg.WorkerPatience && in.Workers[i].Arrive <= now {
				live++
			}
		}
		for i := range in.Tasks {
			if in.Tasks[i].Release >= now-cfg.TaskExpiry && in.Tasks[i].Release <= now {
				live++
			}
		}
		return live
	}

	rounds := soakRounds()
	var evbuf []sim.SessionEvent
	round := 0
	soakRound := func() {
		shift := float64(round) * in.Horizon
		round++
		lastRetire := sess.Now()
		for _, ev := range events {
			at := ev.Time + shift
			switch ev.Kind {
			case model.WorkerArrival:
				w := in.Workers[ev.Index]
				w.Arrive = at
				if _, err := sess.AddWorker(w); err != nil {
					t.Fatal(err)
				}
			case model.TaskArrival:
				tk := in.Tasks[ev.Index]
				tk.Release = at
				if _, err := sess.AddTask(tk); err != nil {
					t.Fatal(err)
				}
			}
			if now := sess.Now(); now >= lastRetire+window {
				evbuf = sess.DrainEvents(evbuf[:0])
				sess.CompactEvents()
				sess.Retire(now)
				lastRetire = now

				// In-stream bound: right after Retire(now) the arena
				// holds only unmatched objects inside their trailing
				// deadline window, i.e. arrivals in (now-window, now].
				// The day repeats shifted, so that set is covered by the
				// day-local oracle at now-shift plus (when the window
				// straddles the round boundary) the previous day's tail.
				bound := liveBoundAt(now-shift) + liveBoundAt(in.Horizon) + 4
				if got := sess.NumWorkers() + sess.NumTasks(); got > bound {
					t.Fatalf("round %d, t=%.0f: live arena %d exceeds live-object bound %d",
						round-1, now, got, bound)
				}
			}
		}
	}
	var matchesBefore int
	for r := 0; r < rounds; r++ {
		soakRound()
		if r == 0 {
			matchesBefore = sess.Matches()
		}
	}
	if sess.Matches() <= matchesBefore {
		t.Fatal("degenerate soak: no matches after the first round")
	}
	if sess.Epoch() < uint64(rounds) {
		t.Fatalf("only %d retirements over %d rounds", sess.Epoch(), rounds)
	}
	// The lifetime totals kept counting while the arenas stayed flat.
	if sess.AdmittedWorkers() != rounds*n {
		t.Fatalf("admitted %d workers, want %d", sess.AdmittedWorkers(), rounds*n)
	}
	// Steady state: a full extra round — thousands of admissions, a
	// day's worth of retirements — must not allocate at all. (The soak
	// above warmed every arena, index and scratch buffer.)
	if avg := testing.AllocsPerRun(2, soakRound); avg > 0 {
		t.Fatalf("steady-state soak round allocates %.1f times, want 0", avg)
	}
	sess.Finish()
}
