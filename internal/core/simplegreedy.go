package core

import (
	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// SimpleGreedy is the baseline of Section 2.2, extended from the online
// model of Tong et al. (ICDE 2016): when a new object arrives, it is
// matched immediately with the nearest object of the other kind that
// satisfies the deadline constraint, if any; otherwise it waits in place
// (workers until Sw+Dw, tasks until Sr+Dr). Workers never relocate.
type SimpleGreedy struct {
	p sim.Platform

	waitingWorkers *spatial.Index // unmatched workers at their initial location
	waitingTasks   *spatial.Index // unmatched released tasks

	// maxTaskBudget is the largest Dr seen so far, bounding worker-side
	// search radii. Tracking the running max instead of peeking at the
	// full population keeps the algorithm open-world without changing its
	// output: a waiting task has already arrived, so its expiry is
	// included in the running max and the nearest-search radius still
	// covers every feasible candidate.
	maxTaskBudget float64
	deadIDs       []int // scratch for lazy expiry cleanup

	// lastBounds/lastSized enable index reuse across sessions over the
	// same service area, so repeat replays allocate nothing here.
	lastBounds             geo.Rect
	lastSizedW, lastSizedT int
}

// defaultIndexCapacity sizes waiting-object indexes when the session has
// no population hints (live traffic). The index stays correct beyond this
// — id tables grow on demand — but its bucket resolution is fixed at
// construction, so ring scans slow down once the waiting population
// dwarfs the estimate; callers who can bound their traffic should pass
// Hints.
const defaultIndexCapacity = 1024

// expectedOr returns the hint when present and def otherwise.
func expectedOr(hint, def int) int {
	if hint > 0 {
		return hint
	}
	return def
}

// NewSimpleGreedy creates the baseline.
func NewSimpleGreedy() *SimpleGreedy { return &SimpleGreedy{} }

// Name implements sim.Algorithm.
func (a *SimpleGreedy) Name() string { return "SimpleGreedy" }

// Init implements sim.Algorithm.
func (a *SimpleGreedy) Init(p sim.Platform) {
	a.p = p
	bounds := p.Bounds()
	h := p.Hints()
	expW := expectedOr(h.ExpectedWorkers, defaultIndexCapacity)
	expT := expectedOr(h.ExpectedTasks, defaultIndexCapacity)
	if a.waitingWorkers != nil && bounds == a.lastBounds && expW == a.lastSizedW && expT == a.lastSizedT {
		// Same service area and sizing: clear the indexes in place instead
		// of rebuilding them, so repeat sessions allocate nothing here.
		a.waitingWorkers.Reset()
		a.waitingTasks.Reset()
	} else {
		a.waitingWorkers = spatial.NewIndex(bounds, expW)
		a.waitingTasks = spatial.NewIndex(bounds, expT)
		a.lastBounds = bounds
		a.lastSizedW, a.lastSizedT = expW, expT
	}
	a.maxTaskBudget = 0
}

// OnWorkerArrival implements sim.Algorithm.
func (a *SimpleGreedy) OnWorkerArrival(w int, now float64) {
	worker := a.p.Worker(w)
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	// The farthest reachable waiting task is bounded by the largest
	// remaining expiry budget.
	maxDist := a.maxTaskBudget * velocity
	t, _ := a.waitingTasks.Nearest(worker.Loc, maxDist, func(t int) bool {
		if !a.p.TaskAvailable(t, now) {
			a.deadIDs = append(a.deadIDs, t)
			return false
		}
		return model.FeasibleAt(worker, a.p.Task(t), worker.Loc, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingTasks.Remove(id)
	}
	if t >= 0 && a.p.TryMatch(w, t, now) {
		a.waitingTasks.Remove(t)
		return
	}
	a.waitingWorkers.Insert(w, worker.Loc)
}

// OnTaskArrival implements sim.Algorithm.
func (a *SimpleGreedy) OnTaskArrival(t int, now float64) {
	task := a.p.Task(t)
	velocity := a.p.Velocity()
	if task.Expiry > a.maxTaskBudget {
		a.maxTaskBudget = task.Expiry
	}
	a.deadIDs = a.deadIDs[:0]
	// Workers beyond Dr·v cannot reach the task before its deadline.
	maxDist := task.Expiry * velocity
	w, _ := a.waitingWorkers.Nearest(task.Loc, maxDist, func(w int) bool {
		if !a.p.WorkerAvailable(w, now) {
			a.deadIDs = append(a.deadIDs, w)
			return false
		}
		worker := a.p.Worker(w)
		return model.FeasibleAt(worker, task, worker.Loc, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingWorkers.Remove(id)
	}
	if w >= 0 && a.p.TryMatch(w, t, now) {
		a.waitingWorkers.Remove(w)
		return
	}
	a.waitingTasks.Insert(t, task.Loc)
}

// OnFinish implements sim.Algorithm.
func (a *SimpleGreedy) OnFinish(now float64) {}

// Remap implements sim.RetirableAlgorithm: the waiting indexes are
// re-keyed in place. Retired ids drop out of their buckets — the same
// entries the lazy deadIDs sweep would have removed, since a retired
// object is unavailable by construction — so the index stays proportional
// to the live waiting population. maxTaskBudget is a running max over all
// admitted tasks and deliberately survives retirement: pruning with a
// too-large radius is lossless.
func (a *SimpleGreedy) Remap(workers, tasks []int32) {
	a.waitingWorkers.Remap(workers)
	a.waitingTasks.Remap(tasks)
}

// OnWorkerWithdraw implements sim.WithdrawAwareAlgorithm: the withdrawn
// worker leaves the waiting index immediately (Remove tolerates absence —
// the worker may already have been swept or never waited).
func (a *SimpleGreedy) OnWorkerWithdraw(w int, now float64) { a.waitingWorkers.Remove(w) }

// OnTaskWithdraw is OnWorkerWithdraw for the task side.
func (a *SimpleGreedy) OnTaskWithdraw(t int, now float64) { a.waitingTasks.Remove(t) }
