package core

import (
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// SimpleGreedy is the baseline of Section 2.2, extended from the online
// model of Tong et al. (ICDE 2016): when a new object arrives, it is
// matched immediately with the nearest object of the other kind that
// satisfies the deadline constraint, if any; otherwise it waits in place
// (workers until Sw+Dw, tasks until Sr+Dr). Workers never relocate.
type SimpleGreedy struct {
	p sim.Platform

	waitingWorkers *spatial.Index // unmatched workers at their initial location
	waitingTasks   *spatial.Index // unmatched released tasks

	maxTaskBudget float64         // max over tasks of Dr, bounding search radii
	deadIDs       []int           // scratch for lazy expiry cleanup
	lastIn        *model.Instance // enables index reuse across runs on one instance
}

// NewSimpleGreedy creates the baseline.
func NewSimpleGreedy() *SimpleGreedy { return &SimpleGreedy{} }

// Name implements sim.Algorithm.
func (a *SimpleGreedy) Name() string { return "SimpleGreedy" }

// Init implements sim.Algorithm.
func (a *SimpleGreedy) Init(p sim.Platform) {
	a.p = p
	in := p.Instance()
	if a.lastIn == in && a.waitingWorkers != nil {
		// Replaying the same instance: clear the indexes in place instead
		// of rebuilding them, so repeat runs allocate nothing here.
		a.waitingWorkers.Reset()
		a.waitingTasks.Reset()
	} else {
		a.waitingWorkers = spatial.NewIndex(in.Bounds, len(in.Workers))
		a.waitingTasks = spatial.NewIndex(in.Bounds, len(in.Tasks))
		a.lastIn = in
	}
	a.maxTaskBudget = 0
	for i := range in.Tasks {
		if in.Tasks[i].Expiry > a.maxTaskBudget {
			a.maxTaskBudget = in.Tasks[i].Expiry
		}
	}
}

// OnWorkerArrival implements sim.Algorithm.
func (a *SimpleGreedy) OnWorkerArrival(w int, now float64) {
	in := a.p.Instance()
	worker := &in.Workers[w]
	a.deadIDs = a.deadIDs[:0]
	// The farthest reachable waiting task is bounded by the largest
	// remaining expiry budget.
	maxDist := a.maxTaskBudget * in.Velocity
	t, _ := a.waitingTasks.Nearest(worker.Loc, maxDist, func(t int) bool {
		if !a.p.TaskAvailable(t, now) {
			a.deadIDs = append(a.deadIDs, t)
			return false
		}
		return model.FeasibleAt(worker, &in.Tasks[t], worker.Loc, now, in.Velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingTasks.Remove(id)
	}
	if t >= 0 && a.p.TryMatch(w, t, now) {
		a.waitingTasks.Remove(t)
		return
	}
	a.waitingWorkers.Insert(w, worker.Loc)
}

// OnTaskArrival implements sim.Algorithm.
func (a *SimpleGreedy) OnTaskArrival(t int, now float64) {
	in := a.p.Instance()
	task := &in.Tasks[t]
	a.deadIDs = a.deadIDs[:0]
	// Workers beyond Dr·v cannot reach the task before its deadline.
	maxDist := task.Expiry * in.Velocity
	w, _ := a.waitingWorkers.Nearest(task.Loc, maxDist, func(w int) bool {
		if !a.p.WorkerAvailable(w, now) {
			a.deadIDs = append(a.deadIDs, w)
			return false
		}
		return model.FeasibleAt(&in.Workers[w], task, in.Workers[w].Loc, now, in.Velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingWorkers.Remove(id)
	}
	if w >= 0 && a.p.TryMatch(w, t, now) {
		a.waitingWorkers.Remove(w)
		return
	}
	a.waitingTasks.Insert(t, task.Loc)
}

// OnFinish implements sim.Algorithm.
func (a *SimpleGreedy) OnFinish(now float64) {}
