package core

import (
	"sort"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
	"ftoa/internal/workload"
)

// streamReplay feeds a recorded instance's arrival stream through the
// open-world Session API by hand — exactly what a live frontend does —
// keeping its own handle→index maps, and returns the matching expressed in
// instance indexes.
func streamReplay(t *testing.T, in *model.Instance, mode sim.Mode, alg sim.Algorithm) model.Matching {
	t.Helper()
	m, err := sim.NewMatcher(sim.MatcherConfig{
		Mode:     mode,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: sim.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(alg)
	var h2w, h2t []int
	for _, ev := range in.Events() {
		switch ev.Kind {
		case model.WorkerArrival:
			if _, err := sess.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
			h2w = append(h2w, ev.Index)
		case model.TaskArrival:
			if _, err := sess.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
			h2t = append(h2t, ev.Index)
		}
	}
	sess.Finish()
	var out model.Matching
	for _, p := range sess.Matching().Pairs {
		out.Add(h2w[p.Worker], h2t[p.Task])
	}
	return out
}

func sortedPairs(m model.Matching) []model.Pair {
	ps := append([]model.Pair(nil), m.Pairs...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Worker != ps[j].Worker {
			return ps[i].Worker < ps[j].Worker
		}
		return ps[i].Task < ps[j].Task
	})
	return ps
}

// parityGuide builds a learned-shape guide for the synthetic instance.
func parityGuide(t *testing.T, cfg workload.Synthetic) *guide.Guide {
	t.Helper()
	grid := geo.NewGrid(cfg.Bounds(), 8, 8)
	slots := timeslot.New(cfg.Horizon, 12)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	g, err := guide.Build(guide.Config{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
	}, wc, tc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStreamingReplayParity is the acceptance gate for the open-world API:
// feeding a recorded instance through the streaming Session must produce a
// bit-identical matching (same size, same pairs) to the legacy Engine.Run
// replay path, for every online algorithm and both validation modes.
func TestStreamingReplayParity(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 400, 400
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g := parityGuide(t, cfg)

	algs := []struct {
		name string
		mk   func() sim.Algorithm
	}{
		{"POLAR", func() sim.Algorithm { return NewPOLAR(g) }},
		{"POLAR-OP", func() sim.Algorithm { return NewPOLAROP(g) }},
		{"SimpleGreedy", func() sim.Algorithm { return NewSimpleGreedy() }},
		{"GR", func() sim.Algorithm { return NewGR(cfg.Horizon / 40) }},
		{"Hybrid", func() sim.Algorithm { return NewHybrid(g) }},
		{"TGOA", func() sim.Algorithm { return NewTGOA() }},
	}
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		eng := sim.NewEngine(in, mode)
		for _, a := range algs {
			t.Run(a.name+"/"+mode.String(), func(t *testing.T) {
				replay := eng.Run(a.mk()).Matching
				stream := streamReplay(t, in, mode, a.mk())
				if replay.Size() != stream.Size() {
					t.Fatalf("matching size: replay %d, stream %d", replay.Size(), stream.Size())
				}
				rp, sp := sortedPairs(replay), sortedPairs(stream)
				for i := range rp {
					if rp[i] != sp[i] {
						t.Fatalf("pair %d differs: replay %+v, stream %+v", i, rp[i], sp[i])
					}
				}
				if replay.Size() == 0 {
					t.Fatal("degenerate parity: empty matching")
				}
			})
		}
	}
}

// TestStreamingLiveHints checks the documented open-world degradations:
// with zero hints the algorithms still run and commit matches (TGOA stays
// greedy, indexes size themselves by default).
func TestStreamingLiveHints(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 200, 200
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []sim.Algorithm{NewSimpleGreedy(), NewTGOA(), NewGR(cfg.Horizon / 40)} {
		m, err := sim.NewMatcher(sim.MatcherConfig{
			Mode:     sim.Strict,
			Velocity: in.Velocity,
			Bounds:   in.Bounds,
			// No hints: a live deployment does not know the population.
		})
		if err != nil {
			t.Fatal(err)
		}
		sess := m.NewSession(a)
		for _, ev := range in.Events() {
			switch ev.Kind {
			case model.WorkerArrival:
				_, err = sess.AddWorker(in.Workers[ev.Index])
			case model.TaskArrival:
				_, err = sess.AddTask(in.Tasks[ev.Index])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		sess.Finish()
		if sess.Matching().Size() == 0 {
			t.Errorf("%s: no matches under zero hints", a.Name())
		}
	}
}
