package core

import (
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// TGOA is the two-sided online algorithm of Tong et al. (ICDE 2016) — the
// state-of-the-art whose 0.25 competitive ratio (random-order model) the
// paper's POLAR-OP nearly doubles. It is included as an additional
// reference baseline beyond the paper's own comparison set.
//
// The algorithm splits the arrival sequence in half. Objects in the first
// half are matched greedily (nearest feasible counterpart). For an object
// in the second half, the platform computes a maximum matching over *all*
// objects seen so far and commits the new object's pair only if its partner
// in that hypothetical optimal matching is still actually available —
// "greedy first half, optimal second half". The hypothetical matching is
// maintained incrementally: each arrival runs one augmenting-path search,
// so the total cost is O(n·E) rather than n recomputations.
//
// TGOA is inherently closed-world: locating the halfway point requires the
// total arrival count, which it takes from the session's Hints (a replay
// supplies the exact population). In a live session with zero hints the
// split never triggers and TGOA degrades to its greedy phase.
//
// The virtual matching is kept in TGOA's own arrival-ordered ghost arenas
// (a private copy of every admitted object), not in platform handles:
// the hypothetical optimum ranges over ALL objects ever seen — matched
// and expired ones included — so it must survive arena retirement intact
// for retirement to stay behaviour-neutral. This means TGOA's memory
// grows with lifetime arrivals by design (the price of its competitive
// analysis); only the greedy-phase waiting indexes compact.
type TGOA struct {
	p sim.Platform

	total   int // hinted |W| + |R|, to locate the halfway point; 0 = unknown
	arrived int

	// Greedy-phase state (same machinery as SimpleGreedy), keyed by
	// platform handle and rebased by Remap.
	waitingWorkers *spatial.Index
	waitingTasks   *spatial.Index
	// maxTaskBudget is the running max of Dr over admitted tasks; pruning
	// with it is lossless, see the SimpleGreedy field of the same name.
	maxTaskBudget float64
	deadIDs       []int

	// Ghost arenas: one entry per arrival, in arrival order, never
	// compacted. Internal ids (indexes into ws/ts) are the nodes of the
	// virtual matching; i2hW/i2hT translate them to current platform
	// handles (RetiredHandle once the object is retired).
	ws   []model.Worker
	ts   []model.Task
	i2hW []int32
	i2hT []int32

	// Virtual maximum matching over the ghost arenas, maintained by
	// incremental augmenting paths on the feasibility graph.
	virtW []int32 // virtual partner task (internal id) of each worker, -1 if none
	virtT []int32 // virtual partner worker (internal id) of each task, -1 if none
	mark  []bool  // scratch: visited tasks during the worker-rooted search
	markW []bool  // scratch: visited workers during the task-rooted search
}

// NewTGOA creates the baseline.
func NewTGOA() *TGOA { return &TGOA{} }

// Name implements sim.Algorithm.
func (a *TGOA) Name() string { return "TGOA" }

// Init implements sim.Algorithm.
func (a *TGOA) Init(p sim.Platform) {
	a.p = p
	h := p.Hints()
	// The phase split needs the full population; a one-sided hint would
	// place the halfway point far too early, so it counts as unknown.
	a.total = 0
	if h.ExpectedWorkers > 0 && h.ExpectedTasks > 0 {
		a.total = h.ExpectedWorkers + h.ExpectedTasks
	}
	a.arrived = 0
	a.waitingWorkers = spatial.NewIndex(p.Bounds(), expectedOr(h.ExpectedWorkers, defaultIndexCapacity))
	a.waitingTasks = spatial.NewIndex(p.Bounds(), expectedOr(h.ExpectedTasks, defaultIndexCapacity))
	a.maxTaskBudget = 0
	a.ws = a.ws[:0]
	a.ts = a.ts[:0]
	a.i2hW = a.i2hW[:0]
	a.i2hT = a.i2hT[:0]
	a.virtW = a.virtW[:0]
	a.virtT = a.virtT[:0]
	a.mark = a.mark[:0]
	a.markW = a.markW[:0]
}

// secondHalf reports whether the current arrival falls in the
// optimal-matching-guided phase. With no population hint the halfway point
// is unknown and every arrival is treated as first-half.
func (a *TGOA) secondHalf() bool { return a.total > 0 && a.arrived*2 > a.total }

// OnWorkerArrival implements sim.Algorithm.
func (a *TGOA) OnWorkerArrival(w int, now float64) {
	a.arrived++
	iw := int32(len(a.ws))
	a.ws = append(a.ws, *a.p.Worker(w))
	a.i2hW = append(a.i2hW, int32(w))
	a.virtW = append(a.virtW, -1)
	a.markW = append(a.markW, false)
	a.augmentFromWorker(iw)
	worker := a.p.Worker(w)
	velocity := a.p.Velocity()

	if !a.secondHalf() {
		// First half: plain greedy.
		if t := a.nearestTask(worker, now); t >= 0 && a.p.TryMatch(w, t, now) {
			a.waitingTasks.Remove(t)
			return
		}
		a.waitingWorkers.Insert(w, worker.Loc)
		return
	}
	// Second half: follow the hypothetical optimal matching. A retired
	// virtual partner (translation -1) is unavailable by construction.
	if it := a.virtW[iw]; it >= 0 {
		if th := a.i2hT[it]; th >= 0 && a.p.TaskAvailable(int(th), now) &&
			model.FeasibleAt(worker, &a.ts[it], worker.Loc, now, velocity) {
			if a.p.TryMatch(w, int(th), now) {
				a.waitingTasks.Remove(int(th))
				return
			}
		}
	}
	a.waitingWorkers.Insert(w, worker.Loc)
}

// OnTaskArrival implements sim.Algorithm.
func (a *TGOA) OnTaskArrival(t int, now float64) {
	a.arrived++
	it := int32(len(a.ts))
	a.ts = append(a.ts, *a.p.Task(t))
	a.i2hT = append(a.i2hT, int32(t))
	a.virtT = append(a.virtT, -1)
	a.mark = append(a.mark, false)
	a.augmentFromTask(it)
	task := a.p.Task(t)
	velocity := a.p.Velocity()
	if task.Expiry > a.maxTaskBudget {
		a.maxTaskBudget = task.Expiry
	}

	if !a.secondHalf() {
		if w := a.nearestWorker(task, now); w >= 0 && a.p.TryMatch(w, t, now) {
			a.waitingWorkers.Remove(w)
			return
		}
		a.waitingTasks.Insert(t, task.Loc)
		return
	}
	if iw := a.virtT[it]; iw >= 0 {
		if wh := a.i2hW[iw]; wh >= 0 && a.p.WorkerAvailable(int(wh), now) &&
			model.FeasibleAt(&a.ws[iw], task, a.ws[iw].Loc, now, velocity) {
			if a.p.TryMatch(int(wh), t, now) {
				a.waitingWorkers.Remove(int(wh))
				return
			}
		}
	}
	a.waitingTasks.Insert(t, task.Loc)
}

// OnFinish implements sim.Algorithm.
func (a *TGOA) OnFinish(now float64) {}

// Remap implements sim.RetirableAlgorithm. The ghost arenas and the
// virtual matching over them are untouched — the hypothetical optimum
// ranges over all objects ever seen, which is exactly why it lives in
// internal ids — so only the handle translations and the greedy waiting
// indexes rebase.
func (a *TGOA) Remap(workers, tasks []int32) {
	for i, h := range a.i2hW {
		if h >= 0 {
			a.i2hW[i] = workers[h]
		}
	}
	for i, h := range a.i2hT {
		if h >= 0 {
			a.i2hT[i] = tasks[h]
		}
	}
	a.waitingWorkers.Remap(workers)
	a.waitingTasks.Remap(tasks)
}

// OnWorkerWithdraw implements sim.WithdrawAwareAlgorithm: the greedy-phase
// waiting index drops the worker. Its ghost copy stays in the virtual
// matching on purpose — the hypothetical optimum ranges over every object
// ever seen, withdrawn ones included, exactly as it keeps matched and
// expired ones — and the second-half commit path re-checks availability
// through the platform, which now reports the worker dead.
func (a *TGOA) OnWorkerWithdraw(w int, now float64) { a.waitingWorkers.Remove(w) }

// OnTaskWithdraw is OnWorkerWithdraw for the task side.
func (a *TGOA) OnTaskWithdraw(t int, now float64) { a.waitingTasks.Remove(t) }

// nearestTask / nearestWorker are the greedy-phase searches.
func (a *TGOA) nearestTask(worker *model.Worker, now float64) int {
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	t, _ := a.waitingTasks.Nearest(worker.Loc, a.maxTaskBudget*velocity, func(t int) bool {
		if !a.p.TaskAvailable(t, now) {
			a.deadIDs = append(a.deadIDs, t)
			return false
		}
		return model.FeasibleAt(worker, a.p.Task(t), worker.Loc, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingTasks.Remove(id)
	}
	return t
}

func (a *TGOA) nearestWorker(task *model.Task, now float64) int {
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	w, _ := a.waitingWorkers.Nearest(task.Loc, task.Expiry*velocity, func(w int) bool {
		if !a.p.WorkerAvailable(w, now) {
			a.deadIDs = append(a.deadIDs, w)
			return false
		}
		worker := a.p.Worker(w)
		return model.FeasibleAt(worker, task, worker.Loc, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingWorkers.Remove(id)
	}
	return w
}

// feasibleWaitInPlace is the pair predicate of TGOA's own online model
// (workers never relocate): the match is struck when the later of the two
// objects arrives, and the worker departs its initial location then.
func feasibleWaitInPlace(w *model.Worker, r *model.Task, velocity float64) bool {
	if r.Release >= w.Deadline() {
		return false
	}
	depart := w.Arrive
	if r.Release > depart {
		depart = r.Release
	}
	return model.FeasibleAt(w, r, w.Loc, depart, velocity)
}

// augmentFromWorker extends the virtual maximum matching with one
// augmenting-path search rooted at a newly arrived worker. Feasibility uses
// the wait-in-place predicate of TGOA's model, so the virtual matching
// approximates the best assignment the algorithm could actually commit.
func (a *TGOA) augmentFromWorker(iw int32) {
	for i := range a.mark {
		a.mark[i] = false
	}
	a.tryAugmentW(iw)
}

func (a *TGOA) tryAugmentW(iw int32) bool {
	velocity := a.p.Velocity()
	worker := &a.ws[iw]
	for it := range a.ts {
		if a.mark[it] || !feasibleWaitInPlace(worker, &a.ts[it], velocity) {
			continue
		}
		a.mark[it] = true
		if a.virtT[it] == -1 || a.tryAugmentW(a.virtT[it]) {
			a.virtT[it] = iw
			a.virtW[iw] = int32(it)
			return true
		}
	}
	return false
}

// augmentFromTask is the symmetric search rooted at a new task: it walks
// workers and recurses through their virtual partners, using the reusable
// markW scratch so the task path is as allocation-free as the worker one.
func (a *TGOA) augmentFromTask(it int32) {
	for i := range a.markW {
		a.markW[i] = false
	}
	a.tryAugmentT(it)
}

func (a *TGOA) tryAugmentT(it int32) bool {
	velocity := a.p.Velocity()
	task := &a.ts[it]
	for iw := range a.ws {
		if a.markW[iw] || !feasibleWaitInPlace(&a.ws[iw], task, velocity) {
			continue
		}
		a.markW[iw] = true
		if a.virtW[iw] == -1 || a.tryAugmentT(a.virtW[iw]) {
			a.virtW[iw] = it
			a.virtT[it] = int32(iw)
			return true
		}
	}
	return false
}

var _ sim.Algorithm = (*TGOA)(nil)
