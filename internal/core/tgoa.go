package core

import (
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// TGOA is the two-sided online algorithm of Tong et al. (ICDE 2016) — the
// state-of-the-art whose 0.25 competitive ratio (random-order model) the
// paper's POLAR-OP nearly doubles. It is included as an additional
// reference baseline beyond the paper's own comparison set.
//
// The algorithm splits the arrival sequence in half. Objects in the first
// half are matched greedily (nearest feasible counterpart). For an object
// in the second half, the platform computes a maximum matching over *all*
// objects seen so far and commits the new object's pair only if its partner
// in that hypothetical optimal matching is still actually available —
// "greedy first half, optimal second half". The hypothetical matching is
// maintained incrementally: each arrival runs one augmenting-path search,
// so the total cost is O(n·E) rather than n recomputations.
//
// TGOA is inherently closed-world: locating the halfway point requires the
// total arrival count, which it takes from the session's Hints (a replay
// supplies the exact population). In a live session with zero hints the
// split never triggers and TGOA degrades to its greedy phase.
type TGOA struct {
	p sim.Platform

	total   int // hinted |W| + |R|, to locate the halfway point; 0 = unknown
	arrived int

	// Greedy-phase state (same machinery as SimpleGreedy).
	waitingWorkers *spatial.Index
	waitingTasks   *spatial.Index
	// maxTaskBudget is the running max of Dr over admitted tasks; pruning
	// with it is lossless, see the SimpleGreedy field of the same name.
	maxTaskBudget float64
	deadIDs       []int

	// Virtual maximum matching over all arrived objects, maintained by
	// incremental augmenting paths on the feasibility graph. All three
	// tables grow with the handles admitted so far.
	virtW []int32 // virtual partner task of each worker, -1 if none
	virtT []int32 // virtual partner worker of each task, -1 if none
	seenW []int32 // arrived workers
	seenT []int32 // arrived tasks
	mark  []bool  // scratch: visited tasks during augmenting search
	markW []bool  // scratch: visited workers during the task-rooted search
}

// NewTGOA creates the baseline.
func NewTGOA() *TGOA { return &TGOA{} }

// Name implements sim.Algorithm.
func (a *TGOA) Name() string { return "TGOA" }

// Init implements sim.Algorithm.
func (a *TGOA) Init(p sim.Platform) {
	a.p = p
	h := p.Hints()
	// The phase split needs the full population; a one-sided hint would
	// place the halfway point far too early, so it counts as unknown.
	a.total = 0
	if h.ExpectedWorkers > 0 && h.ExpectedTasks > 0 {
		a.total = h.ExpectedWorkers + h.ExpectedTasks
	}
	a.arrived = 0
	a.waitingWorkers = spatial.NewIndex(p.Bounds(), expectedOr(h.ExpectedWorkers, defaultIndexCapacity))
	a.waitingTasks = spatial.NewIndex(p.Bounds(), expectedOr(h.ExpectedTasks, defaultIndexCapacity))
	a.maxTaskBudget = 0
	a.virtW = a.virtW[:0]
	a.virtT = a.virtT[:0]
	a.seenW = a.seenW[:0]
	a.seenT = a.seenT[:0]
	a.mark = a.mark[:0]
	a.markW = a.markW[:0]
}

// secondHalf reports whether the current arrival falls in the
// optimal-matching-guided phase. With no population hint the halfway point
// is unknown and every arrival is treated as first-half.
func (a *TGOA) secondHalf() bool { return a.total > 0 && a.arrived*2 > a.total }

// OnWorkerArrival implements sim.Algorithm.
func (a *TGOA) OnWorkerArrival(w int, now float64) {
	a.arrived++
	a.seenW = append(a.seenW, int32(w))
	for int(w) >= len(a.virtW) {
		a.virtW = append(a.virtW, -1)
		a.markW = append(a.markW, false)
	}
	a.augmentFromWorker(int32(w))
	worker := a.p.Worker(w)
	velocity := a.p.Velocity()

	if !a.secondHalf() {
		// First half: plain greedy.
		if t := a.nearestTask(worker, now); t >= 0 && a.p.TryMatch(w, t, now) {
			a.waitingTasks.Remove(t)
			return
		}
		a.waitingWorkers.Insert(w, worker.Loc)
		return
	}
	// Second half: follow the hypothetical optimal matching.
	if t := a.virtW[w]; t >= 0 && a.p.TaskAvailable(int(t), now) &&
		model.FeasibleAt(worker, a.p.Task(int(t)), worker.Loc, now, velocity) {
		if a.p.TryMatch(w, int(t), now) {
			a.waitingTasks.Remove(int(t))
			return
		}
	}
	a.waitingWorkers.Insert(w, worker.Loc)
}

// OnTaskArrival implements sim.Algorithm.
func (a *TGOA) OnTaskArrival(t int, now float64) {
	a.arrived++
	a.seenT = append(a.seenT, int32(t))
	for int(t) >= len(a.virtT) {
		a.virtT = append(a.virtT, -1)
		a.mark = append(a.mark, false)
	}
	a.augmentFromTask(int32(t))
	task := a.p.Task(t)
	velocity := a.p.Velocity()
	if task.Expiry > a.maxTaskBudget {
		a.maxTaskBudget = task.Expiry
	}

	if !a.secondHalf() {
		if w := a.nearestWorker(task, now); w >= 0 && a.p.TryMatch(w, t, now) {
			a.waitingWorkers.Remove(w)
			return
		}
		a.waitingTasks.Insert(t, task.Loc)
		return
	}
	if w := a.virtT[t]; w >= 0 && a.p.WorkerAvailable(int(w), now) &&
		model.FeasibleAt(a.p.Worker(int(w)), task, a.p.Worker(int(w)).Loc, now, velocity) {
		if a.p.TryMatch(int(w), t, now) {
			a.waitingWorkers.Remove(int(w))
			return
		}
	}
	a.waitingTasks.Insert(t, task.Loc)
}

// OnFinish implements sim.Algorithm.
func (a *TGOA) OnFinish(now float64) {}

// nearestTask / nearestWorker are the greedy-phase searches.
func (a *TGOA) nearestTask(worker *model.Worker, now float64) int {
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	t, _ := a.waitingTasks.Nearest(worker.Loc, a.maxTaskBudget*velocity, func(t int) bool {
		if !a.p.TaskAvailable(t, now) {
			a.deadIDs = append(a.deadIDs, t)
			return false
		}
		return model.FeasibleAt(worker, a.p.Task(t), worker.Loc, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingTasks.Remove(id)
	}
	return t
}

func (a *TGOA) nearestWorker(task *model.Task, now float64) int {
	velocity := a.p.Velocity()
	a.deadIDs = a.deadIDs[:0]
	w, _ := a.waitingWorkers.Nearest(task.Loc, task.Expiry*velocity, func(w int) bool {
		if !a.p.WorkerAvailable(w, now) {
			a.deadIDs = append(a.deadIDs, w)
			return false
		}
		worker := a.p.Worker(w)
		return model.FeasibleAt(worker, task, worker.Loc, now, velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingWorkers.Remove(id)
	}
	return w
}

// feasibleWaitInPlace is the pair predicate of TGOA's own online model
// (workers never relocate): the match is struck when the later of the two
// objects arrives, and the worker departs its initial location then.
func feasibleWaitInPlace(w *model.Worker, r *model.Task, velocity float64) bool {
	if r.Release >= w.Deadline() {
		return false
	}
	depart := w.Arrive
	if r.Release > depart {
		depart = r.Release
	}
	return model.FeasibleAt(w, r, w.Loc, depart, velocity)
}

// augmentFromWorker extends the virtual maximum matching with one
// augmenting-path search rooted at a newly arrived worker. Feasibility uses
// the wait-in-place predicate of TGOA's model, so the virtual matching
// approximates the best assignment the algorithm could actually commit.
func (a *TGOA) augmentFromWorker(w int32) {
	for i := range a.mark {
		a.mark[i] = false
	}
	a.tryAugmentW(w)
}

func (a *TGOA) tryAugmentW(w int32) bool {
	velocity := a.p.Velocity()
	worker := a.p.Worker(int(w))
	for _, t := range a.seenT {
		if a.mark[t] || !feasibleWaitInPlace(worker, a.p.Task(int(t)), velocity) {
			continue
		}
		a.mark[t] = true
		if a.virtT[t] == -1 || a.tryAugmentW(a.virtT[t]) {
			a.virtT[t] = w
			a.virtW[w] = t
			return true
		}
	}
	return false
}

// augmentFromTask is the symmetric search rooted at a new task: it walks
// workers and recurses through their virtual partners, using the reusable
// markW scratch so the task path is as allocation-free as the worker one.
func (a *TGOA) augmentFromTask(t int32) {
	for i := range a.markW {
		a.markW[i] = false
	}
	a.tryAugmentT(t)
}

func (a *TGOA) tryAugmentT(t int32) bool {
	velocity := a.p.Velocity()
	task := a.p.Task(int(t))
	for _, w := range a.seenW {
		if a.markW[w] || !feasibleWaitInPlace(a.p.Worker(int(w)), task, velocity) {
			continue
		}
		a.markW[w] = true
		if a.virtW[w] == -1 || a.tryAugmentT(a.virtW[w]) {
			a.virtW[w] = t
			a.virtT[t] = w
			return true
		}
	}
	return false
}

var _ sim.Algorithm = (*TGOA)(nil)
