package core

import (
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/spatial"
)

// TGOA is the two-sided online algorithm of Tong et al. (ICDE 2016) — the
// state-of-the-art whose 0.25 competitive ratio (random-order model) the
// paper's POLAR-OP nearly doubles. It is included as an additional
// reference baseline beyond the paper's own comparison set.
//
// The algorithm splits the arrival sequence in half. Objects in the first
// half are matched greedily (nearest feasible counterpart). For an object
// in the second half, the platform computes a maximum matching over *all*
// objects seen so far and commits the new object's pair only if its partner
// in that hypothetical optimal matching is still actually available —
// "greedy first half, optimal second half". The hypothetical matching is
// maintained incrementally: each arrival runs one augmenting-path search,
// so the total cost is O(n·E) rather than n recomputations.
type TGOA struct {
	p sim.Platform

	total   int // |W| + |R|, to locate the halfway point
	arrived int

	// Greedy-phase state (same machinery as SimpleGreedy).
	waitingWorkers *spatial.Index
	waitingTasks   *spatial.Index
	maxTaskBudget  float64
	deadIDs        []int

	// Virtual maximum matching over all arrived objects, maintained by
	// incremental augmenting paths on the feasibility graph.
	virtW []int32 // virtual partner task of each worker, -1 if none
	virtT []int32 // virtual partner worker of each task, -1 if none
	seenW []int32 // arrived workers
	seenT []int32 // arrived tasks
	mark  []bool  // scratch: visited tasks during augmenting search
}

// NewTGOA creates the baseline.
func NewTGOA() *TGOA { return &TGOA{} }

// Name implements sim.Algorithm.
func (a *TGOA) Name() string { return "TGOA" }

// Init implements sim.Algorithm.
func (a *TGOA) Init(p sim.Platform) {
	a.p = p
	in := p.Instance()
	a.total = len(in.Workers) + len(in.Tasks)
	a.arrived = 0
	a.waitingWorkers = spatial.NewIndex(in.Bounds, len(in.Workers))
	a.waitingTasks = spatial.NewIndex(in.Bounds, len(in.Tasks))
	a.maxTaskBudget = 0
	for i := range in.Tasks {
		if in.Tasks[i].Expiry > a.maxTaskBudget {
			a.maxTaskBudget = in.Tasks[i].Expiry
		}
	}
	a.virtW = make([]int32, len(in.Workers))
	a.virtT = make([]int32, len(in.Tasks))
	for i := range a.virtW {
		a.virtW[i] = -1
	}
	for i := range a.virtT {
		a.virtT[i] = -1
	}
	a.seenW = a.seenW[:0]
	a.seenT = a.seenT[:0]
	a.mark = make([]bool, len(in.Tasks))
}

// OnWorkerArrival implements sim.Algorithm.
func (a *TGOA) OnWorkerArrival(w int, now float64) {
	a.arrived++
	a.seenW = append(a.seenW, int32(w))
	a.augmentFromWorker(int32(w))
	in := a.p.Instance()
	worker := &in.Workers[w]

	if a.arrived*2 <= a.total {
		// First half: plain greedy.
		if t := a.nearestTask(worker, now); t >= 0 && a.p.TryMatch(w, t, now) {
			a.waitingTasks.Remove(t)
			return
		}
		a.waitingWorkers.Insert(w, worker.Loc)
		return
	}
	// Second half: follow the hypothetical optimal matching.
	if t := a.virtW[w]; t >= 0 && a.p.TaskAvailable(int(t), now) &&
		model.FeasibleAt(worker, &in.Tasks[t], worker.Loc, now, in.Velocity) {
		if a.p.TryMatch(w, int(t), now) {
			a.waitingTasks.Remove(int(t))
			return
		}
	}
	a.waitingWorkers.Insert(w, worker.Loc)
}

// OnTaskArrival implements sim.Algorithm.
func (a *TGOA) OnTaskArrival(t int, now float64) {
	a.arrived++
	a.seenT = append(a.seenT, int32(t))
	a.augmentFromTask(int32(t))
	in := a.p.Instance()
	task := &in.Tasks[t]

	if a.arrived*2 <= a.total {
		if w := a.nearestWorker(task, now); w >= 0 && a.p.TryMatch(w, t, now) {
			a.waitingWorkers.Remove(w)
			return
		}
		a.waitingTasks.Insert(t, task.Loc)
		return
	}
	if w := a.virtT[t]; w >= 0 && a.p.WorkerAvailable(int(w), now) &&
		model.FeasibleAt(&in.Workers[w], task, in.Workers[w].Loc, now, in.Velocity) {
		if a.p.TryMatch(int(w), t, now) {
			a.waitingWorkers.Remove(int(w))
			return
		}
	}
	a.waitingTasks.Insert(t, task.Loc)
}

// OnFinish implements sim.Algorithm.
func (a *TGOA) OnFinish(now float64) {}

// nearestTask / nearestWorker are the greedy-phase searches.
func (a *TGOA) nearestTask(worker *model.Worker, now float64) int {
	in := a.p.Instance()
	a.deadIDs = a.deadIDs[:0]
	t, _ := a.waitingTasks.Nearest(worker.Loc, a.maxTaskBudget*in.Velocity, func(t int) bool {
		if !a.p.TaskAvailable(t, now) {
			a.deadIDs = append(a.deadIDs, t)
			return false
		}
		return model.FeasibleAt(worker, &in.Tasks[t], worker.Loc, now, in.Velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingTasks.Remove(id)
	}
	return t
}

func (a *TGOA) nearestWorker(task *model.Task, now float64) int {
	in := a.p.Instance()
	a.deadIDs = a.deadIDs[:0]
	w, _ := a.waitingWorkers.Nearest(task.Loc, task.Expiry*in.Velocity, func(w int) bool {
		if !a.p.WorkerAvailable(w, now) {
			a.deadIDs = append(a.deadIDs, w)
			return false
		}
		return model.FeasibleAt(&in.Workers[w], task, in.Workers[w].Loc, now, in.Velocity)
	})
	for _, id := range a.deadIDs {
		a.waitingWorkers.Remove(id)
	}
	return w
}

// feasibleWaitInPlace is the pair predicate of TGOA's own online model
// (workers never relocate): the match is struck when the later of the two
// objects arrives, and the worker departs its initial location then.
func feasibleWaitInPlace(w *model.Worker, r *model.Task, velocity float64) bool {
	if r.Release >= w.Deadline() {
		return false
	}
	depart := w.Arrive
	if r.Release > depart {
		depart = r.Release
	}
	return model.FeasibleAt(w, r, w.Loc, depart, velocity)
}

// augmentFromWorker extends the virtual maximum matching with one
// augmenting-path search rooted at a newly arrived worker. Feasibility uses
// the wait-in-place predicate of TGOA's model, so the virtual matching
// approximates the best assignment the algorithm could actually commit.
func (a *TGOA) augmentFromWorker(w int32) {
	for i := range a.mark {
		a.mark[i] = false
	}
	a.tryAugmentW(w)
}

func (a *TGOA) tryAugmentW(w int32) bool {
	in := a.p.Instance()
	worker := &in.Workers[w]
	for _, t := range a.seenT {
		if a.mark[t] || !feasibleWaitInPlace(worker, &in.Tasks[t], in.Velocity) {
			continue
		}
		a.mark[t] = true
		if a.virtT[t] == -1 || a.tryAugmentW(a.virtT[t]) {
			a.virtT[t] = w
			a.virtW[w] = t
			return true
		}
	}
	return false
}

// augmentFromTask is the symmetric search rooted at a new task: it walks
// workers and recurses through their virtual partners.
func (a *TGOA) augmentFromTask(t int32) {
	in := a.p.Instance()
	visited := make(map[int32]bool, 16)
	var try func(t int32) bool
	try = func(t int32) bool {
		task := &in.Tasks[t]
		for _, w := range a.seenW {
			if visited[w] || !feasibleWaitInPlace(&in.Workers[w], task, in.Velocity) {
				continue
			}
			visited[w] = true
			if a.virtW[w] == -1 || try(a.virtW[w]) {
				a.virtW[w] = t
				a.virtT[t] = w
				return true
			}
		}
		return false
	}
	try(t)
}

var _ sim.Algorithm = (*TGOA)(nil)
