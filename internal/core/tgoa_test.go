package core

import (
	"testing"

	"ftoa/internal/flow"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

func TestTGOAValidAndBounded(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers = 600
	cfg.NumTasks = 600
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(in, sim.Strict)
	res := eng.Run(NewTGOA())
	if err := res.Matching.Validate(in); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	opt := bruteForceOPT(in)
	if res.Matching.Size() > opt {
		t.Fatalf("TGOA (%d) above OPT (%d)", res.Matching.Size(), opt)
	}
	if res.Matching.Size() == 0 {
		t.Fatal("TGOA matched nothing")
	}
	// The guarantee is 0.25 of TGOA's own (wait-in-place) optimum; on
	// benign i.i.d. inputs it should clear a third of it comfortably.
	wipOpt := bruteForceWaitInPlaceOPT(in)
	if 3*res.Matching.Size() < wipOpt {
		t.Errorf("TGOA (%d) below wait-in-place OPT/3 (%d) — implausibly weak",
			res.Matching.Size(), wipOpt)
	}
}

// bruteForceWaitInPlaceOPT is bruteForceOPT under TGOA's own model: workers
// never relocate, so the match departs from Lw at the later arrival.
func bruteForceWaitInPlaceOPT(in *model.Instance) int {
	adj := make([][]int32, len(in.Tasks))
	for t := range in.Tasks {
		for w := range in.Workers {
			if feasibleWaitInPlace(&in.Workers[w], &in.Tasks[t], in.Velocity) {
				adj[t] = append(adj[t], int32(w))
			}
		}
	}
	_, _, size := flow.HopcroftKarp(len(in.Tasks), len(in.Workers), adj)
	return size
}

func TestTGOAVirtualMatchingIsMaximum(t *testing.T) {
	// After all arrivals the incremental virtual matching must equal the
	// offline maximum matching size.
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers = 300
	cfg.NumTasks = 300
	cfg.Seed = 5
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(in, sim.Strict)
	alg := NewTGOA()
	eng.Run(alg)
	virt := 0
	for _, v := range alg.virtW {
		if v >= 0 {
			virt++
		}
	}
	if want := bruteForceWaitInPlaceOPT(in); virt != want {
		t.Errorf("virtual matching %d != offline wait-in-place maximum %d", virt, want)
	}
}

func TestTGOAOnPaperExample(t *testing.T) {
	in := paperInstance()
	eng := sim.NewEngine(in, sim.Strict)
	res := eng.Run(NewTGOA())
	if err := res.Matching.Validate(in); err != nil {
		t.Fatal(err)
	}
	// TGOA waits in place like greedy, so on the toy example it cannot
	// beat the flexible-model algorithms; it must still find w1–r1.
	if res.Matching.Size() < 1 {
		t.Errorf("TGOA = %d, want at least 1", res.Matching.Size())
	}
	if res.Matching.Size() > 6 {
		t.Errorf("TGOA = %d exceeds OPT", res.Matching.Size())
	}
}
