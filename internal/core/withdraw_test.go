package core

import (
	"testing"

	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// TestWithdrawThroughAlgorithms feeds a recorded stream through every
// algorithm while withdrawing a spread of freshly admitted objects, the
// way the halo router retracts ghost copies. Invariants, for all six
// algorithms and both modes:
//
//   - no successfully withdrawn handle ever appears in a commit after its
//     withdrawal (TryMatch refuses it, whatever state the algorithm kept);
//   - no withdrawn handle appears in an expiry event (its lifecycle is
//     owned elsewhere);
//   - the session survives Finish with a consistent matching.
func TestWithdrawThroughAlgorithms(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 300, 300
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g := parityGuide(t, cfg)

	algs := []struct {
		name string
		mk   func() sim.Algorithm
	}{
		{"POLAR", func() sim.Algorithm { return NewPOLAR(g) }},
		{"POLAR-OP", func() sim.Algorithm { return NewPOLAROP(g) }},
		{"SimpleGreedy", func() sim.Algorithm { return NewSimpleGreedy() }},
		{"GR", func() sim.Algorithm { return NewGR(cfg.Horizon / 40) }},
		{"Hybrid", func() sim.Algorithm { return NewHybrid(g) }},
		{"TGOA", func() sim.Algorithm { return NewTGOA() }},
	}
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		for _, a := range algs {
			t.Run(a.name+"/"+mode.String(), func(t *testing.T) {
				m, err := sim.NewMatcher(sim.MatcherConfig{
					Mode:     mode,
					Velocity: in.Velocity,
					Bounds:   in.Bounds,
					Hints: sim.Hints{
						ExpectedWorkers: len(in.Workers),
						ExpectedTasks:   len(in.Tasks),
						Horizon:         in.Horizon,
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				sess := m.NewSession(a.mk())
				withdrawnW := map[int]bool{}
				withdrawnT := map[int]bool{}
				i := 0
				for _, ev := range in.Events() {
					i++
					switch ev.Kind {
					case model.WorkerArrival:
						h, err := sess.AddWorker(in.Workers[ev.Index])
						if err != nil {
							t.Fatal(err)
						}
						// Withdraw every 5th worker right after admission —
						// the tightest race a ghost retraction can lose.
						if i%5 == 0 && sess.WithdrawWorker(h) {
							withdrawnW[h] = true
						}
					case model.TaskArrival:
						h, err := sess.AddTask(in.Tasks[ev.Index])
						if err != nil {
							t.Fatal(err)
						}
						if i%7 == 0 && sess.WithdrawTask(h) {
							withdrawnT[h] = true
						}
					}
				}
				sess.Finish()
				if len(withdrawnW) == 0 || len(withdrawnT) == 0 {
					t.Fatal("test withdrew nothing; not exercising the path")
				}
				for _, ev := range sess.DrainEvents(nil) {
					switch ev.Kind {
					case sim.EventMatch:
						if withdrawnW[ev.Worker] {
							t.Fatalf("withdrawn worker %d committed at %v", ev.Worker, ev.Time)
						}
						if withdrawnT[ev.Task] {
							t.Fatalf("withdrawn task %d committed at %v", ev.Task, ev.Time)
						}
					case sim.EventWorkerExpired:
						if withdrawnW[ev.Worker] {
							t.Fatalf("withdrawn worker %d expired at %v", ev.Worker, ev.Time)
						}
					case sim.EventTaskExpired:
						if withdrawnT[ev.Task] {
							t.Fatalf("withdrawn task %d expired at %v", ev.Task, ev.Time)
						}
					}
				}
				if sess.Matches() == 0 {
					t.Fatal("no matches at all; instance too sparse to prove anything")
				}
			})
		}
	}
}
