package experiments

import (
	"fmt"
	"strings"

	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/predict"
	"ftoa/internal/workload"
)

// cityDrSweep is the Dr sweep of Figure 5(c,d,g,h,k,l) / Table 3.
var cityDrSweep = []float64{0.5, 0.75, 1.0, 1.25, 1.5}

// scaleCity shrinks a city configuration for scaled-down runs: populations
// scale linearly and the spatial grid by the square root, so per-cell
// densities — and thus prediction difficulty — stay at paper levels (see
// Options.scaledSide). Slot width is untouched: it must stay comparable to
// the deadlines under study.
func scaleCity(city workload.City, opts Options) workload.City {
	city.WorkersPerDay = opts.scaled(city.WorkersPerDay)
	city.TasksPerDay = opts.scaled(city.TasksPerDay)
	origCols := city.Cols
	city.Cols = opts.scaledSide(city.Cols)
	city.Rows = opts.scaledSide(city.Rows)
	// The city's space *is* its grid, so shrinking the grid shrinks every
	// distance; velocity must shrink by the same factor or the reach
	// radius Dr·v would cover the whole scaled city and wait-in-place
	// baselines would trivially match everything.
	city.Velocity *= float64(city.Cols) / float64(origCols)
	city.Seed += opts.Seed
	return city
}

// Beijing reproduces Figure 5(c,g,k): the Beijing trace with Dr varied.
func Beijing(opts Options) (*Result, error) {
	return cityExperiment("fig5-bj", workload.Beijing(), opts)
}

// Hangzhou reproduces Figure 5(d,h,l): the Hangzhou trace with Dr varied.
func Hangzhou(opts Options) (*Result, error) {
	return cityExperiment("fig5-hz", workload.Hangzhou(), opts)
}

// cityExperiment runs the real-data pipeline end to end: generate the
// multi-day trace, train the framework's predictor (HP-MSI, the Table 5
// winner) on the history, build the guide from its forecasts for the test
// day, and replay the test day under every algorithm for each Dr.
func cityExperiment(id string, city workload.City, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	city = scaleCity(city, opts)
	tr, err := city.Generate()
	if err != nil {
		return nil, err
	}
	testDay := city.Days - 1
	trainDays := testDay

	wPred, tPred, err := forecastDay(tr, trainDays, testDay)
	if err != nil {
		return nil, err
	}

	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	res := &Result{
		ID:         id,
		Title:      fmt.Sprintf("Fig 5 (%s trace): varying deadline Dr", city.Name),
		XLabel:     "Dr",
		Algorithms: opts.algorithms(),
		Notes: []string{
			fmt.Sprintf("%s substitute trace; HP-MSI forecasts %d workers and %d tasks for the test day",
				city.Name, sum(wPred), sum(tPred)),
		},
	}
	// Each Dr row rebuilds its instance and guide from the shared read-only
	// trace and forecasts, so rows parallelise exactly like the synthetic
	// sweeps (Trace.Instance derives a fresh RNG per call).
	res.Rows = make([]Row, len(cityDrSweep))
	err = forEach(opts, len(cityDrSweep), func(i int) error {
		dr := cityDrSweep[i]
		var in *model.Instance
		var g *guide.Guide
		var err error
		opts.pool.do(func() {
			if in, err = tr.Instance(testDay, dr); err != nil {
				return
			}
			g, err = guide.Build(guide.Config{
				Grid:            tr.Grid,
				Slots:           tr.Slots,
				Velocity:        city.Velocity,
				WorkerPatience:  city.WorkerPatience,
				TaskExpiry:      dr,
				MaxEdgesPerCell: opts.GuideMaxEdges,
				RepSlack:        tr.Slots.Width() / 2,
			}, wPred, tPred)
		})
		if err != nil {
			return err
		}
		res.Rows[i] = Row{X: fmtF(dr), ByAlgo: runAll(in, g, opts)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// forecastDay trains HP-MSI on both sides of the trace history and returns
// integer count forecasts for the test day.
func forecastDay(tr *workload.Trace, trainDays, testDay int) (workers, tasks []int, err error) {
	wSeries, tSeries, err := traceSeries(tr)
	if err != nil {
		return nil, nil, err
	}
	wp := predict.NewHPMSI()
	if err := wp.Fit(wSeries, trainDays); err != nil {
		return nil, nil, err
	}
	tp := predict.NewHPMSI()
	if err := tp.Fit(tSeries, trainDays); err != nil {
		return nil, nil, err
	}
	workers = predict.ToCounts(predict.PredictDay(wp, wSeries, testDay))
	tasks = predict.ToCounts(predict.PredictDay(tp, tSeries, testDay))
	return workers, tasks, nil
}

// traceSeries converts a city trace's histories into predict.Series.
func traceSeries(tr *workload.Trace) (workers, tasks *predict.Series, err error) {
	days := tr.City.Days
	slots := tr.City.SlotsPerDay
	areas := tr.Grid.NumCells()
	flatten := func(src [][]int) []int {
		out := make([]int, 0, days*slots*areas)
		for d := 0; d < days; d++ {
			out = append(out, src[d]...)
		}
		return out
	}
	weather := make([]float64, 0, days*slots)
	for d := 0; d < days; d++ {
		weather = append(weather, tr.Weather[d]...)
	}
	workers, err = predict.NewSeries(days, slots, areas, flatten(tr.WorkerCounts), weather, tr.DayOfWeek)
	if err != nil {
		return nil, nil, err
	}
	tasks, err = predict.NewSeries(days, slots, areas, flatten(tr.TaskCounts), weather, tr.DayOfWeek)
	return workers, tasks, err
}

// PredictionTable reproduces Table 5: the seven prediction methods
// evaluated with RMSLE and ER on both cities, for tasks (customers) and
// workers (taxis). The framework adopts the method with the best overall
// scores (HP-MSI in the paper).
func PredictionTable(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:     "table5",
		Title:  "Table 5: prediction evaluation on the city traces",
		XLabel: "Method",
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "Method")
	for _, col := range []string{"BJ-task", "HZ-task", "BJ-worker", "HZ-worker"} {
		fmt.Fprintf(&sb, "  %9s-RMSLE %9s-ER", col, col)
	}
	sb.WriteByte('\n')

	type cityEval struct {
		name             string
		wSeries, tSeries *predict.Series
		trainDays        int
	}
	var cities []cityEval
	for _, cfg := range []workload.City{workload.Beijing(), workload.Hangzhou()} {
		cfg = scaleCity(cfg, opts)
		tr, err := cfg.Generate()
		if err != nil {
			return nil, err
		}
		w, t, err := traceSeries(tr)
		if err != nil {
			return nil, err
		}
		cities = append(cities, cityEval{name: cfg.Name, wSeries: w, tSeries: t, trainDays: cfg.Days - 3})
	}

	makePredictor := func(name string) predict.Predictor {
		switch name {
		case "HA":
			return predict.NewHA()
		case "ARIMA":
			return predict.NewARIMA()
		case "GBRT":
			return predict.NewGBRT()
		case "PAQ":
			return predict.NewPAQ()
		case "LR":
			return predict.NewLR()
		case "NN":
			return predict.NewNeuralNet()
		default:
			return predict.NewHPMSI()
		}
	}

	methods := []string{"HA", "ARIMA", "GBRT", "PAQ", "LR", "NN", "HP-MSI"}
	for _, m := range methods {
		fmt.Fprintf(&sb, "%-8s", m)
		// Column order mirrors Table 5: task side both cities, then worker
		// side both cities.
		for _, side := range []string{"task", "worker"} {
			for _, c := range cities {
				s := c.tSeries
				if side == "worker" {
					s = c.wSeries
				}
				p := makePredictor(m)
				if err := p.Fit(s, c.trainDays); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", m, c.name, err)
				}
				var rmsle, er float64
				n := 0
				for day := c.trainDays; day < s.Days; day++ {
					actual := predict.ActualDay(s, day)
					pred := predict.PredictDay(p, s, day)
					rmsle += predict.RMSLE(actual, pred, s.Slots, s.Areas)
					er += predict.ErrorRate(actual, pred, s.Slots, s.Areas)
					n++
				}
				fmt.Fprintf(&sb, "  %15.3f %12.3f", rmsle/float64(n), er/float64(n))
			}
		}
		sb.WriteByte('\n')
	}
	res.Notes = append(res.Notes, "columns: task side (Beijing, Hangzhou) then worker side (Beijing, Hangzhou)")
	res.Custom = sb.String()
	return res, nil
}
