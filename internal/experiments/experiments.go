// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6): the synthetic sweeps of Figures 4 and 6, the
// slot-count, scalability and real-data experiments of Figure 5, the
// prediction comparison of Table 5, and an empirical competitive-ratio
// ablation for Theorems 1–2. Each experiment prints the same series the
// paper plots: matching size, running time and memory per algorithm
// (SimpleGreedy, GR, POLAR, POLAR-OP, OPT) against the swept parameter.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftoa/internal/core"
	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
	"ftoa/internal/workload"
)

// Algorithm labels, in the paper's plotting order.
const (
	AlgoSimpleGreedy = "SimpleGreedy"
	AlgoGR           = "GR"
	AlgoPOLAR        = "POLAR"
	AlgoPOLAROP      = "POLAR-OP"
	AlgoOPT          = "OPT"
)

// DefaultAlgorithms is the paper's comparison set.
var DefaultAlgorithms = []string{AlgoSimpleGreedy, AlgoGR, AlgoPOLAR, AlgoPOLAROP, AlgoOPT}

// Metric holds the three per-algorithm measurements every panel reports.
type Metric struct {
	MatchingSize int
	Seconds      float64
	MemoryMB     float64
}

// Row is one x-axis point.
type Row struct {
	X      string
	ByAlgo map[string]Metric
}

// Result is one experiment's full output.
type Result struct {
	ID         string
	Title      string
	XLabel     string
	Algorithms []string
	Rows       []Row
	// Notes carries experiment-specific remarks (e.g. "OPT omitted").
	Notes []string
	// Custom, when non-empty, replaces the metric tables with free-form
	// output (used by Table 5 and the ratio ablation, whose shapes differ
	// from the per-algorithm panels).
	Custom string
}

// Print renders the three metric tables the paper's panels plot, or the
// Custom block for table-shaped experiments.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	if r.Custom != "" {
		fmt.Fprint(w, r.Custom)
		fmt.Fprintln(w)
		return
	}
	sections := []struct {
		name string
		get  func(Metric) string
	}{
		{"Matching size", func(m Metric) string { return fmt.Sprintf("%d", m.MatchingSize) }},
		{"Time (s)", func(m Metric) string { return fmt.Sprintf("%.3f", m.Seconds) }},
		{"Memory (MB)", func(m Metric) string { return fmt.Sprintf("%.1f", m.MemoryMB) }},
	}
	for _, sec := range sections {
		fmt.Fprintf(w, "-- %s --\n", sec.name)
		fmt.Fprintf(w, "%-12s", r.XLabel)
		for _, a := range r.Algorithms {
			fmt.Fprintf(w, "%14s", a)
		}
		fmt.Fprintln(w)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%-12s", row.X)
			for _, a := range r.Algorithms {
				if m, ok := row.ByAlgo[a]; ok {
					fmt.Fprintf(w, "%14s", sec.get(m))
				} else {
					fmt.Fprintf(w, "%14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// Options tunes experiment execution.
type Options struct {
	// Scale multiplies the paper's population sizes, letting tests and
	// benchmarks run the same sweeps at reduced cost. 1.0 = paper scale.
	Scale float64
	// Strict switches match validation to the honest platform semantics
	// (worker movement simulated, deadline rechecked at commit time). The
	// default, false, reproduces the paper's counting, which assumes every
	// guide-matched pair is feasible in reality (the stated assumption
	// before Lemma 1). See DESIGN.md §3.2.
	Strict bool
	// SkipOPT drops the OPT series everywhere (it dominates runtime).
	SkipOPT bool
	// OPTCandidates caps OPT's per-task candidate workers (default 64).
	OPTCandidates int
	// GuideMaxEdges caps guide edges per cell (default 128).
	GuideMaxEdges int
	// GRWindow is the batching window in slot units (default 0.25, which
	// gives GR its paper-reported "marginally outperforms SimpleGreedy"
	// position without starving task deadlines).
	GRWindow float64
	// Seed offsets workload seeds, for variance studies.
	Seed uint64
	// Parallelism bounds the worker pool that runs sweep rows — and the
	// independent algorithm replays within each row — concurrently.
	// 0 or 1 keeps the fully sequential path, which is also the only mode
	// with meaningful per-algorithm memory measurements (the allocation
	// counter is process-wide). Negative means GOMAXPROCS. Results are
	// deterministic and bit-identical to the sequential path on matching
	// sizes: every row derives its own seed and every replay runs on a
	// private engine clone.
	Parallelism int

	// pool is the shared bounded worker pool, created by withDefaults.
	pool *pool
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.OPTCandidates == 0 {
		o.OPTCandidates = 64
	}
	if o.GuideMaxEdges == 0 {
		o.GuideMaxEdges = 128
	}
	if o.GRWindow <= 0 {
		o.GRWindow = 0.25
	}
	if o.pool == nil {
		o.pool = newPool(o.parallelism())
	}
	return o
}

// parallelism resolves the Parallelism knob to a worker count.
func (o Options) parallelism() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	default:
		return o.Parallelism
	}
}

// parallel reports whether the experiment runs on the concurrent path.
func (o Options) parallel() bool { return o.parallelism() > 1 }

// pool is a bounded worker pool: at most cap(sem) submitted functions
// compute at once. A sequential pool (nil sem) runs callers inline. Slots
// are held only while a leaf unit of work computes — coordinating
// goroutines never hold one while waiting on children — so nested fan-out
// (rows spawning per-algorithm replays) cannot deadlock.
type pool struct {
	sem chan struct{}
}

func newPool(par int) *pool {
	if par <= 1 {
		return &pool{}
	}
	return &pool{sem: make(chan struct{}, par)}
}

// do runs fn, blocking while the pool is saturated.
func (p *pool) do(fn func()) {
	if p.sem == nil {
		fn()
		return
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// forEach runs fn(i) for every i in [0, n), fanning out across at most
// parallelism() concurrent workers when the options ask for parallelism
// and inline otherwise. Bounding the in-flight calls (rather than just
// the pool's compute slots) keeps peak memory at O(parallelism) rows —
// a finished row's instance, guide and engine clones are released before
// the worker claims the next index. It returns the first non-nil error
// by index, so error identity is deterministic.
func forEach(opts Options, n int, fn func(i int) error) error {
	if !opts.parallel() || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := opts.parallelism()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scaled multiplies a paper population by the scale factor, keeping at
// least a handful of objects.
func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

// scaledSide scales a spatial discretisation dimension (grid side or
// rows/cols) by the square root of Scale. Populations scale by s while the
// spatial cell count scales by (√s)² = s, so per-cell object density —
// which drives prediction quality and hence guide usefulness — stays at
// paper level in scaled-down runs. The temporal discretisation is NOT
// scaled: slot width must stay small relative to the deadlines Dr and Dw,
// otherwise the guide's representative times become meaningless.
func (o Options) scaledSide(n int) int {
	v := int(float64(n)*math.Sqrt(o.Scale) + 0.5)
	if v < 4 {
		v = 4
	}
	return v
}

// runAll runs the full comparison set on one instance and returns metrics
// keyed by algorithm label. guideCfg and counts parameterise the guide the
// POLAR variants use; OPT runs unless opts.SkipOPT.
//
// On the sequential path every replay measures its own heap allocation (the
// paper's memory metric). On the parallel path each algorithm replays on a
// private clone of the engine, gated by the shared worker pool; MemoryMB is
// reported as 0 there because the allocation counter is process-wide.
func runAll(in *model.Instance, g *guide.Guide, opts Options) map[string]Metric {
	mode := sim.AssumeGuide
	if opts.Strict {
		mode = sim.Strict
	}
	mkAlgs := func() []sim.Algorithm {
		return []sim.Algorithm{
			core.NewSimpleGreedy(),
			core.NewGR(opts.GRWindow),
			core.NewPOLAR(g),
			core.NewPOLAROP(g),
		}
	}

	if !opts.parallel() {
		out := make(map[string]Metric, 5)
		eng := sim.NewEngine(in, mode, sim.WithAllocTracking())
		for _, alg := range mkAlgs() {
			res := eng.Run(alg)
			out[res.Algorithm] = Metric{
				MatchingSize: res.Matching.Size(),
				Seconds:      res.Elapsed.Seconds(),
				MemoryMB:     float64(res.AllocBytes) / (1 << 20),
			}
		}
		if !opts.SkipOPT {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			before := ms.TotalAlloc
			start := time.Now()
			m := core.OPT(in, core.OPTOptions{MaxCandidates: opts.OPTCandidates})
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms)
			out[AlgoOPT] = Metric{
				MatchingSize: m.Size(),
				Seconds:      elapsed.Seconds(),
				MemoryMB:     float64(ms.TotalAlloc-before) / (1 << 20),
			}
		}
		return out
	}

	algs := mkAlgs()
	names := make([]string, len(algs))
	metrics := make([]Metric, len(algs)+1) // last slot is OPT
	base := sim.NewEngine(in, mode)
	var wg sync.WaitGroup
	for i, alg := range algs {
		names[i] = alg.Name()
		wg.Add(1)
		go func(i int, alg sim.Algorithm) {
			defer wg.Done()
			opts.pool.do(func() {
				// The first replay reuses the base engine's state slices;
				// the rest clone inside their pool slot so per-run state
				// is only allocated once a replay is actually admitted.
				eng := base
				if i > 0 {
					eng = base.Clone()
				}
				res := eng.Run(alg)
				metrics[i] = Metric{
					MatchingSize: res.Matching.Size(),
					Seconds:      res.Elapsed.Seconds(),
				}
			})
		}(i, alg)
	}
	if !opts.SkipOPT {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts.pool.do(func() {
				start := time.Now()
				m := core.OPT(in, core.OPTOptions{MaxCandidates: opts.OPTCandidates})
				metrics[len(algs)] = Metric{
					MatchingSize: m.Size(),
					Seconds:      time.Since(start).Seconds(),
				}
			})
		}()
	}
	wg.Wait()

	out := make(map[string]Metric, len(algs)+1)
	for i, name := range names {
		// POLAR's Name() is "POLAR" etc., matching the Algo constants.
		out[name] = metrics[i]
	}
	if !opts.SkipOPT {
		out[AlgoOPT] = metrics[len(algs)]
	}
	return out
}

// buildSyntheticGuide derives the guide from the generating distribution's
// expected counts — the i.i.d.-model setup of the synthetic experiments.
func buildSyntheticGuide(cfg workload.Synthetic, gridSide, slots int, opts Options) (*guide.Guide, error) {
	grid := geo.NewGrid(cfg.Bounds(), gridSide, gridSide)
	sl := timeslot.New(cfg.Horizon, slots)
	wc, tc := cfg.ExpectedCounts(grid, sl)
	return guide.Build(guide.Config{
		Grid:            grid,
		Slots:           sl,
		Velocity:        cfg.Velocity,
		WorkerPatience:  cfg.WorkerPatience,
		TaskExpiry:      cfg.TaskExpiry,
		MaxEdgesPerCell: opts.GuideMaxEdges,
		RepSlack:        sl.Width() / 2,
	}, wc, tc)
}

// syntheticPoint generates an instance for cfg, builds its guide, and runs
// the comparison set. Instance generation and guide construction are gated
// through the worker pool so concurrent rows respect the parallelism bound.
func syntheticPoint(cfg workload.Synthetic, gridSide, slots int, opts Options) (map[string]Metric, error) {
	var in *model.Instance
	var g *guide.Guide
	var err error
	opts.pool.do(func() {
		if in, err = cfg.Generate(); err != nil {
			return
		}
		g, err = buildSyntheticGuide(cfg, gridSide, slots, opts)
	})
	if err != nil {
		return nil, err
	}
	return runAll(in, g, opts), nil
}

// algorithms returns the algorithm list for a result, honouring SkipOPT.
func (o Options) algorithms() []string {
	if o.SkipOPT {
		return DefaultAlgorithms[:4]
	}
	return DefaultAlgorithms
}

// Registry maps experiment ids to runners, for the CLI.
type Runner func(Options) (*Result, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs lists registered experiment ids in registration order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	return out
}

// Timing is one machine-readable per-experiment wall-clock sample. The
// bench CLI emits these as JSON so successive PRs have a perf trajectory
// to gate against.
type Timing struct {
	ID          string  `json:"id"`
	Seconds     float64 `json:"seconds"`
	Parallelism int     `json:"parallelism"`
	Scale       float64 `json:"scale"`
}

// Run executes the given experiments in registration order, printing each
// to w, and returns a wall-clock timing per experiment.
func Run(ids []string, opts Options, w io.Writer) ([]Timing, error) {
	opts = opts.withDefaults()
	timings := make([]Timing, 0, len(ids))
	for _, id := range ids {
		runner, ok := registry[id]
		if !ok {
			return timings, fmt.Errorf("experiment %s: unknown id", id)
		}
		start := time.Now()
		res, err := runner(opts)
		if err != nil {
			return timings, fmt.Errorf("experiment %s: %w", id, err)
		}
		timings = append(timings, Timing{
			ID:          id,
			Seconds:     time.Since(start).Seconds(),
			Parallelism: opts.parallelism(),
			Scale:       opts.Scale,
		})
		res.Print(w)
	}
	return timings, nil
}

// All runs every registered experiment in order.
func All(opts Options, w io.Writer) error {
	_, err := Run(IDs(), opts, w)
	return err
}

// fmtInt renders an integer x-axis value compactly (20000 → "20000").
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }

// fmtF renders a float x-axis value trimming trailing zeros.
func fmtF(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// buildSyntheticGuideMinCost is buildSyntheticGuide with an explicit
// min-cost toggle, used by the guide ablation.
func buildSyntheticGuideMinCost(cfg workload.Synthetic, gridSide, slots int, opts Options, minCost bool) (*guide.Guide, error) {
	grid := geo.NewGrid(cfg.Bounds(), gridSide, gridSide)
	sl := timeslot.New(cfg.Horizon, slots)
	wc, tc := cfg.ExpectedCounts(grid, sl)
	return guide.Build(guide.Config{
		Grid:            grid,
		Slots:           sl,
		Velocity:        cfg.Velocity,
		WorkerPatience:  cfg.WorkerPatience,
		TaskExpiry:      cfg.TaskExpiry,
		MaxEdgesPerCell: opts.GuideMaxEdges,
		RepSlack:        sl.Width() / 2,
		MinCost:         minCost,
	}, wc, tc)
}
