package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// testOpts shrinks the sweeps enough for CI while keeping per-cell
// densities (and thus the papers' qualitative shapes) at paper level.
func testOpts() Options {
	return Options{Scale: 0.02}
}

func metric(t *testing.T, r *Result, x, algo string) Metric {
	t.Helper()
	for _, row := range r.Rows {
		if row.X == x {
			m, ok := row.ByAlgo[algo]
			if !ok {
				t.Fatalf("no %s metric at x=%s", algo, x)
			}
			return m
		}
	}
	t.Fatalf("no row with x=%s", x)
	return Metric{}
}

func TestVaryWShape(t *testing.T) {
	res, err := VaryW(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	for _, algo := range DefaultAlgorithms {
		// Matching size must grow with |W| (more edges in the graph).
		if last.ByAlgo[algo].MatchingSize <= first.ByAlgo[algo].MatchingSize {
			t.Errorf("%s did not grow with |W|: %d -> %d", algo,
				first.ByAlgo[algo].MatchingSize, last.ByAlgo[algo].MatchingSize)
		}
	}
	for _, row := range res.Rows {
		// The paper's ordering at defaults: POLAR-OP ≥ POLAR, and OPT tops
		// everything.
		if row.ByAlgo[AlgoPOLAROP].MatchingSize < row.ByAlgo[AlgoPOLAR].MatchingSize {
			t.Errorf("x=%s: POLAR-OP below POLAR", row.X)
		}
		for _, algo := range DefaultAlgorithms[:4] {
			if row.ByAlgo[algo].MatchingSize > row.ByAlgo[AlgoOPT].MatchingSize {
				t.Errorf("x=%s: %s above OPT", row.X, algo)
			}
		}
	}
	// On the default (hotspot-separated) workload the guided algorithm
	// must beat the wait-in-place baselines at the largest sizes.
	if last.ByAlgo[AlgoPOLAROP].MatchingSize <= last.ByAlgo[AlgoSimpleGreedy].MatchingSize {
		t.Errorf("POLAR-OP (%d) not above SimpleGreedy (%d) at max |W|",
			last.ByAlgo[AlgoPOLAROP].MatchingSize, last.ByAlgo[AlgoSimpleGreedy].MatchingSize)
	}
}

func TestVaryDeadlineShape(t *testing.T) {
	res, err := VaryDeadline(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Matching size grows with Dr (Fig 4c): compare endpoints, which is
	// robust to the sampling noise of scaled-down runs. The guide-bound
	// algorithms saturate once the guide matches everything matchable, so
	// only require they do not shrink materially.
	for _, algo := range DefaultAlgorithms {
		first := res.Rows[0].ByAlgo[algo].MatchingSize
		last := res.Rows[len(res.Rows)-1].ByAlgo[algo].MatchingSize
		if last < first {
			t.Errorf("%s shrank across the Dr sweep: %d -> %d", algo, first, last)
		}
	}
	// At the tightest deadline the guided algorithms dominate the
	// wait-in-place baselines decisively.
	tight := res.Rows[0]
	if tight.ByAlgo[AlgoPOLAROP].MatchingSize <= tight.ByAlgo[AlgoSimpleGreedy].MatchingSize {
		t.Errorf("POLAR-OP (%d) not above SimpleGreedy (%d) at Dr=1",
			tight.ByAlgo[AlgoPOLAROP].MatchingSize, tight.ByAlgo[AlgoSimpleGreedy].MatchingSize)
	}
}

func TestVaryGridShape(t *testing.T) {
	res, err := VaryGrid(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Refining the grid reduces POLAR's matching (fewer objects per cell,
	// Fig 4d): compare the coarsest and finest settings.
	first := res.Rows[0].ByAlgo[AlgoPOLAROP].MatchingSize
	last := res.Rows[len(res.Rows)-1].ByAlgo[AlgoPOLAROP].MatchingSize
	if last >= first {
		t.Errorf("POLAR-OP did not degrade with grid refinement: %d -> %d", first, last)
	}
	// SimpleGreedy ignores the grid; its size must stay flat.
	g0 := res.Rows[0].ByAlgo[AlgoSimpleGreedy].MatchingSize
	for _, row := range res.Rows {
		g := row.ByAlgo[AlgoSimpleGreedy].MatchingSize
		if g != g0 {
			t.Errorf("SimpleGreedy changed with prediction grid: %d vs %d", g, g0)
		}
	}
}

func TestVarySpatialMeanCrossover(t *testing.T) {
	res, err := VarySpatialMean(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 6c observation: when worker and task hotspots
	// coincide (mean = 0.25), wait-in-place is competitive — greedy beats
	// the guide-bound algorithms; once the hotspots separate (mean ≥ 0.5),
	// guidance wins.
	coincide := metric(t, res, "0.25", AlgoSimpleGreedy)
	if coincide.MatchingSize < metric(t, res, "0.25", AlgoPOLAROP).MatchingSize {
		t.Log("note: greedy below POLAR-OP at mean=0.25 (allowed, but unexpected)")
	}
	sep := metric(t, res, "0.625", AlgoPOLAROP)
	if sep.MatchingSize <= metric(t, res, "0.625", AlgoSimpleGreedy).MatchingSize {
		t.Errorf("POLAR-OP (%d) not above greedy (%d) at mean=0.625",
			sep.MatchingSize, metric(t, res, "0.625", AlgoSimpleGreedy).MatchingSize)
	}
	// Matching size decays as the hotspots separate.
	if metric(t, res, "0.75", AlgoOPT).MatchingSize >= metric(t, res, "0.25", AlgoOPT).MatchingSize {
		t.Error("OPT did not decay with hotspot separation")
	}
}

func TestScalabilityOmitsOPT(t *testing.T) {
	opts := testOpts()
	opts.Scale = 0.002 // 400..2000 objects over the scalability sweep
	res, err := Scalability(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if _, ok := row.ByAlgo[AlgoOPT]; ok {
			t.Fatal("scalability must omit OPT")
		}
		if len(row.ByAlgo) != 4 {
			t.Fatalf("expected 4 algorithms, got %d", len(row.ByAlgo))
		}
	}
	if len(res.Notes) == 0 {
		t.Error("missing OPT-omitted note")
	}
}

func TestCityExperimentShape(t *testing.T) {
	res, err := Beijing(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cityDrSweep) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		opt := row.ByAlgo[AlgoOPT].MatchingSize
		for _, algo := range DefaultAlgorithms[:4] {
			m := row.ByAlgo[algo]
			if m.MatchingSize <= 0 {
				t.Errorf("Dr=%s: %s matched nothing", row.X, algo)
			}
			if m.MatchingSize > opt {
				t.Errorf("Dr=%s: %s (%d) above OPT (%d)", row.X, algo, m.MatchingSize, opt)
			}
		}
		// The paper's real-data finding: POLAR-OP above POLAR.
		if row.ByAlgo[AlgoPOLAROP].MatchingSize < row.ByAlgo[AlgoPOLAR].MatchingSize {
			t.Errorf("Dr=%s: POLAR-OP below POLAR", row.X)
		}
	}
}

func TestCompetitiveRatioBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio experiment runs 12 full instances")
	}
	res, err := CompetitiveRatio(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The custom block carries min/mean; parse crudely.
	if !strings.Contains(res.Custom, "POLAR") || !strings.Contains(res.Custom, "0.47") {
		t.Fatalf("unexpected ratio output: %s", res.Custom)
	}
	// Stronger: re-check the numbers are sane by scanning for a ratio
	// below the proven bounds minus slack.
	for _, line := range strings.Split(res.Custom, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		if fields[0] == "POLAR" || fields[0] == "POLAR-OP" {
			var min float64
			if _, err := fmtSscan(fields[1], &min); err != nil {
				t.Fatalf("cannot parse %q", line)
			}
			bound := 0.40
			if fields[0] == "POLAR-OP" {
				bound = 0.47
			}
			// The bounds hold with high probability; allow small slack for
			// finite-size effects.
			if min < bound-0.05 {
				t.Errorf("%s empirical min ratio %.3f below bound %.2f", fields[0], min, bound)
			}
		}
	}
}

func TestPredictionTableRuns(t *testing.T) {
	res, err := PredictionTable(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Custom == "" {
		t.Fatal("no table produced")
	}
	for _, m := range []string{"HA", "ARIMA", "GBRT", "PAQ", "LR", "NN", "HP-MSI"} {
		if !strings.Contains(res.Custom, m) {
			t.Errorf("method %s missing from table", m)
		}
	}
}

func TestRegistryAndPrint(t *testing.T) {
	ids := IDs()
	if len(ids) != 17 {
		t.Fatalf("registered experiments = %d, want 17", len(ids))
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
	// Print renders all sections.
	res, err := VaryW(Options{Scale: 0.002, SkipOPT: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Matching size", "Time (s)", "Memory (MB)", "fig4-w"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q", want)
		}
	}
}

// fmtSscan avoids importing fmt solely for one parse in the test body
// above; it wraps fmt.Sscan.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
