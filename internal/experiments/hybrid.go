package experiments

import (
	"ftoa/internal/core"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

func init() {
	register("ablation-hybrid", HybridAblation)
	register("ablation-mincost", MinCostAblation)
	register("ablation-strict", StrictGapAblation)
}

// HybridAblation compares the POLAR-OP+Greedy extension (see core.Hybrid)
// against its two parents over the deadline sweep, under the honest Strict
// validation where the guide's prediction error actually bites. This is an
// extension beyond the paper, motivated by the oracle-guide ablation in
// EXPERIMENTS.md.
func HybridAblation(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:         "ablation-hybrid",
		Title:      "Extension: POLAR-OP with greedy fallback (strict validation)",
		XLabel:     "Dr",
		Algorithms: []string{AlgoSimpleGreedy, AlgoPOLAROP, "POLAR-OP+G"},
	}
	for _, dr := range sweepDr {
		cfg := workload.DefaultSynthetic()
		cfg.Seed += opts.Seed
		cfg.NumWorkers = opts.scaled(cfg.NumWorkers)
		cfg.NumTasks = opts.scaled(cfg.NumTasks)
		cfg.TaskExpiry = dr
		in, err := cfg.Generate()
		if err != nil {
			return nil, err
		}
		g, err := buildSyntheticGuide(cfg, opts.scaledSide(defaultGridSide), defaultSlots, opts)
		if err != nil {
			return nil, err
		}
		eng := sim.NewEngine(in, sim.Strict, sim.WithAllocTracking())
		row := Row{X: fmtF(dr), ByAlgo: map[string]Metric{}}
		for _, alg := range []sim.Algorithm{
			core.NewSimpleGreedy(), core.NewPOLAROP(g), core.NewHybrid(g),
		} {
			r := eng.Run(alg)
			row.ByAlgo[r.Algorithm] = Metric{
				MatchingSize: r.Matching.Size(),
				Seconds:      r.Elapsed.Seconds(),
				MemoryMB:     float64(r.AllocBytes) / (1 << 20),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MinCostAblation quantifies the paper's note after Algorithm 1: replacing
// max-flow with min-cost max-flow yields a guide of the same cardinality
// but lower total travel, which shows up as fewer strict-mode rejections
// and shorter pickup distances.
func MinCostAblation(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:         "ablation-mincost",
		Title:      "Ablation: max-flow vs min-cost guide (strict validation)",
		XLabel:     "Guide",
		Algorithms: []string{AlgoPOLAROP},
	}
	cfg := workload.DefaultSynthetic()
	cfg.Seed += opts.Seed
	cfg.NumWorkers = opts.scaled(cfg.NumWorkers)
	cfg.NumTasks = opts.scaled(cfg.NumTasks)
	in, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name    string
		minCost bool
	}{
		{"max-flow", false},
		{"min-cost", true},
	} {
		g, err := buildSyntheticGuideMinCost(cfg, opts.scaledSide(defaultGridSide), defaultSlots, opts, variant.minCost)
		if err != nil {
			return nil, err
		}
		eng := sim.NewEngine(in, sim.Strict)
		r := eng.Run(core.NewPOLAROP(g)) // MemoryMB column repurposed below; no alloc tracking needed
		res.Rows = append(res.Rows, Row{
			X: variant.name,
			ByAlgo: map[string]Metric{AlgoPOLAROP: {
				MatchingSize: r.Matching.Size(),
				Seconds:      r.Elapsed.Seconds(),
				MemoryMB:     g.TravelCost, // repurposed column, see note
			}},
		})
	}
	res.Notes = append(res.Notes,
		"the Memory column here reports the guide's total planned travel time, not MB")
	return res, nil
}

// StrictGapAblation measures the gap between the paper's counting
// (AssumeGuide) and the honest platform semantics (Strict) for the guided
// algorithms — the quantity the paper's Lemma-1 assumption hides.
func StrictGapAblation(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:         "ablation-strict",
		Title:      "Ablation: paper counting vs strict validation",
		XLabel:     "Mode",
		Algorithms: []string{AlgoSimpleGreedy, AlgoPOLAR, AlgoPOLAROP},
	}
	cfg := workload.DefaultSynthetic()
	cfg.Seed += opts.Seed
	cfg.NumWorkers = opts.scaled(cfg.NumWorkers)
	cfg.NumTasks = opts.scaled(cfg.NumTasks)
	in, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	g, err := buildSyntheticGuide(cfg, opts.scaledSide(defaultGridSide), defaultSlots, opts)
	if err != nil {
		return nil, err
	}
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		eng := sim.NewEngine(in, mode, sim.WithAllocTracking())
		row := Row{X: mode.String(), ByAlgo: map[string]Metric{}}
		for _, alg := range []sim.Algorithm{
			core.NewSimpleGreedy(), core.NewPOLAR(g), core.NewPOLAROP(g),
		} {
			r := eng.Run(alg)
			row.ByAlgo[r.Algorithm] = Metric{
				MatchingSize: r.Matching.Size(),
				Seconds:      r.Elapsed.Seconds(),
				MemoryMB:     float64(r.AllocBytes) / (1 << 20),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
