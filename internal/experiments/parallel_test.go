package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// matchingTable flattens a result's MatchingSize series into a comparable
// map keyed by (row, algorithm).
func matchingTable(t *testing.T, r *Result) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, row := range r.Rows {
		for algo, m := range row.ByAlgo {
			out[row.X+"/"+algo] = m.MatchingSize
		}
	}
	return out
}

// TestParallelMatchesSequential is the determinism contract of the worker
// pool: for a fixed seed, the parallel path must produce bit-identical
// MatchingSize tables to the sequential path, row for row and algorithm
// for algorithm.
func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  Runner
		opts Options
	}{
		{"fig4-w", VaryW, Options{Scale: 0.002}},
		{"fig5-scale", Scalability, Options{Scale: 0.0005}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqOpts := tc.opts
			seq, err := tc.run(seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			parOpts := tc.opts
			parOpts.Parallelism = 4
			par, err := tc.run(parOpts)
			if err != nil {
				t.Fatal(err)
			}

			seqTab, parTab := matchingTable(t, seq), matchingTable(t, par)
			if len(seqTab) != len(parTab) {
				t.Fatalf("table sizes differ: sequential %d vs parallel %d", len(seqTab), len(parTab))
			}
			for key, want := range seqTab {
				if got, ok := parTab[key]; !ok || got != want {
					t.Errorf("%s: parallel MatchingSize = %d, sequential = %d", key, got, want)
				}
			}
			// Row order must be the sweep order on both paths.
			for i := range seq.Rows {
				if seq.Rows[i].X != par.Rows[i].X {
					t.Errorf("row %d: sequential x=%s, parallel x=%s", i, seq.Rows[i].X, par.Rows[i].X)
				}
			}
		})
	}
}

// TestParallelOmitsMemory pins the documented contract that concurrent
// replays cannot attribute the process-wide allocation counter.
func TestParallelOmitsMemory(t *testing.T) {
	res, err := VaryW(Options{Scale: 0.002, SkipOPT: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for algo, m := range row.ByAlgo {
			if m.MemoryMB != 0 {
				t.Errorf("x=%s %s: parallel MemoryMB = %v, want 0", row.X, algo, m.MemoryMB)
			}
		}
	}
	// Sequential runs keep the paper's memory series.
	res, err = VaryW(Options{Scale: 0.002, SkipOPT: true})
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, row := range res.Rows {
		for _, m := range row.ByAlgo {
			if m.MemoryMB > 0 {
				any = true
			}
		}
	}
	if !any {
		t.Error("sequential run reported no memory at all")
	}
}

// TestRunEmitsTimings covers the timing series the bench CLI serialises.
func TestRunEmitsTimings(t *testing.T) {
	var buf bytes.Buffer
	timings, err := Run([]string{"fig4-w"}, Options{Scale: 0.002, SkipOPT: true, Parallelism: 2}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 1 {
		t.Fatalf("timings = %d, want 1", len(timings))
	}
	tm := timings[0]
	if tm.ID != "fig4-w" || tm.Seconds <= 0 || tm.Parallelism != 2 || tm.Scale != 0.002 {
		t.Errorf("unexpected timing record %+v", tm)
	}
	if !strings.Contains(buf.String(), "fig4-w") {
		t.Error("Run did not print the experiment")
	}
	if _, err := Run([]string{"nope"}, Options{Scale: 0.002}, &buf); err == nil {
		t.Error("Run with unknown id should fail")
	}
}
