package experiments

import (
	"fmt"
	"math"
	"strings"

	"ftoa/internal/core"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// CompetitiveRatio empirically probes Theorems 1 and 2: under the i.i.d.
// model (instances redrawn from the same spatiotemporal distributions the
// guide was built from), POLAR's matching size should stay above ≈ 0.4·OPT
// and POLAR-OP's above ≈ 0.47·OPT with high probability. Matching is
// counted under the paper's analysis assumption (AssumeGuide mode), which
// is what the theorems bound.
func CompetitiveRatio(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const trials = 12

	cfg := workload.DefaultSynthetic()
	// The instance size is pinned rather than scaled: the concentration
	// bounds behind Theorems 1–2 have ±ε(m+n) slop, so very small
	// populations make the empirical ratio meaningless. 2000 objects keep
	// each trial fast while the ratio is already concentrated.
	cfg.NumWorkers = 2000
	cfg.NumTasks = 2000

	// Match the spatial density to the reduced population (see
	// Options.scaledSide): the grid side shrinks with the square root of
	// the effective population ratio against the 20k paper default.
	side := int(float64(defaultGridSide)*math.Sqrt(float64(cfg.NumWorkers)/20000.0) + 0.5)
	if side < 4 {
		side = 4
	}
	g, err := buildSyntheticGuide(cfg, side, defaultSlots, opts)
	if err != nil {
		return nil, err
	}

	// Trials are independent redraws, so they fan out across the worker
	// pool; per-trial ratios land in an indexed slice and are reduced in
	// trial order, keeping min and mean bit-identical to a sequential run.
	type trialRatio struct {
		polar, polarOP float64
		valid          bool
	}
	ratios := make([]trialRatio, trials)
	err = forEach(opts, trials, func(trial int) error {
		tcfg := cfg
		tcfg.Seed = uint64(trial+1)*7919 + opts.Seed
		var in *model.Instance
		var genErr error
		var opt, polar, polarOP int
		opts.pool.do(func() {
			if in, genErr = tcfg.Generate(); genErr != nil {
				return
			}
			opt = core.OPT(in, core.OPTOptions{MaxCandidates: opts.OPTCandidates}).Size()
		})
		if genErr != nil {
			return genErr
		}
		if opt == 0 {
			return nil
		}
		opts.pool.do(func() {
			eng := sim.NewEngine(in, sim.AssumeGuide)
			polar = eng.Run(core.NewPOLAR(g)).Matching.Size()
			polarOP = eng.Run(core.NewPOLAROP(g)).Matching.Size()
		})
		ratios[trial] = trialRatio{
			polar:   float64(polar) / float64(opt),
			polarOP: float64(polarOP) / float64(opt),
			valid:   true,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	type stats struct {
		min, sum float64
	}
	agg := map[string]*stats{
		AlgoPOLAR:   {min: 1},
		AlgoPOLAROP: {min: 1},
	}
	for _, r := range ratios {
		if !r.valid {
			continue
		}
		st := agg[AlgoPOLAR]
		st.sum += r.polar
		if r.polar < st.min {
			st.min = r.polar
		}
		st = agg[AlgoPOLAROP]
		st.sum += r.polarOP
		if r.polarOP < st.min {
			st.min = r.polarOP
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %18s\n", "Algorithm", "min", "mean", "theoretical bound")
	for _, row := range []struct {
		name  string
		bound string
	}{
		{AlgoPOLAR, "(1-1/e)^2 = 0.40"},
		{AlgoPOLAROP, "0.47"},
	} {
		st := agg[row.name]
		fmt.Fprintf(&sb, "%-10s %10.3f %10.3f %18s\n", row.name, st.min, st.sum/trials, row.bound)
	}
	return &Result{
		ID:     "ratio",
		Title:  "Empirical competitive ratio under the i.i.d. model (Theorems 1-2)",
		XLabel: "Algorithm",
		Notes: []string{
			fmt.Sprintf("%d redraws from the guide's distributions, AssumeGuide counting", trials),
		},
		Custom: sb.String(),
	}, nil
}
