package experiments

import (
	"ftoa/internal/workload"
)

// Default sweep values from Table 4 (bold = default).
var (
	sweepW     = []int{5000, 10000, 20000, 30000, 40000}
	sweepR     = []int{5000, 10000, 20000, 30000, 40000}
	sweepDr    = []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	sweepGrid  = []int{20, 30, 50, 100, 200}
	sweepSlots = []int{12, 24, 48, 96, 144}
	sweepScale = []int{200000, 400000, 600000, 800000, 1000000}
	sweepFrac  = []float64{0.25, 0.375, 0.5, 0.625, 0.75}

	defaultGridSide = 50
	defaultSlots    = 48
)

func init() {
	register("fig4-w", VaryW)
	register("fig4-r", VaryR)
	register("fig4-dr", VaryDeadline)
	register("fig4-g", VaryGrid)
	register("fig5-t", VarySlots)
	register("fig5-scale", Scalability)
	register("fig5-bj", Beijing)
	register("fig5-hz", Hangzhou)
	register("fig6-mu", VaryTempMu)
	register("fig6-sigma", VaryTempSigma)
	register("fig6-mean", VarySpatialMean)
	register("fig6-cov", VarySpatialCov)
	register("table5", PredictionTable)
	register("ratio", CompetitiveRatio)
}

// sweepSynthetic runs one synthetic sweep: mutate configures each point
// from the default config and the sweep value index. Rows are independent
// — each derives its own deterministic seed from the base config — so with
// Options.Parallelism they run concurrently on the shared worker pool;
// results land in sweep order either way.
func sweepSynthetic(id, title, xlabel string, xs []string,
	mutate func(cfg *workload.Synthetic, gridSide, slots *int, i int), opts Options) (*Result, error) {

	opts = opts.withDefaults()
	res := &Result{ID: id, Title: title, XLabel: xlabel, Algorithms: opts.algorithms()}
	res.Rows = make([]Row, len(xs))
	err := forEach(opts, len(xs), func(i int) error {
		cfg := workload.DefaultSynthetic()
		cfg.Seed += opts.Seed
		cfg.NumWorkers = opts.scaled(cfg.NumWorkers)
		cfg.NumTasks = opts.scaled(cfg.NumTasks)
		gridSide, slots := opts.scaledSide(defaultGridSide), defaultSlots
		mutate(&cfg, &gridSide, &slots, i)
		metrics, err := syntheticPoint(cfg, gridSide, slots, opts)
		if err != nil {
			return err
		}
		res.Rows[i] = Row{X: xs[i], ByAlgo: metrics}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// VaryW reproduces Figure 4(a,e,i): matching size, time and memory as the
// number of workers grows.
func VaryW(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := make([]string, len(sweepW))
	for i, v := range sweepW {
		xs[i] = fmtInt(opts.scaled(v))
	}
	return sweepSynthetic("fig4-w", "Fig 4(a,e,i): varying |W|", "|W|", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.NumWorkers = opts.scaled(sweepW[i])
		}, opts)
}

// VaryR reproduces Figure 4(b,f,j): varying the number of tasks.
func VaryR(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := make([]string, len(sweepR))
	for i, v := range sweepR {
		xs[i] = fmtInt(opts.scaled(v))
	}
	return sweepSynthetic("fig4-r", "Fig 4(b,f,j): varying |R|", "|R|", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.NumTasks = opts.scaled(sweepR[i])
		}, opts)
}

// VaryDeadline reproduces Figure 4(c,g,k): varying the task deadline Dr.
func VaryDeadline(opts Options) (*Result, error) {
	xs := make([]string, len(sweepDr))
	for i, v := range sweepDr {
		xs[i] = fmtF(v)
	}
	return sweepSynthetic("fig4-dr", "Fig 4(c,g,k): varying deadline Dr", "Dr", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.TaskExpiry = sweepDr[i]
		}, opts)
}

// VaryGrid reproduces Figure 4(d,h,l): varying the prediction grid
// resolution (cells per side over the same space). Under Scale < 1 the
// swept resolutions shrink with the populations so per-cell densities
// match the paper's.
func VaryGrid(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := make([]string, len(sweepGrid))
	for i, v := range sweepGrid {
		xs[i] = fmtInt(opts.scaledSide(v))
	}
	return sweepSynthetic("fig4-g", "Fig 4(d,h,l): varying grid resolution", "Grid", xs,
		func(cfg *workload.Synthetic, gridSide, _ *int, i int) {
			*gridSide = opts.scaledSide(sweepGrid[i])
		}, opts)
}

// VarySlots reproduces Figure 5(a,e,i): varying the number of time slots
// over the same horizon. The swept values are not scaled: slot width
// relative to the deadlines is the quantity under study.
func VarySlots(opts Options) (*Result, error) {
	xs := make([]string, len(sweepSlots))
	for i, v := range sweepSlots {
		xs[i] = fmtInt(v)
	}
	return sweepSynthetic("fig5-t", "Fig 5(a,e,i): varying time slots", "Slots", xs,
		func(cfg *workload.Synthetic, _, slots *int, i int) {
			*slots = sweepSlots[i]
		}, opts)
}

// Scalability reproduces Figure 5(b,f,j): |W| and |R| grow together to one
// million objects. OPT is omitted, exactly as the paper omits it ("OPT
// does not scale with the simultaneous increase of |R| and |W|").
func Scalability(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	opts.SkipOPT = true
	xs := make([]string, len(sweepScale))
	for i, v := range sweepScale {
		xs[i] = fmtInt(opts.scaled(v))
	}
	res, err := sweepSynthetic("fig5-scale", "Fig 5(b,f,j): scalability |W|=|R|", "|W|=|R|", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.NumWorkers = opts.scaled(sweepScale[i])
			cfg.NumTasks = opts.scaled(sweepScale[i])
		}, opts)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "OPT omitted (does not scale), as in the paper")
	return res, nil
}

// VaryTempMu reproduces Figure 6(a,e,i): varying the mean of the tasks'
// temporal distribution (workers' distribution stays fixed at 0.25).
func VaryTempMu(opts Options) (*Result, error) {
	xs := make([]string, len(sweepFrac))
	for i, v := range sweepFrac {
		xs[i] = fmtF(v)
	}
	return sweepSynthetic("fig6-mu", "Fig 6(a,e,i): varying temporal μ", "mu", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.TaskTempMu = sweepFrac[i]
		}, opts)
}

// VaryTempSigma reproduces Figure 6(b,f,j): varying the tasks' temporal
// standard deviation.
func VaryTempSigma(opts Options) (*Result, error) {
	xs := make([]string, len(sweepFrac))
	for i, v := range sweepFrac {
		xs[i] = fmtF(v)
	}
	return sweepSynthetic("fig6-sigma", "Fig 6(b,f,j): varying temporal σ", "sigma", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.TaskTempSigma = sweepFrac[i]
		}, opts)
}

// VarySpatialMean reproduces Figure 6(c,g,k): varying the mean of the
// tasks' spatial distribution — the distance between worker and task
// hotspots.
func VarySpatialMean(opts Options) (*Result, error) {
	xs := make([]string, len(sweepFrac))
	for i, v := range sweepFrac {
		xs[i] = fmtF(v)
	}
	return sweepSynthetic("fig6-mean", "Fig 6(c,g,k): varying spatial mean", "mean", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.TaskSpatialMean = sweepFrac[i]
		}, opts)
}

// VarySpatialCov reproduces Figure 6(d,h,l): varying the covariance of the
// tasks' spatial distribution.
func VarySpatialCov(opts Options) (*Result, error) {
	xs := make([]string, len(sweepFrac))
	for i, v := range sweepFrac {
		xs[i] = fmtF(v)
	}
	return sweepSynthetic("fig6-cov", "Fig 6(d,h,l): varying spatial cov", "cov", xs,
		func(cfg *workload.Synthetic, _, _ *int, i int) {
			cfg.TaskSpatialCov = sweepFrac[i]
		}, opts)
}
