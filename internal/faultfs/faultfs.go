// Package faultfs is an in-memory filesystem with crash semantics, built
// to fault-inject the shard WAL (package internal/shard/wal): every file
// tracks its bytes in two bands — durable (survives a crash) and volatile
// (written but not yet fsynced) — and the harness can tear writes, cut
// fsyncs short, and crash the world at any byte boundary.
//
// The model mirrors what a real OS guarantees an append-only writer:
//
//   - Write appends to the volatile band (a torn write appends only a
//     prefix and then fails, like a crash mid-write);
//   - Sync promotes the volatile band to durable (a partial sync promotes
//     only a prefix and then fails, like power loss mid-fsync);
//   - Crash discards every file's volatile band — the post-crash disk
//     image is exactly the durable bytes;
//   - reads see durable+volatile, the live view an uncrashed process has.
//
// faultfs implements wal.FS (the dependency points from the harness to the
// log, so the wal package itself stays free of test-only machinery).
package faultfs

import (
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
	"sync"

	"ftoa/internal/shard/wal"
)

// FS is the in-memory fault-injecting filesystem. The zero value is not
// usable; call New.
type FS struct {
	mu    sync.Mutex
	files map[string]*file
	dirs  map[string]bool

	// Pending injected faults, keyed by file name; consumed by the next
	// matching operation.
	tearWrite   map[string]int
	partialSync map[string]int
}

type file struct {
	durable  []byte
	volatile []byte
	closed   bool
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{
		files:       make(map[string]*file),
		dirs:        make(map[string]bool),
		tearWrite:   make(map[string]int),
		partialSync: make(map[string]int),
	}
}

// errInjected is the failure surfaced by a consumed fault.
var errInjected = fmt.Errorf("faultfs: injected fault")

// ErrInjected reports whether err came from an injected fault.
func ErrInjected(err error) bool { return err == errInjected }

// MkdirAll records dir (and its parents) as existing.
func (fs *FS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := path.Clean(dir)
	for d != "." && d != "/" && d != "" {
		fs.dirs[d] = true
		d = path.Dir(d)
	}
	return nil
}

// Create creates name for appending; it fails if the file exists, matching
// the write-once segment discipline of the WAL.
func (fs *FS) Create(name string) (wal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = path.Clean(name)
	if _, ok := fs.files[name]; ok {
		return nil, &os.PathError{Op: "create", Path: name, Err: os.ErrExist}
	}
	f := &file{}
	fs.files[name] = f
	return &handle{fs: fs, name: name, f: f}, nil
}

// ReadFile returns the live view of name: durable plus volatile bytes.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, 0, len(f.durable)+len(f.volatile))
	out = append(out, f.durable...)
	return append(out, f.volatile...), nil
}

// ReadDir lists the base names of files directly under dir.
func (fs *FS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := path.Clean(dir)
	var names []string
	for name := range fs.files {
		if path.Dir(name) == prefix {
			names = append(names, strings.TrimPrefix(name, prefix+"/"))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Crash discards every file's volatile band: the filesystem afterwards
// holds exactly what a machine reset would have preserved. Open handles
// keep working (the process that crashed is gone; the handles a test still
// holds belong to it and must not resurrect bytes), so a typical harness
// drops its writer references after Crash.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.volatile = f.volatile[:0]
	}
}

// TearNextWrite makes the next Write to name append only its first keep
// bytes and fail — a crash mid-write.
func (fs *FS) TearNextWrite(name string, keep int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tearWrite[path.Clean(name)] = keep
}

// PartialNextSync makes the next Sync of name promote only keep volatile
// bytes to durable and fail — power loss mid-fsync.
func (fs *FS) PartialNextSync(name string, keep int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.partialSync[path.Clean(name)] = keep
}

// Durable returns a copy of name's durable band — the post-crash image.
func (fs *FS) Durable(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.durable...)
}

// SetFile installs data as name's durable contents, replacing whatever was
// there (creating the file if needed) and clearing its volatile band. The
// crash-point sweep uses it to replay recovery from an arbitrary durable
// prefix of a recorded run.
func (fs *FS) SetFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = path.Clean(name)
	f, ok := fs.files[name]
	if !ok {
		f = &file{}
		fs.files[name] = f
	}
	f.durable = append(f.durable[:0], data...)
	f.volatile = f.volatile[:0]
}

// Remove deletes name.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path.Clean(name))
}

type handle struct {
	fs   *FS
	name string
	f    *file
}

func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.f.closed {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrClosed}
	}
	if keep, ok := h.fs.tearWrite[h.name]; ok {
		delete(h.fs.tearWrite, h.name)
		if keep > len(p) {
			keep = len(p)
		}
		h.f.volatile = append(h.f.volatile, p[:keep]...)
		return keep, errInjected
	}
	h.f.volatile = append(h.f.volatile, p...)
	return len(p), nil
}

func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.f.closed {
		return &os.PathError{Op: "sync", Path: h.name, Err: os.ErrClosed}
	}
	if keep, ok := h.fs.partialSync[h.name]; ok {
		delete(h.fs.partialSync, h.name)
		if keep > len(h.f.volatile) {
			keep = len(h.f.volatile)
		}
		h.f.durable = append(h.f.durable, h.f.volatile[:keep]...)
		h.f.volatile = h.f.volatile[keep:]
		return errInjected
	}
	h.f.durable = append(h.f.durable, h.f.volatile...)
	h.f.volatile = h.f.volatile[:0]
	return nil
}

func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.closed = true
	return nil
}
