package faultfs

import (
	"bytes"
	"testing"
)

func TestDurableVolatileBands(t *testing.T) {
	fs := New()
	f, err := fs.Create("d/a.wal")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.Write([]byte("abc"))
	if got, _ := fs.ReadFile("d/a.wal"); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("live view = %q", got)
	}
	if d := fs.Durable("d/a.wal"); len(d) != 0 {
		t.Fatalf("unsynced bytes durable: %q", d)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Write([]byte("def"))
	fs.Crash()
	if got, _ := fs.ReadFile("d/a.wal"); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("post-crash view = %q, want only the synced prefix", got)
	}
}

func TestTearNextWrite(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	fs.TearNextWrite("a", 2)
	n, err := f.Write([]byte("hello"))
	if !ErrInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if got, _ := fs.ReadFile("a"); !bytes.Equal(got, []byte("he")) {
		t.Fatalf("view = %q", got)
	}
	// The fault is one-shot.
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("second write: %v", err)
	}
}

func TestPartialNextSync(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	f.Write([]byte("hello"))
	fs.PartialNextSync("a", 3)
	if err := f.Sync(); !ErrInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	fs.Crash()
	if got, _ := fs.ReadFile("a"); !bytes.Equal(got, []byte("hel")) {
		t.Fatalf("post-crash view = %q, want partially synced prefix", got)
	}
}

func TestCreateExistsAndReadDir(t *testing.T) {
	fs := New()
	if _, err := fs.Create("d/a"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := fs.Create("d/a"); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	fs.Create("d/b")
	fs.Create("other/c")
	names, err := fs.ReadDir("d")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ReadDir = %v", names)
	}
	if names, _ := fs.ReadDir("missing"); len(names) != 0 {
		t.Fatalf("missing dir listed %v", names)
	}
}

func TestSetFileInstallsDurably(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	f.Write([]byte("volatile"))
	fs.SetFile("a", []byte("xy"))
	fs.Crash()
	if got, _ := fs.ReadFile("a"); !bytes.Equal(got, []byte("xy")) {
		t.Fatalf("view = %q", got)
	}
}

func TestClosedHandle(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write on closed handle succeeded")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync on closed handle succeeded")
	}
}
