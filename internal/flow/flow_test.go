package flow

import (
	"testing"
	"testing/quick"

	"ftoa/internal/mathx"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic CLRS example, max flow 23.
	g := NewNetwork(6)
	s, t0 := 0, 5
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlowDinic(s, t0); got != 23 {
		t.Errorf("Dinic = %d, want 23", got)
	}
	g.Reset()
	if got := g.MaxFlowFordFulkerson(s, t0); got != 23 {
		t.Errorf("FordFulkerson = %d, want 23", got)
	}
}

func TestMaxFlowTrivialCases(t *testing.T) {
	g := NewNetwork(3)
	if g.MaxFlowDinic(0, 0) != 0 {
		t.Error("s==t should be 0")
	}
	if g.MaxFlowDinic(0, 2) != 0 {
		t.Error("no edges should be 0")
	}
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlowDinic(0, 2); got != 3 {
		t.Errorf("chain = %d, want 3", got)
	}
}

func TestEdgeFlowAndEndpoints(t *testing.T) {
	g := NewNetwork(4)
	e0 := g.AddEdge(0, 1, 2)
	e1 := g.AddEdge(1, 3, 2)
	e2 := g.AddEdge(0, 2, 1)
	e3 := g.AddEdge(2, 3, 5)
	g.MaxFlowDinic(0, 3)
	if g.EdgeFlow(e0) != 2 || g.EdgeFlow(e1) != 2 {
		t.Errorf("top path flows = %d,%d, want 2,2", g.EdgeFlow(e0), g.EdgeFlow(e1))
	}
	if g.EdgeFlow(e2) != 1 || g.EdgeFlow(e3) != 1 {
		t.Errorf("bottom path flows = %d,%d, want 1,1", g.EdgeFlow(e2), g.EdgeFlow(e3))
	}
	u, v := g.EdgeEndpoints(e1)
	if u != 1 || v != 3 {
		t.Errorf("EdgeEndpoints = (%d,%d), want (1,3)", u, v)
	}
}

// buildRandomNetwork makes a random bipartite s-L-R-t unit network, the
// exact shape Algorithm 1 uses.
func buildRandomBipartite(rng *mathx.RNG, nl, nr int, p float64) (*Network, [][]int32, int, int) {
	n := nl + nr + 2
	s, t0 := n-2, n-1
	g := NewNetwork(n)
	adj := make([][]int32, nl)
	for u := 0; u < nl; u++ {
		g.AddEdge(s, u, 1)
	}
	for v := 0; v < nr; v++ {
		g.AddEdge(nl+v, t0, 1)
	}
	for u := 0; u < nl; u++ {
		for v := 0; v < nr; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, nl+v, 1)
				adj[u] = append(adj[u], int32(v))
			}
		}
	}
	return g, adj, s, t0
}

func TestDinicEqualsFordFulkersonEqualsHopcroftKarp(t *testing.T) {
	rng := mathx.NewRNG(2024)
	for trial := 0; trial < 60; trial++ {
		nl := rng.Intn(12) + 1
		nr := rng.Intn(12) + 1
		p := rng.Float64() * 0.6
		g, adj, s, t0 := buildRandomBipartite(rng, nl, nr, p)
		dinic := g.MaxFlowDinic(s, t0)
		g.Reset()
		ff := g.MaxFlowFordFulkerson(s, t0)
		_, _, hk := HopcroftKarp(nl, nr, adj)
		if dinic != ff || dinic != int64(hk) {
			t.Fatalf("trial %d: dinic=%d ff=%d hk=%d", trial, dinic, ff, hk)
		}
	}
}

func TestFlowConservationAndCapacity(t *testing.T) {
	rng := mathx.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(10) + 4
		g := NewNetwork(n)
		s, t0 := 0, n-1
		type edge struct{ id, u, v int }
		var edges []edge
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddEdge(u, v, int64(rng.Intn(10)+1))
			edges = append(edges, edge{id, u, v})
		}
		g.MaxFlowDinic(s, t0)
		net := make([]int64, n)
		for _, e := range edges {
			f := g.EdgeFlow(e.id)
			if f < 0 || f > g.cap[e.id] {
				t.Fatalf("trial %d: edge flow %d violates capacity %d", trial, f, g.cap[e.id])
			}
			net[e.u] -= f
			net[e.v] += f
		}
		for v := 0; v < n; v++ {
			if v == s || v == t0 {
				continue
			}
			if net[v] != 0 {
				t.Fatalf("trial %d: conservation violated at node %d: %d", trial, v, net[v])
			}
		}
		if net[s] != -net[t0] {
			t.Fatalf("trial %d: source outflow %d != sink inflow %d", trial, -net[s], net[t0])
		}
	}
}

func TestMaxFlowEqualsMinCut(t *testing.T) {
	rng := mathx.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(9) + 3
		g := NewNetwork(n)
		s, t0 := 0, n-1
		type edge struct{ id, u, v int }
		var edges []edge
		for i := 0; i < 4*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddEdge(u, v, int64(rng.Intn(8)))
			edges = append(edges, edge{id, u, v})
		}
		val := g.MaxFlowDinic(s, t0)
		reach := g.MinCutFromSource(s)
		if !reach[s] {
			t.Fatal("source not reachable from itself")
		}
		if reach[t0] && val > 0 {
			t.Fatal("sink reachable in residual graph after max flow")
		}
		var cut int64
		for _, e := range edges {
			if reach[e.u] && !reach[e.v] {
				cut += g.cap[e.id]
			}
		}
		if cut != val {
			t.Fatalf("trial %d: min cut %d != max flow %d", trial, cut, val)
		}
	}
}

func TestMinCostMaxFlow(t *testing.T) {
	// Two paths of equal capacity, different cost: flow must prefer cheap.
	g := NewNetwork(4)
	g.AddEdgeCost(0, 1, 1, 1)
	g.AddEdgeCost(0, 2, 1, 10)
	g.AddEdgeCost(1, 3, 1, 1)
	g.AddEdgeCost(2, 3, 1, 10)
	f, c := g.MinCostMaxFlow(0, 3)
	if f != 2 || c != 22 {
		t.Errorf("flow,cost = %d,%d; want 2,22", f, c)
	}

	// Cheaper to reroute: classic negative-reduced-cost case.
	g = NewNetwork(4)
	g.AddEdgeCost(0, 1, 2, 1)
	g.AddEdgeCost(1, 3, 1, 1)
	g.AddEdgeCost(1, 2, 2, 1)
	g.AddEdgeCost(2, 3, 2, 1)
	f, c = g.MinCostMaxFlow(0, 3)
	if f != 2 {
		t.Errorf("flow = %d, want 2", f)
	}
	if c != 2+3 { // path 0-1-3 cost 2, path 0-1-2-3 cost 3
		t.Errorf("cost = %d, want 5", c)
	}
}

func TestMinCostMatchesMaxFlowValue(t *testing.T) {
	rng := mathx.NewRNG(31)
	for trial := 0; trial < 30; trial++ {
		nl := rng.Intn(8) + 1
		nr := rng.Intn(8) + 1
		g, _, s, t0 := buildRandomBipartite(rng, nl, nr, 0.4)
		want := g.MaxFlowDinic(s, t0)
		g.Reset()
		got, _ := g.MinCostMaxFlow(s, t0)
		if got != want {
			t.Fatalf("trial %d: mincost flow %d != maxflow %d", trial, got, want)
		}
	}
}

func TestHopcroftKarpKnown(t *testing.T) {
	// Perfect matching on a 3x3 cycle-ish graph.
	adj := [][]int32{{0, 1}, {1, 2}, {0, 2}}
	ml, mr, size := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	for u, v := range ml {
		if v == -1 || mr[v] != int32(u) {
			t.Fatalf("inconsistent matching: ml=%v mr=%v", ml, mr)
		}
	}
	// A graph where greedy can be suboptimal but HK must find 2.
	adj = [][]int32{{0}, {0, 1}}
	_, _, size = HopcroftKarp(2, 2, adj)
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	ml, mr, size := HopcroftKarp(0, 0, nil)
	if size != 0 || len(ml) != 0 || len(mr) != 0 {
		t.Error("empty graph should yield empty matching")
	}
	_, _, size = HopcroftKarp(3, 0, make([][]int32, 3))
	if size != 0 {
		t.Error("no right vertices should yield 0")
	}
}

func TestGreedyMatchingIsValidAndBelowOptimal(t *testing.T) {
	rng := mathx.NewRNG(55)
	if err := quick.Check(func(seed uint32) bool {
		r := mathx.NewRNG(uint64(seed) ^ rng.Uint64())
		nl := r.Intn(10) + 1
		nr := r.Intn(10) + 1
		adj := make([][]int32, nl)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if r.Float64() < 0.3 {
					adj[u] = append(adj[u], int32(v))
				}
			}
		}
		gl, gr, gs := GreedyMatching(nl, nr, adj)
		_, _, hs := HopcroftKarp(nl, nr, adj)
		if gs > hs {
			return false
		}
		// Greedy is maximal: size at least half of optimum.
		if 2*gs < hs {
			return false
		}
		// Validity.
		for u, v := range gl {
			if v != -1 && gr[v] != int32(u) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestNetworkPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewNetwork(0) },
		func() { g := NewNetwork(2); g.AddEdge(0, 5, 1) },
		func() { g := NewNetwork(2); g.AddEdge(-1, 0, 1) },
		func() { g := NewNetwork(2); g.AddEdge(0, 1, -3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReset(t *testing.T) {
	g := NewNetwork(3)
	e := g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	if g.MaxFlowDinic(0, 2) != 4 {
		t.Fatal("first solve")
	}
	g.Reset()
	if g.EdgeFlow(e) != 0 {
		t.Fatal("Reset did not zero flow")
	}
	if g.MaxFlowDinic(0, 2) != 4 {
		t.Fatal("re-solve after Reset")
	}
}

// TestBipartiteMatcherReuse runs one matcher across many batch windows of
// varying size (the GR usage pattern) and checks every solve agrees with a
// fresh one-shot HopcroftKarp, then verifies the scratch buffers stop
// allocating once grown to the largest window.
func TestBipartiteMatcherReuse(t *testing.T) {
	rng := mathx.NewRNG(41)
	var m BipartiteMatcher
	sizes := []int{17, 200, 3, 64, 200, 1, 150}
	for round, n := range sizes {
		adj := make([][]int32, n)
		for u := range adj {
			deg := rng.Intn(5)
			for k := 0; k < deg; k++ {
				adj[u] = append(adj[u], int32(rng.Intn(n)))
			}
		}
		gotL, gotR, gotSize := m.Match(n, n, adj)
		wantL, wantR, wantSize := HopcroftKarp(n, n, adj)
		if gotSize != wantSize {
			t.Fatalf("round %d: reused matcher size %d, one-shot %d", round, gotSize, wantSize)
		}
		// Matchings may differ pair-by-pair only if sizes differ — both are
		// produced by the same deterministic algorithm, so require equality.
		for u := range gotL {
			if gotL[u] != wantL[u] {
				t.Fatalf("round %d: matchL[%d] = %d, want %d", round, u, gotL[u], wantL[u])
			}
		}
		for v := range gotR {
			if gotR[v] != wantR[v] {
				t.Fatalf("round %d: matchR[%d] = %d, want %d", round, v, gotR[v], wantR[v])
			}
		}
	}
	// Steady state: re-solving a window no larger than the biggest seen
	// must not allocate (the GR hot path claim).
	adj := make([][]int32, 100)
	for u := range adj {
		adj[u] = append(adj[u], int32((u*7)%100), int32((u*13)%100))
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Match(100, 100, adj)
	})
	if allocs != 0 {
		t.Errorf("reused BipartiteMatcher allocates %v per solve, want 0", allocs)
	}
}
