package flow

// BipartiteMatcher computes maximum-cardinality bipartite matchings with
// reusable scratch state, so repeated solves — GR runs one per batch
// window — allocate nothing once the buffers have grown to the largest
// population seen. The zero value is ready to use. A matcher is not safe
// for concurrent use.
type BipartiteMatcher struct {
	matchL []int32
	matchR []int32
	dist   []int32
	queue  []int32
}

// grow returns buf resized to n, reusing capacity when possible.
func grow(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// Match computes a maximum matching in a bipartite graph given as an
// adjacency list from left vertices to right vertices; adj[u] lists the
// right-vertex ids (0..nRight-1) adjacent to left vertex u.
//
// It returns matchL (for each left vertex, the matched right vertex or -1)
// and matchR (the reverse), plus the matching size. Runs in O(E·√V), which
// is what makes OPT computable at the paper's 20k–40k scales. The returned
// slices are the matcher's internal buffers: they stay valid until the
// next Match call, and callers needing to retain them longer must copy.
func (m *BipartiteMatcher) Match(nLeft, nRight int, adj [][]int32) (matchL, matchR []int32, size int) {
	m.matchL = grow(m.matchL, nLeft)
	m.matchR = grow(m.matchR, nRight)
	matchL, matchR = m.matchL, m.matchR
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	if nLeft == 0 || nRight == 0 {
		return matchL, matchR, 0
	}

	const inf = int32(1) << 30
	m.dist = grow(m.dist, nLeft)
	dist := m.dist
	if cap(m.queue) < nLeft {
		m.queue = make([]int32, 0, nLeft)
	}

	bfs := func() bool {
		queue := m.queue[:0]
		for u := range dist {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, int32(u))
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		m.queue = queue[:0]
		return found
	}

	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(int32(u)) {
				size++
			}
		}
	}
	return matchL, matchR, size
}

// HopcroftKarp is the one-shot form of BipartiteMatcher.Match: it
// allocates fresh result slices the caller may keep. Prefer a reused
// BipartiteMatcher on repeated solves.
func HopcroftKarp(nLeft, nRight int, adj [][]int32) (matchL, matchR []int32, size int) {
	var m BipartiteMatcher
	return m.Match(nLeft, nRight, adj)
}

// GreedyMatching computes a maximal (not maximum) matching by scanning left
// vertices in order and taking the first free neighbour. It is a fast
// lower-bound oracle used in tests and as a warm start.
func GreedyMatching(nLeft, nRight int, adj [][]int32) (matchL, matchR []int32, size int) {
	matchL = make([]int32, nLeft)
	matchR = make([]int32, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	for u := 0; u < nLeft; u++ {
		for _, v := range adj[u] {
			if matchR[v] == -1 {
				matchL[u] = v
				matchR[v] = int32(u)
				size++
				break
			}
		}
	}
	return matchL, matchR, size
}
