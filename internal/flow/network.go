// Package flow implements the network-flow and bipartite-matching substrate
// the paper's offline components rely on: Algorithm 1 builds the offline
// guide with a max-flow computation (the paper uses Ford–Fulkerson and notes
// any max-flow algorithm works), the competitive-ratio analysis uses the
// max-flow = min-cut duality, and the optional travel-cost-aware guide uses
// min-cost max-flow. OPT is a maximum-cardinality bipartite matching, for
// which Hopcroft–Karp is provided.
//
// All algorithms work on integer capacities (unit capacities in the FTOA
// constructions) and are deterministic.
package flow

import "fmt"

// Network is a directed flow network stored as an adjacency list over
// paired residual edges: edge i and edge i^1 are a forward/backward pair.
type Network struct {
	n     int
	heads [][]int32 // per node: indices into edges
	to    []int32
	cap   []int64
	cost  []int64 // used only by min-cost flow; zero otherwise
	flow  []int64

	// Scratch reused across MaxFlowDinic calls so repeated solves on one
	// network (guide construction probes, re-solves after Reset) allocate
	// nothing per call. Sized lazily to n on first use.
	level []int32
	iter  []int32
	queue []int32
}

// NewNetwork creates a network with n nodes and no edges. Node ids are
// 0..n-1; callers conventionally reserve two of them for source and sink.
func NewNetwork(n int) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("flow: non-positive node count %d", n))
	}
	return &Network{n: n, heads: make([][]int32, n)}
}

// NumNodes returns the number of nodes.
func (g *Network) NumNodes() int { return g.n }

// NumEdges returns the number of forward edges added via AddEdge.
func (g *Network) NumEdges() int { return len(g.to) / 2 }

// AddEdge adds a directed edge from u to v with the given capacity and zero
// cost, returning the edge id (usable with EdgeFlow). Capacity must be
// non-negative.
func (g *Network) AddEdge(u, v int, capacity int64) int {
	return g.AddEdgeCost(u, v, capacity, 0)
}

// AddEdgeCost adds a directed edge from u to v with the given capacity and
// per-unit cost, returning the edge id.
func (g *Network) AddEdgeCost(u, v int, capacity, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.cost = append(g.cost, cost, -cost)
	g.flow = append(g.flow, 0, 0)
	g.heads[u] = append(g.heads[u], int32(id))
	g.heads[v] = append(g.heads[v], int32(id+1))
	return id
}

// EdgeFlow returns the flow currently routed through the forward edge with
// the given id (as returned by AddEdge/AddEdgeCost).
func (g *Network) EdgeFlow(id int) int64 { return g.flow[id] }

// EdgeEndpoints returns (u, v) for the forward edge id.
func (g *Network) EdgeEndpoints(id int) (u, v int) {
	return int(g.to[id^1]), int(g.to[id])
}

// Reset zeroes all flow, allowing the same topology to be re-solved.
func (g *Network) Reset() {
	for i := range g.flow {
		g.flow[i] = 0
	}
}

// residual capacity of edge id.
func (g *Network) res(id int) int64 { return g.cap[id] - g.flow[id] }

// push routes amount f through edge id (and -f through its pair).
func (g *Network) push(id int, f int64) {
	g.flow[id] += f
	g.flow[id^1] -= f
}

// MaxFlowDinic computes the maximum flow from s to t using Dinic's
// algorithm (BFS level graph + blocking-flow DFS). It runs on top of any
// existing flow (so it can extend a partial solution) and returns the amount
// of additional flow pushed.
func (g *Network) MaxFlowDinic(s, t int) int64 {
	if s == t {
		return 0
	}
	if cap(g.level) < g.n {
		g.level = make([]int32, g.n)
		g.iter = make([]int32, g.n)
		g.queue = make([]int32, 0, g.n)
	}
	level := g.level[:g.n]
	iter := g.iter[:g.n]
	queue := g.queue[:0]

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.heads[u] {
				v := g.to[id]
				if level[v] < 0 && g.res(int(id)) > 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int32, limit int64) int64
	dfs = func(u int32, limit int64) int64 {
		if int(u) == t {
			return limit
		}
		for ; iter[u] < int32(len(g.heads[u])); iter[u]++ {
			id := g.heads[u][iter[u]]
			v := g.to[id]
			if level[v] != level[u]+1 || g.res(int(id)) <= 0 {
				continue
			}
			amt := limit
			if r := g.res(int(id)); r < amt {
				amt = r
			}
			if pushed := dfs(v, amt); pushed > 0 {
				g.push(int(id), pushed)
				return pushed
			}
		}
		level[u] = -1 // dead end; prune
		return 0
	}

	const inf = int64(1) << 62
	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(int32(s), inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	g.queue = queue // keep any grown capacity for the next call
	return total
}

// MaxFlowFordFulkerson computes max flow using the Edmonds–Karp variant
// (BFS augmenting paths), the algorithm the paper cites for Algorithm 1.
// It is kept as a cross-check oracle for Dinic; production paths use Dinic.
func (g *Network) MaxFlowFordFulkerson(s, t int) int64 {
	if s == t {
		return 0
	}
	parentEdge := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	var total int64
	for {
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, int32(s))
		parentEdge[s] = -2
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.heads[u] {
				v := g.to[id]
				if parentEdge[v] == -1 && g.res(int(id)) > 0 {
					parentEdge[v] = id
					if int(v) == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			return total
		}
		// Find bottleneck.
		bottleneck := int64(1) << 62
		for v := int32(t); v != int32(s); {
			id := parentEdge[v]
			if r := g.res(int(id)); r < bottleneck {
				bottleneck = r
			}
			v = g.to[id^1]
		}
		for v := int32(t); v != int32(s); {
			id := parentEdge[v]
			g.push(int(id), bottleneck)
			v = g.to[id^1]
		}
		total += bottleneck
	}
}

// MinCutFromSource returns the set of nodes reachable from s in the residual
// graph after a max-flow computation — the "canonical reachability min-cut"
// the paper's Lemma 2 uses. reachable[v] is true iff v is on the source side.
func (g *Network) MinCutFromSource(s int) []bool {
	reachable := make([]bool, g.n)
	reachable[s] = true
	stack := []int32{int32(s)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.heads[u] {
			v := g.to[id]
			if !reachable[v] && g.res(int(id)) > 0 {
				reachable[v] = true
				stack = append(stack, v)
			}
		}
	}
	return reachable
}

// MinCostMaxFlow computes a maximum flow of minimum total cost from s to t
// using successive shortest augmenting paths with SPFA (costs may be
// negative only on residual arcs, which SPFA handles). It returns the flow
// value and its total cost. Intended for the travel-cost-aware guide, where
// edge costs are travel times scaled to integers.
func (g *Network) MinCostMaxFlow(s, t int) (flowValue, totalCost int64) {
	const inf = int64(1) << 62
	dist := make([]int64, g.n)
	inQueue := make([]bool, g.n)
	parentEdge := make([]int32, g.n)

	for {
		for i := range dist {
			dist[i] = inf
			inQueue[i] = false
			parentEdge[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, id := range g.heads[u] {
				v := g.to[id]
				if g.res(int(id)) <= 0 {
					continue
				}
				nd := dist[u] + g.cost[id]
				if nd < dist[v] {
					dist[v] = nd
					parentEdge[v] = id
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		if dist[t] >= inf {
			return flowValue, totalCost
		}
		// Bottleneck along the shortest path.
		bottleneck := inf
		for v := int32(t); v != int32(s); {
			id := parentEdge[v]
			if r := g.res(int(id)); r < bottleneck {
				bottleneck = r
			}
			v = g.to[id^1]
		}
		for v := int32(t); v != int32(s); {
			id := parentEdge[v]
			g.push(int(id), bottleneck)
			v = g.to[id^1]
		}
		flowValue += bottleneck
		totalCost += bottleneck * dist[t]
	}
}
