// Package geo provides the 2D geometry substrate for FTOA: points,
// Euclidean distances, travel times under a uniform worker velocity, and the
// uniform grid partitioning ("grid areas") the paper's offline prediction and
// guide generation operate on.
//
// The paper models space as a rectangle partitioned into x×y equal grid
// cells; all workers share one velocity, so travel cost between two points is
// distance divided by velocity (Definition 3).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2D plane. Coordinates are in abstract space
// units (the synthetic experiments use grid units; the city traces use
// scaled longitude/latitude).
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root and is the right comparator for nearest-neighbour search.
func (p Point) SqDist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp returns the point a fraction t of the way from p to q. t is clamped
// to [0, 1], so Lerp never extrapolates past either endpoint.
func (p Point) Lerp(q Point, t float64) Point {
	if t <= 0 {
		return p
	}
	if t >= 1 {
		return q
	}
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// TravelTime returns the time to travel from p to q at the given velocity
// (space units per time unit). Velocity must be positive; a non-positive
// velocity yields +Inf so that every such pair is infeasible rather than
// silently instantaneous.
func TravelTime(p, q Point, velocity float64) float64 {
	if velocity <= 0 {
		return math.Inf(1)
	}
	return p.Dist(q) / velocity
}

// Rect is an axis-aligned rectangle [MinX, MaxX) × [MinY, MaxY).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect builds a rectangle from two corner coordinates, normalising the
// order so Min ≤ Max on both axes.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

// Width returns the extent of r along X.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along Y.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside r (half-open on the max edges, so
// adjacent rectangles tile the plane without double-counting).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Clamp returns the point of r nearest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), math.Nextafter(r.MaxX, r.MinX)),
		Y: math.Min(math.Max(p.Y, r.MinY), math.Nextafter(r.MaxY, r.MinY)),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Grid partitions a rectangle into Cols×Rows equal cells ("grid areas" in
// the paper). Cell indices are flattened row-major: cell = row*Cols + col,
// matching the paper's Area j numbering in Figure 1d.
type Grid struct {
	Bounds Rect
	Cols   int // number of cells along X
	Rows   int // number of cells along Y

	cellW float64
	cellH float64
}

// NewGrid builds a grid over bounds with cols×rows cells. It panics on
// non-positive dimensions or an empty rectangle, which are programming
// errors rather than data errors.
func NewGrid(bounds Rect, cols, rows int) *Grid {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("geo: invalid grid dimensions %dx%d", cols, rows))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic("geo: empty grid bounds")
	}
	return &Grid{
		Bounds: bounds,
		Cols:   cols,
		Rows:   rows,
		cellW:  bounds.Width() / float64(cols),
		cellH:  bounds.Height() / float64(rows),
	}
}

// NumCells returns the total number of grid cells.
func (g *Grid) NumCells() int { return g.Cols * g.Rows }

// CellSize returns the width and height of one cell.
func (g *Grid) CellSize() (w, h float64) { return g.cellW, g.cellH }

// CellOf returns the flattened index of the cell containing p. Points on or
// beyond the max edges are clamped into the last cell, and points below the
// min edges into the first, so every point maps to a valid cell; callers
// that must reject out-of-range points should test Bounds.Contains first
// (the paper drops data points outside the city rectangle).
func (g *Grid) CellOf(p Point) int {
	col := int((p.X - g.Bounds.MinX) / g.cellW)
	row := int((p.Y - g.Bounds.MinY) / g.cellH)
	if col < 0 {
		col = 0
	} else if col >= g.Cols {
		col = g.Cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.Rows {
		row = g.Rows - 1
	}
	return row*g.Cols + col
}

// ColRow splits a flattened cell index into (col, row).
func (g *Grid) ColRow(cell int) (col, row int) {
	return cell % g.Cols, cell / g.Cols
}

// CellRect returns the rectangle of the given cell.
func (g *Grid) CellRect(cell int) Rect {
	col, row := g.ColRow(cell)
	x0 := g.Bounds.MinX + float64(col)*g.cellW
	y0 := g.Bounds.MinY + float64(row)*g.cellH
	return Rect{MinX: x0, MinY: y0, MaxX: x0 + g.cellW, MaxY: y0 + g.cellH}
}

// Center returns the center point of the given cell. The guide uses cell
// centers as the representative location of all predicted objects in the
// cell.
func (g *Grid) Center(cell int) Point {
	col, row := g.ColRow(cell)
	return Point{
		X: g.Bounds.MinX + (float64(col)+0.5)*g.cellW,
		Y: g.Bounds.MinY + (float64(row)+0.5)*g.cellH,
	}
}

// CenterDist returns the Euclidean distance between the centers of two
// cells.
func (g *Grid) CenterDist(a, b int) float64 {
	return g.Center(a).Dist(g.Center(b))
}

// CellsWithinRadius appends to dst the indices of all cells whose center
// lies within radius of the center of the origin cell, and returns the
// extended slice. The origin cell itself is always included (distance 0).
// The scan is restricted to the bounding square of the radius, so cost is
// proportional to the disk area rather than the whole grid.
func (g *Grid) CellsWithinRadius(origin int, radius float64, dst []int) []int {
	if radius < 0 {
		return dst
	}
	oc, or := g.ColRow(origin)
	dc := int(math.Ceil(radius/g.cellW)) + 1
	dr := int(math.Ceil(radius/g.cellH)) + 1
	center := g.Center(origin)
	r2 := radius * radius
	for row := max(0, or-dr); row <= min(g.Rows-1, or+dr); row++ {
		for col := max(0, oc-dc); col <= min(g.Cols-1, oc+dc); col++ {
			cell := row*g.Cols + col
			if g.Center(cell).SqDist(center) <= r2 {
				dst = append(dst, cell)
			}
		}
	}
	return dst
}

// RingCells appends to dst the cells at Chebyshev ring distance exactly
// ring from the cell containing p, and returns the extended slice.
// Ring 0 is the cell itself. It is the enumeration primitive for expanding
// nearest-neighbour search in the spatial index.
func (g *Grid) RingCells(p Point, ring int, dst []int) []int {
	oc := g.CellOf(p)
	col0, row0 := g.ColRow(oc)
	if ring == 0 {
		return append(dst, oc)
	}
	lo, hi := -ring, ring
	for dc := lo; dc <= hi; dc++ {
		for _, drr := range [2]int{lo, hi} {
			c, r := col0+dc, row0+drr
			if c >= 0 && c < g.Cols && r >= 0 && r < g.Rows {
				dst = append(dst, r*g.Cols+c)
			}
		}
	}
	for drr := lo + 1; drr <= hi-1; drr++ {
		for _, dc := range [2]int{lo, hi} {
			c, r := col0+dc, row0+drr
			if c >= 0 && c < g.Cols && r >= 0 && r < g.Rows {
				dst = append(dst, r*g.Cols+c)
			}
		}
	}
	return dst
}

// MaxRing returns the largest ring index that can contain any cell for a
// point inside the grid, i.e. the number of expanding-search steps after
// which the whole grid has been covered.
func (g *Grid) MaxRing() int {
	if g.Cols > g.Rows {
		return g.Cols - 1
	}
	return g.Rows - 1
}

// RingInnerDist returns a lower bound on the distance from p to any point
// in a cell at Chebyshev ring distance ring from p's cell. It lets an
// expanding search stop as soon as the best candidate found is closer than
// any unexplored ring could be.
func (g *Grid) RingInnerDist(p Point, ring int) float64 {
	if ring <= 0 {
		return 0
	}
	cell := g.CellOf(p)
	rect := g.CellRect(cell)
	// Distance from p to the boundary of the (2·ring−1)-cell-wide box around
	// its own cell is at least (ring−1) cells plus the distance to its own
	// cell edge on the nearer axis.
	dx := math.Min(p.X-rect.MinX, rect.MaxX-p.X)
	dy := math.Min(p.Y-rect.MinY, rect.MaxY-p.Y)
	edge := math.Min(dx+float64(ring-1)*g.cellW, dy+float64(ring-1)*g.cellH)
	if edge < 0 {
		return 0
	}
	return edge
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
