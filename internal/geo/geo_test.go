package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.SqDist(tt.q); !almostEqual(got, tt.want*tt.want) {
				t.Errorf("SqDist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Symmetry.
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		a, b := Point{clampF(ax), clampF(ay)}, Point{clampF(bx), clampF(by)}
		return almostEqual(a.Dist(b), b.Dist(a))
	}, cfg); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampF(ax), clampF(ay)}
		b := Point{clampF(bx), clampF(by)}
		c := Point{clampF(cx), clampF(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}, cfg); err != nil {
		t.Error(err)
	}
	// Identity of indiscernibles (one direction).
	if err := quick.Check(func(ax, ay float64) bool {
		a := Point{clampF(ax), clampF(ay)}
		return a.Dist(a) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary quick-generated floats into a sane finite range.
func clampF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); !almostEqual(got.X, 5) || !almostEqual(got.Y, 10) {
		t.Errorf("Lerp 0.5 = %v, want (5,10)", got)
	}
	// Clamping.
	if got := a.Lerp(b, -1); got != a {
		t.Errorf("Lerp -1 = %v, want %v (clamped)", got, a)
	}
	if got := a.Lerp(b, 2); got != b {
		t.Errorf("Lerp 2 = %v, want %v (clamped)", got, b)
	}
}

func TestTravelTime(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if got := TravelTime(a, b, 5); !almostEqual(got, 1) {
		t.Errorf("TravelTime = %v, want 1", got)
	}
	if got := TravelTime(a, b, 0); !math.IsInf(got, 1) {
		t.Errorf("TravelTime with zero velocity = %v, want +Inf", got)
	}
	if got := TravelTime(a, b, -2); !math.IsInf(got, 1) {
		t.Errorf("TravelTime with negative velocity = %v, want +Inf", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(10, 20, 0, 5) // deliberately swapped corners
	if r.MinX != 0 || r.MaxX != 10 || r.MinY != 5 || r.MaxY != 20 {
		t.Fatalf("NewRect did not normalise: %+v", r)
	}
	if !almostEqual(r.Width(), 10) || !almostEqual(r.Height(), 15) {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 5}) {
		t.Error("Contains should include min corner")
	}
	if r.Contains(Point{10, 5}) {
		t.Error("Contains should exclude max edge")
	}
	c := r.Center()
	if !almostEqual(c.X, 5) || !almostEqual(c.Y, 12.5) {
		t.Errorf("Center = %v", c)
	}
	cl := r.Clamp(Point{-5, 100})
	if !r.Contains(cl) {
		t.Errorf("Clamp result %v not contained in %v", cl, r)
	}
}

func TestGridCellRoundTrip(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 50, 50), 50, 50)
	if g.NumCells() != 2500 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	for cell := 0; cell < g.NumCells(); cell += 7 {
		center := g.Center(cell)
		if got := g.CellOf(center); got != cell {
			t.Fatalf("CellOf(Center(%d)) = %d", cell, got)
		}
		rect := g.CellRect(cell)
		if !rect.Contains(center) {
			t.Fatalf("center %v of cell %d outside its rect %+v", center, cell, rect)
		}
	}
}

func TestGridCellOfClamping(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 5, 5)
	tests := []struct {
		p    Point
		want int
	}{
		{Point{-1, -1}, 0},
		{Point{0, 0}, 0},
		{Point{9.999, 9.999}, 24},
		{Point{10, 10}, 24},   // max corner clamps into last cell
		{Point{100, 100}, 24}, // far outside clamps
		{Point{5, 0}, 2},      // boundary between col 2 and col 2 (5/2=2.5 -> col 2)
	}
	for _, tt := range tests {
		if got := g.CellOf(tt.p); got != tt.want {
			t.Errorf("CellOf(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestGridQuickCellOfAlwaysValid(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 30, 20), 6, 4)
	if err := quick.Check(func(x, y float64) bool {
		c := g.CellOf(Point{clampF(x), clampF(y)})
		return c >= 0 && c < g.NumCells()
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGridColRow(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 8, 6), 4, 3)
	for cell := 0; cell < g.NumCells(); cell++ {
		col, row := g.ColRow(cell)
		if row*g.Cols+col != cell {
			t.Fatalf("ColRow(%d) = (%d,%d) does not invert", cell, col, row)
		}
	}
}

func TestCellsWithinRadius(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 10, 10)
	// Radius 0: only the origin cell.
	cells := g.CellsWithinRadius(55, 0, nil)
	if len(cells) != 1 || cells[0] != 55 {
		t.Fatalf("radius 0 cells = %v", cells)
	}
	// Radius covering everything.
	all := g.CellsWithinRadius(0, 100, nil)
	if len(all) != g.NumCells() {
		t.Fatalf("large radius returned %d cells, want %d", len(all), g.NumCells())
	}
	// Verify against brute force for a few radii.
	for _, radius := range []float64{1, 2.5, 4} {
		got := g.CellsWithinRadius(44, radius, nil)
		var want []int
		origin := g.Center(44)
		for c := 0; c < g.NumCells(); c++ {
			if g.Center(c).Dist(origin) <= radius {
				want = append(want, c)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("radius %v: got %d cells, want %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("radius %v: got %v want %v", radius, got, want)
			}
		}
	}
	// Negative radius yields nothing.
	if cells := g.CellsWithinRadius(0, -1, nil); len(cells) != 0 {
		t.Errorf("negative radius returned %v", cells)
	}
}

func TestRingCells(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 10, 10)
	p := g.Center(44) // col 4, row 4 — interior
	ring0 := g.RingCells(p, 0, nil)
	if len(ring0) != 1 || ring0[0] != 44 {
		t.Fatalf("ring 0 = %v", ring0)
	}
	ring1 := g.RingCells(p, 1, nil)
	if len(ring1) != 8 {
		t.Fatalf("interior ring 1 has %d cells, want 8: %v", len(ring1), ring1)
	}
	// Rings must be disjoint and cover the grid.
	seen := map[int]bool{}
	total := 0
	for ring := 0; ring <= g.MaxRing(); ring++ {
		for _, c := range g.RingCells(p, ring, nil) {
			if seen[c] {
				t.Fatalf("cell %d appears in two rings", c)
			}
			seen[c] = true
			total++
		}
	}
	if total != g.NumCells() {
		t.Fatalf("rings cover %d cells, want %d", total, g.NumCells())
	}
	// Corner point: ring 1 has only 3 neighbours.
	corner := g.Center(0)
	if got := len(g.RingCells(corner, 1, nil)); got != 3 {
		t.Errorf("corner ring 1 has %d cells, want 3", got)
	}
}

func TestRingInnerDistIsLowerBound(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 12, 12), 6, 6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := Point{rng.Float64() * 12, rng.Float64() * 12}
		for ring := 1; ring <= g.MaxRing(); ring++ {
			bound := g.RingInnerDist(p, ring)
			for _, c := range g.RingCells(p, ring, nil) {
				rect := g.CellRect(c)
				// Distance from p to nearest point of the cell rect.
				dx := math.Max(math.Max(rect.MinX-p.X, p.X-rect.MaxX), 0)
				dy := math.Max(math.Max(rect.MinY-p.Y, p.Y-rect.MaxY), 0)
				d := math.Sqrt(dx*dx + dy*dy)
				if d+1e-9 < bound {
					t.Fatalf("ring %d: cell %d at distance %v < bound %v (p=%v)", ring, c, d, bound, p)
				}
			}
		}
	}
}

func TestNewGridPanics(t *testing.T) {
	assertPanics(t, func() { NewGrid(NewRect(0, 0, 1, 1), 0, 5) })
	assertPanics(t, func() { NewGrid(NewRect(0, 0, 1, 1), 5, -1) })
	assertPanics(t, func() { NewGrid(Rect{}, 5, 5) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestCenterDistSymmetric(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 50, 50), 50, 50)
	if err := quick.Check(func(a, b uint16) bool {
		ca := int(a) % g.NumCells()
		cb := int(b) % g.NumCells()
		return almostEqual(g.CenterDist(ca, cb), g.CenterDist(cb, ca))
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
