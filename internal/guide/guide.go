// Package guide implements the offline guide generation of Section 4
// (Algorithm 1): it turns predicted per-(time slot, grid area) counts of
// workers and tasks into a maximum bipartite matching between predicted
// objects — the "offline guide" that POLAR and POLAR-OP consult online.
//
// Instead of instantiating one graph node per predicted object as the paper
// presents it (m + n nodes, up to m·n edges), the network here has one node
// per non-empty (slot, area) cell with capacity equal to the predicted
// count. Max-flow on this compressed network has exactly the same value,
// and the integral flow decomposes into a *pair layout*: the conceptually
// ordered nodes of each cell are split into consecutive runs, each run
// paired one-to-one with a run of a partner cell. The layout supports the
// O(1) per-arrival node lookup that gives POLAR / POLAR-OP their constant
// processing time (Section 5 complexity analyses).
package guide

import (
	"fmt"
	"math"
	"sort"

	"ftoa/internal/flow"
	"ftoa/internal/geo"
	"ftoa/internal/timeslot"
)

// Config describes the prediction discretisation and the deadline
// parameters the guide assumes for predicted objects. The paper's
// experiments use global deadlines (Dw for workers, Dr for tasks), so the
// guide applies them to every predicted object.
type Config struct {
	Grid     *geo.Grid
	Slots    *timeslot.Slotting
	Velocity float64 // worker speed, space units per time unit

	WorkerPatience float64 // Dw applied to predicted workers
	TaskExpiry     float64 // Dr applied to predicted tasks

	// MaxEdgesPerCell caps the number of task cells a worker cell connects
	// to, keeping the nearest ones by travel distance. Zero or negative
	// means unlimited. The cap bounds guide-construction memory at extreme
	// scales (the 1M-object scalability run) at a small cost in matching
	// value; the default used by experiments is 128.
	MaxEdgesPerCell int

	// MinCost, when true, computes a min-cost max-flow with edge cost equal
	// to the center-to-center travel time, yielding a maximum guide that
	// also minimises total travel (the paper's note (2) after Algorithm 1).
	MinCost bool

	// RepSlack is extra travel-time budget (in time units) granted when
	// testing edge feasibility between cell representatives, compensating
	// the discretisation error of representing objects by slot midpoints
	// and cell centers (the "differences can be ignored" remark after the
	// paper's Lemma 1 assumption). Zero is the neutral default; the
	// experiments use half a slot width.
	RepSlack float64
}

// repTime returns the representative time of a slot: its midpoint, which
// is unbiased for objects uniform within the slot (slot starts would
// understate every task's deadline by half a slot on average).
func (c Config) repTime(slot int) float64 { return c.Slots.Mid(slot) }

// edgeFeasible applies the Definition 4 predicate to cell representatives.
func (c Config) edgeFeasible(sw, sr, dist float64) bool {
	if sr >= sw+c.WorkerPatience {
		return false
	}
	return sw+dist/c.Velocity <= sr+c.TaskExpiry+c.RepSlack
}

// Run is a consecutive block of a cell's predicted nodes paired with a
// block of a partner cell's nodes. Node (Offset + k) of this cell is paired
// with node (PartnerOffset + k) of cell Partner, for 0 ≤ k < Count.
type Run struct {
	Offset        int32 // first node index of this run within its own cell
	Partner       int32 // dense id of the partner cell on the other side
	PartnerOffset int32 // first node index of the paired run in the partner
	Count         int32 // number of paired nodes in the run
}

// CellPlan is the guide's plan for one non-empty (slot, area) cell: how
// many predicted nodes it has and how its matched prefix is paired.
type CellPlan struct {
	Key     timeslot.CellKey
	Count   int32 // predicted number of objects of this type (a_ij or b_ij)
	Matched int32 // how many of them the guide matched (≤ Count)
	Runs    []Run // pair layout covering node indices [0, Matched)
}

// PartnerOf returns, for node index idx within this cell, the partner cell
// dense id and partner node index, or ok=false if the node is unmatched.
// It is O(log runs); online consumers use sequential cursors instead.
func (c *CellPlan) PartnerOf(idx int32) (partner, partnerIdx int32, ok bool) {
	if idx < 0 || idx >= c.Matched {
		return 0, 0, false
	}
	// Binary search for the run containing idx.
	lo, hi := 0, len(c.Runs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.Runs[mid].Offset <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	r := c.Runs[lo]
	if idx < r.Offset || idx >= r.Offset+r.Count {
		return 0, 0, false
	}
	return r.Partner, r.PartnerOffset + (idx - r.Offset), true
}

// Guide is the offline guide Ĝf: the pair layout for every non-empty
// worker cell and task cell, plus dense-id lookup tables.
type Guide struct {
	Cfg Config

	WorkerCells []CellPlan
	TaskCells   []CellPlan

	// workerID / taskID map a flattened (slot, area) key to a dense cell id
	// or -1. Length = slots × areas.
	workerID []int32
	taskID   []int32

	// MatchedPairs is the guide's matching size |E*| (total units of flow).
	MatchedPairs int
	// TravelCost is the total center-to-center travel time across matched
	// pairs (only meaningful when Cfg.MinCost, but computed always).
	TravelCost float64
}

// WorkerCellID returns the dense id of the worker cell for (slot, area), or
// -1 if the prediction has no workers there.
func (g *Guide) WorkerCellID(slot, area int) int32 {
	return g.workerID[slot*g.Cfg.Grid.NumCells()+area]
}

// TaskCellID is the task-side analogue of WorkerCellID.
func (g *Guide) TaskCellID(slot, area int) int32 {
	return g.taskID[slot*g.Cfg.Grid.NumCells()+area]
}

// TotalWorkers returns m = Σ a_ij.
func (g *Guide) TotalWorkers() int {
	s := 0
	for i := range g.WorkerCells {
		s += int(g.WorkerCells[i].Count)
	}
	return s
}

// TotalTasks returns n = Σ b_ij.
func (g *Guide) TotalTasks() int {
	s := 0
	for i := range g.TaskCells {
		s += int(g.TaskCells[i].Count)
	}
	return s
}

// cellRef is a non-empty prediction cell during construction.
type cellRef struct {
	key   timeslot.CellKey
	count int32
}

// Build runs Algorithm 1: it constructs the bipartite flow network over the
// predicted counts and extracts the pair layout from a maximum (optionally
// min-cost) flow. workerCounts and taskCounts are flattened over
// (slot, area) with length slots × areas; negative counts are rejected.
func Build(cfg Config, workerCounts, taskCounts []int) (*Guide, error) {
	if cfg.Grid == nil || cfg.Slots == nil {
		return nil, fmt.Errorf("guide: nil grid or slotting")
	}
	if cfg.Velocity <= 0 {
		return nil, fmt.Errorf("guide: non-positive velocity %v", cfg.Velocity)
	}
	areas := cfg.Grid.NumCells()
	want := cfg.Slots.Count * areas
	if len(workerCounts) != want || len(taskCounts) != want {
		return nil, fmt.Errorf("guide: counts length %d/%d, want %d", len(workerCounts), len(taskCounts), want)
	}

	wCells, wID, err := collectCells(workerCounts, areas, cfg.Slots.Count)
	if err != nil {
		return nil, fmt.Errorf("guide: worker %w", err)
	}
	tCells, tID, err := collectCells(taskCounts, areas, cfg.Slots.Count)
	if err != nil {
		return nil, fmt.Errorf("guide: task %w", err)
	}

	g := &Guide{Cfg: cfg, workerID: wID, taskID: tID}
	g.WorkerCells = make([]CellPlan, len(wCells))
	for i, c := range wCells {
		g.WorkerCells[i] = CellPlan{Key: c.key, Count: c.count}
	}
	g.TaskCells = make([]CellPlan, len(tCells))
	for i, c := range tCells {
		g.TaskCells[i] = CellPlan{Key: c.key, Count: c.count}
	}
	if len(wCells) == 0 || len(tCells) == 0 {
		return g, nil
	}

	// Bucket non-empty task cells by slot for edge enumeration.
	taskBySlot := make([][]int32, cfg.Slots.Count)
	for i, c := range tCells {
		taskBySlot[c.key.Slot] = append(taskBySlot[c.key.Slot], int32(i))
	}

	// Network layout: [0, len(wCells)) worker cells, then task cells, then
	// source and sink.
	nw, nt := len(wCells), len(tCells)
	net := flow.NewNetwork(nw + nt + 2)
	src, snk := nw+nt, nw+nt+1
	for i, c := range wCells {
		net.AddEdge(src, i, int64(c.count))
	}
	for i, c := range tCells {
		net.AddEdge(nw+i, snk, int64(c.count))
	}

	type pairEdge struct {
		edgeID int
		wCell  int32
		tCell  int32
	}
	var pairEdges []pairEdge

	// costScale converts travel times to integer edge costs for the
	// min-cost solver while keeping relative precision.
	const costScale = 1024.0

	type cand struct {
		tCell int32
		dist  float64
	}
	var cands []cand
	var diskCells []int
	for wi, wc := range wCells {
		sw := cfg.repTime(wc.key.Slot)
		wCenter := cfg.Grid.Center(wc.key.Area)
		cands = cands[:0]
		for slot := 0; slot < cfg.Slots.Count; slot++ {
			sr := cfg.repTime(slot)
			if sr >= sw+cfg.WorkerPatience {
				break // later slots only get later
			}
			budget := sr + cfg.TaskExpiry + cfg.RepSlack - sw // travel-time budget
			if budget < 0 {
				continue
			}
			radius := budget * cfg.Velocity
			nonEmpty := taskBySlot[slot]
			if len(nonEmpty) == 0 {
				continue
			}
			// Choose the cheaper enumeration: scan non-empty task cells of
			// the slot, or walk the disk of cells within the radius.
			cw, ch := cfg.Grid.CellSize()
			diskArea := math.Pi * (radius/cw + 1) * (radius/ch + 1)
			if diskArea < float64(len(nonEmpty)) {
				diskCells = cfg.Grid.CellsWithinRadius(wc.key.Area, radius, diskCells[:0])
				for _, area := range diskCells {
					ti := tID[slot*areas+area]
					if ti < 0 {
						continue
					}
					d := wCenter.Dist(cfg.Grid.Center(area))
					if cfg.edgeFeasible(sw, sr, d) {
						cands = append(cands, cand{tCell: ti, dist: d})
					}
				}
			} else {
				for _, ti := range nonEmpty {
					area := tCells[ti].key.Area
					d := wCenter.Dist(cfg.Grid.Center(area))
					if cfg.edgeFeasible(sw, sr, d) {
						cands = append(cands, cand{tCell: ti, dist: d})
					}
				}
			}
		}
		if cfg.MaxEdgesPerCell > 0 && len(cands) > cfg.MaxEdgesPerCell {
			sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
			cands = cands[:cfg.MaxEdgesPerCell]
		}
		for _, c := range cands {
			capacity := int64(wc.count)
			if tc := int64(tCells[c.tCell].count); tc < capacity {
				capacity = tc
			}
			cost := int64(0)
			if cfg.MinCost {
				cost = int64(c.dist / cfg.Velocity * costScale)
			}
			id := net.AddEdgeCost(wi, nw+int(c.tCell), capacity, cost)
			pairEdges = append(pairEdges, pairEdge{edgeID: id, wCell: int32(wi), tCell: c.tCell})
		}
	}

	if cfg.MinCost {
		v, _ := net.MinCostMaxFlow(src, snk)
		g.MatchedPairs = int(v)
	} else {
		g.MatchedPairs = int(net.MaxFlowDinic(src, snk))
	}

	// Decompose the flow into the pair layout. Worker cells are processed
	// in dense-id order; within a worker cell, partner runs in edge
	// insertion order (nearest-first when capped). Offsets advance on both
	// sides as runs are emitted.
	wOff := make([]int32, nw)
	tOff := make([]int32, nt)
	for _, pe := range pairEdges {
		f := net.EdgeFlow(pe.edgeID)
		if f <= 0 {
			continue
		}
		wp := &g.WorkerCells[pe.wCell]
		tp := &g.TaskCells[pe.tCell]
		run := Run{
			Offset:        wOff[pe.wCell],
			Partner:       pe.tCell,
			PartnerOffset: tOff[pe.tCell],
			Count:         int32(f),
		}
		wp.Runs = append(wp.Runs, run)
		tp.Runs = append(tp.Runs, Run{
			Offset:        tOff[pe.tCell],
			Partner:       pe.wCell,
			PartnerOffset: wOff[pe.wCell],
			Count:         int32(f),
		})
		wCenter := cfg.Grid.Center(wp.Key.Area)
		tCenter := cfg.Grid.Center(tp.Key.Area)
		g.TravelCost += float64(f) * wCenter.Dist(tCenter) / cfg.Velocity
		wOff[pe.wCell] += int32(f)
		tOff[pe.tCell] += int32(f)
		wp.Matched += int32(f)
		tp.Matched += int32(f)
	}

	// Task-side runs were appended in worker-cell order; sort them by their
	// own offset so each side's runs cover [0, Matched) in order.
	for i := range g.TaskCells {
		runs := g.TaskCells[i].Runs
		sort.Slice(runs, func(a, b int) bool { return runs[a].Offset < runs[b].Offset })
	}
	return g, nil
}

// NewManual assembles a Guide from explicit cell plans. It is intended for
// tests and for callers that compute pairings themselves (the paper's
// worked example fixes a specific max-flow decomposition); the result is
// validated before being returned.
func NewManual(cfg Config, workerCells, taskCells []CellPlan) (*Guide, error) {
	if cfg.Grid == nil || cfg.Slots == nil {
		return nil, fmt.Errorf("guide: nil grid or slotting")
	}
	areas := cfg.Grid.NumCells()
	g := &Guide{
		Cfg:         cfg,
		WorkerCells: workerCells,
		TaskCells:   taskCells,
		workerID:    make([]int32, cfg.Slots.Count*areas),
		taskID:      make([]int32, cfg.Slots.Count*areas),
	}
	for i := range g.workerID {
		g.workerID[i] = -1
		g.taskID[i] = -1
	}
	for i := range workerCells {
		g.workerID[workerCells[i].Key.Flatten(areas)] = int32(i)
		g.MatchedPairs += int(workerCells[i].Matched)
	}
	for i := range taskCells {
		g.taskID[taskCells[i].Key.Flatten(areas)] = int32(i)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// collectCells extracts non-empty cells and builds the dense-id lookup.
func collectCells(counts []int, areas, slots int) ([]cellRef, []int32, error) {
	id := make([]int32, slots*areas)
	for i := range id {
		id[i] = -1
	}
	var cells []cellRef
	for flat, c := range counts {
		if c < 0 {
			return nil, nil, fmt.Errorf("cell %d has negative count %d", flat, c)
		}
		if c == 0 {
			continue
		}
		id[flat] = int32(len(cells))
		cells = append(cells, cellRef{
			key:   timeslot.UnflattenCell(flat, areas),
			count: int32(c),
		})
	}
	return cells, id, nil
}

// Validate checks the internal consistency of the pair layout: runs on each
// side tile [0, Matched) without gaps, cross-references agree, and every
// paired (worker cell, task cell) satisfies the Definition 4 predicate on
// representatives. It is used by tests and available to callers who build
// guides from untrusted predictions.
func (g *Guide) Validate() error {
	check := func(cells []CellPlan, side string) error {
		for ci := range cells {
			c := &cells[ci]
			if c.Matched > c.Count {
				return fmt.Errorf("guide: %s cell %d matched %d > count %d", side, ci, c.Matched, c.Count)
			}
			var off int32
			for _, r := range c.Runs {
				if r.Offset != off {
					return fmt.Errorf("guide: %s cell %d runs have gap at %d", side, ci, off)
				}
				if r.Count <= 0 {
					return fmt.Errorf("guide: %s cell %d has non-positive run", side, ci)
				}
				off += r.Count
			}
			if off != c.Matched {
				return fmt.Errorf("guide: %s cell %d runs cover %d, matched %d", side, ci, off, c.Matched)
			}
		}
		return nil
	}
	if err := check(g.WorkerCells, "worker"); err != nil {
		return err
	}
	if err := check(g.TaskCells, "task"); err != nil {
		return err
	}
	// Cross-reference and feasibility.
	total := 0
	for wi := range g.WorkerCells {
		wc := &g.WorkerCells[wi]
		sw := g.Cfg.repTime(wc.Key.Slot)
		wCenter := g.Cfg.Grid.Center(wc.Key.Area)
		for _, r := range wc.Runs {
			total += int(r.Count)
			tc := &g.TaskCells[r.Partner]
			sr := g.Cfg.repTime(tc.Key.Slot)
			if sr >= sw+g.Cfg.WorkerPatience {
				return fmt.Errorf("guide: pair (w%d,t%d) violates worker deadline", wi, r.Partner)
			}
			d := wCenter.Dist(g.Cfg.Grid.Center(tc.Key.Area))
			if sw+d/g.Cfg.Velocity > sr+g.Cfg.TaskExpiry+g.Cfg.RepSlack+1e-9 {
				return fmt.Errorf("guide: pair (w%d,t%d) violates travel deadline", wi, r.Partner)
			}
			// The reverse run must exist and point back.
			found := false
			for _, tr := range tc.Runs {
				if tr.Partner == int32(wi) && tr.Offset == r.PartnerOffset && tr.PartnerOffset == r.Offset && tr.Count == r.Count {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("guide: run of w%d has no mirror in t%d", wi, r.Partner)
			}
		}
	}
	if total != g.MatchedPairs {
		return fmt.Errorf("guide: runs total %d != matched pairs %d", total, g.MatchedPairs)
	}
	return nil
}
