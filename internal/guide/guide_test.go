package guide

import (
	"testing"

	"ftoa/internal/flow"
	"ftoa/internal/geo"
	"ftoa/internal/mathx"
	"ftoa/internal/timeslot"
)

// exampleConfig mirrors the paper's running example: an 8×8 space split
// into 2×2 areas, a 10-minute timeline split into two 5-minute slots,
// velocity 1 unit/min, Dw = 30 min, Dr = 2 min.
func exampleConfig() Config {
	return Config{
		Grid:           geo.NewGrid(geo.NewRect(0, 0, 8, 8), 2, 2),
		Slots:          timeslot.New(10, 2),
		Velocity:       1,
		WorkerPatience: 30,
		TaskExpiry:     2,
	}
}

// exampleCounts returns the predicted counts of Figure 1d in this grid's
// numbering. The paper's Area0 (top-left) is our cell 2, Area1 (top-right)
// is cell 3, Area2 (bottom-left) is cell 0, Area3 (bottom-right) is cell 1.
func exampleCounts(cfg Config) (workers, tasks []int) {
	areas := cfg.Grid.NumCells()
	workers = make([]int, cfg.Slots.Count*areas)
	tasks = make([]int, cfg.Slots.Count*areas)
	workers[0*areas+2] = 2 // a(slot0, paper Area0) = 2
	workers[0*areas+1] = 3 // a(slot0, paper Area3) = 3
	tasks[0*areas+2] = 1   // b(slot0, paper Area0) = 1
	tasks[1*areas+3] = 3   // b(slot1, paper Area1) = 3
	tasks[1*areas+0] = 1   // b(slot1, paper Area2) = 1
	return workers, tasks
}

func TestBuildPaperExample(t *testing.T) {
	cfg := exampleConfig()
	workers, tasks := exampleCounts(cfg)
	g, err := Build(cfg, workers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// All five predicted pairs are matchable (Example 4 / Figure 2).
	if g.MatchedPairs != 5 {
		t.Errorf("MatchedPairs = %d, want 5", g.MatchedPairs)
	}
	if g.TotalWorkers() != 5 || g.TotalTasks() != 5 {
		t.Errorf("totals = %d workers, %d tasks; want 5, 5", g.TotalWorkers(), g.TotalTasks())
	}
	// Dense-id lookup round-trips.
	if id := g.WorkerCellID(0, 2); id < 0 || g.WorkerCells[id].Count != 2 {
		t.Errorf("worker cell (0,2) lookup broken: id=%d", id)
	}
	if id := g.TaskCellID(1, 3); id < 0 || g.TaskCells[id].Count != 3 {
		t.Errorf("task cell (1,3) lookup broken: id=%d", id)
	}
	if id := g.WorkerCellID(1, 3); id != -1 {
		t.Errorf("empty worker cell should be -1, got %d", id)
	}
}

func TestBuildEmptySides(t *testing.T) {
	cfg := exampleConfig()
	areas := cfg.Grid.NumCells()
	zero := make([]int, cfg.Slots.Count*areas)
	some := make([]int, cfg.Slots.Count*areas)
	some[0] = 3
	g, err := Build(cfg, zero, some)
	if err != nil {
		t.Fatal(err)
	}
	if g.MatchedPairs != 0 || len(g.WorkerCells) != 0 || len(g.TaskCells) != 1 {
		t.Errorf("unexpected guide for empty worker side: %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	cfg := exampleConfig()
	areas := cfg.Grid.NumCells()
	n := cfg.Slots.Count * areas
	good := make([]int, n)
	if _, err := Build(cfg, good, good[:n-1]); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := make([]int, n)
	bad[0] = -1
	if _, err := Build(cfg, bad, good); err == nil {
		t.Error("negative count accepted")
	}
	cfg2 := cfg
	cfg2.Velocity = 0
	if _, err := Build(cfg2, good, good); err == nil {
		t.Error("zero velocity accepted")
	}
	cfg3 := cfg
	cfg3.Grid = nil
	if _, err := Build(cfg3, good, good); err == nil {
		t.Error("nil grid accepted")
	}
}

func TestPartnerOf(t *testing.T) {
	cfg := exampleConfig()
	workers, tasks := exampleCounts(cfg)
	g, err := Build(cfg, workers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range g.WorkerCells {
		c := &g.WorkerCells[ci]
		for idx := int32(0); idx < c.Matched; idx++ {
			pc, pn, ok := c.PartnerOf(idx)
			if !ok {
				t.Fatalf("worker cell %d node %d should be matched", ci, idx)
			}
			// The partner's partner must be this node.
			bc, bn, ok := g.TaskCells[pc].PartnerOf(pn)
			if !ok || bc != int32(ci) || bn != idx {
				t.Fatalf("pairing not involutive: w(%d,%d) -> t(%d,%d) -> w(%d,%d)", ci, idx, pc, pn, bc, bn)
			}
		}
		if _, _, ok := c.PartnerOf(c.Matched); ok {
			t.Errorf("node beyond Matched reported as paired")
		}
		if _, _, ok := c.PartnerOf(-1); ok {
			t.Errorf("negative node reported as paired")
		}
	}
}

// referenceMatchingSize computes the maximum matching over the expanded
// unit-node bipartite graph — the literal Algorithm 1 — to cross-check the
// compressed network construction.
func referenceMatchingSize(cfg Config, workerCounts, taskCounts []int) int {
	areas := cfg.Grid.NumCells()
	type node struct{ slot, area int }
	var wNodes, tNodes []node
	for flat, c := range workerCounts {
		k := timeslot.UnflattenCell(flat, areas)
		for i := 0; i < c; i++ {
			wNodes = append(wNodes, node{k.Slot, k.Area})
		}
	}
	for flat, c := range taskCounts {
		k := timeslot.UnflattenCell(flat, areas)
		for i := 0; i < c; i++ {
			tNodes = append(tNodes, node{k.Slot, k.Area})
		}
	}
	adj := make([][]int32, len(wNodes))
	for i, w := range wNodes {
		sw := cfg.Slots.Mid(w.slot)
		for j, r := range tNodes {
			sr := cfg.Slots.Mid(r.slot)
			if sr >= sw+cfg.WorkerPatience {
				continue
			}
			d := cfg.Grid.Center(w.area).Dist(cfg.Grid.Center(r.area))
			if sw+d/cfg.Velocity <= sr+cfg.TaskExpiry+cfg.RepSlack {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}
	_, _, size := flow.HopcroftKarp(len(wNodes), len(tNodes), adj)
	return size
}

func TestCompressedEqualsExpandedOnRandomInputs(t *testing.T) {
	rng := mathx.NewRNG(404)
	for trial := 0; trial < 40; trial++ {
		cfg := Config{
			Grid:           geo.NewGrid(geo.NewRect(0, 0, 10, 10), 3, 3),
			Slots:          timeslot.New(6, 3),
			Velocity:       1 + rng.Float64()*4,
			WorkerPatience: 1 + rng.Float64()*4,
			TaskExpiry:     0.5 + rng.Float64()*3,
		}
		n := cfg.Slots.Count * cfg.Grid.NumCells()
		workers := make([]int, n)
		tasks := make([]int, n)
		for i := range workers {
			if rng.Float64() < 0.3 {
				workers[i] = rng.Intn(4)
			}
			if rng.Float64() < 0.3 {
				tasks[i] = rng.Intn(4)
			}
		}
		g, err := Build(cfg, workers, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := referenceMatchingSize(cfg, workers, tasks)
		if g.MatchedPairs != want {
			t.Fatalf("trial %d: compressed matching %d != expanded %d", trial, g.MatchedPairs, want)
		}
	}
}

func TestMinCostGuideSameSizeLowerCost(t *testing.T) {
	rng := mathx.NewRNG(505)
	for trial := 0; trial < 15; trial++ {
		cfg := Config{
			Grid:           geo.NewGrid(geo.NewRect(0, 0, 20, 20), 4, 4),
			Slots:          timeslot.New(8, 4),
			Velocity:       3,
			WorkerPatience: 4,
			TaskExpiry:     3,
		}
		n := cfg.Slots.Count * cfg.Grid.NumCells()
		workers := make([]int, n)
		tasks := make([]int, n)
		for i := range workers {
			workers[i] = rng.Intn(3)
			tasks[i] = rng.Intn(3)
		}
		plain, err := Build(cfg, workers, tasks)
		if err != nil {
			t.Fatal(err)
		}
		cfgMC := cfg
		cfgMC.MinCost = true
		mc, err := Build(cfgMC, workers, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.Validate(); err != nil {
			t.Fatal(err)
		}
		if mc.MatchedPairs != plain.MatchedPairs {
			t.Fatalf("trial %d: mincost size %d != plain size %d", trial, mc.MatchedPairs, plain.MatchedPairs)
		}
		if mc.TravelCost > plain.TravelCost+1e-6 {
			t.Fatalf("trial %d: mincost travel %v > plain travel %v", trial, mc.TravelCost, plain.TravelCost)
		}
	}
}

func TestMaxEdgesPerCellCapsValue(t *testing.T) {
	cfg := Config{
		Grid:           geo.NewGrid(geo.NewRect(0, 0, 10, 10), 5, 5),
		Slots:          timeslot.New(4, 2),
		Velocity:       100, // everything reachable: dense graph
		WorkerPatience: 10,
		TaskExpiry:     10,
	}
	n := cfg.Slots.Count * cfg.Grid.NumCells()
	workers := make([]int, n)
	tasks := make([]int, n)
	for i := range workers {
		workers[i] = 1
		tasks[i] = 1
	}
	full, err := Build(cfg, workers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	cfgCap := cfg
	cfgCap.MaxEdgesPerCell = 1
	capped, err := Build(cfgCap, workers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := capped.Validate(); err != nil {
		t.Fatal(err)
	}
	if capped.MatchedPairs > full.MatchedPairs {
		t.Errorf("capped %d > full %d", capped.MatchedPairs, full.MatchedPairs)
	}
	// With cap 1, each worker cell pairs with at most one task cell; value
	// must still be positive.
	if capped.MatchedPairs == 0 {
		t.Error("capped guide matched nothing")
	}
	for i := range capped.WorkerCells {
		seen := map[int32]bool{}
		for _, r := range capped.WorkerCells[i].Runs {
			seen[r.Partner] = true
		}
		if len(seen) > 1 {
			t.Errorf("worker cell %d has %d partner cells despite cap 1", i, len(seen))
		}
	}
}

func TestNewManualValidates(t *testing.T) {
	cfg := exampleConfig()
	// A single 1-1 pairing between worker cell (slot0, area2) and task cell
	// (slot0, area2).
	w := []CellPlan{{
		Key: timeslot.CellKey{Slot: 0, Area: 2}, Count: 2, Matched: 1,
		Runs: []Run{{Offset: 0, Partner: 0, PartnerOffset: 0, Count: 1}},
	}}
	tk := []CellPlan{{
		Key: timeslot.CellKey{Slot: 0, Area: 2}, Count: 1, Matched: 1,
		Runs: []Run{{Offset: 0, Partner: 0, PartnerOffset: 0, Count: 1}},
	}}
	g, err := NewManual(cfg, w, tk)
	if err != nil {
		t.Fatal(err)
	}
	if g.MatchedPairs != 1 {
		t.Errorf("MatchedPairs = %d", g.MatchedPairs)
	}
	// An inconsistent layout must be rejected: matched without runs.
	bad := []CellPlan{{Key: timeslot.CellKey{Slot: 0, Area: 2}, Count: 1, Matched: 1}}
	if _, err := NewManual(cfg, bad, nil); err == nil {
		t.Error("inconsistent manual guide accepted")
	}
	// Infeasible pairing must be rejected: worker in slot1 paired with a
	// task in slot0 that expired long before.
	wBad := []CellPlan{{
		Key: timeslot.CellKey{Slot: 1, Area: 2}, Count: 1, Matched: 1,
		Runs: []Run{{Offset: 0, Partner: 0, PartnerOffset: 0, Count: 1}},
	}}
	tBad := []CellPlan{{
		Key: timeslot.CellKey{Slot: 0, Area: 2}, Count: 1, Matched: 1,
		Runs: []Run{{Offset: 0, Partner: 0, PartnerOffset: 0, Count: 1}},
	}}
	if _, err := NewManual(cfg, wBad, tBad); err == nil {
		t.Error("infeasible manual pairing accepted")
	}
}

func TestGuideDeterminism(t *testing.T) {
	cfg := exampleConfig()
	workers, tasks := exampleCounts(cfg)
	a, err := Build(cfg, workers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg, workers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if a.MatchedPairs != b.MatchedPairs || len(a.WorkerCells) != len(b.WorkerCells) {
		t.Fatal("guide construction not deterministic at top level")
	}
	for i := range a.WorkerCells {
		ra, rb := a.WorkerCells[i].Runs, b.WorkerCells[i].Runs
		if len(ra) != len(rb) {
			t.Fatalf("cell %d run count differs", i)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("cell %d run %d differs: %+v vs %+v", i, j, ra[j], rb[j])
			}
		}
	}
}
