// Package mathx is the numeric substrate for the FTOA reproduction:
// a deterministic random source, the probability distributions the paper's
// synthetic workloads are drawn from (Normal, truncated Normal, multivariate
// Normal, Poisson), integerisation helpers (largest-remainder rounding),
// summary statistics, and a dense linear solver used by the regression-based
// predictors.
//
// Everything is seeded explicitly so experiments are reproducible run to run.
package mathx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// create one per goroutine.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, exactly like
// math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives a new independent generator from r. Useful for giving each
// subsystem (temporal sampling, spatial sampling, noise) its own stream so
// adding draws in one place does not perturb another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Normal returns a draw from the standard normal distribution using the
// polar (Marsaglia) method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalMS returns a draw from N(mu, sigma²). sigma may be zero, in which
// case mu is returned exactly.
func (r *RNG) NormalMS(mu, sigma float64) float64 {
	if sigma == 0 {
		return mu
	}
	return mu + sigma*r.Normal()
}

// TruncNormal draws from N(mu, sigma²) truncated to [lo, hi] by rejection,
// falling back to clamping after a bounded number of attempts (relevant only
// for extreme truncation, where the clamped value is the distribution's
// effective mass point anyway).
func (r *RNG) TruncNormal(mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		x := r.NormalMS(mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(math.Max(mu, lo), hi)
}

// Poisson returns a draw from Poisson(lambda). For small lambda it uses
// Knuth's product method; for large lambda the PTRS-like normal
// approximation with rounding, which is adequate for workload counts.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	x := r.NormalMS(lambda, math.Sqrt(lambda))
	if x < 0 {
		return 0
	}
	return int(x + 0.5)
}

// Exp returns a draw from the exponential distribution with the given rate.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative weights are treated as zero.
// It panics if the total weight is not positive.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("mathx: Categorical with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating point slack: return last positive index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}

// MVNormal2 draws from a 2D multivariate normal with mean (muX, muY) and
// covariance matrix [[cxx, cxy], [cxy, cyy]] via its Cholesky factor.
// It panics if the covariance matrix is not positive semi-definite.
type MVNormal2 struct {
	MuX, MuY      float64
	l11, l21, l22 float64
}

// NewMVNormal2 prepares a sampler for the given mean and covariance.
func NewMVNormal2(muX, muY, cxx, cxy, cyy float64) *MVNormal2 {
	if cxx < 0 || cyy < 0 {
		panic("mathx: negative variance")
	}
	l11 := math.Sqrt(cxx)
	var l21, l22 float64
	if l11 > 0 {
		l21 = cxy / l11
	} else if cxy != 0 {
		panic("mathx: covariance inconsistent with zero variance")
	}
	d := cyy - l21*l21
	if d < -1e-9 {
		panic("mathx: covariance not positive semi-definite")
	}
	if d > 0 {
		l22 = math.Sqrt(d)
	}
	return &MVNormal2{MuX: muX, MuY: muY, l11: l11, l21: l21, l22: l22}
}

// Sample draws one (x, y) pair.
func (m *MVNormal2) Sample(r *RNG) (x, y float64) {
	z1, z2 := r.Normal(), r.Normal()
	return m.MuX + m.l11*z1, m.MuY + m.l21*z1 + m.l22*z2
}
