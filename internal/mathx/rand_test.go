package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn bucket %d grossly unbalanced: %d", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(3)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalMS(t *testing.T) {
	r := NewRNG(4)
	if v := r.NormalMS(5, 0); v != 5 {
		t.Errorf("sigma 0 should return mu exactly, got %v", v)
	}
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += r.NormalMS(10, 2)
	}
	if m := sum / float64(n); math.Abs(m-10) > 0.1 {
		t.Errorf("NormalMS mean = %v, want ~10", m)
	}
}

func TestTruncNormalInRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 5000; i++ {
		v := r.TruncNormal(0.5, 0.3, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal out of range: %v", v)
		}
	}
	// Extreme truncation falls back to clamp without spinning forever.
	v := r.TruncNormal(100, 0.001, 0, 1)
	if v < 0 || v > 1 {
		t.Fatalf("extreme TruncNormal out of range: %v", v)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(6)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		n := 60000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda should be 0")
	}
}

func TestCategorical(t *testing.T) {
	r := NewRNG(7)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight-3 to weight-1 ratio = %v, want ~3", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("Categorical with zero total should panic")
		}
	}()
	r.Categorical([]float64{0, 0})
}

func TestMVNormal2(t *testing.T) {
	r := NewRNG(8)
	m := NewMVNormal2(2, -1, 4, 1.5, 2)
	n := 150000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := m.Sample(r)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	mx, my := sx/fn, sy/fn
	if math.Abs(mx-2) > 0.05 || math.Abs(my+1) > 0.05 {
		t.Errorf("MV mean = (%v,%v), want (2,-1)", mx, my)
	}
	cxx := sxx/fn - mx*mx
	cyy := syy/fn - my*my
	cxy := sxy/fn - mx*my
	if math.Abs(cxx-4) > 0.15 || math.Abs(cyy-2) > 0.1 || math.Abs(cxy-1.5) > 0.1 {
		t.Errorf("MV cov = [%v %v; %v %v], want [4 1.5; 1.5 2]", cxx, cxy, cxy, cyy)
	}
}

func TestMVNormal2Degenerate(t *testing.T) {
	r := NewRNG(9)
	m := NewMVNormal2(3, 4, 0, 0, 0)
	x, y := m.Sample(r)
	if x != 3 || y != 4 {
		t.Errorf("zero-covariance sample = (%v,%v), want (3,4)", x, y)
	}
	assertPanics(t, func() { NewMVNormal2(0, 0, -1, 0, 1) })
	assertPanics(t, func() { NewMVNormal2(0, 0, 0, 1, 1) }) // cxy with zero cxx
	assertPanics(t, func() { NewMVNormal2(0, 0, 1, 2, 1) }) // not PSD
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(10)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams coincide on %d of 64 draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExp(t *testing.T) {
	r := NewRNG(12)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", m)
	}
	assertPanics(t, func() { r.Exp(0) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
