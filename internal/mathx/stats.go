package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 if either series is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LargestRemainderRound rounds non-negative weights to integers whose sum is
// exactly total, allocating floor shares first and distributing the
// remaining units to the largest fractional remainders. It is how expected
// per-cell counts m·Pr[i][j] are integerised into the a[i][j] the guide
// consumes without losing or inventing objects.
//
// If all weights are zero (or the slice is empty) the remainder is assigned
// to index 0 onward one unit at a time, or the function returns nil for an
// empty slice with total 0. It panics on negative total or negative weights.
func LargestRemainderRound(weights []float64, total int) []int {
	if total < 0 {
		panic("mathx: negative total")
	}
	if len(weights) == 0 {
		if total == 0 {
			return nil
		}
		panic("mathx: cannot distribute positive total over no weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("mathx: negative weight")
		}
		sum += w
	}
	out := make([]int, len(weights))
	if total == 0 {
		return out
	}
	if sum == 0 {
		// Degenerate: spread uniformly.
		for i := 0; i < total; i++ {
			out[i%len(out)]++
		}
		return out
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := w / sum * float64(total)
		fl := math.Floor(exact)
		out[i] = int(fl)
		assigned += int(fl)
		fracs[i] = frac{idx: i, rem: exact - fl}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx // deterministic tie-break
	})
	for k := 0; assigned < total; k++ {
		out[fracs[k%len(fracs)].idx]++
		assigned++
	}
	return out
}

// SolveLinear solves the dense linear system A·x = b in place using Gaussian
// elimination with partial pivoting. A is row-major n×n and is destroyed;
// b has length n and is overwritten with the solution, which is also
// returned. It returns false if the matrix is singular to working precision.
//
// The regression predictors (LR, and the ridge systems inside HP-MSI) solve
// small normal-equation systems with this.
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, false
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a[row][col]); v > best {
				best, pivot = v, row
			}
		}
		if best < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	for row := n - 1; row >= 0; row-- {
		s := b[row]
		for k := row + 1; k < n; k++ {
			s -= a[row][k] * b[k]
		}
		b[row] = s / a[row][row]
	}
	return b, true
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SumInts returns the sum of xs.
func SumInts(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// SumFloats returns the sum of xs.
func SumFloats(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
