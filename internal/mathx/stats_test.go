package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean     float64
		variance float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"mixed", []float64{1, 2, 3, 4, 5}, 3, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); math.Abs(got-tt.variance) > 1e-12 {
				t.Errorf("Variance = %v, want %v", got, tt.variance)
			}
		})
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice should be 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant series correlation = %v, want 0", got)
	}
	if got := Pearson(xs, []float64{1, 2}); got != 0 {
		t.Errorf("length mismatch correlation = %v, want 0", got)
	}
}

func TestLargestRemainderRound(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
		total   int
		want    []int
	}{
		{"exact thirds", []float64{1, 1, 1}, 3, []int{1, 1, 1}},
		{"remainder to largest frac", []float64{0.5, 0.3, 0.2}, 10, []int{5, 3, 2}},
		{"uneven", []float64{2, 1}, 4, []int{3, 1}},
		{"zero total", []float64{1, 2}, 0, []int{0, 0}},
		{"all zero weights", []float64{0, 0, 0}, 4, []int{2, 1, 1}},
		{"single bucket", []float64{7}, 13, []int{13}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := LargestRemainderRound(tt.weights, tt.total)
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestLargestRemainderRoundProperties(t *testing.T) {
	r := NewRNG(99)
	if err := quick.Check(func(nRaw uint8, totalRaw uint16) bool {
		n := int(nRaw)%20 + 1
		total := int(totalRaw) % 5000
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 10
		}
		out := LargestRemainderRound(weights, total)
		if SumInts(out) != total {
			return false
		}
		for _, v := range out {
			if v < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	assertPanics(t, func() { LargestRemainderRound([]float64{1}, -1) })
	assertPanics(t, func() { LargestRemainderRound([]float64{-1, 2}, 3) })
	assertPanics(t, func() { LargestRemainderRound(nil, 3) })
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, ok := SolveLinear(a, b)
	if !ok {
		t.Fatal("solver reported singular for a regular system")
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, ok := SolveLinear(a, []float64{1, 2}); ok {
		t.Error("singular system not detected")
	}
	if _, ok := SolveLinear(nil, nil); ok {
		t.Error("empty system should fail")
	}
	if _, ok := SolveLinear([][]float64{{1}}, []float64{1, 2}); ok {
		t.Error("dimension mismatch should fail")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	r := NewRNG(123)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(6) + 1
		// Random well-conditioned matrix: diagonally dominant.
		a := make([][]float64, n)
		orig := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.Float64()*2 - 1
			}
			a[i][i] += float64(n) + 1
			copy(orig[i], a[i])
			xTrue[i] = r.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += orig[i][j] * xTrue[j]
			}
		}
		x, ok := SolveLinear(a, b)
		if !ok {
			t.Fatalf("trial %d: unexpectedly singular", trial)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp misbehaves")
	}
}

func TestSums(t *testing.T) {
	if SumInts([]int{1, 2, 3}) != 6 || SumInts(nil) != 0 {
		t.Error("SumInts")
	}
	if SumFloats([]float64{1.5, 2.5}) != 4 || SumFloats(nil) != 0 {
		t.Error("SumFloats")
	}
}
