// Package model defines the FTOA problem objects from Section 2 of the
// paper: workers (Definition 1), tasks (Definition 2), travel cost
// (Definition 3), and the pair-feasibility predicate from the FTOA problem
// statement (Definition 4). It also provides the merged arrival-event
// stream that online algorithms consume and the Instance container that
// bundles one experiment's inputs.
package model

import (
	"fmt"
	"sort"

	"ftoa/internal/geo"
)

// Worker is a crowdsourcing worker (a taxi in the motivating application).
// It appears at location Loc at time Arrive and leaves the platform at
// Arrive+Patience if unassigned (Definition 1: w = <Lw, Sw, Dw>).
type Worker struct {
	ID       int
	Loc      geo.Point // Lw: initial location
	Arrive   float64   // Sw: arrival time on the platform
	Patience float64   // Dw: waiting duration before the worker leaves
}

// Deadline returns the time after which the worker no longer serves tasks.
func (w *Worker) Deadline() float64 { return w.Arrive + w.Patience }

// Task is a spatial task (a taxi-calling request). It is released at Loc at
// time Release and must be *reached* by an assigned worker no later than
// Release+Expiry (Definition 2: r = <Lr, Sr, Dr>).
type Task struct {
	ID      int
	Loc     geo.Point // Lr: fixed task location
	Release float64   // Sr: release time
	Expiry  float64   // Dr: service window length
}

// Deadline returns the latest time a worker may arrive at the task.
func (t *Task) Deadline() float64 { return t.Release + t.Expiry }

// Feasible reports whether the pair (w, r) satisfies the deadline
// constraint of Definition 4 under ideal guidance:
//
//  1. the task appears before the worker leaves:      Sr < Sw + Dw
//  2. departing its initial location at its arrival
//     time, the worker reaches the task in time:      Sw + d(Lw,Lr) ≤ Sr + Dr
//
// velocity converts distance to travel time. This is the predicate used for
// offline OPT and for guide edges; wait-in-place online baselines are
// subject to the stricter run-time check in FeasibleAt.
func Feasible(w *Worker, r *Task, velocity float64) bool {
	if r.Release >= w.Deadline() {
		return false
	}
	return w.Arrive+geo.TravelTime(w.Loc, r.Loc, velocity) <= r.Deadline()
}

// FeasibleAt reports whether a worker currently located at pos at time now
// can still serve task r: the task must have been released while the worker
// is on the platform, and the worker departing pos at time now must reach
// Lr by the task deadline. This is the strict run-time validation the
// simulator applies when it actually commits a match.
func FeasibleAt(w *Worker, r *Task, pos geo.Point, now, velocity float64) bool {
	if r.Release >= w.Deadline() {
		return false
	}
	return now+geo.TravelTime(pos, r.Loc, velocity) <= r.Deadline()
}

// EventKind distinguishes arrival events.
type EventKind uint8

const (
	// WorkerArrival is the appearance of a new worker on the platform.
	WorkerArrival EventKind = iota
	// TaskArrival is the release of a new task.
	TaskArrival
)

func (k EventKind) String() string {
	switch k {
	case WorkerArrival:
		return "worker"
	case TaskArrival:
		return "task"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one arrival in the online input sequence.
type Event struct {
	Time  float64
	Kind  EventKind
	Index int // index into Instance.Workers or Instance.Tasks
}

// Instance bundles one FTOA problem instance: the realized workers and
// tasks, the shared worker velocity, and the spatial bounds the experiment
// runs on. Workers and Tasks are identified by their slice index; IDs are
// informational.
type Instance struct {
	Workers  []Worker
	Tasks    []Task
	Velocity float64
	Bounds   geo.Rect
	Horizon  float64
}

// Validate checks structural sanity (non-negative durations, velocity > 0,
// IDs unique within each side). It returns the first problem found.
func (in *Instance) Validate() error {
	if in.Velocity <= 0 {
		return fmt.Errorf("model: non-positive velocity %v", in.Velocity)
	}
	seenW := make(map[int]bool, len(in.Workers))
	for i := range in.Workers {
		w := &in.Workers[i]
		if w.Patience < 0 {
			return fmt.Errorf("model: worker %d has negative patience %v", w.ID, w.Patience)
		}
		if seenW[w.ID] {
			return fmt.Errorf("model: duplicate worker ID %d", w.ID)
		}
		seenW[w.ID] = true
	}
	seenT := make(map[int]bool, len(in.Tasks))
	for i := range in.Tasks {
		r := &in.Tasks[i]
		if r.Expiry < 0 {
			return fmt.Errorf("model: task %d has negative expiry %v", r.ID, r.Expiry)
		}
		if seenT[r.ID] {
			return fmt.Errorf("model: duplicate task ID %d", r.ID)
		}
		seenT[r.ID] = true
	}
	return nil
}

// Events returns the merged arrival sequence sorted by time. Ties are
// broken deterministically: earlier kind first (workers before tasks, so a
// worker arriving at the same instant as a task can serve it, matching the
// paper's Example 1 where w1 at 9:00 serves r1 at 9:00), then by index.
func (in *Instance) Events() []Event {
	evs := make([]Event, 0, len(in.Workers)+len(in.Tasks))
	for i := range in.Workers {
		evs = append(evs, Event{Time: in.Workers[i].Arrive, Kind: WorkerArrival, Index: i})
	}
	for i := range in.Tasks {
		evs = append(evs, Event{Time: in.Tasks[i].Release, Kind: TaskArrival, Index: i})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].Time != evs[b].Time {
			return evs[a].Time < evs[b].Time
		}
		if evs[a].Kind != evs[b].Kind {
			return evs[a].Kind < evs[b].Kind
		}
		return evs[a].Index < evs[b].Index
	})
	return evs
}

// Pair is one assigned worker-task pair in a matching.
type Pair struct {
	Worker int // index into Instance.Workers
	Task   int // index into Instance.Tasks
}

// Matching is the output of an assignment algorithm: a set of disjoint
// worker-task pairs. MaxSum(M) in the paper is simply len(Matching).
type Matching struct {
	Pairs []Pair
}

// Size returns the number of assigned pairs (the paper's MaxSum objective).
func (m Matching) Size() int { return len(m.Pairs) }

// Add appends a pair. It does not check disjointness; use Validate.
func (m *Matching) Add(w, t int) { m.Pairs = append(m.Pairs, Pair{Worker: w, Task: t}) }

// Validate checks that m is a valid matching for in: indices in range, each
// worker and task used at most once, and every pair feasible per Definition
// 4 (the ideal-guidance predicate, which is implied by any stricter
// run-time check the simulator performed).
func (m Matching) Validate(in *Instance) error {
	usedW := make(map[int]bool, len(m.Pairs))
	usedT := make(map[int]bool, len(m.Pairs))
	for _, p := range m.Pairs {
		if p.Worker < 0 || p.Worker >= len(in.Workers) {
			return fmt.Errorf("model: worker index %d out of range", p.Worker)
		}
		if p.Task < 0 || p.Task >= len(in.Tasks) {
			return fmt.Errorf("model: task index %d out of range", p.Task)
		}
		if usedW[p.Worker] {
			return fmt.Errorf("model: worker %d matched twice", p.Worker)
		}
		if usedT[p.Task] {
			return fmt.Errorf("model: task %d matched twice", p.Task)
		}
		usedW[p.Worker] = true
		usedT[p.Task] = true
		if !Feasible(&in.Workers[p.Worker], &in.Tasks[p.Task], in.Velocity) {
			return fmt.Errorf("model: pair (w%d, r%d) infeasible", p.Worker, p.Task)
		}
	}
	return nil
}
