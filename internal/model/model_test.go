package model

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ftoa/internal/geo"
)

func TestWorkerTaskDeadlines(t *testing.T) {
	w := Worker{Arrive: 3, Patience: 30}
	if w.Deadline() != 33 {
		t.Errorf("worker deadline = %v", w.Deadline())
	}
	r := Task{Release: 5, Expiry: 2}
	if r.Deadline() != 7 {
		t.Errorf("task deadline = %v", r.Deadline())
	}
}

func TestFeasible(t *testing.T) {
	// Velocity 1 unit/min throughout, mirroring Example 1.
	tests := []struct {
		name string
		w    Worker
		r    Task
		want bool
	}{
		{
			name: "reachable in time",
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 30},
			r:    Task{Loc: geo.Pt(1, 0), Release: 0, Expiry: 2},
			want: true,
		},
		{
			name: "too far",
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 30},
			r:    Task{Loc: geo.Pt(5, 0), Release: 0, Expiry: 2},
			want: false,
		},
		{
			name: "task released after worker leaves",
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 3},
			r:    Task{Loc: geo.Pt(0, 0), Release: 3, Expiry: 2},
			want: false, // Sr < Sw+Dw must be strict
		},
		{
			name: "task released just before worker leaves",
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 3},
			r:    Task{Loc: geo.Pt(0, 0), Release: 2.9, Expiry: 2},
			want: true,
		},
		{
			name: "pre-movement toward future task",
			// Worker arrives at t=0, task appears at t=10 five units away
			// with Dr=2: worker departing at t=0 arrives at t=5 ≤ 12.
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 30},
			r:    Task{Loc: geo.Pt(5, 0), Release: 10, Expiry: 2},
			want: true,
		},
		{
			name: "worker arrives after task deadline",
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 10, Patience: 30},
			r:    Task{Loc: geo.Pt(0, 0), Release: 0, Expiry: 2},
			want: false, // Sw + 0 = 10 > Sr + Dr = 2
		},
		{
			name: "boundary exactly on deadline",
			w:    Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 30},
			r:    Task{Loc: geo.Pt(2, 0), Release: 0, Expiry: 2},
			want: true, // Sw + d = 2 = Sr + Dr, ≤ holds
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Feasible(&tt.w, &tt.r, 1); got != tt.want {
				t.Errorf("Feasible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFeasibleAt(t *testing.T) {
	w := Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 30}
	r := Task{Loc: geo.Pt(5, 0), Release: 4, Expiry: 2}
	// From the initial location at the task's release, 5 > 2 away: infeasible.
	if FeasibleAt(&w, &r, w.Loc, 4, 1) {
		t.Error("wait-in-place should be infeasible")
	}
	// But a pre-moved worker at (4,0) is 1 ≤ 2 away: feasible.
	if !FeasibleAt(&w, &r, geo.Pt(4, 0), 4, 1) {
		t.Error("pre-moved worker should be feasible")
	}
	// Expired worker never feasible even from on top of the task.
	expired := Worker{Loc: r.Loc, Arrive: 0, Patience: 3}
	if FeasibleAt(&expired, &r, r.Loc, 4, 1) {
		t.Error("task released after worker deadline must be infeasible")
	}
}

func TestFeasibleAtImpliesFeasibleFromStart(t *testing.T) {
	// If the wait-in-place run-time check passes at the task release with
	// the worker still at Lw, the Definition-4 predicate must also hold.
	if err := quick.Check(func(wx, wy, rx, ry, swRaw, srRaw, drRaw uint16) bool {
		w := Worker{
			Loc:      geo.Pt(float64(wx%100), float64(wy%100)),
			Arrive:   float64(swRaw % 50),
			Patience: 30,
		}
		r := Task{
			Loc:     geo.Pt(float64(rx%100), float64(ry%100)),
			Release: float64(srRaw % 50),
			Expiry:  float64(drRaw%10) + 1,
		}
		if r.Release < w.Arrive {
			return true // wait-in-place match can only happen after arrival
		}
		now := r.Release
		if FeasibleAt(&w, &r, w.Loc, now, 1) {
			return Feasible(&w, &r, 1)
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEventsOrdering(t *testing.T) {
	in := &Instance{
		Velocity: 1,
		Workers: []Worker{
			{ID: 0, Arrive: 5},
			{ID: 1, Arrive: 1},
		},
		Tasks: []Task{
			{ID: 0, Release: 1}, // same instant as worker 1
			{ID: 1, Release: 0.5},
		},
	}
	evs := in.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d", len(evs))
	}
	if !sort.SliceIsSorted(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time }) {
		t.Fatal("events not time-sorted")
	}
	// At t=1 the worker must precede the task.
	if evs[1].Kind != WorkerArrival || evs[2].Kind != TaskArrival {
		t.Errorf("tie-break wrong: %+v", evs)
	}
	if evs[0].Kind != TaskArrival || evs[0].Index != 1 {
		t.Errorf("first event wrong: %+v", evs[0])
	}
}

func TestEventKindString(t *testing.T) {
	if WorkerArrival.String() != "worker" || TaskArrival.String() != "task" {
		t.Error("EventKind strings")
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestInstanceValidate(t *testing.T) {
	good := &Instance{
		Velocity: 1,
		Workers:  []Worker{{ID: 1}, {ID: 2}},
		Tasks:    []Task{{ID: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []*Instance{
		{Velocity: 0},
		{Velocity: 1, Workers: []Worker{{ID: 1, Patience: -1}}},
		{Velocity: 1, Workers: []Worker{{ID: 1}, {ID: 1}}},
		{Velocity: 1, Tasks: []Task{{ID: 1, Expiry: -0.5}}},
		{Velocity: 1, Tasks: []Task{{ID: 1}, {ID: 1}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestMatchingValidate(t *testing.T) {
	in := &Instance{
		Velocity: 1,
		Workers: []Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Arrive: 0, Patience: 30},
			{ID: 1, Loc: geo.Pt(9, 9), Arrive: 0, Patience: 30},
		},
		Tasks: []Task{
			{ID: 0, Loc: geo.Pt(1, 0), Release: 0, Expiry: 2},
			{ID: 1, Loc: geo.Pt(0, 1), Release: 0, Expiry: 2},
		},
	}
	var m Matching
	m.Add(0, 0)
	if err := m.Validate(in); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	if m.Size() != 1 {
		t.Errorf("Size = %d", m.Size())
	}

	var dupW Matching
	dupW.Add(0, 0)
	dupW.Add(0, 1)
	if err := dupW.Validate(in); err == nil {
		t.Error("duplicate worker accepted")
	}

	var dupT Matching
	dupT.Add(0, 0)
	dupT.Add(1, 0)
	if err := dupT.Validate(in); err == nil {
		t.Error("duplicate task accepted")
	}

	var infeasible Matching
	infeasible.Add(1, 0) // worker at (9,9) cannot reach (1,0) within 2
	if err := infeasible.Validate(in); err == nil {
		t.Error("infeasible pair accepted")
	}

	var oob Matching
	oob.Add(5, 0)
	if err := oob.Validate(in); err == nil {
		t.Error("out-of-range worker accepted")
	}
	oob = Matching{}
	oob.Add(0, 5)
	if err := oob.Validate(in); err == nil {
		t.Error("out-of-range task accepted")
	}
}

func TestFeasibleInfiniteVelocityGuard(t *testing.T) {
	w := Worker{Loc: geo.Pt(0, 0), Arrive: 0, Patience: 10}
	r := Task{Loc: geo.Pt(1, 1), Release: 0, Expiry: 1}
	if Feasible(&w, &r, 0) {
		t.Error("zero velocity should make everything unreachable")
	}
	if !math.IsInf(geo.TravelTime(w.Loc, r.Loc, 0), 1) {
		t.Error("travel time guard")
	}
}
