// Package netfault is a seed-deterministic in-process TCP chaos proxy:
// it forwards byte streams between a client and a target while injecting
// the failure modes a real network serves — added latency and jitter,
// bandwidth caps, mid-frame connection resets (RST, not FIN), stalls,
// and proxy-wide blackhole partitions.
//
// The proxy never corrupts what it forwards: bytes are delayed, held, or
// cut off by killing the connection, but never reordered, dropped
// mid-stream, or altered. That discipline is what makes chaos soaks
// gateable — a surviving connection speaks an intact protocol, so any
// CRC or framing error observed under the proxy is a real bug, and the
// exactly-once invariant (internal/wire idempotency) can be asserted
// with zero tolerated protocol errors.
//
// Fault schedules derive from Config.Seed and the connection's accept
// index alone, so a failing soak replays the same latency draws, reset
// times and partition windows under the same seed.
package netfault

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects the fault profile. Zero durations disable their fault;
// a zero-value Config is a transparent proxy.
type Config struct {
	// Listen is the proxy's listen address (e.g. "127.0.0.1:0").
	Listen string
	// Target is the upstream address every accepted connection is piped to.
	Target string
	// Seed makes every schedule reproducible; 0 is a valid seed.
	Seed int64

	// LatencyMin/LatencyMax delay each forwarded chunk by a per-chunk
	// uniform draw from [min, max] in each direction.
	LatencyMin time.Duration
	LatencyMax time.Duration
	// Bandwidth caps each direction of each connection, bytes/second
	// (0 = unlimited).
	Bandwidth int
	// ResetEvery cuts each connection with an RST (SO_LINGER 0) at a
	// uniform draw from [0.5, 1.5)x this interval after accept — usually
	// landing mid-frame. 0 never resets.
	ResetEvery time.Duration
	// StallEvery/StallFor freeze a connection direction (bytes held, not
	// dropped) for StallFor at [0.5, 1.5)x StallEvery intervals.
	StallEvery time.Duration
	StallFor   time.Duration
	// PartitionEvery/PartitionFor blackhole the whole proxy — every
	// direction of every connection holds its bytes — for PartitionFor
	// at [0.5, 1.5)x PartitionEvery intervals.
	PartitionEvery time.Duration
	PartitionFor   time.Duration
}

// Stats is a snapshot of the proxy's fault accounting.
type Stats struct {
	Conns      uint64 // connections accepted
	DialErrors uint64 // upstream dials that failed (client conn dropped)
	Resets     uint64 // connections cut with RST
	Stalls     uint64 // per-direction stalls served
	Partitions uint64 // proxy-wide blackhole windows
	BytesIn    uint64 // client -> target bytes forwarded
	BytesOut   uint64 // target -> client bytes forwarded
}

// Proxy is one running chaos proxy. Close stops it and severs every
// proxied connection.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // both sides of every live pipe
	closed bool
	seq    int64
	wg     sync.WaitGroup
	done   chan struct{}

	partUntil atomic.Int64 // unix nanos; traffic holds until then

	conns_     atomic.Uint64
	dialErrs   atomic.Uint64
	resets     atomic.Uint64
	stalls     atomic.Uint64
	partitions atomic.Uint64
	bytesIn    atomic.Uint64
	bytesOut   atomic.Uint64
}

// New starts the proxy listening on cfg.Listen.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, errors.New("netfault: Target required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	if cfg.PartitionEvery > 0 && cfg.PartitionFor > 0 {
		p.wg.Add(1)
		go p.partitionLoop()
	}
	return p, nil
}

// Addr is the proxy's listen address — point the client here.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats snapshots the fault accounting.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:      p.conns_.Load(),
		DialErrors: p.dialErrs.Load(),
		Resets:     p.resets.Load(),
		Stalls:     p.stalls.Load(),
		Partitions: p.partitions.Load(),
		BytesIn:    p.bytesIn.Load(),
		BytesOut:   p.bytesOut.Load(),
	}
}

// Close stops accepting, severs every pipe, and waits the pumps out.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	close(p.done)
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// jitter draws uniform [0.5, 1.5) x d.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

func (p *Proxy) partitionLoop() {
	defer p.wg.Done()
	// A dedicated stream decorrelated from the per-connection ones.
	rng := rand.New(rand.NewSource(p.cfg.Seed ^ 0x7061727469746e))
	t := time.NewTimer(jitter(rng, p.cfg.PartitionEvery))
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			p.partitions.Add(1)
			p.partUntil.Store(time.Now().Add(p.cfg.PartitionFor).UnixNano())
			t.Reset(p.cfg.PartitionFor + jitter(rng, p.cfg.PartitionEvery))
		}
	}
}

// holdPartition blocks while the proxy-wide blackhole is in effect.
func (p *Proxy) holdPartition() {
	for {
		until := p.partUntil.Load()
		wait := time.Until(time.Unix(0, until))
		if until == 0 || wait <= 0 {
			return
		}
		t := time.NewTimer(wait)
		select {
		case <-p.done:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		seq := p.seq
		p.seq++
		p.mu.Unlock()
		p.conns_.Add(1)
		p.wg.Add(1)
		go p.serve(c, seq)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// serve pipes one accepted connection to the target with faults applied.
func (p *Proxy) serve(client net.Conn, seq int64) {
	defer p.wg.Done()
	upstream, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		p.dialErrs.Add(1)
		client.Close()
		return
	}
	if !p.track(client) || !p.track(upstream) {
		client.Close()
		upstream.Close()
		return
	}
	defer p.untrack(client)
	defer p.untrack(upstream)

	// Three decorrelated streams per connection, all derived from
	// (Seed, accept index): one per pump direction, one for the reset
	// schedule — so adding a fault type never perturbs the others.
	base := p.cfg.Seed*1_000_003 + seq
	connDone := make(chan struct{})

	if p.cfg.ResetEvery > 0 {
		rng := rand.New(rand.NewSource(base ^ 0x72657365740a))
		at := jitter(rng, p.cfg.ResetEvery)
		t := time.NewTimer(at)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer t.Stop()
			select {
			case <-connDone:
			case <-p.done:
			case <-t.C:
				// RST, not FIN: SO_LINGER 0 discards the send queue and
				// resets, so the peer sees the abrupt truncation a
				// crashed or NATed-out host produces — typically landing
				// in the middle of a frame.
				p.resets.Add(1)
				for _, c := range []net.Conn{client, upstream} {
					if tc, ok := c.(*net.TCPConn); ok {
						tc.SetLinger(0)
					}
					c.Close()
				}
			}
		}()
	}

	var pumps sync.WaitGroup
	pumps.Add(2)
	go p.pump(upstream, client, rand.New(rand.NewSource(base^0x633273)), &p.bytesIn, &pumps)
	go p.pump(client, upstream, rand.New(rand.NewSource(base^0x733263)), &p.bytesOut, &pumps)
	pumps.Wait()
	close(connDone)
}

// pump forwards src -> dst applying latency, bandwidth, stall and
// partition holds. Bytes are only ever delayed, never dropped: every
// fault short of killing the connection preserves the stream intact.
func (p *Proxy) pump(dst, src net.Conn, rng *rand.Rand, bytes *atomic.Uint64, wg *sync.WaitGroup) {
	defer wg.Done()
	// Small chunks so per-chunk latency shapes the stream rather than
	// arriving as one burst, and so a reset has frames to land inside.
	buf := make([]byte, 4096)
	var nextStall time.Time
	if p.cfg.StallEvery > 0 && p.cfg.StallFor > 0 {
		nextStall = time.Now().Add(jitter(rng, p.cfg.StallEvery))
	}
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.holdPartition()
			if !nextStall.IsZero() && time.Now().After(nextStall) {
				p.stalls.Add(1)
				p.sleep(p.cfg.StallFor)
				nextStall = time.Now().Add(jitter(rng, p.cfg.StallEvery))
			}
			if p.cfg.LatencyMax > 0 {
				lo, hi := p.cfg.LatencyMin, p.cfg.LatencyMax
				d := lo
				if hi > lo {
					d += time.Duration(rng.Int63n(int64(hi - lo)))
				}
				p.sleep(d)
			}
			if p.cfg.Bandwidth > 0 {
				p.sleep(time.Duration(float64(n) / float64(p.cfg.Bandwidth) * float64(time.Second)))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				// The destination is gone: nothing more can be delivered
				// in either direction, so tear the pipe down.
				dst.Close()
				src.Close()
				return
			}
			bytes.Add(uint64(n))
		}
		if err == io.EOF {
			// Propagate the half-close: the reverse direction may still
			// be draining (closing it here would DROP held bytes).
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			return
		}
		if err != nil {
			dst.Close()
			src.Close()
			return
		}
	}
}

// sleep waits d or until the proxy closes.
func (p *Proxy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.done:
	}
}

// Soak profiles: canned fault mixes for the chaos harness.

// SoakProfile is a moderately hostile network: tens of milliseconds of
// latency, sub-second stalls and partitions, and a reset roughly every
// two seconds per connection — enough churn that a soak of a few
// seconds exercises reconnect, resend and dedup many times over.
func SoakProfile(target string, seed int64) Config {
	return Config{
		Target:         target,
		Seed:           seed,
		LatencyMin:     1 * time.Millisecond,
		LatencyMax:     15 * time.Millisecond,
		ResetEvery:     2 * time.Second,
		StallEvery:     1500 * time.Millisecond,
		StallFor:       300 * time.Millisecond,
		PartitionEvery: 4 * time.Second,
		PartitionFor:   500 * time.Millisecond,
	}
}
