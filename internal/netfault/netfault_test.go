package netfault

import (
	"bytes"
	"crypto/sha256"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestTransparentIntegrity: latency, jitter, stalls and a bandwidth cap
// delay bytes but never corrupt, drop or reorder them.
func TestTransparentIntegrity(t *testing.T) {
	ln := echoServer(t)
	p, err := New(Config{
		Target:     ln.Addr().String(),
		Seed:       7,
		LatencyMin: time.Millisecond,
		LatencyMax: 3 * time.Millisecond,
		Bandwidth:  1 << 20,
		StallEvery: 20 * time.Millisecond,
		StallFor:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		c.Write(payload)
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	echoed := make([]byte, 0, len(payload))
	buf := make([]byte, 4096)
	c.SetReadDeadline(time.Now().Add(30 * time.Second))
	for len(echoed) < len(payload) {
		n, err := c.Read(buf)
		echoed = append(echoed, buf[:n]...)
		if err != nil {
			break
		}
	}
	if !bytes.Equal(echoed, payload) {
		t.Fatalf("echo differs: got %d bytes (sum %x), want %d (sum %x)",
			len(echoed), sha256.Sum256(echoed), len(payload), sha256.Sum256(payload))
	}
	st := p.Stats()
	if st.Conns != 1 || st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("stats = %+v, want traffic on 1 conn", st)
	}
}

// TestResetKillsConnection: with a short reset schedule the connection
// dies abruptly; the proxy survives and serves new connections.
func TestResetKillsConnection(t *testing.T) {
	ln := echoServer(t)
	p, err := New(Config{
		Target:     ln.Addr().String(),
		Seed:       1,
		ResetEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := c.Write([]byte("ping")); err != nil {
			break
		}
		if _, err := c.Read(buf); err != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	if p.Stats().Resets == 0 {
		t.Fatal("connection died without a scheduled reset")
	}

	// The proxy still accepts and serves after cutting a connection.
	c2, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := c2.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, buf[:5]); err != nil {
		t.Fatalf("fresh conn after reset: %v", err)
	}
}

// TestPartitionHoldsBytes: during a blackhole window bytes are held, not
// lost — they arrive intact once the partition lifts.
func TestPartitionHoldsBytes(t *testing.T) {
	ln := echoServer(t)
	p, err := New(Config{Target: ln.Addr().String(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(30 * time.Second))
	buf := make([]byte, 64)
	// Warm the pipe, then impose a partition directly and verify traffic
	// resumes only after it lifts.
	if _, err := c.Write([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf[:4]); err != nil {
		t.Fatal(err)
	}
	const hold = 300 * time.Millisecond
	p.partUntil.Store(time.Now().Add(hold).UnixNano())
	t0 := time.Now()
	if _, err := c.Write([]byte("held")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf[:4]); err != nil {
		t.Fatalf("bytes lost across partition: %v", err)
	}
	if string(buf[:4]) != "held" {
		t.Fatalf("got %q across partition, want %q", buf[:4], "held")
	}
	if waited := time.Since(t0); waited < hold/2 {
		t.Fatalf("reply in %v, want the partition to hold ~%v", waited, hold)
	}
}
