package predict

// featureExtractor builds the shared feature vector the learned predictors
// (GBRT, NN) consume, matching the paper's description: the counts of the
// 15 most recent corresponding periods plus additional features such as the
// weather condition, the slot of day, the day of week, recent same-day
// slots and the area's historical level.
type featureExtractor struct {
	s         *Series
	trainDays int
	lags      int       // corresponding-period lags (15 in the paper)
	haProfile []float64 // per (slot, area) training mean
}

// numFeatures is lags + [prev slot, prev-prev slot, weather, slot-of-day,
// day-of-week, historical mean].
func (fe *featureExtractor) numFeatures() int { return fe.lags + 6 }

func newFeatureExtractor(s *Series, trainDays int) *featureExtractor {
	lags := 15
	if trainDays-1 < lags {
		lags = trainDays - 1
	}
	if lags < 1 {
		lags = 1
	}
	fe := &featureExtractor{s: s, trainDays: trainDays, lags: lags}
	fe.haProfile = make([]float64, s.Slots*s.Areas)
	for slot := 0; slot < s.Slots; slot++ {
		for a := 0; a < s.Areas; a++ {
			sum := 0.0
			for d := 0; d < trainDays; d++ {
				sum += s.At(d, slot, a)
			}
			fe.haProfile[slot*s.Areas+a] = sum / float64(trainDays)
		}
	}
	return fe
}

// extract fills dst (length numFeatures) with the features for forecasting
// (day, slot, area).
func (fe *featureExtractor) extract(day, slot, area int, dst []float64) {
	s := fe.s
	for lag := 1; lag <= fe.lags; lag++ {
		dst[lag-1] = s.At(clampDay(day-lag, s.Days), slot, area)
	}
	i := fe.lags
	// Same-day recent slots (observed online before the target slot).
	prev1, prev2 := 0.0, 0.0
	d, sl := day, slot-1
	if sl < 0 {
		d, sl = day-1, s.Slots-1
	}
	if d >= 0 {
		prev1 = s.At(d, sl, area)
	}
	d2, sl2 := d, sl-1
	if sl2 < 0 {
		d2, sl2 = d-1, s.Slots-1
	}
	if d2 >= 0 {
		prev2 = s.At(d2, sl2, area)
	}
	dst[i] = prev1
	dst[i+1] = prev2
	dst[i+2] = s.Weather(clampDay(day, s.Days), slot)
	dst[i+3] = float64(slot) / float64(s.Slots)
	dst[i+4] = float64(s.DayOfWeek(clampDay(day, s.Days)))
	dst[i+5] = fe.haProfile[slot*s.Areas+area]
}

// trainingSamples materialises up to maxSamples (feature, target) pairs
// from the training window, deterministically strided.
func (fe *featureExtractor) trainingSamples(maxSamples int) (features [][]float64, targets []float64) {
	s := fe.s
	startDay := fe.lags
	total := (fe.trainDays - startDay) * s.Slots * s.Areas
	if total <= 0 {
		return nil, nil
	}
	stride := 1
	if maxSamples > 0 && total > maxSamples {
		stride = total / maxSamples
	}
	nf := fe.numFeatures()
	idx := 0
	for d := startDay; d < fe.trainDays; d++ {
		for slot := 0; slot < s.Slots; slot++ {
			for a := 0; a < s.Areas; a++ {
				if idx%stride == 0 {
					row := make([]float64, nf)
					fe.extract(d, slot, a, row)
					features = append(features, row)
					targets = append(targets, s.At(d, slot, a))
				}
				idx++
			}
		}
	}
	return features, targets
}
