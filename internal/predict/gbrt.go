package predict

import (
	"fmt"
	"math"
	"sort"
)

// GBRT is gradient-boosted regression trees with squared loss: an ensemble
// of depth-limited CART trees fit to residuals with shrinkage, the
// non-parametric regression the paper cites from Friedman. Implemented from
// scratch on the shared feature set (15 corresponding-period lags, recent
// same-day slots, weather, calendar, historical level).
type GBRT struct {
	// Rounds is the number of boosting stages (default 40).
	Rounds int
	// Depth is the maximum tree depth (default 3).
	Depth int
	// Shrinkage is the learning rate (default 0.15).
	Shrinkage float64
	// MaxSamples bounds the training set size (default 30000).
	MaxSamples int

	fe    *featureExtractor
	base  float64
	trees []*cartTree
	buf   []float64
}

// NewGBRT creates the predictor with default hyperparameters.
func NewGBRT() *GBRT {
	return &GBRT{Rounds: 40, Depth: 3, Shrinkage: 0.15, MaxSamples: 30000}
}

// Name implements Predictor.
func (g *GBRT) Name() string { return "GBRT" }

// Fit implements Predictor.
func (g *GBRT) Fit(s *Series, trainDays int) error {
	if trainDays < 2 || trainDays > s.Days {
		return fmt.Errorf("predict: GBRT trainDays %d out of range", trainDays)
	}
	g.fe = newFeatureExtractor(s, trainDays)
	feats, targets := g.fe.trainingSamples(g.MaxSamples)
	if len(feats) == 0 {
		return fmt.Errorf("predict: GBRT has no training samples")
	}
	g.buf = make([]float64, g.fe.numFeatures())

	// Base prediction: the mean.
	g.base = 0
	for _, y := range targets {
		g.base += y
	}
	g.base /= float64(len(targets))

	resid := make([]float64, len(targets))
	for i, y := range targets {
		resid[i] = y - g.base
	}
	g.trees = g.trees[:0]
	for round := 0; round < g.Rounds; round++ {
		tree := buildCART(feats, resid, g.Depth, 20)
		if tree == nil {
			break
		}
		g.trees = append(g.trees, tree)
		for i, row := range feats {
			resid[i] -= g.Shrinkage * tree.eval(row)
		}
	}
	return nil
}

// Predict implements Predictor.
func (g *GBRT) Predict(day, slot, area int) float64 {
	g.fe.extract(day, slot, area, g.buf)
	v := g.base
	for _, t := range g.trees {
		v += g.Shrinkage * t.eval(g.buf)
	}
	if v < 0 {
		return 0
	}
	return v
}

// cartTree is a binary regression tree stored as parallel arrays.
type cartTree struct {
	feature []int32   // split feature, -1 for leaf
	thresh  []float64 // split threshold
	left    []int32
	right   []int32
	value   []float64 // leaf value
}

func (t *cartTree) eval(row []float64) float64 {
	node := int32(0)
	for t.feature[node] >= 0 {
		if row[t.feature[node]] <= t.thresh[node] {
			node = t.left[node]
		} else {
			node = t.right[node]
		}
	}
	return t.value[node]
}

// buildCART fits a depth-limited least-squares regression tree on the
// samples indexed by idx (all if nil). minLeaf is the minimum samples per
// leaf. Splits are exact: each feature's values are sorted per node.
func buildCART(feats [][]float64, targets []float64, maxDepth, minLeaf int) *cartTree {
	n := len(feats)
	if n == 0 {
		return nil
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	t := &cartTree{}
	var grow func(items []int32, depth int) int32
	grow = func(items []int32, depth int) int32 {
		node := int32(len(t.feature))
		t.feature = append(t.feature, -1)
		t.thresh = append(t.thresh, 0)
		t.left = append(t.left, -1)
		t.right = append(t.right, -1)
		mean := 0.0
		for _, i := range items {
			mean += targets[i]
		}
		mean /= float64(len(items))
		t.value = append(t.value, mean)
		if depth >= maxDepth || len(items) < 2*minLeaf {
			return node
		}
		bestGain, bestF, bestThresh := 0.0, -1, 0.0
		nf := len(feats[0])
		// Total sum for gain computation.
		var totalSum float64
		for _, i := range items {
			totalSum += targets[i]
		}
		totalN := float64(len(items))
		order := make([]int32, len(items))
		for f := 0; f < nf; f++ {
			copy(order, items)
			sort.Slice(order, func(a, b int) bool { return feats[order[a]][f] < feats[order[b]][f] })
			var leftSum float64
			for k := 0; k < len(order)-1; k++ {
				i := order[k]
				leftSum += targets[i]
				if k+1 < minLeaf || len(order)-(k+1) < minLeaf {
					continue
				}
				v, next := feats[i][f], feats[order[k+1]][f]
				if v == next {
					continue // cannot split between equal values
				}
				ln := float64(k + 1)
				rn := totalN - ln
				rightSum := totalSum - leftSum
				gain := leftSum*leftSum/ln + rightSum*rightSum/rn - totalSum*totalSum/totalN
				if gain > bestGain+1e-12 {
					bestGain, bestF, bestThresh = gain, f, (v+next)/2
				}
			}
		}
		if bestF < 0 {
			return node
		}
		var leftItems, rightItems []int32
		for _, i := range items {
			if feats[i][bestF] <= bestThresh {
				leftItems = append(leftItems, i)
			} else {
				rightItems = append(rightItems, i)
			}
		}
		if len(leftItems) == 0 || len(rightItems) == 0 {
			return node
		}
		t.feature[node] = int32(bestF)
		t.thresh[node] = bestThresh
		l := grow(leftItems, depth+1)
		r := grow(rightItems, depth+1)
		t.left[node] = l
		t.right[node] = r
		return node
	}
	grow(idx, 0)
	return t
}

// NeuralNet is the paper's NN baseline: a single-hidden-layer feed-forward
// network (tanh activations, linear output) trained with SGD and momentum
// on the shared feature set. Inputs are standardised from training
// statistics.
type NeuralNet struct {
	// Hidden is the hidden layer width (default 16).
	Hidden int
	// Epochs over the training sample (default 12).
	Epochs int
	// LearnRate for mini-batch RMSProp (default 0.01).
	LearnRate float64
	// MaxSamples bounds the training set size (default 30000).
	MaxSamples int
	// Seed makes training deterministic.
	Seed uint64

	fe   *featureExtractor
	mean []float64
	std  []float64
	w1   [][]float64 // hidden × (features+1)
	w2   []float64   // output weights, hidden+1
	buf  []float64
	hbuf []float64
}

// NewNeuralNet creates the predictor with default hyperparameters.
func NewNeuralNet() *NeuralNet {
	return &NeuralNet{Hidden: 16, Epochs: 12, LearnRate: 0.01, MaxSamples: 30000, Seed: 7}
}

// Name implements Predictor.
func (n *NeuralNet) Name() string { return "NN" }

// Fit implements Predictor.
func (n *NeuralNet) Fit(s *Series, trainDays int) error {
	if trainDays < 2 || trainDays > s.Days {
		return fmt.Errorf("predict: NN trainDays %d out of range", trainDays)
	}
	n.fe = newFeatureExtractor(s, trainDays)
	feats, targets := n.fe.trainingSamples(n.MaxSamples)
	if len(feats) == 0 {
		return fmt.Errorf("predict: NN has no training samples")
	}
	nf := n.fe.numFeatures()
	n.buf = make([]float64, nf)
	n.hbuf = make([]float64, n.Hidden)

	// Standardisation statistics.
	n.mean = make([]float64, nf)
	n.std = make([]float64, nf)
	for _, row := range feats {
		for j, v := range row {
			n.mean[j] += v
		}
	}
	for j := range n.mean {
		n.mean[j] /= float64(len(feats))
	}
	for _, row := range feats {
		for j, v := range row {
			d := v - n.mean[j]
			n.std[j] += d * d
		}
	}
	for j := range n.std {
		n.std[j] = math.Sqrt(n.std[j] / float64(len(feats)))
		if n.std[j] < 1e-9 {
			n.std[j] = 1
		}
	}
	// Counts are trained in log1p space as residuals against the
	// historical-average feature (the last feature): the network learns
	// corrections to HA rather than absolute levels, which keeps quiet
	// cells quiet and bounds gradients.
	haIdx := nf - 1
	logTargets := make([]float64, len(targets))
	for i, y := range targets {
		logTargets[i] = math.Log1p(y) - math.Log1p(feats[i][haIdx])
	}

	rng := newSmallRNG(n.Seed)
	n.w1 = make([][]float64, n.Hidden)
	g1 := make([][]float64, n.Hidden) // accumulated minibatch gradients
	c1 := make([][]float64, n.Hidden) // RMSProp caches
	for h := range n.w1 {
		n.w1[h] = make([]float64, nf+1)
		g1[h] = make([]float64, nf+1)
		c1[h] = make([]float64, nf+1)
		for j := range n.w1[h] {
			n.w1[h][j] = (rng.float() - 0.5) * 0.5
		}
	}
	n.w2 = make([]float64, n.Hidden+1)
	g2 := make([]float64, n.Hidden+1)
	c2 := make([]float64, n.Hidden+1)
	for j := range n.w2 {
		n.w2[j] = (rng.float() - 0.5) * 0.5
	}

	// Mini-batch RMSProp: batch-averaged gradients with per-weight step
	// normalisation. Far more stable on count data than per-sample SGD
	// with momentum, which oscillates once tail samples hit.
	const (
		batch = 64
		decay = 0.95
		eps   = 1e-8
	)
	x := make([]float64, nf)
	hidden := make([]float64, n.Hidden)
	order := make([]int32, len(feats))
	for i := range order {
		order[i] = int32(i)
	}
	lr := n.LearnRate
	apply := func(count float64) {
		inv := 1 / count
		for h := 0; h < n.Hidden; h++ {
			for j := 0; j <= nf; j++ {
				g := g1[h][j] * inv
				c1[h][j] = decay*c1[h][j] + (1-decay)*g*g
				n.w1[h][j] -= lr * g / (math.Sqrt(c1[h][j]) + eps)
				g1[h][j] = 0
			}
		}
		for j := 0; j <= n.Hidden; j++ {
			g := g2[j] * inv
			c2[j] = decay*c2[j] + (1-decay)*g*g
			n.w2[j] -= lr * g / (math.Sqrt(c2[j]) + eps)
			g2[j] = 0
		}
	}
	for epoch := 0; epoch < n.Epochs; epoch++ {
		// Annealing: without it RMSProp keeps wandering at constant step
		// size and late epochs drift away from the optimum.
		lr = n.LearnRate / (1 + 0.2*float64(epoch))
		// Deterministic shuffle per epoch.
		for i := len(order) - 1; i > 0; i-- {
			j := int(rng.next() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		inBatch := 0
		for _, si := range order {
			row := feats[si]
			for j := range x {
				x[j] = (row[j] - n.mean[j]) / n.std[j]
			}
			// Forward.
			out := n.w2[n.Hidden]
			for h := 0; h < n.Hidden; h++ {
				z := n.w1[h][nf]
				for j := 0; j < nf; j++ {
					z += n.w1[h][j] * x[j]
				}
				hidden[h] = math.Tanh(z)
				out += n.w2[h] * hidden[h]
			}
			err := out - logTargets[si]
			// Huber-style clipping bounds the influence of tail samples.
			if err > 2 {
				err = 2
			} else if err < -2 {
				err = -2
			}
			// Accumulate gradients.
			for h := 0; h < n.Hidden; h++ {
				g2[h] += err * hidden[h]
				dh := err * n.w2[h] * (1 - hidden[h]*hidden[h])
				for j := 0; j < nf; j++ {
					g1[h][j] += dh * x[j]
				}
				g1[h][nf] += dh
			}
			g2[n.Hidden] += err
			inBatch++
			if inBatch == batch {
				apply(float64(inBatch))
				inBatch = 0
			}
		}
		if inBatch > 0 {
			apply(float64(inBatch))
		}
	}
	return nil
}

// Predict implements Predictor.
func (n *NeuralNet) Predict(day, slot, area int) float64 {
	n.fe.extract(day, slot, area, n.buf)
	nf := len(n.buf)
	out := n.w2[n.Hidden]
	for h := 0; h < n.Hidden; h++ {
		z := n.w1[h][nf]
		for j := 0; j < nf; j++ {
			z += n.w1[h][j] * (n.buf[j] - n.mean[j]) / n.std[j]
		}
		out += n.w2[h] * math.Tanh(z)
	}
	ha := n.buf[nf-1]
	v := math.Expm1(out + math.Log1p(ha))
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	// Cap wild extrapolations on cells whose history is near-empty: the
	// network's smooth surface otherwise leaks mass into quiet areas.
	if cap := 1 + 4*ha; v > cap {
		return cap
	}
	return v
}

// smallRNG is a tiny splitmix64 for weight initialisation and shuffling.
type smallRNG struct{ state uint64 }

func newSmallRNG(seed uint64) *smallRNG { return &smallRNG{state: seed} }

func (r *smallRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *smallRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }
