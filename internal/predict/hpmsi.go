package predict

import (
	"fmt"
	"math"
)

// HPMSI is the hierarchical prediction with multi-similarity inference of
// Li et al. (GIS 2015), the paper's best-performing method and the one its
// framework adopts. The implementation follows the method's two pillars:
//
//  1. Hierarchy: areas are clustered by the similarity of their historical
//     demand profiles together with geographic proximity; predictions are
//     made at cluster level, where counts are dense enough to estimate
//     reliably, and distributed down to areas by their historical
//     within-cluster shares for that slot of day.
//  2. Multi-similarity inference: the cluster-level forecast is a learned
//     combination of similarity-based estimators — the same-day-of-week
//     historical average, the recent-activity-scaled profile, and the
//     average over weather-similar training slots — with weights fit by
//     least squares on the training window.
type HPMSI struct {
	// Clusters is the number of area clusters; 0 picks ~√areas.
	Clusters int
	// KMeansIters bounds the clustering iterations (default 25).
	KMeansIters int
	// Seed makes clustering deterministic.
	Seed uint64

	s         *Series
	trainDays int

	assign    []int // area -> cluster
	nClusters int
	// clusterHA[dow][slot][cluster]: same-dow mean of cluster totals.
	clusterHA [][]float64 // indexed [dow*Slots+slot][cluster]
	haCount   []int       // training days per dow
	// clusterProfile[slot][cluster]: all-days mean (for PAQ-style scaling).
	clusterProfile [][]float64
	// weatherMean[bin][slot][cluster]: mean over training slots whose
	// weather falls in the bin.
	weatherMean  [][][]float64
	weatherCount [][]int
	// clusterCounts[day*Slots+slot][cluster]: observed cluster totals over
	// the whole series (test days included — look-back uses only observed
	// past values).
	clusterCounts [][]float64
	// shares[slot*Areas+area]: area's historical share within its cluster
	// at this slot of day (smoothed).
	shares []float64
	// weights of the three estimators + intercept, fit on training tail.
	weights [4]float64
}

// NewHPMSI creates the predictor with defaults.
func NewHPMSI() *HPMSI { return &HPMSI{KMeansIters: 25, Seed: 11} }

// Name implements Predictor.
func (h *HPMSI) Name() string { return "HP-MSI" }

const weatherBins = 4

// Fit implements Predictor.
func (h *HPMSI) Fit(s *Series, trainDays int) error {
	if trainDays < 2 || trainDays > s.Days {
		return fmt.Errorf("predict: HP-MSI trainDays %d out of range", trainDays)
	}
	h.s, h.trainDays = s, trainDays

	h.nClusters = h.Clusters
	if h.nClusters <= 0 {
		h.nClusters = int(math.Sqrt(float64(s.Areas)))
		if h.nClusters < 2 {
			h.nClusters = 2
		}
	}
	if h.nClusters > s.Areas {
		h.nClusters = s.Areas
	}
	h.cluster()
	h.buildAggregates()
	h.fitWeights()
	return nil
}

// cluster runs k-means over per-area features: the normalised mean
// slot-of-day profile (compressed to 12 bins) plus the area's grid
// coordinates scaled to comparable magnitude — profile similarity plus
// geographic proximity.
func (h *HPMSI) cluster() {
	s := h.s
	const profBins = 12
	nf := profBins + 2
	feats := make([][]float64, s.Areas)
	// Geographic coordinates: areas are row-major on an unknown grid; use
	// the index split by a square-ish width as a proxy when the caller's
	// grid shape is unknown. The profile dominates; geography only breaks
	// ties between look-alike areas.
	side := int(math.Sqrt(float64(s.Areas)))
	if side < 1 {
		side = 1
	}
	for a := 0; a < s.Areas; a++ {
		f := make([]float64, nf)
		total := 0.0
		for d := 0; d < h.trainDays; d++ {
			for slot := 0; slot < s.Slots; slot++ {
				bin := slot * profBins / s.Slots
				v := s.At(d, slot, a)
				f[bin] += v
				total += v
			}
		}
		if total > 0 {
			for b := 0; b < profBins; b++ {
				f[b] /= total
			}
		}
		f[profBins] = float64(a%side) / float64(side) * 0.3
		f[profBins+1] = float64(a/side) / float64(side) * 0.3
		feats[a] = f
	}
	h.assign = kmeans(feats, h.nClusters, h.KMeansIters, h.Seed)
}

// buildAggregates precomputes cluster-level statistics and area shares.
func (h *HPMSI) buildAggregates() {
	s := h.s
	k := h.nClusters
	h.clusterHA = make([][]float64, 7*s.Slots)
	for i := range h.clusterHA {
		h.clusterHA[i] = make([]float64, k)
	}
	h.haCount = make([]int, 7)
	h.clusterProfile = make([][]float64, s.Slots)
	for i := range h.clusterProfile {
		h.clusterProfile[i] = make([]float64, k)
	}
	h.weatherMean = make([][][]float64, weatherBins)
	h.weatherCount = make([][]int, weatherBins)
	for b := 0; b < weatherBins; b++ {
		h.weatherMean[b] = make([][]float64, s.Slots)
		h.weatherCount[b] = make([]int, s.Slots)
		for i := range h.weatherMean[b] {
			h.weatherMean[b][i] = make([]float64, k)
		}
	}
	// Cluster totals for every observed (day, slot), full series.
	h.clusterCounts = make([][]float64, s.Days*s.Slots)
	for d := 0; d < s.Days; d++ {
		for slot := 0; slot < s.Slots; slot++ {
			row := make([]float64, k)
			for a := 0; a < s.Areas; a++ {
				row[h.assign[a]] += s.At(d, slot, a)
			}
			h.clusterCounts[d*s.Slots+slot] = row
		}
	}
	// Accumulate training aggregates.
	areaSum := make([]float64, s.Slots*s.Areas) // per (slot, area) mean numerator
	for d := 0; d < h.trainDays; d++ {
		dow := s.DayOfWeek(d)
		h.haCount[dow]++
		for slot := 0; slot < s.Slots; slot++ {
			wbin := weatherBin(s.Weather(d, slot))
			h.weatherCount[wbin][slot]++
			cc := h.clusterCounts[d*s.Slots+slot]
			for c := 0; c < k; c++ {
				h.clusterHA[dow*s.Slots+slot][c] += cc[c]
				h.clusterProfile[slot][c] += cc[c]
				h.weatherMean[wbin][slot][c] += cc[c]
			}
			for a := 0; a < s.Areas; a++ {
				areaSum[slot*s.Areas+a] += s.At(d, slot, a)
			}
		}
	}
	for dow := 0; dow < 7; dow++ {
		if h.haCount[dow] == 0 {
			continue
		}
		for slot := 0; slot < s.Slots; slot++ {
			for c := 0; c < k; c++ {
				h.clusterHA[dow*s.Slots+slot][c] /= float64(h.haCount[dow])
			}
		}
	}
	for slot := 0; slot < s.Slots; slot++ {
		for c := 0; c < k; c++ {
			h.clusterProfile[slot][c] /= float64(h.trainDays)
		}
		for b := 0; b < weatherBins; b++ {
			if n := h.weatherCount[b][slot]; n > 0 {
				for c := 0; c < k; c++ {
					h.weatherMean[b][slot][c] /= float64(n)
				}
			}
		}
	}
	// Area shares within cluster per slot, Laplace-smoothed.
	h.shares = make([]float64, s.Slots*s.Areas)
	clusterSize := make([]int, k)
	for _, c := range h.assign {
		clusterSize[c]++
	}
	for slot := 0; slot < s.Slots; slot++ {
		clusterTotal := make([]float64, k)
		for a := 0; a < s.Areas; a++ {
			clusterTotal[h.assign[a]] += areaSum[slot*s.Areas+a]
		}
		for a := 0; a < s.Areas; a++ {
			c := h.assign[a]
			h.shares[slot*s.Areas+a] = (areaSum[slot*s.Areas+a] + 0.1) /
				(clusterTotal[c] + 0.1*float64(clusterSize[c]))
		}
	}
}

// estimators returns the three cluster-level similarity estimates for
// (day, slot, cluster).
func (h *HPMSI) estimators(day, slot, c int) (ha, recent, weather float64) {
	s := h.s
	dow := s.DayOfWeek(clampDay(day, s.Days))
	if h.haCount[dow] > 0 {
		ha = h.clusterHA[dow*s.Slots+slot][c]
	} else {
		ha = h.clusterProfile[slot][c]
	}

	// Recent-activity scaling over the last quarter-day, at cluster level.
	window := s.Slots / 4
	if window < 1 {
		window = 1
	}
	var obs, exp float64
	d, sl := day, slot
	for i := 0; i < window; i++ {
		sl--
		if sl < 0 {
			sl += s.Slots
			d--
		}
		if d < 0 {
			break
		}
		obs += h.clusterCounts[d*s.Slots+sl][c]
		exp += h.clusterProfile[sl][c]
	}
	recent = h.clusterProfile[slot][c]
	if exp > 0 {
		recent *= obs / exp
	}

	wbin := weatherBin(s.Weather(clampDay(day, s.Days), slot))
	if h.weatherCount[wbin][slot] > 0 {
		weather = h.weatherMean[wbin][slot][c]
	} else {
		weather = h.clusterProfile[slot][c]
	}
	return ha, recent, weather
}

// fitWeights regresses actual cluster counts on the three estimators over
// the training tail (the most recent quarter of the training window), so
// the combination adapts to how informative each similarity is for this
// city.
func (h *HPMSI) fitWeights() {
	s := h.s
	start := h.trainDays * 3 / 4
	if start < 1 {
		start = 1
	}
	var xtx [4][4]float64
	var xty [4]float64
	for d := start; d < h.trainDays; d++ {
		for slot := 0; slot < s.Slots; slot++ {
			for c := 0; c < h.nClusters; c++ {
				ha, rec, wx := h.estimators(d, slot, c)
				actual := h.clusterCounts[d*s.Slots+slot][c]
				row := [4]float64{1, ha, rec, wx}
				for i := 0; i < 4; i++ {
					for j := 0; j < 4; j++ {
						xtx[i][j] += row[i] * row[j]
					}
					xty[i] += row[i] * actual
				}
			}
		}
	}
	a := make([][]float64, 4)
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		a[i] = append([]float64(nil), xtx[i][:]...)
		a[i][i] += 1e-6
		b[i] = xty[i]
	}
	coef, ok := solveCopy(a, b)
	if !ok {
		h.weights = [4]float64{0, 0.34, 0.33, 0.33} // fallback: equal blend
		return
	}
	copy(h.weights[:], coef)
}

// Predict implements Predictor.
func (h *HPMSI) Predict(day, slot, area int) float64 {
	c := h.assign[area]
	ha, rec, wx := h.estimators(day, slot, c)
	clusterPred := h.weights[0] + h.weights[1]*ha + h.weights[2]*rec + h.weights[3]*wx
	if clusterPred < 0 {
		clusterPred = 0
	}
	return clusterPred * h.shares[slot*h.s.Areas+area]
}

// weatherBin discretises weather intensity into weatherBins levels.
func weatherBin(w float64) int {
	b := int(w * weatherBins)
	if b < 0 {
		return 0
	}
	if b >= weatherBins {
		return weatherBins - 1
	}
	return b
}

// kmeans clusters rows into k groups with Lloyd's algorithm and
// deterministic seeding (k-means++ style: farthest-point heuristic).
func kmeans(rows [][]float64, k, iters int, seed uint64) []int {
	n := len(rows)
	assign := make([]int, n)
	if n == 0 || k <= 1 {
		return assign
	}
	if k > n {
		k = n
	}
	rng := newSmallRNG(seed)

	centers := make([][]float64, k)
	first := int(rng.next() % uint64(n))
	centers[0] = append([]float64(nil), rows[first]...)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(rows[i], centers[0])
	}
	for c := 1; c < k; c++ {
		// Farthest point from current centers.
		best, bestD := 0, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		centers[c] = append([]float64(nil), rows[best]...)
		for i := range minDist {
			if d := sqDist(rows[i], centers[c]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	counts := make([]int, k)
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, row := range rows {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sqDist(row, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
			counts[c] = 0
		}
		for i, row := range rows {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
