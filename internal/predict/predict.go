// Package predict implements the offline spatiotemporal prediction
// component of the paper's two-step framework (Section 3.1.1) and the seven
// representative prediction methods compared in Section 6.3 / Table 5:
//
//	HA      historical average (same slot, area, day-of-week)
//	ARIMA   auto-regressive integrated moving average per area
//	GBRT    gradient-boosted regression trees
//	PAQ     predictive aggregation queries over the 6 latest hours
//	LR      linear regression over the 15 most recent corresponding periods
//	NN      feed-forward neural network with weather/calendar features
//	HP-MSI  hierarchical prediction with multi-similarity inference
//
// plus the two evaluation metrics the paper reports, ER (error rate) and
// RMSLE (root mean squared logarithmic error).
//
// All predictors consume a Series — a per-(day, slot, area) count history
// with weather and day-of-week covariates — and forecast counts for test
// days. Forecasting (day, slot, area) may use everything observed strictly
// before slot `slot` of day `day` (the platform predicts the next slot from
// live and historical data) but never the target itself.
package predict

import (
	"fmt"
	"math"
)

// Series is a historical count tensor over (day, slot-of-day, area) with
// per-slot weather and per-day day-of-week covariates.
type Series struct {
	Days  int
	Slots int // slots per day
	Areas int

	counts  []float64 // day·Slots·Areas + slot·Areas + area
	weather []float64 // day·Slots + slot
	dow     []int     // per day, 0–6
}

// NewSeries validates and assembles a Series. counts is flattened
// [day][slot][area]; weather is flattened [day][slot] and may be nil (all
// clear); dow may be nil (day mod 7).
func NewSeries(days, slots, areas int, counts []int, weather []float64, dow []int) (*Series, error) {
	if days <= 0 || slots <= 0 || areas <= 0 {
		return nil, fmt.Errorf("predict: non-positive dimensions %d×%d×%d", days, slots, areas)
	}
	if len(counts) != days*slots*areas {
		return nil, fmt.Errorf("predict: counts length %d, want %d", len(counts), days*slots*areas)
	}
	if weather != nil && len(weather) != days*slots {
		return nil, fmt.Errorf("predict: weather length %d, want %d", len(weather), days*slots)
	}
	if dow != nil && len(dow) != days {
		return nil, fmt.Errorf("predict: dow length %d, want %d", len(dow), days)
	}
	s := &Series{Days: days, Slots: slots, Areas: areas}
	s.counts = make([]float64, len(counts))
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("predict: negative count at %d", i)
		}
		s.counts[i] = float64(c)
	}
	if weather == nil {
		s.weather = make([]float64, days*slots)
	} else {
		s.weather = append([]float64(nil), weather...)
	}
	if dow == nil {
		s.dow = make([]int, days)
		for d := range s.dow {
			s.dow[d] = d % 7
		}
	} else {
		s.dow = append([]int(nil), dow...)
	}
	return s, nil
}

// At returns the count at (day, slot, area).
func (s *Series) At(day, slot, area int) float64 {
	return s.counts[(day*s.Slots+slot)*s.Areas+area]
}

// Weather returns the weather intensity at (day, slot).
func (s *Series) Weather(day, slot int) float64 { return s.weather[day*s.Slots+slot] }

// DayOfWeek returns the day-of-week (0–6) of day.
func (s *Series) DayOfWeek(day int) int { return s.dow[day] }

// SlotTotal returns the count summed over areas at (day, slot).
func (s *Series) SlotTotal(day, slot int) float64 {
	base := (day*s.Slots + slot) * s.Areas
	t := 0.0
	for a := 0; a < s.Areas; a++ {
		t += s.counts[base+a]
	}
	return t
}

// Predictor is one of the Section 6.3 prediction methods.
type Predictor interface {
	// Name returns the paper's label for the method.
	Name() string
	// Fit trains on days [0, trainDays) of s and retains what it needs.
	Fit(s *Series, trainDays int) error
	// Predict forecasts the count at (day, slot, area). Implementations
	// may consult observed history before (day, slot) but not the target.
	Predict(day, slot, area int) float64
}

// PredictDay runs p over every (slot, area) of one day and returns the
// flattened forecasts, clamped to be non-negative.
func PredictDay(p Predictor, s *Series, day int) []float64 {
	out := make([]float64, s.Slots*s.Areas)
	for slot := 0; slot < s.Slots; slot++ {
		for a := 0; a < s.Areas; a++ {
			v := p.Predict(day, slot, a)
			if v < 0 || math.IsNaN(v) {
				v = 0
			}
			out[slot*s.Areas+a] = v
		}
	}
	return out
}

// ToCounts rounds forecasts to integer counts for guide construction.
func ToCounts(pred []float64) []int {
	out := make([]int, len(pred))
	for i, v := range pred {
		if v > 0 {
			out[i] = int(v + 0.5)
		}
	}
	return out
}

// ActualDay extracts the realized counts of one day, flattened like
// PredictDay's output.
func ActualDay(s *Series, day int) []float64 {
	out := make([]float64, s.Slots*s.Areas)
	for slot := 0; slot < s.Slots; slot++ {
		for a := 0; a < s.Areas; a++ {
			out[slot*s.Areas+a] = s.At(day, slot, a)
		}
	}
	return out
}

// ErrorRate is the paper's ER metric:
//
//	ER = (1/t) Σ_i [ Σ_j |a_ij − â_ij| / Σ_j a_ij ]
//
// over t slots and g areas. Slots whose actual total is zero are skipped
// (the ratio is undefined there); the average is over the remaining slots.
func ErrorRate(actual, predicted []float64, slots, areas int) float64 {
	if len(actual) != slots*areas || len(predicted) != slots*areas {
		panic("predict: metric length mismatch")
	}
	sum := 0.0
	used := 0
	for i := 0; i < slots; i++ {
		var num, den float64
		for j := 0; j < areas; j++ {
			a := actual[i*areas+j]
			p := predicted[i*areas+j]
			num += math.Abs(a - p)
			den += a
		}
		if den > 0 {
			sum += num / den
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return sum / float64(used)
}

// RMSLE is the paper's root mean squared logarithmic error:
//
//	RMSLE = (1/t) Σ_i sqrt( (1/g) Σ_j (log(a_ij+1) − log(â_ij+1))² )
func RMSLE(actual, predicted []float64, slots, areas int) float64 {
	if len(actual) != slots*areas || len(predicted) != slots*areas {
		panic("predict: metric length mismatch")
	}
	sum := 0.0
	for i := 0; i < slots; i++ {
		var sq float64
		for j := 0; j < areas; j++ {
			d := math.Log(actual[i*areas+j]+1) - math.Log(math.Max(predicted[i*areas+j], 0)+1)
			sq += d * d
		}
		sum += math.Sqrt(sq / float64(areas))
	}
	return sum / float64(slots)
}

// clampDay limits a day index into the valid range.
func clampDay(d, days int) int {
	if d < 0 {
		return 0
	}
	if d >= days {
		return days - 1
	}
	return d
}
