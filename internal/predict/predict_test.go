package predict

import (
	"math"
	"testing"

	"ftoa/internal/mathx"
)

// syntheticSeries builds a history with day-of-week structure, a rush-hour
// profile, an area gradient, weather effects and noise — rich enough that
// the learned predictors have signal to find.
func syntheticSeries(t *testing.T, days, slots, areas int, noise float64, seed uint64) *Series {
	t.Helper()
	rng := mathx.NewRNG(seed)
	counts := make([]int, days*slots*areas)
	weather := make([]float64, days*slots)
	for d := 0; d < days; d++ {
		dow := d % 7
		dowF := 1.0
		if dow >= 5 {
			dowF = 0.7
		}
		storm := rng.Float64() * rng.Float64()
		for s := 0; s < slots; s++ {
			hour := float64(s) / float64(slots) * 24
			rush := 1 + 2*math.Exp(-(hour-8)*(hour-8)/8) + 1.5*math.Exp(-(hour-18)*(hour-18)/8)
			weather[d*slots+s] = storm
			for a := 0; a < areas; a++ {
				base := 4 + 6*float64(a%5)/5
				lambda := base * rush * dowF * (1 + 0.5*storm) * math.Exp(rng.NormalMS(0, noise))
				counts[(d*slots+s)*areas+a] = rng.Poisson(lambda)
			}
		}
	}
	s, err := NewSeries(days, slots, areas, counts, weather, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0, 4, 4, nil, nil, nil); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := NewSeries(2, 2, 2, make([]int, 7), nil, nil); err == nil {
		t.Error("bad counts length accepted")
	}
	if _, err := NewSeries(2, 2, 2, make([]int, 8), make([]float64, 3), nil); err == nil {
		t.Error("bad weather length accepted")
	}
	if _, err := NewSeries(2, 2, 2, make([]int, 8), nil, []int{1}); err == nil {
		t.Error("bad dow length accepted")
	}
	bad := make([]int, 8)
	bad[3] = -2
	if _, err := NewSeries(2, 2, 2, bad, nil, nil); err == nil {
		t.Error("negative count accepted")
	}
	s, err := NewSeries(2, 2, 2, []int{1, 2, 3, 4, 5, 6, 7, 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 0, 1) != 6 {
		t.Errorf("At = %v, want 6", s.At(1, 0, 1))
	}
	if s.SlotTotal(0, 1) != 7 {
		t.Errorf("SlotTotal = %v, want 7", s.SlotTotal(0, 1))
	}
	if s.DayOfWeek(1) != 1 {
		t.Errorf("default dow = %d", s.DayOfWeek(1))
	}
}

func TestMetrics(t *testing.T) {
	actual := []float64{10, 0, 5, 5}   // 2 slots × 2 areas
	predicted := []float64{8, 2, 5, 5} // slot0 off by 4 of 10, slot1 exact
	er := ErrorRate(actual, predicted, 2, 2)
	if math.Abs(er-0.2) > 1e-9 { // (4/10 + 0/10)/2
		t.Errorf("ER = %v, want 0.2", er)
	}
	rmsle := RMSLE(actual, actual, 2, 2)
	if rmsle != 0 {
		t.Errorf("RMSLE of perfect prediction = %v", rmsle)
	}
	if RMSLE(actual, predicted, 2, 2) <= 0 {
		t.Error("RMSLE of imperfect prediction should be positive")
	}
	// Zero-total slots are skipped, not divided by.
	er = ErrorRate([]float64{0, 0, 3, 3}, []float64{1, 1, 3, 3}, 2, 2)
	if er != 0 {
		t.Errorf("ER with zero-total slot = %v, want 0 (slot skipped)", er)
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ErrorRate([]float64{1}, []float64{1, 2}, 1, 2)
}

// allPredictors instantiates the seven Table 5 methods (with test-sized
// hyperparameters for the heavy ones).
func allPredictors() []Predictor {
	g := NewGBRT()
	g.Rounds = 15
	g.MaxSamples = 5000
	nn := NewNeuralNet()
	nn.Epochs = 12
	nn.MaxSamples = 8000
	return []Predictor{NewHA(), NewARIMA(), g, NewPAQ(), NewLR(), nn, NewHPMSI()}
}

func TestAllPredictorsFitAndForecast(t *testing.T) {
	s := syntheticSeries(t, 21, 24, 12, 0.15, 42)
	trainDays := 18
	for _, p := range allPredictors() {
		if err := p.Fit(s, trainDays); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, day := range []int{18, 19, 20} {
			pred := PredictDay(p, s, day)
			for i, v := range pred {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: bad forecast %v at %d", p.Name(), v, i)
				}
			}
			actual := ActualDay(s, day)
			er := ErrorRate(actual, pred, s.Slots, s.Areas)
			if er > 1.5 {
				t.Errorf("%s day %d: ER %.3f implausibly bad", p.Name(), day, er)
			}
		}
	}
}

// TestPredictorsBeatConstantBaseline: every method must beat predicting a
// global constant, otherwise it is not using the structure at all.
func TestPredictorsBeatConstantBaseline(t *testing.T) {
	s := syntheticSeries(t, 21, 24, 12, 0.1, 99)
	trainDays := 18
	day := 19

	// Constant baseline: global training mean per cell.
	total := 0.0
	for d := 0; d < trainDays; d++ {
		for slot := 0; slot < s.Slots; slot++ {
			total += s.SlotTotal(d, slot)
		}
	}
	constant := total / float64(trainDays*s.Slots*s.Areas)
	flat := make([]float64, s.Slots*s.Areas)
	for i := range flat {
		flat[i] = constant
	}
	actual := ActualDay(s, day)
	flatER := ErrorRate(actual, flat, s.Slots, s.Areas)

	for _, p := range allPredictors() {
		if err := p.Fit(s, trainDays); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		pred := PredictDay(p, s, day)
		er := ErrorRate(actual, pred, s.Slots, s.Areas)
		if er >= flatER {
			t.Errorf("%s: ER %.3f not better than constant baseline %.3f", p.Name(), er, flatER)
		}
	}
}

// TestHPMSIBeatsHA: the hierarchical method must improve on plain HA on a
// noisy series — the core claim behind the paper's Table 5 choice.
func TestHPMSIBeatsHA(t *testing.T) {
	s := syntheticSeries(t, 28, 24, 16, 0.35, 7)
	trainDays := 24
	ha := NewHA()
	if err := ha.Fit(s, trainDays); err != nil {
		t.Fatal(err)
	}
	hp := NewHPMSI()
	if err := hp.Fit(s, trainDays); err != nil {
		t.Fatal(err)
	}
	var haER, hpER float64
	for day := trainDays; day < s.Days; day++ {
		actual := ActualDay(s, day)
		haER += ErrorRate(actual, PredictDay(ha, s, day), s.Slots, s.Areas)
		hpER += ErrorRate(actual, PredictDay(hp, s, day), s.Slots, s.Areas)
	}
	if hpER >= haER {
		t.Errorf("HP-MSI ER %.4f not better than HA %.4f", hpER, haER)
	}
}

func TestToCounts(t *testing.T) {
	got := ToCounts([]float64{0.4, 0.6, 2.5, -1, 0})
	want := []int{0, 1, 3, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ToCounts = %v, want %v", got, want)
		}
	}
}

func TestPredictorsFitValidation(t *testing.T) {
	s := syntheticSeries(t, 6, 8, 4, 0.1, 3)
	for _, p := range allPredictors() {
		if err := p.Fit(s, 0); err == nil {
			t.Errorf("%s accepted trainDays=0", p.Name())
		}
		if err := p.Fit(s, 100); err == nil {
			t.Errorf("%s accepted trainDays>days", p.Name())
		}
	}
}

func TestLRShrinksLagsOnShortHistory(t *testing.T) {
	s := syntheticSeries(t, 6, 8, 4, 0.1, 5)
	lr := NewLR()
	if err := lr.Fit(s, 5); err != nil {
		t.Fatalf("LR should shrink its lag window: %v", err)
	}
	v := lr.Predict(5, 3, 2)
	if v < 0 || math.IsNaN(v) {
		t.Errorf("LR forecast %v", v)
	}
}

func TestCARTFitsSteps(t *testing.T) {
	// A step function of one feature must be fit exactly by a depth-1 tree.
	var feats [][]float64
	var targets []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		feats = append(feats, []float64{x, 0.5})
		if x < 0.5 {
			targets = append(targets, 1)
		} else {
			targets = append(targets, 5)
		}
	}
	tree := buildCART(feats, targets, 1, 5)
	if tree == nil {
		t.Fatal("nil tree")
	}
	if got := tree.eval([]float64{0.2, 0.5}); math.Abs(got-1) > 1e-9 {
		t.Errorf("left leaf = %v, want 1", got)
	}
	if got := tree.eval([]float64{0.9, 0.5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("right leaf = %v, want 5", got)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rows := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	assign := kmeans(rows, 2, 20, 1)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("first cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Errorf("second cluster split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Errorf("clusters merged: %v", assign)
	}
}

func TestGBRTLearnsNonlinearSignal(t *testing.T) {
	// GBRT must capture the rush-hour shape better than LR on a strongly
	// non-linear series with weather interaction.
	s := syntheticSeries(t, 24, 24, 8, 0.1, 11)
	trainDays := 20
	lr := NewLR()
	if err := lr.Fit(s, trainDays); err != nil {
		t.Fatal(err)
	}
	g := NewGBRT()
	g.MaxSamples = 8000
	if err := g.Fit(s, trainDays); err != nil {
		t.Fatal(err)
	}
	var lrER, gER float64
	for day := trainDays; day < s.Days; day++ {
		actual := ActualDay(s, day)
		lrER += RMSLE(actual, PredictDay(lr, s, day), s.Slots, s.Areas)
		gER += RMSLE(actual, PredictDay(g, s, day), s.Slots, s.Areas)
	}
	if gER >= lrER*1.1 {
		t.Errorf("GBRT RMSLE %.4f much worse than LR %.4f", gER, lrER)
	}
}
