package predict

import (
	"fmt"

	"ftoa/internal/mathx"
)

// HA is the historical-average baseline: the forecast for (day, slot, area)
// is the mean count over training days with the same day-of-week at the
// same slot and area; if the training window contains no day with that
// day-of-week, the mean over all training days is used.
type HA struct {
	s         *Series
	trainDays int
}

// NewHA creates the historical-average predictor.
func NewHA() *HA { return &HA{} }

// Name implements Predictor.
func (h *HA) Name() string { return "HA" }

// Fit implements Predictor.
func (h *HA) Fit(s *Series, trainDays int) error {
	if trainDays <= 0 || trainDays > s.Days {
		return fmt.Errorf("predict: HA trainDays %d out of range", trainDays)
	}
	h.s, h.trainDays = s, trainDays
	return nil
}

// Predict implements Predictor.
func (h *HA) Predict(day, slot, area int) float64 {
	dow := h.s.DayOfWeek(clampDay(day, h.s.Days))
	sum, n := 0.0, 0
	for d := 0; d < h.trainDays; d++ {
		if h.s.DayOfWeek(d) == dow {
			sum += h.s.At(d, slot, area)
			n++
		}
	}
	if n == 0 {
		for d := 0; d < h.trainDays; d++ {
			sum += h.s.At(d, slot, area)
			n++
		}
	}
	return sum / float64(n)
}

// LR is the linear-regression baseline: one global linear model over the
// counts of the same slot and area on the 15 most recent days, fit by
// ordinary least squares on the training window.
type LR struct {
	s         *Series
	trainDays int
	lags      int
	coef      []float64 // intercept followed by lag coefficients
}

// NewLR creates the linear-regression predictor with the paper's 15 lags.
func NewLR() *LR { return &LR{lags: 15} }

// Name implements Predictor.
func (l *LR) Name() string { return "LR" }

// Fit implements Predictor.
func (l *LR) Fit(s *Series, trainDays int) error {
	if trainDays < 2 || trainDays > s.Days {
		return fmt.Errorf("predict: LR trainDays %d out of range", trainDays)
	}
	if trainDays <= l.lags {
		// Not enough history for the design matrix: degrade gracefully by
		// shrinking the lag window.
		l.lags = trainDays - 1
	}
	l.s, l.trainDays = s, trainDays
	k := l.lags + 1
	// Accumulate the normal equations XᵀX β = Xᵀy over training samples.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	x := make([]float64, k)
	// Stride areas for very large grids to bound fitting cost; the model
	// is global so a sample subset is statistically fine.
	strideA := 1
	if samples := (trainDays - l.lags) * s.Slots * s.Areas; samples > 400000 {
		strideA = samples / 400000
		if strideA < 1 {
			strideA = 1
		}
	}
	for d := l.lags; d < trainDays; d++ {
		for slot := 0; slot < s.Slots; slot++ {
			for a := 0; a < s.Areas; a += strideA {
				x[0] = 1
				for lag := 1; lag <= l.lags; lag++ {
					x[lag] = s.At(d-lag, slot, a)
				}
				y := s.At(d, slot, a)
				for i := 0; i < k; i++ {
					for j := i; j < k; j++ {
						xtx[i][j] += x[i] * x[j]
					}
					xty[i] += x[i] * y
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-6 // ridge jitter for stability
	}
	coef, ok := solveCopy(xtx, xty)
	if !ok {
		return fmt.Errorf("predict: LR normal equations singular")
	}
	l.coef = coef
	return nil
}

// Predict implements Predictor.
func (l *LR) Predict(day, slot, area int) float64 {
	v := l.coef[0]
	for lag := 1; lag <= l.lags; lag++ {
		d := clampDay(day-lag, l.s.Days)
		v += l.coef[lag] * l.s.At(d, slot, area)
	}
	return v
}

// PAQ approximates predictive aggregation queries over moving-object
// history: the forecast combines the historical per-slot profile of the
// area with the activity level observed in the 6 latest hours, so a busier
// or quieter day than usual scales the whole profile (the effect
// trajectory-based aggregate prediction achieves).
type PAQ struct {
	s           *Series
	trainDays   int
	windowSlots int
	profile     []float64 // mean count per (slot, area) over training days
}

// NewPAQ creates the predictor with a 6-hour look-back window.
func NewPAQ() *PAQ { return &PAQ{} }

// Name implements Predictor.
func (p *PAQ) Name() string { return "PAQ" }

// Fit implements Predictor.
func (p *PAQ) Fit(s *Series, trainDays int) error {
	if trainDays <= 0 || trainDays > s.Days {
		return fmt.Errorf("predict: PAQ trainDays %d out of range", trainDays)
	}
	p.s, p.trainDays = s, trainDays
	p.windowSlots = s.Slots / 4 // 6 h of a 24 h day
	if p.windowSlots < 1 {
		p.windowSlots = 1
	}
	p.profile = make([]float64, s.Slots*s.Areas)
	for slot := 0; slot < s.Slots; slot++ {
		for a := 0; a < s.Areas; a++ {
			sum := 0.0
			for d := 0; d < trainDays; d++ {
				sum += s.At(d, slot, a)
			}
			p.profile[slot*s.Areas+a] = sum / float64(trainDays)
		}
	}
	return nil
}

// Predict implements Predictor.
func (p *PAQ) Predict(day, slot, area int) float64 {
	// Observed and expected activity over the look-back window, summed
	// over all areas (a per-area window is too sparse to estimate level).
	var obs, exp float64
	d, sl := day, slot
	for k := 0; k < p.windowSlots; k++ {
		sl--
		if sl < 0 {
			sl += p.s.Slots
			d--
		}
		if d < 0 {
			break
		}
		obs += p.s.SlotTotal(d, sl)
		for a := 0; a < p.s.Areas; a++ {
			exp += p.profile[sl*p.s.Areas+a]
		}
	}
	level := 1.0
	if exp > 0 && obs > 0 {
		level = obs / exp
	}
	return p.profile[slot*p.s.Areas+area] * level
}

// ARIMA fits a per-area seasonal ARIMA model: the series is differenced at
// the daily period (lag = Slots) to remove the rush-hour cycle, then an
// ARMA(2,1) is estimated on the seasonal differences with the
// Hannan–Rissanen two-stage procedure. Forecasts are one-step-ahead using
// observed history: x̂_t = x_{t−s} + ARMA forecast of the difference.
type ARIMA struct {
	s         *Series
	trainDays int
	// Per-area coefficients: intercept, ar1, ar2, ma1 over the seasonally
	// differenced series.
	coef [][4]float64
	// capVal caps forecasts per area at 1.5× the largest training count,
	// guarding against unstable coefficient estimates on sparse series.
	capVal []float64
}

// NewARIMA creates the per-area seasonal ARIMA predictor.
func NewARIMA() *ARIMA { return &ARIMA{} }

// Name implements Predictor.
func (a *ARIMA) Name() string { return "ARIMA" }

// value returns the count at flattened (day, slot) index t for one area.
func (a *ARIMA) value(area, t int) float64 {
	day, slot := t/a.s.Slots, t%a.s.Slots
	return a.s.At(day, slot, area)
}

// sdiff returns the seasonal difference x_t − x_{t−Slots}; t must be at
// least Slots.
func (a *ARIMA) sdiff(area, t int) float64 {
	return a.value(area, t) - a.value(area, t-a.s.Slots)
}

// Fit implements Predictor.
func (a *ARIMA) Fit(s *Series, trainDays int) error {
	if trainDays < 2 || trainDays > s.Days {
		return fmt.Errorf("predict: ARIMA trainDays %d out of range", trainDays)
	}
	a.s, a.trainDays = s, trainDays
	n := trainDays * s.Slots
	a.coef = make([][4]float64, s.Areas)
	a.capVal = make([]float64, s.Areas)
	diff := make([]float64, n-s.Slots)
	for area := 0; area < s.Areas; area++ {
		maxSeen := 0.0
		for t := 0; t < n; t++ {
			if v := a.value(area, t); v > maxSeen {
				maxSeen = v
			}
		}
		a.capVal[area] = 1.5*maxSeen + 1
		for t := s.Slots; t < n; t++ {
			diff[t-s.Slots] = a.sdiff(area, t)
		}
		c := fitARMA21(diff)
		// Clamp toward stationarity: sparse series can produce explosive
		// estimates whose one-step forecasts are still wild.
		for i := 1; i < 4; i++ {
			c[i] = clampF(c[i], -0.98, 0.98)
		}
		a.coef[area] = c
	}
	return nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fitARMA21 estimates (intercept, ar1, ar2, ma1) on a differenced series
// via Hannan–Rissanen.
func fitARMA21(x []float64) [4]float64 {
	n := len(x)
	if n < 12 {
		return [4]float64{}
	}
	// Stage 1: AR(4) by least squares to estimate innovations.
	const p0 = 4
	arCoef := fitAR(x, p0)
	resid := make([]float64, n)
	for t := p0; t < n; t++ {
		pred := arCoef[0]
		for k := 1; k <= p0; k++ {
			pred += arCoef[k] * x[t-k]
		}
		resid[t] = x[t] - pred
	}
	// Stage 2: regress x_t on x_{t-1}, x_{t-2}, resid_{t-1}.
	xtx := make([][]float64, 4)
	for i := range xtx {
		xtx[i] = make([]float64, 4)
	}
	xty := make([]float64, 4)
	var f [4]float64
	for t := p0 + 1; t < n; t++ {
		f = [4]float64{1, x[t-1], x[t-2], resid[t-1]}
		for i := 0; i < 4; i++ {
			for j := i; j < 4; j++ {
				xtx[i][j] += f[i] * f[j]
			}
			xty[i] += f[i] * x[t]
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-6
	}
	coef, ok := solveCopy(xtx, xty)
	if !ok {
		return [4]float64{}
	}
	return [4]float64{coef[0], coef[1], coef[2], coef[3]}
}

// fitAR fits an AR(p) model with intercept by least squares.
func fitAR(x []float64, p int) []float64 {
	k := p + 1
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	row := make([]float64, k)
	for t := p; t < len(x); t++ {
		row[0] = 1
		for j := 1; j <= p; j++ {
			row[j] = x[t-j]
		}
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * x[t]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-6
	}
	coef, ok := solveCopy(xtx, xty)
	if !ok {
		return make([]float64, k)
	}
	return coef
}

// Predict implements Predictor: a one-step forecast of the seasonal
// difference added to the same-slot value of the previous day.
func (a *ARIMA) Predict(day, slot, area int) float64 {
	s := a.s.Slots
	t := day*a.s.Slots + slot // target index in the flattened sequence
	if t < s+3 {
		// Not enough history for the seasonal model: persist last value.
		if t == 0 {
			return 0
		}
		return a.value(area, t-1)
	}
	c := a.coef[area]
	y1 := a.sdiff(area, t-1)
	y2 := a.sdiff(area, t-2)
	// One lagged innovation estimate: previous one-step error.
	prevPred := c[0] + c[1]*y2
	if t >= s+4 {
		y3 := a.sdiff(area, t-3)
		prevPred = c[0] + c[1]*y2 + c[2]*y3
	}
	eps := y1 - prevPred
	yHat := c[0] + c[1]*y1 + c[2]*y2 + c[3]*eps
	v := a.value(area, t-s) + yHat
	if v < 0 {
		return 0
	}
	if v > a.capVal[area] {
		return a.capVal[area]
	}
	return v
}

// solveCopy solves ax=b without destroying the caller's slices.
func solveCopy(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	ac := make([][]float64, n)
	for i := range ac {
		ac[i] = append([]float64(nil), a[i]...)
	}
	bc := append([]float64(nil), b...)
	return mathx.SolveLinear(ac, bc)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
