// Shared event broadcast: one merged, Seq-ordered, bounded ring fed
// once from the router's emission path, with per-subscriber cursors.
//
// EventsLimit re-merges the per-shard logs on every call: each poll
// takes every shard lock, binary-searches each log, gathers up to
// shards×limit events and re-sorts them — per subscriber. The global
// sequence counter already totally orders the stream at emission, so
// the broadcast captures that order exactly once: collectLocked, right
// after sequencing a batch under the emitting shard's lock, publishes
// it into a slot-indexed ring (slot of seq s is s % capacity — the seq
// space is dense, every assigned seq produces exactly one event).
// Subscriber reads of retained events are a lock-light slice copy under
// one mutex; fan-out costs O(events), not O(events × subscribers ×
// shards).
//
// The ring is an accelerator, not the source of truth. A subscriber
// whose cursor falls below the ring's tail transparently pages through
// Router.EventsLimit — the existing merge-on-read path — and rejoins
// the ring once caught up, so retention semantics (ErrEvicted, the
// restart-at-OldestCursor contract) and the dense cursor space across
// Rebalance archive swaps are preserved bit-identically: both paths
// serve the same events in the same order.
//
// Cross-shard publishes race, so batches can arrive out of global Seq
// order. The ring tracks two watermarks: lo, the lowest seq it still
// retains, and frontier, one past the highest CONTIGUOUSLY published
// seq. Readers only see [lo, frontier) — a seq above a still-unpublished
// hole stays invisible until the hole fills, which keeps ring reads
// gap-free without waiting on any shard lock. When an insert overwrites
// (seq ≥ lo+capacity) lo advances and frontier is dragged up to it if a
// hole was evicted underneath; a straggler batch below lo is dropped —
// the fallback path serves it. With zero subscribers publish returns
// after one atomic load, and (re)subscribing from idle re-anchors the
// ring at the current sequence counter, so an unobserved router does no
// broadcast work at all.
package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBroadcastCapacity is the ring size used when Config.Broadcast
// is zero: at 8192 events (~600 KiB) a subscriber may lag the live head
// by a full wire page several times over before touching the fallback.
const DefaultBroadcastCapacity = 8192

// broadcast is the router-wide shared ring. All mutable state is
// guarded by mu except the mirrors noted below, which are written under
// mu but atomically readable (Wait's fast path, publish's empty check).
type broadcast struct {
	mu  sync.Mutex
	buf []Event
	// tag[i] is 1 + the seq held in buf[i], 0 when the slot was never
	// written. Slots are verified by exact seq, so re-anchoring after an
	// idle spell never needs to clear stale entries: a stale tag can
	// only match its own (dead) seq, never a live one at the same slot.
	tag []uint64
	// lo is the lowest seq the ring retains; frontier is one past the
	// highest contiguously published seq. Reads serve [cursor, frontier)
	// for cursors ≥ lo. Atomic mirrors of the mu-guarded values so
	// Wait can poll availability without taking the lock.
	lo       atomic.Uint64
	frontier atomic.Uint64
	subs     map[*EventSub]struct{}
	// nsubs mirrors len(subs); publish skips all work (no lock) while it
	// is zero. Ordering with re-anchoring: Subscribe stores nsubs and
	// THEN reads the router's seq counter as the new anchor, both under
	// mu; a publisher that observed nsubs==0 must have drawn every seq
	// of its batch before that store, hence below the anchor — skipped
	// seqs are always below lo and belong to the fallback path.
	nsubs atomic.Int32

	published atomic.Uint64 // events inserted into the ring
	dropped   atomic.Uint64 // straggler events below lo at publish time
	fallbacks atomic.Uint64 // subscriber reads served by merge-on-read
	wakeups   atomic.Uint64 // notifications delivered to armed waiters
}

func newBroadcast(capacity int) *broadcast {
	if capacity <= 0 {
		capacity = DefaultBroadcastCapacity
	}
	return &broadcast{
		buf:  make([]Event, capacity),
		tag:  make([]uint64, capacity),
		subs: make(map[*EventSub]struct{}),
	}
}

// publish inserts one emission batch (already sequenced, per-shard Seq
// ascending) into the ring and wakes armed subscribers. Called from
// collectLocked while the emitting shard's lock (and topoMu.RLock) is
// held; the lock order {topoMu, shard} → broadcast.mu is safe because
// readers never hold broadcast.mu while entering the router.
func (b *broadcast) publish(evs []Event) {
	if b.nsubs.Load() == 0 {
		return
	}
	b.mu.Lock()
	if len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	capacity := uint64(len(b.buf))
	lo, frontier := b.lo.Load(), b.frontier.Load()
	inserted := 0
	for _, ev := range evs {
		s := ev.Seq
		if s < lo {
			// A straggler below the retained window (published after the
			// ring re-anchored or wrapped past it): the fallback serves it.
			b.dropped.Add(1)
			continue
		}
		if s >= lo+capacity {
			// Overwrite: drop the tail to keep exactly capacity slots
			// ending at s. If the advance evicts a still-unfilled hole,
			// drag frontier up — those seqs can no longer be served from
			// the ring, and leaving frontier below lo would wedge it.
			lo = s - capacity + 1
			if frontier < lo {
				frontier = lo
			}
		}
		slot := s % capacity
		b.buf[slot] = ev
		b.tag[slot] = s + 1
		inserted++
	}
	// Advance frontier across contiguously filled slots. Out-of-order
	// shard batches leave holes; frontier waits on them so ring reads
	// stay gap-free.
	for frontier < lo+capacity && b.tag[frontier%capacity] == frontier+1 {
		frontier++
	}
	b.lo.Store(lo)
	b.frontier.Store(frontier)
	b.published.Add(uint64(inserted))
	for sub := range b.subs {
		if sub.armed.CompareAndSwap(true, false) {
			select {
			case sub.notify <- struct{}{}:
				b.wakeups.Add(1)
			default:
			}
		}
	}
	b.mu.Unlock()
}

// BroadcastStats is a point-in-time snapshot of the shared ring.
type BroadcastStats struct {
	Subscribers int    // live subscriptions
	Capacity    int    // ring slots
	Depth       uint64 // retained contiguous events (frontier - lo)
	Published   uint64 // events inserted since construction
	Dropped     uint64 // straggler events skipped below the ring tail
	Fallbacks   uint64 // subscriber reads that fell back to merge-on-read
	Wakeups     uint64 // notifications delivered to blocked subscribers
}

// BroadcastStats snapshots the shared event ring.
func (r *Router) BroadcastStats() BroadcastStats {
	b := r.bcast
	return BroadcastStats{
		Subscribers: int(b.nsubs.Load()),
		Capacity:    len(b.buf),
		Depth:       b.frontier.Load() - b.lo.Load(),
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
		Fallbacks:   b.fallbacks.Load(),
		Wakeups:     b.wakeups.Load(),
	}
}

// EventSub is one subscriber's position in the merged event stream: a
// cursor into the shared broadcast ring plus a wakeup channel. Next and
// Wait must be called from a single consumer goroutine (the cursor is
// unsynchronized, like any Events cursor); Close may be called from
// anywhere and is idempotent. A subscription left open pins a map entry
// and makes every emission do fan-out work — always Close it.
type EventSub struct {
	r      *Router
	b      *broadcast
	cursor uint64
	notify chan struct{}
	armed  atomic.Bool
	closed atomic.Bool
}

// Subscribe opens a subscription positioned at since, with identical
// cursor semantics to Events: events with Seq ≥ since are delivered
// in Seq order, gap-free; a cursor below the retention boundary gets
// ErrEvicted from Next, exactly as EventsLimit would report it.
// Use Cursor() as since for "only new events".
func (r *Router) Subscribe(since uint64) *EventSub {
	b := r.bcast
	sub := &EventSub{r: r, b: b, cursor: since, notify: make(chan struct{}, 1)}
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.nsubs.Store(int32(len(b.subs)))
	if len(b.subs) == 1 {
		// First subscriber after an idle (unobserved) spell: the ring is
		// stale — publishes were skipped — so re-anchor it at the current
		// sequence counter. Every seq drawn at or above this anchor is
		// guaranteed to be published (see the nsubs ordering note); the
		// ones below it are the fallback's job, as always.
		anchor := r.seq.Load()
		b.lo.Store(anchor)
		b.frontier.Store(anchor)
	}
	b.mu.Unlock()
	return sub
}

// Close tears the subscription down. Further Next calls return no
// events; a concurrent Wait wakes up.
func (s *EventSub) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	b := s.b
	b.mu.Lock()
	delete(b.subs, s)
	b.nsubs.Store(int32(len(b.subs)))
	b.mu.Unlock()
	s.armed.Store(false)
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Cursor reports the subscription's current resume position (the next
// Seq it will deliver).
func (s *EventSub) Cursor() uint64 { return s.cursor }

// Seek repositions the cursor — the restart half of the ErrEvicted
// contract (Seek(OldestCursor()) after Next reports eviction), mirroring
// how a polling consumer restarts its since value.
func (s *EventSub) Seek(cursor uint64) { s.cursor = cursor }

// Next appends to dst up to limit events from the cursor onward (zero
// or negative limit means unlimited) and advances the cursor past them.
// When the cursor is inside the ring's retained window the read is a
// slice copy under the ring mutex — no shard locks, no sort. When it
// has fallen below the ring tail, the call transparently pages through
// Router.EventsLimit (the merge-on-read path) with identical results:
// same events, same order, same ErrEvicted behavior below the retention
// boundary (the cursor does not move on error). An empty result with a
// nil error means the subscriber is at the head — Wait for more.
func (s *EventSub) Next(limit int, dst []Event) ([]Event, uint64, error) {
	if s.closed.Load() {
		return dst, s.cursor, nil
	}
	b := s.b
	// A cursor below the retention boundary must observe ErrEvicted even
	// when the ring happens to still hold those events: the eviction
	// contract is EventsLimit's, bit-identical, so route it through the
	// fallback (which reports it).
	evicted := s.r.evicted.Load()
	b.mu.Lock()
	lo, frontier := b.lo.Load(), b.frontier.Load()
	if s.cursor >= lo && s.cursor >= evicted {
		end := frontier
		if limit > 0 && s.cursor+uint64(limit) < end {
			end = s.cursor + uint64(limit)
		}
		if end > s.cursor {
			capacity := uint64(len(b.buf))
			if n := int(end - s.cursor); cap(dst)-len(dst) < n {
				grown := make([]Event, len(dst), len(dst)+n)
				copy(grown, dst)
				dst = grown
			}
			for c := s.cursor; c < end; c++ {
				dst = append(dst, b.buf[c%capacity])
			}
			s.cursor = end
		}
		b.mu.Unlock()
		return dst, s.cursor, nil
	}
	b.mu.Unlock()
	// Below the ring tail: page the backlog through the merge-on-read
	// path, then rejoin the ring on a later call once caught up.
	b.fallbacks.Add(1)
	dst, next, err := s.r.EventsLimit(s.cursor, limit, dst)
	if err != nil {
		return dst, s.cursor, err
	}
	s.cursor = next
	return dst, next, nil
}

// Wait blocks until an event at or after the cursor is (or may be)
// available, the timeout elapses (zero or negative waits indefinitely),
// stop closes (nil is allowed), or the subscription closes. It returns
// true when events may be available — callers just call Next, which
// reports the truth; a false return means the wait was cut short.
// Spurious true returns are possible and harmless.
func (s *EventSub) Wait(timeout time.Duration, stop <-chan struct{}) bool {
	if s.available() {
		return true
	}
	s.armed.Store(true)
	// Re-check after arming: a publish between the first check and the
	// Store saw armed==false and sent no wakeup — catch it here.
	if s.available() || s.closed.Load() {
		s.armed.Store(false)
		select {
		case <-s.notify:
		default:
		}
		return true
	}
	var timer *time.Timer
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutC = timer.C
		defer timer.Stop()
	}
	select {
	case <-s.notify:
		return true
	case <-timeoutC:
		s.armed.Store(false)
		return false
	case <-stop:
		s.armed.Store(false)
		return false
	}
}

// available reports whether Next would make progress: the frontier has
// passed the cursor, or the cursor has fallen below the ring tail (the
// fallback path has events — or an eviction error — for it). Keyed to
// the frontier rather than the raw sequence counter so a transient
// publish hole does not spin the waiter.
func (s *EventSub) available() bool {
	return s.b.frontier.Load() > s.cursor || s.cursor < s.b.lo.Load()
}
