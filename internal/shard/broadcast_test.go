package shard

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// consumeSub drains one subscription concurrently with producers: it
// reads pages until stop is closed AND the cursor has caught up with the
// router head, mixing ring reads and fallback pages as the race decides.
func consumeSub(t *testing.T, r *Router, sub *EventSub, page int, stop <-chan struct{}) []Event {
	t.Helper()
	var got []Event
	var buf []Event
	for {
		var err error
		buf, _, err = sub.Next(page, buf[:0])
		if err != nil {
			t.Errorf("subscriber Next: %v", err)
			return got
		}
		got = append(got, buf...)
		if len(buf) > 0 {
			continue
		}
		select {
		case <-stop:
			if sub.Cursor() >= r.Cursor() {
				return got
			}
		default:
		}
		sub.Wait(5*time.Millisecond, nil)
	}
}

// requireDense asserts evs is exactly the dense seq range [from, to).
func requireDense(t *testing.T, evs []Event, from, to uint64) {
	t.Helper()
	if uint64(len(evs)) != to-from {
		t.Fatalf("got %d events, want the dense range [%d,%d)", len(evs), from, to)
	}
	for i, ev := range evs {
		if ev.Seq != from+uint64(i) {
			t.Fatalf("event %d has seq %d, want %d (gap or duplicate)", i, ev.Seq, from+uint64(i))
		}
	}
}

func TestRouterBroadcastValidates(t *testing.T) {
	bad := testConfig(2, 2)
	bad.Broadcast = -1
	if _, err := NewRouter(bad); err == nil {
		t.Error("negative broadcast capacity accepted")
	}
}

// TestRouterBroadcastParityConcurrent: a subscriber consuming through
// the broadcast ring — deliberately undersized so reads keep falling off
// the tail into the merge-on-read fallback — observes, under concurrent
// multi-shard admissions, a stream bit-identical to a full EventsLimit
// merge from the same cursor.
func TestRouterBroadcastParityConcurrent(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.NumWorkers, wcfg.NumTasks = 300, 300
	in, err := wcfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Config{
		Matcher:      sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
		Cols:         2,
		Rows:         2,
		NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
		Broadcast:    64, // tiny ring: force frequent fallback + wraparound
	})
	if err != nil {
		t.Fatal(err)
	}

	events := in.Events()
	// Seed a backlog before subscribing so the subscription provably
	// starts below the ring anchor and exercises the fallback.
	seed := len(events) / 4
	for _, ev := range events[:seed] {
		switch ev.Kind {
		case model.WorkerArrival:
			if _, _, err := r.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
		case model.TaskArrival:
			if _, _, err := r.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
		}
	}
	sub := r.Subscribe(0)
	defer sub.Close()

	stop := make(chan struct{})
	var got []Event
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		got = consumeSub(t, r, sub, 73, stop)
	}()

	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := seed + p; i < len(events); i += producers {
				ev := events[i]
				switch ev.Kind {
				case model.WorkerArrival:
					if _, _, err := r.AddWorker(in.Workers[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				case model.TaskArrival:
					if _, _, err := r.AddTask(in.Tasks[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	r.Finish()
	close(stop)
	consumer.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want, next, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no events")
	}
	requireDense(t, got, 0, next)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subscriber stream diverges from EventsLimit merge (%d vs %d events)", len(got), len(want))
	}
	st := r.BroadcastStats()
	if st.Fallbacks == 0 {
		t.Error("undersized ring never fell back to merge-on-read")
	}
	if st.Published == 0 {
		t.Error("ring never served: no events published")
	}
}

// TestRouterBroadcastParityRebalance: the subscription's cursor space is
// continuous across a Rebalance archive swap — the subscriber's stream
// stays bit-identical to the merged read even when part of it now lives
// in the swapped-in archive.
func TestRouterBroadcastParityRebalance(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Broadcast = 32
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addPair := func(x, y, at float64) {
		t.Helper()
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(x, y), Arrive: at, Patience: 100}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(x, y+1), Release: at, Expiry: 100}); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-subscription backlog in every quadrant (fallback territory).
	for i := 0; i < 8; i++ {
		addPair(20+60*float64(i%2), 20+60*float64((i/2)%2), float64(i))
	}
	sub := r.Subscribe(0)
	defer sub.Close()

	// Split quadrant 0 mid-stream: live logs migrate into the archive.
	if _, err := r.Rebalance(mustSplit(t, r.Topology(), 0)); err != nil {
		t.Fatal(err)
	}
	// Post-swap traffic, including the split quadrant's sub-regions.
	for i := 0; i < 8; i++ {
		addPair(10+25*float64(i%2), 10+25*float64((i/2)%2), 8+float64(i))
	}
	r.Finish()

	stop := make(chan struct{})
	close(stop)
	got := consumeSub(t, r, sub, 5, stop)
	if t.Failed() {
		t.FailNow()
	}
	want, next, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireDense(t, got, 0, next)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream across rebalance diverges from merge (%d vs %d events)", len(got), len(want))
	}
}

// TestRouterBroadcastRetentionEviction: a subscriber behind the
// retention boundary gets the same ErrEvicted/restart-at-OldestCursor
// contract as a polling consumer — even though the broadcast ring still
// physically holds the evicted events — and the restarted stream matches
// the merged read bit-identically.
func TestRouterBroadcastRetentionEviction(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.Retention = 3
	cfg.Broadcast = 16
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := r.Subscribe(0) // anchored before any event: ring sees all 5
	defer sub.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: float64(i), Patience: 100}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(10, 11), Release: float64(i), Expiry: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := sub.Next(0, nil); err != ErrEvicted {
		t.Fatalf("stale subscriber error = %v, want ErrEvicted", err)
	}
	if sub.Cursor() != 0 {
		t.Fatalf("cursor moved to %d on eviction error, want 0", sub.Cursor())
	}
	sub.Seek(r.OldestCursor())
	got, next, err := sub.Next(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, wantNext, err := r.Events(r.OldestCursor(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if next != wantNext || !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted stream = %d events next %d, want %d events next %d, bit-identical",
			len(got), next, len(want), wantNext)
	}
	requireDense(t, got, r.OldestCursor(), wantNext)
}

// TestRouterBroadcastFanoutSmoke: ≥8 subscribers consuming the full
// stream concurrently with producers (the -race fan-out gate). Every
// subscriber must observe the identical gap-free merged stream.
func TestRouterBroadcastFanoutSmoke(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.NumWorkers, wcfg.NumTasks = 300, 300
	in, err := wcfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Config{
		Matcher:      sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
		Cols:         2,
		Rows:         2,
		NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
		Broadcast:    128,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nsubs = 8
	stop := make(chan struct{})
	streams := make([][]Event, nsubs)
	var consumers sync.WaitGroup
	for i := 0; i < nsubs; i++ {
		sub := r.Subscribe(0)
		defer sub.Close()
		consumers.Add(1)
		go func(i int, sub *EventSub) {
			defer consumers.Done()
			streams[i] = consumeSub(t, r, sub, 64+7*i, stop)
		}(i, sub)
	}

	events := in.Events()
	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(events); i += producers {
				ev := events[i]
				switch ev.Kind {
				case model.WorkerArrival:
					if _, _, err := r.AddWorker(in.Workers[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				case model.TaskArrival:
					if _, _, err := r.AddTask(in.Tasks[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	r.Finish()
	close(stop)
	consumers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want, next, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range streams {
		requireDense(t, got, 0, next)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("subscriber %d stream diverges from merge", i)
		}
	}
	if n := r.BroadcastStats().Subscribers; n != nsubs {
		t.Fatalf("Subscribers = %d, want %d", n, nsubs)
	}
}

// TestRouterBroadcastWaitWake: Wait is event-driven — it wakes promptly
// on publish, times out when idle, and an unobserved or quiescent router
// does zero broadcast work (no publishes, no wakeups).
func TestRouterBroadcastWaitWake(t *testing.T) {
	r, err := NewRouter(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	addPair := func(at float64) {
		t.Helper()
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: at, Patience: 100}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(10, 11), Release: at, Expiry: 100}); err != nil {
			t.Fatal(err)
		}
	}

	// Unobserved: emissions with zero subscribers never touch the ring.
	addPair(0)
	if st := r.BroadcastStats(); st.Published != 0 || st.Depth != 0 {
		t.Fatalf("unobserved router did broadcast work: %+v", st)
	}

	sub := r.Subscribe(r.Cursor())
	defer sub.Close()

	// Idle: Wait times out, no spurious wakeups.
	if sub.Wait(20*time.Millisecond, nil) {
		t.Fatal("Wait reported events on an idle stream")
	}
	// Quiescent ticks (no due deadlines) publish nothing.
	for i := 1; i <= 5; i++ {
		r.Advance(float64(i))
	}
	if st := r.BroadcastStats(); st.Published != 0 || st.Wakeups != 0 {
		t.Fatalf("quiescent ticks did broadcast work: %+v", st)
	}

	// Hot: a blocked Wait wakes on the next emission.
	woke := make(chan bool, 1)
	go func() { woke <- sub.Wait(5*time.Second, nil) }()
	time.Sleep(10 * time.Millisecond) // let it block (fast path also passes)
	addPair(6)
	select {
	case ok := <-woke:
		if !ok {
			t.Fatal("Wait returned false on publish")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on publish")
	}
	evs, _, err := sub.Next(0, nil)
	if err != nil || len(evs) != 1 || evs[0].Kind != sim.EventMatch {
		t.Fatalf("post-wake Next = %v err %v, want the one match", evs, err)
	}
	if st := r.BroadcastStats(); st.Published != 1 {
		t.Fatalf("Published = %d, want 1", st.Published)
	}

	// Close wakes a blocked waiter.
	done := make(chan bool, 1)
	go func() { done <- sub.Wait(5*time.Second, nil) }()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on Close")
	}
	if n := r.BroadcastStats().Subscribers; n != 0 {
		t.Fatalf("Subscribers = %d after Close, want 0", n)
	}
}
