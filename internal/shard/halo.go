// Halo arbitration — the machinery that lets border objects exist in
// several shard sessions at once without ever being matched twice.
//
// A border admission (see Placement) is admitted to its owner shard and
// mirrored as a *ghost* into every reachable neighbor session. All copies
// of one logical object share a single immutable mirror record carrying
// an atomic claim word; whichever session wants to commit a match (or, in
// Strict mode, report the owner copy's expiry) must win the claim first:
//
//   - every shard session runs with a sim CommitGate: a TryMatch whose
//     endpoints include mirrored objects only commits after
//     claim-CASing each of their records free→matched. Losing any CAS
//     vetoes the commit — the session never records the pair, the
//     algorithm sees an ordinary platform refusal, and whatever copy won
//     elsewhere stands. The protocol is owner-commits-wins in the
//     deterministic single-writer order: claims are resolved in commit
//     order, and an owner-side commit permanently bars every ghost.
//   - the winning shard's event collection then rewrites the committed
//     match to the endpoints' owner identities (see Event.WorkerShard /
//     TaskShard) — so the merged stream reports each logical match
//     exactly once, under its home addresses — and enqueues a retraction
//     of every losing copy.
//
// Retractions ride a per-shard pending queue (its own leaf mutex, so the
// winner never takes another shard's session lock while holding its own)
// and are applied under the target shard's lock via Session.Withdraw*,
// which silences the copy's expiry and hands it to the next retirement.
// Ghost handle tables (gid → current session handle) are remapped through
// retirement by the session's OnRetire hook, so retractions stay
// addressable across arena epochs.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Claim states of a mirror record. claimPending is transient: it exists
// only for the instruction window in which a gate holds one endpoint
// while CASing the other, and every reader spins past it (settle).
const (
	claimFree uint32 = iota
	claimPending
	claimMatched
	claimExpired
)

// mirror is the shared arbitration record of one halo-mirrored object.
// Everything except the claim word (and commitAt, published through it)
// is immutable after construction, which is what makes the record safe to
// read from any shard without locks.
type mirror struct {
	state atomic.Uint32
	// commitAt is the winning commit's session time, written before state
	// becomes claimMatched and read only after observing that state.
	commitAt float64
	gid      uint64
	task     bool  // which side the object is on
	owner    int32 // owning shard
	// ownerLocal is the owner session's handle at admission — the same
	// receipt Handle.Local reports, used as the object's home identity in
	// merged events. Like any receipt it is only epoch-stable; with
	// retirement on it names the admission, not a live arena slot.
	ownerLocal int32
	// copies lists every shard holding a copy, owner first.
	copies []int32
}

// tryClaim attempts to take the record for a commit in flight.
func (m *mirror) tryClaim() bool { return m.state.CompareAndSwap(claimFree, claimPending) }

// release returns a pending claim after the paired endpoint was lost.
func (m *mirror) release() { m.state.Store(claimFree) }

// commit settles a pending claim as matched at session time `at`.
func (m *mirror) commit(at float64) {
	m.commitAt = at
	m.state.Store(claimMatched)
}

// settle returns the record's stable claim state, spinning past the
// transient pending window (a handful of lock-free instructions on the
// claiming shard's goroutine).
func (m *mirror) settle() uint32 {
	for {
		s := m.state.Load()
		if s != claimPending {
			return s
		}
		runtime.Gosched()
	}
}

// claimExpiry resolves the owner copy's deadline against the claim word:
// it returns claimExpired if this expiry now owns the object (no copy
// matched it first), or claimMatched if a commit won the race.
func (m *mirror) claimExpiry() uint32 {
	for {
		switch s := m.settle(); s {
		case claimFree:
			if m.state.CompareAndSwap(claimFree, claimExpired) {
				return claimExpired
			}
		default:
			return s
		}
	}
}

// pendingWithdraw is one queued retraction: the copy of the object with
// this gid held by the queue's shard must be withdrawn.
type pendingWithdraw struct {
	gid  uint64
	task bool
}

// haloState is the per-shard half of the arbitration: dense handle→record
// tables for every mirrored copy this shard holds, the gid→handle
// resolution maps retractions address copies by, and the pending
// retraction queue. The tables and maps are guarded by the shard's
// session lock; the queue by its own leaf mutex so other shards can feed
// it without ordering against session locks.
type haloState struct {
	wRef   []*mirror // by current worker handle; nil = unmirrored
	tRef   []*mirror
	wByGid map[uint64]int32
	tByGid map[uint64]int32

	pwMu       sync.Mutex
	pending    []pendingWithdraw
	pendingApp []pendingWithdraw // drain scratch, swapped under pwMu
	hasPending atomic.Bool

	// Stats, owned by the shard lock. ghost* count mirrored copies
	// admitted here; suppressed* count expiry events dropped because the
	// object's lifecycle concluded elsewhere (they correct the session's
	// own expiry counters); claimsLost counts commits vetoed by the
	// arbitration; borderMatches counts commits involving >=1 mirrored
	// endpoint.
	ghostW, ghostT                 int
	suppressedExpW, suppressedExpT int
	claimsLost                     int
	borderMatches                  int
}

// refAt returns the mirror record behind a handle, nil when the handle is
// unmirrored (or beyond the table, which only grows for mirrored copies).
func refAt(refs []*mirror, h int) *mirror {
	if h >= 0 && h < len(refs) {
		return refs[h]
	}
	return nil
}

// putRef installs a record at a handle, growing the dense table. Callers
// hold the shard lock.
func putRef(refs []*mirror, h int, rec *mirror) []*mirror {
	for len(refs) <= h {
		refs = append(refs, nil)
	}
	refs[h] = rec
	return refs
}

// putWorker/putTask register a mirrored copy under the shard lock.
func (si *shardInstance) putWorker(h int, rec *mirror) {
	si.halo.wRef = putRef(si.halo.wRef, h, rec)
	si.halo.wByGid[rec.gid] = int32(h)
}

func (si *shardInstance) putTask(h int, rec *mirror) {
	si.halo.tRef = putRef(si.halo.tRef, h, rec)
	si.halo.tByGid[rec.gid] = int32(h)
}

// dropWorker/dropTask unregister a copy (withdrawal applied, or admission
// rolled back). Callers hold the shard lock.
func (si *shardInstance) dropWorker(h int, rec *mirror) {
	si.halo.wRef[h] = nil
	delete(si.halo.wByGid, rec.gid)
}

func (si *shardInstance) dropTask(h int, rec *mirror) {
	si.halo.tRef[h] = nil
	delete(si.halo.tByGid, rec.gid)
}

// enqueueWithdraw queues a retraction for this shard. Safe to call from
// any goroutine, including ones holding other shards' session locks: the
// pending queue's mutex is a leaf.
func (si *shardInstance) enqueueWithdraw(pw pendingWithdraw) {
	si.halo.pwMu.Lock()
	si.halo.pending = append(si.halo.pending, pw)
	si.halo.hasPending.Store(true)
	si.halo.pwMu.Unlock()
}

// drainPendingLocked applies every queued retraction to this shard's
// session. Callers hold the shard lock. Retractions are idempotent and
// tolerate missing copies: a gid absent from the maps was never admitted
// here (the claim settled before the ghost admission) or already left
// through withdrawal or retirement.
func (si *shardInstance) drainPendingLocked() {
	if !si.halo.hasPending.Load() {
		return
	}
	si.halo.pwMu.Lock()
	si.halo.pending, si.halo.pendingApp = si.halo.pendingApp[:0], si.halo.pending
	si.halo.hasPending.Store(false)
	si.halo.pwMu.Unlock()
	for _, pw := range si.halo.pendingApp {
		si.applyWithdrawLocked(pw)
	}
}

// applyWithdrawLocked retracts one copy by gid under the shard lock. The
// ref and gid entries are dropped only when the session accepted the
// withdrawal: a refusal means this copy is the one that MATCHED — the
// claim's winner, which can receive a (redundant) retraction from
// admitGhostLocked's post-admission re-check — and its ref must survive
// so collectLocked keeps recognising the copy's later deadline as a
// ghost/mirrored expiry. Matched copies' entries are reclaimed by
// retirement instead.
func (si *shardInstance) applyWithdrawLocked(pw pendingWithdraw) {
	// Recorded unconditionally (whether the copy is found and whether the
	// session accepts are both deterministic given the shard's op stream,
	// so replay resolves them identically) — and before the mutation, as
	// its own single-record group.
	if si.wal != nil {
		si.wal.opWithdraw(pw)
	}
	if pw.task {
		if h, ok := si.halo.tByGid[pw.gid]; ok {
			if rec := si.halo.tRef[h]; si.sess.WithdrawTask(int(h)) {
				si.dropTask(int(h), rec)
			}
		}
		return
	}
	if h, ok := si.halo.wByGid[pw.gid]; ok {
		if rec := si.halo.wRef[h]; si.sess.WithdrawWorker(int(h)) {
			si.dropWorker(int(h), rec)
		}
	}
}

// retractLosers queues the retraction of every copy of rec except the
// winner shard's own (its copy is the matched or expired one). Copy shard
// ids are meaningful only within one topology epoch, so the fan-out
// resolves siblings through the state the winning shard belongs to —
// which, during a migration, may be the not-yet-published successor.
func (r *Router) retractLosers(ts *topoState, rec *mirror, winner int) {
	for _, cs := range rec.copies {
		if int(cs) == winner {
			continue
		}
		ts.shards[cs].enqueueWithdraw(pendingWithdraw{gid: rec.gid, task: rec.task})
	}
}

// applyPending drains the retraction queues of every shard flagged as
// having one, taking each shard's lock in turn (never nested). Mutating
// router calls run it after releasing their own locks so a retraction
// issued by a cross-shard commit lands "the moment" the winning call
// returns rather than at the loser's next organic write.
func (r *Router) applyPending(ts *topoState) {
	if !r.haloOn {
		return
	}
	for _, si := range ts.shards {
		if !si.halo.hasPending.Load() {
			continue
		}
		si.mu.Lock()
		si.drainPendingLocked()
		si.mu.Unlock()
	}
}

// gate is the sim CommitGate of one shard session: it arbitrates commits
// whose endpoints are mirrored. Runs inside TryMatch under the shard's
// session lock; it takes no locks itself, so claim resolution can never
// deadlock with another shard's gate.
func (si *shardInstance) gate(w, t int, now float64) bool {
	rw := refAt(si.halo.wRef, w)
	rt := refAt(si.halo.tRef, t)
	if rw == nil && rt == nil {
		return true // both endpoints purely local: nothing to arbitrate
	}
	if si.rep != nil {
		return si.replayGate(rw, rt, now)
	}
	ok := si.gateLive(rw, rt, now)
	if si.wal != nil {
		si.wal.recGate(ok)
	}
	return ok
}

// gateLive is the runtime claim arbitration behind gate; the verdict is
// recorded so replay can stand in for the race (replayGate).
func (si *shardInstance) gateLive(rw, rt *mirror, now float64) bool {
	if rw != nil && !rw.tryClaim() {
		si.halo.claimsLost++
		return false
	}
	if rt != nil && !rt.tryClaim() {
		if rw != nil {
			rw.release()
		}
		si.halo.claimsLost++
		return false
	}
	if rw != nil {
		rw.commit(now)
	}
	if rt != nil {
		rt.commit(now)
	}
	return true
}

// onRetire is the session OnRetire hook of one shard: it pushes the
// retirement's old→new handle tables through the halo's dense ref tables
// and gid maps, dropping retired copies, so retractions and gates keep
// resolving across arena epochs. Runs inside Session.Retire under the
// shard lock.
func (si *shardInstance) onRetire(wmap, tmap []int32) {
	si.halo.wRef = remapRefs(si.halo.wRef, wmap, si.halo.wByGid)
	si.halo.tRef = remapRefs(si.halo.tRef, tmap, si.halo.tByGid)
}

// remapRefs rewrites a dense ref table in place through a retirement
// table. Survivor handles only move left (retirement left-compacts), so
// the ascending pass never overwrites an unprocessed slot.
func remapRefs(refs []*mirror, m []int32, byGid map[uint64]int32) []*mirror {
	for old, rec := range refs {
		if rec == nil {
			continue
		}
		refs[old] = nil
		n := m[old]
		if n < 0 {
			delete(byGid, rec.gid)
			continue
		}
		refs[n] = rec
		byGid[rec.gid] = n
	}
	return refs
}
