package shard

import (
	"fmt"
	"sync"
	"testing"

	"ftoa/internal/core"
	"ftoa/internal/geo"
	"ftoa/internal/guide"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/timeslot"
	"ftoa/internal/workload"
)

// haloGuide builds a learned-shape guide over the synthetic workload for
// the guided algorithms (POLAR / POLAR-OP / Hybrid).
func haloGuide(t testing.TB, cfg workload.Synthetic) *guide.Guide {
	t.Helper()
	grid := geo.NewGrid(cfg.Bounds(), 8, 8)
	slots := timeslot.New(cfg.Horizon, 12)
	wc, tc := cfg.ExpectedCounts(grid, slots)
	g, err := guide.Build(guide.Config{
		Grid:           grid,
		Slots:          slots,
		Velocity:       cfg.Velocity,
		WorkerPatience: cfg.WorkerPatience,
		TaskExpiry:     cfg.TaskExpiry,
		RepSlack:       slots.Width() / 2,
	}, wc, tc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// haloAlgorithms is the full algorithm matrix the halo invariants must
// hold for.
func haloAlgorithms(t testing.TB, cfg workload.Synthetic) []struct {
	name string
	mk   func() sim.Algorithm
} {
	g := haloGuide(t, cfg)
	return []struct {
		name string
		mk   func() sim.Algorithm
	}{
		{"POLAR", func() sim.Algorithm { return core.NewPOLAR(g) }},
		{"POLAR-OP", func() sim.Algorithm { return core.NewPOLAROP(g) }},
		{"SimpleGreedy", func() sim.Algorithm { return core.NewSimpleGreedy() }},
		{"GR", func() sim.Algorithm { return core.NewGR(cfg.Horizon / 40) }},
		{"Hybrid", func() sim.Algorithm { return core.NewHybrid(g) }},
		{"TGOA", func() sim.Algorithm { return core.NewTGOA() }},
	}
}

// assertNoDoubleMatch walks a merged event stream and fails if any
// logical object — identified by its owner (shard, handle) home address —
// appears in more than one committed match, or expires more than once.
// It returns the number of match events seen.
func assertNoDoubleMatch(t *testing.T, evs []Event) int {
	t.Helper()
	type id struct {
		shard, local int
	}
	matchedW := map[id]bool{}
	matchedT := map[id]bool{}
	expiredW := map[id]bool{}
	expiredT := map[id]bool{}
	matches := 0
	for _, ev := range evs {
		switch ev.Kind {
		case sim.EventMatch:
			matches++
			w := id{ev.WorkerShard, ev.Worker}
			tk := id{ev.TaskShard, ev.Task}
			if matchedW[w] {
				t.Fatalf("worker %v committed twice (seq %d)", w, ev.Seq)
			}
			if matchedT[tk] {
				t.Fatalf("task %v committed twice (seq %d)", tk, ev.Seq)
			}
			matchedW[w] = true
			matchedT[tk] = true
		case sim.EventWorkerExpired:
			w := id{ev.WorkerShard, ev.Worker}
			if expiredW[w] {
				t.Fatalf("worker %v expired twice (seq %d)", w, ev.Seq)
			}
			expiredW[w] = true
		case sim.EventTaskExpired:
			tk := id{ev.TaskShard, ev.Task}
			if expiredT[tk] {
				t.Fatalf("task %v expired twice (seq %d)", tk, ev.Seq)
			}
			expiredT[tk] = true
		}
	}
	return matches
}

// routerReplay drives a recorded instance through a router sequentially
// and returns the full merged event stream plus the summed shard stats.
func routerReplay(t *testing.T, r *Router, in *model.Instance) ([]Event, []Stats) {
	t.Helper()
	for _, ev := range in.Events() {
		var err error
		switch ev.Kind {
		case model.WorkerArrival:
			_, _, err = r.AddWorker(in.Workers[ev.Index])
		case model.TaskArrival:
			_, _, err = r.AddTask(in.Tasks[ev.Index])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	r.Finish()
	evs, _, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return evs, r.StatsAll(nil)
}

// TestRouterHaloNoDoubleMatch is the cross-shard matching invariant, the
// deterministic half: for all six algorithms × both modes, a 4×4 router
// with halo mirroring must commit every logical object at most once
// across all shards (and report each expiry at most once), with the
// merged stream's match count agreeing with the per-shard stats.
func TestRouterHaloNoDoubleMatch(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 400, 400
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	halo := HaloForWindow(cfg.Velocity, cfg.TaskExpiry)
	for _, mode := range []sim.Mode{sim.AssumeGuide, sim.Strict} {
		for _, a := range haloAlgorithms(t, cfg) {
			t.Run(fmt.Sprintf("%s/%s", a.name, mode), func(t *testing.T) {
				r, err := NewRouter(Config{
					Matcher: sim.MatcherConfig{
						Mode:     mode,
						Velocity: in.Velocity,
						Bounds:   in.Bounds,
						Hints: sim.Hints{
							ExpectedWorkers: len(in.Workers),
							ExpectedTasks:   len(in.Tasks),
							Horizon:         in.Horizon,
						},
					},
					Cols:         4,
					Rows:         4,
					Halo:         halo,
					NewAlgorithm: a.mk,
				})
				if err != nil {
					t.Fatal(err)
				}
				evs, stats := routerReplay(t, r, in)
				matches := assertNoDoubleMatch(t, evs)
				var statMatches, ghosts, withdrawn int
				for _, st := range stats {
					statMatches += st.Matches
					ghosts += st.GhostWorkers + st.GhostTasks
					withdrawn += st.WithdrawnWorkers + st.WithdrawnTasks
					if st.ExpiredWorkers < 0 || st.ExpiredTasks < 0 {
						t.Fatalf("shard %d negative corrected expiries: %+v", st.Shard, st)
					}
				}
				if matches != statMatches || matches == 0 {
					t.Fatalf("stream has %d matches, stats say %d", matches, statMatches)
				}
				if ghosts == 0 {
					t.Fatal("no ghosts admitted; halo path not exercised")
				}
				if withdrawn == 0 {
					t.Fatal("no copies withdrawn; retraction path not exercised")
				}
			})
		}
	}
}

// TestRouterHaloRecoversBorderQuality: the point of the whole machinery —
// with the natural halo width, the 4×4 sharded matched size must be well
// above the disjoint router's and close to the unsharded session's. The
// hard ≥90% acceptance gate lives in the root package's quality test at
// the benchmark scale; this is the same property at test scale.
func TestRouterHaloRecoversBorderQuality(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 500, 500
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mcfg := sim.MatcherConfig{
		Mode:     sim.AssumeGuide,
		Velocity: in.Velocity,
		Bounds:   in.Bounds,
		Hints: sim.Hints{
			ExpectedWorkers: len(in.Workers),
			ExpectedTasks:   len(in.Tasks),
			Horizon:         in.Horizon,
		},
	}
	run := func(halo float64) int {
		r, err := NewRouter(Config{
			Matcher:      mcfg,
			Cols:         4,
			Rows:         4,
			Halo:         halo,
			NewAlgorithm: func() sim.Algorithm { return core.NewSimpleGreedy() },
		})
		if err != nil {
			t.Fatal(err)
		}
		_, stats := routerReplay(t, r, in)
		total := 0
		for _, st := range stats {
			total += st.Matches
		}
		return total
	}

	// Unsharded reference: one session over the full area.
	m, err := sim.NewMatcher(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession(core.NewSimpleGreedy())
	for _, ev := range in.Events() {
		switch ev.Kind {
		case model.WorkerArrival:
			_, err = sess.AddWorker(in.Workers[ev.Index])
		case model.TaskArrival:
			_, err = sess.AddTask(in.Tasks[ev.Index])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	sess.Finish()
	unsharded := sess.Matches()

	disjoint := run(0)
	haloed := run(HaloForWindow(cfg.Velocity, cfg.TaskExpiry))
	t.Logf("matched: unsharded %d, 4x4 disjoint %d, 4x4 halo %d", unsharded, disjoint, haloed)
	if haloed <= disjoint {
		t.Fatalf("halo did not improve border matching: disjoint %d, halo %d", disjoint, haloed)
	}
	if haloed*10 < unsharded*9 {
		t.Fatalf("halo recovered %d of %d unsharded matches, below the 90%% bar", haloed, unsharded)
	}
}

// TestRouterHaloConcurrentSmoke is the concurrent half of the invariant:
// hammer a halo-enabled 2×2 router from parallel producers (ghost
// admissions, claims, retractions racing) plus a polling consumer, then
// assert the merged stream is seq-unique, stats-consistent, and free of
// double matches. Run under -race in CI.
func TestRouterHaloConcurrentSmoke(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 300, 300
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Config{
		Matcher: sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
		Cols:    2,
		Rows:    2,
		Halo:    HaloForWindow(cfg.Velocity, cfg.TaskExpiry),
		// The scan greedy maximises cross-shard contention: every arrival
		// probes every waiting object, ghosts included.
		NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
	})
	if err != nil {
		t.Fatal(err)
	}

	events := in.Events()
	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(events); i += producers {
				ev := events[i]
				switch ev.Kind {
				case model.WorkerArrival:
					if _, _, err := r.AddWorker(in.Workers[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				case model.TaskArrival:
					if _, _, err := r.AddTask(in.Tasks[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		var cursor uint64
		var buf []Event
		for {
			var err error
			buf, cursor, err = r.Events(cursor, buf[:0])
			if err != nil {
				t.Error(err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	consumer.Wait()
	r.Finish()

	evs, _, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seqs[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seqs[ev.Seq] = true
	}
	matches := assertNoDoubleMatch(t, evs)
	var statMatches, ghosts int
	for _, st := range r.StatsAll(nil) {
		statMatches += st.Matches
		ghosts += st.GhostWorkers + st.GhostTasks
	}
	if matches != statMatches || matches == 0 {
		t.Fatalf("stream has %d matches, stats say %d", matches, statMatches)
	}
	if ghosts == 0 {
		t.Fatal("no ghosts admitted; halo path not exercised")
	}
}

// TestRouterHaloRetirement: ghost handle tables must survive arena
// retirement — a router with an aggressive RetireInterval and halo
// mirroring keeps the invariant and keeps resolving retractions after
// every shard has compacted several epochs.
func TestRouterHaloRetirement(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 400, 400
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Config{
		Matcher:        sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
		Cols:           2,
		Rows:           2,
		Halo:           HaloForWindow(cfg.Velocity, cfg.TaskExpiry),
		NewAlgorithm:   func() sim.Algorithm { return core.NewSimpleGreedy() },
		RetireInterval: cfg.Horizon / 24, // many epochs across the day
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, stats := routerReplay(t, r, in)
	// Handles are admission receipts and get reused across retirement
	// epochs, so event-level (shard, handle) identities alias here; the
	// at-most-one-commit guarantee is keyed by the records' unique gids
	// (exercised by the non-retiring invariant tests). What must hold
	// regardless: the stream and stats agree, commits never exceed the
	// logical population, and ghosts flowed and were retracted.
	var matches int
	for _, ev := range evs {
		if ev.Kind == sim.EventMatch {
			matches++
		}
	}
	var statMatches, ghosts, withdrawn int
	var epochs uint64
	for i, st := range stats {
		statMatches += st.Matches
		ghosts += st.GhostWorkers + st.GhostTasks
		withdrawn += st.WithdrawnWorkers + st.WithdrawnTasks
		epochs += r.state().shards[i].sess.Epoch()
	}
	if matches != statMatches || matches == 0 {
		t.Fatalf("stream has %d matches, stats say %d", matches, statMatches)
	}
	if matches > cfg.NumWorkers {
		t.Fatalf("%d matches exceed the %d logical workers — a copy committed twice", matches, cfg.NumWorkers)
	}
	if ghosts == 0 || withdrawn == 0 {
		t.Fatalf("halo path not exercised under retirement: %d ghosts, %d withdrawn", ghosts, withdrawn)
	}
	if epochs == 0 {
		t.Fatal("no retirements happened; interval too long for the instance")
	}
	// Every halo table entry must point at a live, correctly-typed arena
	// slot after all the compaction.
	for _, si := range r.state().shards {
		for gid, h := range si.halo.wByGid {
			if int(h) >= si.sess.NumWorkers() {
				t.Fatalf("shard %d: gid %d maps to worker %d beyond live arena %d", si.id, gid, h, si.sess.NumWorkers())
			}
			if refAt(si.halo.wRef, int(h)) == nil {
				t.Fatalf("shard %d: gid %d handle %d has no ref", si.id, gid, h)
			}
		}
		for gid, h := range si.halo.tByGid {
			if int(h) >= si.sess.NumTasks() {
				t.Fatalf("shard %d: gid %d maps to task %d beyond live arena %d", si.id, gid, h, si.sess.NumTasks())
			}
			if refAt(si.halo.tRef, int(h)) == nil {
				t.Fatalf("shard %d: gid %d handle %d has no ref", si.id, gid, h)
			}
		}
	}
}
