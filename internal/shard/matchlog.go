package shard

import (
	"sort"
	"sync"
	"sync/atomic"

	"ftoa/internal/sim"
)

// MatchEntry is one committed pair in a MatchLog: the event's shard and
// handles plus Ord, the dense global match ordinal (0, 1, 2, … in commit
// order). Ordinals double as cursors: the first N matches are exactly
// those with Ord < N. WorkerShard/TaskShard carry the endpoints' owner
// shards (see Event): under halo mirroring a cross-border pair is
// committed by one session but reported under each endpoint's home
// identity.
type MatchEntry struct {
	Ord         uint64
	Shard       int
	Worker      int
	Task        int
	WorkerShard int
	TaskShard   int
	Time        float64
}

// MatchLog is a retention-bounded, match-only view of a Router's event
// stream, buffered per shard so that recording a match — which happens
// inside the emitting shard's single-writer lock, via the OnEvent hook —
// only ever touches that shard's buffer. Nothing is shared between
// writers, so the admission hot path stays fully lock-disjoint across
// regions; readers merge the per-shard buffers by ordinal at read time.
// This replaces the one-global-mutex match history ftoa-serve used to
// keep (a serialization point inside every emitting shard's lock).
//
// Unlike the router's polled event log, the view is lossless under event
// retention: it is fed synchronously by the hook, so it never misses a
// commit even when the event log wraps. Its own retention is per shard
// (each shard keeps at least its most recent `retention` matches), with
// the same batched eviction policy as the event log (retain.go).
type MatchLog struct {
	retention int
	count     atomic.Uint64 // next ordinal to assign
	evicted   atomic.Uint64 // lowest ordinal guaranteed gap-free
	// shards holds one buffer pointer per shard id seen so far. Shard ids
	// follow the router's CURRENT topology, so a Rebalance split can emit
	// ids beyond the initial count; growth is copy-on-write under growMu
	// (existing pointers stay valid, so in-flight Records and readers
	// holding the old slice are unaffected).
	shards atomic.Pointer[[]*matchLogShard]
	growMu sync.Mutex
}

type matchLogShard struct {
	mu  sync.Mutex
	buf []MatchEntry // Ord strictly increasing within a shard
}

// NewMatchLog creates a match view over `shards` regions, keeping at
// least the most recent `retention` matches per shard (non-positive
// keeps everything). Wire Record as (part of) the router's OnEvent hook.
func NewMatchLog(shards, retention int) *MatchLog {
	l := &MatchLog{retention: retention}
	buf := make([]*matchLogShard, shards)
	for i := range buf {
		buf[i] = &matchLogShard{}
	}
	l.shards.Store(&buf)
	return l
}

// shard returns the buffer for shard id i, growing the table when a
// rebalanced topology emits an id beyond anything seen before.
func (l *MatchLog) shard(i int) *matchLogShard {
	if cur := *l.shards.Load(); i < len(cur) {
		return cur[i]
	}
	l.growMu.Lock()
	defer l.growMu.Unlock()
	cur := *l.shards.Load()
	if i < len(cur) {
		return cur[i]
	}
	grown := make([]*matchLogShard, i+1)
	copy(grown, cur)
	for j := len(cur); j < len(grown); j++ {
		grown[j] = &matchLogShard{}
	}
	l.shards.Store(&grown)
	return grown[i]
}

// Record folds one sequenced event into the view; non-match events are
// ignored. It is safe for concurrent use and intended to be called from
// Config.OnEvent — per shard it serializes only on that shard's buffer
// lock, which readers hold just long enough to copy.
func (l *MatchLog) Record(ev Event) {
	if ev.Kind != sim.EventMatch {
		return
	}
	s := l.shard(ev.Shard)
	s.mu.Lock()
	// The ordinal is assigned under the shard's buffer lock so that
	// within a shard ordinals are appended strictly increasing — the
	// sorted-buffer invariant Matches' binary search and the eviction
	// boundary rely on — even when same-shard Records race.
	ord := l.count.Add(1) - 1
	s.buf = append(s.buf, MatchEntry{
		Ord:         ord,
		Shard:       ev.Shard,
		Worker:      ev.Worker,
		Task:        ev.Task,
		WorkerShard: ev.WorkerShard,
		TaskShard:   ev.TaskShard,
		Time:        ev.Time,
	})
	if drop := retainDrop(len(s.buf), l.retention); drop > 0 {
		boundary := s.buf[drop-1].Ord + 1
		n := copy(s.buf, s.buf[drop:])
		s.buf = s.buf[:n]
		raiseBoundary(&l.evicted, boundary)
	}
	s.mu.Unlock()
}

// Count returns how many matches have been recorded over the log's
// lifetime (the next ordinal to be assigned).
func (l *MatchLog) Count() uint64 { return l.count.Load() }

// Oldest returns the lowest cursor Matches still serves gap-free — the
// eviction boundary. Like the router's OldestCursor it is a global
// maximum over per-shard boundaries: everything below the hottest
// shard's eviction point counts as gone.
func (l *MatchLog) Oldest() uint64 { return l.evicted.Load() }

// Matches appends to dst the matches with Ord >= since, merged across
// shards in ordinal order, and returns the extended slice plus the
// cursor to pass next time. At most limit matches are returned per call
// (zero or negative means unlimited). A cursor below the eviction
// boundary gets ErrEvicted: restart from Oldest, accepting the gap.
//
// Delivery is gap-free: ordinals are dense, and the merged page is
// truncated at the first missing ordinal — which can only be a match
// whose Record call is mid-flight on another shard — so the returned
// cursor never skips a commit; the next poll picks it up.
func (l *MatchLog) Matches(since uint64, limit int, dst []MatchEntry) ([]MatchEntry, uint64, error) {
	if since < l.evicted.Load() {
		return dst, 0, ErrEvicted
	}
	if since >= l.count.Load() {
		return dst, since, nil
	}
	start := len(dst)
	for _, s := range *l.shards.Load() {
		s.mu.Lock()
		buf := s.buf
		j := sort.Search(len(buf), func(k int) bool { return buf[k].Ord >= since })
		// A page can hold at most limit entries and ordinals are unique,
		// so each shard contributes at most its limit lowest candidates —
		// bounding the transient gather at shards x limit, as the
		// router's event gather does.
		if limit > 0 && len(buf)-j > limit {
			buf = buf[:j+limit]
		}
		dst = append(dst, buf[j:]...)
		s.mu.Unlock()
	}
	// Re-check after the walk: an eviction during it may have dropped
	// matches at or above since from a shard visited before it happened.
	if since < l.evicted.Load() {
		return dst[:start], 0, ErrEvicted
	}
	tail := dst[start:]
	sort.Slice(tail, func(a, b int) bool { return tail[a].Ord < tail[b].Ord })
	k := 0
	for k < len(tail) && tail[k].Ord == since+uint64(k) && (limit <= 0 || k < limit) {
		k++
	}
	return dst[:start+k], since + uint64(k), nil
}

// MatchesFromOldest is Matches anchored at the oldest retained cursor,
// atomically: a concurrent eviction restarts the read at the new
// boundary instead of surfacing ErrEvicted — the primitive behind
// cursor-less polling ("give me what is retained").
func (l *MatchLog) MatchesFromOldest(limit int, dst []MatchEntry) ([]MatchEntry, uint64) {
	for {
		out, next, err := l.Matches(l.evicted.Load(), limit, dst)
		if err == nil {
			return out, next
		}
	}
}
