package shard

import (
	"sync"
	"testing"

	"ftoa/internal/sim"
)

// matchEvent fabricates a sequenced match event for shard s.
func matchEvent(seq uint64, shard, w, t int, at float64) Event {
	return Event{Seq: seq, Shard: shard, SessionEvent: sim.SessionEvent{
		Kind: sim.EventMatch, Worker: w, Task: t, Time: at,
	}}
}

func TestMatchLogMergesByOrdinal(t *testing.T) {
	l := NewMatchLog(2, 0)
	// Interleave shards; ordinals are assigned in Record order regardless
	// of shard.
	l.Record(matchEvent(0, 0, 1, 1, 1))
	l.Record(matchEvent(1, 1, 2, 2, 2))
	l.Record(matchEvent(2, 0, 3, 3, 3))
	l.Record(Event{Seq: 3, Shard: 1, SessionEvent: sim.SessionEvent{Kind: sim.EventWorkerExpired, Worker: 9, Task: -1}})
	l.Record(matchEvent(4, 1, 4, 4, 4))

	if l.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (expiry ignored)", l.Count())
	}
	out, next, err := l.Matches(0, 0, nil)
	if err != nil || len(out) != 4 || next != 4 {
		t.Fatalf("Matches(0) = %d entries, next %d, err %v", len(out), next, err)
	}
	for i, e := range out {
		if e.Ord != uint64(i) {
			t.Fatalf("entry %d has ordinal %d: merged order broken: %+v", i, e.Ord, out)
		}
	}
	if out[1].Shard != 1 || out[1].Worker != 2 {
		t.Fatalf("entry 1 = %+v, want shard 1's first match", out[1])
	}
	// Cursor tail.
	out, next, err = l.Matches(3, 0, nil)
	if err != nil || len(out) != 1 || out[0].Worker != 4 || next != 4 {
		t.Fatalf("Matches(3) = %+v next %d err %v", out, next, err)
	}
	// Past the end: empty, cursor unchanged.
	if out, next, err = l.Matches(9, 0, nil); err != nil || len(out) != 0 || next != 9 {
		t.Fatalf("Matches(9) = %+v next %d err %v", out, next, err)
	}
	// Limit paging.
	out, next, err = l.Matches(0, 2, nil)
	if err != nil || len(out) != 2 || next != 2 {
		t.Fatalf("limited page = %+v next %d err %v", out, next, err)
	}
}

func TestMatchLogRetention(t *testing.T) {
	l := NewMatchLog(1, 2)
	for i := 0; i < 4; i++ {
		l.Record(matchEvent(uint64(i), 0, i, i, float64(i)))
	}
	// 4 > 2+2/2: evicted down to the last 2.
	if l.Oldest() != 2 {
		t.Fatalf("Oldest = %d, want 2", l.Oldest())
	}
	if _, _, err := l.Matches(1, 0, nil); err != ErrEvicted {
		t.Fatalf("Matches(1) err = %v, want ErrEvicted", err)
	}
	out, next, err := l.Matches(2, 0, nil)
	if err != nil || len(out) != 2 || next != 4 || out[0].Worker != 2 {
		t.Fatalf("retained window = %+v next %d err %v", out, next, err)
	}
	out, next = l.MatchesFromOldest(0, nil)
	if len(out) != 2 || next != 4 {
		t.Fatalf("MatchesFromOldest = %+v next %d", out, next)
	}
	if l.Count() != 4 {
		t.Fatalf("Count = %d, want the lifetime total 4", l.Count())
	}
}

// TestMatchLogGapTruncation: an ordinal assigned but not yet buffered (a
// Record mid-flight on another shard) must truncate the page — delivery
// stays gap-free and the cursor never skips it.
func TestMatchLogGapTruncation(t *testing.T) {
	l := NewMatchLog(2, 0)
	l.Record(matchEvent(0, 0, 1, 1, 1))
	// Simulate an in-flight Record on shard 1: ordinal 1 assigned, buffer
	// append not yet visible.
	l.count.Add(1)
	l.Record(matchEvent(2, 0, 3, 3, 3)) // ordinal 2, lands in shard 0

	out, next, err := l.Matches(0, 0, nil)
	if err != nil || len(out) != 1 || next != 1 {
		t.Fatalf("page across a gap = %+v next %d err %v (must stop before the in-flight ordinal)", out, next, err)
	}
	// The straggler lands; the next poll resumes without loss.
	l.shard(1).mu.Lock()
	l.shard(1).buf = append(l.shard(1).buf, MatchEntry{Ord: 1, Shard: 1, Worker: 2, Task: 2, Time: 2})
	l.shard(1).mu.Unlock()
	out, next, err = l.Matches(next, 0, nil)
	if err != nil || len(out) != 2 || next != 3 || out[0].Ord != 1 || out[1].Ord != 2 {
		t.Fatalf("resumed page = %+v next %d err %v", out, next, err)
	}
}

// TestMatchLogConcurrentSmoke hammers Record from per-shard producers
// against merging readers; run under -race in CI. Every reader page must
// be gap-free and ordinal-ordered.
func TestMatchLogConcurrentSmoke(t *testing.T) {
	const shards, perShard = 4, 500
	l := NewMatchLog(shards, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				l.Record(matchEvent(0, s, i, i, float64(i)))
			}
		}(s)
	}
	var readerErr error
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var cursor uint64
		var buf []MatchEntry
		for {
			var err error
			buf, cursor, err = l.Matches(cursor, 0, buf[:0])
			if err != nil {
				readerErr = err
				return
			}
			want := cursor - uint64(len(buf))
			for i, e := range buf {
				if e.Ord != want+uint64(i) {
					readerErr = errOrd{e.Ord, want + uint64(i)}
					return
				}
			}
			select {
			case <-stop:
				if cursor == uint64(shards*perShard) {
					return
				}
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if l.Count() != shards*perShard {
		t.Fatalf("Count = %d, want %d", l.Count(), shards*perShard)
	}
}

type errOrd struct{ got, want uint64 }

func (e errOrd) Error() string { return "out-of-order ordinal" }
