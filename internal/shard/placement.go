// Placement — the region-geometry layer of the shard router, extracted so
// that region shape is a first-class, tunable concern rather than an
// implicit property of grid routing. A Placement answers two questions
// about any location:
//
//   - which region OWNS it (every location has exactly one owner — the
//     grid cell containing it, clamped at the service-area edges); and
//   - which neighbor regions must ALSO see it: the regions whose area lies
//     within the reach radius ("halo") of the location, i.e. the regions
//     whose objects the location could feasibly be matched with under the
//     workload's deadline windows.
//
// The halo width is the knob: the natural setting is Velocity × the
// deadline window (how far a worker can travel before the pair's deadline
// cuts the match off — see HaloForWindow), but it is an explicit distance
// so operators can trade border-matching quality against mirroring cost.
// Zero disables mirroring entirely and reduces the placement to the
// disjoint partitioning of the original grid router.
package shard

import (
	"ftoa/internal/geo"
)

// Placement maps locations to an owner region plus the set of reachable
// neighbor regions under a halo width. It is immutable after construction
// and safe for concurrent use.
type Placement struct {
	grid *geo.Grid
	halo float64
	// candidates[cell] holds the neighbor cells whose region lies within
	// halo of cell's region — the superset Mirrors filters per point. For
	// halos below a cell size this is the 8-neighborhood or less, so the
	// per-admission filter touches a handful of rectangles.
	candidates [][]int32
}

// NewPlacement partitions bounds into a cols×rows region grid with the
// given halo width. Halo must be non-negative; the grid arguments follow
// geo.NewGrid's rules.
func NewPlacement(bounds geo.Rect, cols, rows int, halo float64) *Placement {
	if halo < 0 {
		panic("shard: negative halo")
	}
	p := &Placement{grid: geo.NewGrid(bounds, cols, rows), halo: halo}
	if halo > 0 {
		n := p.grid.NumCells()
		p.candidates = make([][]int32, n)
		for c := 0; c < n; c++ {
			rc := p.grid.CellRect(c)
			for o := 0; o < n; o++ {
				if o == c {
					continue
				}
				if rectDistSq(rc, p.grid.CellRect(o)) <= halo*halo {
					p.candidates[c] = append(p.candidates[c], int32(o))
				}
			}
		}
	}
	return p
}

// HaloForWindow derives the natural halo width from the shared worker
// velocity and a deadline window (typically the task expiry Dr, the time
// a worker has to reach a task): an object farther than velocity×window
// from a region can never participate in a feasible pair with it.
func HaloForWindow(velocity, window float64) float64 {
	if velocity <= 0 || window <= 0 {
		return 0
	}
	return velocity * window
}

// NumRegions returns the number of regions in the grid.
func (p *Placement) NumRegions() int { return p.grid.NumCells() }

// Halo returns the configured halo width.
func (p *Placement) Halo() float64 { return p.halo }

// Owner returns the region owning location pt (clamped to the grid, so
// out-of-area locations are owned by the nearest edge region).
func (p *Placement) Owner(pt geo.Point) int { return p.grid.CellOf(pt) }

// Region returns the rectangle of region i.
func (p *Placement) Region(i int) geo.Rect { return p.grid.CellRect(i) }

// Mirrors appends to dst the regions other than owner — pt's owning
// region, which the caller has already resolved via Owner — whose area
// lies within the halo of pt: the regions that must receive a ghost copy
// of an object admitted at pt. With a zero halo, or for interior
// locations farther than the halo from every region edge, it returns dst
// unchanged without touching the candidate lists, so the interior
// admission fast path stays allocation-free.
func (p *Placement) Mirrors(pt geo.Point, owner int, dst []int) []int {
	if p.halo == 0 {
		return dst
	}
	rect := p.grid.CellRect(owner)
	// Interior fast path: strictly farther than halo from the owner's
	// boundary means strictly farther than halo from every other region.
	if pt.X-rect.MinX > p.halo && rect.MaxX-pt.X > p.halo &&
		pt.Y-rect.MinY > p.halo && rect.MaxY-pt.Y > p.halo {
		return dst
	}
	h2 := p.halo * p.halo
	for _, c := range p.candidates[owner] {
		if pointRectDistSq(pt, p.grid.CellRect(int(c))) <= h2 {
			dst = append(dst, int(c))
		}
	}
	return dst
}

// HintShare returns the fraction of total traffic region i should size
// for: its own area share plus the expected halo fraction — the share of
// the full service area whose admissions are mirrored into i because they
// fall within the halo band around its region. Geometrically this is the
// area of region i grown by the halo on every side, clipped to the
// service bounds, over the total area. Shares across regions sum to more
// than 1 exactly because halo admissions are duplicated.
func (p *Placement) HintShare(i int) float64 {
	b := p.grid.Bounds
	r := p.grid.CellRect(i)
	grown := geo.Rect{
		MinX: max(r.MinX-p.halo, b.MinX),
		MinY: max(r.MinY-p.halo, b.MinY),
		MaxX: min(r.MaxX+p.halo, b.MaxX),
		MaxY: min(r.MaxY+p.halo, b.MaxY),
	}
	return (grown.Width() * grown.Height()) / (b.Width() * b.Height())
}

// pointRectDistSq returns the squared distance from pt to the nearest
// point of r (zero when pt lies inside r).
func pointRectDistSq(pt geo.Point, r geo.Rect) float64 {
	dx := max(max(r.MinX-pt.X, 0), pt.X-r.MaxX)
	dy := max(max(r.MinY-pt.Y, 0), pt.Y-r.MaxY)
	return dx*dx + dy*dy
}

// rectDistSq returns the squared distance between the nearest points of
// two rectangles (zero when they touch or overlap).
func rectDistSq(a, b geo.Rect) float64 {
	dx := max(max(b.MinX-a.MaxX, 0), a.MinX-b.MaxX)
	dy := max(max(b.MinY-a.MaxY, 0), a.MinY-b.MaxY)
	return dx*dx + dy*dy
}
