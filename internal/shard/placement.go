// Placement — the region-geometry layer of the shard router, extracted so
// that region shape is a first-class, tunable concern rather than an
// implicit property of grid routing. A Placement answers two questions
// about any location:
//
//   - which region OWNS it (every location has exactly one owner — the
//     leaf region of the topology containing it, clamped at the
//     service-area edges); and
//   - which neighbor regions must ALSO see it: the regions whose area lies
//     within the reach radius ("halo") of the location, i.e. the regions
//     whose objects the location could feasibly be matched with under the
//     workload's deadline windows.
//
// Since the rebalance subsystem the region set is no longer necessarily a
// uniform grid: a Placement is built over a Topology — a base Cols×Rows
// grid whose cells may be recursively quartered — and owner lookup is a
// base-grid cell lookup followed by a short quadtree descent. A uniform
// topology reproduces the historical grid placement bit for bit: same
// region numbering, same rectangles, same mirror sets.
//
// The halo width is the knob: the natural setting is Velocity × the
// deadline window (how far a worker can travel before the pair's deadline
// cuts the match off — see HaloForWindow), but it is an explicit distance
// so operators can trade border-matching quality against mirroring cost.
// Zero disables mirroring entirely and reduces the placement to the
// disjoint partitioning of the original grid router.
package shard

import (
	"ftoa/internal/geo"
)

// topoNode is one node of a parsed per-cell quadtree: region names the
// leaf, or is -1 for internal nodes whose four children sit at kids..kids+3.
type topoNode struct {
	region int32
	kids   int32
}

// Placement maps locations to an owner region plus the set of reachable
// neighbor regions under a halo width. It is immutable after construction
// and safe for concurrent use.
type Placement struct {
	topo *Topology
	grid *geo.Grid // the base cell grid (first routing hop)
	halo float64
	// regions[i] is region i's rectangle, in canonical topology order.
	regions []geo.Rect
	// cellRegion[cell] short-circuits unsplit base cells straight to their
	// region id; split cells hold -1 and route through cellNodes.
	cellRegion []int32
	cellNodes  [][]topoNode
	// candidates[region] holds the regions whose area lies within halo of
	// region — the superset Mirrors filters per point. For halos below a
	// region size this is the 8-neighborhood or less, so the per-admission
	// filter touches a handful of rectangles.
	candidates [][]int32
}

// NewPlacement partitions bounds into a uniform cols×rows region grid with
// the given halo width — the static layout every router starts from.
func NewPlacement(bounds geo.Rect, cols, rows int, halo float64) *Placement {
	return NewPlacementTopo(bounds, NewUniformTopology(cols, rows), halo)
}

// NewPlacementTopo builds the placement of an arbitrary topology. Halo
// must be non-negative; the base grid follows geo.NewGrid's rules.
func NewPlacementTopo(bounds geo.Rect, topo *Topology, halo float64) *Placement {
	if halo < 0 {
		panic("shard: negative halo")
	}
	p := &Placement{
		topo:       topo,
		grid:       geo.NewGrid(bounds, topo.BaseCols(), topo.BaseRows()),
		halo:       halo,
		regions:    topo.Regions(bounds),
		cellRegion: make([]int32, topo.BaseCols()*topo.BaseRows()),
		cellNodes:  make([][]topoNode, topo.BaseCols()*topo.BaseRows()),
	}
	region := int32(0)
	for c := range p.cellRegion {
		s := topo.cellSpec(c)
		if len(s) == 1 {
			p.cellRegion[c] = region
			region++
			continue
		}
		p.cellRegion[c] = -1
		p.cellNodes[c] = buildNodes(s, &region)
	}
	if halo > 0 {
		n := len(p.regions)
		p.candidates = make([][]int32, n)
		for c := 0; c < n; c++ {
			rc := p.regions[c]
			for o := 0; o < n; o++ {
				if o == c {
					continue
				}
				if rectDistSq(rc, p.regions[o]) <= halo*halo {
					p.candidates[c] = append(p.candidates[c], int32(o))
				}
			}
		}
	}
	return p
}

// buildNodes parses a pre-order spec into a walkable node slice (node 0
// is the cell root) where every internal node's four children occupy
// contiguous slots, assigning leaf region ids from *next.
func buildNodes(s []byte, next *int32) []topoNode {
	var nodes []topoNode
	var parse func(pos, self int) int
	parse = func(pos, self int) int {
		if s[pos] == 0 {
			nodes[self] = topoNode{region: *next, kids: -1}
			*next++
			return pos + 1
		}
		kids := len(nodes)
		nodes = append(nodes, make([]topoNode, 4)...)
		nodes[self] = topoNode{region: -1, kids: int32(kids)}
		pos++
		for q := 0; q < 4; q++ {
			pos = parse(pos, kids+q)
		}
		return pos
	}
	nodes = append(nodes, topoNode{})
	parse(0, 0)
	return nodes
}

// HaloForWindow derives the natural halo width from the shared worker
// velocity and a deadline window (typically the task expiry Dr, the time
// a worker has to reach a task): an object farther than velocity×window
// from a region can never participate in a feasible pair with it.
func HaloForWindow(velocity, window float64) float64 {
	if velocity <= 0 || window <= 0 {
		return 0
	}
	return velocity * window
}

// NumRegions returns the number of regions.
func (p *Placement) NumRegions() int { return len(p.regions) }

// Halo returns the configured halo width.
func (p *Placement) Halo() float64 { return p.halo }

// Topology returns the region tree the placement was built over.
func (p *Placement) Topology() *Topology { return p.topo }

// Bounds returns the service-area rectangle.
func (p *Placement) Bounds() geo.Rect { return p.grid.Bounds }

// Owner returns the region owning location pt (clamped to the base grid,
// so out-of-area locations are owned by the nearest edge region).
func (p *Placement) Owner(pt geo.Point) int {
	c := p.grid.CellOf(pt)
	if rg := p.cellRegion[c]; rg >= 0 {
		return int(rg)
	}
	nodes := p.cellNodes[c]
	rect := p.grid.CellRect(c)
	n := int32(0)
	for nodes[n].region < 0 {
		mx := (rect.MinX + rect.MaxX) / 2
		my := (rect.MinY + rect.MaxY) / 2
		q := int32(0)
		// >= keeps the descent consistent with the half-open region
		// rectangles; out-of-cell points (edge clamping) descend toward
		// the nearest quadrant just like CellOf clamps to edge cells.
		if pt.X >= mx {
			q |= 1
			rect.MinX = mx
		} else {
			rect.MaxX = mx
		}
		if pt.Y >= my {
			q |= 2
			rect.MinY = my
		} else {
			rect.MaxY = my
		}
		n = nodes[n].kids + q
	}
	return int(nodes[n].region)
}

// Region returns the rectangle of region i.
func (p *Placement) Region(i int) geo.Rect { return p.regions[i] }

// Mirrors appends to dst the regions other than owner — pt's owning
// region, which the caller has already resolved via Owner — whose area
// lies within the halo of pt: the regions that must receive a ghost copy
// of an object admitted at pt. With a zero halo, or for interior
// locations farther than the halo from every region edge, it returns dst
// unchanged without touching the candidate lists, so the interior
// admission fast path stays allocation-free.
func (p *Placement) Mirrors(pt geo.Point, owner int, dst []int) []int {
	if p.halo == 0 {
		return dst
	}
	rect := p.regions[owner]
	// Interior fast path: strictly farther than halo from the owner's
	// boundary means strictly farther than halo from every other region.
	if pt.X-rect.MinX > p.halo && rect.MaxX-pt.X > p.halo &&
		pt.Y-rect.MinY > p.halo && rect.MaxY-pt.Y > p.halo {
		return dst
	}
	h2 := p.halo * p.halo
	for _, c := range p.candidates[owner] {
		if pointRectDistSq(pt, p.regions[c]) <= h2 {
			dst = append(dst, int(c))
		}
	}
	return dst
}

// HintShare returns the fraction of total traffic region i should size
// for: its own area share plus the expected halo fraction — the share of
// the full service area whose admissions are mirrored into i because they
// fall within the halo band around its region. Geometrically this is the
// area of region i grown by the halo on every side, clipped to the
// service bounds, over the total area. Shares across regions sum to more
// than 1 exactly because halo admissions are duplicated.
func (p *Placement) HintShare(i int) float64 {
	b := p.grid.Bounds
	r := p.regions[i]
	grown := geo.Rect{
		MinX: max(r.MinX-p.halo, b.MinX),
		MinY: max(r.MinY-p.halo, b.MinY),
		MaxX: min(r.MaxX+p.halo, b.MaxX),
		MaxY: min(r.MaxY+p.halo, b.MaxY),
	}
	return (grown.Width() * grown.Height()) / (b.Width() * b.Height())
}

// pointRectDistSq returns the squared distance from pt to the nearest
// point of r (zero when pt lies inside r).
func pointRectDistSq(pt geo.Point, r geo.Rect) float64 {
	dx := max(max(r.MinX-pt.X, 0), pt.X-r.MaxX)
	dy := max(max(r.MinY-pt.Y, 0), pt.Y-r.MaxY)
	return dx*dx + dy*dy
}

// rectDistSq returns the squared distance between the nearest points of
// two rectangles (zero when they touch or overlap).
func rectDistSq(a, b geo.Rect) float64 {
	dx := max(max(b.MinX-a.MaxX, 0), a.MinX-b.MaxX)
	dy := max(max(b.MinY-a.MaxY, 0), a.MinY-b.MaxY)
	return dx*dx + dy*dy
}
