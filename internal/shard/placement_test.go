package shard

import (
	"math"
	"testing"

	"ftoa/internal/geo"
)

// TestPlacementOwnerAndMirrors: owners follow the grid; mirrors are
// exactly the neighbor regions within the halo of the point.
func TestPlacementOwnerAndMirrors(t *testing.T) {
	p := NewPlacement(geo.NewRect(0, 0, 100, 100), 2, 2, 10)
	if p.NumRegions() != 4 {
		t.Fatalf("NumRegions = %d, want 4", p.NumRegions())
	}
	if p.Halo() != 10 {
		t.Fatalf("Halo = %v, want 10", p.Halo())
	}

	cases := []struct {
		pt      geo.Point
		owner   int
		mirrors []int
	}{
		// Deep interior of region 0: no mirrors.
		{geo.Pt(20, 20), 0, nil},
		// Near the vertical border between 0 and 1 only.
		{geo.Pt(45, 20), 0, []int{1}},
		// Just across that border: owner flips, mirror flips.
		{geo.Pt(55, 20), 1, []int{0}},
		// Near the horizontal border between 0 and 2 only.
		{geo.Pt(20, 45), 0, []int{2}},
		// Near the center cross: all three neighbors reachable.
		{geo.Pt(45, 45), 0, []int{1, 2, 3}},
		// Corner diagonal reach: (58, 58) is 8*sqrt(2) ≈ 11.3 > 10 from
		// region 0's corner, so only the axis neighbors mirror.
		{geo.Pt(58, 58), 3, []int{1, 2}},
		// Exactly at halo distance from the border: inclusive.
		{geo.Pt(40, 20), 0, []int{1}},
		// Epsilon farther: excluded.
		{geo.Pt(math.Nextafter(40, 0), 20), 0, nil},
		// Out-of-bounds points clamp to an edge region but still mirror
		// by true distance.
		{geo.Pt(-5, 49), 0, []int{2}},
	}
	for _, c := range cases {
		if got := p.Owner(c.pt); got != c.owner {
			t.Errorf("Owner(%v) = %d, want %d", c.pt, got, c.owner)
		}
		got := p.Mirrors(c.pt, p.Owner(c.pt), nil)
		if len(got) != len(c.mirrors) {
			t.Errorf("Mirrors(%v) = %v, want %v", c.pt, got, c.mirrors)
			continue
		}
		want := map[int]bool{}
		for _, m := range c.mirrors {
			want[m] = true
		}
		for _, m := range got {
			if !want[m] {
				t.Errorf("Mirrors(%v) = %v, want %v", c.pt, got, c.mirrors)
			}
		}
	}
}

// TestPlacementZeroHalo: no candidates, no mirrors, shares are exact area
// fractions — the disjoint grid router's behavior.
func TestPlacementZeroHalo(t *testing.T) {
	p := NewPlacement(geo.NewRect(0, 0, 100, 100), 4, 4, 0)
	for _, pt := range []geo.Point{geo.Pt(0, 0), geo.Pt(25, 25), geo.Pt(24.999, 50), geo.Pt(99, 99)} {
		if got := p.Mirrors(pt, p.Owner(pt), nil); len(got) != 0 {
			t.Fatalf("Mirrors(%v) = %v with zero halo", pt, got)
		}
	}
	for i := 0; i < p.NumRegions(); i++ {
		if got := p.HintShare(i); math.Abs(got-1.0/16) > 1e-12 {
			t.Fatalf("HintShare(%d) = %v, want 1/16", i, got)
		}
	}
}

// TestPlacementHintShare: with a halo, border shards size for their halo
// band; the corner region of a 2x2 grid over 100x100 with halo 10 grows
// to 60x60 clipped = 0.36 of the area.
func TestPlacementHintShare(t *testing.T) {
	p := NewPlacement(geo.NewRect(0, 0, 100, 100), 2, 2, 10)
	for i := 0; i < 4; i++ {
		if got := p.HintShare(i); math.Abs(got-0.36) > 1e-12 {
			t.Fatalf("HintShare(%d) = %v, want 0.36", i, got)
		}
	}
	// An interior region of a 3x3 grid grows on all four sides.
	p3 := NewPlacement(geo.NewRect(0, 0, 90, 90), 3, 3, 5)
	center := 4 // row 1, col 1
	want := (40.0 * 40.0) / (90.0 * 90.0)
	if got := p3.HintShare(center); math.Abs(got-want) > 1e-12 {
		t.Fatalf("center HintShare = %v, want %v", got, want)
	}
}

// TestHaloForWindow: the natural derivation and its degenerate guards.
func TestHaloForWindow(t *testing.T) {
	if got := HaloForWindow(5, 2); got != 10 {
		t.Fatalf("HaloForWindow(5,2) = %v, want 10", got)
	}
	if got := HaloForWindow(0, 2); got != 0 {
		t.Fatalf("HaloForWindow(0,2) = %v, want 0", got)
	}
	if got := HaloForWindow(5, -1); got != 0 {
		t.Fatalf("HaloForWindow(5,-1) = %v, want 0", got)
	}
}
