// Online topology changes — the migration executor behind adaptive
// sharding (package shard/rebalance holds the policy; this file the
// mechanism). Rebalance swaps the router onto a new Topology — typically
// one Split or Merge away from the current one — migrating the live
// population and keeping every externally visible contract intact:
//
//   - the merged event stream stays one continuous Seq-cursor space: the
//     old topology's retained events move into the successor state's
//     archive and gather() serves them below the new shards' logs;
//   - old admission receipts are invalidated, not aliased: every new
//     session starts its arena epoch above anything the old topology ever
//     issued, so a stale withdrawal fails ErrStaleHandle;
//   - durability continues through a WAL *checkpoint generation*: the
//     migration's re-admissions ARE the checkpoint (recovery replays them
//     into fresh sessions and needs nothing older), committed atomically
//     by a seal record in shard 0 — a crash anywhere before the seal
//     recovers the pre-migration state, after it the post-migration one.
//
// The migration itself is stop-the-world: Rebalance holds the topology
// write lock, so every admission, advance and read path waits (the
// Admitter answers BUSY instead of queueing). Build is non-destructive —
// the successor state is assembled beside the live one and installed by a
// single pointer swap, so any error aborts with the old state untouched.
package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ftoa/internal/geo"
)

// RebalanceInfo summarises one completed topology change.
type RebalanceInfo struct {
	// Version is the new topology epoch; From and To render the old and
	// new topologies (Topology.String).
	Version  uint64
	From, To string
	// Regions is the new region count.
	Regions int
	// MigratedWorkers and MigratedTasks count the live objects re-admitted
	// into the new sessions.
	MigratedWorkers, MigratedTasks int
	// WALGeneration is the checkpoint generation opened for the new
	// topology (0 without a WAL).
	WALGeneration uint64
}

// Topology returns the current region tree. The returned value is
// immutable; derive successors with Split/Merge and apply via Rebalance.
func (r *Router) Topology() *Topology { return r.state().topo }

// TopologyVersion returns the current topology epoch (1 at construction,
// +1 per completed Rebalance).
func (r *Router) TopologyVersion() uint64 { return r.state().version }

// Rebalances returns how many topology changes have completed.
func (r *Router) Rebalances() uint64 { return r.rebalances.Load() }

// Migrating reports whether a Rebalance is in flight (admission fronts
// answer BUSY while it is).
func (r *Router) Migrating() bool { return r.migrating.Load() }

// SampleRates folds each shard's owner-admission count into its
// arrival-rate EWMA (Stats.ArrivalRate) against the time constant tau
// (seconds; tau <= 0 tracks the instantaneous rate). now must come from a
// monotone clock shared by successive calls; samples at non-increasing
// now are baselined, not folded. The first call after construction or
// after a Rebalance only baselines the counters, so migration re-admissions
// never read as an arrival burst.
func (r *Router) SampleRates(now, tau float64) {
	ts := r.state()
	for _, si := range ts.shards {
		si.mu.Lock()
		count := si.sess.AdmittedWorkers() + si.sess.AdmittedTasks() - si.halo.ghostW - si.halo.ghostT
		if !si.rateInit || now <= si.rateAt {
			si.rateInit = true
			si.rateCount, si.rateAt = count, now
			si.mu.Unlock()
			continue
		}
		dt := now - si.rateAt
		inst := float64(count-si.rateCount) / dt
		alpha := 1.0
		if tau > 0 {
			alpha = 1 - math.Exp(-dt/tau)
		}
		si.rateEWMA += alpha * (inst - si.rateEWMA)
		si.rateCount, si.rateAt = count, now
		si.mu.Unlock()
	}
}

// migrant is one live object leaving an old session, keyed for the
// deterministic re-admission order.
type migrant struct {
	ad        admission
	fromShard int
	fromLocal int
}

// Rebalance migrates the router onto topo (same base grid, different
// split structure) and returns what moved. See the package comment above
// for the contracts; on error the router is unchanged (a WAL checkpoint
// generation opened by a failed attempt remains on disk unsealed and is
// skipped by recovery).
func (r *Router) Rebalance(topo *Topology) (*RebalanceInfo, error) {
	if topo == nil {
		return nil, errors.New("shard: nil topology")
	}
	r.migrating.Store(true)
	defer r.migrating.Store(false)
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	old := r.state()
	if topo.BaseCols() != old.topo.BaseCols() || topo.BaseRows() != old.topo.BaseRows() {
		return nil, fmt.Errorf("shard: rebalance base %dx%d does not match router base %dx%d",
			topo.BaseCols(), topo.BaseRows(), old.topo.BaseCols(), old.topo.BaseRows())
	}
	if topo.Equal(old.topo) {
		return nil, errors.New("shard: rebalance to the current topology")
	}

	// Quiesce: settle every pending cross-shard retraction and drain every
	// session's event tail into the shard logs, so the old state is fully
	// sequenced before it is archived.
	for _, si := range old.shards {
		si.mu.Lock()
		si.drainPendingLocked()
		si.collectLocked(r)
		si.mu.Unlock()
	}
	r.applyPending(old)

	// The new sessions' epoch floor: above every receipt the old topology
	// ever issued. The old max clock is what the new sessions advance to.
	epochFloor := uint64(1)
	maxClock := math.Inf(-1)
	for _, si := range old.shards {
		si.mu.Lock()
		if e := si.sess.Epoch(); e >= epochFloor {
			epochFloor = e + 1
		}
		if now := si.sess.Now(); now > maxClock {
			maxClock = now
		}
		si.mu.Unlock()
	}

	// Archive the old topology's retained events below the successor's
	// cursor space (gather serves archive + live logs as one stream).
	archive := make([]Event, 0, len(old.archive))
	archive = append(archive, old.archive...)
	for _, si := range old.shards {
		si.mu.Lock()
		archive = append(archive, si.log...)
		si.mu.Unlock()
	}
	sort.Slice(archive, func(i, j int) bool { return archive[i].Seq < archive[j].Seq })
	if ev := r.evicted.Load(); ev > 0 {
		cut := sort.Search(len(archive), func(i int) bool { return archive[i].Seq >= ev })
		archive = archive[cut:]
	}

	ns, err := r.buildState(topo, old.version+1, archive)
	if err != nil {
		return nil, err
	}

	// Open the checkpoint generation before any re-admission so the whole
	// migration records into it; until the seal is durable the generation
	// is invisible to recovery, which makes every failure below a clean
	// abort back to the old state.
	info := &RebalanceInfo{
		Version: ns.version,
		From:    old.topo.String(),
		To:      topo.String(),
		Regions: len(ns.shards),
	}
	newSet := r.walSet
	if r.walSet != nil {
		r.walSet.Flush()
		gen := r.walAttempt + 1
		hm := r.headerMetaFor(ns, gen, genCheckpoint, epochFloor, r.seq.Load())
		newSet, err = r.openWALSet(ns, hm)
		if err != nil {
			return nil, err
		}
		for i, si := range ns.shards {
			si.wal = &shardWAL{log: newSet.Log(i)}
		}
		info.WALGeneration = gen
	}
	abort := func(err error) (*RebalanceInfo, error) {
		if newSet != nil && newSet != r.walSet {
			newSet.Close()
		}
		return nil, err
	}

	for _, si := range ns.shards {
		si.sess.SetEpochFloor(epochFloor)
	}

	// Enumerate the migrants: owner copies (ghosts are re-derived from the
	// new placement) of objects whose lifecycle can still affect matching.
	// expiryFired marks AssumeGuide objects living past an already-emitted
	// deadline, so the new session does not emit it again.
	var migs []migrant
	for _, osi := range old.shards {
		osi.mu.Lock()
		now := osi.sess.Now()
		for h := 0; h < osi.sess.NumWorkers(); h++ {
			if rec := refAt(osi.halo.wRef, h); rec != nil && int(rec.owner) != osi.id {
				continue
			}
			if !osi.sess.WorkerLive(h) {
				continue
			}
			w := *osi.sess.Worker(h)
			migs = append(migs, migrant{
				ad:        admission{w: w, migrated: true, expiryFired: w.Deadline() <= now},
				fromShard: osi.id,
				fromLocal: h,
			})
		}
		for h := 0; h < osi.sess.NumTasks(); h++ {
			if rec := refAt(osi.halo.tRef, h); rec != nil && int(rec.owner) != osi.id {
				continue
			}
			if !osi.sess.TaskLive(h) {
				continue
			}
			t := *osi.sess.Task(h)
			migs = append(migs, migrant{
				ad:        admission{task: true, t: t, migrated: true, expiryFired: t.Deadline() < now},
				fromShard: osi.id,
				fromLocal: h,
			})
		}
		osi.mu.Unlock()
	}
	// Deterministic re-admission order: arrival time, then workers before
	// tasks, then old identity. The stored times are the old owners'
	// clamped stamps, so the new sessions (clock at -inf until the advance
	// below) re-stamp every object at exactly its original time.
	sort.Slice(migs, func(i, j int) bool {
		a, b := &migs[i], &migs[j]
		if at, bt := a.ad.time(), b.ad.time(); at != bt {
			return at < bt
		}
		if a.ad.task != b.ad.task {
			return !a.ad.task
		}
		if a.fromShard != b.fromShard {
			return a.fromShard < b.fromShard
		}
		return a.fromLocal < b.fromLocal
	})

	var mbuf []int
	for i := range migs {
		ad := &migs[i].ad
		owner := ns.placement.Owner(ad.loc())
		var err error
		if r.haloOn {
			if mbuf = ns.placement.Mirrors(ad.loc(), owner, mbuf[:0]); len(mbuf) > 0 {
				_, _, _, err = r.addMirrored(ns, owner, mbuf, ad)
			} else {
				_, _, _, err = r.admitOwner(ns, owner, nil, ad)
			}
		} else {
			_, _, _, err = r.admitOwner(ns, owner, nil, ad)
		}
		if err != nil {
			return abort(fmt.Errorf("shard: migrating object into region %d: %w", owner, err))
		}
		if ad.task {
			info.MigratedTasks++
		} else {
			info.MigratedWorkers++
		}
	}
	r.applyPending(ns)

	// Advance the new sessions to the old topology's max clock. No expiry
	// this fires is new: a migrated object with deadline <= its old shard's
	// clock was either dead (not migrated) or expiry-suppressed, and one
	// with a deadline inside the old shards' clock skew would have fired at
	// the old topology's next advance at the same event time.
	if !math.IsInf(maxClock, -1) {
		for _, si := range ns.shards {
			si.mu.Lock()
			si.drainPendingLocked()
			si.sess.Advance(maxClock)
			si.afterWriteLocked(r)
			if si.wal != nil {
				si.wal.opAdvance(maxClock)
			}
			si.mu.Unlock()
		}
		r.applyPending(ns)
	}

	// Seed the new regions' arrival-rate EWMA from the old regions by area
	// overlap, so the rebalance policy keeps a demand signal across the
	// swap instead of restarting blind. Counters re-baseline at the next
	// SampleRates (rateInit is false on fresh instances).
	oldRates := make([]float64, len(old.shards))
	for i, si := range old.shards {
		si.mu.Lock()
		oldRates[i] = si.rateEWMA
		si.mu.Unlock()
	}
	for j, si := range ns.shards {
		nr := ns.placement.Region(j)
		rate := 0.0
		for i := range old.shards {
			or := old.placement.Region(i)
			if ov := overlapArea(nr, or); ov > 0 {
				rate += oldRates[i] * ov / (or.Width() * or.Height())
			}
		}
		si.rateEWMA = rate
	}

	// Commit. The seal makes the checkpoint generation visible to
	// recovery; a flush failure leaves it unsealed (recovery then yields
	// the pre-migration state) and surfaces via WALErr — the live router
	// swaps regardless, preferring availability, like every WAL error.
	if newSet != nil && newSet != r.walSet {
		if err := newSet.Flush(); err == nil {
			newSet.Log(0).Append(encodeSeal(ns.version))
			newSet.Log(0).Flush()
		}
		r.walSet.Close()
		r.walSet = newSet
	}
	r.top.Store(ns)
	r.rebalances.Add(1)
	return info, nil
}

// overlapArea returns the intersection area of two rectangles.
func overlapArea(a, b geo.Rect) float64 {
	w := math.Min(a.MaxX, b.MaxX) - math.Max(a.MinX, b.MinX)
	h := math.Min(a.MaxY, b.MaxY) - math.Max(a.MinY, b.MinY)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}
