// Package rebalance is the policy layer over shard.Router's online
// topology changes: a supervisor that watches per-region demand — the
// router's arrival-rate EWMAs, optionally maxed with a caller-supplied
// forecast — and decides when to split a hot region into a finer
// sub-grid or merge cold sibling quads back. The mechanism (quiescing,
// migrating live state, the WAL topology-epoch chain) lives in the
// shard package; this package only picks the next topology and calls
// Router.Rebalance.
//
// The policy is deliberately conservative and deterministic given a
// demand trace:
//
//   - at most one topology change per Tick, then a cooldown, so the
//     system observes the effect of each change before the next;
//   - a region splits only when its demand strictly exceeds SplitRate,
//     so a workload that never crosses the threshold provably never
//     triggers a change — the property the uniform-load parity gate in
//     CI leans on (adaptive == static, bit-identical);
//   - sibling quads merge only when their combined demand is strictly
//     below MergeRate, which must sit well under SplitRate: the gap is
//     the hysteresis band that keeps a region from flapping between
//     split and merged as demand hovers near one threshold.
package rebalance

import (
	"errors"
	"fmt"

	"ftoa/internal/geo"
	"ftoa/internal/shard"
)

// Config are the supervisor's policy knobs.
type Config struct {
	// SplitRate is the per-region arrival rate (admissions per second,
	// workers and tasks combined) above which a region is split. Must be
	// positive: splitting cannot be disabled, only priced out of reach.
	SplitRate float64
	// MergeRate is the combined arrival rate of four sibling leaf
	// regions below which they merge back into their parent. Zero
	// disables merging; positive values must stay below SplitRate/4 so
	// a freshly merged region (which inherits roughly the sum of its
	// children's demand) cannot immediately re-qualify for a split.
	MergeRate float64
	// MaxDepth caps how many times one base cell may be quartered.
	// Non-positive or out-of-range values clamp to shard.MaxSplitDepth.
	MaxDepth int
	// Cooldown is the minimum time, in workload seconds, between two
	// topology changes. Demand keeps being sampled during cooldown.
	Cooldown float64
	// Tau is the EWMA time constant, in workload seconds, handed to
	// Router.SampleRates. Larger values smooth harder and react slower;
	// non-positive makes every sample instantaneous (no smoothing).
	Tau float64
	// Forecast, when non-nil, predicts the near-term arrival rate for a
	// region; per-region demand is max(measured EWMA, forecast), so a
	// predictor (e.g. predict.HPMSI fed by the matched-rate history) can
	// split ahead of a rush the EWMA has not caught up with yet. It is
	// called once per region per Tick and must be side-effect free.
	Forecast func(region geo.Rect, now float64) float64
}

// Supervisor drives one Router's topology from its demand signal. It is
// not safe for concurrent use: call Tick from a single goroutine (the
// server's tick loop), like Advance.
type Supervisor struct {
	r   *shard.Router
	cfg Config

	changed    bool    // at least one topology change so far
	lastChange float64 // workload time of the last change

	stats  []shard.Stats // reused across ticks
	demand []float64
}

// New validates cfg and returns a supervisor over r.
func New(r *shard.Router, cfg Config) (*Supervisor, error) {
	if r == nil {
		return nil, errors.New("rebalance: nil router")
	}
	if cfg.SplitRate <= 0 {
		return nil, errors.New("rebalance: SplitRate must be positive")
	}
	if cfg.MergeRate < 0 {
		return nil, errors.New("rebalance: MergeRate must be non-negative")
	}
	if cfg.MergeRate > 0 && cfg.MergeRate*4 > cfg.SplitRate {
		return nil, fmt.Errorf("rebalance: MergeRate %g too close to SplitRate %g (need MergeRate <= SplitRate/4 for hysteresis)",
			cfg.MergeRate, cfg.SplitRate)
	}
	if cfg.Cooldown < 0 {
		return nil, errors.New("rebalance: Cooldown must be non-negative")
	}
	if cfg.MaxDepth <= 0 || cfg.MaxDepth > shard.MaxSplitDepth {
		cfg.MaxDepth = shard.MaxSplitDepth
	}
	return &Supervisor{r: r, cfg: cfg}, nil
}

// Changes reports how many topology changes this supervisor has made.
func (s *Supervisor) Changes() uint64 { return s.r.Rebalances() }

// Tick samples demand and applies at most one topology change. It
// returns the change's RebalanceInfo, or (nil, nil) when the topology
// was left alone — the overwhelmingly common outcome. now is workload
// time on the same clock the router is advanced with.
func (s *Supervisor) Tick(now float64) (*shard.RebalanceInfo, error) {
	// Sample first, unconditionally: the EWMAs must keep tracking demand
	// through cooldown windows or they would see one huge interval (and
	// one diluted rate) when the cooldown expires.
	s.r.SampleRates(now, s.cfg.Tau)
	if s.changed && now-s.lastChange < s.cfg.Cooldown {
		return nil, nil
	}

	topo := s.r.Topology()
	s.stats = s.r.StatsAll(s.stats[:0])
	if len(s.stats) != topo.NumRegions() {
		// A concurrent Rebalance swapped the topology between the two
		// snapshot reads. Only happens when someone else also drives
		// Rebalance; skip the tick rather than mis-index.
		return nil, nil
	}
	rects := topo.Regions(s.r.Placement().Bounds())

	s.demand = s.demand[:0]
	for i := range s.stats {
		d := s.stats[i].ArrivalRate
		if s.cfg.Forecast != nil {
			d = max(d, s.cfg.Forecast(rects[i], now))
		}
		s.demand = append(s.demand, d)
	}

	// Split the hottest eligible region, if any is over threshold.
	hot, hotDemand := -1, s.cfg.SplitRate
	for i, d := range s.demand {
		if d > hotDemand && topo.Depth(i) < s.cfg.MaxDepth {
			hot, hotDemand = i, d
		}
	}
	if hot >= 0 {
		nt, err := topo.Split(hot)
		if err != nil {
			return nil, err
		}
		return s.apply(nt, now)
	}

	// Otherwise merge the coldest sibling quad under the floor, if any.
	if s.cfg.MergeRate <= 0 {
		return nil, nil
	}
	cold, coldDemand := -1, s.cfg.MergeRate
	for _, quad := range topo.MergeableQuads() {
		sum := s.demand[quad[0]] + s.demand[quad[1]] + s.demand[quad[2]] + s.demand[quad[3]]
		if sum < coldDemand {
			cold, coldDemand = quad[0], sum
		}
	}
	if cold >= 0 {
		nt, err := topo.Merge(cold)
		if err != nil {
			return nil, err
		}
		return s.apply(nt, now)
	}
	return nil, nil
}

func (s *Supervisor) apply(nt *shard.Topology, now float64) (*shard.RebalanceInfo, error) {
	info, err := s.r.Rebalance(nt)
	if err != nil {
		return nil, err
	}
	s.changed, s.lastChange = true, now
	return info, nil
}
