package rebalance

import (
	"testing"

	"ftoa/internal/core"
	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/shard"
	"ftoa/internal/sim"
)

func testRouter(t *testing.T) *shard.Router {
	t.Helper()
	r, err := shard.NewRouter(shard.Config{
		Matcher:      sim.MatcherConfig{Mode: sim.Strict, Velocity: 1, Bounds: geo.NewRect(0, 0, 100, 100)},
		Cols:         2,
		Rows:         2,
		NewAlgorithm: func() sim.Algorithm { return core.NewSimpleGreedy() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// admitInto admits n long-lived workers spread across a region's
// rectangle at time at. Workers alone never match, so admission counts
// translate into arrival rate and nothing else.
func admitInto(t *testing.T, r *shard.Router, rect geo.Rect, n int, at float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		fx := (0.5 + float64(i%7)) / 7
		fy := (0.5 + float64(i/7%7)) / 7
		w := model.Worker{
			ID:       i,
			Loc:      geo.Point{X: rect.MinX + fx*rect.Width(), Y: rect.MinY + fy*rect.Height()},
			Arrive:   at,
			Patience: 1e6,
		}
		if _, _, err := r.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
}

func regionRect(r *shard.Router, i int) geo.Rect {
	return r.Topology().Regions(r.Placement().Bounds())[i]
}

func mustTick(t *testing.T, s *Supervisor, now float64) *shard.RebalanceInfo {
	t.Helper()
	info, err := s.Tick(now)
	if err != nil {
		t.Fatalf("Tick(%g): %v", now, err)
	}
	return info
}

func TestNewValidation(t *testing.T) {
	r := testRouter(t)
	if _, err := New(nil, Config{SplitRate: 1}); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := New(r, Config{SplitRate: 0}); err == nil {
		t.Error("zero SplitRate accepted")
	}
	if _, err := New(r, Config{SplitRate: 10, MergeRate: -1}); err == nil {
		t.Error("negative MergeRate accepted")
	}
	if _, err := New(r, Config{SplitRate: 10, MergeRate: 3}); err == nil {
		t.Error("MergeRate inside the hysteresis band accepted")
	}
	if _, err := New(r, Config{SplitRate: 10, Cooldown: -1}); err == nil {
		t.Error("negative Cooldown accepted")
	}
	if s, err := New(r, Config{SplitRate: 10, MergeRate: 2.5}); err != nil || s == nil {
		t.Errorf("boundary MergeRate == SplitRate/4 rejected: %v", err)
	}
}

// TestUniformLoadNeverChanges is the parity guarantee the CI smoke test
// leans on: demand below SplitRate on every region, tick after tick,
// provably never triggers a topology change — so an adaptive server under
// uniform load behaves bit-identically to a static one.
func TestUniformLoadNeverChanges(t *testing.T) {
	r := testRouter(t)
	s, err := New(r, Config{SplitRate: 1000, MergeRate: 10, Tau: 0, Cooldown: 0})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= 10; tick++ {
		now := float64(tick)
		for region := 0; region < 4; region++ {
			admitInto(t, r, regionRect(r, region), 5, now)
		}
		if info := mustTick(t, s, now); info != nil {
			t.Fatalf("tick %d changed the topology: %+v", tick, info)
		}
	}
	if s.Changes() != 0 || r.TopologyVersion() != 1 {
		t.Fatalf("uniform load changed topology: %d changes, v%d", s.Changes(), r.TopologyVersion())
	}
}

// TestSplitsHottestRegion: demand over SplitRate splits the hottest
// region, the cooldown blocks an immediate follow-up, and MaxDepth makes
// an over-threshold child ineligible for further refinement.
func TestSplitsHottestRegion(t *testing.T) {
	r := testRouter(t)
	s, err := New(r, Config{SplitRate: 5, Tau: 0, Cooldown: 50, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info := mustTick(t, s, 0); info != nil {
		t.Fatalf("baseline tick changed topology: %+v", info)
	}
	admitInto(t, r, regionRect(r, 0), 20, 0.5)
	admitInto(t, r, regionRect(r, 3), 8, 0.5)
	info := mustTick(t, s, 1)
	if info == nil || info.From != "2x2" || info.To != "2x2+3" || info.Regions != 7 {
		t.Fatalf("hot region did not split: %+v", info)
	}
	// Region 0 (rate 20) must have been chosen over region 3 (rate 8):
	// its children sit at depth 1, old cell 3 (now region 6) stays flat.
	if r.Topology().Depth(0) != 1 || r.Topology().Depth(6) != 0 {
		t.Fatalf("wrong region split: %s", r.Topology())
	}

	// Inside the cooldown nothing changes, however hot it gets.
	admitInto(t, r, regionRect(r, 0), 100, 1.5)
	if info := mustTick(t, s, 2); info != nil {
		t.Fatalf("cooldown violated: %+v", info)
	}
	// After the cooldown the hot region is a depth-1 child: MaxDepth 1
	// makes it ineligible, so the topology holds.
	admitInto(t, r, regionRect(r, 0), 400, 59)
	if info := mustTick(t, s, 60); info != nil {
		t.Fatalf("split past MaxDepth: %+v", info)
	}
	if s.Changes() != 1 {
		t.Fatalf("changes = %d, want 1", s.Changes())
	}
}

// TestMergesColdQuad: once a split region's demand dies away, its sibling
// quad merges back and the topology returns to the base grid.
func TestMergesColdQuad(t *testing.T) {
	r := testRouter(t)
	s, err := New(r, Config{SplitRate: 100, MergeRate: 1, Tau: 0, Cooldown: 0})
	if err != nil {
		t.Fatal(err)
	}
	mustTick(t, s, 0)
	admitInto(t, r, regionRect(r, 0), 200, 0.5)
	if info := mustTick(t, s, 1); info == nil {
		t.Fatal("hot region did not split")
	}
	// The children inherit the parent's demand by area overlap (50 each),
	// well inside the hysteresis band: neither split nor merge fires.
	if info := mustTick(t, s, 2); info != nil {
		t.Fatalf("seeded demand flapped the topology: %+v", info)
	}
	// With no arrivals the next sample zeroes the children's rates and
	// the quad merges back.
	info := mustTick(t, s, 3)
	if info == nil || info.To != "2x2" || info.Version != 3 {
		t.Fatalf("cold quad did not merge: %+v", info)
	}
	if !r.Topology().Uniform() || s.Changes() != 2 {
		t.Fatalf("topology %s after %d changes", r.Topology(), s.Changes())
	}
	// Back at the base grid there is nothing left to merge.
	if info := mustTick(t, s, 4); info != nil {
		t.Fatalf("merged below the base grid: %+v", info)
	}
}

// TestForecastDrivesSplit: a forecast above SplitRate splits a region the
// measured EWMA still sees as idle — the split-ahead-of-the-rush path.
func TestForecastDrivesSplit(t *testing.T) {
	r := testRouter(t)
	forecast := func(region geo.Rect, now float64) float64 {
		if region.MinX <= 80 && 80 < region.MaxX && region.MinY <= 80 && 80 < region.MaxY {
			return 50 // a rush is coming to (80,80): base cell 3
		}
		return 0
	}
	s, err := New(r, Config{SplitRate: 5, Tau: 0, Cooldown: 0, Forecast: forecast})
	if err != nil {
		t.Fatal(err)
	}
	info := mustTick(t, s, 0)
	if info == nil || info.To != "2x2+3" {
		t.Fatalf("forecast did not trigger a split: %+v", info)
	}
	// Cell 3's children are regions 3..6; the untouched cells stay flat.
	topo := r.Topology()
	if topo.Depth(0) != 0 || topo.Depth(3) != 1 || topo.Depth(6) != 1 {
		t.Fatalf("forecast split the wrong region: %s", topo)
	}
}
