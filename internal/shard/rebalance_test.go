package shard

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"ftoa/internal/faultfs"
	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/shard/wal"
	"ftoa/internal/sim"
)

// eventsFrom reads the merged stream from since to the cursor.
func eventsFrom(t *testing.T, r *Router, since uint64) []Event {
	t.Helper()
	evs, _, err := r.Events(since, nil)
	if err != nil {
		t.Fatalf("Events(%d): %v", since, err)
	}
	return evs
}

// expectTailParity is expectParity for routers whose retained windows may
// start at different cursors (a checkpoint recovery evicts everything
// below its sequence base): the comparison starts at the later boundary.
func expectTailParity(t *testing.T, got, want *Router, label string) {
	t.Helper()
	since := got.OldestCursor()
	if w := want.OldestCursor(); w > since {
		since = w
	}
	ge, we := eventsFrom(t, got, since), eventsFrom(t, want, since)
	if len(ge) != len(we) {
		t.Fatalf("%s: %d events from %d, want %d", label, len(ge), since, len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, ge[i], we[i])
		}
	}
	gs, ws := got.StatsAll(nil), want.StatsAll(nil)
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats diverge:\n got %+v\nwant %+v", label, gs, ws)
	}
	if got.Cursor() != want.Cursor() {
		t.Fatalf("%s: cursor %d, want %d", label, got.Cursor(), want.Cursor())
	}
	if got.TopologyVersion() != want.TopologyVersion() || !got.Topology().Equal(want.Topology()) {
		t.Fatalf("%s: topology %s v%d, want %s v%d", label,
			got.Topology(), got.TopologyVersion(), want.Topology(), want.TopologyVersion())
	}
}

func TestRebalanceValidation(t *testing.T) {
	r, err := NewRouter(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rebalance(nil); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := r.Rebalance(NewUniformTopology(3, 2)); err == nil {
		t.Error("base-grid mismatch accepted")
	}
	if _, err := r.Rebalance(NewUniformTopology(2, 2)); err == nil {
		t.Error("rebalance to the current topology accepted")
	}
	if r.TopologyVersion() != 1 || r.Rebalances() != 0 {
		t.Fatalf("failed attempts mutated the router: v%d, %d rebalances", r.TopologyVersion(), r.Rebalances())
	}
}

// TestRebalanceSplitMigratesLiveState walks one split end to end on a
// hand-built population and checks every migration contract directly:
// concluded lifecycles stay archived under their original sequence
// numbers, live objects move to the owning child region with original
// deadlines intact, old receipts die ErrStaleHandle, and migrated objects
// keep matching.
func TestRebalanceSplitMigratesLiveState(t *testing.T) {
	r, err := NewRouter(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// A matched pair (concluded before the split), a long-lived unmatched
	// worker, and a worker that expires at t=10 — all in base cell 0.
	if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: 0, Patience: 100}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(10, 11), Release: 0, Expiry: 100}); err != nil {
		t.Fatal(err)
	}
	hB, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(30, 30), Arrive: 0, Patience: 50})
	if err != nil {
		t.Fatal(err)
	}
	epoch := r.state().shards[hB.Shard].sess.Epoch()
	if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 40), Arrive: 0, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	r.Advance(5)
	pre := allEvents(t, r)
	if len(pre) != 1 || pre[0].Kind != sim.EventMatch {
		t.Fatalf("setup events = %+v, want exactly one match", pre)
	}

	nt := mustSplit(t, r.Topology(), 0)
	info, err := r.Rebalance(nt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Regions != 7 || info.From != "2x2" || info.To != "2x2+3" {
		t.Fatalf("info = %+v", info)
	}
	// The matched pair is concluded and must not move; the two live
	// unmatched workers must.
	if info.MigratedWorkers != 2 || info.MigratedTasks != 0 {
		t.Fatalf("migrated %d workers + %d tasks, want 2 + 0", info.MigratedWorkers, info.MigratedTasks)
	}
	if r.TopologyVersion() != 2 || r.Rebalances() != 1 || r.Migrating() {
		t.Fatalf("post-rebalance: v%d, %d rebalances, migrating=%v", r.TopologyVersion(), r.Rebalances(), r.Migrating())
	}
	if r.NumShards() != 7 {
		t.Fatalf("NumShards = %d, want 7", r.NumShards())
	}
	// The archived stream is untouched: same events, same seqs.
	if got := allEvents(t, r); !reflect.DeepEqual(got, pre) {
		t.Fatalf("migration disturbed the event stream:\n got %+v\nwant %+v", got, pre)
	}
	// Receipts issued under the old topology are invalidated, not aliased.
	if _, err := r.WithdrawWorker(hB, epoch); err != ErrStaleHandle {
		t.Fatalf("old receipt: err = %v, want ErrStaleHandle", err)
	}

	// The short-lived worker at (10,40) now lives in base cell 0's NW
	// child (region 2) and must expire there at its original deadline.
	r.Advance(10)
	evs := allEvents(t, r)
	if len(evs) != 2 {
		t.Fatalf("after advance: events = %+v", evs)
	}
	exp := evs[1]
	if exp.Kind != sim.EventWorkerExpired || exp.Time != 10 || exp.Shard != 2 {
		t.Fatalf("expiry = %+v, want worker expiry at t=10 in region 2", exp)
	}
	// The long-lived migrant still matches: a task next to it (NE child,
	// region 3) pairs immediately.
	if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(30, 31), Release: 10, Expiry: 50}); err != nil {
		t.Fatal(err)
	}
	evs = allEvents(t, r)
	last := evs[len(evs)-1]
	if len(evs) != 3 || last.Kind != sim.EventMatch || last.Shard != 3 {
		t.Fatalf("migrated worker did not match: events = %+v", evs)
	}
	if st := r.ShardStats(3); st.Matches != 1 {
		t.Fatalf("region 3 stats = %+v, want 1 match", st)
	}
}

// TestRebalanceMergeRoundTrip: split under load, keep serving, merge back,
// and require the merged event stream to stay one dense, append-only
// cursor space across both topology changes.
func TestRebalanceMergeRoundTrip(t *testing.T) {
	cfg := walTestConfig(2, 2, 12, nil)
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := genWalOps(300, 23)
	applyWalOps(t, r, ops[:120])
	pre := allEvents(t, r)

	if _, err := r.Rebalance(mustSplit(t, r.Topology(), 1)); err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, r, ops[120:240])
	mid := allEvents(t, r)
	if len(mid) < len(pre) || !reflect.DeepEqual(mid[:len(pre)], pre) {
		t.Fatal("split lost or reordered archived events")
	}

	quads := r.Topology().MergeableQuads()
	if len(quads) != 1 {
		t.Fatalf("MergeableQuads = %v", quads)
	}
	info, err := r.Rebalance(mustMerge(t, r.Topology(), quads[0][0]))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 || !r.Topology().Equal(NewUniformTopology(2, 2)) {
		t.Fatalf("merge info = %+v, topology %s", info, r.Topology())
	}
	applyWalOps(t, r, ops[240:])
	r.Finish()

	final := allEvents(t, r)
	if len(final) < len(mid) || !reflect.DeepEqual(final[:len(mid)], mid) {
		t.Fatal("merge lost or reordered archived events")
	}
	for i, ev := range final {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: the merged cursor space tore", i, ev.Seq)
		}
	}
	if cur := r.Cursor(); cur != uint64(len(final)) {
		t.Fatalf("cursor = %d, want %d", cur, len(final))
	}
	if r.Rebalances() != 2 {
		t.Fatalf("rebalances = %d, want 2", r.Rebalances())
	}
}

// TestSampleRates: the EWMA tracks owner admissions per second — first
// sample baselines, tau<=0 is instantaneous, non-advancing clocks
// re-baseline without folding, and tau>0 applies 1-exp(-dt/tau).
func TestSampleRates(t *testing.T) {
	r, err := NewRouter(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rate := func() float64 { return r.ShardStats(0).ArrivalRate }
	admit := func(n int, at float64) {
		t.Helper()
		for i := 0; i < n; i++ {
			// Spread far apart so nothing matches and counts stay pure.
			if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(float64(i%10)*10+1, math.Floor(float64(i)/10)*30+1), Arrive: at, Patience: 1e6}); err != nil {
				t.Fatal(err)
			}
		}
	}
	admit(5, 0)
	r.SampleRates(10, 0)
	if got := rate(); got != 0 {
		t.Fatalf("first sample folded: rate = %g, want 0 (baseline only)", got)
	}
	admit(10, 10)
	r.SampleRates(12, 0)
	if got := rate(); got != 5 {
		t.Fatalf("instantaneous rate = %g, want 10/2", got)
	}
	// A non-advancing clock must not divide by zero or decay the estimate.
	r.SampleRates(12, 0)
	r.SampleRates(11, 0)
	if got := rate(); got != 5 {
		t.Fatalf("rate after stalled clock = %g, want 5", got)
	}
	admit(4, 11)
	r.SampleRates(13, 2)
	alpha := 1 - math.Exp(-1)
	want := 5 + alpha*(2-5)
	if got := rate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("smoothed rate = %g, want %g", got, want)
	}
}

// TestRebalanceRecoveryParity is the durability acceptance gate for
// topology changes: a WAL that witnessed a split (and later a merge) must
// recover to a bit-identical post-rebalance router after a clean
// shutdown — same topology version, same stats, same event tail, same
// cursor — and keep recording correctly afterwards.
func TestRebalanceRecoveryParity(t *testing.T) {
	fs := faultfs.New()
	cfg := walTestConfig(2, 2, 12, fs)
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := genWalOps(300, 42)
	applyWalOps(t, r, ops[:150])
	info, err := r.Rebalance(mustSplit(t, r.Topology(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if info.WALGeneration != 2 {
		t.Fatalf("checkpoint generation = %d, want 2", info.WALGeneration)
	}
	applyWalOps(t, r, ops[150:220])
	if err := r.WALClose(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	rec, rinfo, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rinfo.Recovered || rinfo.TopologyVersion != 2 || rinfo.Topology != "2x2+3" {
		t.Fatalf("recovery info = %+v", rinfo)
	}
	if rinfo.SkippedGenerations != 1 {
		t.Fatalf("skipped generations = %d, want 1 (the pre-split chain)", rinfo.SkippedGenerations)
	}
	expectTailParity(t, rec, r, "after split recovery")

	// Both continue; the recovered router records generation 3.
	applyWalOps(t, rec, ops[220:260])
	applyWalOps(t, r, ops[220:260])
	expectTailParity(t, rec, r, "split continuation")

	// Merge back on the recovered router and recover once more: the chain
	// now ends at the merge's checkpoint.
	quads := rec.Topology().MergeableQuads()
	if _, err := rec.Rebalance(mustMerge(t, rec.Topology(), quads[0][0])); err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, rec, ops[260:])
	rec.Finish()
	if err := rec.WALErr(); err != nil {
		t.Fatal(err)
	}
	if err := rec.WALClose(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	rec2, rinfo2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo2.TopologyVersion != 3 || rinfo2.Topology != "2x2" {
		t.Fatalf("post-merge recovery info = %+v", rinfo2)
	}
	expectTailParity(t, rec2, rec, "after merge recovery")
	rec2.WALClose()
}

// TestRebalanceCrashSweep is the fault-injection gate for topology-epoch
// records: record a run with a split in the middle, then truncate the
// checkpoint generation's segments at every frame boundary (plus torn
// mid-frame cuts) and boot from each image. Recovery must always land in
// one of exactly two states — the complete pre-migration router while the
// seal is not durable, or a per-shard event prefix of the post-migration
// router once it is. Cutting the PRE-migration generation under an intact
// checkpoint must change nothing at all: the checkpoint needs no history.
func TestRebalanceCrashSweep(t *testing.T) {
	cfg := walTestConfig(2, 2, 12, faultfs.New())
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := genWalOps(200, 99)
	applyWalOps(t, r, ops[:120])
	preEvents := allEvents(t, r)
	preStats := r.StatsAll(nil)
	seqBase := r.Cursor()
	if _, err := r.Rebalance(mustSplit(t, r.Topology(), 0)); err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, r, ops[120:])
	if err := r.WALClose(); err != nil {
		t.Fatal(err)
	}

	oldShards, newShards := 4, r.NumShards()
	if newShards != 7 {
		t.Fatalf("post-split shards = %d", newShards)
	}
	fullStats := r.StatsAll(nil)
	fullCursor := r.Cursor()
	postByShard := make(map[int][]Event)
	for _, ev := range eventsFrom(t, r, seqBase) {
		postByShard[ev.Shard] = append(postByShard[ev.Shard], ev)
	}

	ffs := cfg.WAL.FS.(*faultfs.FS)
	name := func(shard int, gen uint64) string { return fmt.Sprintf("wal/s%03d-g%06d.wal", shard, gen) }
	g1 := make([][]byte, oldShards)
	for s := range g1 {
		g1[s] = ffs.Durable(name(s, 1))
	}
	g2 := make([][]byte, newShards)
	for s := range g2 {
		g2[s] = ffs.Durable(name(s, 2))
		if len(g2[s]) == 0 {
			t.Fatalf("checkpoint shard %d wrote no durable bytes", s)
		}
	}
	// The seal record sits mid-file in shard 0's checkpoint segment (the
	// post-migration ops follow it); the migration is committed once the
	// cut keeps the whole seal frame.
	sealEnd := -1
	sealBounds := frameBoundaries(g2[0])
	for k := 1; k < len(sealBounds); k++ {
		if g2[0][sealBounds[k-1]+8] == recSeal {
			sealEnd = sealBounds[k]
			break
		}
	}
	if sealEnd < 0 {
		t.Fatal("no seal record found in shard 0's checkpoint segment")
	}

	boot := func(t *testing.T, cutShard, cut int, cutGen uint64) (*Router, *RecoveryInfo) {
		t.Helper()
		fs := faultfs.New()
		for s := 0; s < oldShards; s++ {
			img := g1[s]
			if cutGen == 1 && s == cutShard {
				img = img[:cut]
			}
			fs.SetFile(name(s, 1), img)
		}
		for s := 0; s < newShards; s++ {
			img := g2[s]
			if cutGen == 2 && s == cutShard {
				img = img[:cut]
			}
			fs.SetFile(name(s, 2), img)
		}
		c := cfg
		c.WAL = &wal.Options{Dir: "wal", Policy: wal.SyncAlways, FS: fs}
		rec, info, err := Recover(c)
		if err != nil {
			t.Fatalf("shard %d gen %d cut %d: Recover: %v", cutShard, cutGen, cut, err)
		}
		return rec, info
	}

	expectPreMigration := func(t *testing.T, rec *Router, info *RecoveryInfo, label string) {
		t.Helper()
		if info.TopologyVersion != 1 || rec.NumShards() != oldShards {
			t.Fatalf("%s: recovered v%d with %d shards, want the pre-migration router", label, info.TopologyVersion, rec.NumShards())
		}
		got := allEvents(t, rec)
		if !reflect.DeepEqual(got, preEvents) {
			t.Fatalf("%s: %d events, want the full pre-migration stream (%d)", label, len(got), len(preEvents))
		}
		if gs := rec.StatsAll(nil); !reflect.DeepEqual(gs, preStats) {
			t.Fatalf("%s: stats diverge from pre-migration snapshot:\n got %+v\nwant %+v", label, gs, preStats)
		}
	}

	expectPostPrefix := func(t *testing.T, rec *Router, info *RecoveryInfo, cutShard int, label string) {
		t.Helper()
		if info.TopologyVersion != 2 || rec.NumShards() != newShards {
			t.Fatalf("%s: recovered v%d with %d shards, want the post-migration router", label, info.TopologyVersion, rec.NumShards())
		}
		if oc := rec.OldestCursor(); oc != seqBase {
			t.Fatalf("%s: oldest cursor = %d, want the checkpoint base %d", label, oc, seqBase)
		}
		recByShard := make(map[int][]Event)
		for _, ev := range eventsFrom(t, rec, seqBase) {
			recByShard[ev.Shard] = append(recByShard[ev.Shard], ev)
		}
		for o := 0; o < newShards; o++ {
			got, want := recByShard[o], postByShard[o]
			if o != cutShard && len(got) != len(want) {
				t.Fatalf("%s: untouched shard %d has %d events, want %d", label, o, len(got), len(want))
			}
			if len(got) > len(want) {
				t.Fatalf("%s: shard %d has %d events, full run had %d", label, o, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: shard %d event %d = %+v, want %+v", label, o, i, got[i], want[i])
				}
			}
		}
	}

	// Sweep the checkpoint generation.
	cuts := 0
	for s := 0; s < newShards; s++ {
		bounds := frameBoundaries(g2[s])
		for _, cut := range bounds {
			rec, info := boot(t, s, cut, 2)
			label := fmt.Sprintf("g2 shard %d cut %d", s, cut)
			if s == 0 && cut < sealEnd {
				expectPreMigration(t, rec, info, label)
			} else {
				expectPostPrefix(t, rec, info, s, label)
			}
			// Whatever state it landed in, it serves.
			if _, _, err := rec.AddWorker(model.Worker{Loc: geo.Pt(50, 50), Patience: 5}); err != nil {
				t.Fatalf("%s: post-recovery admission: %v", label, err)
			}
			rec.WALClose()
			cuts++
		}
		// Torn mid-frame cuts ride the same two-state contract.
		for k := 1; k < len(bounds); k += len(bounds)/4 + 1 {
			mid := (bounds[k-1] + bounds[k]) / 2
			if mid <= bounds[k-1] {
				continue
			}
			rec, info := boot(t, s, mid, 2)
			label := fmt.Sprintf("g2 shard %d torn cut %d", s, mid)
			if s == 0 && mid < sealEnd {
				// The torn generation is unsealed and skipped whole, so its
				// dropped tail is never even counted.
				expectPreMigration(t, rec, info, label)
			} else {
				if info.TornBytes == 0 {
					t.Fatalf("%s: no torn bytes reported", label)
				}
				expectPostPrefix(t, rec, info, s, label)
			}
			rec.WALClose()
			cuts++
		}
	}

	// Cutting the superseded generation under an intact seal is harmless:
	// the checkpoint carries the complete post-migration state.
	for s := 0; s < oldShards; s++ {
		bounds := frameBoundaries(g1[s])
		for _, cut := range []int{0, bounds[len(bounds)/2], bounds[len(bounds)-1]} {
			rec, info := boot(t, s, cut, 1)
			label := fmt.Sprintf("g1 shard %d cut %d", s, cut)
			expectPostPrefix(t, rec, info, -1, label)
			if gs := rec.StatsAll(nil); !reflect.DeepEqual(gs, fullStats) {
				t.Fatalf("%s: stats diverge from the full run", label)
			}
			if rec.Cursor() != fullCursor {
				t.Fatalf("%s: cursor = %d, want %d", label, rec.Cursor(), fullCursor)
			}
			rec.WALClose()
			cuts++
		}
	}
	t.Logf("swept %d crash points across %d+%d shard segments", cuts, oldShards, newShards)
}
