package shard

import "sync/atomic"

// Shared retention-window arithmetic. Every bounded history in the
// serving layer — the router's per-shard event logs and the MatchLog's
// per-shard match buffers — evicts with the same policy: let the log
// overshoot its retention target by 50%, then drop back down to exactly
// the target in one batch, so eviction is an O(1) amortized copy per
// append instead of an O(retention) memmove on every append once full.
// This file is the single home of that policy (it used to be copy-pasted
// between the router and ftoa-serve's match view, guarded only by
// cross-referenced comments).

// retainDrop returns how many leading entries to evict from a log of
// length n under a retention target, per the batching policy above: 0
// until the log exceeds retention by 50%, then n-retention. A
// non-positive retention keeps everything.
func retainDrop(n, retention int) int {
	if retention <= 0 || n <= retention+retention/2 {
		return 0
	}
	return n - retention
}

// raiseBoundary lifts a shared eviction boundary to at least b
// (monotonic max under concurrent raisers).
func raiseBoundary(bound *atomic.Uint64, b uint64) {
	for {
		cur := bound.Load()
		if b <= cur || bound.CompareAndSwap(cur, b) {
			return
		}
	}
}
