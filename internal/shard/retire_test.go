package shard

import (
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
)

// retirableGreedy is greedyAlg plus a Remap hook. It stores no handles —
// every scan walks the platform fresh — so the hook has nothing to
// rewrite; it exists to satisfy sim.RetirableAlgorithm.
type retirableGreedy struct{ greedyAlg }

func (a *retirableGreedy) Remap(workers, tasks []int32) {}

func testRetireConfig(cols, rows int, every float64) Config {
	cfg := testConfig(cols, rows)
	cfg.NewAlgorithm = func() sim.Algorithm { return &retirableGreedy{} }
	cfg.RetireInterval = every
	return cfg
}

func TestNewRouterValidatesRetirement(t *testing.T) {
	bad := testConfig(1, 1) // greedyAlg has no Remap hook
	bad.RetireInterval = 5
	if _, err := NewRouter(bad); err == nil {
		t.Error("RetireInterval accepted with a non-retirable algorithm")
	}
	bad = testRetireConfig(1, 1, -1)
	if _, err := NewRouter(bad); err == nil {
		t.Error("negative RetireInterval accepted")
	}
}

// TestRouterScheduledRetirement: with RetireInterval set, a shard's
// arenas stay bounded by the live population while the lifetime stats
// keep counting, and the merged event stream is unaffected.
func TestRouterScheduledRetirement(t *testing.T) {
	r, err := NewRouter(testRetireConfig(2, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	clock := 0.0
	// 20 waves of short-lived workers/tasks on the left shard; every
	// wave is one deadline window, every interval boundary a retirement.
	for wave := 0; wave < 20; wave++ {
		for i := 0; i < 5; i++ {
			if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 50), Arrive: clock, Patience: 2}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(10, 50), Release: clock, Expiry: 2}); err != nil {
				t.Fatal(err)
			}
		}
		clock += 5
		r.Advance(clock)
	}
	st := r.ShardStats(0)
	if st.Workers != 100 || st.Tasks != 100 {
		t.Fatalf("lifetime admissions %d/%d, want 100/100", st.Workers, st.Tasks)
	}
	if st.LiveWorkers+st.LiveTasks > 20 {
		t.Fatalf("live arenas %d+%d after 20 retired waves, want bounded by one wave",
			st.LiveWorkers, st.LiveTasks)
	}
	if st.Matches == 0 || st.Matches+st.ExpiredWorkers == 0 {
		t.Fatalf("degenerate soak: stats %+v", st)
	}
	// The right shard saw nothing and stayed empty but healthy.
	if st1 := r.ShardStats(1); st1.Workers != 0 || st1.LiveWorkers != 0 {
		t.Fatalf("idle shard stats %+v", st1)
	}
	// The merged stream still accounts for every lifecycle event:
	// matches + worker expiries == 100 admitted workers.
	evs, _, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	matches, wexp := 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case sim.EventMatch:
			matches++
		case sim.EventWorkerExpired:
			wexp++
		}
	}
	if matches != st.Matches || matches+wexp != 100 {
		t.Fatalf("stream has %d matches / %d worker expiries; stats say %d matches over 100 workers",
			matches, wexp, st.Matches)
	}
}

// TestRouterManualRetire: Router.Retire compacts on demand and reports
// the dropped totals.
func TestRouterManualRetire(t *testing.T) {
	r, err := NewRouter(testRetireConfig(2, 2, 0)) // schedule disabled
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// One lonely worker per region; all expire at 1.
		x, y := float64(25+50*(i%2)), float64(25+50*(i/2))
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(x, y), Arrive: 0, Patience: 1}); err != nil {
			t.Fatal(err)
		}
	}
	r.Advance(10)
	if w, tk := r.Retire(10); w != 4 || tk != 0 {
		t.Fatalf("Retire dropped %d/%d, want 4/0", w, tk)
	}
	for i := 0; i < r.NumShards(); i++ {
		if st := r.ShardStats(i); st.LiveWorkers != 0 || st.Workers != 1 {
			t.Fatalf("shard %d stats %+v after manual retire", i, st)
		}
	}
}
