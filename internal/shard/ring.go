// Batched MPSC admission: the concurrency front-end of the wire protocol
// (ROADMAP item 5). Producers — wire connections, typically — enqueue
// decoded arrivals into a bounded lock-free ring per shard WITHOUT touching
// the shard lock; each shard has exactly one drainer goroutine that pulls a
// batch, stable-sorts it by arrival timestamp, and admits the whole run
// under a single lock acquisition. Admission semantics are bit-identical to
// the per-call AddWorker/AddTask path: every admission in a drained run
// still executes the full per-admission tail (pending-withdrawal drain,
// session admit, epoch capture, event collection, scheduled retirement, WAL
// record) in order — only the lock handoffs between them are elided.
//
// Backpressure is explicit: when a shard's ring is full the enqueue refuses
// immediately (no blocking, no buffering) and the refusal is counted; the
// wire layer surfaces it as a BUSY reply with a retry-after hint. This
// bounds admission memory by ring capacity instead of connection count.
package shard

import (
	"sort"
	"sync"
	"sync/atomic"

	"ftoa/internal/model"
)

// AdmitResult is the outcome of one ring admission, written to the slot the
// producer registered before the WaitGroup is released. H and Epoch form
// the withdrawal receipt (withdraw.go); Admitted is the owner-stamped
// arrival time, as returned by Router.AddWorker.
type AdmitResult struct {
	H        Handle
	Admitted float64
	Epoch    uint64
	Err      error
}

// AdmitterConfig sizes an Admitter.
type AdmitterConfig struct {
	// Ring is the per-shard ring capacity (rounded up to a power of two).
	// Zero defaults to 1024. This is the backpressure knob: a full ring
	// refuses enqueues.
	Ring int
	// Batch caps how many admissions one drainer pass admits per lock
	// acquisition. Zero defaults to 256. Larger batches amortize the lock
	// better but lengthen the window the shard is unavailable to Advance.
	Batch int
}

// Admitter is the batched admission front of a Router. One ring and one
// drainer goroutine per shard; AddWorker/AddTask are safe for concurrent
// use from any number of producers. Close must not race Add calls — the
// owner (the wire listener) stops its producers first.
type Admitter struct {
	r      *Router
	rings  []*admitRing
	wake   []chan struct{}
	batch  int
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	busy   []atomic.Uint64

	// onBatch, when set (tests), observes every drained batch after
	// sorting and before admission, from the drainer goroutine.
	onBatch func(shard int, ops []*admitOp)
}

// admitOp is one enqueued admission: the payload plus where to deliver the
// result. The producer registers res/wg before enqueueing; the drainer
// writes *res and releases wg exactly once.
type admitOp struct {
	ad  admission
	res *AdmitResult
	wg  *sync.WaitGroup
}

func (op *admitOp) finish(h Handle, admitted float64, epoch uint64, err error) {
	*op.res = AdmitResult{H: h, Admitted: admitted, Epoch: epoch, Err: err}
	op.wg.Done()
}

// NewAdmitter starts one drainer per shard of r. The caller owns the
// Admitter's lifecycle and must Close it (before closing the Router's WAL:
// ring-buffered admissions become durable only when drained).
func NewAdmitter(r *Router, cfg AdmitterConfig) *Admitter {
	ringSize := cfg.Ring
	if ringSize <= 0 {
		ringSize = 1024
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	n := r.NumShards()
	a := &Admitter{
		r:     r,
		rings: make([]*admitRing, n),
		wake:  make([]chan struct{}, n),
		batch: batch,
		stop:  make(chan struct{}),
		busy:  make([]atomic.Uint64, n),
	}
	for i := 0; i < n; i++ {
		a.rings[i] = newAdmitRing(ringSize)
		a.wake[i] = make(chan struct{}, 1)
	}
	a.wg.Add(n)
	for i := 0; i < n; i++ {
		go a.drainLoop(i)
	}
	return a
}

// AddWorker enqueues a worker admission for the shard owning its location.
// It returns true when accepted: the result will be written to *res and
// wg released once the shard's drainer admits it. False means refused —
// the target ring is full (backpressure; retry after a drain interval) or
// the Admitter is closed — and res/wg are untouched.
func (a *Admitter) AddWorker(w model.Worker, res *AdmitResult, wg *sync.WaitGroup) bool {
	return a.add(&admitOp{ad: admission{w: w}, res: res, wg: wg})
}

// AddTask enqueues a task admission; see AddWorker.
func (a *Admitter) AddTask(t model.Task, res *AdmitResult, wg *sync.WaitGroup) bool {
	return a.add(&admitOp{ad: admission{task: true, t: t}, res: res, wg: wg})
}

func (a *Admitter) add(op *admitOp) bool {
	if a.closed.Load() {
		return false
	}
	// During a topology migration admissions would only queue behind the
	// rebalance write lock; refuse immediately instead so producers get
	// the BUSY + retry hint while the router is quiescing.
	if a.r.migrating.Load() {
		a.busy[a.r.ShardOf(op.ad.loc())%len(a.rings)].Add(1)
		return false
	}
	// The ring count is fixed at creation while the region count can grow
	// (Rebalance), so rings are lanes, not shards: a lane serializes the
	// regions that hash onto it and the drainer re-derives each op's owner
	// against the placement current at admission time. On a static
	// topology owner%lanes == owner, preserving the historical one
	// ring/one shard layout bit for bit.
	lane := a.r.ShardOf(op.ad.loc()) % len(a.rings)
	// The Add must precede publication: the drainer may finish the op (and
	// call wg.Done) the instant the slot is visible.
	op.wg.Add(1)
	if !a.rings[lane].enqueue(op) {
		op.wg.Done()
		a.busy[lane].Add(1)
		return false
	}
	select {
	case a.wake[lane] <- struct{}{}:
	default:
	}
	return true
}

// Busy returns how many enqueues shard has refused for a full ring.
func (a *Admitter) Busy(shard int) uint64 { return a.busy[shard].Load() }

// BusyTotal sums Busy over all shards.
func (a *Admitter) BusyTotal() uint64 {
	var n uint64
	for i := range a.busy {
		n += a.busy[i].Load()
	}
	return n
}

// Close drains every ring to empty and stops the drainers. Enqueues
// concurrent with Close are refused; the caller must have stopped its
// producers first (an op that slips past the closed check during Close may
// otherwise never be admitted nor refused).
func (a *Admitter) Close() {
	if a.closed.Swap(true) {
		return
	}
	close(a.stop)
	a.wg.Wait()
}

// drainLoop is shard's single consumer: batch, sort, admit, repeat.
func (a *Admitter) drainLoop(shard int) {
	defer a.wg.Done()
	ring := a.rings[shard]
	batch := make([]*admitOp, 0, a.batch)
	var mbuf []int
	for {
		batch = batch[:0]
		for len(batch) < a.batch {
			op, ok := ring.dequeue()
			if !ok {
				break
			}
			batch = append(batch, op)
		}
		if len(batch) == 0 {
			select {
			case <-a.wake[shard]:
				continue
			case <-a.stop:
				// Final drain: everything enqueued before Close flipped the
				// flag still gets admitted (and, with a WAL, recorded).
				for {
					op, ok := ring.dequeue()
					if !ok {
						return
					}
					a.r.admitBatch(shard, []*admitOp{op}, &mbuf)
				}
			}
		}
		// Stable: equal timestamps keep enqueue (ring) order, so a single
		// producer replaying a trace admits in exactly trace order.
		sort.SliceStable(batch, func(i, j int) bool {
			return batch[i].ad.time() < batch[j].ad.time()
		})
		if a.onBatch != nil {
			a.onBatch(shard, batch)
		}
		a.r.admitBatch(shard, batch, &mbuf)
	}
}

// admitBatch admits one drained, timestamp-sorted batch from a ring lane.
// Each op's owner shard is re-derived against the placement current NOW —
// a Rebalance may have moved region boundaries since the op was enqueued
// to its lane, and only the current owner's session may admit it.
// Halo-mirrored (border) admissions go through the multi-shard addMirrored
// flow individually — mirroring locks neighbor shards and must not happen
// under the owner's lock; maximal same-owner interior runs between them
// are admitted under one lock acquisition.
func (r *Router) admitBatch(_ int, ops []*admitOp, mbuf *[]int) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	ts := r.state()
	i := 0
	for i < len(ops) {
		owner := ts.placement.Owner(ops[i].ad.loc())
		if r.haloOn {
			*mbuf = ts.placement.Mirrors(ops[i].ad.loc(), owner, (*mbuf)[:0])
			if len(*mbuf) > 0 {
				op := ops[i]
				h, admitted, epoch, err := r.addMirrored(ts, owner, *mbuf, &op.ad)
				op.finish(h, admitted, epoch, err)
				i++
				continue
			}
		}
		j := i + 1
		for j < len(ops) && ts.placement.Owner(ops[j].ad.loc()) == owner {
			if r.haloOn && len(ts.placement.Mirrors(ops[j].ad.loc(), owner, (*mbuf)[:0])) > 0 {
				break
			}
			j++
		}
		r.admitRun(ts, owner, ops[i:j])
		i = j
	}
}

// admitRun admits a run of interior admissions under one lock acquisition,
// preserving the full per-admission tail for each (see admitOwnerLocked).
func (r *Router) admitRun(ts *topoState, owner int, ops []*admitOp) {
	si := ts.shards[owner]
	func() {
		si.mu.Lock()
		defer si.mu.Unlock()
		for _, op := range ops {
			si.drainPendingLocked()
			h, admitted, epoch, err := si.admitOwnerLocked(r, nil, &op.ad)
			op.finish(h, admitted, epoch, err)
		}
	}()
	// Interior admissions can still settle mirrored counterparties (a
	// fresh worker matching a ghost task); retractions are applied after
	// the run, never under this shard's lock.
	r.applyPending(ts)
}

// --- bounded MPSC ring ------------------------------------------------

// admitRing is a bounded multi-producer single-consumer queue (Vyukov's
// array queue): each slot carries a sequence word that encodes whether it
// is free for the enqueuer (seq == pos) or ready for the dequeuer
// (seq == pos+1). Producers claim positions by CAS on enq; the single
// consumer advances deq without contention.
type admitRing struct {
	mask  uint64
	slots []ringSlot
	enq   atomic.Uint64
	deq   atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	op  *admitOp
}

func newAdmitRing(size int) *admitRing {
	// Minimum 2: with one slot the ready marker (pos+1) and the next
	// lap's free marker (pos+capacity) coincide and the seq protocol
	// cannot tell a full ring from an empty one.
	n := 2
	for n < size {
		n <<= 1
	}
	q := &admitRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// enqueue publishes op; false means the ring is full.
func (q *admitRing) enqueue(op *admitOp) bool {
	for {
		pos := q.enq.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				slot.op = op
				slot.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			// The slot still holds the entry from one lap ago: full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
		}
	}
}

// dequeue pops the oldest entry; single-consumer only.
func (q *admitRing) dequeue() (*admitOp, bool) {
	pos := q.deq.Load()
	slot := &q.slots[pos&q.mask]
	if slot.seq.Load() != pos+1 {
		return nil, false
	}
	op := slot.op
	slot.op = nil
	slot.seq.Store(pos + q.mask + 1)
	q.deq.Store(pos + 1)
	return op, true
}
