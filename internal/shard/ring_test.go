package shard

import (
	"sync"
	"testing"

	"ftoa/internal/faultfs"
	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// ringFeed pushes one trace arrival through the admitter, failing the test
// on a BUSY refusal (ring tests size their rings to never fill).
func ringFeed(t *testing.T, a *Admitter, ev model.Event, in *model.Instance, res *AdmitResult, wg *sync.WaitGroup) {
	t.Helper()
	var ok bool
	switch ev.Kind {
	case model.WorkerArrival:
		ok = a.AddWorker(in.Workers[ev.Index], res, wg)
	case model.TaskArrival:
		ok = a.AddTask(in.Tasks[ev.Index], res, wg)
	}
	if !ok {
		t.Fatal("admitter refused an enqueue (ring sized too small for test)")
	}
}

// TestAdmitterSingleShardParity: on a 1×1 grid, trace replay through the
// ring is bit-identical — events, sequence numbers, stats — to per-call
// admission of the same trace. A single producer's enqueue order is the
// trace order, and the drainer's stable timestamp sort preserves it, so
// the admission sequence (and everything downstream) must match exactly.
func TestAdmitterSingleShardParity(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 200, 200
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Router {
		r, err := NewRouter(Config{
			Matcher:      sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
			Cols:         1,
			Rows:         1,
			NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	direct, ringed := mk(), mk()
	events := in.Events()
	for _, ev := range events {
		switch ev.Kind {
		case model.WorkerArrival:
			if _, _, err := direct.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
		case model.TaskArrival:
			if _, _, err := direct.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
		}
	}

	adm := NewAdmitter(ringed, AdmitterConfig{Ring: 1024, Batch: 64})
	res := make([]AdmitResult, len(events))
	var wg sync.WaitGroup
	for i, ev := range events {
		ringFeed(t, adm, ev, in, &res[i], &wg)
	}
	wg.Wait()
	adm.Close()
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("ring admission %d: %v", i, res[i].Err)
		}
	}

	direct.Finish()
	ringed.Finish()
	expectParity(t, ringed, direct, "ring vs direct")
	if adm.BusyTotal() != 0 {
		t.Fatalf("BusyTotal = %d on an oversized ring", adm.BusyTotal())
	}
}

// TestAdmitterMultiShardParity: on a disjoint 2×2 grid with one producer,
// each shard's event stream through the ring matches per-call admission
// exactly, modulo the global sequence numbers (whose interleaving across
// concurrently draining shards is scheduling-dependent by design).
func TestAdmitterMultiShardParity(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 300, 300
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Router {
		r, err := NewRouter(Config{
			Matcher:      sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
			Cols:         2,
			Rows:         2,
			NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	direct, ringed := mk(), mk()
	events := in.Events()
	for _, ev := range events {
		switch ev.Kind {
		case model.WorkerArrival:
			if _, _, err := direct.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
		case model.TaskArrival:
			if _, _, err := direct.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
		}
	}
	adm := NewAdmitter(ringed, AdmitterConfig{Ring: 2048, Batch: 64})
	res := make([]AdmitResult, len(events))
	var wg sync.WaitGroup
	for i, ev := range events {
		ringFeed(t, adm, ev, in, &res[i], &wg)
	}
	wg.Wait()
	adm.Close()
	direct.Finish()
	ringed.Finish()

	perShard := func(r *Router) [][]Event {
		out := make([][]Event, r.NumShards())
		for _, ev := range allEvents(t, r) {
			ev.Seq = 0
			out[ev.Shard] = append(out[ev.Shard], ev)
		}
		return out
	}
	ds, rs := perShard(direct), perShard(ringed)
	for s := range ds {
		if len(ds[s]) != len(rs[s]) {
			t.Fatalf("shard %d: ring stream has %d events, direct %d", s, len(rs[s]), len(ds[s]))
		}
		for i := range ds[s] {
			if ds[s][i] != rs[s][i] {
				t.Fatalf("shard %d event %d: ring %+v, direct %+v", s, i, rs[s][i], ds[s][i])
			}
		}
	}
}

// TestAdmitterBatchesSorted: under many concurrent producers feeding
// out-of-order timestamps, every batch the drainers admit is sorted by
// arrival time. Run with -race, this is also the ring's publication-safety
// test.
func TestAdmitterBatchesSorted(t *testing.T) {
	r, err := NewRouter(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	batches := 0
	maxBatch := 0
	seen := 0
	adm := NewAdmitter(r, AdmitterConfig{Ring: 4096, Batch: 32})
	adm.onBatch = func(shard int, ops []*admitOp) {
		mu.Lock()
		defer mu.Unlock()
		batches++
		seen += len(ops)
		if len(ops) > maxBatch {
			maxBatch = len(ops)
		}
		for i := 1; i < len(ops); i++ {
			if ops[i-1].ad.time() > ops[i].ad.time() {
				t.Errorf("shard %d batch not time-sorted at %d: %v > %v",
					shard, i, ops[i-1].ad.time(), ops[i].ad.time())
				return
			}
		}
	}

	const producers = 8
	const perProducer = 400
	res := make([][]AdmitResult, producers)
	var wg sync.WaitGroup // admission completions
	var pw sync.WaitGroup // producer goroutines
	for p := 0; p < producers; p++ {
		res[p] = make([]AdmitResult, perProducer)
		pw.Add(1)
		go func(p int) {
			defer pw.Done()
			g := lcg(1000 + p)
			for i := 0; i < perProducer; i++ {
				w := model.Worker{
					ID:       p*perProducer + i,
					Loc:      geo.Point{X: g.f() * 100, Y: g.f() * 100},
					Arrive:   g.f() * 50, // deliberately unsorted
					Patience: 1000,
				}
				if !adm.AddWorker(w, &res[p][i], &wg) {
					t.Error("refused on an oversized ring")
					return
				}
			}
		}(p)
	}
	pw.Wait()
	wg.Wait()
	adm.Close()
	for p := range res {
		for i := range res[p] {
			if res[p][i].Err != nil {
				t.Fatalf("producer %d op %d: %v", p, i, res[p][i].Err)
			}
		}
	}
	if seen != producers*perProducer {
		t.Fatalf("drainers saw %d admissions, enqueued %d", seen, producers*perProducer)
	}
	total := 0
	for s := 0; s < r.NumShards(); s++ {
		total += r.ShardStats(s).Workers
	}
	if total != producers*perProducer {
		t.Fatalf("admitted %d workers, want %d", total, producers*perProducer)
	}
	t.Logf("batches=%d max=%d", batches, maxBatch)
}

// TestAdmitterBusy: a full ring refuses the enqueue immediately — no
// blocking — leaves res/wg untouched, and counts the refusal.
func TestAdmitterBusy(t *testing.T) {
	r, err := NewRouter(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	block := make(chan struct{})
	adm := NewAdmitter(r, AdmitterConfig{Ring: 1, Batch: 1})
	adm.onBatch = func(int, []*admitOp) {
		entered <- struct{}{}
		<-block
	}
	var wg sync.WaitGroup
	w := model.Worker{Loc: geo.Pt(50, 50), Patience: 100}
	res := make([]AdmitResult, 4)
	if !adm.AddWorker(w, &res[0], &wg) {
		t.Fatal("first enqueue refused")
	}
	<-entered // drainer holds op 0; the ring (capacity 2) is empty again
	if !adm.AddWorker(w, &res[1], &wg) || !adm.AddWorker(w, &res[2], &wg) {
		t.Fatal("enqueue refused with free slots")
	}
	if adm.AddWorker(w, &res[3], &wg) {
		t.Fatal("enqueue accepted on a full ring")
	}
	if adm.Busy(0) != 1 || adm.BusyTotal() != 1 {
		t.Fatalf("Busy = %d/%d, want 1/1", adm.Busy(0), adm.BusyTotal())
	}
	close(block)
	wg.Wait()
	adm.Close()
	for i := 0; i < 3; i++ {
		if res[i].Err != nil {
			t.Fatalf("accepted admission %d errored: %v", i, res[i].Err)
		}
	}
	if st := r.ShardStats(0); st.Workers != 3 {
		t.Fatalf("admitted %d workers, want 3 (the refused one must not land)", st.Workers)
	}
	// Closed admitter refuses without counting a ring-full.
	if adm.AddWorker(w, &res[3], &wg) {
		t.Fatal("enqueue accepted after Close")
	}
	if adm.BusyTotal() != 1 {
		t.Fatalf("post-close refusal counted as busy: %d", adm.BusyTotal())
	}
}

// TestAdmitterWALRecoveryParity: with halo mirroring, retirement, platform
// withdrawals and the ring all enabled, recovery from the WAL reproduces
// the live router bit-for-bit. The ring's drainer interleaving is
// scheduling-dependent, so the oracle is the live router itself — the WAL
// records the outcomes that actually happened, and replay must reproduce
// exactly those.
func TestAdmitterWALRecoveryParity(t *testing.T) {
	fs := faultfs.New()
	cfg := walTestConfig(2, 2, 12, fs)
	live, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adm := NewAdmitter(live, AdmitterConfig{Ring: 1024, Batch: 32})

	ops := genWalOps(500, 7)
	var wg sync.WaitGroup
	var receipts []struct {
		res  *AdmitResult
		task bool
	}
	flush := func() { wg.Wait() }
	for _, op := range ops {
		switch op.kind {
		case 'w':
			res := &AdmitResult{}
			if !adm.AddWorker(op.w, res, &wg) {
				t.Fatal("refused on an oversized ring")
			}
			receipts = append(receipts, struct {
				res  *AdmitResult
				task bool
			}{res, false})
		case 't':
			res := &AdmitResult{}
			if !adm.AddTask(op.t, res, &wg) {
				t.Fatal("refused on an oversized ring")
			}
			receipts = append(receipts, struct {
				res  *AdmitResult
				task bool
			}{res, true})
		case 'a':
			flush()
			live.Advance(op.now)
		case 'r':
			flush()
			live.Retire(op.horizon)
		}
		// Periodically withdraw an earlier receipt: live objects retract
		// (recording opWithdrawLocal), concluded or stale ones refuse.
		if len(receipts) > 0 && len(receipts)%17 == 0 {
			flush()
			rc := receipts[len(receipts)/2]
			if rc.res.Err == nil {
				var err error
				if rc.task {
					_, err = live.WithdrawTask(rc.res.H, rc.res.Epoch)
				} else {
					_, err = live.WithdrawWorker(rc.res.H, rc.res.Epoch)
				}
				if err != nil && err != ErrStaleHandle {
					t.Fatalf("withdraw: %v", err)
				}
			}
			receipts = receipts[:0]
		}
	}
	flush()
	adm.Close()
	if err := live.WALClose(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	rec, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered {
		t.Fatalf("info = %+v", info)
	}
	expectParity(t, rec, live, "recovered vs live (ring+halo+withdraw)")
	rec.WALClose()
}
