// Package shard serves one service area as a grid of independent matching
// sessions. The Router partitions the configured bounds into Cols×Rows
// regions, runs one sim.Session per region (each with its own algorithm
// instance, each single-writer behind its own lock), routes admissions to
// the region containing their location, and merges the per-shard lifecycle
// event streams into one globally ordered stream addressed by a `since`
// sequence cursor.
//
// This is the horizontal-scaling story of the serving layer: a session is
// deliberately single-goroutine (the algorithms' state is lock-free flat
// slices), so throughput grows by adding regions, not by contending one
// session. With a zero halo, regions are independent in the hyperlocal
// sense — a worker is only matched to tasks of its own region — which
// trades border matching quality for linear scalability. With a positive
// Config.Halo the router recovers that quality: region geometry becomes a
// Placement (owner region plus reachable neighbors), border admissions
// are mirrored as ghosts into the neighbor sessions they could feasibly
// match in, and a lock-free claim protocol guarantees each logical object
// commits in at most one session (see halo.go).
//
// The region set is no longer fixed at construction: Rebalance swaps in a
// new Topology — splitting a hot region into a finer sub-grid or merging
// cold siblings back — migrating the live population and continuing the
// merged cursor space (see rebalance.go). All routing state hangs off one
// atomically swapped topoState so every code path observes a consistent
// (placement, shards, archive) triple.
package shard

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/shard/wal"
	"ftoa/internal/sim"
)

// Config parameterises a Router.
type Config struct {
	// Matcher is the base session configuration. Bounds is the FULL
	// service area (it is partitioned into the shard grid); Velocity and
	// Mode apply to every shard; Hints are sized per shard by region area
	// share plus, with a halo, the expected ghost fraction of the halo
	// band around it (Placement.HintShare). OnEvent/OnMatch/OnRetire/
	// CommitGate must be nil: the router owns event consumption and the
	// retirement and arbitration hooks.
	Matcher sim.MatcherConfig
	// Cols, Rows shape the base shard grid. 1×1 is a valid single-shard
	// deployment and behaves exactly like one session behind one lock.
	// Rebalance refines the base grid online; the static layout is the
	// initial topology.
	Cols, Rows int
	// Halo, when positive, enables cross-shard border matching: an
	// admission within Halo (a distance) of a neighboring region is
	// mirrored into that region's session as a ghost, and ghost matches
	// are arbitrated by the claim protocol of halo.go so no object ever
	// commits twice. The natural width is Velocity × the workload's
	// deadline window (HaloForWindow); wider halos only add mirroring
	// cost, narrower ones recover less border quality. Zero keeps the
	// disjoint hyperlocal behavior.
	Halo float64
	// NewAlgorithm mints one algorithm instance per shard. Instances must
	// not share mutable state (a shared read-only Guide is fine).
	NewAlgorithm func() sim.Algorithm
	// OnEvent, when non-nil, is invoked synchronously for every sequenced
	// event, from inside the router call that produced it while the
	// owning shard's lock is held. Callbacks for different shards run
	// concurrently, so the handler must be safe for concurrent use, and
	// it must not call back into the Router (taking a lock the handler
	// also takes from a Router-calling path deadlocks). Unlike the
	// polled Events stream it is lossless under retention — the hook for
	// derived views that must not miss events. Shard ids passed to the
	// hook follow the CURRENT topology, so handlers indexing by shard
	// must size for Rebalance growth (MatchLog does).
	OnEvent func(Event)
	// Retention bounds the per-shard merged-event log: each shard keeps
	// at least its most recent Retention events; older ones are evicted
	// (in batches of Retention/2, so eviction is O(1) amortized per
	// event — see retain.go) and cursors pointing below the eviction
	// boundary fail with ErrEvicted. Zero keeps everything (replay
	// drivers, tests).
	Retention int
	// RetireInterval, when positive, schedules generational arena
	// retirement per shard: whenever a write (admission, Advance, Finish)
	// moves a shard's clock at least RetireInterval past its last
	// retirement, the shard — still under its own single-writer lock, so
	// retirement never blocks the other regions — drains its events into
	// the log and calls Session.Retire with the current clock, compacting
	// away matched and (in Strict mode) expired objects. This is what
	// bounds a long-lived router's memory by its live population instead
	// of its lifetime admissions. Requires an algorithm implementing
	// sim.RetirableAlgorithm (all of this repo's algorithms do); NewRouter
	// rejects the config otherwise. Zero disables retirement.
	RetireInterval float64
	// Broadcast sizes the shared event ring that Subscribe readers are
	// served from (see broadcast.go): the number of most recent events a
	// subscriber can lag behind the live head before its reads fall back
	// to the merge-on-read path. Zero means DefaultBroadcastCapacity.
	// The ring is a delivery accelerator only — it never affects which
	// events a subscriber observes, just how cheaply.
	Broadcast int
	// WAL, when non-nil, makes the router durable: every shard records its
	// admissions, withdrawals, arbitration outcomes and event sequencing to
	// an append-only per-shard log under WAL.Dir (see walhook.go), and
	// Recover rebuilds an equivalent router from those logs at boot.
	// NewRouter refuses a directory that already holds segments — recovery
	// over existing history must go through Recover. Topology changes open
	// a new checkpoint generation (see rebalance.go).
	WAL *wal.Options
}

// Handle names an object admitted through a Router: the shard that owns it
// plus the session-local handle within that shard. With RetireInterval
// set, Local is only stable until the owning shard's next retirement
// compacts the object away (which can only happen once it is matched or
// expired) — treat it as an admission receipt, not a durable key. A
// Rebalance invalidates every receipt issued under the old topology (the
// withdraw path reports them ErrStaleHandle).
type Handle struct {
	Shard int
	Local int
}

// Event is one lifecycle event in the merged stream: a shard-local
// sim.SessionEvent tagged with the shard that emitted it and a globally
// unique, strictly increasing sequence number. Merged order is Seq order,
// which is consistent with per-shard fire order (within a shard, Seq and
// Time are both non-decreasing; across shards only Seq is total).
//
// WorkerShard and TaskShard are the OWNER shards of the endpoints (-1 for
// the side an expiry does not involve). Without halo mirroring they
// always equal Shard and the handles are the emitting session's. With
// mirroring, a match may be committed by a session that only holds a
// ghost copy: the event still appears exactly once, with each mirrored
// endpoint rewritten to its home identity — the owner shard plus the
// admission receipt Handle.Local reported — so consumers can correlate
// matches with admissions regardless of which border session won.
type Event struct {
	Seq   uint64
	Shard int
	sim.SessionEvent
	WorkerShard int
	TaskShard   int
}

// Stats is a point-in-time snapshot of one shard. Workers/Tasks count
// lifetime admissions (monotone across retirements) — with halo mirroring
// these include ghost copies, broken out in GhostWorkers/GhostTasks;
// LiveWorkers/LiveTasks are the current arena populations — with
// retirement on, the gap between the two is the memory the shard has
// reclaimed. ExpiredWorkers/ExpiredTasks count only lifecycle-owning
// expiries: deadlines of ghost copies (reported by their owner shard) and
// of objects that matched elsewhere are excluded.
type Stats struct {
	Shard          int
	Bounds         geo.Rect
	Workers        int
	Tasks          int
	LiveWorkers    int
	LiveTasks      int
	Matches        int
	ExpiredWorkers int
	ExpiredTasks   int
	Attempted      int
	Rejected       int
	Now            float64

	// ArrivalRate is the shard's owner-admission rate EWMA in arrivals
	// per second, folded by Router.SampleRates (zero until sampled). It
	// is advisory — the rebalance supervisor's demand signal — and is
	// deliberately not WAL-recorded: a recovered router restarts it.
	ArrivalRate float64

	// Halo metrics; all zero with Halo disabled. GhostWorkers/GhostTasks
	// count mirrored copies admitted into this shard; WithdrawnWorkers/
	// WithdrawnTasks the copies retracted from it after their original
	// matched or expired elsewhere; ClaimsLost the commits this shard's
	// algorithm attempted but lost to cross-shard arbitration; and
	// BorderMatches the commits won here involving at least one mirrored
	// endpoint — the matches disjoint sharding would have missed.
	GhostWorkers     int
	GhostTasks       int
	WithdrawnWorkers int
	WithdrawnTasks   int
	ClaimsLost       int
	BorderMatches    int
}

// ErrEvicted is returned by Events when the cursor points below the
// retention boundary: the gap-free-delivery guarantee no longer holds
// from there, because at least one shard has dropped events at or above
// the cursor. The caller restarts from OldestCursor, accepting the gap.
var ErrEvicted = errors.New("shard: cursor below retention boundary")

// topoState is one topology epoch's complete routing state: the region
// tree, its placement geometry, the live shard set, and the events older
// topologies emitted. Every code path resolves the triple through one
// atomic load so placement, shard indexing and the cursor space can never
// be observed mid-swap. States are immutable once published — Rebalance
// builds the successor aside and swaps the pointer.
type topoState struct {
	version   uint64
	topo      *Topology
	placement *Placement
	shards    []*shardInstance
	// archive holds the events emitted under earlier topologies, Seq
	// ascending and pruned below the eviction boundary at each swap:
	// gather merges it below the live shard logs so event cursors stay
	// valid and gap-free across rebalances.
	archive []Event
}

// Router is a sharded multi-session serving surface; see the package
// comment. All methods are safe for concurrent use: admissions touch only
// the target shard's lock, so disjoint regions admit in parallel.
type Router struct {
	mode    sim.Mode
	haloOn  bool
	onEvent func(Event)
	// cfg is the validated construction config, retained because
	// Rebalance mints fresh sessions (and WAL generations) from it.
	cfg Config

	// topoMu serializes topology swaps against every routing entry point:
	// entry points that touch shard state take RLock (their mutual
	// exclusion stays the per-shard locks, so concurrency is unchanged —
	// an RLock is a handful of nanoseconds against the microsecond-scale
	// admission path), Rebalance takes Lock. top always points at the
	// current state; pure accessors load it without the lock.
	topoMu sync.RWMutex
	top    atomic.Pointer[topoState]

	// migrating is set for the duration of a Rebalance so admission rings
	// can answer BUSY immediately instead of queueing behind the write
	// lock; rebalances counts completed topology changes.
	migrating  atomic.Bool
	rebalances atomic.Uint64

	seq  atomic.Uint64 // next sequence number to assign
	gids atomic.Uint64 // next mirror-group id (halo.go)
	// bcast is the shared event ring behind Subscribe: collectLocked
	// publishes each sequenced batch into it so subscriber fan-out costs
	// O(events) instead of one merge-on-read per subscriber per poll.
	bcast *broadcast
	// evicted is the retention boundary: every event with Seq below it
	// MAY have been dropped from its shard log.
	evicted atomic.Uint64
	// walSet, when non-nil, owns the per-shard write-ahead logs
	// (walhook.go); each shard records through its own si.wal under its
	// single-writer lock. Guarded by topoMu (Rebalance swaps it).
	walSet *wal.Set
	// walAttempt is the highest generation ever opened, including aborted
	// checkpoint generations whose files remain on disk (recovery skips
	// them, but their names are taken). Guarded by topoMu.
	walAttempt uint64
}

// state returns the current topology state. Callers that mutate shard
// state must hold topoMu.RLock so the state cannot be swapped under them;
// pure snapshot readers (stats, cursors) may load it bare.
func (r *Router) state() *topoState { return r.top.Load() }

// shardInstance is one region's session plus its slice of the merged log
// and its half of the halo arbitration state (halo.go).
type shardInstance struct {
	id int
	// ts points back at the topology state this shard belongs to, so
	// cross-shard fan-out (claim retraction) resolves sibling shards of
	// the SAME epoch even while a successor state is being built.
	ts        *topoState
	mu        sync.Mutex
	sess      *sim.Session
	log       []Event
	scratch   []sim.SessionEvent
	retention int
	// retireEvery/lastRetire schedule arena retirement on the shard's
	// session clock; see Config.RetireInterval.
	retireEvery float64
	lastRetire  float64
	halo        haloState
	// Arrival-rate EWMA (Router.SampleRates): rateCount is the own
	// (non-ghost) admission count at the last sample, rateAt its sample
	// clock, rateEWMA the folded rate. Guarded by mu.
	rateEWMA  float64
	rateCount int
	rateAt    float64
	rateInit  bool
	// wal records this shard's operations and decisions (nil without a
	// WAL); rep is non-nil only while this shard's log replays during
	// Recover and redirects the decision hooks to the recorded outcomes.
	wal *shardWAL
	rep *shardReplay
}

// NewRouter validates cfg, partitions the bounds, and starts one session
// per region (running each algorithm's Init).
func NewRouter(cfg Config) (*Router, error) {
	r, err := newRouterShell(cfg)
	if err != nil {
		return nil, err
	}
	ts, err := r.buildState(NewUniformTopology(cfg.Cols, cfg.Rows), 1, nil)
	if err != nil {
		return nil, err
	}
	r.top.Store(ts)
	if cfg.WAL != nil {
		if err := r.attachFreshWAL(&cfg); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// newRouterShell validates cfg and returns a router with no topology
// state yet; NewRouter and Recover install the state.
func newRouterShell(cfg Config) (*Router, error) {
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("shard: non-positive grid %dx%d", cfg.Cols, cfg.Rows)
	}
	if cfg.NewAlgorithm == nil {
		return nil, errors.New("shard: nil NewAlgorithm")
	}
	if cfg.Matcher.OnEvent != nil || cfg.Matcher.OnMatch != nil {
		return nil, errors.New("shard: Matcher.OnEvent/OnMatch must be nil (the router consumes events)")
	}
	if cfg.Matcher.OnRetire != nil || cfg.Matcher.CommitGate != nil {
		return nil, errors.New("shard: Matcher.OnRetire/CommitGate must be nil (the router owns both hooks)")
	}
	if cfg.Retention < 0 {
		return nil, fmt.Errorf("shard: negative retention %d", cfg.Retention)
	}
	if cfg.RetireInterval < 0 {
		return nil, fmt.Errorf("shard: negative retire interval %v", cfg.RetireInterval)
	}
	if cfg.Halo < 0 {
		return nil, fmt.Errorf("shard: negative halo %v", cfg.Halo)
	}
	if cfg.Broadcast < 0 {
		return nil, fmt.Errorf("shard: negative broadcast capacity %d", cfg.Broadcast)
	}
	// Validate the base config before geo.NewGrid sees the bounds:
	// degenerate bounds (zero-area, inverted) must surface as the same
	// clean error a plain Matcher would return, not a grid panic.
	if _, err := sim.NewMatcher(cfg.Matcher); err != nil {
		return nil, err
	}
	return &Router{
		mode:    cfg.Matcher.Mode,
		haloOn:  cfg.Halo > 0,
		onEvent: cfg.OnEvent,
		bcast:   newBroadcast(cfg.Broadcast),
		cfg:     cfg,
	}, nil
}

// buildState constructs the complete shard set of a topology: fresh
// sessions (each algorithm's Init run), halo tables when mirroring is on,
// no WAL attachment (the caller wires logs per generation). archive is
// adopted as the state's pre-topology event history.
func (r *Router) buildState(topo *Topology, version uint64, archive []Event) (*topoState, error) {
	cfg := &r.cfg
	placement := NewPlacementTopo(cfg.Matcher.Bounds, topo, cfg.Halo)
	n := placement.NumRegions()
	ts := &topoState{
		version:   version,
		topo:      topo,
		placement: placement,
		shards:    make([]*shardInstance, n),
		archive:   archive,
	}
	for i := 0; i < n; i++ {
		si := &shardInstance{
			id:          i,
			ts:          ts,
			retention:   cfg.Retention,
			retireEvery: cfg.RetireInterval,
		}
		mcfg := cfg.Matcher
		mcfg.Bounds = placement.Region(i)
		// Hints are sized by region area share plus the expected halo
		// fraction: border shards absorb mirrored admissions from the halo
		// band around their region, so with mirroring on, shares sum to
		// more than 1 by exactly the expected ghost traffic.
		mcfg.Hints.ExpectedWorkers = scaleHint(mcfg.Hints.ExpectedWorkers, placement.HintShare(i))
		mcfg.Hints.ExpectedTasks = scaleHint(mcfg.Hints.ExpectedTasks, placement.HintShare(i))
		if r.haloOn {
			mcfg.CommitGate = si.gate
			mcfg.OnRetire = si.onRetire
			si.halo.wByGid = make(map[uint64]int32)
			si.halo.tByGid = make(map[uint64]int32)
		}
		m, err := sim.NewMatcher(mcfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		alg := cfg.NewAlgorithm()
		if _, ok := alg.(sim.RetirableAlgorithm); cfg.RetireInterval > 0 && !ok {
			return nil, fmt.Errorf("shard: RetireInterval set but algorithm %q does not implement sim.RetirableAlgorithm", alg.Name())
		}
		si.sess = m.NewSession(alg)
		ts.shards[i] = si
	}
	return ts, nil
}

// scaleHint sizes a population hint to a shard's traffic share, rounding
// up so per-shard pre-sizing stays sufficient under skew.
func scaleHint(total int, share float64) int {
	if total <= 0 {
		return 0
	}
	return int(math.Ceil(float64(total) * share))
}

// NumShards returns the current number of regions.
func (r *Router) NumShards() int { return len(r.state().shards) }

// ShardOf returns the shard that owns location p (clamped to bounds, so
// out-of-area locations route to the nearest edge region) under the
// current topology.
func (r *Router) ShardOf(p geo.Point) int { return r.state().placement.Owner(p) }

// ShardBounds returns the region rectangle of shard i.
func (r *Router) ShardBounds(i int) geo.Rect { return r.state().placement.Region(i) }

// Placement returns the router's current region geometry (owner and
// halo-mirror resolution). The returned value is immutable and safe for
// concurrent use, but a Rebalance replaces it — re-read rather than cache
// across calls when topology changes are enabled.
func (r *Router) Placement() *Placement { return r.state().placement }

// AddWorker routes the worker to the shard owning its location and admits
// it there; only that shard's lock is taken on the interior fast path.
// With a halo configured, a border worker is additionally mirrored as a
// ghost into every reachable neighbor session (each under its own lock,
// never nested) so cross-border pairs become matchable; the returned
// Handle always names the owner copy. admitted is the arrival time the
// owner session stamped — w.Arrive clamped up to the shard clock — so
// callers report deadlines consistent with the shard's view even when
// concurrent admissions raced the clock forward.
func (r *Router) AddWorker(w model.Worker) (h Handle, admitted float64, err error) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	ts := r.state()
	ad := admission{w: w}
	owner := ts.placement.Owner(w.Loc)
	if r.haloOn {
		if mirrors := ts.placement.Mirrors(w.Loc, owner, nil); len(mirrors) > 0 {
			h, admitted, _, err = r.addMirrored(ts, owner, mirrors, &ad)
			return h, admitted, err
		}
	}
	h, admitted, _, err = r.admitOwner(ts, owner, nil, &ad)
	r.applyPending(ts)
	return h, admitted, err
}

// AddTask routes the task to the shard owning its location; see AddWorker
// for the locking, mirroring and admitted-time semantics.
func (r *Router) AddTask(t model.Task) (h Handle, admitted float64, err error) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	ts := r.state()
	ad := admission{task: true, t: t}
	owner := ts.placement.Owner(t.Loc)
	if r.haloOn {
		if mirrors := ts.placement.Mirrors(t.Loc, owner, nil); len(mirrors) > 0 {
			h, admitted, _, err = r.addMirrored(ts, owner, mirrors, &ad)
			return h, admitted, err
		}
	}
	h, admitted, _, err = r.admitOwner(ts, owner, nil, &ad)
	r.applyPending(ts)
	return h, admitted, err
}

// admission carries one side's pending admission so the owner/ghost flows
// are written once; task selects which object is live. A plain value (no
// closures) so the interior fast path stays allocation-free.
type admission struct {
	task bool
	w    model.Worker
	t    model.Task
	// migrated marks a rebalance re-admission; expiryFired additionally
	// records that the object's deadline expiry was already emitted under
	// the old topology (AssumeGuide keeps such objects live), so the new
	// session must not emit it again. Both replay through the WAL
	// admission flags (walcodec.go).
	migrated    bool
	expiryFired bool
}

// loc returns the live object's location; time its arrival timestamp (the
// sort key of batched ring admission, ring.go).
func (ad *admission) loc() geo.Point {
	if ad.task {
		return ad.t.Loc
	}
	return ad.w.Loc
}

func (ad *admission) time() float64 {
	if ad.task {
		return ad.t.Release
	}
	return ad.w.Arrive
}

// admit pushes the object into a session and returns its handle plus the
// arrival time the session stamped.
func (ad *admission) admit(s *sim.Session) (int, float64, error) {
	if ad.task {
		var h int
		var err error
		if ad.migrated {
			h, err = s.AddMigratedTask(ad.t, ad.expiryFired)
		} else {
			h, err = s.AddTask(ad.t)
		}
		if err != nil {
			return -1, 0, err
		}
		return h, s.Task(h).Release, nil
	}
	var h int
	var err error
	if ad.migrated {
		h, err = s.AddMigratedWorker(ad.w, ad.expiryFired)
	} else {
		h, err = s.AddWorker(ad.w)
	}
	if err != nil {
		return -1, 0, err
	}
	return h, s.Worker(h).Arrive, nil
}

// admitOwner admits the object into its owner shard. When rec is non-nil
// the object is halo-mirrored: its ref is registered BEFORE the session
// admission, because the algorithm may commit the object within the
// AddWorker/AddTask call itself and that commit must already pass through
// the claim gate. Handles are dense, so the about-to-be-assigned handle
// is the session's current count. The returned epoch is the owner
// session's arena epoch at admission — the receipt's validity window for
// WithdrawWorker/WithdrawTask (withdraw.go).
func (r *Router) admitOwner(ts *topoState, owner int, rec *mirror, ad *admission) (Handle, float64, uint64, error) {
	si := ts.shards[owner]
	si.mu.Lock()
	defer si.mu.Unlock()
	si.drainPendingLocked()
	return si.admitOwnerLocked(r, rec, ad)
}

// admitOwnerLocked is the owner-admission body shared by the per-call path
// above and the batched ring path (ring.go, admitRun), which amortizes one
// lock acquisition over a run of admissions. Callers hold si.mu and have
// drained pending withdrawals.
func (si *shardInstance) admitOwnerLocked(r *Router, rec *mirror, ad *admission) (Handle, float64, uint64, error) {
	var next int
	if rec != nil {
		if ad.task {
			next = si.sess.NumTasks()
			rec.ownerLocal = int32(next)
			si.putTask(next, rec)
		} else {
			next = si.sess.NumWorkers()
			rec.ownerLocal = int32(next)
			si.putWorker(next, rec)
		}
	}
	local, admitted, err := ad.admit(si.sess)
	if err != nil {
		if rec != nil {
			if ad.task {
				si.dropTask(next, rec)
			} else {
				si.dropWorker(next, rec)
			}
		}
		if si.wal != nil {
			si.wal.dropGroup()
		}
		return Handle{}, 0, 0, err
	}
	// Epoch read BEFORE afterWriteLocked: the admission may itself trigger
	// a scheduled retirement, which remaps arena handles — the receipt is
	// (handle, epoch-it-was-issued-in), and a same-call retirement must
	// invalidate it rather than leave it pointing at a remapped slot.
	epoch := si.sess.Epoch()
	si.afterWriteLocked(r)
	if si.wal != nil {
		// Recorded pre-clamp: replay re-admits the original values and the
		// session clamps them identically.
		si.wal.opAdmission(ad, rec, false)
	}
	return Handle{Shard: si.id, Local: local}, admitted, epoch, nil
}

// addMirrored is the border admission flow: owner first, then one ghost
// per reachable neighbor, each shard under its own lock only. A ghost is
// skipped (or immediately retracted) once the object's claim settled —
// e.g. the owner session matched it on arrival — so ghosts never outlive
// a decided object by more than the admission call that raced it.
func (r *Router) addMirrored(ts *topoState, owner int, mirrors []int, ad *admission) (Handle, float64, uint64, error) {
	rec := &mirror{
		gid:    r.gids.Add(1),
		task:   ad.task,
		owner:  int32(owner),
		copies: make([]int32, 0, len(mirrors)+1),
	}
	rec.copies = append(rec.copies, int32(owner))
	for _, m := range mirrors {
		rec.copies = append(rec.copies, int32(m))
	}
	h, admitted, epoch, err := r.admitOwner(ts, owner, rec, ad)
	if err != nil {
		return Handle{}, 0, 0, err
	}
	// The owner session's clamped arrival defines the logical object's
	// deadline; rebase the admission on it so every ghost copy is pinned
	// to the same window (admitGhostLocked preserves the deadline through
	// the ghost session's own clamping).
	if ad.task {
		ad.t.Release = admitted
	} else {
		ad.w.Arrive = admitted
	}
	for _, m := range mirrors {
		gi := ts.shards[m]
		gi.mu.Lock()
		gi.drainPendingLocked()
		if rec.settle() == claimFree {
			r.admitGhostLocked(gi, rec, ad)
		}
		gi.mu.Unlock()
	}
	r.applyPending(ts)
	return h, admitted, epoch, nil
}

// admitGhostLocked admits one ghost copy into a neighbor session. Callers
// hold gi.mu. After the admission (which may itself commit matches and
// retire arenas) the claim is re-checked: a claim that settled during the
// admission was enqueued against the pre-admission gid tables and may
// have missed the fresh copy, so the retraction is applied here.
//
// The copy's deadline is pinned to the logical object's: the ghost
// session clamps the arrival up to its own clock, which would otherwise
// extend Arrive+Patience (resp. Release+Expiry) past the owner-stamped
// deadline under shard clock skew — and let a Strict-mode session commit
// a cross-border match after the object's true window. The window is
// shrunk by the clamp delta instead; a copy whose window has already
// closed on this shard's clock is not admitted at all.
func (r *Router) admitGhostLocked(gi *shardInstance, rec *mirror, ad *admission) {
	gad := *ad
	now := gi.sess.Now() // stable: nothing below moves the clock before admit
	if gad.task {
		deadline := gad.t.Deadline()
		if start := math.Max(gad.t.Release, now); start <= deadline {
			gad.t.Expiry = deadline - start
		} else {
			return
		}
	} else {
		deadline := gad.w.Deadline()
		if start := math.Max(gad.w.Arrive, now); start <= deadline {
			gad.w.Patience = deadline - start
		} else {
			return
		}
	}
	// Ghost copies never emit lifecycle events of their own, so migrated
	// expiry suppression is owner-side only.
	gad.migrated, gad.expiryFired = false, false
	ad = &gad
	var next int
	if ad.task {
		next = gi.sess.NumTasks()
		gi.putTask(next, rec)
	} else {
		next = gi.sess.NumWorkers()
		gi.putWorker(next, rec)
	}
	if _, _, err := ad.admit(gi.sess); err != nil {
		if ad.task {
			gi.dropTask(next, rec)
		} else {
			gi.dropWorker(next, rec)
		}
		if gi.wal != nil {
			gi.wal.dropGroup()
		}
		return
	}
	if ad.task {
		gi.halo.ghostT++
	} else {
		gi.halo.ghostW++
	}
	gi.afterWriteLocked(r)
	if gi.wal != nil {
		// Ghosts record post-rebase, post-shrink values: the window clamp
		// above depends on the owner shard's stamped arrival, which this
		// shard's own log cannot reproduce.
		gi.wal.opAdmission(ad, rec, true)
	}
	if rec.settle() != claimFree {
		gi.applyWithdrawLocked(pendingWithdraw{gid: rec.gid, task: ad.task})
	}
}

// Advance drives every shard's clock to now (shard by shard, so a slow
// region never blocks admissions to the others), firing timers and
// expiries. Locks are released via defer so a panicking algorithm or
// OnEvent hook cannot wedge a shard's mutex.
func (r *Router) Advance(now float64) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	ts := r.state()
	for _, si := range ts.shards {
		func() {
			si.mu.Lock()
			defer si.mu.Unlock()
			si.drainPendingLocked()
			si.sess.Advance(now)
			si.afterWriteLocked(r)
			if si.wal != nil {
				si.wal.opAdvance(now)
			}
		}()
	}
	r.applyPending(ts)
}

// Finish finishes every shard's session; further admissions return
// sim.ErrFinished. Events (including the final expiry flush) remain
// readable. Cross-shard retractions raised by the final expiry flush are
// applied afterwards — on already-finished sessions they are inert, every
// deadline having fired, but they keep the halo tables tidy.
func (r *Router) Finish() {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	ts := r.state()
	for _, si := range ts.shards {
		func() {
			si.mu.Lock()
			defer si.mu.Unlock()
			si.drainPendingLocked()
			si.sess.Finish()
			si.collectLocked(r)
			if si.wal != nil {
				si.wal.opFinish()
			}
		}()
	}
	r.applyPending(ts)
}

// afterWriteLocked is the post-write tail of every mutating router call:
// drain and sequence new events, then run scheduled retirement. Callers
// hold si.mu.
func (si *shardInstance) afterWriteLocked(r *Router) {
	si.collectLocked(r)
	si.maybeRetireLocked()
}

// collectLocked drains the session's new lifecycle events into the shard
// log, assigning global sequence numbers, then compacts the session arena
// and applies retention (see retain.go for the shared eviction policy).
// Callers hold si.mu; sequence numbers within a shard are strictly
// increasing because assignment happens under the shard lock.
//
// This is also where halo arbitration surfaces in the stream: mirrored
// match endpoints are rewritten to their owner identities and the losing
// copies' retractions enqueued; expiry events of ghost copies — and of
// owners whose object matched elsewhere first — are dropped, so the
// merged stream reports each logical object's lifecycle exactly once.
func (si *shardInstance) collectLocked(r *Router) {
	si.scratch = si.sess.DrainEvents(si.scratch[:0])
	if len(si.scratch) == 0 {
		return
	}
	logged := len(si.log)
	for _, ev := range si.scratch {
		sev := Event{Shard: si.id, SessionEvent: ev, WorkerShard: -1, TaskShard: -1}
		switch ev.Kind {
		case sim.EventMatch:
			sev.WorkerShard, sev.TaskShard = si.id, si.id
			border := false
			// During replay retraction fan-out is suppressed: each shard's
			// log already carries the withdrawals it applied, at the
			// position it applied them.
			if rw := refAt(si.halo.wRef, ev.Worker); rw != nil {
				sev.WorkerShard = int(rw.owner)
				sev.Worker = int(rw.ownerLocal)
				if si.rep == nil {
					r.retractLosers(si.ts, rw, si.id)
				}
				border = true
			}
			if rt := refAt(si.halo.tRef, ev.Task); rt != nil {
				sev.TaskShard = int(rt.owner)
				sev.Task = int(rt.ownerLocal)
				if si.rep == nil {
					r.retractLosers(si.ts, rt, si.id)
				}
				border = true
			}
			if border {
				si.halo.borderMatches++
			}
		case sim.EventWorkerExpired:
			sev.WorkerShard = si.id
			if rw := refAt(si.halo.wRef, ev.Worker); rw != nil {
				if !si.ownerExpiryLocked(r, rw, &sev, false) {
					continue
				}
			}
		case sim.EventTaskExpired:
			sev.TaskShard = si.id
			if rt := refAt(si.halo.tRef, ev.Task); rt != nil {
				if !si.ownerExpiryLocked(r, rt, &sev, true) {
					continue
				}
			}
		}
		if si.rep != nil {
			sev.Seq = si.rep.popSeq()
		} else {
			sev.Seq = r.seq.Add(1) - 1
			if si.wal != nil {
				si.wal.recSeq(sev.Seq)
			}
		}
		si.log = append(si.log, sev)
		if r.onEvent != nil {
			r.onEvent(sev)
		}
	}
	si.sess.CompactEvents()
	// Publish the batch into the shared broadcast ring before retention
	// can touch it: the ring is fed once, here, at emission — subscriber
	// fan-out never re-merges the logs. With no subscribers this is one
	// atomic load. During WAL replay no subscriber can exist yet (the
	// router is still under construction), so replayed batches skip too.
	if batch := si.log[logged:]; len(batch) > 0 {
		r.bcast.publish(batch)
	}
	if drop := retainDrop(len(si.log), si.retention); drop > 0 {
		boundary := si.log[drop-1].Seq + 1
		n := copy(si.log, si.log[drop:])
		si.log = si.log[:n]
		raiseBoundary(&r.evicted, boundary)
	}
}

// ownerExpiryLocked arbitrates one mirrored object's expiry event and
// reports whether it should be emitted. Ghost-copy expiries never emit —
// the owner reports the object's real lifecycle. An owner expiry is
// matched against the claim word: in Strict mode it claims the object
// (permanently barring ghost commits — an expired object is gone) and, on
// winning, retracts every ghost; losing to a commit suppresses the expiry
// exactly when a single session would have (match-time-aware, per side's
// deadline boundary). In AssumeGuide mode expiries never bar later
// matches, mirroring single-session semantics, so the claim is only read.
func (si *shardInstance) ownerExpiryLocked(r *Router, rec *mirror, sev *Event, task bool) bool {
	if int(rec.owner) != si.id {
		// A ghost copy's deadline: the owner emits the real expiry.
		if task {
			si.halo.suppressedExpT++
		} else {
			si.halo.suppressedExpW++
		}
		return false
	}
	if task {
		sev.Task = int(rec.ownerLocal)
	} else {
		sev.Worker = int(rec.ownerLocal)
	}
	var outcome byte
	if si.rep != nil {
		// Replay: the recorded arbitration stands in for the claim race;
		// a winning Strict expiry reconstructs the claim word it won.
		outcome = si.rep.popExpiry()
		if outcome == expiryClaimed {
			rec.state.Store(claimExpired)
		}
	} else {
		outcome = si.ownerExpiryOutcome(r, rec, sev, task)
		if si.wal != nil {
			si.wal.recExpiry(outcome)
		}
	}
	if outcome == expirySuppressed {
		if task {
			si.halo.suppressedExpT++
		} else {
			si.halo.suppressedExpW++
		}
		return false
	}
	return true
}

// ownerExpiryOutcome is the live arbitration ownerExpiryLocked records.
func (si *shardInstance) ownerExpiryOutcome(r *Router, rec *mirror, sev *Event, task bool) byte {
	var state uint32
	if r.mode == sim.Strict {
		state = rec.claimExpiry()
		if state == claimExpired {
			r.retractLosers(si.ts, rec, si.id)
			return expiryClaimed
		}
	} else {
		state = rec.settle()
	}
	if state == claimMatched && matchSuppressesExpiry(rec.commitAt, sev.Time, task) {
		return expirySuppressed
	}
	return expiryEmitted
}

// matchSuppressesExpiry mirrors the session's match-time-aware expiry
// suppression across shards: a worker expiry is suppressed by a commit
// strictly before its deadline, a task expiry by a commit at or before it.
func matchSuppressesExpiry(commitAt, deadline float64, task bool) bool {
	if task {
		return commitAt <= deadline
	}
	return commitAt < deadline
}

// maybeRetireLocked runs scheduled arena retirement once the shard clock
// has moved RetireInterval past the last one. It always runs after
// collectLocked, so the event arena is fully drained and no handle-bearing
// event can straddle the epoch boundary. Callers hold si.mu.
func (si *shardInstance) maybeRetireLocked() {
	if si.retireEvery <= 0 {
		return
	}
	now := si.sess.Now()
	if now < si.lastRetire+si.retireEvery {
		return
	}
	si.sess.Retire(now)
	si.lastRetire = now
}

// Cursor returns a cursor positioned after every event emitted so far —
// the starting point for a live consumer that only wants new events.
func (r *Router) Cursor() uint64 { return r.seq.Load() }

// OldestCursor returns the lowest cursor Events still accepts — the
// retention eviction boundary, i.e. the lowest point from which merged
// delivery is guaranteed gap-free. A consumer whose cursor got
// ErrEvicted restarts here. The boundary is global while retention is
// per-shard, so restarting also skips any below-boundary events a
// quieter shard happens to still retain: with per-shard logs merged
// behind one cursor, everything below the hottest shard's eviction
// point is conservatively treated as gone. Size Retention for the
// hottest region accordingly.
func (r *Router) OldestCursor() uint64 { return r.evicted.Load() }

// Events appends to dst every event with since <= Seq < snapshot, where
// the snapshot is the sequence counter at call entry, merged across
// shards in Seq order; it returns the extended slice plus the cursor to
// pass next time (the snapshot). Bounding the walk by the entry snapshot
// makes the result a consistent prefix even under concurrent admissions:
// an event sequenced during the walk — which a shard visited earlier
// might already have missed — is excluded everywhere and delivered by the
// next poll. If since falls below the retention boundary the result is
// ErrEvicted: events that old were dropped, restart from OldestCursor.
func (r *Router) Events(since uint64, dst []Event) ([]Event, uint64, error) {
	return r.EventsLimit(since, 0, dst)
}

// EventsLimit is Events bounded to at most limit events per call (zero
// or negative means unlimited): each shard contributes at most its limit
// earliest matching events and the merged result keeps the limit lowest
// sequence numbers, so a cold or recovered cursor pages through a large
// backlog in bounded batches. When the batch was truncated the returned
// cursor resumes right after the last returned event instead of at the
// snapshot, keeping delivery gap-free. One page transiently gathers up
// to shards x limit events before truncating — bounded by the page size,
// acceptable for poll serving; a k-way merge would tighten it if page
// loads ever dominate.
func (r *Router) EventsLimit(since uint64, limit int, dst []Event) ([]Event, uint64, error) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if since < r.evicted.Load() {
		return dst, 0, ErrEvicted
	}
	hi := r.seq.Load()
	if since >= hi {
		return dst, hi, nil
	}
	start := len(dst)
	dst = growEvents(dst, limit)
	dst, capped := r.gather(r.state(), since, hi, limit, dst)
	// Re-check after the walk: a concurrent eviction during it may have
	// dropped not-yet-visited events at or above since, leaving a gap.
	if since < r.evicted.Load() {
		return dst[:start], 0, ErrEvicted
	}
	dst, next := page(since, hi, limit, dst, start, capped)
	return dst, next, nil
}

// EventsFromOldest is EventsLimit anchored at the oldest retained cursor,
// atomically: the retention boundary is re-read after the shard walk and
// below-boundary events are dropped from the page, so a concurrent
// eviction can narrow the page but never produce ErrEvicted — this is
// the primitive behind cursor-less polling ("give me what is retained").
func (r *Router) EventsFromOldest(limit int, dst []Event) ([]Event, uint64) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	since := r.evicted.Load()
	hi := r.seq.Load()
	if since >= hi {
		return dst, hi
	}
	start := len(dst)
	dst = growEvents(dst, limit)
	dst, capped := r.gather(r.state(), since, hi, limit, dst)
	if e := r.evicted.Load(); e > since {
		// Eviction raced the walk: events below the new boundary may be
		// incomplete across shards, but everything at or above it was
		// retained in every shard we visited. Clamp the page to it.
		since = e
		tail := dst[start:]
		k := 0
		for _, ev := range tail {
			if ev.Seq >= e {
				tail[k] = ev
				k++
			}
		}
		dst = dst[:start+k]
	}
	return page(since, hi, limit, dst, start, capped)
}

// gather collects, per source, up to limit events with since <= Seq < hi
// into dst, reporting whether any source's contribution was truncated.
// The archive — events emitted under earlier topologies — is one more
// source, merged exactly like a (frozen) shard log.
func (r *Router) gather(ts *topoState, since, hi uint64, limit int, dst []Event) ([]Event, bool) {
	capped := false
	if arch := ts.archive; len(arch) > 0 {
		i := sort.Search(len(arch), func(k int) bool { return arch[k].Seq >= since })
		j := i + sort.Search(len(arch)-i, func(k int) bool { return arch[i+k].Seq >= hi })
		if limit > 0 && j-i > limit {
			j = i + limit
			capped = true
		}
		dst = append(dst, arch[i:j]...)
	}
	for _, si := range ts.shards {
		si.mu.Lock()
		log := si.log
		i := sort.Search(len(log), func(k int) bool { return log[k].Seq >= since })
		j := i + sort.Search(len(log)-i, func(k int) bool { return log[i+k].Seq >= hi })
		if limit > 0 && j-i > limit {
			j = i + limit
			capped = true
		}
		dst = append(dst, log[i:j]...)
		si.mu.Unlock()
	}
	return dst, capped
}

// growEvents pre-sizes dst for limit more events so the common
// one-page gather appends without reallocating; unlimited reads keep
// append's own growth.
func growEvents(dst []Event, limit int) []Event {
	if limit <= 0 || cap(dst)-len(dst) >= limit {
		return dst
	}
	grown := make([]Event, len(dst), len(dst)+limit)
	copy(grown, dst)
	return grown
}

// page sorts the gathered tail by Seq, truncates it to limit, and
// computes the resume cursor: the hi snapshot when the page is complete,
// or one past the last returned event when any truncation (per-shard or
// merged) may have hidden events below hi.
func page(since, hi uint64, limit int, dst []Event, start int, capped bool) ([]Event, uint64) {
	tail := dst[start:]
	slices.SortFunc(tail, func(a, b Event) int { return cmp.Compare(a.Seq, b.Seq) })
	if limit > 0 && len(tail) > limit {
		dst = dst[:start+limit]
		tail = dst[start:]
		capped = true
	}
	if !capped {
		return dst, hi
	}
	if len(tail) > 0 {
		return dst, tail[len(tail)-1].Seq + 1
	}
	return dst, since
}

// ShardStats snapshots shard i of the current topology.
func (r *Router) ShardStats(i int) Stats {
	return r.shardStatsOf(r.state(), i)
}

func (r *Router) shardStatsOf(ts *topoState, i int) Stats {
	si := ts.shards[i]
	si.mu.Lock()
	defer si.mu.Unlock()
	return Stats{
		Shard:       si.id,
		Bounds:      ts.placement.Region(si.id),
		Workers:     si.sess.AdmittedWorkers(),
		Tasks:       si.sess.AdmittedTasks(),
		LiveWorkers: si.sess.NumWorkers(),
		LiveTasks:   si.sess.NumTasks(),
		Matches:     si.sess.Matches(),
		// The session counts every deadline it fires; deadlines of copies
		// whose lifecycle concluded elsewhere were dropped from the stream
		// (ownerExpiryLocked) and are subtracted here so the snapshot
		// counts each logical expiry exactly once, on its owner shard.
		ExpiredWorkers:   si.sess.ExpiredWorkers() - si.halo.suppressedExpW,
		ExpiredTasks:     si.sess.ExpiredTasks() - si.halo.suppressedExpT,
		Attempted:        si.sess.Attempted(),
		Rejected:         si.sess.Rejected(),
		Now:              si.sess.Now(),
		ArrivalRate:      si.rateEWMA,
		GhostWorkers:     si.halo.ghostW,
		GhostTasks:       si.halo.ghostT,
		WithdrawnWorkers: si.sess.WithdrawnWorkers(),
		WithdrawnTasks:   si.sess.WithdrawnTasks(),
		ClaimsLost:       si.halo.claimsLost,
		BorderMatches:    si.halo.borderMatches,
	}
}

// Retire compacts every shard's arenas now, regardless of the
// RetireInterval schedule: each shard, under its own lock, drains its
// events into the log and retires objects provably dead at or before
// horizon (clamped per shard to that shard's clock). It returns the total
// workers and tasks dropped. Callers that only want the scheduled
// behaviour never need this; it exists for operational "compact now"
// hooks and tests.
func (r *Router) Retire(horizon float64) (workers, tasks int) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	for _, si := range r.state().shards {
		func() {
			si.mu.Lock()
			defer si.mu.Unlock()
			si.drainPendingLocked()
			si.collectLocked(r)
			w, t := si.sess.Retire(horizon)
			si.lastRetire = si.sess.Now()
			if si.wal != nil {
				si.wal.opRetire(horizon)
			}
			workers += w
			tasks += t
		}()
	}
	return workers, tasks
}

// StatsAll appends a snapshot of every shard to dst and returns it. The
// snapshot is taken against one topology state, so the result is always
// internally consistent even across a concurrent Rebalance.
func (r *Router) StatsAll(dst []Stats) []Stats {
	ts := r.state()
	for i := range ts.shards {
		dst = append(dst, r.shardStatsOf(ts, i))
	}
	return dst
}
