// Package shard serves one service area as a grid of independent matching
// sessions. The Router partitions the configured bounds into Cols×Rows
// regions, runs one sim.Session per region (each with its own algorithm
// instance, each single-writer behind its own lock), routes admissions to
// the region containing their location, and merges the per-shard lifecycle
// event streams into one globally ordered stream addressed by a `since`
// sequence cursor.
//
// This is the horizontal-scaling story of the serving layer: a session is
// deliberately single-goroutine (the algorithms' state is lock-free flat
// slices), so throughput grows by adding regions, not by contending one
// session. Regions are independent in the hyperlocal sense — a worker is
// only matched to tasks of its own region — which trades a little global
// matching quality for linear scalability and bounded tail latency.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
)

// Config parameterises a Router.
type Config struct {
	// Matcher is the base session configuration. Bounds is the FULL
	// service area (it is partitioned into the shard grid); Velocity and
	// Mode apply to every shard; Hints are divided evenly among shards.
	// OnEvent/OnMatch must be nil: the router owns event consumption.
	Matcher sim.MatcherConfig
	// Cols, Rows shape the shard grid. 1×1 is a valid single-shard
	// deployment and behaves exactly like one session behind one lock.
	Cols, Rows int
	// NewAlgorithm mints one algorithm instance per shard. Instances must
	// not share mutable state (a shared read-only Guide is fine).
	NewAlgorithm func() sim.Algorithm
	// OnEvent, when non-nil, is invoked synchronously for every sequenced
	// event, from inside the router call that produced it while the
	// owning shard's lock is held. Callbacks for different shards run
	// concurrently, so the handler must be safe for concurrent use, and
	// it must not call back into the Router (taking a lock the handler
	// also takes from a Router-calling path deadlocks). Unlike the
	// polled Events stream it is lossless under retention — the hook for
	// derived views that must not miss events.
	OnEvent func(Event)
	// Retention bounds the per-shard merged-event log: each shard keeps
	// at least its most recent Retention events; older ones are evicted
	// (in batches of Retention/2, so eviction is O(1) amortized per
	// event — see retain.go) and cursors pointing below the eviction
	// boundary fail with ErrEvicted. Zero keeps everything (replay
	// drivers, tests).
	Retention int
	// RetireInterval, when positive, schedules generational arena
	// retirement per shard: whenever a write (admission, Advance, Finish)
	// moves a shard's clock at least RetireInterval past its last
	// retirement, the shard — still under its own single-writer lock, so
	// retirement never blocks the other regions — drains its events into
	// the log and calls Session.Retire with the current clock, compacting
	// away matched and (in Strict mode) expired objects. This is what
	// bounds a long-lived router's memory by its live population instead
	// of its lifetime admissions. Requires an algorithm implementing
	// sim.RetirableAlgorithm (all of this repo's algorithms do); NewRouter
	// rejects the config otherwise. Zero disables retirement.
	RetireInterval float64
}

// Handle names an object admitted through a Router: the shard that owns it
// plus the session-local handle within that shard. With RetireInterval
// set, Local is only stable until the owning shard's next retirement
// compacts the object away (which can only happen once it is matched or
// expired) — treat it as an admission receipt, not a durable key.
type Handle struct {
	Shard int
	Local int
}

// Event is one lifecycle event in the merged stream: a shard-local
// sim.SessionEvent tagged with its owning shard and a globally unique,
// strictly increasing sequence number. Merged order is Seq order, which is
// consistent with per-shard fire order (within a shard, Seq and Time are
// both non-decreasing; across shards only Seq is total).
type Event struct {
	Seq   uint64
	Shard int
	sim.SessionEvent
}

// Stats is a point-in-time snapshot of one shard. Workers/Tasks count
// lifetime admissions (monotone across retirements); LiveWorkers/
// LiveTasks are the current arena populations — with retirement on, the
// gap between the two is the memory the shard has reclaimed.
type Stats struct {
	Shard          int
	Bounds         geo.Rect
	Workers        int
	Tasks          int
	LiveWorkers    int
	LiveTasks      int
	Matches        int
	ExpiredWorkers int
	ExpiredTasks   int
	Attempted      int
	Rejected       int
	Now            float64
}

// ErrEvicted is returned by Events when the cursor points below the
// retention boundary: the gap-free-delivery guarantee no longer holds
// from there, because at least one shard has dropped events at or above
// the cursor. The caller restarts from OldestCursor, accepting the gap.
var ErrEvicted = errors.New("shard: cursor below retention boundary")

// Router is a sharded multi-session serving surface; see the package
// comment. All methods are safe for concurrent use: admissions touch only
// the target shard's lock, so disjoint regions admit in parallel.
type Router struct {
	grid    *geo.Grid
	shards  []*shardInstance
	onEvent func(Event)
	seq     atomic.Uint64 // next sequence number to assign
	// evicted is the retention boundary: every event with Seq below it
	// MAY have been dropped from its shard log.
	evicted atomic.Uint64
}

// shardInstance is one region's session plus its slice of the merged log.
type shardInstance struct {
	id        int
	mu        sync.Mutex
	sess      *sim.Session
	log       []Event
	scratch   []sim.SessionEvent
	retention int
	// retireEvery/lastRetire schedule arena retirement on the shard's
	// session clock; see Config.RetireInterval.
	retireEvery float64
	lastRetire  float64
}

// NewRouter validates cfg, partitions the bounds, and starts one session
// per region (running each algorithm's Init).
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("shard: non-positive grid %dx%d", cfg.Cols, cfg.Rows)
	}
	if cfg.NewAlgorithm == nil {
		return nil, errors.New("shard: nil NewAlgorithm")
	}
	if cfg.Matcher.OnEvent != nil || cfg.Matcher.OnMatch != nil {
		return nil, errors.New("shard: Matcher.OnEvent/OnMatch must be nil (the router consumes events)")
	}
	if cfg.Retention < 0 {
		return nil, fmt.Errorf("shard: negative retention %d", cfg.Retention)
	}
	if cfg.RetireInterval < 0 {
		return nil, fmt.Errorf("shard: negative retire interval %v", cfg.RetireInterval)
	}
	// Validate the base config before geo.NewGrid sees the bounds:
	// degenerate bounds (zero-area, inverted) must surface as the same
	// clean error a plain Matcher would return, not a grid panic.
	if _, err := sim.NewMatcher(cfg.Matcher); err != nil {
		return nil, err
	}
	n := cfg.Cols * cfg.Rows
	grid := geo.NewGrid(cfg.Matcher.Bounds, cfg.Cols, cfg.Rows)
	r := &Router{grid: grid, shards: make([]*shardInstance, n), onEvent: cfg.OnEvent}
	for i := 0; i < n; i++ {
		mcfg := cfg.Matcher
		mcfg.Bounds = grid.CellRect(i)
		mcfg.Hints.ExpectedWorkers = divideHint(mcfg.Hints.ExpectedWorkers, n)
		mcfg.Hints.ExpectedTasks = divideHint(mcfg.Hints.ExpectedTasks, n)
		m, err := sim.NewMatcher(mcfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		alg := cfg.NewAlgorithm()
		if _, ok := alg.(sim.RetirableAlgorithm); cfg.RetireInterval > 0 && !ok {
			return nil, fmt.Errorf("shard: RetireInterval set but algorithm %q does not implement sim.RetirableAlgorithm", alg.Name())
		}
		r.shards[i] = &shardInstance{
			id:          i,
			sess:        m.NewSession(alg),
			retention:   cfg.Retention,
			retireEvery: cfg.RetireInterval,
		}
	}
	return r, nil
}

// divideHint spreads a population hint evenly across n shards, rounding
// up so per-shard pre-sizing stays sufficient under skew.
func divideHint(total, n int) int {
	if total <= 0 {
		return 0
	}
	return (total + n - 1) / n
}

// NumShards returns the number of regions (Cols×Rows).
func (r *Router) NumShards() int { return len(r.shards) }

// ShardOf returns the shard that serves location p (clamped to bounds, so
// out-of-area locations route to the nearest edge region).
func (r *Router) ShardOf(p geo.Point) int { return r.grid.CellOf(p) }

// ShardBounds returns the region rectangle of shard i.
func (r *Router) ShardBounds(i int) geo.Rect { return r.grid.CellRect(i) }

// AddWorker routes the worker to the shard containing its location and
// admits it there; only that shard's lock is taken. admitted is the
// arrival time the session actually stamped — w.Arrive clamped up to the
// shard clock — so callers report deadlines consistent with the shard's
// view even when concurrent admissions raced the clock forward.
func (r *Router) AddWorker(w model.Worker) (h Handle, admitted float64, err error) {
	si := r.shards[r.grid.CellOf(w.Loc)]
	si.mu.Lock()
	defer si.mu.Unlock()
	local, err := si.sess.AddWorker(w)
	if err != nil {
		return Handle{}, 0, err
	}
	admitted = si.sess.Worker(local).Arrive
	si.afterWriteLocked(r)
	return Handle{Shard: si.id, Local: local}, admitted, nil
}

// AddTask routes the task to the shard containing its location; see
// AddWorker for the locking and admitted-time semantics.
func (r *Router) AddTask(t model.Task) (h Handle, admitted float64, err error) {
	si := r.shards[r.grid.CellOf(t.Loc)]
	si.mu.Lock()
	defer si.mu.Unlock()
	local, err := si.sess.AddTask(t)
	if err != nil {
		return Handle{}, 0, err
	}
	admitted = si.sess.Task(local).Release
	si.afterWriteLocked(r)
	return Handle{Shard: si.id, Local: local}, admitted, nil
}

// Advance drives every shard's clock to now (shard by shard, so a slow
// region never blocks admissions to the others), firing timers and
// expiries. Locks are released via defer so a panicking algorithm or
// OnEvent hook cannot wedge a shard's mutex.
func (r *Router) Advance(now float64) {
	for _, si := range r.shards {
		func() {
			si.mu.Lock()
			defer si.mu.Unlock()
			si.sess.Advance(now)
			si.afterWriteLocked(r)
		}()
	}
}

// Finish finishes every shard's session; further admissions return
// sim.ErrFinished. Events (including the final expiry flush) remain
// readable.
func (r *Router) Finish() {
	for _, si := range r.shards {
		func() {
			si.mu.Lock()
			defer si.mu.Unlock()
			si.sess.Finish()
			si.collectLocked(r)
		}()
	}
}

// afterWriteLocked is the post-write tail of every mutating router call:
// drain and sequence new events, then run scheduled retirement. Callers
// hold si.mu.
func (si *shardInstance) afterWriteLocked(r *Router) {
	si.collectLocked(r)
	si.maybeRetireLocked()
}

// collectLocked drains the session's new lifecycle events into the shard
// log, assigning global sequence numbers, then compacts the session arena
// and applies retention (see retain.go for the shared eviction policy).
// Callers hold si.mu; sequence numbers within a shard are strictly
// increasing because assignment happens under the shard lock.
func (si *shardInstance) collectLocked(r *Router) {
	si.scratch = si.sess.DrainEvents(si.scratch[:0])
	if len(si.scratch) == 0 {
		return
	}
	for _, ev := range si.scratch {
		sev := Event{Seq: r.seq.Add(1) - 1, Shard: si.id, SessionEvent: ev}
		si.log = append(si.log, sev)
		if r.onEvent != nil {
			r.onEvent(sev)
		}
	}
	si.sess.CompactEvents()
	if drop := retainDrop(len(si.log), si.retention); drop > 0 {
		boundary := si.log[drop-1].Seq + 1
		n := copy(si.log, si.log[drop:])
		si.log = si.log[:n]
		raiseBoundary(&r.evicted, boundary)
	}
}

// maybeRetireLocked runs scheduled arena retirement once the shard clock
// has moved RetireInterval past the last one. It always runs after
// collectLocked, so the event arena is fully drained and no handle-bearing
// event can straddle the epoch boundary. Callers hold si.mu.
func (si *shardInstance) maybeRetireLocked() {
	if si.retireEvery <= 0 {
		return
	}
	now := si.sess.Now()
	if now < si.lastRetire+si.retireEvery {
		return
	}
	si.sess.Retire(now)
	si.lastRetire = now
}

// Cursor returns a cursor positioned after every event emitted so far —
// the starting point for a live consumer that only wants new events.
func (r *Router) Cursor() uint64 { return r.seq.Load() }

// OldestCursor returns the lowest cursor Events still accepts — the
// retention eviction boundary, i.e. the lowest point from which merged
// delivery is guaranteed gap-free. A consumer whose cursor got
// ErrEvicted restarts here. The boundary is global while retention is
// per-shard, so restarting also skips any below-boundary events a
// quieter shard happens to still retain: with per-shard logs merged
// behind one cursor, everything below the hottest shard's eviction
// point is conservatively treated as gone. Size Retention for the
// hottest region accordingly.
func (r *Router) OldestCursor() uint64 { return r.evicted.Load() }

// Events appends to dst every event with since <= Seq < snapshot, where
// the snapshot is the sequence counter at call entry, merged across
// shards in Seq order; it returns the extended slice plus the cursor to
// pass next time (the snapshot). Bounding the walk by the entry snapshot
// makes the result a consistent prefix even under concurrent admissions:
// an event sequenced during the walk — which a shard visited earlier
// might already have missed — is excluded everywhere and delivered by the
// next poll. If since falls below the retention boundary the result is
// ErrEvicted: events that old were dropped, restart from OldestCursor.
func (r *Router) Events(since uint64, dst []Event) ([]Event, uint64, error) {
	return r.EventsLimit(since, 0, dst)
}

// EventsLimit is Events bounded to at most limit events per call (zero
// or negative means unlimited): each shard contributes at most its limit
// earliest matching events and the merged result keeps the limit lowest
// sequence numbers, so a cold or recovered cursor pages through a large
// backlog in bounded batches. When the batch was truncated the returned
// cursor resumes right after the last returned event instead of at the
// snapshot, keeping delivery gap-free. One page transiently gathers up
// to shards x limit events before truncating — bounded by the page size,
// acceptable for poll serving; a k-way merge would tighten it if page
// loads ever dominate.
func (r *Router) EventsLimit(since uint64, limit int, dst []Event) ([]Event, uint64, error) {
	if since < r.evicted.Load() {
		return dst, 0, ErrEvicted
	}
	hi := r.seq.Load()
	if since >= hi {
		return dst, hi, nil
	}
	start := len(dst)
	dst, capped := r.gather(since, hi, limit, dst)
	// Re-check after the walk: a concurrent eviction during it may have
	// dropped not-yet-visited events at or above since, leaving a gap.
	if since < r.evicted.Load() {
		return dst[:start], 0, ErrEvicted
	}
	dst, next := page(since, hi, limit, dst, start, capped)
	return dst, next, nil
}

// EventsFromOldest is EventsLimit anchored at the oldest retained cursor,
// atomically: the retention boundary is re-read after the shard walk and
// below-boundary events are dropped from the page, so a concurrent
// eviction can narrow the page but never produce ErrEvicted — this is
// the primitive behind cursor-less polling ("give me what is retained").
func (r *Router) EventsFromOldest(limit int, dst []Event) ([]Event, uint64) {
	since := r.evicted.Load()
	hi := r.seq.Load()
	if since >= hi {
		return dst, hi
	}
	start := len(dst)
	dst, capped := r.gather(since, hi, limit, dst)
	if e := r.evicted.Load(); e > since {
		// Eviction raced the walk: events below the new boundary may be
		// incomplete across shards, but everything at or above it was
		// retained in every shard we visited. Clamp the page to it.
		since = e
		tail := dst[start:]
		k := 0
		for _, ev := range tail {
			if ev.Seq >= e {
				tail[k] = ev
				k++
			}
		}
		dst = dst[:start+k]
	}
	return page(since, hi, limit, dst, start, capped)
}

// gather collects, per shard, up to limit events with since <= Seq < hi
// into dst, reporting whether any shard's contribution was truncated.
func (r *Router) gather(since, hi uint64, limit int, dst []Event) ([]Event, bool) {
	capped := false
	for _, si := range r.shards {
		si.mu.Lock()
		log := si.log
		i := sort.Search(len(log), func(k int) bool { return log[k].Seq >= since })
		j := i + sort.Search(len(log)-i, func(k int) bool { return log[i+k].Seq >= hi })
		if limit > 0 && j-i > limit {
			j = i + limit
			capped = true
		}
		dst = append(dst, log[i:j]...)
		si.mu.Unlock()
	}
	return dst, capped
}

// page sorts the gathered tail by Seq, truncates it to limit, and
// computes the resume cursor: the hi snapshot when the page is complete,
// or one past the last returned event when any truncation (per-shard or
// merged) may have hidden events below hi.
func page(since, hi uint64, limit int, dst []Event, start int, capped bool) ([]Event, uint64) {
	tail := dst[start:]
	sort.Slice(tail, func(a, b int) bool { return tail[a].Seq < tail[b].Seq })
	if limit > 0 && len(tail) > limit {
		dst = dst[:start+limit]
		tail = dst[start:]
		capped = true
	}
	if !capped {
		return dst, hi
	}
	if len(tail) > 0 {
		return dst, tail[len(tail)-1].Seq + 1
	}
	return dst, since
}

// ShardStats snapshots shard i.
func (r *Router) ShardStats(i int) Stats {
	si := r.shards[i]
	si.mu.Lock()
	defer si.mu.Unlock()
	return Stats{
		Shard:          si.id,
		Bounds:         r.grid.CellRect(si.id),
		Workers:        si.sess.AdmittedWorkers(),
		Tasks:          si.sess.AdmittedTasks(),
		LiveWorkers:    si.sess.NumWorkers(),
		LiveTasks:      si.sess.NumTasks(),
		Matches:        si.sess.Matches(),
		ExpiredWorkers: si.sess.ExpiredWorkers(),
		ExpiredTasks:   si.sess.ExpiredTasks(),
		Attempted:      si.sess.Attempted(),
		Rejected:       si.sess.Rejected(),
		Now:            si.sess.Now(),
	}
}

// Retire compacts every shard's arenas now, regardless of the
// RetireInterval schedule: each shard, under its own lock, drains its
// events into the log and retires objects provably dead at or before
// horizon (clamped per shard to that shard's clock). It returns the total
// workers and tasks dropped. Callers that only want the scheduled
// behaviour never need this; it exists for operational "compact now"
// hooks and tests.
func (r *Router) Retire(horizon float64) (workers, tasks int) {
	for _, si := range r.shards {
		func() {
			si.mu.Lock()
			defer si.mu.Unlock()
			si.collectLocked(r)
			w, t := si.sess.Retire(horizon)
			si.lastRetire = si.sess.Now()
			workers += w
			tasks += t
		}()
	}
	return workers, tasks
}

// StatsAll appends a snapshot of every shard to dst and returns it.
func (r *Router) StatsAll(dst []Stats) []Stats {
	for i := range r.shards {
		dst = append(dst, r.ShardStats(i))
	}
	return dst
}
