package shard

import (
	"sort"
	"sync"
	"testing"
	"time"

	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
	"ftoa/internal/workload"
)

// greedyAlg is a trivial nearest-scan algorithm for router tests: on task
// arrival, match the first available worker.
type greedyAlg struct{ p sim.Platform }

func (a *greedyAlg) Name() string         { return "test-greedy" }
func (a *greedyAlg) Init(p sim.Platform)  { a.p = p }
func (a *greedyAlg) OnFinish(now float64) {}
func (a *greedyAlg) OnWorkerArrival(w int, now float64) {
	for t := 0; t < a.p.NumTasks(); t++ {
		if a.p.TaskAvailable(t, now) && a.p.TryMatch(w, t, now) {
			return
		}
	}
}
func (a *greedyAlg) OnTaskArrival(t int, now float64) {
	for w := 0; w < a.p.NumWorkers(); w++ {
		if a.p.WorkerAvailable(w, now) && a.p.TryMatch(w, t, now) {
			return
		}
	}
}

func testConfig(cols, rows int) Config {
	return Config{
		Matcher: sim.MatcherConfig{
			Mode:     sim.Strict,
			Velocity: 1,
			Bounds:   geo.NewRect(0, 0, 100, 100),
		},
		Cols:         cols,
		Rows:         rows,
		NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
	}
}

func TestNewRouterValidates(t *testing.T) {
	bad := testConfig(0, 2)
	if _, err := NewRouter(bad); err == nil {
		t.Error("zero cols accepted")
	}
	bad = testConfig(2, 2)
	bad.NewAlgorithm = nil
	if _, err := NewRouter(bad); err == nil {
		t.Error("nil NewAlgorithm accepted")
	}
	bad = testConfig(2, 2)
	bad.Matcher.OnMatch = func(sim.Match) {}
	if _, err := NewRouter(bad); err == nil {
		t.Error("session-level OnMatch accepted")
	}
	bad = testConfig(2, 2)
	bad.Retention = -1
	if _, err := NewRouter(bad); err == nil {
		t.Error("negative retention accepted")
	}
	bad = testConfig(2, 2)
	bad.Matcher.Velocity = 0
	if _, err := NewRouter(bad); err == nil {
		t.Error("invalid matcher config accepted")
	}
	bad = testConfig(2, 2)
	bad.Matcher.Bounds = geo.Rect{} // degenerate bounds must error, not panic in grid construction
	if _, err := NewRouter(bad); err == nil {
		t.Error("empty bounds accepted")
	}
}

// TestRouterRoutesByLocation: admissions land on the shard whose region
// contains them, handles are shard-local, and matches stay region-local.
func TestRouterRoutesByLocation(t *testing.T) {
	r, err := NewRouter(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", r.NumShards())
	}
	// One worker-task pair per quadrant, plus an out-of-bounds worker
	// that must clamp to an edge region instead of being rejected.
	locs := []geo.Point{geo.Pt(20, 20), geo.Pt(80, 20), geo.Pt(20, 80), geo.Pt(80, 80)}
	for i, loc := range locs {
		wh, _, err := r.AddWorker(model.Worker{Loc: loc, Arrive: float64(i), Patience: 100})
		if err != nil {
			t.Fatal(err)
		}
		if wh.Shard != r.ShardOf(loc) || wh.Local != 0 {
			t.Fatalf("worker at %v -> %+v, want shard %d local 0", loc, wh, r.ShardOf(loc))
		}
		if !r.ShardBounds(wh.Shard).Contains(loc) {
			t.Fatalf("shard %d bounds %v do not contain %v", wh.Shard, r.ShardBounds(wh.Shard), loc)
		}
		th, _, err := r.AddTask(model.Task{Loc: loc.Add(geo.Pt(1, 0)), Release: float64(i), Expiry: 100})
		if err != nil {
			t.Fatal(err)
		}
		if th.Shard != wh.Shard {
			t.Fatalf("task routed to shard %d, worker to %d", th.Shard, wh.Shard)
		}
	}
	if h, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(-5, -5), Arrive: 9, Patience: 1}); err != nil {
		t.Fatalf("out-of-bounds admission rejected: %v", err)
	} else if h.Shard != 0 {
		t.Fatalf("out-of-bounds worker clamped to shard %d, want 0", h.Shard)
	}
	for i := 0; i < 4; i++ {
		st := r.ShardStats(i)
		if st.Matches != 1 {
			t.Fatalf("shard %d stats %+v, want exactly 1 region-local match", i, st)
		}
	}
}

// TestRouterSingleShardParity: a 1x1 router is exactly one session behind
// one lock — same matching as driving a session directly.
func TestRouterSingleShardParity(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 150, 150
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mcfg := sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds}

	m, err := sim.NewMatcher(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := m.NewSession(&greedyAlg{})
	r, err := NewRouter(Config{Matcher: mcfg, Cols: 1, Rows: 1, NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} }})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range in.Events() {
		switch ev.Kind {
		case model.WorkerArrival:
			if _, err := direct.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := r.AddWorker(in.Workers[ev.Index]); err != nil {
				t.Fatal(err)
			}
		case model.TaskArrival:
			if _, err := direct.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := r.AddTask(in.Tasks[ev.Index]); err != nil {
				t.Fatal(err)
			}
		}
	}
	direct.Finish()
	r.Finish()
	st := r.ShardStats(0)
	if st.Matches != direct.Matching().Size() || st.Matches == 0 {
		t.Fatalf("router matched %d, direct session %d", st.Matches, direct.Matching().Size())
	}
	if st.ExpiredWorkers != direct.ExpiredWorkers() || st.ExpiredTasks != direct.ExpiredTasks() {
		t.Fatalf("router expiries %d/%d, direct %d/%d",
			st.ExpiredWorkers, st.ExpiredTasks, direct.ExpiredWorkers(), direct.ExpiredTasks())
	}
}

// TestRouterEventsCursor: the merged stream is Seq-ordered, gap-free from
// 0, and the returned cursor resumes exactly after the last batch.
func TestRouterEventsCursor(t *testing.T) {
	r, err := NewRouter(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	add := func(x float64, at float64) {
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(x, 50), Arrive: at, Patience: 100}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(x, 51), Release: at, Expiry: 100}); err != nil {
			t.Fatal(err)
		}
	}
	add(10, 0) // shard 0 match
	add(90, 1) // shard 1 match

	evs, next, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || next != 2 {
		t.Fatalf("Events(0) = %v next %d, want 2 matches and cursor 2", evs, next)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Kind != sim.EventMatch {
			t.Fatalf("event %d = %+v, want seq %d match", i, ev, i)
		}
	}
	if evs[0].Shard == evs[1].Shard {
		t.Fatalf("both events on shard %d, want one per shard", evs[0].Shard)
	}

	// Incremental: nothing new at the cursor, then one more match.
	if tail, n2, err := r.Events(next, nil); err != nil || len(tail) != 0 || n2 != next {
		t.Fatalf("Events(%d) = %v next %d err %v, want empty", next, tail, n2, err)
	}
	add(30, 2)
	tail, n3, err := r.Events(next, nil)
	if err != nil || len(tail) != 1 || n3 != 3 {
		t.Fatalf("Events(%d) = %v next %d err %v, want the third match", next, tail, n3, err)
	}
	if r.Cursor() != 3 {
		t.Fatalf("Cursor() = %d, want 3", r.Cursor())
	}
}

// TestRouterRetention: old events are evicted per shard and stale cursors
// fail with ErrEvicted; OnEvent remains lossless throughout.
func TestRouterRetention(t *testing.T) {
	var seen []Event
	var mu sync.Mutex
	cfg := testConfig(1, 1)
	cfg.Retention = 3
	cfg.OnEvent = func(ev Event) {
		mu.Lock()
		seen = append(seen, ev)
		mu.Unlock()
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: float64(i), Patience: 100}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(10, 11), Release: float64(i), Expiry: 100}); err != nil {
			t.Fatal(err)
		}
	}
	// 5 matches emitted, 3 retained (eviction runs once the log
	// overshoots retention by 50%, dropping back to exactly retention).
	if _, _, err := r.Events(0, nil); err != ErrEvicted {
		t.Fatalf("stale cursor error = %v, want ErrEvicted", err)
	}
	if r.OldestCursor() != 2 {
		t.Fatalf("OldestCursor = %d, want the eviction boundary 2", r.OldestCursor())
	}
	evs, next, err := r.Events(r.OldestCursor(), nil)
	if err != nil || len(evs) != 3 || next != 5 {
		t.Fatalf("Events(2) = %v next %d err %v, want the retained 3", evs, next, err)
	}
	// EventsFromOldest serves the same window without an error path.
	evs2, next2 := r.EventsFromOldest(0, nil)
	if len(evs2) != 3 || next2 != 5 || evs2[0].Seq != 2 {
		t.Fatalf("EventsFromOldest = %v next %d, want the retained 3 from seq 2", evs2, next2)
	}
	if len(seen) != 5 {
		t.Fatalf("OnEvent saw %d events, want all 5 despite retention", len(seen))
	}
	for i, ev := range seen {
		if ev.Seq != uint64(i) {
			t.Fatalf("OnEvent order: event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestRouterConcurrentSmoke hammers a 2x2 router from concurrent
// producers and a polling consumer; run under -race this is the shard
// concurrency gate. Afterwards the merged stream must be seq-unique and
// complete relative to per-shard stats.
func TestRouterConcurrentSmoke(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.NumWorkers, cfg.NumTasks = 300, 300
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Config{
		Matcher:      sim.MatcherConfig{Mode: sim.Strict, Velocity: in.Velocity, Bounds: in.Bounds},
		Cols:         2,
		Rows:         2,
		NewAlgorithm: func() sim.Algorithm { return &greedyAlg{} },
	})
	if err != nil {
		t.Fatal(err)
	}

	events := in.Events()
	var wg sync.WaitGroup
	const producers = 4
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(events); i += producers {
				ev := events[i]
				switch ev.Kind {
				case model.WorkerArrival:
					if _, _, err := r.AddWorker(in.Workers[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				case model.TaskArrival:
					if _, _, err := r.AddTask(in.Tasks[ev.Index]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	// Concurrent consumer: poll the merged stream while producers run.
	stop := make(chan struct{})
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		var cursor uint64
		var buf []Event
		for {
			var err error
			buf, cursor, err = r.Events(cursor, buf[:0])
			if err != nil {
				t.Error(err)
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	wg.Wait()
	close(stop)
	consumer.Wait()
	r.Finish()

	evs, _, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make(map[uint64]bool, len(evs))
	matches := 0
	for i, ev := range evs {
		if seqs[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seqs[ev.Seq] = true
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatalf("merged stream out of order at %d", i)
		}
		if ev.Kind == sim.EventMatch {
			matches++
		}
	}
	var workers, tasks, statMatches int
	for _, st := range r.StatsAll(nil) {
		workers += st.Workers
		tasks += st.Tasks
		statMatches += st.Matches
	}
	if workers != 300 || tasks != 300 {
		t.Fatalf("admitted %d workers / %d tasks, want 300/300", workers, tasks)
	}
	if matches != statMatches || matches == 0 {
		t.Fatalf("stream has %d matches, stats say %d", matches, statMatches)
	}
	if !sort.SliceIsSorted(evs, func(a, b int) bool { return evs[a].Seq < evs[b].Seq }) {
		t.Fatal("merged stream not seq-sorted")
	}
}

// TestRouterEventsLimitPaging: a bounded page returns the lowest sequence
// numbers and a resume cursor right after them, so a cold consumer pages
// through the backlog gap-free.
func TestRouterEventsLimitPaging(t *testing.T) {
	r, err := NewRouter(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		x := 10.0 + 80*float64(i%2) // alternate shards
		if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(x, 50), Arrive: float64(i), Patience: 100}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(x, 51), Release: float64(i), Expiry: 100}); err != nil {
			t.Fatal(err)
		}
	}
	// 3 matches; page size 2 -> first page seqs 0,1 with resume cursor 2.
	var cursor uint64
	var collected []uint64
	for {
		evs, next, err := r.EventsLimit(cursor, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) > 2 {
			t.Fatalf("page of %d events exceeds limit 2", len(evs))
		}
		for _, ev := range evs {
			collected = append(collected, ev.Seq)
		}
		if next == cursor {
			break
		}
		cursor = next
	}
	if len(collected) != 3 {
		t.Fatalf("paged %v, want all 3 seqs", collected)
	}
	for i, seq := range collected {
		if seq != uint64(i) {
			t.Fatalf("paged %v, want in-order gap-free 0..2", collected)
		}
	}
}
