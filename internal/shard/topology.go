package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ftoa/internal/geo"
)

// Topology describes how the service area is carved into shard regions:
// a base Cols×Rows grid (the static -shards layout) in which any cell may
// be recursively quartered into a finer sub-grid. Each base cell carries a
// pre-order bitmap over its quadtree — byte 1 is an internal node whose
// four children follow (SW, SE, NW, NE), byte 0 a leaf — and the leaves,
// visited base-cell-major in pre-order, are the regions, numbered densely
// from 0. A uniform topology (no splits) numbers regions exactly like the
// base grid's cells, so static routers keep their historical shard ids.
//
// Topologies are immutable: Split and Merge return new values, and the
// router swaps whole topologies atomically (see Router.Rebalance).
type Topology struct {
	cols, rows int
	// spec[cell] is the cell's pre-order split bitmap; nil means the cell
	// is a single leaf (the normalized form of []byte{0}).
	spec    [][]byte
	regions int
}

// MaxSplitDepth bounds how many times one base cell can be quartered; at
// depth 6 a single cell already holds 4096 leaf regions. Split refuses to
// refine past it, and policy layers (shard/rebalance) clamp to it.
const MaxSplitDepth = 6

// maxSplitDepth is the internal alias predating the export.
const maxSplitDepth = MaxSplitDepth

// specLeaf is the canonical single-leaf cell spec.
var specLeaf = []byte{0}

// NewUniformTopology returns the unsplit base grid topology.
func NewUniformTopology(cols, rows int) *Topology {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("shard: invalid topology base %dx%d", cols, rows))
	}
	return &Topology{cols: cols, rows: rows, spec: make([][]byte, cols*rows), regions: cols * rows}
}

// BaseCols and BaseRows return the static grid the topology refines.
func (t *Topology) BaseCols() int { return t.cols }
func (t *Topology) BaseRows() int { return t.rows }

// NumRegions returns the number of leaf regions.
func (t *Topology) NumRegions() int { return t.regions }

// Uniform reports whether no cell is split (the topology is exactly the
// base grid).
func (t *Topology) Uniform() bool { return t.regions == t.cols*t.rows }

func (t *Topology) cellSpec(cell int) []byte {
	if s := t.spec[cell]; s != nil {
		return s
	}
	return specLeaf
}

// walkSpec visits the leaves of one cell spec in pre-order, calling fn
// with each leaf's byte offset and depth, and returns the bytes consumed.
func walkSpec(s []byte, fn func(off, depth int)) (int, error) {
	pos := 0
	var stack []int // children remaining per open internal node
	for {
		if pos >= len(s) {
			return 0, fmt.Errorf("shard: truncated topology spec")
		}
		switch s[pos] {
		case 1:
			if len(stack) >= maxSplitDepth {
				return 0, fmt.Errorf("shard: topology deeper than %d", maxSplitDepth)
			}
			stack = append(stack, 4)
			pos++
			continue
		case 0:
			if fn != nil {
				fn(pos, len(stack))
			}
			pos++
		default:
			return 0, fmt.Errorf("shard: bad topology spec byte %d", s[pos])
		}
		// A completed subtree consumes one child slot of its parent;
		// fully consumed parents complete in turn.
		for len(stack) > 0 {
			stack[len(stack)-1]--
			if stack[len(stack)-1] > 0 {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return pos, nil
		}
	}
}

// quadrant returns child q (bit 0: east, bit 1: north) of r.
func quadrant(r geo.Rect, q int) geo.Rect {
	mx := (r.MinX + r.MaxX) / 2
	my := (r.MinY + r.MaxY) / 2
	if q&1 == 0 {
		r.MaxX = mx
	} else {
		r.MinX = mx
	}
	if q&2 == 0 {
		r.MaxY = my
	} else {
		r.MinY = my
	}
	return r
}

// walkSpecRects visits the leaves of one cell spec in pre-order with their
// rectangles, cell being the base cell's rect.
func walkSpecRects(s []byte, pos int, r geo.Rect, depth int, fn func(geo.Rect, int)) (int, error) {
	if pos >= len(s) {
		return 0, fmt.Errorf("shard: truncated topology spec")
	}
	switch s[pos] {
	case 0:
		fn(r, depth)
		return pos + 1, nil
	case 1:
		pos++
		for q := 0; q < 4; q++ {
			var err error
			pos, err = walkSpecRects(s, pos, quadrant(r, q), depth+1, fn)
			if err != nil {
				return 0, err
			}
		}
		return pos, nil
	default:
		return 0, fmt.Errorf("shard: bad topology spec byte %d", s[pos])
	}
}

// Regions returns the rectangle of every region over the given service
// bounds, in canonical (region id) order.
func (t *Topology) Regions(bounds geo.Rect) []geo.Rect {
	g := geo.NewGrid(bounds, t.cols, t.rows)
	out := make([]geo.Rect, 0, t.regions)
	for c := 0; c < t.cols*t.rows; c++ {
		_, err := walkSpecRects(t.cellSpec(c), 0, g.CellRect(c), 0, func(r geo.Rect, _ int) {
			out = append(out, r)
		})
		if err != nil {
			panic(err) // internal invariant: stored specs always validate
		}
	}
	return out
}

// locate returns the base cell, spec byte offset and depth of a region.
func (t *Topology) locate(region int) (cell, off, depth int, err error) {
	if region < 0 || region >= t.regions {
		return 0, 0, 0, fmt.Errorf("shard: region %d out of range [0,%d)", region, t.regions)
	}
	seen := 0
	for c := 0; c < t.cols*t.rows; c++ {
		s := t.cellSpec(c)
		found := false
		if _, werr := walkSpec(s, func(o, d int) {
			if seen == region {
				cell, off, depth, found = c, o, d, true
			}
			seen++
		}); werr != nil {
			return 0, 0, 0, werr
		}
		if found {
			return cell, off, depth, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("shard: region %d not found", region)
}

// Depth returns how many quarterings separate the region from its base
// cell (0 for an unsplit cell).
func (t *Topology) Depth(region int) int {
	_, _, d, err := t.locate(region)
	if err != nil {
		panic(err)
	}
	return d
}

func (t *Topology) clone() *Topology {
	nt := &Topology{cols: t.cols, rows: t.rows, spec: make([][]byte, len(t.spec)), regions: t.regions}
	copy(nt.spec, t.spec)
	return nt
}

// Split returns a topology with the region quartered into four children.
func (t *Topology) Split(region int) (*Topology, error) {
	cell, off, depth, err := t.locate(region)
	if err != nil {
		return nil, err
	}
	if depth >= maxSplitDepth {
		return nil, fmt.Errorf("shard: region %d already at max split depth %d", region, maxSplitDepth)
	}
	s := t.cellSpec(cell)
	ns := make([]byte, 0, len(s)+4)
	ns = append(ns, s[:off]...)
	ns = append(ns, 1, 0, 0, 0, 0)
	ns = append(ns, s[off+1:]...)
	nt := t.clone()
	nt.spec[cell] = ns
	nt.regions += 3
	return nt, nil
}

// Merge returns a topology with the quad containing the region collapsed
// back into its parent. The region must sit below the base grid and its
// three siblings must all be leaves.
func (t *Topology) Merge(region int) (*Topology, error) {
	cell, off, depth, err := t.locate(region)
	if err != nil {
		return nil, err
	}
	if depth == 0 {
		return nil, fmt.Errorf("shard: region %d is a base cell, nothing to merge", region)
	}
	s := t.cellSpec(cell)
	// Find the region's parent: the innermost internal node whose subtree
	// is still open when the walk reaches off.
	parent := -1
	var open, kids []int // offsets of open internal nodes, children left
	for pos := 0; pos < len(s); {
		if s[pos] == 1 {
			open = append(open, pos)
			kids = append(kids, 4)
			pos++
			continue
		}
		if pos == off {
			parent = open[len(open)-1]
			break
		}
		pos++
		for len(open) > 0 {
			kids[len(kids)-1]--
			if kids[len(kids)-1] > 0 {
				break
			}
			open = open[:len(open)-1]
			kids = kids[:len(kids)-1]
		}
	}
	if parent < 0 {
		return nil, fmt.Errorf("shard: region %d has no parent", region)
	}
	if parent+4 >= len(s) || s[parent+1]|s[parent+2]|s[parent+3]|s[parent+4] != 0 {
		return nil, fmt.Errorf("shard: region %d's siblings are not all leaves", region)
	}
	ns := make([]byte, 0, len(s)-4)
	ns = append(ns, s[:parent]...)
	ns = append(ns, 0)
	ns = append(ns, s[parent+5:]...)
	nt := t.clone()
	if bytes.Equal(ns, specLeaf) {
		nt.spec[cell] = nil
	} else {
		nt.spec[cell] = ns
	}
	nt.regions -= 3
	return nt, nil
}

// MergeableQuads returns, for every internal node whose four children are
// all leaves, those children's region ids (each group ascending, groups in
// region order).
func (t *Topology) MergeableQuads() [][4]int {
	var out [][4]int
	region := 0
	for c := 0; c < t.cols*t.rows; c++ {
		s := t.spec[c]
		if s == nil {
			region++
			continue
		}
		for i := 0; i < len(s); i++ {
			if s[i] == 1 && i+4 < len(s) && s[i+1]|s[i+2]|s[i+3]|s[i+4] == 0 {
				out = append(out, [4]int{region, region + 1, region + 2, region + 3})
			}
			if s[i] == 0 {
				region++
			}
		}
	}
	return out
}

// Equal reports whether the two topologies describe the same region tree.
func (t *Topology) Equal(o *Topology) bool {
	if t.cols != o.cols || t.rows != o.rows || t.regions != o.regions {
		return false
	}
	for i := range t.spec {
		if !bytes.Equal(t.cellSpec(i), o.cellSpec(i)) {
			return false
		}
	}
	return true
}

// Encode appends a self-contained encoding of the topology to dst: base
// dimensions as u16s, then every cell's pre-order bitmap back to back
// (pre-order trees are self-delimiting).
func (t *Topology) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(t.cols))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(t.rows))
	for c := range t.spec {
		dst = append(dst, t.cellSpec(c)...)
	}
	return dst
}

// DecodeTopology parses an Encode image, validating every cell tree.
func DecodeTopology(p []byte) (*Topology, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("shard: topology image too short (%d bytes)", len(p))
	}
	cols := int(binary.LittleEndian.Uint16(p))
	rows := int(binary.LittleEndian.Uint16(p[2:]))
	if cols <= 0 || rows <= 0 || cols > 1<<12 || rows > 1<<12 {
		return nil, fmt.Errorf("shard: bad topology base %dx%d", cols, rows)
	}
	t := &Topology{cols: cols, rows: rows, spec: make([][]byte, cols*rows)}
	pos := 4
	for c := 0; c < cols*rows; c++ {
		leaves := 0
		used, err := walkSpec(p[pos:], func(int, int) { leaves++ })
		if err != nil {
			return nil, err
		}
		if used > 1 {
			t.spec[c] = append([]byte(nil), p[pos:pos+used]...)
		}
		t.regions += leaves
		pos += used
	}
	if pos != len(p) {
		return nil, fmt.Errorf("shard: %d trailing topology bytes", len(p)-pos)
	}
	return t, nil
}

// String renders the topology compactly, e.g. "4x4" or "4x4+6" (base grid
// plus the number of extra regions splits added).
func (t *Topology) String() string {
	if t.Uniform() {
		return fmt.Sprintf("%dx%d", t.cols, t.rows)
	}
	return fmt.Sprintf("%dx%d+%d", t.cols, t.rows, t.regions-t.cols*t.rows)
}
