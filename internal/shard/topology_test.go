package shard

import (
	"testing"

	"ftoa/internal/geo"
)

func mustSplit(t *testing.T, topo *Topology, region int) *Topology {
	t.Helper()
	nt, err := topo.Split(region)
	if err != nil {
		t.Fatalf("Split(%d): %v", region, err)
	}
	return nt
}

func mustMerge(t *testing.T, topo *Topology, region int) *Topology {
	t.Helper()
	nt, err := topo.Merge(region)
	if err != nil {
		t.Fatalf("Merge(%d): %v", region, err)
	}
	return nt
}

// TestTopologyUniform: the unsplit topology is exactly the base grid —
// same region count, same numbering, same rectangles — which is what lets
// static routers keep their historical shard ids.
func TestTopologyUniform(t *testing.T) {
	topo := NewUniformTopology(4, 3)
	if topo.NumRegions() != 12 || !topo.Uniform() {
		t.Fatalf("4x3 uniform: regions=%d uniform=%v", topo.NumRegions(), topo.Uniform())
	}
	if s := topo.String(); s != "4x3" {
		t.Fatalf("String = %q, want 4x3", s)
	}
	if q := topo.MergeableQuads(); len(q) != 0 {
		t.Fatalf("uniform topology reports mergeable quads: %v", q)
	}
	bounds := geo.NewRect(0, 0, 100, 60)
	g := geo.NewGrid(bounds, 4, 3)
	rects := topo.Regions(bounds)
	if len(rects) != 12 {
		t.Fatalf("Regions returned %d rects", len(rects))
	}
	for i, r := range rects {
		if topo.Depth(i) != 0 {
			t.Fatalf("region %d depth = %d, want 0", i, topo.Depth(i))
		}
		if r != g.CellRect(i) {
			t.Fatalf("region %d rect = %+v, want grid cell %+v", i, r, g.CellRect(i))
		}
	}
}

// TestTopologySplitNumbering: splitting one cell inserts its four children
// at the cell's position in pre-order and shifts later regions by three;
// the children quarter the parent rect in SW, SE, NW, NE order.
func TestTopologySplitNumbering(t *testing.T) {
	base := NewUniformTopology(4, 3)
	topo := mustSplit(t, base, 5)
	if topo.NumRegions() != 15 || topo.Uniform() {
		t.Fatalf("after split: regions=%d uniform=%v", topo.NumRegions(), topo.Uniform())
	}
	if s := topo.String(); s != "4x3+3" {
		t.Fatalf("String = %q, want 4x3+3", s)
	}
	if base.NumRegions() != 12 {
		t.Fatal("Split mutated its receiver")
	}
	for i := 0; i < 15; i++ {
		want := 0
		if i >= 5 && i <= 8 {
			want = 1
		}
		if d := topo.Depth(i); d != want {
			t.Fatalf("region %d depth = %d, want %d", i, d, want)
		}
	}
	bounds := geo.NewRect(0, 0, 100, 60)
	g := geo.NewGrid(bounds, 4, 3)
	rects := topo.Regions(bounds)
	for i := 0; i < 5; i++ {
		if rects[i] != g.CellRect(i) {
			t.Fatalf("region %d moved: %+v", i, rects[i])
		}
	}
	parent := g.CellRect(5)
	mx, my := (parent.MinX+parent.MaxX)/2, (parent.MinY+parent.MaxY)/2
	quads := []geo.Rect{
		{MinX: parent.MinX, MinY: parent.MinY, MaxX: mx, MaxY: my}, // SW
		{MinX: mx, MinY: parent.MinY, MaxX: parent.MaxX, MaxY: my}, // SE
		{MinX: parent.MinX, MinY: my, MaxX: mx, MaxY: parent.MaxY}, // NW
		{MinX: mx, MinY: my, MaxX: parent.MaxX, MaxY: parent.MaxY}, // NE
	}
	for q, want := range quads {
		if rects[5+q] != want {
			t.Fatalf("child %d rect = %+v, want %+v", q, rects[5+q], want)
		}
	}
	for i := 9; i < 15; i++ {
		if rects[i] != g.CellRect(i-3) {
			t.Fatalf("region %d rect = %+v, want shifted cell %d", i, rects[i], i-3)
		}
	}
	if q := topo.MergeableQuads(); len(q) != 1 || q[0] != [4]int{5, 6, 7, 8} {
		t.Fatalf("MergeableQuads = %v, want [[5 6 7 8]]", q)
	}
	// Merging any child of the quad restores the original topology.
	for region := 5; region <= 8; region++ {
		if !mustMerge(t, topo, region).Equal(base) {
			t.Fatalf("Merge(%d) does not restore the base grid", region)
		}
	}
}

// TestTopologySplitMergeErrors: the structural refusals — out-of-range
// regions, merging a base cell, merging when a sibling is itself split.
func TestTopologySplitMergeErrors(t *testing.T) {
	topo := NewUniformTopology(2, 2)
	if _, err := topo.Split(-1); err == nil {
		t.Error("Split(-1) accepted")
	}
	if _, err := topo.Split(4); err == nil {
		t.Error("Split past the region count accepted")
	}
	if _, err := topo.Merge(0); err == nil {
		t.Error("Merge of a base cell accepted")
	}
	// Split cell 0, then split its SW child: the depth-1 quad now has an
	// internal member, so merging a depth-1 leaf must refuse.
	nested := mustSplit(t, mustSplit(t, NewUniformTopology(1, 1), 0), 0)
	if nested.NumRegions() != 7 {
		t.Fatalf("nested split regions = %d, want 7", nested.NumRegions())
	}
	if q := nested.MergeableQuads(); len(q) != 1 || q[0] != [4]int{0, 1, 2, 3} {
		t.Fatalf("MergeableQuads = %v, want the deep quad only", q)
	}
	if _, err := nested.Merge(4); err == nil {
		t.Error("Merge with a split sibling accepted")
	}
	// The deep quad merges fine and leaves the single-split topology.
	if got := mustMerge(t, nested, 1); !got.Equal(mustSplit(t, NewUniformTopology(1, 1), 0)) {
		t.Error("deep merge did not restore the single-split topology")
	}
}

// TestTopologyMaxDepth: refinement stops at MaxSplitDepth.
func TestTopologyMaxDepth(t *testing.T) {
	topo := NewUniformTopology(1, 1)
	for d := 0; d < MaxSplitDepth; d++ {
		if topo.Depth(0) != d {
			t.Fatalf("depth = %d, want %d", topo.Depth(0), d)
		}
		topo = mustSplit(t, topo, 0)
	}
	if topo.Depth(0) != MaxSplitDepth {
		t.Fatalf("final depth = %d", topo.Depth(0))
	}
	if _, err := topo.Split(0); err == nil {
		t.Fatal("Split past MaxSplitDepth accepted")
	}
	if want := 1 + 3*MaxSplitDepth; topo.NumRegions() != want {
		t.Fatalf("regions = %d, want %d", topo.NumRegions(), want)
	}
}

// TestTopologyEncodeDecode: the WAL header encoding round-trips any split
// structure, and the decoder rejects malformed images rather than
// constructing a topology that would mis-route.
func TestTopologyEncodeDecode(t *testing.T) {
	g := lcg(17)
	topo := NewUniformTopology(3, 3)
	for i := 0; i < 12; i++ {
		region := int(g.next() % uint64(topo.NumRegions()))
		nt, err := topo.Split(region)
		if err != nil {
			continue // hit max depth on this path; try another region next round
		}
		topo = nt
	}
	if topo.Uniform() {
		t.Fatal("setup: no split landed")
	}
	for _, tc := range []*Topology{topo, NewUniformTopology(3, 3), NewUniformTopology(1, 5)} {
		dec, err := DecodeTopology(tc.Encode(nil))
		if err != nil {
			t.Fatalf("decode %s: %v", tc, err)
		}
		if !dec.Equal(tc) || dec.NumRegions() != tc.NumRegions() {
			t.Fatalf("round trip of %s lost structure: got %s", tc, dec)
		}
	}
	img := topo.Encode(nil)
	bad := [][]byte{
		img[:3],                            // too short for the base dims
		img[:len(img)-1],                   // truncated final cell tree
		append(img[:len(img):len(img)], 0), // trailing leaf byte
		append(img[:len(img):len(img)], 7), // bad spec byte
		{0, 0, 1, 0},                       // zero cols
	}
	for i, p := range bad {
		if _, err := DecodeTopology(p); err == nil {
			t.Errorf("bad image %d accepted", i)
		}
	}
	// A tree deeper than MaxSplitDepth must be rejected even when well
	// formed: 1x1 base whose spec nests MaxSplitDepth+1 internal nodes.
	deep := []byte{1, 0, 1, 0}
	for d := 0; d < MaxSplitDepth+1; d++ {
		deep = append(deep, 1)
	}
	for d := 0; d < MaxSplitDepth+1; d++ {
		deep = append(deep, 0, 0, 0, 0)
	}
	if _, err := DecodeTopology(deep); err == nil {
		t.Error("over-deep spec accepted")
	}
}
