// Package wal is the per-shard write-ahead log behind shard.Router
// durability: an append-only sequence of length+CRC-framed binary records,
// one log file per shard per process generation, written under the shard's
// single-writer lock and replayed at boot to reconstruct the router.
//
// # Framing
//
// A record on disk is
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// little-endian, with the payload's first byte naming the record type. The
// package does not interpret payloads beyond one framing convention: types
// with InterimBit set are *interim* records — they belong to the next
// terminal record (the shard package uses them for arbitration decisions
// and sequence assignments gathered while an operation runs, closed by the
// operation record itself). A reader drops a trailing run of interim
// records with no closing terminal record: the group's operation never
// became durable, so its decisions must not survive either.
//
// # Durability
//
// Appends are grouped: the writer hands the log one byte slice per
// operation group and the sync policy decides when bytes become durable —
// SyncAlways pays one write+fsync per group, SyncInterval (the default)
// buffers groups and a background flusher syncs on a period, SyncNone
// leaves syncing to Close. A torn tail — a crash mid-write or mid-fsync —
// is expected and handled at read time: the first frame that fails its
// length or CRC check logically truncates the segment there, and the
// reader reports how many bytes it dropped. Recovery never appends to an
// old segment; it opens a new generation, so a truncated tail stays
// truncated identically on every subsequent boot.
//
// File access goes through the FS interface so a fault-injection
// filesystem (package faultfs) can simulate crashes, torn writes and
// partial fsyncs; the zero value of Options uses the real OS filesystem.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// InterimBit marks record types that are non-terminal: an interim record
// belongs to the next terminal record appended after it, and a trailing
// run of interim records with no terminal close is dropped at read time.
const InterimBit byte = 0x80

// frameHeader is the per-record framing overhead: u32 length + u32 CRC.
const frameHeader = 8

// maxRecordLen bounds a single payload; a length field beyond it is
// treated as tail corruption. Real records are tens of bytes.
const maxRecordLen = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed record to dst and returns the extended
// slice. The payload must be non-empty and its first byte is the record
// type.
func AppendFrame(dst, payload []byte) []byte {
	var h [frameHeader]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// parseFrames splits data into payloads, stopping at the first frame that
// fails a length or CRC check — the logical truncation point. It returns
// the payloads (sub-slices of data) and how many tail bytes were dropped.
func parseFrames(data []byte) (payloads [][]byte, torn int64) {
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || n > maxRecordLen || off+frameHeader+n > len(data) {
			break
		}
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		payloads = append(payloads, payload)
		off += frameHeader + n
	}
	return payloads, int64(len(data) - off)
}

// FS abstracts the filesystem the log lives on. Implementations must allow
// concurrent calls on distinct files; the OS implementation is the default
// and faultfs provides the fault-injecting one.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create creates name for appending. It fails if the file already
	// exists: segments are written once per generation, never reopened.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (base names, any order) in dir. A
	// missing dir returns an empty listing, not an error.
	ReadDir(dir string) ([]string, error)
}

// File is an append-only log file.
type File interface {
	io.Writer
	// Sync makes previously written bytes durable.
	Sync() error
	Close() error
}

// osFS is the real-filesystem FS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// OSFS returns the real-filesystem FS implementation.
func OSFS() FS { return osFS{} }

// segmentName is the on-disk name of one shard's log for one generation.
func segmentName(shard int, gen uint64) string {
	return fmt.Sprintf("s%03d-g%06d.wal", shard, gen)
}

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (shard int, gen uint64, ok bool) {
	var s int
	var g uint64
	if n, err := fmt.Sscanf(name, "s%d-g%d.wal", &s, &g); err != nil || n != 2 {
		return 0, 0, false
	}
	return s, g, true
}

// segment is one discovered log file.
type segment struct {
	name string
	gen  uint64
}

// ScanDir lists the WAL segments under dir grouped by shard, each shard's
// slice ordered by ascending generation, plus the highest generation seen
// anywhere (0 when the directory is empty or absent). Foreign files are
// ignored.
func ScanDir(fs FS, dir string) (byShard map[int][]string, maxGen uint64, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	segs := make(map[int][]segment)
	for _, name := range names {
		shard, gen, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		segs[shard] = append(segs[shard], segment{name: name, gen: gen})
		if gen > maxGen {
			maxGen = gen
		}
	}
	if len(segs) == 0 {
		return nil, 0, nil
	}
	byShard = make(map[int][]string, len(segs))
	for shard, ss := range segs {
		sort.Slice(ss, func(i, j int) bool { return ss[i].gen < ss[j].gen })
		ordered := make([]string, len(ss))
		for i, s := range ss {
			ordered[i] = filepath.Join(dir, s.name)
		}
		byShard[shard] = ordered
	}
	return byShard, maxGen, nil
}

// Segment names one discovered (shard, generation) log file.
type Segment struct {
	Shard int
	Gen   uint64
	Path  string
}

// Segments lists every WAL segment under dir individually, ordered by
// generation then shard, plus the highest generation seen (0 when the
// directory is empty or absent). Foreign files are ignored. Unlike
// ScanDir this keeps generations apart, which recovery needs to walk the
// topology-epoch chain generation by generation.
func Segments(fs FS, dir string) (segs []Segment, maxGen uint64, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	for _, name := range names {
		shard, gen, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		segs = append(segs, Segment{Shard: shard, Gen: gen, Path: filepath.Join(dir, name)})
		if gen > maxGen {
			maxGen = gen
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Gen != segs[j].Gen {
			return segs[i].Gen < segs[j].Gen
		}
		return segs[i].Shard < segs[j].Shard
	})
	return segs, maxGen, nil
}

// ShardLog is the readable history of one shard: every durable payload
// across its generations in append order, with per-segment torn tails and
// dangling interim groups already dropped.
type ShardLog struct {
	// Payloads are the record payloads in order; sub-slices of the
	// segments' read buffers.
	Payloads [][]byte
	// Segments is how many generation files contributed.
	Segments int
	// TornBytes counts bytes dropped to length/CRC tail truncation,
	// summed across segments.
	TornBytes int64
	// DanglingRecords counts interim records dropped because their
	// closing terminal record never became durable.
	DanglingRecords int
}

// ReadShard reads and logically truncates every segment of one shard, in
// generation order. Each segment independently drops its torn tail and any
// trailing interim run: a group that lost its terminal record before the
// crash must not leak decisions into replay, and a new generation starts
// at a group boundary by construction.
func ReadShard(fs FS, paths []string) (*ShardLog, error) {
	out := &ShardLog{}
	for _, path := range paths {
		data, err := fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		payloads, torn := parseFrames(data)
		out.TornBytes += torn
		// Drop the trailing interim run: its terminal record is gone.
		n := len(payloads)
		for n > 0 && len(payloads[n-1]) > 0 && payloads[n-1][0]&InterimBit != 0 {
			n--
		}
		out.DanglingRecords += len(payloads) - n
		out.Payloads = append(out.Payloads, payloads[:n]...)
		out.Segments++
	}
	return out, nil
}
