package wal_test

import (
	"fmt"
	"testing"

	"ftoa/internal/faultfs"
	"ftoa/internal/shard/wal"
)

// benchGroup builds a representative op group: two interim decision
// records plus a ~40-byte admission payload, the shape an owner
// admission with a gate verdict and a sequence record writes.
func benchGroup() []byte {
	body := make([]byte, 40)
	for i := range body {
		body[i] = byte(i)
	}
	var g []byte
	g = wal.AppendFrame(g, []byte{0x82, 1})
	g = wal.AppendFrame(g, append([]byte{0x80}, 1, 2, 3, 4, 5, 6, 7, 8))
	g = wal.AppendFrame(g, append([]byte{0x10}, body...))
	return g
}

// BenchmarkAppendBuffered measures the admission hot path's WAL cost in
// the default buffered (group-commit) mode: one mutex-protected copy
// into the shard's buffer per op group, no I/O.
func BenchmarkAppendBuffered(b *testing.B) {
	fs := faultfs.New()
	s, err := wal.Open(wal.Options{Dir: "wal", Policy: wal.SyncNone, FS: fs}, 1, 1, func(int) []byte {
		return wal.AppendFrame(nil, []byte{0x01})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	g := benchGroup()
	b.SetBytes(int64(len(g)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Log(0).Append(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSyncAlways is the per-operation durability ceiling:
// every group is written and fsynced before the append returns.
func BenchmarkAppendSyncAlways(b *testing.B) {
	fs := faultfs.New()
	s, err := wal.Open(wal.Options{Dir: "wal", Policy: wal.SyncAlways, FS: fs}, 1, 1, func(int) []byte {
		return wal.AppendFrame(nil, []byte{0x01})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	g := benchGroup()
	b.SetBytes(int64(len(g)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Log(0).Append(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadShard measures replay-side decode throughput over a
// segment of 10k op groups.
func BenchmarkReadShard(b *testing.B) {
	fs := faultfs.New()
	s, err := wal.Open(wal.Options{Dir: "wal", Policy: wal.SyncNone, FS: fs}, 1, 1, func(int) []byte {
		return wal.AppendFrame(nil, []byte{0x01})
	})
	if err != nil {
		b.Fatal(err)
	}
	g := benchGroup()
	for i := 0; i < 10000; i++ {
		if err := s.Log(0).Append(g); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	byShard, _, err := wal.ScanDir(fs, "wal")
	if err != nil {
		b.Fatal(err)
	}
	data, err := fs.ReadFile(byShard[0][0])
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl, err := wal.ReadShard(fs, byShard[0])
		if err != nil {
			b.Fatal(err)
		}
		if len(sl.Payloads) != 1+3*10000 {
			b.Fatalf("payloads = %d", len(sl.Payloads))
		}
	}
}

func ExampleAppendFrame() {
	g := wal.AppendFrame(nil, []byte{0x10, 0xff})
	fmt.Println(len(g))
	// Output: 10
}
