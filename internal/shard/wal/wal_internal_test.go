package wal

import (
	"bytes"
	"testing"
)

func frames(payloads ...[]byte) []byte {
	var data []byte
	for _, p := range payloads {
		data = AppendFrame(data, p)
	}
	return data
}

func TestParseFramesRoundtrip(t *testing.T) {
	in := [][]byte{{0x10, 1, 2, 3}, {0x80}, {0x20}, bytes.Repeat([]byte{7}, 300)}
	got, torn := parseFrames(frames(in...))
	if torn != 0 {
		t.Fatalf("torn = %d on clean data", torn)
	}
	if len(got) != len(in) {
		t.Fatalf("parsed %d payloads, want %d", len(got), len(in))
	}
	for i := range in {
		if !bytes.Equal(got[i], in[i]) {
			t.Fatalf("payload %d = %x, want %x", i, got[i], in[i])
		}
	}
}

// TestParseFramesTornTail cuts a clean stream at every byte offset: the
// parse must recover exactly the whole frames before the cut and report
// the rest as torn — never a partial or corrupted record.
func TestParseFramesTornTail(t *testing.T) {
	in := [][]byte{{0x10, 1, 2}, {0x81, 9}, {0x20, 4, 5, 6, 7}}
	data := frames(in...)
	// Frame boundaries in the byte stream.
	bounds := []int{0}
	for _, p := range in {
		bounds = append(bounds, bounds[len(bounds)-1]+frameHeader+len(p))
	}
	for cut := 0; cut <= len(data); cut++ {
		got, torn := parseFrames(data[:cut])
		whole := 0
		for whole+1 < len(bounds) && bounds[whole+1] <= cut {
			whole++
		}
		if len(got) != whole {
			t.Fatalf("cut %d: parsed %d payloads, want %d", cut, len(got), whole)
		}
		if want := int64(cut - bounds[whole]); torn != want {
			t.Fatalf("cut %d: torn = %d, want %d", cut, torn, want)
		}
	}
}

// TestParseFramesCorruptMiddle flips one payload byte mid-stream: parsing
// must logically truncate at the corrupt frame, keeping only the clean
// prefix.
func TestParseFramesCorruptMiddle(t *testing.T) {
	in := [][]byte{{0x10, 1}, {0x11, 2}, {0x12, 3}}
	data := frames(in...)
	data[frameHeader+2+frameHeader+1] ^= 0xFF // second frame's payload
	got, torn := parseFrames(data)
	if len(got) != 1 || !bytes.Equal(got[0], in[0]) {
		t.Fatalf("parsed %d payloads after corruption, want just the first", len(got))
	}
	if torn == 0 {
		t.Fatal("corruption reported no torn bytes")
	}
}

func TestParseFramesRejectsWildLength(t *testing.T) {
	data := frames([]byte{0x10, 1})
	bad := append(append([]byte(nil), data...), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0)
	got, torn := parseFrames(bad)
	if len(got) != 1 {
		t.Fatalf("parsed %d payloads, want 1", len(got))
	}
	if torn != 8 {
		t.Fatalf("torn = %d, want 8", torn)
	}
}

func TestSegmentNameRoundtrip(t *testing.T) {
	for _, c := range []struct {
		shard int
		gen   uint64
	}{{0, 1}, {7, 3}, {123, 4000000}} {
		name := segmentName(c.shard, c.gen)
		s, g, ok := parseSegmentName(name)
		if !ok || s != c.shard || g != c.gen {
			t.Fatalf("roundtrip of %q: (%d,%d,%v)", name, s, g, ok)
		}
	}
	for _, junk := range []string{"notes.txt", "s001.wal", "g12-s01.wal", "s01-g02.tmp"} {
		if _, _, ok := parseSegmentName(junk); ok {
			t.Errorf("foreign name %q parsed as a segment", junk)
		}
	}
}
