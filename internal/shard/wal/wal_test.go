package wal_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ftoa/internal/faultfs"
	"ftoa/internal/shard/wal"
)

func payload(typ byte, body ...byte) []byte { return append([]byte{typ}, body...) }

func group(payloads ...[]byte) []byte {
	var g []byte
	for _, p := range payloads {
		g = wal.AppendFrame(g, p)
	}
	return g
}

func openSet(t *testing.T, fs *faultfs.FS, policy wal.SyncPolicy, shards int, gen uint64) *wal.Set {
	t.Helper()
	s, err := wal.Open(wal.Options{Dir: "wal", Policy: policy, FS: fs}, shards, gen, func(i int) []byte {
		return group(payload(0x01, byte(i)))
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func readShard(t *testing.T, fs *faultfs.FS, shard int) *wal.ShardLog {
	t.Helper()
	byShard, _, err := wal.ScanDir(fs, "wal")
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	sl, err := wal.ReadShard(fs, byShard[shard])
	if err != nil {
		t.Fatalf("ReadShard: %v", err)
	}
	return sl
}

// TestSyncAlwaysDurable: with SyncAlways every acknowledged group survives
// a crash.
func TestSyncAlwaysDurable(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncAlways, 1, 1)
	if err := s.Log(0).Append(group(payload(0x10, 1))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Log(0).Append(group(payload(0x80, 2), payload(0x11, 3))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fs.Crash()
	sl := readShard(t, fs, 0)
	if len(sl.Payloads) != 4 { // header + op + interim + op
		t.Fatalf("recovered %d payloads, want 4", len(sl.Payloads))
	}
	if sl.TornBytes != 0 || sl.DanglingRecords != 0 {
		t.Fatalf("clean crash reported torn=%d dangling=%d", sl.TornBytes, sl.DanglingRecords)
	}
}

// TestBufferedCrashLosesTail: buffered groups die with a crash, but a
// Flush makes everything before it durable.
func TestBufferedCrashLosesTail(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncNone, 1, 1)
	s.Log(0).Append(group(payload(0x10, 1)))
	if err := s.Log(0).Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	s.Log(0).Append(group(payload(0x10, 2)))
	fs.Crash()
	sl := readShard(t, fs, 0)
	if len(sl.Payloads) != 2 { // header + first op; second op never flushed
		t.Fatalf("recovered %d payloads, want 2", len(sl.Payloads))
	}
	if !bytes.Equal(sl.Payloads[1], payload(0x10, 1)) {
		t.Fatalf("recovered op = %x", sl.Payloads[1])
	}
}

// TestTornWriteTruncates: a write torn mid-frame leaves a tail the reader
// truncates; the preceding durable groups are intact.
func TestTornWriteTruncates(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncAlways, 1, 1)
	s.Log(0).Append(group(payload(0x10, 1)))
	name := "wal/s000-g000001.wal"
	fs.TearNextWrite(name, 5) // lose most of the next group's bytes
	if err := s.Log(0).Append(group(payload(0x10, 2))); err == nil {
		t.Fatal("torn write not surfaced")
	}
	// Read the live view: the torn prefix is sitting unsynced in the file
	// exactly as a crashed-mid-write process would have left it on disk.
	sl := readShard(t, fs, 0)
	if len(sl.Payloads) != 2 {
		t.Fatalf("recovered %d payloads, want 2", len(sl.Payloads))
	}
	if sl.TornBytes != 5 {
		t.Fatalf("torn = %d, want 5", sl.TornBytes)
	}
	// The error is sticky: the log refuses further appends.
	if err := s.Log(0).Append(group(payload(0x10, 3))); err == nil {
		t.Fatal("append accepted after torn write")
	}
	if s.Err() == nil {
		t.Fatal("Set.Err nil after torn write")
	}
}

// TestPartialSyncTruncates: an fsync cut short durably promotes only a
// prefix; recovery truncates at the break.
func TestPartialSyncTruncates(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncNone, 1, 1)
	s.Log(0).Append(group(payload(0x10, 1)))
	s.Log(0).Append(group(payload(0x10, 2)))
	fs.PartialNextSync("wal/s000-g000001.wal", 3)
	if err := s.Log(0).Flush(); err == nil {
		t.Fatal("partial sync not surfaced")
	}
	fs.Crash()
	sl := readShard(t, fs, 0)
	if len(sl.Payloads) != 1 { // header only; both ops lost mid-frame
		t.Fatalf("recovered %d payloads, want 1", len(sl.Payloads))
	}
	if sl.TornBytes != 3 {
		t.Fatalf("torn = %d, want 3", sl.TornBytes)
	}
}

// TestDanglingInterimDropped: interim records whose closing op never
// became durable are dropped at read time.
func TestDanglingInterimDropped(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncAlways, 1, 1)
	s.Log(0).Append(group(payload(0x80, 1), payload(0x10, 1)))
	// Simulate losing the op: append interims alone (as if the group's
	// closing frame was torn off exactly at its boundary).
	s.Log(0).Append(group(payload(0x80, 2), payload(0x81, 3)))
	fs.Crash()
	sl := readShard(t, fs, 0)
	if len(sl.Payloads) != 3 { // header + interim + op
		t.Fatalf("recovered %d payloads, want 3", len(sl.Payloads))
	}
	if sl.DanglingRecords != 2 {
		t.Fatalf("dangling = %d, want 2", sl.DanglingRecords)
	}
	if sl.Payloads[2][0] != 0x10 {
		t.Fatalf("last recovered payload type = 0x%02x, want the op", sl.Payloads[2][0])
	}
}

// TestGenerationsConcatenate: ReadShard stitches generations in order and
// ScanDir reports the highest generation.
func TestGenerationsConcatenate(t *testing.T) {
	fs := faultfs.New()
	s1 := openSet(t, fs, wal.SyncAlways, 2, 1)
	s1.Log(0).Append(group(payload(0x10, 1)))
	s1.Log(1).Append(group(payload(0x10, 9)))
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openSet(t, fs, wal.SyncAlways, 2, 3) // gap in generations is fine
	s2.Log(0).Append(group(payload(0x10, 2)))
	s2.Close()

	byShard, maxGen, err := wal.ScanDir(fs, "wal")
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if maxGen != 3 {
		t.Fatalf("maxGen = %d, want 3", maxGen)
	}
	if len(byShard[0]) != 2 || len(byShard[1]) != 2 {
		t.Fatalf("segment counts = %d,%d, want 2,2", len(byShard[0]), len(byShard[1]))
	}
	sl := readShard(t, fs, 0)
	var ops []byte
	for _, p := range sl.Payloads {
		if p[0] == 0x10 {
			ops = append(ops, p[1])
		}
	}
	if !bytes.Equal(ops, []byte{1, 2}) {
		t.Fatalf("ops across generations = %v, want [1 2]", ops)
	}
}

// TestOpenRefusesExistingSegment: generations are write-once.
func TestOpenRefusesExistingSegment(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncAlways, 1, 1)
	s.Close()
	if _, err := wal.Open(wal.Options{Dir: "wal", FS: fs}, 1, 1, func(int) []byte { return nil }); err == nil {
		t.Fatal("reopening an existing generation succeeded")
	}
}

// TestScanDirIgnoresForeign: non-segment files don't confuse discovery,
// and a missing directory is an empty history.
func TestScanDirIgnoresForeign(t *testing.T) {
	fs := faultfs.New()
	fs.SetFile("wal/README", []byte("not a segment"))
	byShard, maxGen, err := wal.ScanDir(fs, "wal")
	if err != nil || len(byShard) != 0 || maxGen != 0 {
		t.Fatalf("foreign-only dir: byShard=%v maxGen=%d err=%v", byShard, maxGen, err)
	}
	byShard, maxGen, err = wal.ScanDir(fs, "absent")
	if err != nil || len(byShard) != 0 || maxGen != 0 {
		t.Fatalf("absent dir: byShard=%v maxGen=%d err=%v", byShard, maxGen, err)
	}
}

// TestIntervalFlusherMakesDurable: the SyncInterval background flusher
// promotes appended groups without an explicit Flush.
func TestIntervalFlusherMakesDurable(t *testing.T) {
	fs := faultfs.New()
	s, err := wal.Open(wal.Options{Dir: "wal", Policy: wal.SyncInterval, Interval: 2 * time.Millisecond, FS: fs}, 1, 1, func(i int) []byte {
		return group(payload(0x01, byte(i)))
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	s.Log(0).Append(group(payload(0x10, 1)))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data := fs.Durable("wal/s000-g000001.wal"); len(data) > 0 {
			fs2 := faultfs.New()
			fs2.SetFile("wal/s000-g000001.wal", data)
			byShard, _, _ := wal.ScanDir(fs2, "wal")
			sl, err := wal.ReadShard(fs2, byShard[0])
			if err == nil && len(sl.Payloads) == 2 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never made the group durable")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLargeBufferInlineFlush: a buffered log writes (without fsync) once
// its buffer passes the threshold, bounding memory.
func TestLargeBufferInlineFlush(t *testing.T) {
	fs := faultfs.New()
	s := openSet(t, fs, wal.SyncNone, 1, 1)
	defer s.Close()
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	var appended int
	for i := 0; i < 100; i++ {
		g := group(append([]byte{0x10}, big...))
		appended += len(g)
		if err := s.Log(0).Append(g); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Live (unsynced) file view must show the threshold-flushed prefix.
	data, err := fs.ReadFile("wal/s000-g000001.wal")
	if err != nil || len(data) == 0 {
		t.Fatalf("no bytes written inline (err=%v)", err)
	}
	if len(data) > appended+64 {
		t.Fatalf("wrote %d bytes for %d appended", len(data), appended)
	}
}

func ExampleScanDir() {
	fs := faultfs.New()
	s, _ := wal.Open(wal.Options{Dir: "d", Policy: wal.SyncAlways, FS: fs}, 2, 1, func(i int) []byte {
		return wal.AppendFrame(nil, []byte{0x01, byte(i)})
	})
	s.Close()
	byShard, maxGen, _ := wal.ScanDir(fs, "d")
	fmt.Println(len(byShard), maxGen)
	// Output: 2 1
}
