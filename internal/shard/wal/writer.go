package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"
)

// SyncPolicy selects when appended groups become durable.
type SyncPolicy uint8

const (
	// SyncInterval (the default) buffers groups in memory and a
	// background flusher writes and fsyncs them every Options.Interval —
	// group commit: a crash loses at most one interval of admissions,
	// and the append hot path never touches the disk.
	SyncInterval SyncPolicy = iota
	// SyncAlways writes and fsyncs every group inside Append — no
	// acknowledged operation is ever lost, at one fsync per operation.
	SyncAlways
	// SyncNone buffers and writes opportunistically but only fsyncs on
	// Flush/Close — crash durability is whatever the OS got around to.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// Options parameterises a log Set.
type Options struct {
	// Dir is the WAL directory; one segment file per shard per
	// generation lives in it.
	Dir string
	// Policy selects the fsync policy; zero value is SyncInterval.
	Policy SyncPolicy
	// Interval is the SyncInterval flush period; zero means 50ms.
	Interval time.Duration
	// FS overrides the filesystem; nil means the real OS filesystem.
	FS FS
}

// Filesystem resolves the FS in effect: Options.FS, or the real OS
// filesystem when nil.
func (o Options) Filesystem() FS {
	if o.FS != nil {
		return o.FS
	}
	return osFS{}
}

func (o Options) interval() time.Duration {
	if o.Interval > 0 {
		return o.Interval
	}
	return 50 * time.Millisecond
}

// flushThreshold bounds the in-memory buffer of a buffered-policy log:
// once a log holds this much it is written (not fsynced) inline.
const flushThreshold = 256 << 10

// Log is one shard's append-only log. Append is called under the owning
// shard's single-writer lock; the Log's own mutex is a leaf that only
// orders appends against the background flusher.
type Log struct {
	mu       sync.Mutex
	f        File
	policy   SyncPolicy
	buf      []byte
	unsynced bool // bytes written to f since the last Sync
	err      error
}

// Append hands the log one operation group (one or more frames built with
// AppendFrame). The bytes are copied; durability follows the sync policy.
// Errors are sticky: after a write or sync failure every later Append
// reports it and writes stop.
func (l *Log) Append(group []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.policy == SyncAlways {
		if _, err := l.f.Write(group); err != nil {
			l.err = err
			return err
		}
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
		return nil
	}
	l.buf = append(l.buf, group...)
	if len(l.buf) >= flushThreshold {
		return l.flushLocked(false)
	}
	return nil
}

// flushLocked writes the buffer and, when sync is set, fsyncs.
func (l *Log) flushLocked(sync bool) error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			l.err = err
			return err
		}
		l.buf = l.buf[:0]
		l.unsynced = true
	}
	if sync && l.unsynced {
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
		l.unsynced = false
	}
	return nil
}

// Flush writes any buffered groups and fsyncs.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(true)
}

// Err returns the sticky write error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.flushLocked(true)
	cerr := l.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Set is the per-router bundle of shard logs for one generation: it owns
// the files, the shared background flusher, and close ordering.
type Set struct {
	opts Options
	gen  uint64
	logs []*Log

	stop      chan struct{}
	flusherWG sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open creates the segment files of one generation — one per shard — and
// appends each shard's header record (framed by the caller via header,
// which receives the shard index) durably before returning. Files must not
// already exist; recovering over an existing history picks a fresh
// generation instead of reopening old segments.
func Open(opts Options, shards int, gen uint64, header func(shard int) []byte) (*Set, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: empty dir")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("wal: non-positive shard count %d", shards)
	}
	fs := opts.Filesystem()
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	s := &Set{opts: opts, gen: gen, logs: make([]*Log, shards), stop: make(chan struct{})}
	for i := 0; i < shards; i++ {
		name := segmentPath(opts.Dir, i, gen)
		f, err := fs.Create(name)
		if err != nil {
			s.closeOpened(i)
			return nil, fmt.Errorf("wal: creating %s: %w", name, err)
		}
		l := &Log{f: f, policy: opts.Policy}
		if hdr := header(i); len(hdr) > 0 {
			if err := l.Append(hdr); err == nil {
				err = l.Flush()
			}
			if err := l.Err(); err != nil {
				s.logs[i] = l
				s.closeOpened(i + 1)
				return nil, fmt.Errorf("wal: writing header of %s: %w", name, err)
			}
		}
		s.logs[i] = l
	}
	if opts.Policy == SyncInterval {
		s.flusherWG.Add(1)
		go s.flushLoop()
	}
	return s, nil
}

func segmentPath(dir string, shard int, gen uint64) string {
	return filepath.Join(dir, segmentName(shard, gen))
}

func (s *Set) closeOpened(n int) {
	for i := 0; i < n; i++ {
		if s.logs[i] != nil {
			s.logs[i].close()
		}
	}
}

// flushLoop is the SyncInterval group-commit flusher.
func (s *Set) flushLoop() {
	defer s.flusherWG.Done()
	t := time.NewTicker(s.opts.interval())
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, l := range s.logs {
				l.Flush()
			}
		}
	}
}

// Log returns shard i's log.
func (s *Set) Log(i int) *Log { return s.logs[i] }

// Generation returns the generation the set writes.
func (s *Set) Generation() uint64 { return s.gen }

// Flush writes and fsyncs every shard's buffered groups, returning the
// first error.
func (s *Set) Flush() error {
	var first error
	for _, l := range s.logs {
		if err := l.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Err returns the first sticky error across the shard logs, if any.
func (s *Set) Err() error {
	for _, l := range s.logs {
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the flusher, flushes and fsyncs every log, and closes the
// files. Safe to call more than once.
func (s *Set) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.flusherWG.Wait()
		for _, l := range s.logs {
			if err := l.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
