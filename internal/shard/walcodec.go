// WAL record payloads — the binary vocabulary of the per-shard write-ahead
// log (see wal.go in package wal for framing and walhook.go for when each
// record is written and how it replays).
//
// A shard's log is a sequence of operation groups. The terminal record of
// a group is the *operation* that mutated the shard's session (an
// admission, an accepted withdrawal, a clock advance, a finish, a manual
// retirement); interim records carry the decisions made while that
// operation ran whose outcomes depend on other shards and are therefore
// not reproducible from this shard's inputs alone: commit-gate verdicts on
// mirrored endpoints, owner-expiry arbitration outcomes, and the global
// sequence number assigned to each emitted event. Everything else a shard
// does — algorithm behavior, expiry firing, scheduled retirement — is a
// deterministic function of the operation stream and is deliberately not
// recorded.
package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"ftoa/internal/model"
	"ftoa/internal/shard/wal"
)

// Record types. Interim types carry wal.InterimBit so the reader can drop
// a dangling decision tail whose operation never became durable.
const (
	recHeader byte = 0x01
	// recSeal commits a checkpoint generation (rebalance.go): it is
	// appended to shard 0's log only, after every shard's re-admission
	// records were flushed, so its durability implies the whole
	// checkpoint's. Payload: u64 topology version. A checkpoint
	// generation without a durable seal is skipped by recovery — the
	// migration never happened.
	recSeal byte = 0x02

	opWorker      byte = 0x10 // owner admission of a worker
	opTask        byte = 0x11 // owner admission of a task
	opGhostWorker byte = 0x12 // mirrored ghost-copy admission
	opGhostTask   byte = 0x13
	opAdvance     byte = 0x20 // clock advance
	opFinish      byte = 0x21 // session finish
	opRetire      byte = 0x22 // manual Router.Retire
	opWithdraw    byte = 0x23 // cross-shard retraction applied here
	// opWithdrawLocal is a platform-initiated withdrawal of an owner
	// receipt (withdraw.go). Payload: flags (bit 0 task, bit 1 claim word
	// won, bit 2 session accepted), u32 local handle. Additive: logs
	// written before this type existed never contain it and replay
	// unchanged.
	opWithdrawLocal byte = 0x24

	decGate   = 0x00 | wal.InterimBit // commit-gate verdict on a mirrored pair
	decExpiry = 0x01 | wal.InterimBit // owner-expiry arbitration outcome
	decSeq    = 0x02 | wal.InterimBit // global sequence number of one event
)

// Owner-expiry arbitration outcomes (decExpiry payload).
const (
	expirySuppressed byte = 0 // a commit elsewhere owns the lifecycle
	expiryClaimed    byte = 1 // Strict: this expiry won the claim word
	expiryEmitted    byte = 2 // emitted without a claim transition
)

// walMagic anchors header records; bump the version on any payload change.
// v2 extends the header with the topology-epoch chain (kind, topology
// version and image, epoch and sequence bases) and adds the checkpoint
// seal record.
const walMagic = "FTWALv2\x00"

// Generation kinds (header payload): how a generation relates to the
// topology-epoch chain recovery walks (walhook.go).
const (
	genInitial      byte = 0 // first generation of a fresh router
	genContinuation byte = 1 // reopened by recovery; same topology as its chain
	genCheckpoint   byte = 2 // opened by Rebalance; holds the full post-migration state
)

// headerMeta is the v2 header metadata shared by every shard's header of
// one generation.
type headerMeta struct {
	gen  uint64
	kind byte
	// topoVer and topo identify the topology every record of the
	// generation was written under (topo is a Topology.Encode image).
	topoVer uint64
	topo    []byte
	// epochBase is the arena-epoch floor of the generation's sessions: a
	// checkpoint starts every new session above anything the old topology
	// receipted, and recovery re-applies the floor before replay.
	epochBase uint64
	// seqBase is the global sequence counter at the generation's chain
	// start: everything below it belongs to earlier topologies and is not
	// replayable from the chain, so recovery resumes the eviction boundary
	// (and the sequence counter) at least here.
	seqBase uint64
}

// mirrorInfo is the decoded halo identity of a mirrored admission.
type mirrorInfo struct {
	gid        uint64
	owner      int32
	ownerLocal int32
	copies     []int32 // owner record only; empty on ghost records
}

// --- encoding ---------------------------------------------------------

func appendU16(dst []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(dst, v)
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// encodeFingerprint canonically encodes every Config field that replay
// determinism depends on. Recovery refuses a log whose fingerprint differs
// from the booting config: replaying admissions into a differently shaped
// router would silently diverge. The algorithm itself is not encodable —
// the operator must supply the same NewAlgorithm (and, for guided
// algorithms, the same guide); this is documented at Recover.
func encodeFingerprint(cfg *Config) []byte {
	fp := make([]byte, 0, 96)
	fp = append(fp, byte(cfg.Matcher.Mode))
	fp = appendU32(fp, uint32(cfg.Cols))
	fp = appendU32(fp, uint32(cfg.Rows))
	fp = appendF64(fp, cfg.Halo)
	fp = appendF64(fp, cfg.Matcher.Velocity)
	b := cfg.Matcher.Bounds
	fp = appendF64(fp, b.MinX)
	fp = appendF64(fp, b.MinY)
	fp = appendF64(fp, b.MaxX)
	fp = appendF64(fp, b.MaxY)
	fp = appendU64(fp, uint64(cfg.Retention))
	fp = appendF64(fp, cfg.RetireInterval)
	fp = appendU64(fp, uint64(cfg.Matcher.Hints.ExpectedWorkers))
	fp = appendU64(fp, uint64(cfg.Matcher.Hints.ExpectedTasks))
	fp = appendF64(fp, cfg.Matcher.Hints.Horizon)
	return fp
}

// encodeHeader builds one shard's framed header record.
func encodeHeader(shard int, fp []byte, hm headerMeta) []byte {
	p := make([]byte, 0, 1+len(walMagic)+4+8+2+len(fp)+1+8+8+8+4+len(hm.topo))
	p = append(p, recHeader)
	p = append(p, walMagic...)
	p = appendU32(p, uint32(shard))
	p = appendU64(p, hm.gen)
	p = appendU16(p, uint16(len(fp)))
	p = append(p, fp...)
	p = append(p, hm.kind)
	p = appendU64(p, hm.topoVer)
	p = appendU64(p, hm.epochBase)
	p = appendU64(p, hm.seqBase)
	p = appendU32(p, uint32(len(hm.topo)))
	p = append(p, hm.topo...)
	return wal.AppendFrame(nil, p)
}

// encodeSeal builds the framed checkpoint seal record (shard 0 only).
func encodeSeal(topoVer uint64) []byte {
	p := make([]byte, 0, 9)
	p = append(p, recSeal)
	p = appendU64(p, topoVer)
	return wal.AppendFrame(nil, p)
}

// appendWorkerBody encodes the model.Worker fields shared by owner and
// ghost records.
func appendWorkerBody(dst []byte, w *model.Worker) []byte {
	dst = appendU64(dst, uint64(w.ID))
	dst = appendF64(dst, w.Loc.X)
	dst = appendF64(dst, w.Loc.Y)
	dst = appendF64(dst, w.Arrive)
	return appendF64(dst, w.Patience)
}

func appendTaskBody(dst []byte, t *model.Task) []byte {
	dst = appendU64(dst, uint64(t.ID))
	dst = appendF64(dst, t.Loc.X)
	dst = appendF64(dst, t.Loc.Y)
	dst = appendF64(dst, t.Release)
	return appendF64(dst, t.Expiry)
}

// appendMirrorInfo encodes a mirrored admission's halo identity. withCopies
// is set on owner records (the authoritative copy list) and clear on ghost
// records (the ghost's shard never drives retractions of its siblings).
func appendMirrorInfo(dst []byte, rec *mirror, withCopies bool) []byte {
	dst = appendU64(dst, rec.gid)
	dst = appendU32(dst, uint32(rec.owner))
	dst = appendU32(dst, uint32(rec.ownerLocal))
	if !withCopies {
		return appendU16(dst, 0)
	}
	dst = appendU16(dst, uint16(len(rec.copies)))
	for _, c := range rec.copies {
		dst = appendU32(dst, uint32(c))
	}
	return dst
}

// encodeAdmission encodes an owner or ghost admission payload into dst.
// For owner admissions rec may be nil (unmirrored interior admission).
func encodeAdmission(dst []byte, ad *admission, rec *mirror, ghost bool) []byte {
	var typ byte
	switch {
	case ghost && ad.task:
		typ = opGhostTask
	case ghost:
		typ = opGhostWorker
	case ad.task:
		typ = opTask
	default:
		typ = opWorker
	}
	dst = append(dst, typ)
	var flags byte
	if rec != nil {
		flags |= 1
	}
	if ad.expiryFired {
		// Only possible on migrated owner re-admissions (rebalance.go):
		// the deadline expiry was already emitted under the old topology.
		flags |= 2
	}
	dst = append(dst, flags)
	if ad.task {
		dst = appendTaskBody(dst, &ad.t)
	} else {
		dst = appendWorkerBody(dst, &ad.w)
	}
	if rec != nil {
		dst = appendMirrorInfo(dst, rec, !ghost)
	}
	return dst
}

// --- decoding ---------------------------------------------------------

// decoder is a little-endian payload cursor with a sticky error.
type decoder struct {
	p   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8(what string) byte {
	if d.err != nil || d.off+1 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := d.p[d.off]
	d.off++
	return v
}

func (d *decoder) u16(what string) uint16 {
	if d.err != nil || d.off+2 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(d.p[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil || d.off+4 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.off+8 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *decoder) bytes(n int, what string) []byte {
	if d.err != nil || d.off+n > len(d.p) {
		d.fail(what)
		return nil
	}
	v := d.p[d.off : d.off+n]
	d.off += n
	return v
}

// decodeHeader validates one shard's header record against the booting
// config's fingerprint and returns the generation's chain metadata.
func decodeHeader(payload []byte, shard int, fp []byte) (hm headerMeta, err error) {
	d := decoder{p: payload, off: 1} // type byte already dispatched
	magic := d.bytes(len(walMagic), "magic")
	if d.err == nil && string(magic) != walMagic {
		return hm, fmt.Errorf("wal: bad magic (version mismatch or foreign file)")
	}
	gotShard := int(int32(d.u32("shard")))
	hm.gen = d.u64("generation")
	fpLen := int(d.u16("fingerprint length"))
	gotFP := d.bytes(fpLen, "fingerprint")
	hm.kind = d.u8("generation kind")
	hm.topoVer = d.u64("topology version")
	hm.epochBase = d.u64("epoch base")
	hm.seqBase = d.u64("sequence base")
	topoLen := int(d.u32("topology length"))
	hm.topo = d.bytes(topoLen, "topology image")
	if d.err != nil {
		return hm, d.err
	}
	if gotShard != shard {
		return hm, fmt.Errorf("wal: segment header names shard %d, expected %d", gotShard, shard)
	}
	if string(gotFP) != string(fp) {
		return hm, fmt.Errorf("wal: config fingerprint mismatch: the log was written under a different router configuration (mode/grid/halo/bounds/velocity/retention/retire/hints must match)")
	}
	if hm.kind > genCheckpoint {
		return hm, fmt.Errorf("wal: unknown generation kind %d", hm.kind)
	}
	return hm, nil
}

// decodeAdmission decodes an owner or ghost admission payload (type byte
// already dispatched by the caller).
func decodeAdmission(payload []byte, task bool) (ad admission, mi mirrorInfo, mirrored bool, err error) {
	d := decoder{p: payload, off: 1}
	flags := d.u8("flags")
	ad.task = task
	if task {
		ad.t.ID = int(int64(d.u64("task id")))
		ad.t.Loc.X = d.f64("task x")
		ad.t.Loc.Y = d.f64("task y")
		ad.t.Release = d.f64("task release")
		ad.t.Expiry = d.f64("task expiry")
	} else {
		ad.w.ID = int(int64(d.u64("worker id")))
		ad.w.Loc.X = d.f64("worker x")
		ad.w.Loc.Y = d.f64("worker y")
		ad.w.Arrive = d.f64("worker arrive")
		ad.w.Patience = d.f64("worker patience")
	}
	if flags&2 != 0 {
		ad.migrated, ad.expiryFired = true, true
	}
	if flags&1 != 0 {
		mirrored = true
		mi.gid = d.u64("gid")
		mi.owner = int32(d.u32("owner"))
		mi.ownerLocal = int32(d.u32("owner local"))
		n := int(d.u16("copy count"))
		for i := 0; i < n && d.err == nil; i++ {
			mi.copies = append(mi.copies, int32(d.u32("copy")))
		}
	}
	return ad, mi, mirrored, d.err
}
