// WAL recording and recovery for the Router — the durability layer of the
// serving stack (walcodec.go defines the records, package wal the framing
// and files).
//
// # What is recorded, and why it is enough
//
// Each shard's session is single-writer and deterministic: replaying the
// exact operation sequence it executed (admissions with the exact values
// passed, accepted withdrawals, clock advances, finish, manual
// retirements) reproduces its arenas, algorithm state, event stream and
// counters bit for bit. Four things are NOT functions of one shard's
// inputs, because they couple shards through the halo arbitration and the
// global sequence counter; those — and only those — are recorded as
// interim decision records inside the operation group that produced them:
//
//   - commit-gate verdicts on pairs with a mirrored endpoint (the claim
//     CAS races other shards at runtime);
//   - owner-expiry arbitration outcomes (ditto);
//   - the global sequence number assigned to each emitted event (the
//     counter interleaves across shards);
//   - cross-shard retractions, which are recorded as withdraw operations
//     in the *target* shard's log at the position they were applied, so
//     every shard's log is self-contained and replays without consulting
//     any other shard's timing.
//
// During replay the recorded decisions are consumed instead of re-arbitrated
// (reconstructing the mirror claim words as a side effect), retraction
// propagation is suppressed (each shard's own log already carries its
// withdrawals), and scheduled retirement re-runs organically — it is a
// deterministic function of the op stream and deliberately unrecorded.
//
// # Crash atomicity
//
// The operation record is appended last, closing its group; a crash that
// loses it loses the decisions with it (the reader drops dangling interim
// runs), so a recovered shard's event stream is always a durable prefix of
// the pre-crash one. A clean shutdown (flush before exit) loses nothing
// and recovery is then bit-identical, which is what the parity tests gate.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ftoa/internal/shard/wal"
)

// shardWAL is one shard's recorder: a group buffer of framed interim
// records closed by each operation record. All methods run under the
// owning shard's single-writer lock; wal.Log.Append orders the handoff
// against the background flusher.
type shardWAL struct {
	log     *wal.Log
	group   []byte
	scratch []byte
}

func (sw *shardWAL) recGate(ok bool) {
	var v byte
	if ok {
		v = 1
	}
	sw.scratch = append(sw.scratch[:0], decGate, v)
	sw.group = wal.AppendFrame(sw.group, sw.scratch)
}

func (sw *shardWAL) recExpiry(outcome byte) {
	sw.scratch = append(sw.scratch[:0], decExpiry, outcome)
	sw.group = wal.AppendFrame(sw.group, sw.scratch)
}

func (sw *shardWAL) recSeq(seq uint64) {
	sw.scratch = append(sw.scratch[:0], decSeq)
	sw.scratch = binary.LittleEndian.AppendUint64(sw.scratch, seq)
	sw.group = wal.AppendFrame(sw.group, sw.scratch)
}

// op closes the current group with payload and hands it to the log. Append
// errors are sticky in the log and surfaced via Router.WALErr — the
// serving path stays available when the disk does not.
func (sw *shardWAL) op(payload []byte) {
	sw.group = wal.AppendFrame(sw.group, payload)
	sw.log.Append(sw.group)
	sw.group = sw.group[:0]
	sw.scratch = payload[:0]
}

// dropGroup discards buffered decisions after an operation that did not
// take effect (a refused admission emits nothing and must record nothing).
func (sw *shardWAL) dropGroup() { sw.group = sw.group[:0] }

func (sw *shardWAL) opAdmission(ad *admission, rec *mirror, ghost bool) {
	sw.op(encodeAdmission(sw.scratch[:0], ad, rec, ghost))
}

func (sw *shardWAL) opAdvance(now float64) {
	p := append(sw.scratch[:0], opAdvance)
	sw.op(appendF64(p, now))
}

func (sw *shardWAL) opFinish() {
	sw.op(append(sw.scratch[:0], opFinish))
}

func (sw *shardWAL) opRetire(horizon float64) {
	p := append(sw.scratch[:0], opRetire)
	sw.op(appendF64(p, horizon))
}

func (sw *shardWAL) opWithdraw(pw pendingWithdraw) {
	var flags byte
	if pw.task {
		flags = 1
	}
	p := append(sw.scratch[:0], opWithdraw, flags)
	sw.op(binary.LittleEndian.AppendUint64(p, pw.gid))
}

func (sw *shardWAL) opWithdrawLocal(local int, task, claimed, applied bool) {
	var flags byte
	if task {
		flags |= 1
	}
	if claimed {
		flags |= 2
	}
	if applied {
		flags |= 4
	}
	p := append(sw.scratch[:0], opWithdrawLocal, flags)
	sw.op(appendU32(p, uint32(local)))
}

// replayState is the cross-shard recovery context: the shared mirror
// records keyed by gid (shards are replayed one after another; whichever
// record mentions a gid first materialises it, the owner record fills in
// the authoritative copy list) and the counters to restore.
type replayState struct {
	mirrors map[uint64]*mirror
	nextSeq uint64
	maxGid  uint64
	events  int
}

// shardReplay is one shard's decision cursor while its log replays: the
// interim records of the group being applied, consumed in record order by
// the same hooks that produced them. Errors are sticky; any leftover or
// missing decision aborts recovery as corruption.
type shardReplay struct {
	st      *replayState
	interim [][]byte
	di      int
	err     error
}

func (rp *shardReplay) next(typ byte, what string) []byte {
	if rp.err != nil {
		return nil
	}
	if rp.di >= len(rp.interim) {
		rp.err = fmt.Errorf("wal: missing recorded %s", what)
		return nil
	}
	p := rp.interim[rp.di]
	rp.di++
	if len(p) < 2 || p[0] != typ {
		rp.err = fmt.Errorf("wal: expected recorded %s, found type 0x%02x", what, p[0])
		return nil
	}
	return p
}

func (rp *shardReplay) popGate() bool {
	p := rp.next(decGate, "gate verdict")
	return p != nil && p[1] != 0
}

func (rp *shardReplay) popExpiry() byte {
	p := rp.next(decExpiry, "expiry outcome")
	if p == nil {
		return expirySuppressed
	}
	return p[1]
}

func (rp *shardReplay) popSeq() uint64 {
	p := rp.next(decSeq, "event sequence number")
	if p == nil || len(p) < 9 {
		if rp.err == nil {
			rp.err = errors.New("wal: short sequence record")
		}
		return rp.st.nextSeq
	}
	seq := binary.LittleEndian.Uint64(p[1:9])
	if seq+1 > rp.st.nextSeq {
		rp.st.nextSeq = seq + 1
	}
	rp.st.events++
	return seq
}

// replayGate is the CommitGate during replay: the recorded verdict stands
// in for the claim CAS, and a winning verdict reconstructs the mirror's
// claim word exactly as the original commit did.
func (si *shardInstance) replayGate(rw, rt *mirror, now float64) bool {
	ok := si.rep.popGate()
	if si.rep.err != nil {
		return false
	}
	if !ok {
		si.halo.claimsLost++
		return false
	}
	if rw != nil {
		rw.commit(now)
	}
	if rt != nil {
		rt.commit(now)
	}
	return true
}

// RecoveryInfo summarises one Recover call.
type RecoveryInfo struct {
	// Recovered is false when the WAL directory held no history and the
	// router started fresh.
	Recovered bool
	// Shards is the router's shard count; Segments how many generation
	// files were read.
	Shards, Segments int
	// Records counts replayed records; Events the sequenced lifecycle
	// events reconstructed; Matches the committed pairs among them.
	Records, Events, Matches int
	// TornBytes counts bytes dropped truncating corrupt segment tails;
	// DanglingRecords the decision records dropped because their closing
	// operation never became durable. Both are expected after a crash and
	// never refuse a boot.
	TornBytes       int64
	DanglingRecords int
	// MaxClock is the highest recovered shard clock (0 when none
	// advanced) — a serving layer resumes its session clock at or above
	// it so recovered deadlines keep meaning what they meant.
	MaxClock float64
	// Generation is the segment generation the recovered router writes.
	Generation uint64
	// TopologyVersion is the topology epoch the recovered router serves;
	// Topology renders it (e.g. "4x4+6"). SkippedGenerations counts
	// generations on disk that did not contribute to the recovered state:
	// unsealed checkpoints (migrations that never committed) and
	// generations superseded by a later sealed checkpoint.
	TopologyVersion    uint64
	Topology           string
	SkippedGenerations int
}

// genData is one on-disk generation during recovery: its read segments by
// shard, the chain metadata from its first durable header, and whether a
// checkpoint seal is durable in shard 0.
type genData struct {
	gen     uint64
	hm      headerMeta
	hasMeta bool
	sealed  bool
	byShard map[int]*wal.ShardLog
}

// openWALSet opens one generation's log set for the given topology state
// without installing it. Callers hold no shard locks.
func (r *Router) openWALSet(ts *topoState, hm headerMeta) (*wal.Set, error) {
	fp := encodeFingerprint(&r.cfg)
	set, err := wal.Open(*r.cfg.WAL, len(ts.shards), hm.gen, func(i int) []byte {
		return encodeHeader(i, fp, hm)
	})
	if err != nil {
		return nil, err
	}
	if hm.gen > r.walAttempt {
		r.walAttempt = hm.gen
	}
	return set, nil
}

// attachWAL opens the generation and wires a recorder into every shard of
// the current state.
func (r *Router) attachWAL(hm headerMeta) error {
	ts := r.state()
	set, err := r.openWALSet(ts, hm)
	if err != nil {
		return err
	}
	r.walSet = set
	for i, si := range ts.shards {
		si.wal = &shardWAL{log: set.Log(i)}
	}
	return nil
}

// headerMetaFor builds the header metadata for a generation written under
// the given state.
func (r *Router) headerMetaFor(ts *topoState, gen uint64, kind byte, epochBase, seqBase uint64) headerMeta {
	return headerMeta{
		gen:       gen,
		kind:      kind,
		topoVer:   ts.version,
		topo:      ts.topo.Encode(nil),
		epochBase: epochBase,
		seqBase:   seqBase,
	}
}

// attachFreshWAL is the NewRouter path: it refuses a directory that
// already holds segments — silently writing a second history beside an
// existing one would orphan it; recovery over it must be explicit.
func (r *Router) attachFreshWAL(cfg *Config) error {
	byShard, _, err := wal.ScanDir(cfg.WAL.Filesystem(), cfg.WAL.Dir)
	if err != nil {
		return err
	}
	if len(byShard) > 0 {
		return fmt.Errorf("shard: WAL directory %s already contains segments; use Recover", cfg.WAL.Dir)
	}
	return r.attachWAL(r.headerMetaFor(r.state(), 1, genInitial, 0, 0))
}

// Recover reconstructs a Router from the write-ahead log in cfg.WAL.Dir
// and opens a fresh log generation for it, so the recovered router is
// itself durable. An empty or absent directory starts a fresh router
// (RecoveryInfo.Recovered is false). cfg must match the configuration the
// log was written under — the header fingerprint (mode, grid, halo,
// bounds, velocity, retention, retirement, hints) is verified per segment,
// and cfg.NewAlgorithm must construct the same algorithm over the same
// guide, which cannot be fingerprinted and is the operator's contract.
//
// Corrupt or partial segment tails are logically truncated, never fatal:
// recovery reports the dropped bytes in RecoveryInfo and continues —
// losing the unsynced tail of a crashed process is the expected case, and
// the recovered state is the durable prefix of the pre-crash state. After
// a clean shutdown (Finish not required; WALClose flushes) replay is
// lossless and the recovered event stream and matched set are
// bit-identical to the pre-crash router's.
func Recover(cfg Config) (*Router, *RecoveryInfo, error) {
	if cfg.WAL == nil {
		return nil, nil, errors.New("shard: Recover requires Config.WAL")
	}
	fs := cfg.WAL.Filesystem()
	segs, maxGen, err := wal.Segments(fs, cfg.WAL.Dir)
	if err != nil {
		return nil, nil, err
	}
	if len(segs) == 0 {
		r, err := NewRouter(cfg)
		if err != nil {
			return nil, nil, err
		}
		return r, &RecoveryInfo{Shards: r.NumShards(), Generation: 1, TopologyVersion: 1, Topology: r.state().topo.String()}, nil
	}
	fp := encodeFingerprint(&cfg)
	// Read every segment, grouped by generation (segs is gen-ordered).
	var ordered []*genData
	var cur *genData
	for _, sg := range segs {
		if cur == nil || cur.gen != sg.Gen {
			cur = &genData{gen: sg.Gen, byShard: make(map[int]*wal.ShardLog)}
			ordered = append(ordered, cur)
		}
		sl, err := wal.ReadShard(fs, []string{sg.Path})
		if err != nil {
			return nil, nil, err
		}
		cur.byShard[sg.Shard] = sl
		if !cur.hasMeta && len(sl.Payloads) > 0 && sl.Payloads[0][0] == recHeader {
			hm, err := decodeHeader(sl.Payloads[0], sg.Shard, fp)
			if err != nil {
				return nil, nil, fmt.Errorf("gen %d shard %d: %w", sg.Gen, sg.Shard, err)
			}
			cur.hm, cur.hasMeta = hm, true
		}
		if sg.Shard == 0 {
			for _, p := range sl.Payloads {
				if p[0] == recSeal {
					cur.sealed = true
				}
			}
		}
	}
	// Walk the topology-epoch chain: a sealed checkpoint restarts the
	// chain (it holds the complete post-migration state), an unsealed one
	// is a migration that never committed and contributes nothing, and
	// initial/continuation generations extend the running chain.
	var chain []*genData
	for _, g := range ordered {
		switch {
		case !g.hasMeta:
			// No durable header anywhere: no durable records either (the
			// header is each segment's first record).
		case g.hm.kind == genCheckpoint && g.sealed:
			chain = append(chain[:0], g)
		case g.hm.kind == genCheckpoint:
			// Unsealed: skipped; the pre-migration chain stands.
		default:
			chain = append(chain, g)
		}
	}
	// Resolve the chain's topology (the state every chain generation was
	// written under) and build the shell to replay into.
	topo := NewUniformTopology(cfg.Cols, cfg.Rows)
	base := headerMeta{topoVer: 1}
	if len(chain) > 0 {
		base = chain[0].hm
		for _, g := range chain[1:] {
			if g.hm.topoVer != base.topoVer {
				return nil, nil, fmt.Errorf("shard: generation %d written under topology version %d, chain is at %d", g.gen, g.hm.topoVer, base.topoVer)
			}
		}
		if len(base.topo) > 0 {
			if topo, err = DecodeTopology(base.topo); err != nil {
				return nil, nil, err
			}
		}
		if topo.BaseCols() != cfg.Cols || topo.BaseRows() != cfg.Rows {
			return nil, nil, fmt.Errorf("shard: recovered topology base %s does not match config grid %dx%d", topo.String(), cfg.Cols, cfg.Rows)
		}
	}
	r, err := newRouterShell(cfg)
	if err != nil {
		return nil, nil, err
	}
	ts, err := r.buildState(topo, base.topoVer, nil)
	if err != nil {
		return nil, nil, err
	}
	r.top.Store(ts)
	r.walAttempt = maxGen
	if base.epochBase > 0 {
		for _, si := range ts.shards {
			si.sess.SetEpochFloor(base.epochBase)
		}
	}
	info := &RecoveryInfo{
		Recovered:          true,
		Shards:             len(ts.shards),
		Generation:         maxGen + 1,
		TopologyVersion:    base.topoVer,
		Topology:           topo.String(),
		SkippedGenerations: len(ordered) - len(chain),
	}
	for _, g := range chain {
		for s := range g.byShard {
			if s < 0 || s >= len(ts.shards) {
				return nil, nil, fmt.Errorf("shard: WAL segment for shard %d in gen %d, but topology %s has %d regions", s, g.gen, topo.String(), len(ts.shards))
			}
		}
	}
	st := &replayState{mirrors: make(map[uint64]*mirror)}
	for i, si := range ts.shards {
		// Concatenate this shard's durable records across the chain.
		var payloads [][]byte
		for _, g := range chain {
			sl := g.byShard[i]
			if sl == nil {
				continue
			}
			info.Segments += sl.Segments
			info.TornBytes += sl.TornBytes
			info.DanglingRecords += sl.DanglingRecords
			info.Records += len(sl.Payloads)
			payloads = append(payloads, sl.Payloads...)
		}
		if len(payloads) == 0 {
			continue // this shard never wrote: it replays empty
		}
		if err := r.replayShard(si, payloads, fp, st); err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if st.nextSeq < base.seqBase {
		st.nextSeq = base.seqBase
	}
	r.seq.Store(st.nextSeq)
	r.gids.Store(st.maxGid)
	// Events below the chain's sequence base belong to earlier topologies
	// and are not replayable from the chain: resume the eviction boundary
	// there so stale cursors fail ErrEvicted instead of silently skipping.
	raiseBoundary(&r.evicted, base.seqBase)
	info.Events = st.events
	for _, si := range ts.shards {
		if now := si.sess.Now(); !math.IsInf(now, -1) && now > info.MaxClock {
			info.MaxClock = now
		}
		info.Matches += si.sess.Matches()
	}
	if err := r.attachWAL(headerMeta{
		gen:       maxGen + 1,
		kind:      genContinuation,
		topoVer:   base.topoVer,
		topo:      topo.Encode(nil),
		epochBase: base.epochBase,
		seqBase:   base.seqBase,
	}); err != nil {
		return nil, nil, err
	}
	return r, info, nil
}

// replayShard applies one shard's durable records in order. The shard's
// hooks (gate, expiry arbitration, sequence assignment) consume the
// group's interim records via si.rep; a group whose decisions do not line
// up with what replay asked for is corruption and aborts.
func (r *Router) replayShard(si *shardInstance, payloads [][]byte, fp []byte, st *replayState) error {
	rp := &shardReplay{st: st}
	si.rep = rp
	defer func() { si.rep = nil }()
	sawHeader := false
	for _, p := range payloads {
		if len(p) == 0 {
			return errors.New("wal: empty record")
		}
		typ := p[0]
		if typ == recHeader {
			// One per segment; each validates shard and fingerprint.
			if _, err := decodeHeader(p, si.id, fp); err != nil {
				return err
			}
			sawHeader = true
			continue
		}
		if !sawHeader {
			return errors.New("wal: records before any segment header")
		}
		if typ == recSeal {
			// Checkpoint seal (shard 0): a commit marker, not an operation.
			continue
		}
		if typ&wal.InterimBit != 0 {
			rp.interim = append(rp.interim, p)
			continue
		}
		rp.di = 0
		if err := r.replayOp(si, typ, p); err != nil {
			return err
		}
		if rp.err != nil {
			return rp.err
		}
		if rp.di != len(rp.interim) {
			return fmt.Errorf("wal: operation 0x%02x consumed %d of %d recorded decisions", typ, rp.di, len(rp.interim))
		}
		rp.interim = rp.interim[:0]
	}
	return nil
}

// replayOp applies one terminal operation record, mirroring the runtime
// mutation path it was recorded from.
func (r *Router) replayOp(si *shardInstance, typ byte, p []byte) error {
	switch typ {
	case opWorker, opTask, opGhostWorker, opGhostTask:
		task := typ == opTask || typ == opGhostTask
		ghost := typ == opGhostWorker || typ == opGhostTask
		ad, mi, mirrored, err := decodeAdmission(p, task)
		if err != nil {
			return err
		}
		if ghost && !mirrored {
			return errors.New("wal: ghost admission without mirror identity")
		}
		var rec *mirror
		if mirrored {
			rec = si.rep.st.mirrors[mi.gid]
			if rec == nil {
				rec = &mirror{gid: mi.gid, task: task, owner: mi.owner, ownerLocal: mi.ownerLocal}
				si.rep.st.mirrors[mi.gid] = rec
			}
			if len(mi.copies) > 0 {
				rec.copies = mi.copies
			}
			if mi.gid > si.rep.st.maxGid {
				si.rep.st.maxGid = mi.gid
			}
		}
		// Registration before admission, like the live path: the
		// algorithm may commit the object within the admission call and
		// that commit's recorded gate verdict resolves through the refs.
		var next int
		if rec != nil {
			if task {
				next = si.sess.NumTasks()
				si.putTask(next, rec)
			} else {
				next = si.sess.NumWorkers()
				si.putWorker(next, rec)
			}
			if !ghost && int32(next) != mi.ownerLocal {
				return fmt.Errorf("wal: owner admission replayed at handle %d, recorded %d", next, mi.ownerLocal)
			}
		}
		if _, _, err := ad.admit(si.sess); err != nil {
			return fmt.Errorf("wal: replaying admission: %w", err)
		}
		if ghost {
			if task {
				si.halo.ghostT++
			} else {
				si.halo.ghostW++
			}
		}
		si.afterWriteLocked(r)
	case opAdvance:
		d := decoder{p: p, off: 1}
		now := d.f64("advance clock")
		if d.err != nil {
			return d.err
		}
		si.sess.Advance(now)
		si.afterWriteLocked(r)
	case opFinish:
		si.sess.Finish()
		si.collectLocked(r)
	case opRetire:
		d := decoder{p: p, off: 1}
		horizon := d.f64("retire horizon")
		if d.err != nil {
			return d.err
		}
		si.collectLocked(r)
		si.sess.Retire(horizon)
		si.lastRetire = si.sess.Now()
	case opWithdraw:
		d := decoder{p: p, off: 1}
		flags := d.u8("withdraw flags")
		gid := d.u64("withdraw gid")
		if d.err != nil {
			return d.err
		}
		si.applyWithdrawLocked(pendingWithdraw{gid: gid, task: flags&1 != 0})
	case opWithdrawLocal:
		d := decoder{p: p, off: 1}
		flags := d.u8("local withdraw flags")
		local := int(int32(d.u32("local withdraw handle")))
		if d.err != nil {
			return d.err
		}
		return si.replayWithdrawLocal(local, flags&1 != 0, flags&2 != 0, flags&4 != 0)
	default:
		return fmt.Errorf("wal: unknown record type 0x%02x", typ)
	}
	return nil
}

// WALFlush writes and fsyncs every shard's buffered groups; a no-op
// without a WAL. Graceful shutdown calls it before exit so a clean stop
// loses nothing.
func (r *Router) WALFlush() error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if r.walSet == nil {
		return nil
	}
	return r.walSet.Flush()
}

// WALClose flushes and closes the log set; the router keeps serving but
// stops recording. Safe to call more than once or without a WAL.
func (r *Router) WALClose() error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if r.walSet == nil {
		return nil
	}
	return r.walSet.Close()
}

// WALErr surfaces the first sticky log write error, if any: the router
// prefers availability over durability, so append failures never block
// admissions — operators watch this (ftoa-serve exposes it in /stats).
func (r *Router) WALErr() error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if r.walSet == nil {
		return nil
	}
	return r.walSet.Err()
}

// WALGeneration returns the generation the router writes, 0 without a WAL.
func (r *Router) WALGeneration() uint64 {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if r.walSet == nil {
		return 0
	}
	return r.walSet.Generation()
}
