package shard

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"ftoa/internal/faultfs"
	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/shard/wal"
	"ftoa/internal/sim"
)

// walTestConfig is testConfig with retirement on (retirableGreedy is
// defined in retire_test.go) and a WAL over fs.
func walTestConfig(cols, rows int, halo float64, fs *faultfs.FS) Config {
	cfg := testConfig(cols, rows)
	cfg.Halo = halo
	cfg.RetireInterval = 40
	cfg.NewAlgorithm = func() sim.Algorithm { return &retirableGreedy{} }
	if fs != nil {
		cfg.WAL = &wal.Options{Dir: "wal", Policy: wal.SyncAlways, FS: fs}
	}
	return cfg
}

// walOp is one step of a deterministic driver script, applied identically
// to control and recorded routers.
type walOp struct {
	kind    byte // 'w', 't', 'a' (advance), 'r' (retire), 'f' (finish)
	w       model.Worker
	t       model.Task
	now     float64
	horizon float64
}

type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *lcg) f() float64 { return float64(g.next()>>11) / (1 << 53) }

// genWalOps produces a deterministic mixed stream over the 100×100 test
// bounds: admissions everywhere (borders included, so halo mirroring and
// arbitration fire), periodic clock advances, and an occasional manual
// retirement.
func genWalOps(n int, seed uint64) []walOp {
	g := lcg(seed)
	ops := make([]walOp, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		switch r := g.f(); {
		case r < 0.40:
			ops = append(ops, walOp{kind: 'w', w: model.Worker{
				ID:       i,
				Loc:      geo.Point{X: g.f() * 100, Y: g.f() * 100},
				Arrive:   clock,
				Patience: 5 + g.f()*20,
			}})
		case r < 0.80:
			ops = append(ops, walOp{kind: 't', t: model.Task{
				ID:      i,
				Loc:     geo.Point{X: g.f() * 100, Y: g.f() * 100},
				Release: clock,
				Expiry:  5 + g.f()*20,
			}})
		case r < 0.97:
			clock += g.f() * 4
			ops = append(ops, walOp{kind: 'a', now: clock})
		default:
			ops = append(ops, walOp{kind: 'r', horizon: clock})
		}
	}
	return ops
}

func applyWalOps(t *testing.T, r *Router, ops []walOp) {
	t.Helper()
	for i, op := range ops {
		var err error
		switch op.kind {
		case 'w':
			_, _, err = r.AddWorker(op.w)
		case 't':
			_, _, err = r.AddTask(op.t)
		case 'a':
			r.Advance(op.now)
		case 'r':
			r.Retire(op.horizon)
		case 'f':
			r.Finish()
		}
		if err != nil {
			t.Fatalf("op %d (%c): %v", i, op.kind, err)
		}
	}
}

func allEvents(t *testing.T, r *Router) []Event {
	t.Helper()
	evs, _, err := r.Events(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// expectParity asserts two routers carry bit-identical merged streams and
// per-shard stats.
func expectParity(t *testing.T, got, want *Router, label string) {
	t.Helper()
	ge, we := allEvents(t, got), allEvents(t, want)
	if len(ge) != len(we) {
		t.Fatalf("%s: %d events, want %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, ge[i], we[i])
		}
	}
	gs, ws := got.StatsAll(nil), want.StatsAll(nil)
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats diverge:\n got %+v\nwant %+v", label, gs, ws)
	}
	if got.Cursor() != want.Cursor() {
		t.Fatalf("%s: cursor %d, want %d", label, got.Cursor(), want.Cursor())
	}
}

func TestRecoverFreshDir(t *testing.T) {
	fs := faultfs.New()
	r, info, err := Recover(walTestConfig(2, 2, 10, fs))
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered || info.Generation != 1 || info.Shards != 4 {
		t.Fatalf("fresh info = %+v", info)
	}
	if _, _, err := r.AddWorker(model.Worker{Loc: geo.Point{X: 1, Y: 1}, Patience: 5}); err != nil {
		t.Fatal(err)
	}
	if err := r.WALClose(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRouterRefusesExistingWAL(t *testing.T) {
	fs := faultfs.New()
	cfg := walTestConfig(1, 1, 0, fs)
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.WALClose()
	if _, err := NewRouter(cfg); err == nil {
		t.Fatal("NewRouter accepted a directory with existing segments")
	}
}

func TestRecoverRefusesFingerprintMismatch(t *testing.T) {
	fs := faultfs.New()
	cfg := walTestConfig(2, 2, 10, fs)
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, r, genWalOps(20, 7))
	r.WALClose()
	bad := cfg
	bad.Halo = 25 // same grid, different arbitration geometry
	if _, _, err := Recover(bad); err == nil {
		t.Fatal("Recover accepted a config with a different fingerprint")
	}
	worse := cfg
	worse.Cols, worse.Rows = 4, 4
	if _, _, err := Recover(worse); err == nil {
		t.Fatal("Recover accepted a different grid")
	}
}

// TestRecoverCleanShutdownParity is the recovery acceptance gate at the
// unit level: drive a control router (no WAL) and a logged router with the
// same sequential stream, shut the log down cleanly mid-stream, recover,
// and require the recovered router to be bit-identical — merged events,
// per-shard stats, cursor — both at the crash point and after both
// continue with the rest of the stream.
func TestRecoverCleanShutdownParity(t *testing.T) {
	grids := []struct {
		name       string
		cols, rows int
		halo       float64
	}{
		{"1x1", 1, 1, 0},
		{"2x2-disjoint", 2, 2, 0},
		{"2x2-halo", 2, 2, 12},
		{"3x2-halo", 3, 2, 9},
	}
	for _, gr := range grids {
		for _, mode := range []sim.Mode{sim.Strict, sim.AssumeGuide} {
			t.Run(fmt.Sprintf("%s/%s", gr.name, mode), func(t *testing.T) {
				ops := genWalOps(400, 42)
				cut := len(ops) * 3 / 5

				plain := walTestConfig(gr.cols, gr.rows, gr.halo, nil)
				plain.Matcher.Mode = mode
				control, err := NewRouter(plain)
				if err != nil {
					t.Fatal(err)
				}

				fs := faultfs.New()
				logged := walTestConfig(gr.cols, gr.rows, gr.halo, fs)
				logged.Matcher.Mode = mode
				walled, err := NewRouter(logged)
				if err != nil {
					t.Fatal(err)
				}

				applyWalOps(t, control, ops[:cut])
				applyWalOps(t, walled, ops[:cut])
				if err := walled.WALClose(); err != nil {
					t.Fatal(err)
				}
				fs.Crash() // clean shutdown: flushed, so the crash is lossless

				rec, info, err := Recover(logged)
				if err != nil {
					t.Fatal(err)
				}
				if !info.Recovered || info.Generation != 2 {
					t.Fatalf("info = %+v", info)
				}
				if info.TornBytes != 0 || info.DanglingRecords != 0 {
					t.Fatalf("clean shutdown reported torn=%d dangling=%d", info.TornBytes, info.DanglingRecords)
				}
				expectParity(t, rec, control, "at recovery")
				if want := len(allEvents(t, control)); info.Events != want {
					t.Fatalf("info.Events = %d, want %d", info.Events, want)
				}

				// Both continue; the recovered router must stay in lockstep
				// (and its new generation keeps recording durably).
				applyWalOps(t, rec, ops[cut:])
				applyWalOps(t, control, ops[cut:])
				rec.Finish()
				control.Finish()
				expectParity(t, rec, control, "after continuation")
				if err := rec.WALErr(); err != nil {
					t.Fatalf("WAL error after continuation: %v", err)
				}
				if err := rec.WALClose(); err != nil {
					t.Fatal(err)
				}

				// And a second recovery over both generations reproduces the
				// final state.
				rec2, info2, err := Recover(logged)
				if err != nil {
					t.Fatal(err)
				}
				if info2.Generation != 3 {
					t.Fatalf("second recovery generation = %d", info2.Generation)
				}
				expectParity(t, rec2, control, "second recovery")
				rec2.WALClose()
			})
		}
	}
}

// frameBoundaries returns the byte offsets of every frame boundary in a
// segment image (0, after frame 1, ..., len(data)).
func frameBoundaries(data []byte) []int {
	bounds := []int{0}
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+8+n > len(data) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

// TestCrashPointSweep is the fault-injection acceptance gate: record one
// run durably, then for EVERY record boundary of every shard's segment,
// boot from a disk image truncated at that point. Recovery must always
// succeed, the truncated shard's stream must be a prefix of its full
// stream, and the untouched shards must replay their full streams — i.e.
// a crash at any boundary loses only the tail of the shard that lost
// bytes, never corrupts state. A few mid-frame cuts per shard check torn
// tails ride the same path.
func TestCrashPointSweep(t *testing.T) {
	cfg := walTestConfig(2, 2, 12, faultfs.New())
	recorder, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, recorder, genWalOps(160, 99))
	if err := recorder.WALClose(); err != nil {
		t.Fatal(err)
	}
	fullByShard := make(map[int][]Event)
	for _, ev := range allEvents(t, recorder) {
		fullByShard[ev.Shard] = append(fullByShard[ev.Shard], ev)
	}

	shards := recorder.NumShards()
	images := make([][]byte, shards)
	names := make([]string, shards)
	for s := 0; s < shards; s++ {
		names[s] = fmt.Sprintf("wal/s%03d-g%06d.wal", s, 1)
		images[s] = cfg.WAL.FS.(*faultfs.FS).Durable(names[s])
		if len(images[s]) == 0 {
			t.Fatalf("shard %d wrote no durable bytes", s)
		}
	}

	cuts := 0
	tryCut := func(s, cut int, expectTorn bool) {
		fs := faultfs.New()
		for o := 0; o < shards; o++ {
			img := images[o]
			if o == s {
				img = img[:cut]
			}
			fs.SetFile(names[o], img)
		}
		c := cfg
		c.WAL = &wal.Options{Dir: "wal", Policy: wal.SyncAlways, FS: fs}
		rec, info, err := Recover(c)
		if err != nil {
			t.Fatalf("shard %d cut %d: Recover: %v", s, cut, err)
		}
		defer rec.WALClose()
		if expectTorn && info.TornBytes == 0 {
			t.Fatalf("shard %d cut %d: mid-frame cut reported no torn bytes", s, cut)
		}
		recByShard := make(map[int][]Event)
		for _, ev := range allEvents(t, rec) {
			recByShard[ev.Shard] = append(recByShard[ev.Shard], ev)
		}
		for o := 0; o < shards; o++ {
			got, want := recByShard[o], fullByShard[o]
			if o != s && len(got) != len(want) {
				t.Fatalf("shard %d cut %d: untouched shard %d has %d events, want %d", s, cut, o, len(got), len(want))
			}
			if len(got) > len(want) {
				t.Fatalf("shard %d cut %d: shard %d has %d events, full run had %d", s, cut, o, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shard %d cut %d: shard %d event %d = %+v, want %+v", s, cut, o, i, got[i], want[i])
				}
			}
		}
		// The recovered router still serves.
		if _, _, err := rec.AddWorker(model.Worker{Loc: geo.Point{X: 50, Y: 50}, Patience: 5}); err != nil {
			t.Fatalf("shard %d cut %d: post-recovery admission: %v", s, cut, err)
		}
		cuts++
	}

	for s := 0; s < shards; s++ {
		bounds := frameBoundaries(images[s])
		for _, cut := range bounds {
			tryCut(s, cut, false)
		}
		// Mid-frame cuts: a handful spread across the file.
		for k := 1; k < len(bounds); k += len(bounds)/5 + 1 {
			if mid := (bounds[k-1] + bounds[k]) / 2; mid > bounds[k-1] {
				tryCut(s, mid, true)
			}
		}
	}
	t.Logf("swept %d crash points across %d shards", cuts, shards)
}
