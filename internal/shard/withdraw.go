// Platform-initiated withdrawal through the Router — the primitive behind
// the wire protocol's Withdraw request (a worker goes offline, a task is
// cancelled). This is distinct from the halo's internal retractions
// (halo.go), which address copies by gid after an arbitration settled: a
// platform withdrawal addresses an admission RECEIPT — (Handle, epoch) —
// and must itself win the object's claim word first, because a border
// object the platform withdraws here could otherwise still be committed
// by a neighbor session holding a ghost copy.
//
// Receipt semantics: a Handle's Local is only stable within the arena
// epoch it was issued in (retirement compacts and remaps handles), so the
// caller must present the epoch reported at admission and the withdrawal
// is refused with ErrStaleHandle once the shard has retired past it.
// This is deliberately conservative — a receipt from an older epoch may
// still name a live object, but verifying that would require per-object
// identity tracking the arenas do not keep; clients that withdraw
// promptly (within the -retire interval) never see the refusal.
package shard

import (
	"errors"
	"fmt"
)

// ErrStaleHandle is returned by WithdrawWorker/WithdrawTask when the
// receipt's epoch predates the shard's current arena epoch: the handle may
// have been remapped by retirement and no longer names the admitted
// object.
var ErrStaleHandle = errors.New("shard: handle epoch predates the shard's arena epoch (object retired or remapped)")

// WithdrawWorker retracts the worker admitted as (h, epoch) — the receipt
// AddWorker (or the batched admitter) reported — from matching
// consideration everywhere it exists: the owner copy is withdrawn from its
// session and, when the object was halo-mirrored, every ghost copy is
// retracted too. It reports whether the object was still live: false with
// a nil error means its lifecycle had already concluded (matched
// somewhere, expired under Strict arbitration, or already withdrawn) and
// nothing changed. Errors are reserved for invalid receipts: an unknown
// shard or handle, or a stale epoch (ErrStaleHandle).
//
// Like the session-level primitive it wraps, withdrawal is silent — no
// lifecycle event is emitted — and makes the object retirable.
func (r *Router) WithdrawWorker(h Handle, epoch uint64) (bool, error) {
	return r.withdraw(h, epoch, false)
}

// WithdrawTask retracts a task receipt; see WithdrawWorker.
func (r *Router) WithdrawTask(h Handle, epoch uint64) (bool, error) {
	return r.withdraw(h, epoch, true)
}

func (r *Router) withdraw(h Handle, epoch uint64, task bool) (bool, error) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	ts := r.state()
	if h.Shard < 0 || h.Shard >= len(ts.shards) {
		return false, fmt.Errorf("shard: withdraw names shard %d, grid has %d", h.Shard, len(ts.shards))
	}
	si := ts.shards[h.Shard]
	applied, err := si.withdrawOwner(r, h.Local, epoch, task)
	// A claimed border withdrawal enqueued ghost retractions; apply them
	// now (never while holding si.mu) so the copies are gone when the
	// call returns, matching the commit path's retraction promptness.
	r.applyPending(ts)
	return applied, err
}

func (si *shardInstance) withdrawOwner(r *Router, local int, epoch uint64, task bool) (bool, error) {
	si.mu.Lock()
	defer si.mu.Unlock()
	si.drainPendingLocked()
	if si.sess.Epoch() != epoch {
		return false, ErrStaleHandle
	}
	n := si.sess.NumWorkers()
	if task {
		n = si.sess.NumTasks()
	}
	if local < 0 || local >= n {
		return false, fmt.Errorf("shard: withdraw handle %d out of range (shard %d holds %d)", local, si.id, n)
	}
	refs := si.halo.wRef
	if task {
		refs = si.halo.tRef
	}
	rec := refAt(refs, local)
	if rec != nil && int(rec.owner) != si.id {
		// Honest receipts always name owner copies; a ghost copy's handle
		// is internal to the halo machinery and not withdrawable here.
		return false, fmt.Errorf("shard: handle %d on shard %d is a ghost copy (owner shard %d)", local, si.id, rec.owner)
	}
	claimed := false
	if rec != nil {
		// The object is mirrored: win the claim word before touching the
		// local copy, exactly like a Strict owner expiry — a withdrawal
		// ends the object's availability in every mode, so a ghost session
		// must never commit it afterwards. Losing means a commit (or a
		// Strict expiry) already owns the lifecycle: the local copy is
		// either the winner or already queued for retraction, and the
		// withdrawal is a no-op.
		for {
			s := rec.settle()
			if s != claimFree {
				return false, nil
			}
			if rec.state.CompareAndSwap(claimFree, claimExpired) {
				claimed = true
				break
			}
		}
		r.retractLosers(si.ts, rec, si.id)
	}
	var applied bool
	if task {
		applied = si.sess.WithdrawTask(local)
	} else {
		applied = si.sess.WithdrawWorker(local)
	}
	if applied && rec != nil {
		if task {
			si.dropTask(local, rec)
		} else {
			si.dropWorker(local, rec)
		}
	}
	if si.wal != nil && (applied || claimed) {
		// Recorded only when something changed: a refused withdrawal
		// mutates nothing and must replay as nothing. The claim outcome is
		// a cross-shard race, so it rides in the record (walcodec.go) and
		// replay reconstructs the claim word instead of re-racing it.
		si.wal.opWithdrawLocal(local, task, claimed, applied)
	}
	return applied, nil
}

// replayWithdrawLocal applies a recorded platform withdrawal during
// recovery; retraction fan-out is suppressed (each shard's log carries the
// retractions it applied, as opWithdraw records).
func (si *shardInstance) replayWithdrawLocal(local int, task, claimed, applied bool) error {
	refs := si.halo.wRef
	if task {
		refs = si.halo.tRef
	}
	rec := refAt(refs, local)
	if claimed {
		if rec == nil {
			return fmt.Errorf("wal: recorded claimed withdrawal of unmirrored handle %d", local)
		}
		rec.state.Store(claimExpired)
	}
	var got bool
	if task {
		got = si.sess.WithdrawTask(local)
	} else {
		got = si.sess.WithdrawWorker(local)
	}
	if got != applied {
		return fmt.Errorf("wal: withdrawal of handle %d replayed applied=%v, recorded %v", local, got, applied)
	}
	if applied && rec != nil {
		if task {
			si.dropTask(local, rec)
		} else {
			si.dropWorker(local, rec)
		}
	}
	return nil
}
