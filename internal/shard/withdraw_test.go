package shard

import (
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
	"ftoa/internal/sim"
)

// TestWithdrawInterior: withdrawing an interior receipt silences the
// object — no expiry event ever fires for it — and repeats are no-ops.
func TestWithdrawInterior(t *testing.T) {
	r, err := NewRouter(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(50, 50), Arrive: 0, Patience: 10})
	if err != nil {
		t.Fatal(err)
	}
	epoch := r.state().shards[0].sess.Epoch()
	if ok, err := r.WithdrawWorker(h, epoch); err != nil || !ok {
		t.Fatalf("WithdrawWorker = %v, %v; want true, nil", ok, err)
	}
	if ok, err := r.WithdrawWorker(h, epoch); err != nil || ok {
		t.Fatalf("second WithdrawWorker = %v, %v; want false, nil", ok, err)
	}
	r.Advance(100)
	if evs := allEvents(t, r); len(evs) != 0 {
		t.Fatalf("withdrawn worker emitted events: %+v", evs)
	}
	if st := r.ShardStats(0); st.WithdrawnWorkers != 1 || st.ExpiredWorkers != 0 {
		t.Fatalf("stats %+v, want 1 withdrawn, 0 expired", st)
	}
}

// TestWithdrawRefusals: invalid receipts error; a matched object refuses
// silently (its lifecycle already concluded).
func TestWithdrawRefusals(t *testing.T) {
	r, err := NewRouter(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	th, _, err := r.AddTask(model.Task{Loc: geo.Pt(50, 50), Release: 0, Expiry: 10})
	if err != nil {
		t.Fatal(err)
	}
	epoch := r.state().shards[0].sess.Epoch()
	if _, err := r.WithdrawTask(Handle{Shard: 9, Local: 0}, epoch); err == nil {
		t.Error("unknown shard accepted")
	}
	if _, err := r.WithdrawTask(Handle{Shard: 0, Local: 5}, epoch); err == nil {
		t.Error("out-of-range handle accepted")
	}
	if _, err := r.WithdrawTask(th, epoch+1); err != ErrStaleHandle {
		t.Errorf("wrong epoch: err = %v, want ErrStaleHandle", err)
	}
	// Match the task, then withdraw: refused, nothing changes.
	if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(50, 51), Arrive: 0, Patience: 10}); err != nil {
		t.Fatal(err)
	}
	if st := r.ShardStats(0); st.Matches != 1 {
		t.Fatalf("setup: %d matches, want 1", st.Matches)
	}
	if ok, err := r.WithdrawTask(th, epoch); err != nil || ok {
		t.Fatalf("withdraw of matched task = %v, %v; want false, nil", ok, err)
	}
}

// TestWithdrawStaleEpoch: a retirement bumps the arena epoch and receipts
// issued before it are refused, even when the handle still looks valid.
func TestWithdrawStaleEpoch(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.NewAlgorithm = func() sim.Algorithm { return &retirableGreedy{} }
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(10, 10), Arrive: 0, Patience: 100})
	if err != nil {
		t.Fatal(err)
	}
	epoch := r.state().shards[0].sess.Epoch()
	// A pair that matches at t=0, then a retirement past it: the pair is
	// compacted away, the epoch bumps, and the receipt — though its object
	// is still live — is conservatively refused.
	if _, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(50, 50), Arrive: 0, Patience: 100}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(50, 51), Release: 0, Expiry: 100}); err != nil {
		t.Fatal(err)
	}
	if w, _ := r.Retire(1); w == 0 {
		t.Fatal("setup: retirement dropped nothing")
	}
	if _, err := r.WithdrawWorker(h, epoch); err != ErrStaleHandle {
		t.Fatalf("err = %v, want ErrStaleHandle", err)
	}
}

// TestWithdrawMirrored: withdrawing a border (halo-mirrored) receipt wins
// the claim word and retracts every ghost copy, so no neighbor session can
// match it afterwards and no expiry fires anywhere.
func TestWithdrawMirrored(t *testing.T) {
	cfg := testConfig(2, 1)
	cfg.Halo = 10
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// On the 50 boundary: owner shard 0 (or 1), mirrored into the other.
	h, _, err := r.AddWorker(model.Worker{Loc: geo.Pt(49, 50), Arrive: 0, Patience: 20})
	if err != nil {
		t.Fatal(err)
	}
	ghostShard := 1 - h.Shard
	if gs := r.ShardStats(ghostShard); gs.GhostWorkers != 1 {
		t.Fatalf("setup: ghost shard stats %+v, want 1 ghost worker", gs)
	}
	epoch := r.state().shards[h.Shard].sess.Epoch()
	if ok, err := r.WithdrawWorker(h, epoch); err != nil || !ok {
		t.Fatalf("WithdrawWorker = %v, %v; want true, nil", ok, err)
	}
	if gs := r.ShardStats(ghostShard); gs.WithdrawnWorkers != 1 {
		t.Fatalf("ghost copy not retracted: %+v", gs)
	}
	// A task in the ghost shard's reach must not match the withdrawn
	// worker; with no other workers around it expires.
	if _, _, err := r.AddTask(model.Task{Loc: geo.Pt(52, 50), Release: 1, Expiry: 5}); err != nil {
		t.Fatal(err)
	}
	r.Advance(100)
	evs := allEvents(t, r)
	if len(evs) != 1 || evs[0].Kind != sim.EventTaskExpired {
		t.Fatalf("events = %+v, want exactly the task expiry", evs)
	}
}
