package sim

import (
	"sync"
	"testing"

	"ftoa/internal/geo"
)

// greedyScript matches every arriving task with the first available worker,
// dispatching workers so clones exercise the mutable movement state. The
// dispatch target is where twoByTwo's first task will appear — an
// open-world algorithm cannot peek at unreleased tasks.
func greedyScript() *scriptAlg {
	return &scriptAlg{
		name: "greedy-script",
		onTask: func(p Platform, t int, now float64) {
			for w := 0; w < p.NumWorkers(); w++ {
				if p.WorkerAvailable(w, now) && p.TryMatch(w, t, now) {
					return
				}
			}
		},
		onWorker: func(p Platform, w int, now float64) {
			p.Dispatch(w, geo.Pt(1, 0), now)
		},
	}
}

func TestCloneRunsIndependently(t *testing.T) {
	in := twoByTwo()
	base := NewEngine(in, Strict)
	want := base.Run(greedyScript()).Matching.Size()

	// Concurrent clones must reproduce the sequential result exactly and
	// must not corrupt each other's ground truth.
	const replicas = 8
	got := make([]int, replicas)
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = base.Clone().Run(greedyScript()).Matching.Size()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Errorf("clone %d matched %d, sequential matched %d", i, g, want)
		}
	}
	// The original engine still works after its clones ran.
	if again := base.Run(greedyScript()).Matching.Size(); again != want {
		t.Errorf("base engine after clones matched %d, want %d", again, want)
	}
}

func TestAllocTrackingOptIn(t *testing.T) {
	in := twoByTwo()
	// Default: no tracking, AllocBytes stays zero.
	if res := NewEngine(in, Strict).Run(greedyScript()); res.AllocBytes != 0 {
		t.Errorf("AllocBytes = %d without WithAllocTracking, want 0", res.AllocBytes)
	}
	// Opt-in: the replay allocates at least the matching pairs.
	if res := NewEngine(in, Strict, WithAllocTracking()).Run(greedyScript()); res.AllocBytes == 0 {
		t.Error("AllocBytes = 0 with WithAllocTracking, want > 0")
	}
	// Clones do not inherit tracking (process-wide counter, concurrency).
	tracked := NewEngine(in, Strict, WithAllocTracking())
	if res := tracked.Clone().Run(greedyScript()); res.AllocBytes != 0 {
		t.Errorf("clone AllocBytes = %d, want 0 (tracking not inherited)", res.AllocBytes)
	}
}
