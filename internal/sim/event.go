package sim

import "fmt"

// SessionEventKind distinguishes the lifecycle events a session emits.
type SessionEventKind uint8

const (
	// EventMatch is a committed worker-task pair.
	EventMatch SessionEventKind = iota
	// EventWorkerExpired is a worker whose deadline (Arrive+Patience)
	// passed while it was unmatched: the paper's "worker leaves the
	// platform unserved".
	EventWorkerExpired
	// EventTaskExpired is a task whose deadline (Release+Expiry) passed
	// while it was unmatched: the task can no longer be served.
	EventTaskExpired
)

func (k SessionEventKind) String() string {
	switch k {
	case EventMatch:
		return "match"
	case EventWorkerExpired:
		return "worker-expired"
	case EventTaskExpired:
		return "task-expired"
	default:
		return fmt.Sprintf("SessionEventKind(%d)", uint8(k))
	}
}

// SessionEvent is one entry of a session's lifecycle stream: every commit
// and every expiry, in fire order with non-decreasing Time. Worker and
// Task are session handles; the side not involved in an expiry is -1.
//
//   - EventMatch: Worker and Task are the committed pair, Time is the
//     commit time.
//   - EventWorkerExpired: Worker is the expired handle, Task is -1, Time
//     is the worker's deadline.
//   - EventTaskExpired: Task is the expired handle, Worker is -1, Time is
//     the task's deadline.
//
// Expiry semantics are mode-independent and purely observational: an
// expiry is emitted iff the object's deadline passed while it was
// unmatched, and emitting it never alters availability or algorithm state
// (in Strict mode deadlines are already enforced by the availability
// checks; in AssumeGuide mode an expired object may still be matched
// later, per the paper's counting assumption, so a worker expiry may be
// followed by a match of the same handle).
type SessionEvent struct {
	Kind   SessionEventKind
	Worker int
	Task   int
	Time   float64
}

// expiryEntry is one pending platform-side deadline: at is the object's
// deadline, handle its session index on the queue's side.
type expiryEntry struct {
	at     float64
	handle int32
}

// entryLess orders entries by deadline, then by handle for determinism.
func entryLess(a, b expiryEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.handle < b.handle
}

// expiryQueue is the platform-side deadline queue of one session side.
// Admission times are clamped monotone, so with the constant per-side
// windows of the paper's workloads deadlines arrive already sorted: those
// go into a FIFO with O(1) push and pop. A deadline below the FIFO tail
// (variable windows) overflows into a small binary min-heap, so arbitrary
// deadline orders stay correct while the hot path never pays for them.
type expiryQueue struct {
	fifo []expiryEntry // non-decreasing .at, consumed from head
	head int
	heap []expiryEntry // out-of-order overflow, sift-managed
}

func (q *expiryQueue) reset() {
	q.fifo = q.fifo[:0]
	q.head = 0
	q.heap = q.heap[:0]
}

func (q *expiryQueue) push(e expiryEntry) {
	n := len(q.fifo)
	if q.head == n {
		// FIFO drained: restart it from the front, keeping capacity.
		q.fifo = append(q.fifo[:0], e)
		q.head = 0
		return
	}
	if q.fifo[n-1].at <= e.at {
		if q.head >= 4096 && 2*q.head >= n {
			// Reclaim the consumed prefix so a never-empty long-lived
			// queue stays proportional to its pending entries.
			n = copy(q.fifo, q.fifo[q.head:])
			q.fifo = q.fifo[:n]
			q.head = 0
		}
		q.fifo = append(q.fifo, e)
		return
	}
	// Out-of-order deadline: overflow heap, sift-up.
	q.heap = append(q.heap, e)
	for i := len(q.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !entryLess(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// peek returns the earliest pending entry without removing it.
func (q *expiryQueue) peek() (expiryEntry, bool) {
	if q.head < len(q.fifo) {
		if len(q.heap) > 0 && entryLess(q.heap[0], q.fifo[q.head]) {
			return q.heap[0], true
		}
		return q.fifo[q.head], true
	}
	if len(q.heap) > 0 {
		return q.heap[0], true
	}
	return expiryEntry{}, false
}

// pop removes the earliest pending entry; the queue must be non-empty.
func (q *expiryQueue) pop() expiryEntry {
	if q.head < len(q.fifo) && !(len(q.heap) > 0 && entryLess(q.heap[0], q.fifo[q.head])) {
		e := q.fifo[q.head]
		q.head++
		return e
	}
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.heap = h[:last]
	siftDown(q.heap, 0)
	return top
}

// siftDown restores the min-heap property below index i.
func siftDown(h []expiryEntry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && entryLess(h[l], h[min]) {
			min = l
		}
		if r < n && entryLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// remap rebases the queue across an arena epoch: entries of retired
// objects are dropped (a retired object is matched or already past its
// fired deadline, so its pending entry could only ever have been
// suppressed — dropping it leaves the emitted event stream unchanged) and
// surviving entries get their new handles. The FIFO filter preserves its
// sorted order; the heap is filtered and re-heapified. Everything is in
// place, reclaiming the consumed FIFO prefix as a side effect.
func (q *expiryQueue) remap(m []int32) {
	out := q.fifo[:0]
	for _, e := range q.fifo[q.head:] {
		if n := m[e.handle]; n >= 0 {
			e.handle = n
			out = append(out, e)
		}
	}
	q.fifo = out
	q.head = 0
	hout := q.heap[:0]
	for _, e := range q.heap {
		if n := m[e.handle]; n >= 0 {
			e.handle = n
			hout = append(hout, e)
		}
	}
	q.heap = hout
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		siftDown(q.heap, i)
	}
}
