package sim

import (
	"math"
	"testing"

	"ftoa/internal/geo"
	"ftoa/internal/model"
)

// TestLifecycleEventStream: matches and expiries interleave in one typed
// stream with non-decreasing times; DrainEvents is incremental and Drain
// is its match-only view over the same cursor.
func TestLifecycleEventStream(t *testing.T) {
	alg := &scriptAlg{name: "events"}
	alg.onTask = func(p Platform, tk int, now float64) {
		for w := 0; w < p.NumWorkers(); w++ {
			if p.WorkerAvailable(w, now) && p.TryMatch(w, tk, now) {
				return
			}
		}
	}
	var hook []SessionEvent
	m, err := NewMatcher(MatcherConfig{
		Mode:     Strict,
		Velocity: 1,
		Bounds:   geo.NewRect(0, 0, 10, 10),
		OnEvent:  func(ev SessionEvent) { hook = append(hook, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession(alg)

	// Worker 0 is matched at t=1; worker 1 (patience 2, deadline 4)
	// expires; task 1 (expiry 1, deadline 6) expires.
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 10})
	mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 2), Release: 1, Expiry: 5})
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(9, 9), Arrive: 2, Patience: 2})
	mustAddTask(t, s, model.Task{Loc: geo.Pt(5, 5), Release: 5, Expiry: 1})
	s.Advance(20)

	got := s.DrainEvents(nil)
	want := []SessionEvent{
		{Kind: EventMatch, Worker: 0, Task: 0, Time: 1},
		{Kind: EventWorkerExpired, Worker: 1, Task: -1, Time: 4},
		{Kind: EventTaskExpired, Worker: -1, Task: 1, Time: 6},
	}
	if len(got) != len(want) {
		t.Fatalf("DrainEvents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
	if len(hook) != len(want) {
		t.Fatalf("OnEvent saw %v", hook)
	}
	for i := range want {
		if hook[i] != want[i] {
			t.Fatalf("OnEvent %d = %v, want %v", i, hook[i], want[i])
		}
	}
	if s.ExpiredWorkers() != 1 || s.ExpiredTasks() != 1 {
		t.Fatalf("expired = %d/%d, want 1/1", s.ExpiredWorkers(), s.ExpiredTasks())
	}
	// Incremental: nothing new.
	if again := s.DrainEvents(nil); len(again) != 0 {
		t.Fatalf("second DrainEvents = %v, want empty", again)
	}
}

// TestDrainSharesCursorWithDrainEvents: Drain is the match-only filter of
// the same stream, so consuming via DrainEvents consumes for Drain too.
func TestDrainSharesCursorWithDrainEvents(t *testing.T) {
	alg := &scriptAlg{name: "cursor"}
	alg.onTask = func(p Platform, tk int, now float64) {
		for w := 0; w < p.NumWorkers(); w++ {
			if p.TryMatch(w, tk, now) {
				return
			}
		}
	}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 10})
	mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 2), Release: 1, Expiry: 5})
	if evs := s.DrainEvents(nil); len(evs) != 1 {
		t.Fatalf("DrainEvents = %v", evs)
	}
	if ms := s.Drain(nil); len(ms) != 0 {
		t.Fatalf("Drain after DrainEvents = %v, want empty (shared cursor)", ms)
	}
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 2, Patience: 10})
	mustAddTask(t, s, model.Task{Loc: geo.Pt(2, 3), Release: 3, Expiry: 5})
	ms := s.Drain(nil)
	if len(ms) != 1 || ms[0] != (Match{Worker: 1, Task: 1, Time: 3}) {
		t.Fatalf("Drain = %v, want the second match only", ms)
	}
}

// TestTaskExpiryBoundary: a task is matchable AT its deadline, so the
// expiry only fires once the clock strictly passes it — and a match at
// exactly the deadline suppresses it.
func TestTaskExpiryBoundary(t *testing.T) {
	alg := &scriptAlg{name: "boundary"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 2), Release: 0, Expiry: 5})
	s.Advance(5) // exactly the deadline: not expired yet
	if evs := s.DrainEvents(nil); len(evs) != 0 {
		t.Fatalf("events at deadline = %v, want none", evs)
	}
	// A worker arriving at t=5 can still serve it.
	alg.onWorker = func(p Platform, w int, now float64) { p.TryMatch(w, 0, now) }
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 2), Arrive: 5, Patience: 10})
	s.Advance(10)
	evs := s.DrainEvents(nil)
	if len(evs) != 1 || evs[0].Kind != EventMatch {
		t.Fatalf("events = %v, want just the deadline-instant match", evs)
	}
	if s.ExpiredTasks() != 0 {
		t.Fatalf("task counted expired despite deadline-instant match")
	}
}

// TestWorkerExpiryBoundary: a worker is unavailable AT its deadline, so
// the expiry fires when the clock reaches it exactly.
func TestWorkerExpiryBoundary(t *testing.T) {
	alg := &scriptAlg{name: "wboundary"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 5})
	s.Advance(5)
	evs := s.DrainEvents(nil)
	if len(evs) != 1 || evs[0] != (SessionEvent{Kind: EventWorkerExpired, Worker: 0, Task: -1, Time: 5}) {
		t.Fatalf("events = %v, want worker expiry at 5", evs)
	}
}

// TestFinishFlushesExpiries: Finish advances to the horizon and flushes
// every deadline at or before it — including a task deadline exactly at
// the end — while later deadlines stay silent (those objects outlive the
// session).
func TestFinishFlushesExpiries(t *testing.T) {
	alg := &scriptAlg{name: "finflush"}
	s := testMatcher(t, Strict, Hints{Horizon: 10}, nil).NewSession(alg)
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 7})  // deadline 7 <= 10: expires
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(2, 2), Arrive: 0, Patience: 99}) // deadline 99 > 10: silent
	mustAddTask(t, s, model.Task{Loc: geo.Pt(3, 3), Release: 2, Expiry: 8})       // deadline 10 == end: expires
	s.Finish()
	evs := s.DrainEvents(nil)
	want := []SessionEvent{
		{Kind: EventWorkerExpired, Worker: 0, Task: -1, Time: 7},
		{Kind: EventTaskExpired, Worker: -1, Task: 0, Time: 10},
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, evs[i], want[i])
		}
	}
}

// TestExpiryHandlesOutOfOrderDeadlines exercises the overflow heap:
// deadlines pushed in strictly decreasing order (impossible for the FIFO
// fast path) must still fire in deadline order.
func TestExpiryHandlesOutOfOrderDeadlines(t *testing.T) {
	alg := &scriptAlg{name: "outoforder"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	// All arrive at t=0 with decreasing patience: deadlines 9, 7, 5, 3.
	for i := 0; i < 4; i++ {
		mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: float64(9 - 2*i)})
	}
	s.Advance(20)
	evs := s.DrainEvents(nil)
	if len(evs) != 4 {
		t.Fatalf("events = %v, want 4 expiries", evs)
	}
	wantTimes := []float64{3, 5, 7, 9}
	wantWorkers := []int{3, 2, 1, 0}
	for i, ev := range evs {
		if ev.Kind != EventWorkerExpired || ev.Time != wantTimes[i] || ev.Worker != wantWorkers[i] {
			t.Fatalf("event %d = %v, want worker %d expiring at %v", i, ev, wantWorkers[i], wantTimes[i])
		}
	}
}

// TestExpiryInterleavesWithTimer: platform expiries fire chronologically
// against the algorithm's Schedule timer without consuming its single
// slot.
func TestExpiryInterleavesWithTimer(t *testing.T) {
	var order []string
	alg := &scriptAlg{name: "interleave"}
	alg.onTimer = func(p Platform, now float64) { order = append(order, "timer") }
	m := testMatcher(t, Strict, Hints{}, nil)
	s := m.NewSession(alg)
	s.Schedule(6)
	mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: 0, Patience: 4}) // expires at 4, before the timer
	s.Advance(10)
	evs := s.DrainEvents(nil)
	if len(evs) != 1 || evs[0].Time != 4 {
		t.Fatalf("events = %v, want worker expiry at 4", evs)
	}
	if len(order) != 1 {
		t.Fatalf("timer fired %d times, want 1 (expiry must not consume the slot)", len(order))
	}
}

// TestCompactEvents: the drained prefix is reclaimed in place, keeping
// capacity and the undrained tail.
func TestCompactEvents(t *testing.T) {
	alg := &scriptAlg{name: "compact"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	for i := 0; i < 8; i++ {
		mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: float64(i), Patience: 0.5})
	}
	// The admissions advanced the clock to 7, firing deadlines 0.5..6.5.
	if got := len(s.DrainEvents(nil)); got != 7 {
		t.Fatalf("drained %d events, want 7", got)
	}
	s.Advance(100) // worker 7's expiry at 7.5
	s.CompactEvents()
	if s.drained != 0 || len(s.events) != 1 {
		t.Fatalf("after compact: drained=%d len=%d, want 0/1", s.drained, len(s.events))
	}
	evs := s.DrainEvents(nil)
	if len(evs) != 1 || evs[0].Worker != 7 {
		t.Fatalf("post-compact DrainEvents = %v, want worker 7's expiry", evs)
	}
}

// TestEventPathDoesNotAllocateAtSteadyState extends the admission-path
// alloc gate to the full event lifecycle: admissions, expiries, drains
// into a reused buffer, and compaction allocate nothing once the arenas
// have grown.
func TestEventPathDoesNotAllocateAtSteadyState(t *testing.T) {
	alg := &scriptAlg{name: "noop"}
	s := testMatcher(t, Strict, Hints{}, nil).NewSession(alg)
	var buf []SessionEvent
	feed := func() {
		for i := 0; i < 512; i++ {
			at := float64(i)
			if _, err := s.AddWorker(model.Worker{Loc: geo.Pt(1, 1), Arrive: at, Patience: 5}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.AddTask(model.Task{Loc: geo.Pt(2, 2), Release: at, Expiry: 5}); err != nil {
				t.Fatal(err)
			}
			if i%32 == 0 {
				buf = s.DrainEvents(buf[:0])
				s.CompactEvents()
			}
		}
	}
	feed() // grow the arenas
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset(alg)
		feed()
	})
	if allocs != 0 {
		t.Errorf("steady-state event path allocates %v per 1024-arrival session, want 0", allocs)
	}
}

// TestEventTimesMonotone: the stream a mixed workload produces never goes
// backwards in time, even with expiries firing lazily.
func TestEventTimesMonotone(t *testing.T) {
	alg := &scriptAlg{name: "monotone"}
	alg.onTask = func(p Platform, tk int, now float64) {
		for w := 0; w < p.NumWorkers(); w++ {
			if p.WorkerAvailable(w, now) && p.TryMatch(w, tk, now) {
				return
			}
		}
	}
	s := testMatcher(t, Strict, Hints{Horizon: 64}, nil).NewSession(alg)
	for i := 0; i < 64; i++ {
		at := float64(i)
		mustAddWorker(t, s, model.Worker{Loc: geo.Pt(1, 1), Arrive: at, Patience: float64(1 + i%7)})
		mustAddTask(t, s, model.Task{Loc: geo.Pt(1, 2), Release: at + 0.5, Expiry: float64(1 + (i*3)%5)})
	}
	s.Finish()
	evs := s.DrainEvents(nil)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	last := math.Inf(-1)
	for i, ev := range evs {
		if ev.Time < last {
			t.Fatalf("event %d time %v < previous %v: %v", i, ev.Time, last, ev)
		}
		last = ev.Time
	}
}

func mustAddWorker(t *testing.T, s *Session, w model.Worker) int {
	t.Helper()
	h, err := s.AddWorker(w)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustAddTask(t *testing.T, s *Session, tk model.Task) int {
	t.Helper()
	h, err := s.AddTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
